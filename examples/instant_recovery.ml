(* Instant recovery: the headline motivation of the paper's introduction.

     dune exec examples/instant_recovery.exe

   A main-memory database that logs to disk must rebuild its indexes on
   restart; one whose indexes live in NVRAM just runs a descriptor-pool
   scan bounded by the number of in-flight operations. We build a Bw-tree
   with tens of thousands of keys, crash it mid-write-burst, and compare
   the time to (a) recover the NVRAM-resident tree and (b) rebuild an
   equivalent tree from scratch. *)

module Mem = Nvram.Mem
module Pool = Pmwcas.Pool
module Tree = Bwtree.Tree

let align8 a = (a + 7) / 8 * 8
let keys = 50_000

type layout = {
  heap_base : int;
  heap_words : int;
  anchor : int;
  map_base : int;
  map_words : int;
  words : int;
}

let layout ~max_threads =
  let pool_words = Pool.region_words ~max_threads () in
  let heap_base = align8 pool_words in
  let heap_words = 1 lsl 22 in
  let anchor = align8 (heap_base + heap_words) in
  let map_base = align8 (anchor + Tree.anchor_words) in
  let map_words = 1 lsl 14 in
  { heap_base; heap_words; anchor; map_base; map_words;
    words = map_base + map_words }

let build_fresh l =
  let mem = Mem.create (Nvram.Config.make ~words:l.words ()) in
  let palloc =
    Palloc.create mem ~base:l.heap_base ~words:l.heap_words ~max_threads:4
  in
  let pool = Pool.create ~palloc mem ~base:0 ~max_threads:4 in
  let t =
    Tree.create ~pool ~palloc ~anchor:l.anchor ~map_base:l.map_base
      ~map_words:l.map_words ()
  in
  (mem, t)

let () =
  Random.self_init ();
  let l = layout ~max_threads:4 in
  let mem, tree = build_fresh l in
  let h = Tree.register tree in
  Printf.printf "loading %d keys into the Bw-tree...\n%!" keys;
  let t0 = Unix.gettimeofday () in
  for k = 1 to keys do
    ignore (Tree.put h ~key:k ~value:(k * 3))
  done;
  let load_time = Unix.gettimeofday () -. t0 in
  Printf.printf "  loaded in %.2fs (%s)\n%!" load_time
    (Format.asprintf "%a" Tree.pp_stats (Tree.stats h));

  (* Crash during a burst of writes. *)
  Mem.inject_crash_after mem (1_000 + Random.int 10_000);
  (try
     let rng = Random.State.make [| 5 |] in
     while true do
       let k = 1 + Random.State.int rng keys in
       ignore (Tree.put h ~key:k ~value:(Random.State.int rng 1000))
     done
   with Mem.Crash -> ());
  print_endline "power failure mid-burst!";

  (* Path A: NVRAM recovery — allocator scan + descriptor-pool scan. *)
  let img = Mem.crash_image ~evict_prob:0.5 ~seed:1 mem in
  let t0 = Unix.gettimeofday () in
  let palloc', _ =
    Palloc.recover img ~base:l.heap_base ~words:l.heap_words ~max_threads:4
  in
  let pool', stats =
    Pmwcas.Recovery.run ~palloc:palloc'
      ~callbacks:[ Tree.recovery_callback img ]
      img ~base:0
  in
  let tree' = Tree.attach ~pool:pool' ~palloc:palloc' ~anchor:l.anchor in
  let recovery_time = Unix.gettimeofday () -. t0 in
  let h' = Tree.register tree' in
  Tree.check_invariants h';
  Printf.printf "NVRAM recovery: %.4fs (%s), tree intact with %d keys\n%!"
    recovery_time
    (Format.asprintf "%a" Pmwcas.Recovery.pp_stats stats)
    (Tree.length h');

  (* Path B: what a DRAM+log system would do — rebuild the index. *)
  let t0 = Unix.gettimeofday () in
  let _mem2, tree2 = build_fresh l in
  let h2 = Tree.register tree2 in
  Tree.fold_range h' ~lo:0 ~hi:max_int ~init:() ~f:(fun () ~key ~value ->
      ignore (Tree.put h2 ~key ~value))
  |> ignore;
  let rebuild_time = Unix.gettimeofday () -. t0 in
  Printf.printf "index rebuild:  %.4fs\n" rebuild_time;
  Printf.printf "recovery is %.0fx faster than rebuilding\n"
    (rebuild_time /. recovery_time)
