(* A persistent ordered key-value store on the PMwCAS skip list.

     dune exec examples/kv_store.exe

   Loads a small catalogue, runs concurrent updates with a mid-flight
   power failure, recovers, and range-scans the survivors in both
   directions — reverse scans being the reason the skip list is doubly
   linked, and PMwCAS the reason doubly-linked was easy (Section 6.1). *)

module Mem = Nvram.Mem
module Pool = Pmwcas.Pool
module Pm = Skiplist.Pm

let align8 a = (a + 7) / 8 * 8

type layout = {
  heap_base : int;
  heap_words : int;
  anchor : int;
  words : int;
}

let layout ~max_threads =
  let pool_words = Pool.region_words ~max_threads () in
  let heap_base = align8 pool_words in
  let heap_words = 1 lsl 18 in
  let anchor = align8 (heap_base + heap_words) in
  { heap_base; heap_words; anchor; words = anchor + Pm.anchor_words }

let () =
  Random.self_init ();
  let max_threads = 4 in
  let l = layout ~max_threads in
  let mem = Mem.create (Nvram.Config.make ~words:l.words ()) in
  let palloc =
    Palloc.create mem ~base:l.heap_base ~words:l.heap_words ~max_threads
  in
  let pool = Pool.create ~palloc mem ~base:0 ~max_threads in
  let store = Pm.create ~pool ~palloc ~anchor:l.anchor () in

  (* Load: sku -> price. *)
  let h = Pm.register ~seed:1 store in
  for sku = 1 to 500 do
    ignore (Pm.insert h ~key:(sku * 10) ~value:(100 + sku))
  done;
  Printf.printf "loaded %d items\n" (Pm.length h);

  (* Concurrent repricing, killed mid-flight. *)
  Mem.inject_crash_after mem (2_000 + Random.int 8_000);
  let worker seed () =
    let h = Pm.register ~seed store in
    let rng = Random.State.make [| seed * 7 |] in
    try
      while true do
        let sku = 1 + Random.State.int rng 500 in
        match Random.State.int rng 3 with
        | 0 -> ignore (Pm.update h ~key:(sku * 10) ~value:(Random.State.int rng 1000))
        | 1 -> ignore (Pm.delete h ~key:(sku * 10))
        | _ -> ignore (Pm.insert h ~key:(sku * 10) ~value:sku)
      done
    with Mem.Crash -> ()
  in
  let ds = List.init 3 (fun s -> Domain.spawn (worker (s + 2))) in
  List.iter Domain.join ds;
  print_endline "power failure during concurrent updates!";

  (* Reboot: allocator recovery, PMwCAS recovery, re-attach. Note the
     store itself ships zero recovery code. *)
  let img = Mem.crash_image ~evict_prob:0.5 ~seed:1 mem in
  let palloc', rolled_back =
    Palloc.recover img ~base:l.heap_base ~words:l.heap_words ~max_threads
  in
  let pool', stats = Pmwcas.Recovery.run ~palloc:palloc' img ~base:0 in
  let store' = Pm.attach ~pool:pool' ~palloc:palloc' ~anchor:l.anchor in
  Printf.printf "recovered (allocations rolled back: %d; %s)\n" rolled_back
    (Format.asprintf "%a" Pmwcas.Recovery.pp_stats stats);

  let h = Pm.register ~seed:99 store' in
  Pm.check_invariants h;
  Printf.printf "store intact: %d items\n" (Pm.length h);

  (* Range scans, both directions. *)
  let fwd =
    Pm.fold_range h ~lo:100 ~hi:200 ~init:[] ~f:(fun acc ~key ~value ->
        (key, value) :: acc)
    |> List.rev
  in
  (* The reverse fold visits keys descending, so prepending rebuilds
     ascending order. *)
  let rev =
    Pm.fold_range_rev h ~lo:100 ~hi:200 ~init:[] ~f:(fun acc ~key ~value ->
        (key, value) :: acc)
  in
  Printf.printf "forward scan [100,200]: %d items; reverse agrees: %b\n"
    (List.length fwd) (fwd = rev);
  assert (fwd = rev)
