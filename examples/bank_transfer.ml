(* Bank transfers: the motivating multi-word atomicity scenario.

     dune exec examples/bank_transfer.exe

   Several domains move money between accounts stored in NVRAM, each
   transfer a 2-word PMwCAS. We pull the plug at a random instruction
   using the fault injector, recover, and audit the books: the total
   balance is exact no matter where the crash landed — without the index
   (here: the application) containing a single line of recovery code. *)

module Mem = Nvram.Mem
module Pool = Pmwcas.Pool
module Op = Pmwcas.Op

let accounts = 16
let initial = 1_000
let workers = 3

let () =
  Random.self_init ();
  let mem = Mem.create (Nvram.Config.make ~words:65536 ()) in
  let pool = Pool.create mem ~base:0 ~max_threads:workers in
  let data = 32768 in
  for i = 0 to accounts - 1 do
    Mem.write mem (data + i) initial
  done;
  Mem.persist_all mem;

  (* Crash after a random number of stores across all workers. *)
  let fuel = 500 + Random.int 4000 in
  Mem.inject_crash_after mem fuel;
  Printf.printf "running %d workers; power fails after %d stores...\n" workers
    fuel;

  let transfers = Atomic.make 0 in
  let worker seed () =
    let h = Pool.register pool in
    let rng = Random.State.make [| seed |] in
    try
      while true do
        let i = Random.State.int rng accounts in
        let j = (i + 1 + Random.State.int rng (accounts - 1)) mod accounts in
        let vi = Op.read_with h (data + i) and vj = Op.read_with h (data + j) in
        let amount = 1 + Random.State.int rng 50 in
        let d = Pool.alloc_desc h in
        Pool.add_word d ~addr:(data + i) ~expected:vi ~desired:(vi - amount);
        Pool.add_word d ~addr:(data + j) ~expected:vj ~desired:(vj + amount);
        if Op.execute d then ignore (Atomic.fetch_and_add transfers 1)
      done
    with Mem.Crash -> ()
  in
  let ds = List.init workers (fun s -> Domain.spawn (worker (s + 1))) in
  List.iter Domain.join ds;
  Printf.printf "crashed after %d committed transfers\n" (Atomic.get transfers);

  (* Reboot: some unflushed cache lines survive by accident, some don't —
     the protocol must cope with either. *)
  let img = Mem.crash_image ~evict_prob:0.5 ~seed:fuel mem in
  let pool', stats = Pmwcas.Recovery.run img ~base:0 in
  Printf.printf "recovery: %s\n"
    (Format.asprintf "%a" Pmwcas.Recovery.pp_stats stats);

  let h = Pool.register pool' in
  let total = ref 0 in
  for i = 0 to accounts - 1 do
    let v = Op.read_with h (data + i) in
    Printf.printf "  account %2d: %5d\n" i v;
    total := !total + v
  done;
  Printf.printf "total = %d (expected %d) -> %s\n" !total (accounts * initial)
    (if !total = accounts * initial then "BOOKS BALANCE" else "CORRUPT!");
  assert (!total = accounts * initial)
