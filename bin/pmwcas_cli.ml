(* Command-line driver: crash-consistency demos and sizing utilities on
   top of the PMwCAS library. The benchmark tables live in
   [bench/main.exe]; this tool is for poking at the system interactively.

     pmwcas_cli crash-demo --workers 4 --fuel 5000 --evict 0.5
     pmwcas_cli torture --rounds 50
     pmwcas_cli space --threads 32 --max-words 8
     pmwcas_cli trace-check --workers 4 --ops 2000
*)

module Mem = Nvram.Mem
module Pool = Pmwcas.Pool
module Op = Pmwcas.Op
module Pm = Skiplist.Pm

let align8 a = (a + 7) / 8 * 8

(* --- crash-demo: concurrent bank transfers + injected power failure --- *)

let crash_demo workers fuel evict =
  let accounts = 16 and initial = 1000 in
  let mem = Mem.create (Nvram.Config.make ~words:65536 ()) in
  let pool = Pool.create mem ~base:0 ~max_threads:workers in
  let data = 32768 in
  for i = 0 to accounts - 1 do
    Mem.write mem (data + i) initial
  done;
  Mem.persist_all mem;
  Mem.inject_crash_after mem fuel;
  Printf.printf "%d workers transferring; crash after %d stores\n%!" workers
    fuel;
  let worker seed () =
    let h = Pool.register pool in
    let rng = Random.State.make [| seed |] in
    try
      while true do
        let i = Random.State.int rng accounts in
        let j = (i + 1 + Random.State.int rng (accounts - 1)) mod accounts in
        let vi = Op.read_with h (data + i)
        and vj = Op.read_with h (data + j) in
        let d = Pool.alloc_desc h in
        Pool.add_word d ~addr:(data + i) ~expected:vi ~desired:(vi - 1);
        Pool.add_word d ~addr:(data + j) ~expected:vj ~desired:(vj + 1);
        ignore (Op.execute d)
      done
    with Mem.Crash -> ()
  in
  List.init workers (fun s -> Domain.spawn (worker (s + 1)))
  |> List.iter Domain.join;
  let img = Mem.crash_image ~evict_prob:evict ~seed:fuel mem in
  let pool', stats = Pmwcas.Recovery.run img ~base:0 in
  Printf.printf "recovery: %s\n"
    (Format.asprintf "%a" Pmwcas.Recovery.pp_stats stats);
  let h = Pool.register pool' in
  let total = ref 0 in
  for i = 0 to accounts - 1 do
    total := !total + Op.read_with h (data + i)
  done;
  if !total = accounts * initial then begin
    Printf.printf "books balance: %d\n" !total;
    0
  end
  else begin
    Printf.printf "CORRUPTION: total %d, expected %d\n" !total
      (accounts * initial);
    1
  end

(* --- torture: repeated skip-list crash/recover rounds ------------------ *)

let torture rounds evict =
  let max_threads = 4 in
  let pool_words = Pool.region_words ~max_threads () in
  let heap_base = align8 pool_words in
  let heap_words = 1 lsl 17 in
  let anchor = align8 (heap_base + heap_words) in
  let words = anchor + Pm.anchor_words in
  let failures = ref 0 in
  for round = 1 to rounds do
    let mem = Mem.create (Nvram.Config.make ~words ()) in
    let palloc =
      Palloc.create mem ~base:heap_base ~words:heap_words ~max_threads
    in
    let pool = Pool.create ~palloc mem ~base:0 ~max_threads in
    let sl = Pm.create ~pool ~palloc ~anchor () in
    let h = Pm.register ~seed:round sl in
    Mem.inject_crash_after mem (100 + Random.int 5000);
    (try
       let rng = Random.State.make [| round |] in
       while true do
         let k = Random.State.int rng 200 in
         if Random.State.bool rng then ignore (Pm.insert h ~key:k ~value:k)
         else ignore (Pm.delete h ~key:k)
       done
     with Mem.Crash -> ());
    let img = Mem.crash_image ~evict_prob:evict ~seed:round mem in
    (try
       let palloc', _ =
         Palloc.recover img ~base:heap_base ~words:heap_words ~max_threads
       in
       let pool', _ = Pmwcas.Recovery.run ~palloc:palloc' img ~base:0 in
       let sl' = Pm.attach ~pool:pool' ~palloc:palloc' ~anchor in
       let h' = Pm.register ~seed:1 sl' in
       Pm.check_invariants h'
     with e ->
       incr failures;
       Printf.printf "round %d FAILED: %s\n%!" round (Printexc.to_string e));
    if round mod 10 = 0 then Printf.printf "round %d/%d ok\n%!" round rounds
  done;
  if !failures = 0 then begin
    Printf.printf "all %d rounds recovered consistently\n" rounds;
    0
  end
  else begin
    Printf.printf "%d/%d rounds failed\n" !failures rounds;
    1
  end

(* --- trace-check: replay a traced run through the ordering checker ---- *)

let trace_check ?dump workers ops =
  let accounts = 16 and initial = 1000 in
  let mem = Mem.traced (Mem.create (Nvram.Config.make ~words:65536 ())) in
  let pool = Pool.create mem ~base:0 ~max_threads:workers in
  let data = 32768 in
  for i = 0 to accounts - 1 do
    Mem.write mem (data + i) initial
  done;
  Mem.persist_all mem;
  Printf.printf "%d workers, %d transfers each, every word op traced\n%!"
    workers ops;
  let worker seed () =
    let h = Pool.register pool in
    let rng = Random.State.make [| seed |] in
    for _ = 1 to ops do
      let i = Random.State.int rng accounts in
      let j = (i + 1 + Random.State.int rng (accounts - 1)) mod accounts in
      let vi = Op.read_with h (data + i)
      and vj = Op.read_with h (data + j) in
      let d = Pool.alloc_desc h in
      Pool.add_word d ~addr:(data + i) ~expected:vi ~desired:(vi - 1);
      Pool.add_word d ~addr:(data + j) ~expected:vj ~desired:(vj + 1);
      ignore (Op.execute d)
    done;
    Pool.unregister h
  in
  List.init workers (fun s -> Domain.spawn (worker (s + 1)))
  |> List.iter Domain.join;
  (match dump with
  | None -> ()
  | Some file ->
      let tr = Option.get (Mem.trace mem) in
      let oc = open_out file in
      let ppf = Format.formatter_of_out_channel oc in
      Array.iter
        (fun e -> Format.fprintf ppf "%a@." Nvram.Trace.pp_event e)
        (Nvram.Trace.events tr);
      close_out oc);
  let report = Harness.Trace_check.check pool in
  Printf.printf "%s\n"
    (Format.asprintf "%a" Nvram.Checker.pp_report report);
  if Nvram.Checker.ok report then begin
    Printf.printf "persistence ordering clean\n";
    0
  end
  else 1

(* --- trace-dump: contended workload under the flight recorder --------- *)

let trace_dump workers ops accounts width flush_delay out tail shift capacity
    run_id =
  Option.iter Flight.set_run_id run_id;
  Flight.enable ~capacity ~sample_shift:shift ();
  let width = max 2 (min width accounts) in
  let initial = 1000 in
  let mem = Mem.create (Nvram.Config.make ~words:65536 ~flush_delay ()) in
  let pool =
    Pool.create ~max_words:(max 8 width) mem ~base:0 ~max_threads:workers
  in
  let data = 32768 in
  for i = 0 to accounts - 1 do
    Mem.write mem (data + i) initial
  done;
  Mem.persist_all mem;
  Printf.printf
    "trace-dump: %d workers x %d %d-word transfers over %d accounts (run \
     %s)\n\
     %!"
    workers ops width accounts (Flight.run_id ());
  let worker seed () =
    let h = Pool.register pool in
    let rng = Random.State.make [| seed |] in
    for _ = 1 to ops do
      (* [width] distinct accounts: move one unit from the first to the
         last; the middle words are CAS'd in place, so wider descriptors
         mean longer install phases (and more helping) while the books
         still balance. *)
      let start = Random.State.int rng accounts in
      let idxs = List.init width (fun k -> (start + k) mod accounts) in
      let d = Pool.alloc_desc h in
      let n = List.length idxs in
      List.iteri
        (fun k i ->
          let v = Op.read_with h (data + i) in
          let d' = if k = 0 then -1 else if k = n - 1 then 1 else 0 in
          Pool.add_word d ~addr:(data + i) ~expected:v ~desired:(v + d'))
        idxs;
      ignore (Op.execute d)
    done;
    Pool.unregister h
  in
  List.init workers (fun s -> Domain.spawn (worker (s + 1)))
  |> List.iter Domain.join;
  let snap = Flight.snapshot () in
  Flight.disable ();
  Flight.Perfetto.write_file out snap;
  Printf.printf "%s" (Flight.postmortem ~tail snap);
  Printf.printf
    "wrote %s: %d events, %d help-chain flow edges (load at \
     https://ui.perfetto.dev)\n"
    out
    (Flight.event_count snap)
    (Flight.Perfetto.help_edge_count snap);
  0

(* --- telemetry plumbing shared by stats and crash-sweep ---------------- *)

module V = Telemetry.Value

let core_histograms =
  [
    "pmwcas.attempt_ns"; "pmwcas.success_ns"; "nvram.clwb_stall_ns";
    "palloc.alloc_ns"; "skiplist.op_ns"; "bwtree.op_ns";
  ]

let telemetry_setup () =
  Telemetry.enable ();
  List.iter (fun n -> ignore (Telemetry.histogram n)) core_histograms;
  Telemetry.register_source ~kind:`Gauge "nvram.phase_ns" (fun () ->
      Nvram.Stats.phase_times_to_json ());
  Telemetry.register_source ~kind:`Counter "epoch" (fun () ->
      Epoch.counters_to_json (Epoch.counters ()));
  Telemetry.register_source ~kind:`Counter "store.counters" (fun () ->
      Store.counters_to_json ());
  Telemetry.register_source ~kind:`Counter "strategy.counters" (fun () ->
      Nvram.Strategy.counters_to_json ())

let set_strategy name =
  match Nvram.Config.strategy_of_string name with
  | Some s -> Nvram.Config.set_default_strategy s
  | None ->
      Printf.eprintf "unknown strategy %S (try paper|nodirty|fewfence)\n" name;
      exit 2

(* --- stats: run a mixed workload, dump the registry snapshot ----------- *)

let stats strategy domains seconds format out =
  set_strategy strategy;
  telemetry_setup ();
  (* One simulated device hosting every subsystem: descriptor pool, heap,
     both indexes, and a raw array for plain PMwCAS ops. Each worker
     claims three pool handles (its own + one inside each index handle),
     and two allocator slots. *)
  let cap = (3 * domains) + 2 in
  let pool_words = Pool.region_words ~max_threads:cap () in
  let heap_base = align8 pool_words in
  let heap_words = 1 lsl 18 in
  let sl_anchor = align8 (heap_base + heap_words) in
  let bt_anchor = align8 (sl_anchor + Pm.anchor_words) in
  let map_base = align8 (bt_anchor + Bwtree.Tree.anchor_words) in
  let map_words = 1 lsl 12 in
  let data = align8 (map_base + map_words) in
  let data_words = 1024 in
  let mem = Mem.create (Nvram.Config.make ~words:(data + data_words) ()) in
  let palloc =
    Palloc.create mem ~base:heap_base ~words:heap_words ~max_threads:cap
  in
  let pool = Pool.create ~palloc mem ~base:0 ~max_threads:cap in
  let sl = Pm.create ~pool ~palloc ~anchor:sl_anchor () in
  let bt =
    Bwtree.Tree.create ~pool ~palloc ~anchor:bt_anchor ~map_base ~map_words ()
  in
  Telemetry.register_source ~kind:`Counter "pmwcas.metrics" (fun () ->
      Pmwcas.Metrics.to_json (Pmwcas.Metrics.snapshot (Pool.metrics pool)));
  Telemetry.register_source ~kind:`Counter "nvram.stats" (fun () ->
      Nvram.Stats.to_json (Nvram.Stats.snapshot (Mem.stats mem)));
  (* Progress goes to stderr: stdout is the machine-readable output when
     no [--out] is given. *)
  Printf.eprintf "stats: %d domains, %.1fs mixed workload...\n%!" domains
    seconds;
  let worker tid () =
    let h = Pool.register pool in
    let slh = Pm.register ~seed:(tid + 1) sl in
    let bth = Bwtree.Tree.register bt in
    let rng = Random.State.make [| 53 * (tid + 1) |] in
    let deadline = Unix.gettimeofday () +. seconds in
    while Unix.gettimeofday () < deadline do
      for _ = 1 to 32 do
        let k = Random.State.int rng data_words in
        let d = Pool.alloc_desc h in
        Pool.with_epoch h (fun () ->
            let a = data + k in
            let v = Op.read pool a in
            Pool.add_word d ~addr:a ~expected:v ~desired:(v + 1);
            ignore (Op.execute d));
        let key = Random.State.int rng 512 in
        (match Random.State.int rng 4 with
        | 0 -> ignore (Pm.insert slh ~key ~value:key)
        | 1 -> ignore (Pm.delete slh ~key)
        | _ -> ignore (Pm.find slh ~key));
        match Random.State.int rng 4 with
        | 0 -> ignore (Bwtree.Tree.insert bth ~key ~value:key)
        | 1 -> ignore (Bwtree.Tree.remove bth ~key)
        | _ -> ignore (Bwtree.Tree.get bth ~key)
      done
    done;
    Pm.unregister slh;
    Bwtree.Tree.unregister bth;
    Pool.unregister h
  in
  let done_flag = Atomic.make 0 in
  let watchdog =
    Domain.spawn (fun () ->
        let stop = Unix.gettimeofday () +. (seconds *. 10.) +. 10. in
        while Atomic.get done_flag < domains && Unix.gettimeofday () < stop do
          Unix.sleepf 0.2
        done;
        if Atomic.get done_flag < domains then begin
          Printf.eprintf "WATCHDOG: workers stalled; registry deltas:\n";
          for _ = 1 to 3 do
            let m = Pmwcas.Metrics.snapshot (Pool.metrics pool) in
            Printf.eprintf "  metrics: %s\n%!"
              (V.to_string (Pmwcas.Metrics.to_json m));
            Printf.eprintf "  epoch: %s\n%!"
              (V.to_string (Epoch.counters_to_json (Epoch.counters ())));
            Printf.eprintf "  stats: %s\n%!"
              (V.to_string (Nvram.Stats.to_json (Nvram.Stats.snapshot (Mem.stats mem))));
            Unix.sleepf 1.0
          done;
          Stdlib.exit 3
        end)
  in
  List.init domains (fun t ->
      Domain.spawn (fun () ->
          worker t ();
          Atomic.incr done_flag))
  |> List.iter Domain.join;
  Domain.join watchdog;
  let output =
    match format with
    | "json" ->
        Telemetry.Export.to_json ~pretty:true (Telemetry.snapshot ()) ^ "\n"
    | "csv" -> Telemetry.Export.to_csv (Telemetry.snapshot ())
    | "prom" -> Telemetry.Export.to_prometheus Telemetry.default
    | f ->
        Printf.eprintf "unknown format %S (expected json, csv or prom)\n" f;
        exit 2
  in
  (match out with
  | None -> print_string output
  | Some path ->
      Telemetry.Export.write_file path output;
      Printf.printf "wrote %s\n" path);
  0

(* --- check-metrics: validate a --metrics report against the schema ----- *)

let check_metrics require_coalescing require_alloc_counters
    require_store_counters require_flit_counters require_strategy_counters
    file =
  let ic = open_in_bin file in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match V.of_string text with
  | Error e ->
      Printf.printf "check-metrics: %s: parse error: %s\n" file e;
      1
  | Ok v ->
      let errors = ref [] in
      let check cond msg = if not cond then errors := msg :: !errors in
      let has p = V.find_path v p <> None in
      let int_at p = Option.bind (V.find_path v p) V.to_int in
      List.iter
        (fun f -> check (has [ "meta"; f ]) ("meta." ^ f ^ " missing"))
        [ "date"; "scale"; "backend" ];
      (* The six core latency histograms must all be exported (possibly
         empty — a single-experiment run legitimately skips some
         subsystem); every populated histogram anywhere in the registry
         must carry percentile summaries; and at least four must be
         populated overall. *)
      List.iter
        (fun (grp, h) ->
          check
            (has [ "registry"; grp; h; "count" ])
            (grp ^ "." ^ h ^ " missing"))
        [
          ("pmwcas", "attempt_ns");
          ("pmwcas", "success_ns");
          ("nvram", "clwb_stall_ns");
          ("palloc", "alloc_ns");
          ("skiplist", "op_ns");
          ("bwtree", "op_ns");
        ];
      let populated = ref 0 in
      let rec scan path node =
        match node with
        | V.Obj fields when List.assoc_opt "type" fields = Some (V.String "histogram")
          -> (
            match Option.bind (List.assoc_opt "count" fields) V.to_int with
            | Some c when c > 0 ->
                incr populated;
                check
                  (List.mem_assoc "p50" fields)
                  (path ^ ".p50 missing");
                check
                  (List.mem_assoc "p99" fields)
                  (path ^ ".p99 missing")
            | _ -> ())
        | V.Obj fields ->
            List.iter (fun (k, v) -> scan (path ^ "." ^ k) v) fields
        | _ -> ()
      in
      Option.iter (scan "registry") (V.find_path v [ "registry" ]);
      check (!populated >= 4)
        (Printf.sprintf "only %d populated histograms (need >= 4)" !populated);
      check
        (match int_at [ "registry"; "nvram"; "phase_ns"; "total" ] with
        | Some _ -> true
        | None ->
            (* totals are an object of per-phase sums *)
            has [ "registry"; "nvram"; "phase_ns"; "total" ])
        "registry.nvram.phase_ns.total missing";
      check
        (match int_at [ "registry"; "epoch"; "enters" ] with
        | Some n -> n > 0
        | None -> false)
        "registry.epoch.enters missing or zero";
      if require_alloc_counters then begin
        (* The allocator instrumentation must be live end to end: the
           palloc counter source exported, and descriptors actually
           retired through epoch limbo (deferred and later freed). *)
        List.iter
          (fun f ->
            check
              (has [ "registry"; "palloc"; "counters"; f ])
              ("registry.palloc.counters." ^ f ^ " missing"))
          [
            "cache_hits"; "freelist_hits"; "carves"; "carved_blocks";
            "arena_steals";
          ];
        List.iter
          (fun f ->
            check
              (match int_at [ "registry"; "epoch"; f ] with
              | Some n -> n > 0
              | None -> false)
              ("registry.epoch." ^ f ^ " missing or zero"))
          [ "deferred"; "freed" ]
      end;
      if require_store_counters then begin
        (* The group-commit pipeline must be live end to end: the store
           counter source exported with batches actually drained, and the
           batch-size histogram populated. *)
        List.iter
          (fun f ->
            check
              (has [ "registry"; "store"; "counters"; f ])
              ("registry.store.counters." ^ f ^ " missing"))
          [
            "commits"; "batched_ops"; "merged_updates"; "solo_applies";
            "direct_applies";
          ];
        check
          (match int_at [ "registry"; "store"; "counters"; "commits" ] with
          | Some n -> n > 0
          | None -> false)
          "registry.store.counters.commits zero (no batch ever drained)";
        check
          (match int_at [ "registry"; "store"; "batch_size"; "count" ] with
          | Some n -> n > 0
          | None -> false)
          "registry.store.batch_size missing or empty"
      end;
      if require_flit_counters then begin
        (* Destination-only persistence must be live end to end: the
           flit counter source exported, destination passes actually
           issuing write-backs, and at least one flush elided (the
           whole point of the mode). *)
        List.iter
          (fun f ->
            check
              (has [ "registry"; "flit"; "counters"; f ])
              ("registry.flit.counters." ^ f ^ " missing"))
          [ "elided"; "destination_flushes" ];
        List.iter
          (fun f ->
            check
              (match int_at [ "registry"; "flit"; "counters"; f ] with
              | Some n -> n > 0
              | None -> false)
              ("registry.flit.counters." ^ f ^ " zero (mode not exercised)"))
          [ "elided"; "destination_flushes" ]
      end;
      if require_strategy_counters then begin
        (* The per-strategy instrumentation must be live end to end: the
           strategy counter source exported, naming the strategy the run
           used, with the counter profile that strategy promises —
           [paper] clears dirty bits with CASes, [nodirty] never does,
           [fewfence] retires every operation through a commit batch. *)
        List.iter
          (fun f ->
            check
              (has [ "registry"; "strategy"; "counters"; f ])
              ("registry.strategy.counters." ^ f ^ " missing"))
          [ "strategy"; "dirty_cas"; "commit_batches" ];
        let dirty_cas =
          int_at [ "registry"; "strategy"; "counters"; "dirty_cas" ]
        and batches =
          int_at [ "registry"; "strategy"; "counters"; "commit_batches" ]
        in
        match V.find_path v [ "registry"; "strategy"; "counters"; "strategy" ]
        with
        | Some (V.String "paper") ->
            check
              (match dirty_cas with Some n -> n > 0 | None -> false)
              "registry.strategy.counters.dirty_cas zero under paper \
               (dirty-clear CASes not instrumented)"
        | Some (V.String "nodirty") ->
            check (dirty_cas = Some 0)
              "registry.strategy.counters.dirty_cas nonzero under nodirty \
               (dirty-bit machinery not eliminated)"
        | Some (V.String "fewfence") ->
            check
              (match batches with Some n -> n > 0 | None -> false)
              "registry.strategy.counters.commit_batches zero under fewfence \
               (no operation retired through a commit batch)"
        | Some (V.String s) ->
            check false ("registry.strategy.counters.strategy unknown: " ^ s)
        | _ -> ()
      end;
      (match V.find_path v [ "rows" ] with
      | Some (V.List []) -> check false "rows empty"
      | Some (V.List rows) ->
          check
            (List.exists (fun row -> V.member "pmwcas" row <> None) rows)
            "no row carries a pmwcas metrics snapshot";
          if require_alloc_counters then
            check
              (List.exists
                 (fun row ->
                   match
                     Option.bind (V.member "pmwcas" row)
                       (V.member "desc_local")
                   with
                   | Some _ -> true
                   | None -> false)
                 rows)
              "no row carries descriptor-pool counters (pmwcas.desc_local)";
          if require_coalescing then begin
            (* The async write-back pipeline must show its teeth: clwbs
               that coalesced or elided, and strictly fewer fences than
               issued flushes (a fence batches many lines). *)
            let sum field =
              List.fold_left
                (fun acc row ->
                  match
                    Option.bind (V.member "nvram" row) (fun s ->
                        Option.bind (V.member field s) V.to_int)
                  with
                  | Some n -> acc + n
                  | None -> acc)
                0 rows
            in
            let flushes = sum "flushes"
            and fences = sum "fences"
            and elided = sum "elided_flushes" in
            check (elided > 0)
              (Printf.sprintf "no flush coalescing observed (elided=%d)"
                 elided);
            check
              (fences <= flushes)
              (Printf.sprintf "fences (%d) exceed flushes (%d)" fences
                 flushes)
          end
      | _ -> check false "rows missing");
      (match !errors with
      | [] ->
          Printf.printf "check-metrics: %s OK\n" file;
          0
      | es ->
          List.iter
            (fun e -> Printf.printf "check-metrics: %s: FAIL: %s\n" file e)
            (List.rev es);
          1)

(* --- check-trace: validate a flight-recorder Perfetto export ----------- *)

let check_trace_file require_help_edge file =
  let ic = open_in_bin file in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match V.of_string text with
  | Error e ->
      Printf.printf "check-trace: %s: parse error: %s\n" file e;
      1
  | Ok v ->
      let errors = ref [] in
      let check cond msg = if not cond then errors := msg :: !errors in
      let events =
        match V.find_path v [ "traceEvents" ] with
        | Some (V.List l) -> l
        | _ ->
            check false "traceEvents missing or not a list";
            []
      in
      check (events <> []) "traceEvents empty";
      check
        (V.find_path v [ "displayTimeUnit" ] <> None)
        "displayTimeUnit missing";
      check
        (V.find_path v [ "otherData"; "run_id" ] <> None)
        "otherData.run_id missing";
      let str f e =
        Option.bind (V.member f e) (function
          | V.String s -> Some s
          | _ -> None)
      in
      let int f e = Option.bind (V.member f e) V.to_int in
      let spans = ref 0 and instants = ref 0 in
      (* flow id -> (tid of "s" start, tid of "f" finish) *)
      let flows : (int, int option * int option) Hashtbl.t =
        Hashtbl.create 64
      in
      List.iteri
        (fun idx e ->
          let where msg = Printf.sprintf "event %d: %s" idx msg in
          match str "ph" e with
          | None -> check false (where "ph missing")
          | Some ph -> (
              check (str "name" e <> None) (where "name missing");
              check (int "pid" e <> None) (where "pid missing");
              (match ph with
              | "M" -> ()
              | _ ->
                  check (int "tid" e <> None) (where "tid missing");
                  check
                    (match V.member "ts" e with
                    | Some (V.Int _ | V.Float _) -> true
                    | _ -> false)
                    (where "ts missing"));
              match ph with
              | "X" ->
                  incr spans;
                  check
                    (match int "dur" e with Some d -> d >= 0 | None -> false)
                    (where "X slice without non-negative dur")
              | "B" | "M" -> ()
              | "i" -> incr instants
              | "s" | "f" -> (
                  match (int "id" e, int "tid" e) with
                  | Some id, Some tid ->
                      let s, f =
                        Option.value
                          (Hashtbl.find_opt flows id)
                          ~default:(None, None)
                      in
                      if ph = "s" then Hashtbl.replace flows id (Some tid, f)
                      else Hashtbl.replace flows id (s, Some tid)
                  | _ -> check false (where "flow event without id/tid"))
              | p -> check false (where ("unexpected ph " ^ p))))
        events;
      Hashtbl.iter
        (fun id -> function
          | Some _, None ->
              check false (Printf.sprintf "flow %d: s without f" id)
          | None, Some _ ->
              check false (Printf.sprintf "flow %d: f without s" id)
          | _ -> ())
        flows;
      let pairs =
        Hashtbl.fold
          (fun _ v acc ->
            match v with Some s, Some f -> (s, f) :: acc | _ -> acc)
          flows []
      in
      check (!spans > 0) "no complete (X) op spans";
      if require_help_edge then
        check
          (List.exists (fun (s, f) -> s <> f) pairs)
          "no help-chain flow pair linking two domains";
      (match !errors with
      | [] ->
          Printf.printf
            "check-trace: %s OK (%d events, %d spans, %d instants, %d help \
             edges)\n"
            file (List.length events) !spans !instants (List.length pairs);
          0
      | es ->
          List.iter
            (fun e -> Printf.printf "check-trace: %s: FAIL: %s\n" file e)
            (List.rev es);
          1)

(* --- crash-sweep: exhaustive crash-point sweep over the suites -------- *)

let crash_sweep suite budget evict seeds domains trace strategy_name sabotage
    sabotage_drain broken_flit broken_nodirty broken_fewfence metrics
    artifacts run_id =
  Option.iter Flight.set_run_id run_id;
  Option.iter (fun _ -> telemetry_setup ()) metrics;
  set_strategy strategy_name;
  (* The strategy self-tests break an obligation only their own variant
     carries, so they force that variant regardless of --strategy. *)
  if broken_nodirty then Nvram.Config.set_default_strategy `NoDirty;
  if broken_fewfence then Nvram.Config.set_default_strategy `FewFence;
  let module Cs = Harness.Crash_sweep in
  let suites =
    if suite = "all" then
      Harness.Sweep_suites.all () @ Harness.Dst_suites.all ()
    else
      match Harness.Sweep_suites.find suite with
      | Some s -> [ s ]
      | None -> (
          match Harness.Dst_suites.find suite with
          | Some s -> [ s ]
          | None ->
              Printf.eprintf
                "unknown suite %S (try \
                 all|bank|palloc|skiplist|bwtree|dst-pmwcas|dst-skiplist|dst-store)\n"
                suite;
              exit 2)
  in
  let evict_seeds = List.init (max 0 seeds) (fun i -> i + 1) in
  let sweep_one (s : Cs.spec) =
    let progress ~done_ ~total =
      if done_ mod 64 = 0 || done_ = total then
        Printf.printf "\r%-9s %4d/%-4d points%!" s.name done_ total
    in
    let sum =
      Cs.sweep ~budget ~evict_prob:evict ~evict_seeds ~trace ~domains
        ~progress s
    in
    Printf.printf "\r%-30s\r%!" "";
    sum
  in
  (* A suite whose calibration (or sweep driver) raises must still count
     as a failed sweep, not crash the CLI with an opaque backtrace. *)
  let sweep_checked (s : Cs.spec) =
    match sweep_one s with
    | sum -> sum
    | exception Failure m ->
        Printf.printf "\r%-9s sweep FAILED: %s\n" s.name m;
        Cs.
          {
            suite = s.name;
            total_steps = 0;
            points = 0;
            crashes = 0;
            images = 0;
            rolled_forward = 0;
            rolled_back = 0;
            by_phase = [];
            failures =
              [
                {
                  fuel = -1;
                  evict_seed = None;
                  phase = Nvram.Stats.App;
                  reason = m;
                  shrunk = None;
                  artifact = None;
                };
              ];
            seconds = 0.;
          }
  in
  (* Shared shape of the catastrophic sabotage self-tests: under the
     wrapper something the protocol's durability relies on wholesale
     never happens, so every persistent suite must fail — typically at
     calibration, whose baseline image can no longer recover. Exit 0
     iff every suite notices. *)
  let every_suite_selftest ~wrapper ~what ~ok_msg ~fail_msg =
    let verdicts =
      wrapper (fun () ->
          List.map
            (fun (s : Cs.spec) ->
              match sweep_one s with
              | sum -> (s.name, sum.Cs.failures <> [], "sweep failures")
              | exception Failure m -> (s.name, true, m))
            suites)
    in
    let all_detected = List.for_all (fun (_, d, _) -> d) verdicts in
    List.iter
      (fun (name, d, why) ->
        Printf.printf "%-9s %s (%s)\n" name
          (if d then "detected" else "NOT DETECTED")
          why)
      verdicts;
    Option.iter
      (fun path ->
        let doc =
          V.Obj
            [
              ("run_id", V.String (Flight.run_id ()));
              ("selftest", V.String what);
              ("registry", Telemetry.snapshot ());
              ( "verdicts",
                V.List
                  (List.map
                     (fun (name, d, why) ->
                       V.Obj
                         [
                           ("suite", V.String name);
                           ("detected", V.Bool d);
                           ("why", V.String why);
                         ])
                     verdicts) );
            ]
        in
        Telemetry.Export.write_file path (V.to_string ~pretty:true doc ^ "\n");
        Printf.printf "wrote metrics to %s\n%!" path)
      metrics;
    if all_detected then begin
      Printf.printf "%s\n" ok_msg;
      0
    end
    else begin
      Printf.printf "%s\n" fail_msg;
      1
    end
  in
  if sabotage_drain then
    (* With fences no longer draining, nothing clwb'd ever reaches NVM. *)
    every_suite_selftest ~wrapper:Cs.with_sabotaged_drain ~what:"drain"
      ~ok_msg:
        "drain-sabotage self-test: every suite noticed the dropped fences"
      ~fail_msg:
        "drain-sabotage self-test: some suite swept clean without durable \
         writes — its fences are not load-bearing"
  else if broken_flit then
    (* With the destination write-backs skipped, fresh node bodies reach
       NVM only via the eviction lottery. *)
    every_suite_selftest ~wrapper:Cs.with_sabotaged_flit ~what:"flit"
      ~ok_msg:
        "flit-sabotage self-test: every suite noticed the skipped \
         destination flushes"
      ~fail_msg:
        "flit-sabotage self-test: some suite swept clean without \
         destination flushes — its destination passes are not load-bearing"
  else if broken_nodirty then
    (* Under [`NoDirty] the unconditional flushes ARE the persistence
       protocol — skipping them leaves pointers, statuses and finals
       volatile, with no dirty bits left to flag them. *)
    every_suite_selftest ~wrapper:Cs.with_sabotaged_nodirty ~what:"nodirty"
      ~ok_msg:
        "nodirty-sabotage self-test: every suite noticed the skipped \
         unconditional flushes"
      ~fail_msg:
        "nodirty-sabotage self-test: some suite swept clean without the \
         unconditional flushes — the nodirty strategy's flushes are not \
         load-bearing"
  else
  (* Forensics: re-execute the first few failures per suite at their
     shrunk repro points under a wide-open flight recorder, and leave an
     artifact (timeline, postmortem, pending lines, in-flight
     descriptors) next to the repro coordinates. Runs inside the
     sabotage wrapper when one is active, so the re-execution reproduces
     the same violation it is documenting. *)
  let forensics summaries =
    if artifacts <> "none" then
      List.iter
        (fun (sum : Cs.summary) ->
          match
            List.find_opt (fun (s : Cs.spec) -> s.name = sum.suite) suites
          with
          | None -> ()
          | Some spec ->
              List.iteri
                (fun i f ->
                  if i < 3 then
                    match Cs.capture_forensics ~dir:artifacts spec f with
                    | path, postmortem ->
                        Printf.printf "%s forensic artifact: %s\n%s%!"
                          sum.suite path postmortem
                    | exception e ->
                        Printf.printf "%s forensics failed: %s\n" sum.suite
                          (Printexc.to_string e))
                sum.failures)
        summaries
  in
  let summaries =
    (* Under --sabotage / --broken-fewfence a raised calibration IS part
       of the self-test surface, so keep the raw sweep there; the normal
       path degrades a raising suite to a synthetic failure and exits
       1. --broken-fewfence shares this narrow-window shape rather than
       the every-suite one: the dropped commit fence only loses data in
       the ack-to-next-fence window, which the point sweep must find and
       shrink rather than the calibration trip over. *)
    if sabotage then
      Cs.with_sabotaged_precommit (fun () ->
          let ss = List.map sweep_one suites in
          forensics ss;
          ss)
    else if broken_fewfence then
      Cs.with_sabotaged_fewfence (fun () ->
          let ss = List.map sweep_one suites in
          forensics ss;
          ss)
    else begin
      let ss = List.map sweep_checked suites in
      forensics ss;
      ss
    end
  in
  Option.iter
    (fun path ->
      let doc =
        V.Obj
          [
            ("run_id", V.String (Flight.run_id ()));
            ("registry", Telemetry.snapshot ());
            ("summaries", V.List (List.map Cs.summary_to_json summaries));
          ]
      in
      Telemetry.Export.write_file path (V.to_string ~pretty:true doc ^ "\n");
      Printf.printf "wrote metrics to %s\n%!" path)
    metrics;
  Harness.Table.print ~title:"crash-point sweep"
    ~header:
      [
        "suite"; "steps"; "points"; "crashed"; "images"; "rolled-fwd";
        "rolled-back"; "failures"; "secs";
      ]
    (List.map
       (fun (s : Cs.summary) ->
         [
           s.suite;
           string_of_int s.total_steps;
           string_of_int s.points;
           string_of_int s.crashes;
           string_of_int s.images;
           string_of_int s.rolled_forward;
           string_of_int s.rolled_back;
           string_of_int (List.length s.failures);
           Printf.sprintf "%.1f" s.seconds;
         ])
       summaries);
  print_newline ();
  let phase_rows =
    List.filter_map
      (fun p ->
        let row =
          List.map
            (fun (s : Cs.summary) ->
              match List.assoc_opt p s.by_phase with
              | Some n -> string_of_int n
              | None -> "0")
            summaries
        in
        if List.for_all (( = ) "0") row then None
        else Some (Nvram.Stats.phase_name p :: row))
      Nvram.Stats.all_phases
  in
  Harness.Table.print ~title:"crash points by protocol phase"
    ~header:("phase" :: List.map (fun (s : Cs.summary) -> s.suite) summaries)
    phase_rows;
  List.iter
    (fun (s : Cs.summary) ->
      List.iter
        (fun f ->
          Printf.printf "%s FAILURE %s\n" s.suite
            (Format.asprintf "%a" Cs.pp_failure f))
        s.failures)
    summaries;
  let total_points =
    List.fold_left (fun n (s : Cs.summary) -> n + s.points) 0 summaries
  in
  let failed = List.exists (fun (s : Cs.summary) -> s.failures <> []) summaries in
  if sabotage || broken_fewfence then
    (* Self-test: the sweeper must catch the dropped flush/fence and
       shrink at least one failure to a concrete repro. *)
    let what =
      if sabotage then "sabotage" else "fewfence-sabotage"
    in
    let detected =
      List.exists
        (fun (s : Cs.summary) ->
          List.exists (fun f -> f.Cs.shrunk <> None) s.failures)
        summaries
    in
    if detected then begin
      Printf.printf
        "%s self-test: violation detected and shrunk (%d points)\n" what
        total_points;
      0
    end
    else begin
      Printf.printf
        "%s self-test: NO violation detected across %d points — the \
         sweeper is not sensitive enough\n"
        what total_points;
      1
    end
  else if failed then 1
  else begin
    Printf.printf "%d crash points swept, all recovered consistently\n"
      total_points;
    0
  end

(* --- dst: deterministic-interleaving scheduler + linearizability ------- *)

let dst scenario_name strategy protocol threads ops width addrs keys shards
    seeds preemptions max_runs changes hunt broken broken_recycle
    broken_nodirty broken_fewfence sabotage sabotage_recycle sabotage_nodirty
    sabotage_fewfence replay artifacts run_id =
  Option.iter Flight.set_run_id run_id;
  (* --protocol, not --strategy: the latter already names the schedule
     strategy here. The strategy self-tests force their own variant. *)
  set_strategy protocol;
  let module S = Dst.Scenarios in
  let module Sc = Dst.Sched in
  let module L = Dst.Linearize in
  let pp_verdict v = Format.asprintf "%a" L.pp_verdict v in
  if sabotage then Op.set_sabotage_skip_precommit_flush true;
  if sabotage_recycle then Pool.set_sabotage_immediate_recycle true;
  (* The strategy sabotage knobs only bite under their own variant, so
     arming one forces the matching protocol (mirroring the hunts). *)
  if sabotage_nodirty then begin
    Nvram.Config.set_default_strategy `NoDirty;
    Nvram.Strategy.set_sabotage_skip_nodirty_flush true
  end;
  if sabotage_fewfence then begin
    Nvram.Config.set_default_strategy `FewFence;
    Nvram.Strategy.set_sabotage_skip_commit_fence true
  end;
  Fun.protect ~finally:(fun () ->
      Op.set_sabotage_skip_precommit_flush false;
      Pool.set_sabotage_immediate_recycle false;
      Nvram.Strategy.set_sabotage_skip_nodirty_flush false;
      Nvram.Strategy.set_sabotage_skip_commit_fence false)
  @@ fun () ->
  if broken then (
    match S.broken_helper_selftest ~log:print_endline () with
    | Ok token ->
        Printf.printf
          "broken-helper self-test: violation caught, shrunk and replayed\n\
           token: %s\n"
          token;
        0
    | Error m ->
        Printf.printf "broken-helper self-test FAILED: %s\n" m;
        1)
  else if broken_recycle then (
    match S.recycle_selftest ~log:print_endline () with
    | Ok token ->
        Printf.printf
          "broken-recycle self-test: violation caught, shrunk and replayed\n\
           token: %s\n"
          token;
        0
    | Error m ->
        Printf.printf "broken-recycle self-test FAILED: %s\n" m;
        1)
  else if broken_nodirty then (
    match S.broken_nodirty_selftest ~log:print_endline () with
    | Ok token ->
        Printf.printf
          "broken-nodirty self-test: violation caught, shrunk and replayed\n\
           token: %s\n"
          token;
        0
    | Error m ->
        Printf.printf "broken-nodirty self-test FAILED: %s\n" m;
        1)
  else if broken_fewfence then (
    match S.broken_fewfence_selftest ~log:print_endline () with
    | Ok token ->
        Printf.printf
          "broken-fewfence self-test: violation caught, shrunk and replayed\n\
           token: %s\n"
          token;
        0
    | Error m ->
        Printf.printf "broken-fewfence self-test FAILED: %s\n" m;
        1)
  else
    let scenario =
      match scenario_name with
      | "pmwcas" -> S.pmwcas ~threads ~ops ~width ~addrs ()
      | "skiplist" -> S.skiplist ~threads ~ops ~keys ()
      | "bwtree" -> S.bwtree ~threads ~ops ~keys ()
      | "store" -> S.store ~threads ~ops ~keys ~shards ()
      | _ ->
          Printf.eprintf
            "unknown scenario %S (try pmwcas|skiplist|bwtree|store)\n"
            scenario_name;
          exit 2
    in
    (* A DST failure leaves the same forensic trail as a crash-sweep
       one: replay the shrunk token under a wide-open flight recorder
       and artifact the timeline alongside the token. *)
    let forensic token =
      if artifacts <> "none" then begin
        let was_on = Flight.tracing () in
        Flight.enable ~sample_shift:0 ();
        Flight.reset ();
        let note =
          match S.replay scenario token with
          | _ -> "token replayed under the flight recorder"
          | exception e -> "replay raised: " ^ Printexc.to_string e
        in
        let snap = Flight.snapshot () in
        if not was_on then Flight.disable ();
        match
          Harness.Forensics.write_artifact ~dir:artifacts
            ~suite:("dst-" ^ scenario_name) ~label:"violation"
            ~extra:
              [ ("token", V.String token); ("note", V.String note) ]
            snap
        with
        | path ->
            Printf.printf "forensic artifact: %s\n%s%!" path
              (Flight.postmortem snap)
        | exception e ->
            Printf.printf "forensics failed: %s\n" (Printexc.to_string e)
      end
    in
    match replay with
    | Some token ->
        let r = S.replay scenario token in
        Printf.printf "replay %s: %s\n" token (pp_verdict r.S.verdict);
        if L.verdict_ok r.S.verdict then 0 else 1
    | None -> (
        if hunt then (
          match S.hunt ~seeds:(List.init seeds (fun i -> i + 1)) scenario with
          | None ->
              Printf.printf
                "hunt: %d seeds, every crash point recovered durably\n" seeds;
              0
          | Some (token, r) ->
              let token = S.shrink_token scenario token in
              Printf.printf "hunt: %s\ntoken: %s\n" (pp_verdict r.S.verdict)
                token;
              forensic token;
              1)
        else
          match strategy with
          | "exhaustive" -> (
              let e, violations =
                S.exhaust ~preemptions ~max_schedules:max_runs scenario
              in
              Printf.printf
                "exhaustive: %d schedules at <= %d preemption(s)%s\n"
                e.Sc.schedules_run preemptions
                (if e.Sc.truncated then " (truncated)" else "");
              match violations with
              | [] ->
                  Printf.printf "all schedules linearizable\n";
                  0
              | (token, v) :: _ ->
                  Printf.printf
                    "%d violating schedule(s); first: %s\ntoken: %s\n"
                    (List.length violations) (pp_verdict v) token;
                  forensic token;
                  1)
          | ("random" | "pct") as strat -> (
              (* PCT change points land anywhere in the horizon; the
                 scenarios here run a few hundred to a few thousand
                 scheduler steps. *)
              let horizon = 16_384 in
              let failed = ref None in
              let seed = ref 1 in
              while !failed = None && !seed <= seeds do
                let strategy =
                  if strat = "random" then Sc.Random !seed
                  else Sc.Pct { seed = !seed; changes; horizon }
                in
                let r =
                  scenario.S.run
                    ~pick:(Sc.pick_of_strategy strategy)
                    ~fuel:None ~crash:None
                in
                if not (L.verdict_ok r.S.verdict) then failed := Some (!seed, r)
                else
                  Printf.printf "%s seed %d: %d ops linearizable (%d steps)\n"
                    strat !seed r.S.history_ops
                    (Array.length r.S.outcome.Sc.schedule);
                incr seed
              done;
              match !failed with
              | None -> 0
              | Some (seed, r) ->
                  let token =
                    S.shrink_token scenario
                      (S.encode_token ~schedule:r.S.outcome.Sc.schedule
                         ~crash:None)
                  in
                  Printf.printf "%s seed %d: %s\ntoken: %s\n" strat seed
                    (pp_verdict r.S.verdict) token;
                  forensic token;
                  1)
          | s ->
              Printf.eprintf "unknown strategy %S (try random|pct|exhaustive)\n"
                s;
              exit 2)

(* --- store-soak: crash mid-traffic, parallel recover, resume ----------- *)

let store_soak shards clients ops fuel evict kind mode recover_domains keys =
  let index =
    match kind with
    | "skiplist" -> Store.Skiplist
    | "bwtree" -> Store.Bwtree
    | k ->
        Printf.eprintf "unknown index kind %S (try skiplist|bwtree)\n" k;
        exit 2
  in
  let commit =
    match mode with
    | "group" -> Store.Group
    | "per-op" -> Store.Per_op
    | m ->
        Printf.eprintf "unknown commit mode %S (try group|per-op)\n" m;
        exit 2
  in
  let config =
    {
      Store.default_config with
      shards;
      index;
      commit;
      max_clients = clients + 1;
      heap_words = 1 lsl 16;
      batch_limit = 8;
    }
  in
  let words = align8 (Store.words_needed config) in
  let mem = Mem.create (Nvram.Config.make ~words ()) in
  let st = Store.create ~config mem ~base:0 in
  Mem.persist_all mem;
  Printf.printf
    "store-soak: %d shards (%s, %s commit), %d clients; crash after %d \
     device ops\n\
     %!"
    shards kind mode clients fuel;
  Mem.inject_crash_after mem fuel;
  let traffic st label =
    let crashed = Atomic.make 0 and completed = Atomic.make 0 in
    List.init clients (fun t ->
        Domain.spawn (fun () ->
            let sess = Store.open_session st in
            let rng = Random.State.make [| 0x50a6; t; ops |] in
            (try
               for j = 1 to ops do
                 let k = 1 + Random.State.int rng keys in
                 let v = ((t + 1) * 1_000_000) + j in
                 match Random.State.int rng 8 with
                 | 0 | 1 | 2 -> ignore (Store.insert sess ~key:k ~value:v)
                 | 3 -> ignore (Store.delete sess ~key:k)
                 | 4 | 5 -> ignore (Store.update sess ~key:k ~value:v)
                 | _ -> ignore (Store.find sess ~key:k)
               done;
               Store.close_session sess;
               Atomic.incr completed
             with Mem.Crash -> Atomic.incr crashed)))
    |> List.iter Domain.join;
    Printf.printf "%s: %d clients completed, %d unwound at the crash\n%!"
      label (Atomic.get completed) (Atomic.get crashed);
    Atomic.get crashed
  in
  let crashed = traffic st "pre-crash" in
  if crashed = 0 then begin
    Printf.printf
      "fuel never ran out — raise --ops or lower --fuel for a real soak\n";
    Mem.disarm mem
  end;
  (* Power loss: unflushed lines may or may not survive. *)
  let img = Mem.crash_image ~evict_prob:evict ~seed:7 mem in
  let t0 = Unix.gettimeofday () in
  let st', stats = Store.recover ~domains:recover_domains img ~base:0 in
  let dt = (Unix.gettimeofday () -. t0) *. 1e3 in
  let in_flight =
    List.fold_left
      (fun a (r : Store.shard_recovery) ->
        a + r.pmwcas.Pmwcas.Recovery.in_flight)
      0 stats
  in
  let rolled_back =
    List.fold_left
      (fun a (r : Store.shard_recovery) ->
        a + r.pmwcas.Pmwcas.Recovery.rolled_back + r.alloc_rolled_back)
      0 stats
  in
  Printf.printf
    "recovered %d shards across %d domains in %.2f ms: %d in-flight \
     PMwCASes, %d rollbacks\n\
     %!"
    shards recover_domains dt in_flight rolled_back;
  let errors = ref 0 in
  let audit label sess =
    (try Store.check_invariants sess
     with Failure m ->
       incr errors;
       Printf.printf "%s invariants FAILED: %s\n" label m);
    Printf.printf "%s: %d keys across %d shards\n%!" label
      (Store.length sess) shards
  in
  let sess' = Store.open_session st' in
  audit "post-recovery" sess';
  for i = 0 to shards - 1 do
    try ignore (Palloc.audit (Store.shard_palloc st' i))
    with Failure m ->
      incr errors;
      Printf.printf "shard %d palloc audit FAILED: %s\n" i m
  done;
  Store.close_session sess';
  (* Resume: the recovered store must take fresh traffic. *)
  let resumed_crashes = traffic st' "resumed" in
  if resumed_crashes > 0 then begin
    incr errors;
    Printf.printf "resumed traffic crashed without an armed injector\n"
  end;
  let sess'' = Store.open_session st' in
  audit "post-resume" sess'';
  Store.close_session sess'';
  if !errors = 0 then begin
    Printf.printf "store-soak: crash, parallel recovery and resume all OK\n";
    0
  end
  else begin
    Printf.printf "store-soak: %d error(s)\n" !errors;
    1
  end

(* --- space: descriptor pool sizing ------------------------------------ *)

let space threads max_words descs =
  let words =
    Pool.region_words ~max_words ~descs_per_thread:descs ~max_threads:threads
      ()
  in
  Printf.printf
    "%d threads x %d descriptors (max %d words each): %d NVRAM words = %d \
     KiB\n"
    threads descs max_words words
    (words * 8 / 1024);
  0

(* --- cmdliner wiring --------------------------------------------------- *)

open Cmdliner

let workers_t =
  Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Concurrent domains.")

let fuel_t =
  Arg.(
    value & opt int 5000
    & info [ "fuel" ] ~doc:"Stores before the injected power failure.")

let evict_t =
  Arg.(
    value & opt float 0.5
    & info [ "evict" ]
        ~doc:"Probability an unflushed cache line survives the crash.")

let rounds_t =
  Arg.(value & opt int 50 & info [ "rounds" ] ~doc:"Crash/recover rounds.")

let threads_t =
  Arg.(value & opt int 32 & info [ "threads" ] ~doc:"Worker threads.")

let max_words_t =
  Arg.(value & opt int 8 & info [ "max-words" ] ~doc:"Words per descriptor.")

let descs_t =
  Arg.(
    value & opt int 32 & info [ "descs" ] ~doc:"Descriptors per thread.")

let crash_demo_cmd =
  Cmd.v
    (Cmd.info "crash-demo"
       ~doc:"Concurrent transfers, injected power failure, recovery audit.")
    Term.(const crash_demo $ workers_t $ fuel_t $ evict_t)

let torture_cmd =
  Cmd.v
    (Cmd.info "torture"
       ~doc:"Repeated skip-list crash/recover rounds with invariant checks.")
    Term.(const torture $ rounds_t $ evict_t)

let ops_t =
  Arg.(
    value & opt int 2000
    & info [ "ops" ] ~doc:"PMwCAS operations per worker.")

let dump_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump" ] ~doc:"Write the merged event log to $(docv).")

let trace_check_cmd =
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:
         "Run a traced multi-domain PMwCAS workload and replay the event \
          log through the persistence-ordering checker.")
    Term.(const (fun dump w o -> trace_check ?dump w o) $ dump_t $ workers_t $ ops_t)

let space_cmd =
  Cmd.v
    (Cmd.info "space" ~doc:"Descriptor pool space requirements (Appendix B).")
    Term.(const space $ threads_t $ max_words_t $ descs_t)

let suite_t =
  Arg.(
    value & opt string "all"
    & info [ "suite" ]
        ~doc:"Suite to sweep: all, bank, palloc, skiplist or bwtree.")

let budget_t =
  Arg.(
    value & opt int 512
    & info [ "budget" ]
        ~doc:
          "Max distinct crash points per suite (totals beyond it are \
           stratified-sampled).")

let seeds_t =
  Arg.(
    value & opt int 2
    & info [ "seeds" ]
        ~doc:"Eviction seeds per crash point (plus the no-eviction image).")

let domains_t =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~doc:"Worker domains to farm sweep points across.")

let sweep_trace_t =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Also replay every crashed run through the persistence-ordering \
           checker (slow).")

let sabotage_t =
  Arg.(
    value & flag
    & info [ "sabotage" ]
        ~doc:
          "Self-test: drop the precommit flushes and demand that the sweep \
           detects the violation (exit 0 iff detected).")

let sabotage_drain_t =
  Arg.(
    value & flag
    & info [ "sabotage-drain" ]
        ~doc:
          "Self-test for the async write-back pipeline: fences stop \
           draining pending lines, so clwb'd data never becomes durable. \
           Every suite must fail (exit 0 iff all do).")

let broken_flit_t =
  Arg.(
    value & flag
    & info [ "broken-flit" ]
        ~doc:
          "Self-test for destination-only persistence: destination passes \
           skip the write-backs they decided were needed, so fresh node \
           bodies never durably reach NVM. Every suite must fail (exit 0 \
           iff all do).")

let strategy_t =
  Arg.(
    value & opt string "paper"
    & info [ "strategy" ]
        ~doc:
          "Commit-protocol strategy: paper (the paper's dirty-bit \
           protocol), nodirty (unconditional flushes, no dirty bits) or \
           fewfence (reduced-fence commit ordering).")

let broken_nodirty_t =
  Arg.(
    value & flag
    & info [ "broken-nodirty" ]
        ~doc:
          "Self-test for the nodirty strategy (forces --strategy nodirty): \
           writers skip the unconditional flushes that replace the \
           dirty-bit machinery, so nothing the protocol installs durably \
           reaches NVM. Every suite must fail (exit 0 iff all do).")

let broken_fewfence_t =
  Arg.(
    value & flag
    & info [ "broken-fewfence" ]
        ~doc:
          "Self-test for the fewfence strategy (forces --strategy \
           fewfence): the relocated commit fence is dropped, leaving \
           acknowledged operations pending until some unrelated fence \
           drains them. The sweep must detect and shrink the resulting \
           lost-ack window (exit 0 iff it does).")

let sweep_evict_t =
  Arg.(
    value & opt float 0.25
    & info [ "evict" ]
        ~doc:"Eviction probability for the seeded crash images.")

let sweep_metrics_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ]
        ~doc:
          "Enable telemetry and write the registry snapshot plus per-suite \
           summaries as JSON to $(docv).")

let artifacts_t =
  Arg.(
    value
    & opt string Harness.Forensics.default_dir
    & info [ "artifacts" ]
        ~doc:
          "Directory for failure forensic artifacts (timeline, postmortem, \
           pending lines, in-flight descriptors); \"none\" disables them.")

let run_id_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "run-id" ]
        ~doc:
          "Tag for this invocation, stamped into metrics output and \
           artifact names (default: time + pid derived).")

let crash_sweep_cmd =
  Cmd.v
    (Cmd.info "crash-sweep"
       ~doc:
         "Self-calibrating exhaustive crash-point sweep: run each suite \
          once to count its stores, then crash it at every store boundary \
          (or a stratified sample), recover every image and check \
          durable-prefix semantics.")
    Term.(
      const crash_sweep $ suite_t $ budget_t $ sweep_evict_t $ seeds_t
      $ domains_t $ sweep_trace_t $ strategy_t $ sabotage_t $ sabotage_drain_t
      $ broken_flit_t $ broken_nodirty_t $ broken_fewfence_t $ sweep_metrics_t
      $ artifacts_t $ run_id_t)

let stats_domains_t =
  Arg.(value & opt int 2 & info [ "domains" ] ~doc:"Worker domains.")

let stats_seconds_t =
  Arg.(
    value & opt float 0.5
    & info [ "seconds" ] ~doc:"Workload duration per domain.")

let format_t =
  Arg.(
    value & opt string "json"
    & info [ "format" ] ~doc:"Output format: json, csv or prom.")

let out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~doc:"Write to $(docv) instead of stdout.")

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a short mixed workload (PMwCAS + skip list + Bw-tree on one \
          simulated device) with telemetry enabled and dump the full \
          registry snapshot: per-phase times, latency histograms, epoch \
          counters.")
    Term.(
      const stats $ strategy_t $ stats_domains_t $ stats_seconds_t $ format_t
      $ out_t)

let file_t =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Metrics JSON file to validate.")

let require_coalescing_t =
  Arg.(
    value & flag
    & info [ "require-coalescing" ]
        ~doc:
          "Additionally demand evidence of the async write-back pipeline: \
           summed over the rows' nvram snapshots, elided_flushes > 0 and \
           fences <= flushes.")

let require_alloc_counters_t =
  Arg.(
    value & flag
    & info
        [ "require-alloc-counters" ]
        ~doc:
          "Additionally demand the allocator instrumentation: the \
           registry's palloc counter source (cache_hits, freelist_hits, \
           carves, carved_blocks, arena_steals), epoch deferred/freed > 0, \
           and at least one row carrying the descriptor-pool counters \
           (pmwcas.desc_local).")

let dst_scenario_t =
  Arg.(
    value & opt string "pmwcas"
    & info [ "scenario" ] ~doc:"Scenario: pmwcas, skiplist, bwtree or store.")

let dst_strategy_t =
  Arg.(
    value & opt string "random"
    & info [ "strategy" ] ~doc:"Schedule strategy: random, pct or exhaustive.")

let dst_protocol_t =
  (* --strategy is taken by the schedule strategy above. *)
  Arg.(
    value & opt string "paper"
    & info [ "protocol" ]
        ~doc:"Commit-protocol strategy: paper, nodirty or fewfence.")

let dst_threads_t =
  Arg.(
    value & opt int 2 & info [ "threads" ] ~doc:"Logical threads (fibers).")

let dst_ops_t =
  Arg.(value & opt int 2 & info [ "ops" ] ~doc:"Operations per thread.")

let dst_width_t =
  Arg.(
    value & opt int 2
    & info [ "width" ] ~doc:"Words per multi-word CAS (pmwcas scenario).")

let dst_addrs_t =
  Arg.(
    value & opt int 4
    & info [ "addrs" ] ~doc:"Shared words to draw from (pmwcas scenario).")

let dst_keys_t =
  Arg.(
    value & opt int 5
    & info [ "keys" ] ~doc:"Key-space size (index scenarios).")

let dst_shards_t =
  Arg.(
    value & opt int 2 & info [ "shards" ] ~doc:"Shards (store scenario).")

let dst_seeds_t =
  Arg.(
    value & opt int 5
    & info [ "seeds" ] ~doc:"Seeds to try for random/pct/hunt runs.")

let preemptions_t =
  Arg.(
    value & opt int 1
    & info [ "preemptions" ]
        ~doc:"Preemption bound for exhaustive enumeration.")

let max_runs_t =
  Arg.(
    value & opt int 20000
    & info [ "max-runs" ] ~doc:"Schedule cap for exhaustive enumeration.")

let changes_t =
  Arg.(
    value & opt int 3
    & info [ "changes" ] ~doc:"Priority change points for the pct strategy.")

let hunt_t =
  Arg.(
    value & flag
    & info [ "hunt" ]
        ~doc:
          "Scheduled-crash hunt: re-run each seed's schedule stopping at \
           every step, recover each (evicting) crash image and check \
           durable linearizability.")

let broken_helper_t =
  Arg.(
    value & flag
    & info [ "broken-helper" ]
        ~doc:
          "Self-test: sabotage the helper's persist-before-decide flush and \
           demand the DST stack finds, shrinks and replays a durable \
           linearizability violation (exit 0 iff it does).")

let broken_recycle_t =
  Arg.(
    value & flag
    & info [ "broken-recycle" ]
        ~doc:
          "Self-test: sabotage the descriptor pool's epoch-limbo retirement \
           (finished descriptors recycle immediately, while helpers may \
           still hold references) and demand the DST stack finds, shrinks \
           and replays the resulting violation (exit 0 iff it does).")

let dst_sabotage_t =
  Arg.(
    value & flag
    & info [ "sabotage" ]
        ~doc:
          "Run with the precommit-flush sabotage enabled (to replay \
           broken-helper tokens).")

let dst_sabotage_recycle_t =
  Arg.(
    value & flag
    & info [ "sabotage-recycle" ]
        ~doc:
          "Run with the immediate-recycle sabotage enabled (to replay \
           broken-recycle tokens).")

let dst_sabotage_nodirty_t =
  Arg.(
    value & flag
    & info [ "sabotage-nodirty" ]
        ~doc:
          "Run under the nodirty strategy with its unconditional flushes \
           sabotaged (to replay broken-nodirty tokens).")

let dst_sabotage_fewfence_t =
  Arg.(
    value & flag
    & info [ "sabotage-fewfence" ]
        ~doc:
          "Run under the fewfence strategy with the relocated commit fence \
           sabotaged (to replay broken-fewfence tokens).")

let replay_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"TOKEN"
        ~doc:"Replay a schedule token printed by a failing run.")

let dst_cmd =
  Cmd.v
    (Cmd.info "dst"
       ~doc:
         "Deterministic-interleaving scheduler runs over the real PMwCAS \
          stack: random/PCT/exhaustive schedules, scheduled-crash hunts, \
          durable-linearizability checking, replayable failure tokens.")
    Term.(
      const dst $ dst_scenario_t $ dst_strategy_t $ dst_protocol_t
      $ dst_threads_t $ dst_ops_t $ dst_width_t $ dst_addrs_t $ dst_keys_t
      $ dst_shards_t $ dst_seeds_t $ preemptions_t $ max_runs_t $ changes_t
      $ hunt_t $ broken_helper_t $ broken_recycle_t $ broken_nodirty_t
      $ broken_fewfence_t $ dst_sabotage_t $ dst_sabotage_recycle_t
      $ dst_sabotage_nodirty_t $ dst_sabotage_fewfence_t $ replay_t
      $ artifacts_t $ run_id_t)

let require_store_counters_t =
  Arg.(
    value & flag
    & info
        [ "require-store-counters" ]
        ~doc:
          "Additionally demand the group-commit instrumentation: the \
           registry's store counter source (commits, batched_ops, \
           merged_updates, solo_applies, direct_applies) with commits > 0, \
           and a populated store.batch_size histogram.")

let require_flit_counters_t =
  Arg.(
    value & flag
    & info
        [ "require-flit-counters" ]
        ~doc:
          "Additionally demand the destination-only-persistence \
           instrumentation: the registry's flit counter source with both \
           elided and destination_flushes > 0.")

let require_strategy_counters_t =
  Arg.(
    value & flag
    & info
        [ "require-strategy-counters" ]
        ~doc:
          "Additionally demand the commit-protocol strategy \
           instrumentation: the registry's strategy counter source naming \
           the strategy, with dirty_cas > 0 under paper, dirty_cas = 0 \
           under nodirty and commit_batches > 0 under fewfence.")

let check_metrics_cmd =
  Cmd.v
    (Cmd.info "check-metrics"
       ~doc:
         "Validate a bench --metrics report: meta block, populated latency \
          histograms with percentiles, per-phase times, epoch counters and \
          per-experiment rows.")
    Term.(
      const check_metrics $ require_coalescing_t $ require_alloc_counters_t
      $ require_store_counters_t $ require_flit_counters_t
      $ require_strategy_counters_t $ file_t)

let soak_shards_t =
  Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Store shards.")

let soak_clients_t =
  Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Client domains.")

let soak_ops_t =
  Arg.(
    value & opt int 4000
    & info [ "ops" ] ~doc:"KV operations per client (per phase).")

let soak_kind_t =
  Arg.(
    value & opt string "skiplist"
    & info [ "kind" ] ~doc:"Shard index: skiplist or bwtree.")

let soak_mode_t =
  Arg.(
    value & opt string "group"
    & info [ "mode" ] ~doc:"Commit mode: group or per-op.")

let soak_recover_domains_t =
  Arg.(
    value & opt int 2
    & info [ "recover-domains" ] ~doc:"Domains for parallel recovery.")

let soak_keys_t =
  Arg.(value & opt int 512 & info [ "keys" ] ~doc:"Key-space size.")

let store_soak_cmd =
  Cmd.v
    (Cmd.info "store-soak"
       ~doc:
         "Sharded-store crash/restart soak: run concurrent group-commit \
          traffic, lose power mid-batch, recover every shard in parallel \
          from the crash image, audit the indexes and allocators, then \
          resume traffic on the recovered store.")
    Term.(
      const store_soak $ soak_shards_t $ soak_clients_t $ soak_ops_t $ fuel_t
      $ evict_t $ soak_kind_t $ soak_mode_t $ soak_recover_domains_t
      $ soak_keys_t)

let accounts_t =
  Arg.(
    value & opt int 8
    & info [ "accounts" ]
        ~doc:"Shared accounts — fewer means more contention and helping.")

let width_t =
  Arg.(
    value & opt int 4
    & info [ "width" ]
        ~doc:
          "Accounts touched per transfer — wider descriptors spend longer \
           in flight, so other domains help more.")

let flush_delay_t =
  Arg.(
    value & opt int 0
    & info [ "flush-delay" ]
        ~doc:
          "Simulated per-line write-back stall (cpu-relax iterations); \
           stretches the in-flight window on hosts with few cores.")

let trace_out_t =
  Arg.(
    value & opt string "trace.json"
    & info [ "out" ] ~doc:"Chrome trace-event JSON output file.")

let tail_t =
  Arg.(
    value & opt int 20
    & info [ "tail" ] ~doc:"Events per domain in the printed postmortem.")

let sample_shift_t =
  Arg.(
    value & opt int 0
    & info [ "sample-shift" ]
        ~doc:"Record 1 in 2^$(docv) outermost op spans (0 = every op).")

let capacity_t =
  Arg.(
    value & opt int 4096
    & info [ "capacity" ] ~doc:"Ring-buffer records per domain.")

let trace_dump_cmd =
  Cmd.v
    (Cmd.info "trace-dump"
       ~doc:
         "Run a contended multi-domain PMwCAS workload under the flight \
          recorder, print the per-domain postmortem tails and write a \
          Chrome trace-event / Perfetto JSON file with op spans, \
          low-level instants and help-chain flow edges.")
    Term.(
      const trace_dump $ workers_t $ ops_t $ accounts_t $ width_t
      $ flush_delay_t $ trace_out_t $ tail_t $ sample_shift_t $ capacity_t
      $ run_id_t)

let require_help_edge_t =
  Arg.(
    value & flag
    & info [ "require-help-edge" ]
        ~doc:
          "Additionally demand at least one help-chain flow pair linking \
           two different domains.")

let trace_file_t =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Trace JSON file to validate.")

let check_trace_cmd =
  Cmd.v
    (Cmd.info "check-trace"
       ~doc:
         "Validate a flight-recorder trace export: well-formed trace-event \
          records, non-negative span durations, matched flow pairs and a \
          run id.")
    Term.(const check_trace_file $ require_help_edge_t $ trace_file_t)

let main =
  Cmd.group
    (Cmd.info "pmwcas_cli" ~version:"1.0"
       ~doc:"PMwCAS demos and utilities (Easy Lock-Free Indexing in NVRAM).")
    [
      crash_demo_cmd; torture_cmd; trace_check_cmd; trace_dump_cmd;
      check_trace_cmd; crash_sweep_cmd; dst_cmd; space_cmd; stats_cmd;
      check_metrics_cmd; store_soak_cmd;
    ]

let () = Stdlib.exit (Cmd.eval' main)
