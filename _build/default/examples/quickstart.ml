(* Quickstart: a persistent multi-word compare-and-swap in ~40 lines.

     dune exec examples/quickstart.exe

   Layout a simulated NVRAM device, run a 3-word PMwCAS, crash the
   machine, recover, and observe the all-or-nothing guarantee. *)

module Mem = Nvram.Mem
module Pool = Pmwcas.Pool
module Op = Pmwcas.Op

let () =
  (* A 64K-word simulated NVRAM: descriptor pool at 0, data above it. *)
  let mem = Mem.create (Nvram.Config.make ~words:65536 ()) in
  let pool = Pool.create mem ~base:0 ~max_threads:4 in
  let data = 32768 in

  (* Initial durable state: three words [10; 20; 30]. *)
  List.iteri (fun i v -> Mem.write mem (data + i) v) [ 10; 20; 30 ];
  Mem.persist_all mem;

  (* The paper's API: allocate a descriptor, add words, execute. *)
  let h = Pool.register pool in
  let d = Pool.alloc_desc h in
  Pool.add_word d ~addr:data ~expected:10 ~desired:11;
  Pool.add_word d ~addr:(data + 1) ~expected:20 ~desired:21;
  Pool.add_word d ~addr:(data + 2) ~expected:30 ~desired:31;
  assert (Op.execute d);
  Printf.printf "after PMwCAS:   %d %d %d\n"
    (Op.read_with h data)
    (Op.read_with h (data + 1))
    (Op.read_with h (data + 2));

  (* A failed PMwCAS changes nothing. *)
  let d = Pool.alloc_desc h in
  Pool.add_word d ~addr:data ~expected:999 ~desired:0;
  Pool.add_word d ~addr:(data + 1) ~expected:21 ~desired:0;
  assert (not (Op.execute d));
  Printf.printf "after failure:  %d %d %d  (unchanged)\n"
    (Op.read_with h data)
    (Op.read_with h (data + 1))
    (Op.read_with h (data + 2));

  (* Power failure: take the device's crash image and recover. The
     completed operation survives; no flag bits, no partial states. *)
  let img = Mem.crash_image mem in
  let pool', stats = Pmwcas.Recovery.run img ~base:0 in
  Printf.printf "recovery:       %s\n"
    (Format.asprintf "%a" Pmwcas.Recovery.pp_stats stats);
  let h' = Pool.register pool' in
  Printf.printf "after recovery: %d %d %d\n"
    (Op.read_with h' data)
    (Op.read_with h' (data + 1))
    (Op.read_with h' (data + 2))
