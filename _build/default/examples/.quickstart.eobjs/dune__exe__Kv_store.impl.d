examples/kv_store.ml: Domain Format List Nvram Palloc Pmwcas Printf Random Skiplist
