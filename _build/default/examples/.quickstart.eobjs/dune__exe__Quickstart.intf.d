examples/quickstart.mli:
