examples/quickstart.ml: Format List Nvram Pmwcas Printf
