examples/instant_recovery.ml: Bwtree Format Nvram Palloc Pmwcas Printf Random Unix
