examples/instant_recovery.mli:
