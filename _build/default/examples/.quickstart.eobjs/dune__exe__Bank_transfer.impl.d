examples/bank_transfer.ml: Atomic Domain Format List Nvram Pmwcas Printf Random
