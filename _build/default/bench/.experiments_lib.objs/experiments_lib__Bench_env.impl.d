bench/bench_env.ml: Bwtree Nvram Palloc Pmwcas Skiplist
