bench/bechamel_suite.ml: Analyze Bechamel Bench_env Benchmark Bwtree Harness Hashtbl Instance List Measure Pmwcas Printf Random Skiplist Staged Test Time Toolkit
