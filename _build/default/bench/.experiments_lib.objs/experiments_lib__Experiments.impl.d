bench/experiments.ml: Array Bench_env Bwtree Harness Htm List Nvram Palloc Pmwcas Printf Random Skiplist Str String Sys Unix Workload
