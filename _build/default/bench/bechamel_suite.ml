(* E11: single-thread latency microbenchmarks via Bechamel — one staged
   test per primitive and per index point-operation. *)

open Bechamel
open Toolkit
module Pool = Pmwcas.Pool
module Op = Pmwcas.Op
module Pm = Skiplist.Pm
module Tree = Bwtree.Tree

let mwcas_test ~name ~persistent ~nwords =
  let env =
    Bench_env.make ~persistent ~max_threads:2 ~heap_words:(1 lsl 12)
      ~map_words:8 ~data_words:4096 ()
  in
  Bench_env.init_data env 0;
  let h = Pool.register env.pool in
  let rng = Random.State.make [| 42 |] in
  Test.make ~name
    (Staged.stage (fun () ->
         let base = Random.State.int rng (4096 - nwords) in
         let d = Pool.alloc_desc h in
         Pool.with_epoch h (fun () ->
             for w = 0 to nwords - 1 do
               let a = env.data + base + w in
               let v = Op.read env.pool a in
               Pool.add_word d ~addr:a ~expected:v ~desired:(v + 1)
             done;
             ignore (Op.execute d))))

let pcas_test () =
  let env =
    Bench_env.make ~max_threads:2 ~heap_words:(1 lsl 12) ~map_words:8
      ~data_words:4096 ()
  in
  Bench_env.init_data env 0;
  let rng = Random.State.make [| 42 |] in
  Test.make ~name:"pcas (1 word)"
    (Staged.stage (fun () ->
         let a = Bench_env.(env.data) + Random.State.int rng 4096 in
         let v = Pmwcas.Pcas.read env.mem a in
         ignore (Pmwcas.Pcas.cas env.mem a ~expected:v ~desired:(v + 1))))

let skiplist_tests () =
  let env =
    Bench_env.make ~max_threads:2 ~heap_words:(1 lsl 22) ~map_words:8
      ~data_words:8 ()
  in
  let t = Pm.create ~pool:env.pool ~palloc:env.palloc ~anchor:env.sl_anchor () in
  let h = Pm.register ~seed:1 t in
  for i = 0 to 9_999 do
    ignore (Pm.insert h ~key:(2 * i) ~value:i)
  done;
  let rng = Random.State.make [| 42 |] in
  let fresh = ref 1 in
  [
    Test.make ~name:"skiplist find (10k keys)"
      (Staged.stage (fun () ->
           ignore (Pm.find h ~key:(2 * Random.State.int rng 10_000))));
    Test.make ~name:"skiplist insert+delete"
      (Staged.stage (fun () ->
           let k = 20_000 + !fresh in
           fresh := !fresh + 2;
           ignore (Pm.insert h ~key:k ~value:k);
           ignore (Pm.delete h ~key:k)));
  ]

let bwtree_tests () =
  let env =
    Bench_env.make ~max_threads:2 ~heap_words:(1 lsl 22)
      ~map_words:(1 lsl 14) ~data_words:8 ()
  in
  let t =
    Tree.create ~pool:env.pool ~palloc:env.palloc ~anchor:env.bt_anchor
      ~map_base:env.map_base ~map_words:env.map_words ()
  in
  let h = Tree.register t in
  for i = 0 to 9_999 do
    ignore (Tree.put h ~key:(2 * i) ~value:i)
  done;
  let rng = Random.State.make [| 42 |] in
  [
    Test.make ~name:"bwtree get (10k keys)"
      (Staged.stage (fun () ->
           ignore (Tree.get h ~key:(2 * Random.State.int rng 10_000))));
    Test.make ~name:"bwtree put"
      (Staged.stage (fun () ->
           let k = 2 * Random.State.int rng 10_000 in
           ignore (Tree.put h ~key:k ~value:k)));
  ]

let run () =
  let tests =
    [
      pcas_test ();
      mwcas_test ~name:"mwcas volatile (4 words)" ~persistent:false ~nwords:4;
      mwcas_test ~name:"pmwcas (4 words)" ~persistent:true ~nwords:4;
      mwcas_test ~name:"pmwcas (8 words)" ~persistent:true ~nwords:8;
    ]
    @ skiplist_tests () @ bwtree_tests ()
  in
  let test = Test.make_grouped ~name:"latency" ~fmt:"%s %s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true
      ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n=== E11  Single-thread latency (Bechamel, ns/op) ===\n";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Printf.sprintf "%.0f" e
        | _ -> "n/a"
      in
      rows := [ name; est ] :: !rows)
    results;
  Harness.Table.print ~header:[ "operation"; "ns/op" ]
    (List.sort compare !rows)
