(* Entry point: regenerate the paper's tables and figures.

   usage: bench/main.exe [all|e1|..|e10|bechamel] [--full]

   With no argument, runs every experiment at the quick scale. *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full_scale = List.mem "--full" args in
  let names = List.filter (fun a -> a <> "--full") args in
  let scale =
    if full_scale then Experiments_lib.Experiments.full else Experiments_lib.Experiments.quick
  in
  Printf.printf
    "PMwCAS reproduction benchmarks (%s scale)\n\
     Single-core host: domains interleave; compare columns, not cores.\n"
    (if full_scale then "full" else "quick");
  match names with
  | [] | [ "all" ] ->
      Experiments_lib.Experiments.run_all ~full_scale ();
      Experiments_lib.Bechamel_suite.run ()
  | names ->
      List.iter
        (fun n ->
          if n = "bechamel" || n = "e11" then Experiments_lib.Bechamel_suite.run ()
          else Experiments_lib.Experiments.by_name n scale)
        names
