(** Bw-tree record formats: base pages and delta records (Section 6.2).

    All records live in NVRAM blocks and are immutable once published —
    updates prepend new deltas to a page's chain; the only mutable words
    in the whole tree are the mapping-table entries, which are PMwCAS
    targets. Record words therefore carry no dirty bits: writers persist
    a record in full before publishing it.

    {v
    leaf base   [tag; count; low; high; right_lpid; keys[c]; values[c]]
    inner base  [tag; count; low; high; leftmost;   keys[c]; children[c]]
    put         [tag; next; key; value]          (leaf upsert)
    del         [tag; next; key]                 (leaf delete)
    leaf split  [tag; next; sep; right_lpid]     (keys >= sep moved)
    inner split [tag; next; sep; right_lpid]
    index entry [tag; next; sep; child_lpid]     (parent learns of a split)
    index del   [tag; next; sep; victim_lpid]    (parent forgets a merge)
    merge       [tag; next; victim_top; sep; new_high; new_right]
    v}

    [high] uses [Nvram.Flags.max_payload] as +infinity. Inner entry
    [(sep, child)] routes keys in [\[sep, next sep)]; keys below the first
    sep route to [leftmost]. *)

type tag =
  | Leaf_base
  | Inner_base
  | Put
  | Del
  | Leaf_split
  | Inner_split
  | Index_entry
  | Index_del
  | Merge

val tag_to_int : tag -> int
val tag_of_int : int -> tag
val pp_tag : Format.formatter -> tag -> unit

val plus_inf : int
(** Sentinel for an unbounded [high]. *)

val read_tag : Nvram.Mem.t -> int -> tag

(** {1 Field accessors} (addresses relative to the record base) *)

val next : Nvram.Mem.t -> int -> int
(** Next record in the chain (deltas only). *)

(** {1 Base pages} *)

type base = {
  kind : [ `Leaf | `Inner ];
  count : int;
  low : int;
  high : int;
  link : int;  (** right sibling lpid (leaf) / leftmost child (inner) *)
  keys : int array;
  payloads : int array;  (** values (leaf) / child lpids (inner) *)
}

val base_words : count:int -> int
val read_base : Nvram.Mem.t -> int -> base

val write_base : Nvram.Mem.t -> int -> base -> unit
(** Writes all words; does not persist (caller flushes before publish). *)

val base_find : Nvram.Mem.t -> int -> key:int -> int option
(** Binary search a leaf base in place (no array materialization). *)

val base_route : Nvram.Mem.t -> int -> key:int -> int
(** Route [key] through an inner base in place: the child lpid of the
    entry with the largest separator [<= key], or the leftmost child. *)

(** {1 Delta records} *)

val delta_words : tag -> int

val write_put : Nvram.Mem.t -> int -> next:int -> key:int -> value:int -> unit
val write_del : Nvram.Mem.t -> int -> next:int -> key:int -> unit

val write_split :
  Nvram.Mem.t -> int -> kind:[ `Leaf | `Inner ] -> next:int -> sep:int
  -> right:int -> unit

val write_index_entry :
  Nvram.Mem.t -> int -> next:int -> sep:int -> child:int -> unit

val write_index_del :
  Nvram.Mem.t -> int -> next:int -> sep:int -> victim:int -> unit

val write_merge :
  Nvram.Mem.t -> int -> next:int -> victim_top:int -> sep:int -> new_high:int
  -> new_right:int -> unit

val field : Nvram.Mem.t -> int -> int -> int
(** [field mem p i] — raw word [i] of the record at [p]. *)

val chain_blocks : Nvram.Mem.t -> int -> int list
(** Every block of the chain rooted at a record pointer, following both
    branches of merge deltas; used to release a replaced chain. *)
