lib/bwtree/tree.mli: Format Nvram Palloc Pmwcas
