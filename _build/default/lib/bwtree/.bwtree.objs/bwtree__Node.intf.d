lib/bwtree/node.mli: Format Nvram
