lib/bwtree/tree.ml: Array Atomic Epoch Format Hashtbl List Node Nvram Palloc Pmwcas Printf
