lib/bwtree/node.ml: Array Format Nvram Printf
