(** The Bw-tree: a lock-free B+-tree over a mapping table (Section 6.2).

    Logical pages are identified by LPIDs; the mapping table translates an
    LPID to the head of the page's {e delta chain}. Updates never write a
    page in place — they prepend a delta and swing the mapping entry. The
    mapping entries are the only mutable words, and every one of them is a
    PMwCAS target:

    - {b record updates} install a put/delete delta with a 1-word PMwCAS
      whose [ReserveEntry] transfers ownership of the delta block
      (Section 5.2), so no crash can leak it;
    - {b consolidation} replaces a long chain with a fresh base page; a
      finalize callback releases every block of the replaced chain with
      the pool's crash-safe free ordering;
    - {b split} is the paper's flagship simplification: a {e single}
      3-word PMwCAS installs the split delta on the page, the new sibling
      in a fresh mapping slot, and the index-entry delta on the parent —
      no multi-step SMO, no in-progress-split states for other threads to
      observe, no help-along code in the tree;
    - {b merge} of a leaf into its left sibling is likewise one 3-word
      PMwCAS (merge delta on the left, index-delete delta on the parent,
      victim mapping slot cleared);
    - {b root split} swings the fixed root LPID to a new inner page and
      re-homes the old chain under a fresh LPID, atomically.

    As with the skip list, there is no tree-specific recovery code: run
    {!Palloc.recover}, then {!Pmwcas.Recovery.run} (passing
    {!recovery_callback}), then {!attach}.

    Keys and values are non-negative integers below
    [Nvram.Flags.max_payload]; keys are unique. Reverse scans are not
    offered (Bw-trees scan forward along leaf side-links); the
    doubly-linked skip list covers that access pattern.

    Simplifications relative to the paper's full system, recorded in
    DESIGN.md: inner-node merges and root height shrinking are not
    implemented (inner pages split but never merge back). *)

type t

type config = {
  consolidate_len : int;  (** Chain length that triggers consolidation. *)
  split_max : int;  (** Record count that triggers a split. *)
  merge_min : int;  (** Leaf record count that triggers a merge. *)
}

val default_config : config
val anchor_words : int

val create :
  ?config:config -> pool:Pmwcas.Pool.t -> palloc:Palloc.t -> anchor:int
  -> map_base:int -> map_words:int -> unit -> t
(** Format a tree: anchor at [anchor], mapping table of [map_words]
    entries at [map_base] (both line-aligned, carved by the caller).
    Registers the consolidation callback on the pool — create trees in
    the same order on every start so callback ids stay stable.
    Idempotent across creation crashes. *)

val attach : pool:Pmwcas.Pool.t -> palloc:Palloc.t -> anchor:int -> t
(** Re-open after recovery. The pool must have been recovered with
    {!recovery_callback} at the same registration position that [create]
    used. Rebuilds the volatile free-LPID list by scanning the mapping
    table. @raise Failure if the anchor is not formatted. *)

val recovery_callback : Nvram.Mem.t -> Pmwcas.Pool.callback
(** The consolidation finalize callback, for re-registration through
    [Pmwcas.Recovery.run ~callbacks] before [attach]. *)

type handle

val register : t -> handle
val unregister : handle -> unit

(** {1 Record operations} *)

val put : handle -> key:int -> value:int -> int option
(** Upsert; returns the previous value, if any. *)

val insert : handle -> key:int -> value:int -> bool
(** Insert only if absent. *)

val remove : handle -> key:int -> bool
(** Delete; [false] if the key was absent. *)

val get : handle -> key:int -> int option

val fold_range :
  handle -> lo:int -> hi:int -> init:'a -> f:('a -> key:int -> value:int -> 'a)
  -> 'a
(** Forward scan over [\[lo, hi\]] along leaf side-links. *)

val length : handle -> int

(** {1 Introspection} *)

type stats = {
  height : int;
  leaf_pages : int;
  inner_pages : int;
  chain_records : int;  (** Total records across all chains. *)
  consolidations : int;
  splits : int;
  root_splits : int;
  merges : int;
}

val stats : handle -> stats
val pp_stats : Format.formatter -> stats -> unit

val check_invariants : handle -> unit
(** Quiescent structural audit: exact low/high bounds at every node,
    sorted keys, children partitioning their parent's range, uniform leaf
    depth, side-link chain equal to the in-order leaf sequence, and no
    unreachable non-zero mapping entries. @raise Failure on violation. *)

val quiesce : handle -> unit
(** Advance the epoch and drain this handle's deferred reclamation. *)

val consolidate_all : handle -> unit
(** Force-consolidate every reachable page (tests and space accounting). *)
