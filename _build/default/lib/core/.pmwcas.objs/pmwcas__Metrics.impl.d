lib/core/metrics.ml: Array Atomic Domain Format
