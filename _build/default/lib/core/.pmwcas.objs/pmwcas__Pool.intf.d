lib/core/pool.mli: Epoch Layout Metrics Nvram Palloc
