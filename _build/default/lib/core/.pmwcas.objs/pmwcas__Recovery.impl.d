lib/core/recovery.ml: Format Layout Nvram Pool Printf
