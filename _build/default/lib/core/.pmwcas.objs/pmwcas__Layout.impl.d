lib/core/layout.ml: Format Nvram Printf
