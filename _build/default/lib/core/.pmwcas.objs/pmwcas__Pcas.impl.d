lib/core/pcas.ml: Nvram
