lib/core/recovery.mli: Format Nvram Palloc Pool
