lib/core/op.ml: Array Layout Metrics Nvram Pcas Pool
