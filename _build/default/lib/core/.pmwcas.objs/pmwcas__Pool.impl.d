lib/core/pool.ml: Array Atomic Domain Epoch Layout List Metrics Nvram Palloc Printf
