lib/core/layout.mli: Format
