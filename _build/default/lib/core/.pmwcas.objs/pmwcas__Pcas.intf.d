lib/core/pcas.mli: Nvram
