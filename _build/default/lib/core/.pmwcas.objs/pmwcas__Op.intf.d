lib/core/op.mli: Nvram Pool
