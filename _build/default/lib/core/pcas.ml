module Mem = Nvram.Mem
module Flags = Nvram.Flags

let persist mem a v =
  Mem.clwb mem a;
  if Flags.is_dirty v then
    ignore (Mem.cas mem a ~expected:v ~desired:(Flags.clear_dirty v))

let read mem a =
  let v = Mem.read mem a in
  if Flags.is_dirty v then begin
    persist mem a v;
    Flags.clear_dirty v
  end
  else v

let flush mem a =
  let v = Mem.read mem a in
  if Flags.is_dirty v then persist mem a v

let cas mem a ~expected ~desired =
  ignore (read mem a);
  Mem.cas_bool mem a ~expected ~desired:(Flags.set_dirty desired)

let cas_durable mem a ~expected ~desired =
  let ok = cas mem a ~expected ~desired in
  if ok then persist mem a (Flags.set_dirty desired);
  ok

let write mem a v = Mem.write mem a (Flags.set_dirty v)
