lib/nvram/mem.mli: Config Format Random Stats
