lib/nvram/flags.ml: Format String
