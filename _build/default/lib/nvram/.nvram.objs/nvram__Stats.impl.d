lib/nvram/stats.ml: Array Atomic Domain Format
