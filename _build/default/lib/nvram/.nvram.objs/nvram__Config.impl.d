lib/nvram/config.ml:
