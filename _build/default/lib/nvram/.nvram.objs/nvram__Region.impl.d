lib/nvram/region.ml: Mem Printf
