lib/nvram/mem.ml: Array Atomic Config Domain Flags Format Printf Random Stats
