lib/nvram/config.mli:
