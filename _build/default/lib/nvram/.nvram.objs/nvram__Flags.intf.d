lib/nvram/flags.mli: Format
