lib/nvram/region.mli: Mem
