(** Flag bits stolen from the high-order bits of a 63-bit memory word.

    The paper (Section 3, Figure 2) steals vacant high bits of canonical
    x86-64 pointers.  Here a word is an OCaml immediate [int]; we use bits
    61..58 and keep bit 62 (the sign bit) untouched so flagged words stay
    non-negative:

    {v
    bit 61  dirty  - the word may not be durable in NVM yet
    bit 60  mwcas  - the word holds a pointer to a PMwCAS descriptor
    bit 59  rdcss  - the word holds a pointer to a word descriptor
    bit 58  mark   - application-level delete mark (indexes)
    v} *)

val dirty : int
(** Constant with only the dirty bit set ([DirtyFlag] in the paper). *)

val mwcas : int
(** Constant with only the MwCAS-descriptor bit set ([MwCASFlag]). *)

val rdcss : int
(** Constant with only the RDCSS word-descriptor bit set ([RDCSSFlag]). *)

val mark : int
(** Application-level logical-delete mark. Ignored by the PMwCAS protocol:
    it travels with the payload. *)

val address_mask : int
(** Mask selecting the payload bits (everything below the protocol flags,
    including [mark]): bits 0..58. [AddressMask] in the paper. *)

val max_payload : int
(** Largest raw payload representable without touching flag bits. *)

val is_dirty : int -> bool
val is_mwcas : int -> bool
val is_rdcss : int -> bool
val is_marked : int -> bool

val is_descriptor : int -> bool
(** True if the word holds either kind of descriptor pointer. *)

val set_dirty : int -> int
val clear_dirty : int -> int
val set_mark : int -> int
val clear_mark : int -> int

val payload : int -> int
(** Strip the protocol flag bits ([dirty], [mwcas], [rdcss]); keeps [mark]. *)

val pp : Format.formatter -> int -> unit
(** Debug printer: ["<d,m>12345"]-style rendering of flags + payload. *)
