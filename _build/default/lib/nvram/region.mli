(** Sequential carving of a device's address space into fixed regions.

    Used at startup to lay out the descriptor pool, index anchors and the
    allocator heap at deterministic offsets, so that a recovery run over a
    crash image reproduces the same layout from configuration alone.
    Not thread-safe: layout happens before worker domains start. *)

type t

val create : ?base:int -> Mem.t -> t
(** Carver starting at word offset [base] (default 0). *)

val alloc : t -> int -> Mem.addr
(** [alloc t n] reserves [n] words and returns their base address.
    @raise Invalid_argument if [n <= 0] or the device is exhausted. *)

val alloc_line_aligned : t -> int -> Mem.addr
(** Like [alloc] but the returned address starts a fresh cache line, so the
    region never shares a line with its neighbour (avoids false persistence
    coupling between regions). *)

val used : t -> int
(** Words handed out so far, counting alignment padding. *)

val remaining : t -> int
