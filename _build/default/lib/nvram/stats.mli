(** Operation counters for a simulated NVRAM device.

    Counters are sharded per-thread slot to keep the instrumented fast
    paths cheap; [snapshot] sums the shards. Only protocol-relevant events
    are counted (flushes, fences, CASes) — plain loads/stores are free. *)

type t

type snapshot = {
  flushes : int;  (** [clwb] invocations. *)
  fences : int;  (** [fence] invocations. *)
  cases : int;  (** compare-and-swap attempts. *)
}

val create : unit -> t
val record_flush : t -> unit
val record_fence : t -> unit
val record_cas : t -> unit
val snapshot : t -> snapshot
val reset : t -> unit

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] — per-field subtraction. *)

val pp : Format.formatter -> snapshot -> unit
