type t = { mem : Mem.t; base : int; mutable next : int }

let create ?(base = 0) mem =
  if base < 0 || base > Mem.size mem then
    invalid_arg "Nvram.Region.create: base out of bounds";
  { mem; base; next = base }

let alloc t n =
  if n <= 0 then invalid_arg "Nvram.Region.alloc: n <= 0";
  if t.next + n > Mem.size t.mem then
    invalid_arg
      (Printf.sprintf "Nvram.Region.alloc: device exhausted (want %d, have %d)"
         n
         (Mem.size t.mem - t.next));
  let a = t.next in
  t.next <- t.next + n;
  a

let alloc_line_aligned t n =
  let lw = (Mem.config t.mem).line_words in
  let aligned = (t.next + lw - 1) / lw * lw in
  t.next <- aligned;
  alloc t n

let used t = t.next - t.base
let remaining t = Mem.size t.mem - t.next
