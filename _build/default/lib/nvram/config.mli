(** Configuration of the simulated NVRAM device. *)

type t = private {
  words : int;  (** Total capacity in 8-byte words. *)
  line_words : int;
      (** Words per cache line (power of two). Write-back granularity of
          [Mem.clwb] — flushing one word persists its whole line, exactly
          as CLWB does for 64-byte lines (8 words). *)
  flush_delay : int;
      (** Busy-work iterations charged per [clwb], modelling the extra
          write-back latency of an NVDIMM relative to a cached store.
          [0] disables the cost model (pure functional simulation). *)
}

val make : ?line_words:int -> ?flush_delay:int -> words:int -> unit -> t
(** @raise Invalid_argument if [words <= 0], [line_words] is not a positive
    power of two, or [flush_delay < 0]. *)
