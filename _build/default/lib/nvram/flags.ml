let dirty = 1 lsl 61
let mwcas = 1 lsl 60
let rdcss = 1 lsl 59
let mark = 1 lsl 58
let address_mask = (1 lsl 59) - 1
let max_payload = (1 lsl 58) - 1
let is_dirty v = v land dirty <> 0
let is_mwcas v = v land mwcas <> 0
let is_rdcss v = v land rdcss <> 0
let is_marked v = v land mark <> 0
let is_descriptor v = v land (mwcas lor rdcss) <> 0
let set_dirty v = v lor dirty
let clear_dirty v = v land lnot dirty
let set_mark v = v lor mark
let clear_mark v = v land lnot mark
let payload v = v land address_mask

let pp ppf v =
  let flag b c = if b then String.make 1 c else "" in
  Format.fprintf ppf "<%s%s%s%s>%d"
    (flag (is_dirty v) 'd')
    (flag (is_mwcas v) 'm')
    (flag (is_rdcss v) 'r')
    (flag (is_marked v) 'x')
    (v land max_payload)
