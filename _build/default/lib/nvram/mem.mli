(** Simulated byte-addressable NVRAM behind a volatile CPU cache.

    The device keeps two images of every word:

    - the {e volatile} image — what the coherent cache hierarchy holds and
      what every load, store and CAS observes;
    - the {e persistent} image — what has actually reached the NVDIMM and
      survives a power failure.

    A store only updates the volatile image. [clwb] writes the whole
    containing cache line back to the persistent image, like the CLWB
    instruction (Section 2.1 of the paper). A crash may additionally
    preserve un-flushed lines that happened to be evicted by the cache —
    [crash_image] models that with a per-line eviction probability, which
    is exactly the nondeterminism the dirty-bit protocol of Section 3 must
    tolerate.

    All word operations are linearizable across domains. [clwb] persists
    the volatile content current at its linearization point (hardware
    cache coherence gives CLWB the same guarantee). *)

type t

type addr = int
(** A word offset in [0, size). Word addresses play the role of the
    paper's 8-byte-aligned pointers. *)

val create : Config.t -> t
(** Fresh device, all words zero in both images. *)

val size : t -> int
val config : t -> Config.t
val stats : t -> Stats.t

(** {1 Volatile (cached) accesses} *)

val read : t -> addr -> int
(** Plain load from the coherent view. Callers inside the PMwCAS protocol
    must use [Pmwcas.Op.read] instead; this is the raw instruction. *)

val write : t -> addr -> int -> unit
(** Plain store to the coherent view. Does not persist. *)

val cas : t -> addr -> expected:int -> desired:int -> int
(** Atomic compare-and-swap with x86 [cmpxchg] semantics: returns the
    value witnessed in the word. The swap happened iff the result equals
    [expected]. *)

val cas_bool : t -> addr -> expected:int -> desired:int -> bool
(** Convenience wrapper over [cas]. *)

(** {1 Persistence primitives} *)

val clwb : t -> addr -> unit
(** Write the cache line containing [addr] back to the persistent image.
    Charges [Config.flush_delay] busy-work. Synchronous in this model, so
    no separate drain is required (fences remain available for counting
    fidelity). *)

val fence : t -> unit
(** Store fence / SFENCE. A counted no-op: [clwb] is synchronous here. *)

val clwb_range : t -> lo:addr -> hi:addr -> unit
(** Write back every cache line intersecting [\[lo, hi\]] (inclusive).
    Handles unaligned ranges — the footgun of stepping by the line size
    from an unaligned start is exactly what this helper exists to avoid. *)

val persist_all : t -> unit
(** Flush every line. Intended for initialization code, not hot paths. *)

(** {1 Failure simulation} *)

exception Crash
(** Raised by mutating operations once injected fuel runs out. *)

val inject_crash_after : t -> int -> unit
(** Arm the fault injector: after [n] further mutating operations
    ([write]/[cas]/[clwb]) across all domains, every subsequent mutating
    operation raises {!Crash}. Workers unwind, the test joins them and
    calls [crash_image] — emulating a power failure at an arbitrary store
    boundary. [disarm] (or a fresh [crash_image]) turns it off. *)

val disarm : t -> unit

val read_persistent : t -> addr -> int
(** Read the NVM image directly (white-box accessor for tests). *)

val crash_image : ?evict_prob:float -> ?rng:Random.State.t -> t -> t
(** Power-failure snapshot: a fresh device whose content is the persistent
    image, except that each cache line, independently with probability
    [evict_prob] (default [0.]), instead carries its volatile content —
    modelling lines that the cache happened to evict before the failure.
    Both images of the result are equal (a rebooted machine has cold
    caches). Statistics are reset.

    Must be called while no other domain is mutating [t] (a real power
    failure stops all CPUs at once). *)

(** {1 Debug} *)

val dump : t -> lo:addr -> hi:addr -> Format.formatter -> unit
(** Hex-ish dump of the volatile image of words [lo, hi). *)
