lib/htm/txn.mli: Format Nvram Random
