lib/htm/txn.ml: Array Atomic Domain Format Hashtbl List Nvram Random
