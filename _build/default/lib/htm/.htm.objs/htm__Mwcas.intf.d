lib/htm/mwcas.mli: Nvram Random Txn
