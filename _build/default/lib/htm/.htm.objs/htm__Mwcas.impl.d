lib/htm/mwcas.ml: Atomic Domain List Mutex Txn
