(** A multi-word CAS built on the emulated HTM, with the lock fallback
    that real best-effort HTM deployments require (Section 2.3).

    Each call tries the update as a single hardware transaction; after
    [max_retries] aborts it acquires a global fallback mutex — the point
    at which throughput collapses under contention, which is exactly the
    robustness gap the paper measures against the software MwCAS. *)

type t

val create : ?max_retries:int -> Txn.t -> t

val execute :
  t -> rng:Random.State.t -> (Nvram.Mem.addr * int * int) list -> bool
(** [(addr, expected, desired)] triples; true iff all matched and were
    swapped atomically. *)

val read : t -> Nvram.Mem.addr -> int

type stats = { fallbacks : int; htm : Txn.stats }

val stats : t -> stats
val reset_stats : t -> unit
