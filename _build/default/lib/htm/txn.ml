module Mem = Nvram.Mem

type abort = Conflict | Capacity | Spurious

let pp_abort ppf = function
  | Conflict -> Format.pp_print_string ppf "conflict"
  | Capacity -> Format.pp_print_string ppf "capacity"
  | Spurious -> Format.pp_print_string ppf "spurious"

type t = {
  mem : Mem.t;
  versions : int Atomic.t array; (* per line; odd = locked *)
  line_words : int;
  abort_prob : float;
  capacity : int;
  commits : int Atomic.t;
  conflicts : int Atomic.t;
  capacity_aborts : int Atomic.t;
  spurious : int Atomic.t;
}

type txn = {
  h : t;
  read_set : (int, int) Hashtbl.t; (* line -> observed version *)
  write_buf : (int, int) Hashtbl.t; (* addr -> value *)
}

exception Abort
exception Hard_abort of abort

type stats = { commits : int; conflicts : int; capacity : int; spurious : int }

let create ?(abort_prob = 0.) ?(capacity = 64) mem =
  let lw = (Mem.config mem).line_words in
  let lines = (Mem.size mem + lw - 1) / lw in
  {
    mem;
    versions = Array.init lines (fun _ -> Atomic.make 0);
    line_words = lw;
    abort_prob;
    capacity;
    commits = Atomic.make 0;
    conflicts = Atomic.make 0;
    capacity_aborts = Atomic.make 0;
    spurious = Atomic.make 0;
  }

let line t a = a / t.line_words

let footprint txn =
  let lines = Hashtbl.copy txn.read_set in
  Hashtbl.iter
    (fun a _ -> Hashtbl.replace lines (line txn.h a) 0)
    txn.write_buf;
  Hashtbl.length lines

let track_read txn a =
  let t = txn.h in
  let ln = line t a in
  match Hashtbl.find_opt txn.read_set ln with
  | Some v0 ->
      (* Re-validate eagerly: abort as soon as a tracked line moves. *)
      if Atomic.get t.versions.(ln) <> v0 then raise (Hard_abort Conflict)
  | None ->
      let v = Atomic.get t.versions.(ln) in
      if v land 1 = 1 then raise (Hard_abort Conflict);
      Hashtbl.add txn.read_set ln v;
      if footprint txn > t.capacity then raise (Hard_abort Capacity)

let read txn a =
  match Hashtbl.find_opt txn.write_buf a with
  | Some v -> v
  | None ->
      track_read txn a;
      let v = Mem.read txn.h.mem a in
      (* Validate after the load so the value belongs to the version. *)
      let ln = line txn.h a in
      if Atomic.get txn.h.versions.(ln) <> Hashtbl.find txn.read_set ln then
        raise (Hard_abort Conflict);
      v

let write txn a v =
  Hashtbl.replace txn.write_buf a v;
  if footprint txn > txn.h.capacity then raise (Hard_abort Capacity)

let commit txn ~rng =
  let t = txn.h in
  if t.abort_prob > 0. && Random.State.float rng 1.0 < t.abort_prob then
    raise (Hard_abort Spurious);
  (* Lock the write lines in ascending order. *)
  let write_lines =
    Hashtbl.fold (fun a _ acc -> line t a :: acc) txn.write_buf []
    |> List.sort_uniq compare
  in
  let locked = ref [] in
  let unlock () =
    List.iter (fun (ln, v0) -> Atomic.set t.versions.(ln) v0) !locked
  in
  try
    List.iter
      (fun ln ->
        let v0 =
          match Hashtbl.find_opt txn.read_set ln with
          | Some v -> v
          | None -> Atomic.get t.versions.(ln)
        in
        if v0 land 1 = 1 then raise (Hard_abort Conflict);
        if not (Atomic.compare_and_set t.versions.(ln) v0 (v0 + 1)) then
          raise (Hard_abort Conflict);
        locked := (ln, v0) :: !locked)
      write_lines;
    (* Validate the read-only lines. *)
    Hashtbl.iter
      (fun ln v0 ->
        if not (List.mem_assoc ln !locked) then
          if Atomic.get t.versions.(ln) <> v0 then
            raise (Hard_abort Conflict))
      txn.read_set;
    (* Apply and release with bumped versions. *)
    Hashtbl.iter (fun a v -> Mem.write t.mem a v) txn.write_buf;
    List.iter (fun (ln, v0) -> Atomic.set t.versions.(ln) (v0 + 2)) !locked;
    ignore (Atomic.fetch_and_add t.commits 1)
  with Hard_abort a ->
    unlock ();
    raise (Hard_abort a)

let record_abort (t : t) = function
  | Conflict -> ignore (Atomic.fetch_and_add t.conflicts 1)
  | Capacity -> ignore (Atomic.fetch_and_add t.capacity_aborts 1)
  | Spurious -> ignore (Atomic.fetch_and_add t.spurious 1)

let attempt t ~rng body =
  let txn =
    { h = t; read_set = Hashtbl.create 8; write_buf = Hashtbl.create 8 }
  in
  match
    let r = body txn in
    commit txn ~rng;
    r
  with
  | r -> Ok r
  | exception Hard_abort a ->
      record_abort t a;
      Error a
  | exception Abort ->
      record_abort t Conflict;
      Error Conflict

let read_consistent t a =
  let ln = line t a in
  let rec loop () =
    let v0 = Atomic.get t.versions.(ln) in
    if v0 land 1 = 1 then begin
      Domain.cpu_relax ();
      loop ()
    end
    else
      let x = Mem.read t.mem a in
      if Atomic.get t.versions.(ln) = v0 then x
      else loop ()
  in
  loop ()

let with_lines_locked t addrs body =
  let lines = List.map (line t) addrs |> List.sort_uniq compare in
  let locked =
    List.map
      (fun ln ->
        let rec lock () =
          let v0 = Atomic.get t.versions.(ln) in
          if v0 land 1 = 1 || not (Atomic.compare_and_set t.versions.(ln) v0 (v0 + 1))
          then begin
            Domain.cpu_relax ();
            lock ()
          end
          else v0
        in
        (ln, lock ()))
      lines
  in
  let finish () =
    List.iter (fun (ln, v0) -> Atomic.set t.versions.(ln) (v0 + 2)) locked
  in
  match body ~read:(Mem.read t.mem) ~write:(Mem.write t.mem) with
  | r ->
      finish ();
      r
  | exception e ->
      finish ();
      raise e

let stats (t : t) =
  {
    commits = Atomic.get t.commits;
    conflicts = Atomic.get t.conflicts;
    capacity = Atomic.get t.capacity_aborts;
    spurious = Atomic.get t.spurious;
  }

let reset_stats (t : t) =
  Atomic.set t.commits 0;
  Atomic.set t.conflicts 0;
  Atomic.set t.capacity_aborts 0;
  Atomic.set t.spurious 0
