type t = {
  htm : Txn.t;
  max_retries : int;
  fallback : Mutex.t;
  fallback_active : bool Atomic.t;
  fallbacks : int Atomic.t;
}

type stats = { fallbacks : int; htm : Txn.stats }

let create ?(max_retries = 8) htm =
  {
    htm;
    max_retries;
    fallback = Mutex.create ();
    fallback_active = Atomic.make false;
    fallbacks = Atomic.make 0;
  }

let body (t : t) words txn =
  (* A transaction must observe the fallback lock (standard lock-elision
     pairing): abort if a fallback writer is active. *)
  if Atomic.get t.fallback_active then raise Txn.Abort;
  let ok =
    List.for_all (fun (a, expected, _) -> Txn.read txn a = expected) words
  in
  if ok then List.iter (fun (a, _, desired) -> Txn.write txn a desired) words;
  ok

let run_fallback (t : t) words =
  Mutex.lock t.fallback;
  Atomic.set t.fallback_active true;
  ignore (Atomic.fetch_and_add t.fallbacks 1);
  let ok =
    Txn.with_lines_locked t.htm
      (List.map (fun (a, _, _) -> a) words)
      (fun ~read ~write ->
        let ok =
          List.for_all (fun (a, expected, _) -> read a = expected) words
        in
        if ok then List.iter (fun (a, _, desired) -> write a desired) words;
        ok)
  in
  Atomic.set t.fallback_active false;
  Mutex.unlock t.fallback;
  ok

let execute (t : t) ~rng words =
  let words = List.sort (fun (a, _, _) (b, _, _) -> compare a b) words in
  let rec go tries =
    match Txn.attempt t.htm ~rng (body t words) with
    | Ok ok -> ok
    | Error _ when tries < t.max_retries ->
        Domain.cpu_relax ();
        go (tries + 1)
    | Error _ -> run_fallback t words
  in
  go 0

let read (t : t) a = Txn.read_consistent t.htm a

let stats (t : t) = { fallbacks = Atomic.get t.fallbacks; htm = Txn.stats t.htm }

let reset_stats (t : t) =
  Atomic.set t.fallbacks 0;
  Txn.reset_stats t.htm
