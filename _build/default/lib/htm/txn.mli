(** Emulated best-effort hardware transactional memory (Section 2.3).

    The paper argues HTM is a tempting but fragile alternative to a
    software MwCAS: transactions abort spuriously (interrupts, cache
    events), abort on capacity overflow, and conflict-abort under
    contention, so an HTM-based multi-word update needs a fallback and
    degrades abruptly. This module reproduces those failure modes over
    the simulated NVRAM so the comparison experiment (E6) can run without
    TSX hardware:

    - optimistic per-cache-line versioning (even = unlocked seqlock);
    - conflict aborts when a read line changes or a write line is locked;
    - capacity aborts when a transaction touches more lines than
      [capacity];
    - spurious aborts injected with probability [abort_prob] at commit.

    Word reads/writes inside a transaction are buffered; effects reach
    memory only on a successful commit, which is atomic with respect to
    other transactions and to readers using {!read_consistent}. *)

type t

type abort = Conflict | Capacity | Spurious

val pp_abort : Format.formatter -> abort -> unit

val create : ?abort_prob:float -> ?capacity:int -> Nvram.Mem.t -> t
(** [capacity] in cache lines (default 64); [abort_prob] per commit
    attempt (default 0). *)

type txn

val attempt :
  t -> rng:Random.State.t -> (txn -> 'a) -> ('a, abort) result
(** Run one transaction attempt. The body may raise {!Abort} to
    self-abort (mapped to [Conflict]). No blocking: an attempt either
    commits or aborts immediately. *)

exception Abort

val read : txn -> Nvram.Mem.addr -> int
val write : txn -> Nvram.Mem.addr -> int -> unit

val read_consistent : t -> Nvram.Mem.addr -> int
(** Non-transactional read that never observes a partially committed
    transaction (seqlock-validated). *)

val with_lines_locked :
  t -> Nvram.Mem.addr list -> (read:(Nvram.Mem.addr -> int) ->
  write:(Nvram.Mem.addr -> int -> unit) -> 'a) -> 'a
(** Spin-lock the cache lines covering the given addresses (in order),
    run the body with direct read/write access, then release with bumped
    versions. Concurrent transactions conflict-abort against the locked
    lines; [read_consistent] waits. This is the fallback path an
    HTM-based MwCAS needs when transactions keep aborting. *)

type stats = { commits : int; conflicts : int; capacity : int; spurious : int }

val stats : t -> stats
val reset_stats : t -> unit
