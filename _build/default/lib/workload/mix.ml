type op = Read | Update | Insert | Delete | Scan

type t = {
  read : int;
  update : int;
  insert : int;
  delete : int;
  scan : int;
  scan_len : int;
}

let make ?(read = 0) ?(update = 0) ?(insert = 0) ?(delete = 0) ?(scan = 0)
    ?(scan_len = 20) () =
  if read + update + insert + delete + scan <> 100 then
    invalid_arg "Mix.make: percentages must sum to 100";
  if List.exists (fun p -> p < 0) [ read; update; insert; delete; scan ] then
    invalid_arg "Mix.make: negative percentage";
  if scan_len <= 0 then invalid_arg "Mix.make: scan_len <= 0";
  { read; update; insert; delete; scan; scan_len }

let read_only = make ~read:100 ()
let read_heavy = make ~read:90 ~update:10 ()
let balanced = make ~read:50 ~update:50 ()
let write_heavy = make ~read:10 ~update:50 ~insert:20 ~delete:20 ()
let insert_only = make ~insert:100 ()
let scan_heavy = make ~read:80 ~scan:20 ()

let next t rng =
  let r = Random.State.int rng 100 in
  if r < t.read then Read
  else if r < t.read + t.update then Update
  else if r < t.read + t.update + t.insert then Insert
  else if r < t.read + t.update + t.insert + t.delete then Delete
  else Scan

let describe t =
  let parts =
    List.filter_map
      (fun (n, v) -> if v > 0 then Some (Printf.sprintf "%d%%%s" v n) else None)
      [
        ("r", t.read);
        ("u", t.update);
        ("i", t.insert);
        ("d", t.delete);
        ("s", t.scan);
      ]
  in
  String.concat "/" parts
