lib/workload/mix.mli: Random
