lib/workload/distribution.mli: Random
