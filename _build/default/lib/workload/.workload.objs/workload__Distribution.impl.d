lib/workload/distribution.ml: Float Printf Random
