lib/workload/mix.ml: List Printf Random String
