(** Operation mixes for index benchmarks (YCSB-style).

    Percentages must sum to 100. The mixes used by the paper's evaluation
    ("realistic workloads") are provided as constants. *)

type op = Read | Update | Insert | Delete | Scan

type t = {
  read : int;
  update : int;
  insert : int;
  delete : int;
  scan : int;
  scan_len : int;  (** Keys per scan. *)
}

val make :
  ?read:int -> ?update:int -> ?insert:int -> ?delete:int -> ?scan:int
  -> ?scan_len:int -> unit -> t
(** @raise Invalid_argument unless the five percentages sum to 100. *)

val read_only : t

val read_heavy : t
(** 90% read / 10% update. *)

val balanced : t
(** 50% read / 50% update. *)

val write_heavy : t
(** 10% read / 50% update / 20% insert / 20% delete. *)

val insert_only : t

val scan_heavy : t
(** 80% read / 20% scans of [scan_len]. *)

val next : t -> Random.State.t -> op
val describe : t -> string
