(** Key distributions for benchmark workloads.

    The evaluation drives indexes with both uniform and skewed accesses;
    the skewed generator is the standard YCSB/Gray Zipfian with optional
    scrambling (hash the rank so the hot keys spread across the key
    space instead of clustering at the low end). *)

type spec =
  | Uniform of int  (** keys in [\[0, n)] *)
  | Zipfian of { n : int; theta : float; scrambled : bool }
      (** Gray et al. self-similar Zipf; [theta] in [\[0, 1)], YCSB uses
          0.99. *)
  | Hotspot of { n : int; hot_fraction : float; hot_probability : float }
      (** [hot_probability] of the accesses hit the first
          [hot_fraction * n] keys. *)

type t

val create : spec -> t
(** Precomputes the Zipfian constants (O(n) once). *)

val next : t -> Random.State.t -> int
(** Sample a key in [\[0, n)]. *)

val n : t -> int
val describe : spec -> string
