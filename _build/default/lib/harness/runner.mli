(** Multi-domain throughput driver for the benchmark experiments.

    Each worker domain gets a per-thread state from [prepare] and then
    calls its operation thunk in a tight loop until the clock runs out
    (or a fixed per-thread operation count is reached). Timing excludes
    preparation. On a single-core host the domains interleave
    preemptively — absolute throughput is not hardware-meaningful, but
    ratios between configurations at equal thread counts are. *)

type result = {
  threads : int;
  ops : int;  (** Total operations completed. *)
  seconds : float;
  throughput : float;  (** ops/second. *)
  per_thread : int array;
}

val run_timed :
  threads:int -> seconds:float -> prepare:(int -> unit -> unit) -> result
(** [prepare tid] returns the thunk the worker loops; each call counts as
    one operation. *)

val run_ops :
  threads:int -> ops_per_thread:int -> prepare:(int -> unit -> unit)
  -> result
(** Fixed-work variant: every worker performs exactly [ops_per_thread]
    calls. *)

val pp_result : Format.formatter -> result -> unit
