type result = {
  threads : int;
  ops : int;
  seconds : float;
  throughput : float;
  per_thread : int array;
}

let now () = Unix.gettimeofday ()

let finish ~threads ~seconds counts =
  let ops = Array.fold_left ( + ) 0 counts in
  {
    threads;
    ops;
    seconds;
    throughput = (if seconds > 0. then float_of_int ops /. seconds else 0.);
    per_thread = counts;
  }

(* A worker that dies during preparation or mid-run must not wedge the
   barrier: every path increments [ready], and failures are re-raised in
   the calling domain after all workers are collected. *)
let collect results =
  Array.map
    (function Ok n -> n | Error e -> raise e)
    results

let run_timed ~threads ~seconds ~prepare =
  if threads <= 0 then invalid_arg "Runner: threads <= 0";
  let stop = Atomic.make false in
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  let worker tid () =
    match
      let op =
        Fun.protect
          ~finally:(fun () -> ignore (Atomic.fetch_and_add ready 1))
          (fun () -> prepare tid)
      in
      while not (Atomic.get go) do
        Domain.cpu_relax ()
      done;
      let n = ref 0 in
      (* Check the clock through the stop flag only; the main domain owns
         the timing. *)
      while not (Atomic.get stop) do
        op ();
        incr n
      done;
      !n
    with
    | n -> Ok n
    | exception e ->
        Atomic.set stop true;
        Error e
  in
  let domains = List.init threads (fun tid -> Domain.spawn (worker tid)) in
  while Atomic.get ready < threads do
    Domain.cpu_relax ()
  done;
  let t0 = now () in
  Atomic.set go true;
  Unix.sleepf seconds;
  Atomic.set stop true;
  let results = Array.of_list (List.map Domain.join domains) in
  let elapsed = now () -. t0 in
  finish ~threads ~seconds:elapsed (collect results)

let run_ops ~threads ~ops_per_thread ~prepare =
  if threads <= 0 then invalid_arg "Runner: threads <= 0";
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  let worker tid () =
    match
      let op =
        Fun.protect
          ~finally:(fun () -> ignore (Atomic.fetch_and_add ready 1))
          (fun () -> prepare tid)
      in
      while not (Atomic.get go) do
        Domain.cpu_relax ()
      done;
      for _ = 1 to ops_per_thread do
        op ()
      done;
      ops_per_thread
    with
    | n -> Ok n
    | exception e -> Error e
  in
  let domains = List.init threads (fun tid -> Domain.spawn (worker tid)) in
  while Atomic.get ready < threads do
    Domain.cpu_relax ()
  done;
  let t0 = now () in
  Atomic.set go true;
  let results = Array.of_list (List.map Domain.join domains) in
  finish ~threads ~seconds:(now () -. t0) (collect results)

let pp_result ppf r =
  Format.fprintf ppf "%d threads: %d ops in %.3fs = %.0f ops/s" r.threads
    r.ops r.seconds r.throughput
