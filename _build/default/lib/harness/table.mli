(** Plain-text table rendering for benchmark reports. *)

val print :
  ?out:out_channel -> ?title:string -> header:string list
  -> string list list -> unit
(** Column widths auto-size; first column left-aligned, the rest right-
    aligned (numbers). *)

val mops : float -> string
(** Format a throughput as millions of ops per second ("1.234"). *)

val kops : float -> string
val pct : float -> string
val ratio : float -> float -> string
(** [ratio a b] — "a/b" as a percentage-difference string ("+4.2%"). *)
