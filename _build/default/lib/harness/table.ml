let print ?(out = stdout) ?title ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m row ->
        match List.nth_opt row c with
        | Some s -> max m (String.length s)
        | None -> m)
      0 all
  in
  let widths = List.init cols width in
  let render row =
    List.mapi
      (fun c w ->
        let s = match List.nth_opt row c with Some s -> s | None -> "" in
        if c = 0 then Printf.sprintf "%-*s" w s else Printf.sprintf "%*s" w s)
      widths
    |> String.concat "  "
  in
  (match title with
  | Some t ->
      output_string out t;
      output_char out '\n'
  | None -> ());
  let head = render header in
  output_string out head;
  output_char out '\n';
  output_string out (String.make (String.length head) '-');
  output_char out '\n';
  List.iter
    (fun r ->
      output_string out (render r);
      output_char out '\n')
    rows;
  flush out

let mops x = Printf.sprintf "%.3f" (x /. 1_000_000.)
let kops x = Printf.sprintf "%.1f" (x /. 1_000.)
let pct x = Printf.sprintf "%.1f%%" (x *. 100.)

let ratio a b =
  if b = 0. then "n/a"
  else Printf.sprintf "%+.1f%%" ((a -. b) /. b *. 100.)
