lib/harness/runner.ml: Array Atomic Domain Format Fun List Unix
