lib/harness/runner.mli: Format
