lib/harness/table.mli:
