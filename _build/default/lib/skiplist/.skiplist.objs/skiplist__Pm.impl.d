lib/skiplist/pm.ml: Array Domain Epoch List Nvram Palloc Pmwcas Printf Random
