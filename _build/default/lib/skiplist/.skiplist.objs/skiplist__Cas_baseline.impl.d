lib/skiplist/cas_baseline.ml: Array Domain Epoch Nvram Palloc Printf Random
