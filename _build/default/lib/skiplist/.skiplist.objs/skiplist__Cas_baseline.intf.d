lib/skiplist/cas_baseline.mli: Nvram Palloc
