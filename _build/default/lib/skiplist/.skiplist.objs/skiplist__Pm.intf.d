lib/skiplist/pm.mli: Palloc Pmwcas
