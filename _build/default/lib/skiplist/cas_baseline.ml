module Mem = Nvram.Mem
module Flags = Nvram.Flags

type t = {
  mem : Mem.t;
  palloc : Palloc.t;
  epoch : Epoch.t;
  head : int;
  tail : int;
  max_level : int;
}

type handle = {
  sl : t;
  guard : Epoch.guard;
  pa : Palloc.handle;
  rng : Random.State.t;
}

(* Node layout: +0 key, +1 value, +2 level, +3.. next[level]. *)
let key_addr n = n
let value_addr n = n + 1
let next_addr n lvl = n + 3 + lvl
let node_words level = 3 + level

let key_of t n =
  if n = t.head then min_int
  else if n = t.tail then max_int
  else Mem.read t.mem (key_addr n)

let create ?(max_level = 12) mem ~palloc =
  let pa = Palloc.register_thread palloc in
  let head = Palloc.alloc_unsafe pa ~nwords:(node_words max_level) in
  let tail = Palloc.alloc_unsafe pa ~nwords:(node_words max_level) in
  Palloc.release_thread pa;
  let t = { mem; palloc; epoch = Epoch.create (); head; tail; max_level } in
  Mem.write mem (head + 2) max_level;
  Mem.write mem (tail + 2) max_level;
  for i = 0 to max_level - 1 do
    Mem.write mem (next_addr head i) tail;
    Mem.write mem (next_addr tail i) tail
  done;
  t

let register ?seed t =
  let seed =
    match seed with Some s -> s | None -> (Domain.self () :> int) + 104729
  in
  {
    sl = t;
    guard = Epoch.register t.epoch;
    pa = Palloc.register_thread t.palloc;
    rng = Random.State.make [| seed |];
  }

let unregister h =
  Epoch.unregister h.guard;
  Palloc.release_thread h.pa

let random_level h =
  let rec go lvl =
    if lvl < h.sl.max_level && Random.State.int h.rng 4 = 0 then go (lvl + 1)
    else lvl
  in
  go 1

let read_link t a =
  let v = Mem.read t.mem a in
  (Flags.clear_mark v, Flags.is_marked v)

exception Retry

(* Find with physical cleanup of marked nodes (Harris). Returns
   (found, preds, succs). *)
let rec find_cleanup t key =
  let preds = Array.make t.max_level t.head in
  let succs = Array.make t.max_level t.tail in
  try
    let pred = ref t.head in
    for lvl = t.max_level - 1 downto 0 do
      let curr = ref (fst (read_link t (next_addr !pred lvl))) in
      let continue = ref true in
      while !continue do
        let succ, marked = read_link t (next_addr !curr lvl) in
        if marked then begin
          (* curr is logically deleted: unlink it at this level. *)
          if
            not
              (Mem.cas_bool t.mem (next_addr !pred lvl) ~expected:!curr
                 ~desired:succ)
          then raise Retry;
          curr := succ
        end
        else if !curr <> t.tail && key_of t !curr < key then begin
          pred := !curr;
          curr := succ
        end
        else continue := false
      done;
      preds.(lvl) <- !pred;
      succs.(lvl) <- !curr
    done;
    let found = succs.(0) <> t.tail && key_of t succs.(0) = key in
    (found, preds, succs)
  with Retry -> find_cleanup t key

let insert h ~key ~value =
  if key < 0 || key > Flags.max_payload then invalid_arg "Cas.insert: key";
  let t = h.sl in
  Epoch.with_guard h.guard (fun () ->
      let rec attempt () =
        let found, preds, succs = find_cleanup t key in
        if found then false
        else begin
          let level = random_level h in
          let n = Palloc.alloc_unsafe h.pa ~nwords:(node_words level) in
          Mem.write t.mem (key_addr n) key;
          Mem.write t.mem (value_addr n) value;
          Mem.write t.mem (n + 2) level;
          for i = 0 to level - 1 do
            Mem.write t.mem (next_addr n i) succs.(i)
          done;
          if
            not
              (Mem.cas_bool t.mem (next_addr preds.(0) 0) ~expected:succs.(0)
                 ~desired:n)
          then begin
            Palloc.free t.palloc n;
            attempt ()
          end
          else begin
            (* Link the upper levels; every failure forces a re-find and a
               refresh of the node's own forward pointer — the fiddly part
               PMwCAS folds into one atomic step. *)
            let rec link lvl =
              if lvl >= level then true
              else begin
                let rec once () =
                  let cur_next, marked = read_link t (next_addr n lvl) in
                  if marked then (* concurrently deleted *) false
                  else begin
                    let _, preds, succs = find_cleanup t key in
                    if succs.(lvl) = n then true
                    else begin
                      (* Refresh our forward pointer before exposing. *)
                      if
                        cur_next = succs.(lvl)
                        || Mem.cas_bool t.mem (next_addr n lvl)
                             ~expected:cur_next ~desired:succs.(lvl)
                      then
                        if
                          Mem.cas_bool t.mem
                            (next_addr preds.(lvl) lvl)
                            ~expected:succs.(lvl) ~desired:n
                        then true
                        else once ()
                      else once ()
                    end
                  end
                in
                if once () then link (lvl + 1) else true (* node deleted *)
              end
            in
            ignore (link 1);
            true
          end
        end
      in
      attempt ())

let delete h ~key =
  let t = h.sl in
  Epoch.with_guard h.guard (fun () ->
      let found, _preds, succs = find_cleanup t key in
      if not found then false
      else begin
        let n = succs.(0) in
        let level = Mem.read t.mem (n + 2) in
        (* Mark the upper levels top-down. *)
        for lvl = level - 1 downto 1 do
          let rec mark () =
            let succ, marked = read_link t (next_addr n lvl) in
            if not marked then begin
              ignore
                (Mem.cas_bool t.mem (next_addr n lvl) ~expected:succ
                   ~desired:(Flags.set_mark succ));
              mark ()
            end
          in
          mark ()
        done;
        (* The base-level mark decides who deleted. *)
        let rec base () =
          let succ, marked = read_link t (next_addr n 0) in
          if marked then false
          else if
            Mem.cas_bool t.mem (next_addr n 0) ~expected:succ
              ~desired:(Flags.set_mark succ)
          then begin
            (* Physically unlink everywhere, then retire the node. *)
            ignore (find_cleanup t key);
            Epoch.defer h.guard (fun () -> Palloc.free t.palloc n);
            true
          end
          else base ()
        in
        base ()
      end)

let find_opt_raw t key =
  (* Wait-free-ish lookup without cleanup. *)
  let cur = ref t.head in
  for lvl = t.max_level - 1 downto 0 do
    let continue = ref true in
    while !continue do
      let nxt, _ = read_link t (next_addr !cur lvl) in
      if nxt <> t.tail && key_of t nxt < key then cur := nxt
      else continue := false
    done
  done;
  let nxt, _ = read_link t (next_addr !cur 0) in
  if nxt <> t.tail && key_of t nxt = key then
    let _, node_marked = read_link t (next_addr nxt 0) in
    if node_marked then None else Some nxt
  else None

let find h ~key =
  let t = h.sl in
  Epoch.with_guard h.guard (fun () ->
      match find_opt_raw t key with
      | Some n -> Some (Mem.read t.mem (value_addr n))
      | None -> None)

let update h ~key ~value =
  let t = h.sl in
  Epoch.with_guard h.guard (fun () ->
      match find_opt_raw t key with
      | None -> false
      | Some n ->
          let rec cas_value () =
            let old_v = Mem.read t.mem (value_addr n) in
            if Mem.cas_bool t.mem (value_addr n) ~expected:old_v ~desired:value
            then true
            else cas_value ()
          in
          cas_value ())

let fold_range h ~lo ~hi ~init ~f =
  let t = h.sl in
  Epoch.with_guard h.guard (fun () ->
      let _, _, succs = find_cleanup t lo in
      let rec walk acc n =
        if n = t.tail then acc
        else
          let k = key_of t n in
          if k > hi then acc
          else begin
            let nxt, marked = read_link t (next_addr n 0) in
            let acc =
              if marked then acc
              else f acc ~key:k ~value:(Mem.read t.mem (value_addr n))
            in
            walk acc nxt
          end
      in
      walk init succs.(0))

let length h =
  fold_range h ~lo:0 ~hi:Flags.max_payload ~init:0
    ~f:(fun acc ~key:_ ~value:_ -> acc + 1)

let check_invariants h =
  let t = h.sl in
  let fail fmt = Printf.ksprintf failwith fmt in
  for lvl = t.max_level - 1 downto 0 do
    let rec walk cur =
      let nxt, marked = read_link t (next_addr cur lvl) in
      if marked then fail "level %d: reachable marked node %d" lvl cur;
      if nxt <> t.tail then begin
        if key_of t cur >= key_of t nxt then
          fail "level %d: keys not increasing at %d" lvl nxt;
        walk nxt
      end
    in
    walk t.head
  done
