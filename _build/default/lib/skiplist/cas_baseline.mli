(** Baseline: classic lock-free skip list using only single-word CAS
    (Fraser/Harris-style mark bits, singly linked).

    This is the comparison point the paper's Section 6.1 argues against:
    every subtlety PMwCAS removes is on display here — logical-delete
    marks, physical unlinking during traversal, per-level retry loops with
    re-reads of the victim's forward pointer — and it is {e forward-only}:
    supporting reverse scans with hand-in-hand CAS is the complexity cliff
    the doubly-linked PMwCAS version avoids (so this baseline simply does
    not offer them).

    Volatile only; nodes live in the simulated device (via the allocator's
    unsafe path) so that substrate costs match the PMwCAS variant, but no
    flush is ever issued and the structure cannot be recovered. *)

type t

val create : ?max_level:int -> Nvram.Mem.t -> palloc:Palloc.t -> t

type handle

val register : ?seed:int -> t -> handle
val unregister : handle -> unit
val insert : handle -> key:int -> value:int -> bool
val delete : handle -> key:int -> bool
val find : handle -> key:int -> int option
val update : handle -> key:int -> value:int -> bool

val fold_range :
  handle -> lo:int -> hi:int -> init:'a -> f:('a -> key:int -> value:int -> 'a)
  -> 'a
(** Forward scan only. *)

val length : handle -> int

val check_invariants : handle -> unit
(** Quiescent structural audit. @raise Failure on violation. *)
