test/test_nvram.ml: Alcotest Array Domain List Mem Nvram QCheck QCheck_alcotest Random Region Stats
