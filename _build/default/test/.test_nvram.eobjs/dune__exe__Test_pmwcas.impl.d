test/test_pmwcas.ml: Alcotest Array Atomic Domain Epoch List Nvram Palloc Pmwcas Printf QCheck QCheck_alcotest Random Unix
