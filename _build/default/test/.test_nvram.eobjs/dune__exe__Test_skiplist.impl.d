test/test_skiplist.ml: Alcotest Atomic Domain Hashtbl List Nvram Palloc Pmwcas Printf QCheck QCheck_alcotest Random Skiplist String
