test/test_palloc.mli:
