test/test_misc.ml: Alcotest Array Atomic Domain Filename Float Harness Hashtbl Htm List Nvram Option Printf Random Str Sys Workload
