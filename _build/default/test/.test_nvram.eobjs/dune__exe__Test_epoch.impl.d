test/test_epoch.ml: Alcotest Array Atomic Domain Epoch List QCheck QCheck_alcotest Unix
