test/test_palloc.ml: Alcotest Domain List Nvram Palloc Printf QCheck QCheck_alcotest Random
