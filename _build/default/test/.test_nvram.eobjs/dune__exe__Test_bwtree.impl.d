test/test_bwtree.ml: Alcotest Atomic Bwtree Domain Hashtbl List Nvram Palloc Pmwcas Printf QCheck QCheck_alcotest Random String
