(* Tests for the HTM emulation, the workload generators, and the bench
   harness. *)

module Mem = Nvram.Mem
module Txn = Htm.Txn
module Hmw = Htm.Mwcas
module Dist = Workload.Distribution
module Mix = Workload.Mix

let mem words = Mem.create (Nvram.Config.make ~words ())
let rng seed = Random.State.make [| seed |]

let htm_tests =
  [
    Alcotest.test_case "transaction commits buffered writes" `Quick (fun () ->
        let m = mem 64 in
        let h = Txn.create m in
        let r =
          Txn.attempt h ~rng:(rng 1) (fun tx ->
              Txn.write tx 0 5;
              Txn.write tx 9 6;
              (* Reads see own writes. *)
              Txn.read tx 0 + Txn.read tx 9)
        in
        Alcotest.(check bool) "committed" true (r = Ok 11);
        Alcotest.(check int) "w0" 5 (Mem.read m 0);
        Alcotest.(check int) "w9" 6 (Mem.read m 9);
        Alcotest.(check int) "one commit" 1 (Txn.stats h).commits);
    Alcotest.test_case "self-abort discards writes" `Quick (fun () ->
        let m = mem 64 in
        let h = Txn.create m in
        let r =
          Txn.attempt h ~rng:(rng 1) (fun tx ->
              Txn.write tx 0 5;
              raise Txn.Abort)
        in
        Alcotest.(check bool) "aborted" true (r = Error Txn.Conflict);
        Alcotest.(check int) "no write" 0 (Mem.read m 0));
    Alcotest.test_case "capacity aborts" `Quick (fun () ->
        let m = mem 1024 in
        let h = Txn.create ~capacity:4 m in
        let r =
          Txn.attempt h ~rng:(rng 1) (fun tx ->
              (* Touch 6 distinct lines. *)
              for i = 0 to 5 do
                Txn.write tx (i * 8) i
              done)
        in
        Alcotest.(check bool) "capacity" true (r = Error Txn.Capacity);
        Alcotest.(check int) "counted" 1 (Txn.stats h).capacity);
    Alcotest.test_case "spurious aborts" `Quick (fun () ->
        let m = mem 64 in
        let h = Txn.create ~abort_prob:1.0 m in
        let r = Txn.attempt h ~rng:(rng 1) (fun tx -> Txn.write tx 0 1) in
        Alcotest.(check bool) "spurious" true (r = Error Txn.Spurious));
    Alcotest.test_case "concurrent transfers conserve the total" `Slow
      (fun () ->
        let m = mem 64 in
        let h = Txn.create m in
        let n = 8 in
        for i = 0 to n - 1 do
          Mem.write m (i * 8) 1000
        done;
        let worker seed () =
          let rng = rng seed in
          for _ = 1 to 3000 do
            let i = Random.State.int rng n in
            let j = (i + 1 + Random.State.int rng (n - 1)) mod n in
            ignore
              (Txn.attempt h ~rng (fun tx ->
                   let vi = Txn.read tx (i * 8) in
                   let vj = Txn.read tx (j * 8) in
                   Txn.write tx (i * 8) (vi - 1);
                   Txn.write tx (j * 8) (vj + 1)))
          done
        in
        let ds = List.init 4 (fun s -> Domain.spawn (worker (s + 1))) in
        List.iter Domain.join ds;
        let sum = ref 0 in
        for i = 0 to n - 1 do
          sum := !sum + Mem.read m (i * 8)
        done;
        Alcotest.(check int) "conserved" (n * 1000) !sum);
    Alcotest.test_case "htm-mwcas swaps atomically with fallback" `Slow
      (fun () ->
        (* High spurious abort rate forces the lock fallback path. *)
        let m = mem 64 in
        let h = Txn.create ~abort_prob:0.5 m in
        let mw = Hmw.create ~max_retries:2 h in
        let n = 8 in
        let worker seed () =
          let rng = rng seed in
          let ok = ref 0 in
          for _ = 1 to 2000 do
            let i = Random.State.int rng n in
            let j = (i + 1 + Random.State.int rng (n - 1)) mod n in
            let vi = Hmw.read mw (i * 8) and vj = Hmw.read mw (j * 8) in
            if
              Hmw.execute mw ~rng
                [ (i * 8, vi, vi + 1); (j * 8, vj, vj - 1) ]
            then incr ok
          done;
          !ok
        in
        let ds = List.init 4 (fun s -> Domain.spawn (worker (s + 1))) in
        let _oks = List.map Domain.join ds in
        let sum = ref 0 in
        for i = 0 to n - 1 do
          sum := !sum + Mem.read m (i * 8)
        done;
        Alcotest.(check int) "conserved" 0 !sum;
        Alcotest.(check bool) "fallbacks happened" true
          ((Hmw.stats mw).fallbacks > 0));
  ]

let dist_tests =
  [
    Alcotest.test_case "uniform stays in range and covers" `Quick (fun () ->
        let d = Dist.create (Dist.Uniform 100) in
        let seen = Array.make 100 false in
        let r = rng 7 in
        for _ = 1 to 10_000 do
          let k = Dist.next d r in
          Alcotest.(check bool) "range" true (k >= 0 && k < 100);
          seen.(k) <- true
        done;
        Alcotest.(check bool) "coverage" true
          (Array.for_all (fun b -> b) seen));
    Alcotest.test_case "zipfian skews towards few keys" `Quick (fun () ->
        let d =
          Dist.create (Dist.Zipfian { n = 10_000; theta = 0.99; scrambled = false })
        in
        let r = rng 11 in
        let counts = Hashtbl.create 64 in
        let total = 50_000 in
        for _ = 1 to total do
          let k = Dist.next d r in
          Alcotest.(check bool) "range" true (k >= 0 && k < 10_000);
          Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
        done;
        (* Top 10 ranks should draw a large share under theta=0.99. *)
        let top =
          Hashtbl.fold (fun _ c acc -> c :: acc) counts []
          |> List.sort (fun a b -> compare b a)
          |> List.filteri (fun i _ -> i < 10)
          |> List.fold_left ( + ) 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "top-10 share %d/%d" top total)
          true
          (float_of_int top /. float_of_int total > 0.25));
    Alcotest.test_case "scrambled zipfian spreads hot keys" `Quick (fun () ->
        let d =
          Dist.create (Dist.Zipfian { n = 10_000; theta = 0.99; scrambled = true })
        in
        let r = rng 11 in
        let low = ref 0 and total = 20_000 in
        for _ = 1 to total do
          if Dist.next d r < 100 then incr low
        done;
        (* Unscrambled, ranks < 100 absorb most samples; scrambled they
           should not. *)
        Alcotest.(check bool) "spread" true
          (float_of_int !low /. float_of_int total < 0.3));
    Alcotest.test_case "hotspot honours probabilities" `Quick (fun () ->
        let d =
          Dist.create
            (Dist.Hotspot { n = 1000; hot_fraction = 0.1; hot_probability = 0.9 })
        in
        let r = rng 3 in
        let hot = ref 0 and total = 20_000 in
        for _ = 1 to total do
          if Dist.next d r < 100 then incr hot
        done;
        let share = float_of_int !hot /. float_of_int total in
        Alcotest.(check bool)
          (Printf.sprintf "hot share %.2f" share)
          true
          (share > 0.85 && share < 0.95));
    Alcotest.test_case "invalid specs rejected" `Quick (fun () ->
        let bad spec =
          try
            ignore (Dist.create spec);
            Alcotest.fail "expected Invalid_argument"
          with Invalid_argument _ -> ()
        in
        bad (Dist.Uniform 0);
        bad (Dist.Zipfian { n = 10; theta = 1.0; scrambled = false });
        bad (Dist.Hotspot { n = 10; hot_fraction = 0.; hot_probability = 0.5 }));
  ]

let mix_tests =
  [
    Alcotest.test_case "percentages must sum to 100" `Quick (fun () ->
        (try
           ignore (Mix.make ~read:50 ());
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ());
        ignore (Mix.make ~read:50 ~update:50 ()));
    Alcotest.test_case "sampling matches the mix" `Quick (fun () ->
        let m = Mix.make ~read:70 ~update:20 ~insert:10 () in
        let r = rng 5 in
        let counts = Hashtbl.create 8 in
        let total = 50_000 in
        for _ = 1 to total do
          let op = Mix.next m r in
          Hashtbl.replace counts op
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts op))
        done;
        let share op =
          float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts op))
          /. float_of_int total
        in
        Alcotest.(check bool) "reads ~0.7" true
          (Float.abs (share Mix.Read -. 0.7) < 0.02);
        Alcotest.(check bool) "updates ~0.2" true
          (Float.abs (share Mix.Update -. 0.2) < 0.02);
        Alcotest.(check bool) "no deletes" true (share Mix.Delete = 0.));
  ]

let harness_tests =
  [
    Alcotest.test_case "run_ops counts exactly" `Quick (fun () ->
        let counter = Atomic.make 0 in
        let r =
          Harness.Runner.run_ops ~threads:3 ~ops_per_thread:1000
            ~prepare:(fun _tid () -> ignore (Atomic.fetch_and_add counter 1))
        in
        Alcotest.(check int) "result ops" 3000 r.ops;
        Alcotest.(check int) "side effects" 3000 (Atomic.get counter);
        Alcotest.(check int) "threads" 3 r.threads);
    Alcotest.test_case "run_timed stops and reports" `Quick (fun () ->
        let r =
          Harness.Runner.run_timed ~threads:2 ~seconds:0.1
            ~prepare:(fun _tid () -> ())
        in
        Alcotest.(check bool) "ran some ops" true (r.ops > 0);
        Alcotest.(check bool) "throughput positive" true (r.throughput > 0.);
        Alcotest.(check bool) "duration sane" true
          (r.seconds >= 0.09 && r.seconds < 2.0));
    Alcotest.test_case "table renders all cells" `Quick (fun () ->
        let buf = Filename.temp_file "table" ".txt" in
        let oc = open_out buf in
        Harness.Table.print ~out:oc ~title:"T" ~header:[ "a"; "bb" ]
          [ [ "x"; "1" ]; [ "yyy"; "22" ] ];
        close_out oc;
        let ic = open_in buf in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        Sys.remove buf;
        List.iter
          (fun needle ->
            Alcotest.(check bool)
              (Printf.sprintf "contains %s" needle)
              true
              (let re = Str.regexp_string needle in
               try
                 ignore (Str.search_forward re s 0);
                 true
               with Not_found -> false))
          [ "T"; "a"; "bb"; "x"; "yyy"; "22" ]);
  ]

let () =
  Alcotest.run "misc"
    [
      ("htm", htm_tests);
      ("distribution", dist_tests);
      ("mix", mix_tests);
      ("harness", harness_tests);
    ]
