#!/bin/sh
# Repo gate: format (when ocamlformat is available), build, tests.
# Run from the repository root, e.g. via `make check`.
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping format check (ocamlformat not installed)"
fi

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== telemetry smoke (with flush-coalescing gate)"
dune exec bench/main.exe -- smoke --metrics /tmp/telemetry_smoke.json
dune exec bin/pmwcas_cli.exe -- check-metrics --require-coalescing \
  /tmp/telemetry_smoke.json

echo "== crash-sweep smoke"
dune exec bin/pmwcas_cli.exe -- crash-sweep --budget 60 --seeds 1
dune exec bin/pmwcas_cli.exe -- crash-sweep --suite bank --budget 120 \
  --seeds 1 --sabotage
dune exec bin/pmwcas_cli.exe -- crash-sweep --suite bank --budget 40 \
  --seeds 1 --sabotage-drain

echo "check: all green"
