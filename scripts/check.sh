#!/bin/sh
# Repo gate: format (when ocamlformat is available), build, tests.
# Run from the repository root, e.g. via `make check`.
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping format check (ocamlformat not installed)"
fi

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== telemetry smoke (with flush-coalescing + allocator + store + flit gates)"
dune exec bench/main.exe -- smoke --metrics /tmp/telemetry_smoke.json
dune exec bin/pmwcas_cli.exe -- check-metrics --require-coalescing \
  --require-alloc-counters --require-store-counters \
  --require-flit-counters --require-strategy-counters \
  /tmp/telemetry_smoke.json

echo "== trace smoke (flight recorder + Perfetto export round-trip)"
dune exec bench/main.exe -- smoke --trace /tmp/trace_smoke.json \
  --trace-shift 0
dune exec bin/pmwcas_cli.exe -- check-trace /tmp/trace_smoke.json

echo "== trace: contended help-edge gate"
# Helping needs a preemption mid-operation, so on a single-core host the
# edge count is probabilistic; wide descriptors + simulated flush stalls
# make it near-certain, and we allow three tries before failing.
help_ok=0
for _try in 1 2 3; do
  dune exec bin/pmwcas_cli.exe -- trace-dump --workers 4 --ops 4000 \
    --accounts 5 --width 4 --flush-delay 2000 --out /tmp/trace_help.json
  if dune exec bin/pmwcas_cli.exe -- check-trace --require-help-edge \
    /tmp/trace_help.json; then help_ok=1; break; fi
done
test "$help_ok" = 1 || { echo "FAIL: no help edge in 3 contended runs"; exit 1; }

echo "== trace: disabled-mode overhead guard"
dune exec test/test_trace.exe -- test overhead

echo "== crash-sweep smoke"
dune exec bin/pmwcas_cli.exe -- crash-sweep --budget 60 --seeds 1

echo "== crash-sweep: per-domain pool + arena-palloc suites"
dune exec bin/pmwcas_cli.exe -- crash-sweep --suite bank --budget 80 --seeds 2
dune exec bin/pmwcas_cli.exe -- crash-sweep --suite palloc --budget 80 \
  --seeds 2
# The sabotaged run must also leave a forensics artifact (ring snapshot,
# pool scan, postmortem) tagged with the run id we pass in.
rm -rf /tmp/check_artifacts
dune exec bin/pmwcas_cli.exe -- crash-sweep --suite bank --budget 120 \
  --seeds 1 --sabotage --artifacts /tmp/check_artifacts --run-id check-smoke
ls /tmp/check_artifacts/check-smoke-*.json >/dev/null 2>&1 \
  || { echo "FAIL: sabotaged sweep wrote no forensics artifact"; exit 1; }
dune exec bin/pmwcas_cli.exe -- crash-sweep --suite bank --budget 40 \
  --seeds 1 --sabotage-drain

echo "== crash-sweep broken-flit self-test (destination passes load-bearing)"
# Only the index suites run destination passes, so the gate targets them
# directly; bank/palloc/dst-pmwcas are raw-word workloads that a flit
# sabotage cannot corrupt.
dune exec bin/pmwcas_cli.exe -- crash-sweep --suite skiplist --budget 40 \
  --seeds 1 --broken-flit
# Budget 6 for the bwtree arm: sabotaged crash images can leave cyclic
# delta chains whose guarded walks make large sweeps very slow, and the
# corruption is already detected within the first handful of points.
dune exec bin/pmwcas_cli.exe -- crash-sweep --suite bwtree --budget 6 \
  --seeds 1 --broken-flit

echo "== crash-sweep per-strategy smoke (nodirty + fewfence sweep clean)"
dune exec bin/pmwcas_cli.exe -- crash-sweep --suite bank --budget 60 \
  --seeds 1 --strategy nodirty
dune exec bin/pmwcas_cli.exe -- crash-sweep --suite bank --budget 60 \
  --seeds 1 --strategy fewfence

echo "== crash-sweep broken-strategy self-tests"
# nodirty without its unconditional flushes persists nothing reliably:
# like --sabotage-drain, every suite must notice.
dune exec bin/pmwcas_cli.exe -- crash-sweep --suite bank --budget 40 \
  --seeds 1 --broken-nodirty
# fewfence without its relocated commit fence only loses the narrow
# ack-to-next-fence window: like --sabotage, detected and shrunk.
dune exec bin/pmwcas_cli.exe -- crash-sweep --suite bank --budget 48 \
  --seeds 1 --broken-fewfence --artifacts none

echo "== dst smoke (scheduler + linearizability checker)"
dune exec bin/pmwcas_cli.exe -- dst --strategy random --seeds 3
dune exec bin/pmwcas_cli.exe -- dst --strategy pct --seeds 2
dune exec bin/pmwcas_cli.exe -- dst --strategy exhaustive --threads 2 \
  --ops 1 --addrs 2 --preemptions 1
dune exec bin/pmwcas_cli.exe -- crash-sweep --suite dst-pmwcas --budget 80 \
  --seeds 1

echo "== store smoke (group commit, DST + crash-restart-resume)"
dune exec bin/pmwcas_cli.exe -- dst --scenario store --strategy random \
  --seeds 2 --shards 2
dune exec bin/pmwcas_cli.exe -- crash-sweep --suite dst-store --budget 48 \
  --seeds 1
dune exec bin/pmwcas_cli.exe -- store-soak --shards 2 --clients 2 \
  --ops 1500 --fuel 16000 --recover-domains 2

echo "== dst broken-helper self-test (token must replay)"
dune exec bin/pmwcas_cli.exe -- dst --broken-helper > /tmp/dst_selftest.out
cat /tmp/dst_selftest.out
token=$(sed -n 's/^token: //p' /tmp/dst_selftest.out)
test -n "$token" || { echo "FAIL: self-test printed no token"; exit 1; }
# The shrunk token must reproduce the violation under sabotage (exit 1)...
if dune exec bin/pmwcas_cli.exe -- dst --replay "$token" --sabotage; then
  echo "FAIL: sabotaged replay of $token exited 0"; exit 1
fi
# ...and be clean without it (exit 0).
dune exec bin/pmwcas_cli.exe -- dst --replay "$token"

echo "== dst broken-recycle self-test (epoch limbo guards descriptor reuse)"
dune exec bin/pmwcas_cli.exe -- dst --broken-recycle > /tmp/dst_recycle.out
cat /tmp/dst_recycle.out
rtoken=$(sed -n 's/^token: //p' /tmp/dst_recycle.out)
test -n "$rtoken" || { echo "FAIL: recycle self-test printed no token"; exit 1; }
# The recycle token replays against the selftest's scenario shape.
if dune exec bin/pmwcas_cli.exe -- dst --threads 2 --ops 4 --width 2 \
  --addrs 3 --replay "$rtoken" --sabotage-recycle; then
  echo "FAIL: sabotage-recycle replay of $rtoken exited 0"; exit 1
fi
dune exec bin/pmwcas_cli.exe -- dst --threads 2 --ops 4 --width 2 --addrs 3 \
  --replay "$rtoken"

echo "== dst broken-nodirty self-test (unconditional flushes load-bearing)"
dune exec bin/pmwcas_cli.exe -- dst --broken-nodirty > /tmp/dst_nodirty.out
cat /tmp/dst_nodirty.out
ntoken=$(sed -n 's/^token: //p' /tmp/dst_nodirty.out)
test -n "$ntoken" || { echo "FAIL: nodirty self-test printed no token"; exit 1; }
# --sabotage-nodirty forces the strategy and arms the knob; the shrunk
# token must still fail armed (exit 1) and be clean under plain nodirty.
if dune exec bin/pmwcas_cli.exe -- dst --replay "$ntoken" \
  --sabotage-nodirty; then
  echo "FAIL: sabotage-nodirty replay of $ntoken exited 0"; exit 1
fi
dune exec bin/pmwcas_cli.exe -- dst --protocol nodirty --replay "$ntoken"

echo "== dst broken-fewfence self-test (relocated commit fence load-bearing)"
dune exec bin/pmwcas_cli.exe -- dst --broken-fewfence > /tmp/dst_fewfence.out
cat /tmp/dst_fewfence.out
ftoken=$(sed -n 's/^token: //p' /tmp/dst_fewfence.out)
test -n "$ftoken" || { echo "FAIL: fewfence self-test printed no token"; exit 1; }
if dune exec bin/pmwcas_cli.exe -- dst --replay "$ftoken" \
  --sabotage-fewfence; then
  echo "FAIL: sabotage-fewfence replay of $ftoken exited 0"; exit 1
fi
dune exec bin/pmwcas_cli.exe -- dst --protocol fewfence --replay "$ftoken"

echo "check: all green"
