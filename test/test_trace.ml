(* Tests for the flight recorder: ring wraparound and the torn-read-safe
   snapshot window, capacity-1 degeneracy, concurrent emit vs snapshot,
   per-domain sequence monotonicity, op-span sampling, the Perfetto
   export round-tripped through the telemetry JSON parser, postmortem
   rendering, and the forensics pool scanner. *)

module V = Telemetry.Value

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  at 0

(* [sample_shift] sticks across enable/disable, so default it to 0 here
   rather than inheriting whatever the previous test set. *)
let with_recorder ?capacity ?(sample_shift = 0) f =
  Flight.enable ?capacity ~sample_shift ();
  Flight.reset ();
  Fun.protect ~finally:Flight.disable f

let ring_of snap dom =
  match
    List.find_opt (fun (d, _, _) -> d = dom) snap.Flight.rings
  with
  | Some r -> r
  | None -> Alcotest.failf "no ring for domain %d" dom

(* --- wraparound -------------------------------------------------------- *)

let test_wraparound () =
  with_recorder ~capacity:8 @@ fun () ->
  for i = 1 to 20 do
    Flight.emit Flight.Clwb i 0 0
  done;
  let snap = Flight.snapshot () in
  let _, total, evs = ring_of snap (Domain.self () :> int) in
  Alcotest.(check int) "total counts every emit" 20 total;
  (* A full ring surrenders one slot to the in-flight write guard. *)
  Alcotest.(check int) "survivors fill the ring minus one" 7
    (Array.length evs);
  Array.iteri
    (fun k e ->
      Alcotest.(check int) "newest events survive, oldest-first" (14 + k)
        e.Flight.a)
    evs

let test_capacity_one () =
  with_recorder ~capacity:1 @@ fun () ->
  for i = 1 to 5 do
    Flight.emit Flight.Fence i 0 0
  done;
  let snap = Flight.snapshot () in
  let _, total, evs = ring_of snap (Domain.self () :> int) in
  Alcotest.(check int) "total still counts" 5 total;
  (* The only slot is always potentially in flight, so nothing is ever
     guaranteed intact — the snapshot must degrade to empty, not tear. *)
  Alcotest.(check int) "no guaranteed-intact record" 0 (Array.length evs)

(* --- sequence monotonicity -------------------------------------------- *)

let test_seq_monotonic () =
  with_recorder ~capacity:64 @@ fun () ->
  let workers = 3 and per = 200 in
  List.init workers (fun w ->
      Domain.spawn (fun () ->
          for i = 1 to per do
            Flight.emit Flight.Drain w i 0
          done))
  |> List.iter Domain.join;
  let snap = Flight.snapshot () in
  List.iter
    (fun (dom, total, evs) ->
      if dom <> (Domain.self () :> int) then
        Alcotest.(check int)
          (Printf.sprintf "domain %d total" dom)
          per total;
      Array.iteri
        (fun k e ->
          Alcotest.(check int) "dom stamped" dom e.Flight.dom;
          if k > 0 then
            Alcotest.(check int) "seq strictly ascending by one"
              (evs.(k - 1).Flight.seq + 1)
              e.Flight.seq)
        evs)
      snap.Flight.rings;
  (* The merged view keeps per-domain order even after the global sort. *)
  let last = Hashtbl.create 8 in
  List.iter
    (fun (e : Flight.event) ->
      (match Hashtbl.find_opt last e.dom with
      | Some s -> Alcotest.(check bool) "merged keeps per-domain order" true (e.seq > s)
      | None -> ());
      Hashtbl.replace last e.dom e.seq)
    (Flight.merged snap)

(* --- concurrent emit vs snapshot -------------------------------------- *)

let test_concurrent_snapshot () =
  with_recorder ~capacity:32 @@ fun () ->
  let stop = Atomic.make false in
  let written = Atomic.make 0 in
  let writer =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while not (Atomic.get stop) do
          incr i;
          (* A marker payload the checker can validate: b = a + 1. *)
          Flight.emit Flight.Clwb !i (!i + 1) 0;
          Atomic.set written !i
        done)
  in
  (* Keep snapshotting until the writer has demonstrably run: on a
     single-core host 200 iterations can finish before its thread is
     ever scheduled. *)
  let snaps = ref 0 in
  while !snaps < 200 || Atomic.get written = 0 do
    incr snaps;
    let snap = Flight.snapshot () in
    List.iter
      (fun (_, total, evs) ->
        Alcotest.(check bool) "survivors bounded by total" true
          (Array.length evs <= total);
        Array.iter
          (fun (e : Flight.event) ->
            (* A torn record would break the payload invariant. *)
            Alcotest.(check int) "record not torn" (e.a + 1) e.b)
          evs)
      snap.Flight.rings
  done;
  Atomic.set stop true;
  Domain.join writer;
  Alcotest.(check bool) "writer made progress" true (Atomic.get written > 0)

(* --- op spans and sampling -------------------------------------------- *)

let count_kind snap k =
  List.fold_left
    (fun n (e : Flight.event) -> if e.kind = k then n + 1 else n)
    0 (Flight.merged snap)

let test_sampling () =
  with_recorder ~capacity:8192 ~sample_shift:2 @@ fun () ->
  let ops = 400 in
  for i = 1 to ops do
    let sp = Flight.op_begin ~op:Flight.op_mwcas ~key:i in
    (* Nested low-level events inherit the outer span's decision. *)
    Flight.emit Flight.Clwb i 0 0;
    Flight.op_end sp ~op:Flight.op_mwcas ~key:i ~ok:true
  done;
  let snap = Flight.snapshot () in
  let begins = count_kind snap Flight.Op_begin in
  let clwbs = count_kind snap Flight.Clwb in
  Alcotest.(check int) "exactly 1 in 4 spans recorded" (ops / 4) begins;
  Alcotest.(check int) "nested events follow the span decision" begins clwbs

let test_disabled_is_free () =
  (* [disable] leaves existing rings in place for post-run export, so
     clear the previous test's events before checking nothing new lands. *)
  Flight.reset ();
  Flight.disable ();
  let sp = Flight.op_begin ~op:Flight.op_mwcas ~key:1 in
  Alcotest.(check int) "disabled span token" 0 sp;
  Flight.op_end sp ~op:Flight.op_mwcas ~key:1 ~ok:true;
  Flight.emit Flight.Fence 0 0 0;
  Alcotest.(check bool) "not tracing" false (Flight.tracing ());
  Alcotest.(check int) "nothing recorded" 0
    (Flight.event_count (Flight.snapshot ()))

(* Disabled-mode overhead guard: an emit with the recorder off is one
   atomic load, so ten million of them must stay well under a second
   even on a loaded CI box (~100ns/emit budget vs ~5ns actual). *)
let test_disabled_overhead () =
  Flight.reset ();
  Flight.disable ();
  let n = 10_000_000 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to n do
    Flight.emit Flight.Clwb i 0 0
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "%dM disabled emits took %.3fs (budget 1s)"
       (n / 1_000_000) dt)
    true (dt < 1.0);
  Alcotest.(check int) "still nothing recorded" 0
    (Flight.event_count (Flight.snapshot ()))

let test_cancel_unwinds () =
  with_recorder @@ fun () ->
  (try
     let sp = Flight.op_begin ~op:Flight.op_sl_insert ~key:7 in
     try raise Exit with Exit ->
       Flight.op_cancel sp ~op:Flight.op_sl_insert ~key:7;
       raise Exit
   with Exit -> ());
  (* Depth unwound: the next outermost span samples afresh. *)
  let sp = Flight.op_begin ~op:Flight.op_sl_insert ~key:8 in
  Flight.op_end sp ~op:Flight.op_sl_insert ~key:8 ~ok:true;
  let snap = Flight.snapshot () in
  let ends =
    List.filter (fun (e : Flight.event) -> e.kind = Flight.Op_end)
      (Flight.merged snap)
  in
  Alcotest.(check int) "both spans closed" 2 (List.length ends);
  Alcotest.(check bool) "one closed as aborted" true
    (List.exists (fun (e : Flight.event) -> e.c = 2) ends)

(* --- Perfetto export round-trip --------------------------------------- *)

let test_perfetto_roundtrip () =
  with_recorder @@ fun () ->
  (* One op span with an attempt, plus a help edge pointing at this
     domain as owner so the exporter emits a flow pair. *)
  let dom = (Domain.self () :> int) in
  let sp = Flight.op_begin ~op:Flight.op_mwcas ~key:42 in
  Flight.emit Flight.Mwcas_attempt 42 2 0;
  Flight.emit Flight.Clwb 42 5 0;
  Flight.emit Flight.Help_edge dom 42 1;
  Flight.op_end sp ~op:Flight.op_mwcas ~key:42 ~ok:true;
  let snap = Flight.snapshot () in
  Alcotest.(check int) "one exportable help edge" 1
    (Flight.Perfetto.help_edge_count snap);
  let text = V.to_string (Flight.Perfetto.to_chrome ~run_id:"test-run" snap) in
  match V.of_string text with
  | Error e -> Alcotest.failf "export does not re-parse: %s" e
  | Ok v ->
      let events =
        match V.find_path v [ "traceEvents" ] with
        | Some (V.List l) -> l
        | _ -> Alcotest.fail "traceEvents missing"
      in
      let phs =
        List.filter_map
          (fun e ->
            match V.member "ph" e with Some (V.String p) -> Some p | _ -> None)
          events
      in
      List.iter
        (fun ph ->
          Alcotest.(check bool) ("has a " ^ ph ^ " event") true
            (List.mem ph phs))
        [ "M"; "X"; "i"; "s"; "f" ];
      (match V.find_path v [ "otherData"; "run_id" ] with
      | Some (V.String r) -> Alcotest.(check string) "run id" "test-run" r
      | _ -> Alcotest.fail "otherData.run_id missing");
      (* The flow start must anchor on the owner's attempt stamp, which
         precedes the helper-side finish. *)
      let flow ph =
        List.find_opt
          (fun e -> V.member "ph" e = Some (V.String ph))
          events
        |> Option.get
      in
      let ts e =
        match V.member "ts" e with
        | Some (V.Float f) -> f
        | Some (V.Int i) -> float_of_int i
        | _ -> Alcotest.fail "flow without ts"
      in
      Alcotest.(check bool) "flow start at or before finish" true
        (ts (flow "s") <= ts (flow "f"))

(* --- postmortem -------------------------------------------------------- *)

let test_postmortem () =
  with_recorder @@ fun () ->
  for i = 1 to 60 do
    Flight.emit Flight.Epoch_advance i 0 0
  done;
  let text = Flight.postmortem ~tail:10 (Flight.snapshot ()) in
  Alcotest.(check bool) "names the domain" true
    (contains ~affix:"domain" text);
  Alcotest.(check bool) "shows the newest event" true
    (contains ~affix:"epoch_advance" text);
  Alcotest.(check bool) "tail is bounded" true
    (not (contains ~affix:"epoch=49" text))

(* --- forensics: descriptor-pool scan ----------------------------------- *)

let test_forensics_scan () =
  let mem = Nvram.Mem.create (Nvram.Config.make ~words:8192 ()) in
  let pool = Pmwcas.Pool.create mem ~base:0 ~max_threads:2 in
  let h = Pmwcas.Pool.register pool in
  let d = Pmwcas.Pool.alloc_desc h in
  Pmwcas.Pool.add_word d ~addr:8000 ~expected:0 ~desired:1;
  (* Allocated but never executed: the slot sits in [Undecided]. *)
  let reports = Harness.Forensics.scan_pools mem in
  match reports with
  | [ r ] ->
      Alcotest.(check int) "pool found at base" 0 r.Harness.Forensics.base;
      Alcotest.(check bool) "in-flight slot listed" true
        (r.in_flight <> []);
      List.iter
        (fun (s : Harness.Forensics.desc_state) ->
          Alcotest.(check bool) "status decodes" true
            (Harness.Forensics.status_name s.status <> ""))
        r.in_flight
  | rs -> Alcotest.failf "expected exactly one pool, found %d" (List.length rs)

let test_run_id () =
  let saved = Flight.run_id () in
  Alcotest.(check bool) "derived run id is non-empty" true (saved <> "");
  Flight.set_run_id "custom-id";
  Alcotest.(check string) "override sticks" "custom-id" (Flight.run_id ());
  Flight.set_run_id saved

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "wraparound" `Quick test_wraparound;
          Alcotest.test_case "capacity one" `Quick test_capacity_one;
          Alcotest.test_case "seq monotonic" `Quick test_seq_monotonic;
          Alcotest.test_case "concurrent snapshot" `Quick
            test_concurrent_snapshot;
        ] );
      ( "spans",
        [
          Alcotest.test_case "sampling" `Quick test_sampling;
          Alcotest.test_case "disabled" `Quick test_disabled_is_free;
          Alcotest.test_case "cancel" `Quick test_cancel_unwinds;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "disabled emit is free" `Quick
            test_disabled_overhead;
        ] );
      ( "export",
        [
          Alcotest.test_case "perfetto roundtrip" `Quick
            test_perfetto_roundtrip;
          Alcotest.test_case "postmortem" `Quick test_postmortem;
          Alcotest.test_case "run id" `Quick test_run_id;
        ] );
      ( "forensics",
        [ Alcotest.test_case "pool scan" `Quick test_forensics_scan ] );
    ]
