(* Tests for the PMwCAS core: layout, persistent single-word CAS, the
   descriptor pool, the two-phase algorithm, memory policies, and crash
   recovery with fault injection. *)

module Mem = Nvram.Mem
module Flags = Nvram.Flags
module Layout = Pmwcas.Layout
module Pcas = Pmwcas.Pcas
module Pool = Pmwcas.Pool
module Op = Pmwcas.Op
module Recovery = Pmwcas.Recovery

let expect_invalid f =
  try
    ignore (f ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* One simulated device laid out as [pool | palloc heap | data array]. *)
type env = {
  mem : Mem.t;
  pool : Pool.t;
  palloc : Palloc.t;
  heap_base : int;
  heap_words : int;
  data : int;
  data_words : int;
  max_threads : int;
}

let align8 a = (a + 7) / 8 * 8

let make_env ?(persistent = true) ?(max_threads = 4) ?(descs_per_thread = 8)
    ?(max_words = 8) ?(data_words = 512) ?(heap_words = 8192) ?carve_blocks
    ?sharing () =
  let pool_words = Pool.region_words ~max_words ~descs_per_thread ~max_threads () in
  let heap_base = align8 pool_words in
  let data = align8 (heap_base + heap_words) in
  let mem = Mem.create (Nvram.Config.make ~words:(data + data_words) ()) in
  let palloc =
    Palloc.create ~persistent ?carve_blocks mem ~base:heap_base
      ~words:heap_words ~max_threads
  in
  let pool =
    Pool.create ~persistent ?sharing ~max_words ~descs_per_thread ~palloc mem
      ~base:0 ~max_threads
  in
  { mem; pool; palloc; heap_base; heap_words; data; data_words; max_threads }

(* Re-open an environment inside a crash image: allocator recovery first,
   then PMwCAS recovery, exactly the order Section 5.2 prescribes. *)
let recover_env ?callbacks env img =
  let palloc, _rolled =
    Palloc.recover img ~base:env.heap_base ~words:env.heap_words
      ~max_threads:env.max_threads
  in
  let pool, stats = Recovery.run ~palloc ?callbacks img ~base:0 in
  ( {
      mem = img;
      pool;
      palloc;
      heap_base = env.heap_base;
      heap_words = env.heap_words;
      data = env.data;
      data_words = env.data_words;
      max_threads = env.max_threads;
    },
    stats )

let init_data env values =
  List.iteri (fun i v -> Mem.write env.mem (env.data + i) v) values;
  Mem.persist_all env.mem

(* Build and run one PMwCAS over (addr, expected, desired) triples. *)
let run_mwcas ?policy h triples =
  let d = Pool.alloc_desc h in
  List.iter
    (fun (addr, expected, desired) ->
      Pool.add_word ?policy d ~addr ~expected ~desired)
    triples;
  Op.execute d

let layout_tests =
  let lay =
    Layout.make ~line_words:8 ~pool_base:16 ~nslots:6 ~max_words:4
  in
  [
    Alcotest.test_case "slot geometry" `Quick (fun () ->
        Alcotest.(check int) "slot stride is line multiple" 0
          (lay.slot_words mod 8);
        Alcotest.(check bool) "stride fits header+entries" true
          (lay.slot_words >= 3 + (4 * 4));
        let s0 = Layout.slot_off lay 0 and s1 = Layout.slot_off lay 1 in
        Alcotest.(check int) "stride" lay.slot_words (s1 - s0);
        Alcotest.(check int) "index round trip" 1 (Layout.slot_index lay s1);
        expect_invalid (fun () -> Layout.slot_off lay 6);
        expect_invalid (fun () -> Layout.slot_index lay (s0 + 1)));
    Alcotest.test_case "descriptor pointer round trip" `Quick (fun () ->
        let slot = Layout.slot_off lay 3 in
        let p = Layout.desc_ptr slot in
        Alcotest.(check bool) "mwcas flag" true (Flags.is_mwcas p);
        Alcotest.(check bool) "dirty flag" true (Flags.is_dirty p);
        Alcotest.(check int) "decodes" slot (Layout.desc_of_ptr p));
    Alcotest.test_case "word descriptor pointer round trip" `Quick (fun () ->
        let slot = Layout.slot_off lay 2 in
        let p = Layout.wd_ptr lay ~slot ~k:3 in
        Alcotest.(check bool) "rdcss flag" true (Flags.is_rdcss p);
        let slot', k' = Layout.wd_of_ptr lay p in
        Alcotest.(check int) "slot" slot slot';
        Alcotest.(check int) "entry" 3 k';
        expect_invalid (fun () -> Layout.wd_of_ptr lay (Flags.rdcss lor 5)));
    Alcotest.test_case "entry field addresses are consecutive" `Quick
      (fun () ->
        let slot = Layout.slot_off lay 0 in
        let e0 = Layout.entry_addr lay slot 0 in
        Alcotest.(check int) "first entry after header" (slot + 3) e0;
        Alcotest.(check int) "old" (e0 + 1) (Layout.old_field e0);
        Alcotest.(check int) "new" (e0 + 2) (Layout.new_field e0);
        Alcotest.(check int) "policy" (e0 + 3) (Layout.policy_field e0);
        Alcotest.(check int) "next entry" (e0 + 4)
          (Layout.entry_addr lay slot 1));
    Alcotest.test_case "policy round trip" `Quick (fun () ->
        List.iter
          (fun p ->
            Alcotest.(check bool)
              "round trip" true
              (Layout.policy_of_int (Layout.policy_to_int p) = p))
          [
            Layout.None_;
            Layout.Free_one;
            Layout.Free_new_on_failure;
            Layout.Free_old_on_success;
          ];
        expect_invalid (fun () -> Layout.policy_of_int 9));
  ]

let pcas_tests =
  [
    Alcotest.test_case "write leaves word dirty; read persists it" `Quick
      (fun () ->
        let mem = Mem.create (Nvram.Config.make ~words:16 ()) in
        Pcas.write mem 0 42;
        Alcotest.(check bool) "dirty in place" true
          (Flags.is_dirty (Mem.read mem 0));
        Alcotest.(check int) "read returns clean" 42 (Pcas.read mem 0);
        (* The NVM image may keep the dirty bit set: persist flushes first
           and clears the bit only in the coherent copy. Payload is what
           matters. *)
        Alcotest.(check int) "now durable" 42
          (Flags.clear_dirty (Mem.read_persistent mem 0));
        Alcotest.(check bool) "dirty bit cleared" false
          (Flags.is_dirty (Mem.read mem 0)));
    Alcotest.test_case "second read does not flush again" `Quick (fun () ->
        let mem = Mem.create (Nvram.Config.make ~words:16 ()) in
        Pcas.write mem 0 7;
        ignore (Pcas.read mem 0);
        let f0 = (Nvram.Stats.snapshot (Mem.stats mem)).flushes in
        ignore (Pcas.read mem 0);
        ignore (Pcas.read mem 0);
        let f1 = (Nvram.Stats.snapshot (Mem.stats mem)).flushes in
        Alcotest.(check int) "no extra flush" f0 f1);
    Alcotest.test_case "cas makes the old value durable first" `Quick
      (fun () ->
        let mem = Mem.create (Nvram.Config.make ~words:16 ()) in
        Pcas.write mem 0 5;
        (* 5 is dirty and not yet durable *)
        Alcotest.(check bool) "cas succeeds" true
          (Pcas.cas mem 0 ~expected:5 ~desired:6);
        (* The flush-on-read inside cas persisted 5 before installing 6. *)
        Alcotest.(check bool) "new value dirty" true
          (Flags.is_dirty (Mem.read mem 0));
        Alcotest.(check int) "read" 6 (Pcas.read mem 0));
    Alcotest.test_case "cas failure leaves value intact" `Quick (fun () ->
        let mem = Mem.create (Nvram.Config.make ~words:16 ()) in
        Pcas.write mem 0 5;
        Alcotest.(check bool) "fails" false
          (Pcas.cas mem 0 ~expected:9 ~desired:6);
        Alcotest.(check int) "unchanged" 5 (Pcas.read mem 0));
    Alcotest.test_case "cas_durable survives an immediate crash" `Quick
      (fun () ->
        let mem = Mem.create (Nvram.Config.make ~words:16 ()) in
        Alcotest.(check bool) "ok" true
          (Pcas.cas_durable mem 0 ~expected:0 ~desired:9);
        let img = Mem.crash_image mem in
        Alcotest.(check int) "durable" 9 (Flags.clear_dirty (Mem.read img 0)));
    Alcotest.test_case "unflushed cas can be lost in a crash" `Quick
      (fun () ->
        let mem = Mem.create (Nvram.Config.make ~words:16 ()) in
        ignore (Pcas.cas mem 0 ~expected:0 ~desired:9);
        let img = Mem.crash_image mem in
        Alcotest.(check int) "lost" 0 (Flags.clear_dirty (Mem.read img 0)));
    Alcotest.test_case "persist_batch: empty batch is free" `Quick (fun () ->
        let mem = Mem.create (Nvram.Config.make ~words:64 ()) in
        let s0 = Nvram.Stats.snapshot (Mem.stats mem) in
        Pcas.persist_batch mem [];
        let s1 = Nvram.Stats.snapshot (Mem.stats mem) in
        Alcotest.(check int) "no clwb" s0.flushes s1.flushes;
        Alcotest.(check int) "no fence" s0.fences s1.fences;
        Alcotest.(check int) "no cas" s0.cases s1.cases);
    Alcotest.test_case "persist_batch: shared line flushed once" `Quick
      (fun () ->
        let mem = Mem.create (Nvram.Config.make ~words:64 ()) in
        Pcas.write mem 0 1;
        Pcas.write mem 1 2;
        let s0 = Nvram.Stats.snapshot (Mem.stats mem) in
        Pcas.persist_batch mem
          [ (0, Flags.set_dirty 1); (1, Flags.set_dirty 2) ];
        let s1 = Nvram.Stats.snapshot (Mem.stats mem) in
        Alcotest.(check int) "one clwb for the shared line" 1
          (s1.flushes + s1.elided_flushes - s0.flushes - s0.elided_flushes);
        Alcotest.(check int) "one fence" 1 (s1.fences - s0.fences);
        Alcotest.(check int) "word 0 clean" 1 (Mem.read mem 0);
        Alcotest.(check int) "word 1 clean" 2 (Mem.read mem 1);
        Alcotest.(check int) "word 0 durable" 1
          (Flags.clear_dirty (Mem.read_persistent mem 0)));
    Alcotest.test_case "persist_batch: duplicate addr gets one CAS, last value"
      `Quick (fun () ->
        let mem = Mem.create (Nvram.Config.make ~words:64 ()) in
        (* The word holds the batch's last-listed value, as it would after
           a deduplicated multi-word install; the stale earlier entry must
           neither CAS nor resurrect. A second address keeps the batch on
           the >= 2 path. *)
        Pcas.write mem 8 7;
        Pcas.write mem 16 3;
        let s0 = Nvram.Stats.snapshot (Mem.stats mem) in
        Pcas.persist_batch mem
          [
            (8, Flags.set_dirty 5); (16, Flags.set_dirty 3);
            (8, Flags.set_dirty 7);
          ];
        let s1 = Nvram.Stats.snapshot (Mem.stats mem) in
        Alcotest.(check int) "one dirty-clear CAS per distinct addr" 2
          (s1.cases - s0.cases);
        Alcotest.(check int) "cleared to last-listed value" 7 (Mem.read mem 8);
        Alcotest.(check int) "other word clean" 3 (Mem.read mem 16));
  ]

let pool_tests =
  [
    Alcotest.test_case "register/unregister partitions" `Quick (fun () ->
        let env = make_env ~max_threads:2 () in
        let h1 = Pool.register env.pool in
        let h2 = Pool.register env.pool in
        (try
           ignore (Pool.register env.pool);
           Alcotest.fail "expected Failure"
         with Failure _ -> ());
        Pool.unregister h1;
        let h3 = Pool.register env.pool in
        Pool.unregister h2;
        Pool.unregister h3);
    Alcotest.test_case "alloc_desc marks slot undecided durably" `Quick
      (fun () ->
        let env = make_env () in
        let h = Pool.register env.pool in
        (* Destination-only persistence defers the header flush to
           [seal] ([reserve_entry] compensates): right after alloc the
           durable status still shows the previous incarnation. *)
        let d = Pool.alloc_desc h in
        let slot = Pool.desc_slot d in
        Alcotest.(check int) "volatile status" Layout.status_undecided
          (Pool.desc_status env.pool ~slot);
        Alcotest.(check int) "flit: header flush deferred" Layout.status_free
          (Flags.clear_dirty (Mem.read_persistent env.mem slot));
        Pool.discard d;
        (* Classic protocol: durably Undecided before any entry. *)
        let saved = Nvram.Flit.enabled () in
        Nvram.Flit.set_enabled false;
        Fun.protect
          ~finally:(fun () -> Nvram.Flit.set_enabled saved)
          (fun () ->
            let d = Pool.alloc_desc h in
            let slot = Pool.desc_slot d in
            Alcotest.(check int) "durable status" Layout.status_undecided
              (Flags.clear_dirty (Mem.read_persistent env.mem slot));
            Pool.discard d;
            Alcotest.(check int) "freed" Layout.status_free
              (Pool.desc_status env.pool ~slot)));
    Alcotest.test_case "add_word validations" `Quick (fun () ->
        let env = make_env ~max_words:2 () in
        let h = Pool.register env.pool in
        let d = Pool.alloc_desc h in
        Pool.add_word d ~addr:env.data ~expected:0 ~desired:1;
        expect_invalid (fun () ->
            Pool.add_word d ~addr:env.data ~expected:0 ~desired:2);
        expect_invalid (fun () ->
            Pool.add_word d ~addr:(env.data + 1) ~expected:Flags.dirty
              ~desired:0);
        expect_invalid (fun () ->
            Pool.add_word d ~addr:(-1) ~expected:0 ~desired:0);
        Pool.add_word d ~addr:(env.data + 1) ~expected:0 ~desired:1;
        expect_invalid (fun () ->
            Pool.add_word d ~addr:(env.data + 2) ~expected:0 ~desired:1);
        Pool.discard d);
    Alcotest.test_case "remove_word" `Quick (fun () ->
        let env = make_env () in
        let h = Pool.register env.pool in
        let d = Pool.alloc_desc h in
        Pool.add_word d ~addr:env.data ~expected:0 ~desired:1;
        Pool.add_word d ~addr:(env.data + 1) ~expected:0 ~desired:2;
        Pool.add_word d ~addr:(env.data + 2) ~expected:0 ~desired:3;
        Pool.remove_word d ~addr:(env.data + 1);
        Alcotest.(check int) "count" 2 (Pool.word_count d);
        expect_invalid (fun () -> Pool.remove_word d ~addr:(env.data + 9));
        (* Removed word is re-addable; the others survive. *)
        Pool.add_word d ~addr:(env.data + 1) ~expected:0 ~desired:9;
        Alcotest.(check bool) "executes" true (Op.execute d);
        Alcotest.(check int) "w0" 1 (Op.read_with h env.data);
        Alcotest.(check int) "w1" 9 (Op.read_with h (env.data + 1));
        Alcotest.(check int) "w2" 3 (Op.read_with h (env.data + 2)));
    Alcotest.test_case "descriptor unusable after execute or discard" `Quick
      (fun () ->
        let env = make_env () in
        let h = Pool.register env.pool in
        let d = Pool.alloc_desc h in
        Pool.add_word d ~addr:env.data ~expected:0 ~desired:1;
        ignore (Op.execute d);
        expect_invalid (fun () ->
            Pool.add_word d ~addr:(env.data + 1) ~expected:0 ~desired:1);
        expect_invalid (fun () -> Op.execute d);
        expect_invalid (fun () -> Pool.discard d));
    Alcotest.test_case "pool exhaustion recovers via recycling" `Quick
      (fun () ->
        let env = make_env ~max_threads:1 ~descs_per_thread:4 () in
        let h = Pool.register env.pool in
        (* Many more ops than slots: recycling must keep up. *)
        for i = 1 to 100 do
          Alcotest.(check bool)
            (Printf.sprintf "op %d" i)
            true
            (run_mwcas h [ (env.data, i - 1, i) ])
        done;
        Alcotest.(check int) "final value" 100 (Op.read_with h env.data));
    Alcotest.test_case "free_slots accounting" `Quick (fun () ->
        let env = make_env ~max_threads:2 ~descs_per_thread:4 () in
        Alcotest.(check int) "initial" 8 (Pool.free_slots env.pool);
        let h = Pool.register env.pool in
        let d = Pool.alloc_desc h in
        Alcotest.(check int) "one taken" 7 (Pool.free_slots env.pool);
        Pool.discard d;
        Alcotest.(check int) "returned" 8 (Pool.free_slots env.pool));
    Alcotest.test_case "limbo parks retired slots until readers retire"
      `Quick (fun () ->
        let env = make_env ~max_threads:2 ~descs_per_thread:4 () in
        let h = Pool.register env.pool in
        let h2 = Pool.register env.pool in
        (* h2 plays a reader that may still hold references into h's
           descriptor: while it is pinned the retired slot must stay
           parked, not free. *)
        Epoch.enter (Pool.guard h2);
        Alcotest.(check bool) "executes" true
          (run_mwcas h [ (env.data, 0, 1) ]);
        Alcotest.(check int) "parked in limbo" 1 (Pool.limbo_depth env.pool);
        Alcotest.(check int) "not yet reusable" 7 (Pool.free_slots env.pool);
        ignore (Epoch.advance (Pool.epoch env.pool));
        ignore (Epoch.reclaim (Pool.guard h));
        Alcotest.(check int) "still parked under pin" 1
          (Pool.limbo_depth env.pool);
        Epoch.exit (Pool.guard h2);
        ignore (Epoch.advance (Pool.epoch env.pool));
        ignore (Epoch.reclaim (Pool.guard h));
        Alcotest.(check int) "limbo drained" 0 (Pool.limbo_depth env.pool);
        Alcotest.(check int) "recycled" 8 (Pool.free_slots env.pool);
        Pool.unregister h;
        Pool.unregister h2);
    Alcotest.test_case "steal crosses partitions; recycle returns home"
      `Quick (fun () ->
        let env = make_env ~max_threads:2 ~descs_per_thread:2 () in
        let h = Pool.register env.pool in
        let m0 = Pmwcas.Metrics.snapshot (Pool.metrics env.pool) in
        (* Only partition 0 is registered; taking all four slots forces
           two steals from partition 1's inbox. *)
        let ds = List.init 4 (fun _ -> Pool.alloc_desc h) in
        let m1 = Pmwcas.Metrics.snapshot (Pool.metrics env.pool) in
        Alcotest.(check bool) "stole from the peer inbox" true
          (m1.Pmwcas.Metrics.desc_remote - m0.Pmwcas.Metrics.desc_remote >= 2);
        Alcotest.(check int) "pool drained" 0 (Pool.free_slots env.pool);
        List.iter Pool.discard ds;
        (* Discarded slots route to their home partitions, so the whole
           pool is allocatable again (p1's via its inbox). *)
        Alcotest.(check int) "all recycled" 4 (Pool.free_slots env.pool);
        Pool.unregister h);
    Alcotest.test_case "exhaustion diagnostic reports occupancy" `Quick
      (fun () ->
        let env = make_env ~max_threads:2 ~descs_per_thread:2 () in
        let h = Pool.register env.pool in
        let ds = List.init 4 (fun _ -> Pool.alloc_desc h) in
        (try
           ignore (Pool.alloc_desc h);
           Alcotest.fail "expected exhaustion Failure"
         with Failure m ->
           let has s =
             let n = String.length m and k = String.length s in
             let rec go i =
               i + k <= n && (String.sub m i k = s || go (i + 1))
             in
             go 0
           in
           List.iter
             (fun s ->
               Alcotest.(check bool)
                 (Printf.sprintf "diagnostic mentions %S" s)
                 true (has s))
             [
               "descriptor pool exhausted"; "free=0"; "undecided=4"; "p0";
               "limbo";
             ]);
        List.iter Pool.discard ds;
        Pool.unregister h);
    Alcotest.test_case "shared scan baseline allocates and recycles" `Quick
      (fun () ->
        let env =
          make_env ~sharing:`Shared ~max_threads:1 ~descs_per_thread:4 ()
        in
        Alcotest.(check bool) "sharing mode" true
          (Pool.sharing env.pool = `Shared);
        let h = Pool.register env.pool in
        let m0 = Pmwcas.Metrics.snapshot (Pool.metrics env.pool) in
        for i = 1 to 50 do
          Alcotest.(check bool)
            (Printf.sprintf "op %d" i)
            true
            (run_mwcas h [ (env.data, i - 1, i) ])
        done;
        let m1 = Pmwcas.Metrics.snapshot (Pool.metrics env.pool) in
        Alcotest.(check bool) "scan examined slots" true
          (m1.Pmwcas.Metrics.desc_scans - m0.Pmwcas.Metrics.desc_scans >= 50);
        Alcotest.(check int) "final value" 50 (Op.read_with h env.data);
        Pool.unregister h;
        ignore (Epoch.drain_all (Pool.epoch env.pool));
        Alcotest.(check int) "quiescent pool fully free" 4
          (Pool.free_slots env.pool));
  ]

let op_tests =
  [
    Alcotest.test_case "successful 4-word swap installs all words" `Quick
      (fun () ->
        let env = make_env () in
        init_data env [ 10; 20; 30; 40 ];
        let h = Pool.register env.pool in
        let ok =
          run_mwcas h
            [
              (env.data, 10, 11);
              (env.data + 1, 20, 21);
              (env.data + 2, 30, 31);
              (env.data + 3, 40, 41);
            ]
        in
        Alcotest.(check bool) "succeeded" true ok;
        List.iteri
          (fun i v ->
            Alcotest.(check int)
              (Printf.sprintf "word %d" i)
              v
              (Op.read_with h (env.data + i)))
          [ 11; 21; 31; 41 ]);
    Alcotest.test_case "one stale word fails the whole operation" `Quick
      (fun () ->
        let env = make_env () in
        init_data env [ 10; 20; 30 ];
        let h = Pool.register env.pool in
        let ok =
          run_mwcas h
            [
              (env.data, 10, 11);
              (env.data + 1, 99, 21);
              (* stale expected *)
              (env.data + 2, 30, 31);
            ]
        in
        Alcotest.(check bool) "failed" false ok;
        List.iteri
          (fun i v ->
            Alcotest.(check int)
              (Printf.sprintf "word %d unchanged" i)
              v
              (Op.read_with h (env.data + i)))
          [ 10; 20; 30 ]);
    Alcotest.test_case "values with mark bits flow through" `Quick (fun () ->
        let env = make_env () in
        let h = Pool.register env.pool in
        let marked = Flags.set_mark 77 in
        Alcotest.(check bool) "ok" true (run_mwcas h [ (env.data, 0, marked) ]);
        let v = Op.read_with h env.data in
        Alcotest.(check bool) "mark preserved" true (Flags.is_marked v);
        Alcotest.(check int) "payload" 77 (Flags.clear_mark v));
    Alcotest.test_case "empty descriptor trivially succeeds" `Quick (fun () ->
        let env = make_env () in
        let h = Pool.register env.pool in
        let d = Pool.alloc_desc h in
        Alcotest.(check bool) "ok" true (Op.execute d));
    Alcotest.test_case "read is transparent after completion" `Quick
      (fun () ->
        let env = make_env () in
        let h = Pool.register env.pool in
        ignore (run_mwcas h [ (env.data, 0, 5); (env.data + 7, 0, 6) ]);
        (* No flag bits are ever visible through Op.read. *)
        let v = Op.read_with h env.data in
        Alcotest.(check int) "clean" 5 v;
        Alcotest.(check bool) "no flags" false (Flags.is_descriptor v));
    Alcotest.test_case "target words become durable on success" `Quick
      (fun () ->
        let env = make_env () in
        init_data env [ 1; 2 ];
        let h = Pool.register env.pool in
        ignore (run_mwcas h [ (env.data, 1, 100); (env.data + 1, 2, 200) ]);
        (* Phase 2 persists eagerly: a crash right now keeps the values.
           The descriptor itself may still be awaiting its epoch-deferred
           recycle, in which case recovery rolls it forward (idempotent). *)
        let img = Mem.crash_image env.mem in
        let _, stats = recover_env env img in
        Alcotest.(check bool) "at most the last op in flight" true
          (stats.in_flight <= 1 && stats.rolled_back = 0);
        Alcotest.(check int) "w0" 100 (Flags.clear_dirty (Mem.read img env.data));
        Alcotest.(check int) "w1" 200
          (Flags.clear_dirty (Mem.read img (env.data + 1))));
    Alcotest.test_case "volatile pool never flushes" `Quick (fun () ->
        let env = make_env ~persistent:false () in
        let h = Pool.register env.pool in
        let before = (Nvram.Stats.snapshot (Mem.stats env.mem)).flushes in
        for i = 0 to 9 do
          ignore (run_mwcas h [ (env.data, i, i + 1); (env.data + 1, i, i + 1) ])
        done;
        let after = (Nvram.Stats.snapshot (Mem.stats env.mem)).flushes in
        Alcotest.(check int) "zero flushes" before after;
        Alcotest.(check int) "value" 10 (Op.read_with h env.data));
    Alcotest.test_case "persistent op flushes a bounded amount" `Quick
      (fun () ->
        let env = make_env () in
        let h = Pool.register env.pool in
        let s0 = Nvram.Stats.snapshot (Mem.stats env.mem) in
        ignore
          (run_mwcas h
             [ (env.data, 0, 1); (env.data + 8, 0, 1); (env.data + 16, 0, 1) ]);
        let s1 = Nvram.Stats.snapshot (Mem.stats env.mem) in
        let flushes = (Nvram.Stats.diff s1 s0).flushes in
        Alcotest.(check bool) "some flushes" true (flushes > 0);
        (* alloc(1) + seal(2 lines) + 3 installs + 3 phase-2 + status +
           recycle slack: way under 20 for a 3-word op. *)
        Alcotest.(check bool)
          (Printf.sprintf "bounded (%d)" flushes)
          true (flushes <= 20));
    Alcotest.test_case "help completes a stalled operation" `Quick (fun () ->
        (* Install phase-1 state by hand, then let a reader's help path
           finish the operation. *)
        let env = make_env () in
        init_data env [ 7; 8 ];
        let h = Pool.register env.pool in
        let d = Pool.alloc_desc h in
        Pool.add_word d ~addr:env.data ~expected:7 ~desired:70;
        Pool.add_word d ~addr:(env.data + 1) ~expected:8 ~desired:80;
        Pool.seal d;
        let slot = Pool.desc_slot d in
        (* Forge a phase-1 installation of the first word only. *)
        ignore
          (Mem.cas env.mem env.data ~expected:7
             ~desired:(Layout.desc_ptr slot));
        (* A reader of either word must help the op to completion. *)
        let v = Op.read_with h env.data in
        Alcotest.(check int) "helped to success" 70 v;
        Alcotest.(check int) "second word too" 80 (Op.read_with h (env.data + 1));
        Alcotest.(check int) "status" Layout.status_succeeded
          (Pool.desc_status env.pool ~slot);
        Pool.finish d ~succeeded:true);
    Alcotest.test_case "shared-line descriptor coalesces its phase flushes"
      `Quick (fun () ->
        let env = make_env () in
        let stats () = Nvram.Stats.snapshot (Mem.stats env.mem) in
        let line = (Mem.config env.mem).line_words in
        (* Run one 4-word op and return the device flushes / elisions it
           cost.  The targets are freshly persisted, so the deltas are
           dominated by the op's own phase batches. *)
        let run h addrs =
          List.iter (fun a -> Mem.write env.mem a 5) addrs;
          Mem.persist_all env.mem;
          let before = stats () in
          let d = Pool.alloc_desc h in
          List.iter
            (fun a -> Pool.add_word d ~addr:a ~expected:5 ~desired:6)
            addrs;
          Alcotest.(check bool) "succeeded" true (Op.execute d);
          let after = stats () in
          ( after.flushes - before.flushes,
            after.elided_flushes - before.elided_flushes )
        in
        let h = Pool.register env.pool in
        let shared = List.init 4 (fun i -> env.data + i) in
        let spread = List.init 4 (fun i -> env.data + ((i + 1) * line)) in
        let shared_fl, shared_el = run h shared in
        let spread_fl, _ = run h spread in
        Pool.unregister h;
        (* All four targets on one cache line: the precommit and apply
           batches flush that line once and elide the duplicates, so the
           shared-line op must be strictly cheaper in device flushes. *)
        Alcotest.(check bool) "duplicates elided" true (shared_el > 0);
        Alcotest.(check bool) "fewer distinct-line flushes" true
          (shared_fl < spread_fl));
    Alcotest.test_case "failed attempts record contention backoff" `Quick
      (fun () ->
        let env = make_env () in
        init_data env [ 1 ];
        let h = Pool.register env.pool in
        let m0 = Pmwcas.Metrics.snapshot (Pool.metrics env.pool) in
        (* Stale-expected failures grow this domain's failure streak;
           each one takes a bounded backoff before returning. *)
        for _ = 1 to 4 do
          Alcotest.(check bool) "stale expected fails" false
            (run_mwcas h [ (env.data, 99, 100) ])
        done;
        let m1 = Pmwcas.Metrics.snapshot (Pool.metrics env.pool) in
        Alcotest.(check bool) "backoffs recorded" true
          (m1.backoffs >= m0.backoffs + 4);
        (* A success resets the streak and takes no backoff. *)
        Alcotest.(check bool) "succeeds" true
          (run_mwcas h [ (env.data, 1, 2) ]);
        let m2 = Pmwcas.Metrics.snapshot (Pool.metrics env.pool) in
        Alcotest.(check int) "success does not back off" m1.backoffs
          m2.backoffs;
        Pool.unregister h);
  ]

let policy_tests =
  [
    Alcotest.test_case "FreeOne frees old on success" `Quick (fun () ->
        (* carve_blocks:1: the "A reused" check below asserts exact-block
           recycling, which chunked carving's cache would mask. *)
        let env = make_env ~carve_blocks:1 () in
        let h = Pool.register env.pool in
        let ph = Palloc.register_thread env.palloc in
        (* Install block A, then replace it by block B with FreeOne. *)
        let d1 = Pool.alloc_desc h in
        let dest = Pool.reserve_entry d1 ~addr:env.data ~expected:0 in
        let a = Palloc.alloc ph ~nwords:4 ~dest in
        Alcotest.(check bool) "install A" true (Op.execute d1);
        let d2 = Pool.alloc_desc h in
        let dest =
          Pool.reserve_entry ~policy:Layout.Free_one d2 ~addr:env.data
            ~expected:a
        in
        let b = Palloc.alloc ph ~nwords:4 ~dest in
        Alcotest.(check bool) "replace by B" true (Op.execute d2);
        (* Force the deferred recycle. *)
        ignore (Epoch.advance (Pool.epoch env.pool));
        ignore (Epoch.reclaim (Pool.guard h));
        let audit = Palloc.audit env.palloc in
        Alcotest.(check int) "only B remains" 1 audit.allocated_blocks;
        Alcotest.(check int) "value is B" b (Op.read_with h env.data);
        (* A is recyclable again. *)
        let d3 = Pool.alloc_desc h in
        let dest = Pool.reserve_entry d3 ~addr:(env.data + 1) ~expected:0 in
        let c = Palloc.alloc ph ~nwords:4 ~dest in
        Alcotest.(check int) "A reused" a c;
        Pool.discard d3);
    Alcotest.test_case "FreeOne frees new on failure" `Quick (fun () ->
        let env = make_env () in
        let h = Pool.register env.pool in
        let ph = Palloc.register_thread env.palloc in
        init_data env [ 123 ];
        let d = Pool.alloc_desc h in
        let dest =
          Pool.reserve_entry ~policy:Layout.Free_one d ~addr:env.data
            ~expected:999 (* stale: will fail *)
        in
        let _b = Palloc.alloc ph ~nwords:4 ~dest in
        Alcotest.(check bool) "fails" false (Op.execute d);
        ignore (Epoch.advance (Pool.epoch env.pool));
        ignore (Epoch.reclaim (Pool.guard h));
        let audit = Palloc.audit env.palloc in
        Alcotest.(check int) "new block freed" 0 audit.allocated_blocks;
        Alcotest.(check int) "target untouched" 123 (Op.read_with h env.data));
    Alcotest.test_case "FreeOldOnSuccess (delete from a structure)" `Quick
      (fun () ->
        let env = make_env () in
        let h = Pool.register env.pool in
        let ph = Palloc.register_thread env.palloc in
        let d1 = Pool.alloc_desc h in
        let dest = Pool.reserve_entry d1 ~addr:env.data ~expected:0 in
        let a = Palloc.alloc ph ~nwords:4 ~dest in
        ignore (Op.execute d1);
        (* Delete: a -> 0, freeing a on success. *)
        let d2 = Pool.alloc_desc h in
        Pool.add_word ~policy:Layout.Free_old_on_success d2 ~addr:env.data
          ~expected:a ~desired:0;
        Alcotest.(check bool) "delete" true (Op.execute d2);
        ignore (Epoch.advance (Pool.epoch env.pool));
        ignore (Epoch.reclaim (Pool.guard h));
        Alcotest.(check int) "freed" 0
          (Palloc.audit env.palloc).allocated_blocks);
    Alcotest.test_case "discard releases reservations" `Quick (fun () ->
        let env = make_env () in
        let h = Pool.register env.pool in
        let ph = Palloc.register_thread env.palloc in
        let d = Pool.alloc_desc h in
        let dest = Pool.reserve_entry d ~addr:env.data ~expected:0 in
        let _b = Palloc.alloc ph ~nwords:4 ~dest in
        Pool.discard d;
        Alcotest.(check int) "no block survives" 0
          (Palloc.audit env.palloc).allocated_blocks);
    Alcotest.test_case "finalize callback replaces policies" `Quick (fun () ->
        let env = make_env () in
        let seen = ref [] in
        let cb =
          Pool.register_callback env.pool (fun ~succeeded entries ->
              seen := (succeeded, Array.length entries) :: !seen;
              [])
        in
        let h = Pool.register env.pool in
        let d = Pool.alloc_desc ~callback:cb h in
        Pool.add_word d ~addr:env.data ~expected:0 ~desired:5;
        Pool.add_word d ~addr:(env.data + 1) ~expected:0 ~desired:6;
        Alcotest.(check bool) "ok" true (Op.execute d);
        ignore (Epoch.advance (Pool.epoch env.pool));
        ignore (Epoch.reclaim (Pool.guard h));
        Alcotest.(check (list (pair bool int))) "callback ran once"
          [ (true, 2) ] !seen;
        expect_invalid (fun () -> Pool.alloc_desc ~callback:99 h));
    Alcotest.test_case "reserve_entry forbids remove_word" `Quick (fun () ->
        let env = make_env () in
        let h = Pool.register env.pool in
        let d = Pool.alloc_desc h in
        let _ = Pool.reserve_entry d ~addr:env.data ~expected:0 in
        expect_invalid (fun () -> Pool.remove_word d ~addr:env.data);
        Pool.discard d);
  ]

(* --- Concurrency ------------------------------------------------------ *)

let concurrency_tests =
  [
    Alcotest.test_case "swaps over shared words are atomic" `Slow (fun () ->
        (* Workers repeatedly pick 4 distinct words of a small array and
           apply a sum-preserving PMwCAS. Under any interleaving the array
           total is invariant — partial installs would break it. *)
        let env = make_env ~max_threads:4 ~descs_per_thread:16 () in
        let n = 16 in
        init_data env (List.init n (fun _ -> 1000));
        let ops_per_worker = 400 in
        let worker seed () =
          let h = Pool.register env.pool in
          let rng = Random.State.make [| seed |] in
          let successes = ref 0 in
          for _ = 1 to ops_per_worker do
            let idx = Array.init 4 (fun _ -> Random.State.int rng n) in
            let distinct = Array.to_list idx |> List.sort_uniq compare in
            if List.length distinct = 4 then begin
              let addrs = List.map (fun i -> env.data + i) distinct in
              let vals =
                Pool.with_epoch h (fun () ->
                    List.map (Op.read env.pool) addrs)
              in
              let delta = 1 + Random.State.int rng 5 in
              let triples =
                match List.combine addrs vals with
                | (a1, v1) :: (a2, v2) :: rest ->
                    (a1, v1, v1 + delta) :: (a2, v2, v2 - delta)
                    :: List.map (fun (a, v) -> (a, v, v)) rest
                | _ -> assert false
              in
              if run_mwcas h triples then incr successes
            end
          done;
          Pool.unregister h;
          !successes
        in
        let ds = List.init 4 (fun i -> Domain.spawn (worker (i + 1))) in
        let total_success = List.fold_left (fun a d -> a + Domain.join d) 0 ds in
        Alcotest.(check bool) "some ops succeeded" true (total_success > 0);
        let h = Pool.register env.pool in
        let sum = ref 0 in
        for i = 0 to n - 1 do
          sum := !sum + Op.read_with h (env.data + i)
        done;
        Alcotest.(check int) "sum invariant" (n * 1000) !sum;
        let m = Pmwcas.Metrics.snapshot (Pool.metrics env.pool) in
        Alcotest.(check int) "metrics: attempts add up"
          m.attempts (m.succeeded + m.failed));
    Alcotest.test_case "readers never observe descriptors or dirty bits"
      `Slow (fun () ->
        let env = make_env ~max_threads:4 () in
        init_data env [ 0; 0 ];
        let stop = Atomic.make false in
        let violations = Atomic.make 0 in
        let writer () =
          let h = Pool.register env.pool in
          let i = ref 0 in
          while not (Atomic.get stop) do
            incr i;
            ignore
              (run_mwcas h
                 [ (env.data, !i - 1, !i); (env.data + 1, (!i - 1) * 2, !i * 2) ])
            |> ignore;
            (* Single writer: every op succeeds. *)
            ()
          done;
          Pool.unregister h
        in
        let reader () =
          let h = Pool.register env.pool in
          while not (Atomic.get stop) do
            (* Explicit sequencing: a strictly before b (a tuple would
               evaluate right-to-left and invert the ordering argument). *)
            let a, b =
              Pool.with_epoch h (fun () ->
                  let a = Op.read env.pool env.data in
                  let b = Op.read env.pool (env.data + 1) in
                  (a, b))
            in
            if Flags.is_descriptor a || Flags.is_dirty a then
              ignore (Atomic.fetch_and_add violations 1);
            (* b was read after a; with one writer, b >= 2a - 2 always
               holds (b may lag by at most one op ahead). The strong check
               is flag cleanliness; arithmetic sanity: *)
            if b < (2 * a) - 2 then ignore (Atomic.fetch_and_add violations 1)
          done;
          Pool.unregister h
        in
        let ds =
          [ Domain.spawn writer; Domain.spawn reader; Domain.spawn reader ]
        in
        Unix.sleepf 0.4;
        Atomic.set stop true;
        List.iter Domain.join ds;
        Alcotest.(check int) "no violations" 0 (Atomic.get violations));
  ]

(* --- Crash recovery --------------------------------------------------- *)

(* Run sum-preserving transfers with fault injection; at whatever point the
   crash hits, recovery must restore a state where the bank balances. *)
let bank_crash_roundtrip ~workers ~fuel ~evict_seed ~evict_prob =
  let env = make_env ~max_threads:(max workers 1) ~data_words:64 () in
  let n = 16 in
  init_data env (List.init n (fun _ -> 1000));
  Mem.inject_crash_after env.mem fuel;
  let worker seed () =
    let h = Pool.register env.pool in
    let rng = Random.State.make [| seed |] in
    (try
       while true do
         let i = Random.State.int rng n in
         let j = (i + 1 + Random.State.int rng (n - 1)) mod n in
         let vi, vj =
           Pool.with_epoch h (fun () ->
               (Op.read env.pool (env.data + i), Op.read env.pool (env.data + j)))
         in
         let d = 1 + Random.State.int rng 10 in
         ignore
           (run_mwcas h
              [ (env.data + i, vi, vi + d); (env.data + j, vj, vj - d) ])
       done
     with Mem.Crash -> ());
    ()
  in
  if workers <= 1 then worker 42 ()
  else begin
    let ds = List.init workers (fun s -> Domain.spawn (worker (s + 1))) in
    List.iter Domain.join ds
  end;
  let img =
    Mem.crash_image ~evict_prob ~seed:(evict_seed)
      env.mem
  in
  let env', stats = recover_env env img in
  (* All descriptors settled; no flag bits anywhere in the data. *)
  let sum = ref 0 in
  for i = 0 to n - 1 do
    let v = Mem.read img (env'.data + i) in
    if Flags.is_descriptor v then
      Alcotest.failf "word %d still holds a descriptor" i;
    sum := !sum + Flags.clear_dirty v
  done;
  Alcotest.(check int) "bank balance preserved" (n * 1000) !sum;
  (* Pool is reusable after recovery. *)
  let h = Pool.register env'.pool in
  Alcotest.(check bool) "post-recovery op" true
    (run_mwcas h
       [ (env'.data, Op.read_with h env'.data, 1); (env'.data + 1, Op.read_with h (env'.data + 1), 2) ]);
  ignore stats

let recovery_tests =
  [
    Alcotest.test_case "bank invariant across single-thread crashes" `Slow
      (fun () ->
        List.iter
          (fun fuel ->
            bank_crash_roundtrip ~workers:1 ~fuel ~evict_seed:fuel
              ~evict_prob:0.4)
          [ 5; 17; 33; 64; 121; 250; 501; 999; 2000 ]);
    Alcotest.test_case "bank invariant across multi-thread crashes" `Slow
      (fun () ->
        List.iter
          (fun fuel ->
            bank_crash_roundtrip ~workers:3 ~fuel ~evict_seed:(fuel * 7)
              ~evict_prob:0.4)
          [ 50; 333; 1111; 4242 ]);
    Alcotest.test_case "no reserved block is leaked or double-owned" `Slow
      (fun () ->
        (* Pointer-slot workload: install fresh blocks, delete old ones,
           crash at a random point. After both recoveries, exactly the
           blocks reachable from the slots are allocated. *)
        List.iter
          (fun fuel ->
            let env = make_env ~data_words:64 () in
            let nslots = 8 in
            Mem.inject_crash_after env.mem fuel;
            let h = Pool.register env.pool in
            let ph = Palloc.register_thread env.palloc in
            let rng = Random.State.make [| fuel |] in
            (try
               while true do
                 let s = env.data + Random.State.int rng nslots in
                 let cur = Op.read_with h s in
                 if cur = 0 || Random.State.bool rng then begin
                   (* install a fresh block over whatever is there *)
                   let d = Pool.alloc_desc h in
                   let dest =
                     Pool.reserve_entry ~policy:Layout.Free_one d ~addr:s
                       ~expected:cur
                   in
                   let _b = Palloc.alloc ph ~nwords:4 ~dest in
                   ignore (Op.execute d)
                 end
                 else begin
                   (* delete *)
                   let d = Pool.alloc_desc h in
                   Pool.add_word ~policy:Layout.Free_old_on_success d ~addr:s
                     ~expected:cur ~desired:0;
                   ignore (Op.execute d)
                 end
               done
             with Mem.Crash -> ());
            let img =
              Mem.crash_image ~evict_prob:0.3
                ~seed:(fuel + 1)
                env.mem
            in
            let env', _stats = recover_env env img in
            let live = ref 0 in
            for i = 0 to nslots - 1 do
              let v = Flags.clear_dirty (Mem.read img (env'.data + i)) in
              if v <> 0 then incr live
            done;
            let audit = Palloc.audit env'.palloc in
            Alcotest.(check int)
              (Printf.sprintf "fuel %d: blocks = live pointers" fuel)
              !live audit.allocated_blocks;
            Alcotest.(check int) "no activation records" 0 audit.in_flight)
          [ 10; 30; 55; 100; 180; 333; 500; 900; 1500; 3000 ]);
    Alcotest.test_case "recovery is idempotent" `Quick (fun () ->
        let env = make_env () in
        init_data env [ 5; 6 ];
        Mem.inject_crash_after env.mem 40;
        let h = Pool.register env.pool in
        (try
           let i = ref 0 in
           while true do
             incr i;
             ignore
               (run_mwcas h
                  [
                    (env.data, Op.read_with h env.data, !i);
                    (env.data + 1, Op.read_with h (env.data + 1), !i * 2);
                  ])
           done
         with Mem.Crash -> ());
        let img = Mem.crash_image env.mem in
        let env1, s1 = recover_env env img in
        (* Run recovery again over the already recovered image. *)
        let _env2, s2 = recover_env env1 (Mem.crash_image img) in
        Alcotest.(check int) "second pass finds nothing" 0 s2.in_flight;
        ignore s1);
    Alcotest.test_case "crash during recovery is recoverable" `Quick
      (fun () ->
        let env = make_env () in
        init_data env [ 5; 6 ];
        Mem.inject_crash_after env.mem 60;
        let h = Pool.register env.pool in
        (try
           let i = ref 0 in
           while true do
             incr i;
             ignore
               (run_mwcas h
                  [
                    (env.data, Op.read_with h env.data, !i);
                    (env.data + 1, Op.read_with h (env.data + 1), !i * 3);
                  ])
           done
         with Mem.Crash -> ());
        let img = Mem.crash_image env.mem in
        (* First recovery attempt dies after a few steps. *)
        Mem.inject_crash_after img 10;
        (try
           let _ = recover_env env img in
           ()
         with Mem.Crash -> ());
        Mem.disarm img;
        let img2 = Mem.crash_image img in
        let env2, _ = recover_env env img2 in
        let a = Flags.clear_dirty (Mem.read img2 env2.data) in
        let b = Flags.clear_dirty (Mem.read img2 (env2.data + 1)) in
        Alcotest.(check bool) "consistent pair" true (b = 3 * a || (a = 5 && b = 6));
        Alcotest.(check int) "all settled" 0
          (let _, s = recover_env env2 (Mem.crash_image img2) in
           s.in_flight))
  ]

(* Property: single-threaded random mixes of 1..6-word PMwCASes with random
   crash fuel always recover to a prefix-consistent state: every op is all
   or nothing. We tag each op with a unique stamp written to all its words;
   recovery must show every word group carrying the same stamp. *)
let prop_all_or_nothing =
  QCheck.Test.make ~count:60 ~name:"every PMwCAS is all-or-nothing at crash"
    QCheck.(pair (int_bound 400) (int_bound 10_000))
    (fun (fuel, seed) ->
      let env = make_env ~data_words:64 () in
      let group = 4 in
      (* data words i*4..i*4+3 always updated together to the same stamp *)
      let h = Pool.register env.pool in
      let rng = Random.State.make [| seed |] in
      Mem.inject_crash_after env.mem (1 + fuel);
      (try
         let stamp = ref 0 in
         while true do
           incr stamp;
           let g = Random.State.int rng 4 in
           let base = env.data + (g * group) in
           let cur = Op.read_with h base in
           let triples =
             List.init group (fun i -> (base + i, cur, !stamp))
           in
           (* all four words of a group always hold the same value *)
           ignore (run_mwcas h triples)
         done
       with Mem.Crash -> ());
      let img =
        Mem.crash_image ~evict_prob:0.5 ~seed:(seed + 1)
          env.mem
      in
      let _env', _ = recover_env env img in
      let ok = ref true in
      for g = 0 to 3 do
        let base = env.data + (g * group) in
        let v0 = Flags.clear_dirty (Mem.read img base) in
        for i = 1 to group - 1 do
          if Flags.clear_dirty (Mem.read img (base + i)) <> v0 then ok := false
        done
      done;
      !ok)

(* Commit-protocol strategy variants: the flag algebra is identical for
   all three, but each dictates which words ever carry the dirty bit. *)
let with_strategy strat f =
  let saved = Nvram.Config.default_strategy () in
  Nvram.Config.set_default_strategy strat;
  Fun.protect ~finally:(fun () -> Nvram.Config.set_default_strategy saved) f

let prop_flags_per_strategy =
  QCheck.Test.make ~count:120
    ~name:"flag round trips and store discipline hold under every strategy"
    QCheck.(pair (int_bound 0x3FFF_FFFF) (int_bound 2))
    (fun (v, si) ->
      let strat = List.nth [ `Paper; `NoDirty; `FewFence ] si in
      with_strategy strat (fun () ->
          let algebra =
            Flags.clear_dirty (Flags.set_dirty v) = v
            && Flags.is_dirty (Flags.set_dirty v)
            && (not (Flags.is_dirty (Flags.clear_dirty (Flags.set_dirty v))))
            && Flags.clear_dirty v = Flags.clear_dirty (Flags.clear_dirty v)
          in
          (* A protocol store observes the strategy's dirty discipline
             and always reads back the payload: [`Paper]/[`FewFence]
             install dirty, [`NoDirty] installs clean with the write-back
             already enqueued — durable at the next fence with no
             per-word dirty handling. *)
          let mem = Mem.create (Nvram.Config.make ~words:16 ()) in
          Pcas.write mem 0 v;
          let raw = Mem.read mem 0 in
          let discipline =
            match strat with
            | `NoDirty -> not (Flags.is_dirty raw)
            | `Paper | `FewFence -> Flags.is_dirty raw
          in
          let read_back = Pcas.read mem 0 = v in
          let clean_after = not (Flags.is_dirty (Mem.read mem 0)) in
          Mem.fence mem;
          algebra && discipline && read_back && clean_after
          && Flags.clear_dirty (Mem.read_persistent mem 0) = v))

let strategy_tests =
  [
    Alcotest.test_case
      "persist_batch under nodirty: no dirty-clear CAS, still one fence"
      `Quick (fun () ->
        with_strategy `NoDirty (fun () ->
            let mem = Mem.create (Nvram.Config.make ~words:64 ()) in
            (* [`NoDirty] protocol stores install clean values, so the
               batch's dirty checks all skip their CAS — the whole batch
               degenerates to clwbs plus the single fence. *)
            Pcas.write mem 0 7;
            Pcas.write mem 9 8;
            Pcas.write mem 17 9;
            Nvram.Strategy.reset_counters ();
            let s0 = Nvram.Stats.snapshot (Mem.stats mem) in
            Pcas.persist_batch mem
              [ (0, Mem.read mem 0); (9, Mem.read mem 9); (17, Mem.read mem 17) ];
            let s1 = Nvram.Stats.snapshot (Mem.stats mem) in
            let c = Nvram.Strategy.counters () in
            Alcotest.(check int) "no dirty-clear CAS counted" 0
              c.Nvram.Strategy.dirty_cas;
            Alcotest.(check int) "no CAS hit the device" 0 (s1.cases - s0.cases);
            Alcotest.(check int) "one fence drains the batch" 1
              (s1.fences - s0.fences);
            Alcotest.(check int) "payloads durable" (7 + 8 + 9)
              (Flags.clear_dirty (Mem.read_persistent mem 0)
              + Flags.clear_dirty (Mem.read_persistent mem 9)
              + Flags.clear_dirty (Mem.read_persistent mem 17))));
    Alcotest.test_case "paper persist_batch still pays the dirty-clear CASes"
      `Quick (fun () ->
        (* Contrast case for the one above: same shape of batch, default
           [`Paper] strategy, one dirty-clear CAS per distinct address,
           and the [strategy.counters] source sees them. *)
        with_strategy `Paper (fun () ->
            let mem = Mem.create (Nvram.Config.make ~words:64 ()) in
            Pcas.write mem 0 7;
            Pcas.write mem 9 8;
            Nvram.Strategy.reset_counters ();
            let s0 = Nvram.Stats.snapshot (Mem.stats mem) in
            Pcas.persist_batch mem [ (0, Mem.read mem 0); (9, Mem.read mem 9) ];
            let s1 = Nvram.Stats.snapshot (Mem.stats mem) in
            let c = Nvram.Strategy.counters () in
            Alcotest.(check int) "one dirty-clear CAS per addr" 2
              c.Nvram.Strategy.dirty_cas;
            Alcotest.(check int) "device saw both CASes" 2
              (s1.cases - s0.cases);
            Alcotest.(check int) "one fence drains the batch" 1
              (s1.fences - s0.fences)));
    Alcotest.test_case "cas under nodirty installs clean and writes back"
      `Quick (fun () ->
        with_strategy `NoDirty (fun () ->
            let mem = Mem.create (Nvram.Config.make ~words:16 ()) in
            Alcotest.(check bool) "cas succeeds" true
              (Pcas.cas mem 0 ~expected:0 ~desired:5);
            Alcotest.(check bool) "installed clean" false
              (Flags.is_dirty (Mem.read mem 0));
            (* The clwb is enqueued but not yet drained: a fence makes it
               durable with no further per-word work. *)
            Mem.fence mem;
            Alcotest.(check int) "durable after the next fence" 5
              (Flags.clear_dirty (Mem.read_persistent mem 0))));
  ]

(* Header sizing, short-cache-line durability and attach validation. *)
let header_tests =
  [
    Alcotest.test_case "region_words honours line_words" `Quick (fun () ->
        let max_threads = 2 and descs_per_thread = 4 and max_words = 4 in
        let w8 =
          Pool.region_words ~max_words ~descs_per_thread ~max_threads ()
        in
        let w16 =
          Pool.region_words ~line_words:16 ~max_words ~descs_per_thread
            ~max_threads ()
        in
        let lay16 =
          Layout.make ~line_words:16 ~pool_base:0
            ~nslots:(max_threads * descs_per_thread) ~max_words
        in
        Alcotest.(check int) "matches the 16-word-line layout"
          (Layout.region_words lay16) w16;
        (* Regression: sizing used to hardcode 8-word lines, so a device
           with longer lines under-reserved and the pool overran the
           carve. *)
        Alcotest.(check bool) "longer lines need more words" true (w16 > w8);
        let mem =
          Mem.create (Nvram.Config.make ~line_words:16 ~words:w16 ())
        in
        let pool =
          Pool.create ~max_words ~descs_per_thread mem ~base:0 ~max_threads
        in
        Alcotest.(check int) "pool fills the reserve exactly" w16
          (Layout.region_words (Pool.layout pool)));
    Alcotest.test_case "header survives a crash on 2-word-line devices"
      `Quick (fun () ->
        (* Regression: [create] flushed only the line of [base], leaving
           header words 2-3 (max_words, max_threads) volatile on devices
           with lines shorter than the header. *)
        let max_threads = 2 and descs_per_thread = 2 in
        let words =
          Pool.region_words ~line_words:2 ~descs_per_thread ~max_threads ()
        in
        let mem =
          Mem.create (Nvram.Config.make ~line_words:2 ~words ())
        in
        let _ = Pool.create ~descs_per_thread mem ~base:0 ~max_threads in
        let img = Mem.crash_image mem in
        let pool = Pool.attach img ~base:0 in
        let lay = Pool.layout pool in
        Alcotest.(check int) "nslots" (max_threads * descs_per_thread)
          lay.nslots;
        Alcotest.(check int) "max_words" 8 lay.max_words;
        for i = 0 to lay.nslots - 1 do
          Alcotest.(check int) "slot formatted free" Layout.status_free
            (Pool.desc_status pool ~slot:(Layout.slot_off lay i))
        done);
    Alcotest.test_case "alloc_desc persists count and callback on short lines"
      `Quick (fun () ->
        (* Regression: [alloc_desc] flushed only the line of [slot] after
           writing three header words; with 2-word lines the callback word
           sits on the next line and a crash image could durably pair an
           Undecided status with a stale callback id. *)
        let max_threads = 1 and descs_per_thread = 2 in
        let words =
          Pool.region_words ~line_words:2 ~descs_per_thread ~max_threads ()
        in
        let mem =
          Mem.create (Nvram.Config.make ~line_words:2 ~words ())
        in
        let pool = Pool.create ~descs_per_thread mem ~base:0 ~max_threads in
        let id = Pool.register_callback pool (fun ~succeeded:_ _ -> []) in
        let h = Pool.register pool in
        let d = Pool.alloc_desc ~callback:id h in
        let slot = Pool.desc_slot d in
        let img = Mem.crash_image mem in
        (* The count/callback tail flush stays eager even with the flit
           mode on — only the status-line flush defers to [seal] — so an
           eviction of the status line can never durably pair Undecided
           with a stale callback id. *)
        if Nvram.Flit.enabled () then
          Alcotest.(check int) "status flush deferred" Layout.status_free
            (Flags.clear_dirty (Mem.read img (Layout.status_addr slot)))
        else
          Alcotest.(check int) "status undecided" Layout.status_undecided
            (Flags.clear_dirty (Mem.read img (Layout.status_addr slot)));
        Alcotest.(check int) "count durable" 0
          (Mem.read img (Layout.count_addr slot));
        Alcotest.(check int) "callback durable" id
          (Mem.read img (Layout.callback_addr slot)));
    Alcotest.test_case "attach validates every header field" `Quick (fun () ->
        let fresh () =
          let env = make_env () in
          Mem.crash_image env.mem
        in
        let expect_corrupt what f =
          let img = fresh () in
          f img;
          match Pool.attach img ~base:0 with
          | _ -> Alcotest.failf "%s: attach accepted a corrupt header" what
          | exception Failure m ->
              Alcotest.(check bool)
                (what ^ ": message names the corrupt header")
                true
                (String.starts_with ~prefix:"Pool.attach: corrupt header (" m)
        in
        expect_corrupt "max_words 0" (fun img -> Mem.write img 2 0);
        expect_corrupt "max_words negative" (fun img -> Mem.write img 2 (-3));
        expect_corrupt "max_words 100" (fun img -> Mem.write img 2 100);
        expect_corrupt "nslots 0" (fun img -> Mem.write img 1 0);
        expect_corrupt "nslots overruns device" (fun img ->
            Mem.write img 1 (1 lsl 40));
        expect_corrupt "nslots not divisible" (fun img ->
            Mem.write img 1 (Mem.read img 1 + 1));
        expect_corrupt "max_threads 0" (fun img -> Mem.write img 3 0);
        (* Bad magic stays its own, earlier failure. *)
        let img = fresh () in
        Mem.write img 0 0;
        (match Pool.attach img ~base:0 with
        | _ -> Alcotest.fail "attach accepted bad magic"
        | exception Failure m ->
            Alcotest.(check string) "bad magic" "Pool.attach: bad magic" m);
        (* And an untouched image still attaches. *)
        ignore (Pool.attach (fresh ()) ~base:0));
  ]

(* Crash points the coarse recovery tests cannot hit: inside the slot
   finalizer and inside recovery itself. *)
let recovery_edge_tests =
  [
    Alcotest.test_case "crash anywhere inside finalize_slot is recoverable"
      `Quick (fun () ->
        (* A succeeded 1-word PMwCAS with FreeOldOnSuccess sits decided
           but not yet recycled; drive [finalize_slot] into a crash at
           every injectable point — including between the durable
           mark-free and the durable status-free — and demand recovery
           frees the old block exactly once. *)
        let build () =
          let env = make_env () in
          let h = Pool.register env.pool in
          let ph = Palloc.register_thread env.palloc in
          init_data env [ 0 ];
          let d0 = Pool.alloc_desc h in
          let dest0 =
            Pool.reserve_entry ~policy:Layout.Free_new_on_failure d0
              ~addr:env.data ~expected:0
          in
          let p_old = Palloc.alloc ph ~nwords:4 ~dest:dest0 in
          Alcotest.(check bool) "seed op" true (Op.execute d0);
          let d1 = Pool.alloc_desc h in
          let dest1 =
            Pool.reserve_entry ~policy:Layout.Free_old_on_success d1
              ~addr:env.data ~expected:p_old
          in
          let p_new = Palloc.alloc ph ~nwords:4 ~dest:dest1 in
          Alcotest.(check bool) "swap op" true (Op.execute d1);
          (env, p_new, Pool.desc_slot d1)
        in
        let env, _, slot = build () in
        let s0 = Mem.steps env.mem in
        Pool.finalize_slot env.pool ~slot ~succeeded:true;
        let total = Mem.steps env.mem - s0 in
        Alcotest.(check bool) "finalize has several crash points" true
          (total >= 3);
        for fuel = 0 to total - 1 do
          let env, p_new, slot = build () in
          Mem.inject_crash_after env.mem fuel;
          (try Pool.finalize_slot env.pool ~slot ~succeeded:true
           with Mem.Crash -> ());
          let img = Mem.crash_image env.mem in
          let env', _ = recover_env env img in
          Alcotest.(check int)
            (Printf.sprintf "fuel %d: new block still linked" fuel)
            p_new
            (Flags.clear_dirty (Mem.read img env.data));
          let audit = Palloc.audit env'.palloc in
          Alcotest.(check int)
            (Printf.sprintf "fuel %d: old block freed exactly once" fuel)
            1 audit.allocated_blocks
        done);
    Alcotest.test_case "recovery is idempotent under crashes" `Quick
      (fun () ->
        (* Crash a reservation-heavy workload, then crash recovery itself
           at a spread of points and re-run it on the resulting image: the
           doubly-recovered state must equal straight-through recovery. *)
        let env = make_env () in
        let h = Pool.register env.pool in
        let ph = Palloc.register_thread env.palloc in
        let nslots = 8 in
        init_data env (List.init nslots (fun _ -> 0));
        Mem.inject_crash_after env.mem 900;
        (try
           let rng = Random.State.make [| 17 |] in
           while true do
             let s = Random.State.int rng nslots in
             let a = env.data + s in
             let cur = Op.read_with h a in
             if cur = 0 then begin
               let d = Pool.alloc_desc h in
               let dest =
                 Pool.reserve_entry ~policy:Layout.Free_new_on_failure d
                   ~addr:a ~expected:0
               in
               ignore (Palloc.alloc ph ~nwords:4 ~dest);
               ignore (Op.execute d)
             end
             else begin
               let d = Pool.alloc_desc h in
               Pool.add_word ~policy:Layout.Free_old_on_success d ~addr:a
                 ~expected:cur ~desired:0;
               ignore (Op.execute d)
             end
           done
         with Mem.Crash -> ());
        let img = Mem.crash_image env.mem in
        (* [img] is fully persistent, so [crash_image img] is an exact,
           independent copy — one per recovery attempt. *)
        let copy () = Mem.crash_image img in
        let data_words m =
          List.init nslots (fun i ->
              Flags.clear_dirty (Mem.read m (env.data + i)))
        in
        let ref_img = copy () in
        let ref_env, ref_stats = recover_env env ref_img in
        Alcotest.(check bool) "workload left work in flight" true
          (ref_stats.Recovery.in_flight > 0);
        let ref_words = data_words ref_img in
        let ref_blocks = (Palloc.audit ref_env.palloc).allocated_blocks in
        let count_img = copy () in
        let s0 = Mem.steps count_img in
        ignore (recover_env env count_img);
        let total = Mem.steps count_img - s0 in
        Alcotest.(check bool) "recovery performs stores" true (total > 0);
        let fuel = ref 0 in
        while !fuel < total do
          let m = copy () in
          Mem.inject_crash_after m !fuel;
          (try ignore (recover_env env m) with Mem.Crash -> ());
          let img2 = Mem.crash_image m in
          let env2, _ = recover_env env img2 in
          Alcotest.(check (list int))
            (Printf.sprintf "recovery fuel %d: data converges" !fuel)
            ref_words (data_words img2);
          Alcotest.(check int)
            (Printf.sprintf "recovery fuel %d: heap converges" !fuel)
            ref_blocks
            (Palloc.audit env2.palloc).allocated_blocks;
          fuel := !fuel + max 1 (total / 25)
        done);
  ]

let () =
  Alcotest.run "pmwcas"
    [
      ("layout", layout_tests);
      ("pcas", pcas_tests);
      ("pool", pool_tests);
      ("op", op_tests);
      ("policies", policy_tests);
      ("concurrency", concurrency_tests);
      ("recovery", recovery_tests);
      ("strategy", strategy_tests);
      ("header", header_tests);
      ("recovery-edge", recovery_edge_tests);
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_all_or_nothing;
          QCheck_alcotest.to_alcotest prop_flags_per_strategy;
        ] );
    ]
