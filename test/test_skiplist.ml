(* Tests for both skip lists: the PMwCAS doubly-linked one (persistent and
   volatile modes) and the CAS-only baseline. *)

module Mem = Nvram.Mem
module Flags = Nvram.Flags
module Pool = Pmwcas.Pool
module Pm = Skiplist.Pm
module Cas = Skiplist.Cas_baseline

let align8 a = (a + 7) / 8 * 8

type env = {
  mem : Mem.t;
  pool : Pool.t;
  palloc : Palloc.t;
  heap_base : int;
  heap_words : int;
  anchor : int;
  max_threads : int;
}

let make_env ?(persistent = true) ?(max_threads = 4) ?(heap_words = 1 lsl 16)
    () =
  let pool_words = Pool.region_words ~max_threads () in
  let heap_base = align8 pool_words in
  let anchor = align8 (heap_base + heap_words) in
  let words = anchor + Pm.anchor_words in
  let mem = Mem.create (Nvram.Config.make ~words ()) in
  let palloc =
    Palloc.create ~persistent mem ~base:heap_base ~words:heap_words
      ~max_threads
  in
  let pool =
    Pool.create ~persistent ~palloc mem ~base:0 ~max_threads
  in
  { mem; pool; palloc; heap_base; heap_words; anchor; max_threads }

let make_pm ?persistent ?max_threads () =
  let env = make_env ?persistent ?max_threads () in
  let t =
    Pm.create ~pool:env.pool ~palloc:env.palloc ~anchor:env.anchor ()
  in
  (env, t)

let recover_env env img =
  let palloc, _ =
    Palloc.recover img ~base:env.heap_base ~words:env.heap_words
      ~max_threads:env.max_threads
  in
  let pool, stats = Pmwcas.Recovery.run ~palloc img ~base:0 in
  let t = Pm.attach ~pool ~palloc ~anchor:env.anchor in
  ({ env with mem = img; pool; palloc }, t, stats)

(* Shared black-box test battery, instantiated for each implementation. *)
module type INDEX = sig
  type handle

  val insert : handle -> key:int -> value:int -> bool
  val delete : handle -> key:int -> bool
  val find : handle -> key:int -> int option
  val update : handle -> key:int -> value:int -> bool

  val fold_range :
    handle -> lo:int -> hi:int -> init:'a
    -> f:('a -> key:int -> value:int -> 'a) -> 'a

  val length : handle -> int
  val check_invariants : handle -> unit
end

let battery (type h) (module I : INDEX with type handle = h) (mk : unit -> h)
    name =
  [
    Alcotest.test_case (name ^ ": insert/find/delete") `Quick (fun () ->
        let h = mk () in
        Alcotest.(check bool) "insert" true (I.insert h ~key:5 ~value:50);
        Alcotest.(check bool) "duplicate" false (I.insert h ~key:5 ~value:51);
        Alcotest.(check (option int)) "find" (Some 50) (I.find h ~key:5);
        Alcotest.(check (option int)) "absent" None (I.find h ~key:6);
        Alcotest.(check bool) "delete" true (I.delete h ~key:5);
        Alcotest.(check bool) "re-delete" false (I.delete h ~key:5);
        Alcotest.(check (option int)) "gone" None (I.find h ~key:5));
    Alcotest.test_case (name ^ ": update") `Quick (fun () ->
        let h = mk () in
        Alcotest.(check bool) "update absent" false (I.update h ~key:3 ~value:1);
        ignore (I.insert h ~key:3 ~value:30);
        Alcotest.(check bool) "update" true (I.update h ~key:3 ~value:31);
        Alcotest.(check (option int)) "new value" (Some 31) (I.find h ~key:3));
    Alcotest.test_case (name ^ ": ordered iteration") `Quick (fun () ->
        let h = mk () in
        let keys = [ 42; 7; 99; 1; 63; 15; 8; 77; 23; 50 ] in
        List.iter (fun k -> ignore (I.insert h ~key:k ~value:(k * 10))) keys;
        let got =
          I.fold_range h ~lo:0 ~hi:1000 ~init:[] ~f:(fun acc ~key ~value ->
              (key, value) :: acc)
          |> List.rev
        in
        let expected =
          List.sort compare keys |> List.map (fun k -> (k, k * 10))
        in
        Alcotest.(check (list (pair int int))) "sorted" expected got;
        Alcotest.(check int) "length" 10 (I.length h);
        I.check_invariants h);
    Alcotest.test_case (name ^ ": sub-range") `Quick (fun () ->
        let h = mk () in
        for k = 1 to 20 do
          ignore (I.insert h ~key:(k * 10) ~value:k)
        done;
        let got =
          I.fold_range h ~lo:35 ~hi:95 ~init:[] ~f:(fun acc ~key ~value:_ ->
              key :: acc)
          |> List.rev
        in
        Alcotest.(check (list int)) "window" [ 40; 50; 60; 70; 80; 90 ] got);
    Alcotest.test_case (name ^ ": random ops match a model") `Quick (fun () ->
        let h = mk () in
        let model = Hashtbl.create 64 in
        let rng = Random.State.make [| 2024 |] in
        for _ = 1 to 2000 do
          let k = Random.State.int rng 200 in
          match Random.State.int rng 3 with
          | 0 ->
              let inserted = I.insert h ~key:k ~value:k in
              let expect = not (Hashtbl.mem model k) in
              if inserted <> expect then Alcotest.fail "insert disagrees";
              if inserted then Hashtbl.replace model k k
          | 1 ->
              let deleted = I.delete h ~key:k in
              if deleted <> Hashtbl.mem model k then
                Alcotest.fail "delete disagrees";
              Hashtbl.remove model k
          | _ ->
              let found = I.find h ~key:k in
              let expect =
                if Hashtbl.mem model k then Some (Hashtbl.find model k)
                else None
              in
              if found <> expect then Alcotest.fail "find disagrees"
        done;
        Alcotest.(check int) "length" (Hashtbl.length model) (I.length h);
        I.check_invariants h);
  ]

(* Fresh index per test case. *)
let pm_mk ?persistent () () =
  let _env, t = make_pm ?persistent () in
  Pm.register ~seed:7 t

let cas_mk () () =
  let env = make_env ~persistent:false () in
  let t = Cas.create env.mem ~palloc:env.palloc in
  Cas.register ~seed:7 t

module Pm_index = struct
  type handle = Pm.handle

  let insert = Pm.insert
  let delete = Pm.delete
  let find = Pm.find
  let update = Pm.update
  let fold_range = Pm.fold_range
  let length = Pm.length
  let check_invariants = Pm.check_invariants
end

module Cas_index = struct
  type handle = Cas.handle

  let insert = Cas.insert
  let delete = Cas.delete
  let find = Cas.find
  let update = Cas.update
  let fold_range = Cas.fold_range
  let length = Cas.length
  let check_invariants = Cas.check_invariants
end

let pm_specific =
  [
    Alcotest.test_case "reverse range scan" `Quick (fun () ->
        let _env, t = make_pm () in
        let h = Pm.register ~seed:3 t in
        for k = 1 to 15 do
          ignore (Pm.insert h ~key:(k * 2) ~value:k)
        done;
        let fwd =
          Pm.fold_range h ~lo:5 ~hi:25 ~init:[] ~f:(fun acc ~key ~value:_ ->
              key :: acc)
          |> List.rev
        in
        let rev =
          Pm.fold_range_rev h ~lo:5 ~hi:25 ~init:[]
            ~f:(fun acc ~key ~value:_ -> key :: acc)
        in
        Alcotest.(check (list int)) "reverse = forward" fwd rev;
        Alcotest.(check (list int)) "expected window" [ 6; 8; 10; 12; 14; 16; 18; 20; 22; 24 ] fwd);
    Alcotest.test_case "volatile mode issues no flushes" `Quick (fun () ->
        let env, t = make_pm ~persistent:false () in
        let h = Pm.register ~seed:5 t in
        let f0 = (Nvram.Stats.snapshot (Mem.stats env.mem)).flushes in
        for k = 1 to 50 do
          ignore (Pm.insert h ~key:k ~value:k)
        done;
        for k = 1 to 25 do
          ignore (Pm.delete h ~key:k)
        done;
        let f1 = (Nvram.Stats.snapshot (Mem.stats env.mem)).flushes in
        Alcotest.(check int) "no flushes" f0 f1;
        Pm.check_invariants h);
    Alcotest.test_case "deleted nodes are reclaimed" `Quick (fun () ->
        let env, t = make_pm () in
        let h = Pm.register ~seed:11 t in
        let baseline = (Palloc.audit env.palloc).allocated_blocks in
        for k = 1 to 100 do
          ignore (Pm.insert h ~key:k ~value:k)
        done;
        for k = 1 to 100 do
          ignore (Pm.delete h ~key:k)
        done;
        (* Push the epoch along so deferred frees run. *)
        Pm.quiesce h;
        Pm.quiesce h;
        let audit = Palloc.audit env.palloc in
        Alcotest.(check int) "back to sentinels only" baseline
          audit.allocated_blocks;
        Pm.check_invariants h);
    Alcotest.test_case "concurrent mixed workload keeps invariants" `Slow
      (fun () ->
        let _env, t = make_pm ~max_threads:4 () in
        let worker seed () =
          let h = Pm.register ~seed t in
          let rng = Random.State.make [| seed * 13 |] in
          for _ = 1 to 1500 do
            let k = Random.State.int rng 300 in
            match Random.State.int rng 4 with
            | 0 -> ignore (Pm.insert h ~key:k ~value:k)
            | 1 -> ignore (Pm.delete h ~key:k)
            | 2 -> ignore (Pm.update h ~key:k ~value:(k + 1))
            | _ -> ignore (Pm.find h ~key:k)
          done;
          Pm.unregister h
        in
        let ds = List.init 4 (fun i -> Domain.spawn (worker (i + 1))) in
        List.iter Domain.join ds;
        let h = Pm.register ~seed:99 t in
        Pm.check_invariants h;
        (* Forward and reverse walks agree after the storm. *)
        let fwd =
          Pm.fold_range h ~lo:0 ~hi:1000 ~init:[] ~f:(fun acc ~key ~value:_ ->
              key :: acc)
        in
        let rev =
          Pm.fold_range_rev h ~lo:0 ~hi:1000 ~init:[]
            ~f:(fun acc ~key ~value:_ -> key :: acc)
          |> List.rev
        in
        Alcotest.(check (list int)) "fwd = rev" fwd rev);
    Alcotest.test_case "concurrent same-key contention is linearizable"
      `Slow (fun () ->
        (* All workers fight over 8 keys; final membership must match the
           net effect counted by successful ops. *)
        let _env, t = make_pm ~max_threads:4 () in
        let inserts = Atomic.make 0 and deletes = Atomic.make 0 in
        let worker seed () =
          let h = Pm.register ~seed t in
          let rng = Random.State.make [| seed * 31 |] in
          for _ = 1 to 1000 do
            let k = Random.State.int rng 8 in
            if Random.State.bool rng then begin
              if Pm.insert h ~key:k ~value:k then
                ignore (Atomic.fetch_and_add inserts 1)
            end
            else if Pm.delete h ~key:k then
              ignore (Atomic.fetch_and_add deletes 1)
          done;
          Pm.unregister h
        in
        let ds = List.init 4 (fun i -> Domain.spawn (worker (i + 1))) in
        List.iter Domain.join ds;
        let h = Pm.register ~seed:123 t in
        Pm.check_invariants h;
        let present = Pm.length h in
        Alcotest.(check int) "net count"
          (Atomic.get inserts - Atomic.get deletes)
          present);
  ]

let pm_crash_tests =
  [
    Alcotest.test_case "attach after clean shutdown" `Quick (fun () ->
        let env, t = make_pm () in
        let h = Pm.register ~seed:21 t in
        for k = 1 to 30 do
          ignore (Pm.insert h ~key:k ~value:(k * 7))
        done;
        let img = Mem.crash_image env.mem in
        let _env', t', _ = recover_env env img in
        let h' = Pm.register ~seed:22 t' in
        Pm.check_invariants h';
        Alcotest.(check int) "all keys" 30 (Pm.length h');
        Alcotest.(check (option int)) "value survives" (Some 70)
          (Pm.find h' ~key:10));
    Alcotest.test_case "crash mid-workload: membership off by at most one"
      `Slow (fun () ->
        List.iter
          (fun fuel ->
            let env, t = make_pm () in
            let h = Pm.register ~seed:fuel t in
            let applied = Hashtbl.create 64 in
            let last = ref (-1) in
            let rng = Random.State.make [| fuel * 3 |] in
            Mem.inject_crash_after env.mem fuel;
            (try
               while true do
                 let k = Random.State.int rng 60 in
                 last := k;
                 if Random.State.bool rng then begin
                   if Pm.insert h ~key:k ~value:k then
                     Hashtbl.replace applied k k
                 end
                 else begin
                   if Pm.delete h ~key:k then Hashtbl.remove applied k
                 end
               done
             with Mem.Crash -> ());
            let img =
              Mem.crash_image ~evict_prob:0.4
                ~seed:(fuel + 1)
                env.mem
            in
            let env', t', _ = recover_env env img in
            let h' = Pm.register ~seed:1 t' in
            Pm.check_invariants h';
            let recovered =
              Pm.fold_range h' ~lo:0 ~hi:1000 ~init:[]
                ~f:(fun acc ~key ~value:_ -> key :: acc)
            in
            let tracked =
              Hashtbl.fold (fun k _ acc -> k :: acc) applied []
            in
            let diff =
              List.filter (fun k -> not (List.mem k tracked)) recovered
              @ List.filter (fun k -> not (List.mem k recovered)) tracked
            in
            (match diff with
            | [] -> ()
            | [ k ] when k = !last -> ()
            | ks ->
                Alcotest.failf "fuel %d: spurious divergence on keys %s" fuel
                  (String.concat "," (List.map string_of_int ks)));
            (* Leak check: every allocated block is a reachable node or a
               sentinel. *)
            let audit = Palloc.audit env'.palloc in
            Alcotest.(check int)
              (Printf.sprintf "fuel %d: no leaked nodes" fuel)
              (List.length recovered + 2)
              audit.allocated_blocks)
          [ 40; 90; 170; 333; 612; 1234; 2500 ]);
  ]

let cas_specific =
  [
    Alcotest.test_case "concurrent mixed workload keeps invariants" `Slow
      (fun () ->
        let env = make_env ~persistent:false () in
        let t = Cas.create env.mem ~palloc:env.palloc in
        let worker seed () =
          let h = Cas.register ~seed t in
          let rng = Random.State.make [| seed * 17 |] in
          for _ = 1 to 1500 do
            let k = Random.State.int rng 300 in
            match Random.State.int rng 3 with
            | 0 -> ignore (Cas.insert h ~key:k ~value:k)
            | 1 -> ignore (Cas.delete h ~key:k)
            | _ -> ignore (Cas.find h ~key:k)
          done;
          Cas.unregister h
        in
        let ds = List.init 4 (fun i -> Domain.spawn (worker (i + 1))) in
        List.iter Domain.join ds;
        let h = Cas.register ~seed:5 t in
        Cas.check_invariants h);
    Alcotest.test_case "same-key contention is linearizable" `Slow (fun () ->
        let env = make_env ~persistent:false () in
        let t = Cas.create env.mem ~palloc:env.palloc in
        let inserts = Atomic.make 0 and deletes = Atomic.make 0 in
        let worker seed () =
          let h = Cas.register ~seed t in
          let rng = Random.State.make [| seed * 71 |] in
          for _ = 1 to 1000 do
            let k = Random.State.int rng 8 in
            if Random.State.bool rng then begin
              if Cas.insert h ~key:k ~value:k then
                ignore (Atomic.fetch_and_add inserts 1)
            end
            else if Cas.delete h ~key:k then
              ignore (Atomic.fetch_and_add deletes 1)
          done;
          Cas.unregister h
        in
        let ds = List.init 4 (fun i -> Domain.spawn (worker (i + 1))) in
        List.iter Domain.join ds;
        let h = Cas.register ~seed:2 t in
        Cas.check_invariants h;
        Alcotest.(check int) "net count"
          (Atomic.get inserts - Atomic.get deletes)
          (Cas.length h));
  ]

(* Property: a random op sequence applied to the PM list and to a model map
   always agree, and crash+recover at a random point preserves membership
   up to the in-flight op. *)
let prop_pm_model =
  QCheck.Test.make ~count:40 ~name:"pm skiplist agrees with model map"
    QCheck.(pair (int_bound 300) (int_bound 100_000))
    (fun (n_ops, seed) ->
      let _env, t = make_pm () in
      let h = Pm.register ~seed t in
      let model = Hashtbl.create 64 in
      let rng = Random.State.make [| seed |] in
      let ok = ref true in
      for _ = 1 to n_ops do
        let k = Random.State.int rng 50 in
        match Random.State.int rng 3 with
        | 0 ->
            let r = Pm.insert h ~key:k ~value:k in
            if r <> not (Hashtbl.mem model k) then ok := false;
            if r then Hashtbl.replace model k k
        | 1 ->
            let r = Pm.delete h ~key:k in
            if r <> Hashtbl.mem model k then ok := false;
            Hashtbl.remove model k
        | _ ->
            let r = Pm.find h ~key:k in
            let e =
              if Hashtbl.mem model k then Some k else None
            in
            if r <> e then ok := false
      done;
      !ok && Pm.length h = Hashtbl.length model)

(* Property: after random ops, a reverse scan of any window equals the
   reversed forward scan — the prev links never drift from the next
   links. *)
let prop_reverse_scan =
  QCheck.Test.make ~count:30 ~name:"reverse scan mirrors forward scan"
    QCheck.(pair (int_bound 200) (int_bound 100_000))
    (fun (n_ops, seed) ->
      let _env, t = make_pm () in
      let h = Pm.register ~seed t in
      let rng = Random.State.make [| seed |] in
      for _ = 1 to n_ops do
        let k = Random.State.int rng 100 in
        if Random.State.bool rng then ignore (Pm.insert h ~key:k ~value:k)
        else ignore (Pm.delete h ~key:k)
      done;
      let lo = Random.State.int rng 50 in
      let hi = lo + Random.State.int rng 60 in
      let fwd =
        Pm.fold_range h ~lo ~hi ~init:[] ~f:(fun acc ~key ~value:_ ->
            key :: acc)
        |> List.rev
      in
      let rev =
        Pm.fold_range_rev h ~lo ~hi ~init:[] ~f:(fun acc ~key ~value:_ ->
            key :: acc)
      in
      fwd = rev)

let () =
  Alcotest.run "skiplist"
    [
      ("pm-persistent", battery (module Pm_index) (pm_mk ()) "pm");
      ( "pm-volatile",
        battery (module Pm_index) (pm_mk ~persistent:false ()) "pm-volatile" );
      ("cas-baseline", battery (module Cas_index) (cas_mk ()) "cas");
      ("pm-specific", pm_specific);
      ("pm-crash", pm_crash_tests);
      ("cas-specific", cas_specific);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_pm_model; prop_reverse_scan ] );
    ]
