(* Tests for the Bw-tree: record formats, tree operations, structure
   modifications, concurrency, and crash recovery. *)

module Mem = Nvram.Mem
module Flags = Nvram.Flags
module Pool = Pmwcas.Pool
module Tree = Bwtree.Tree
module Node = Bwtree.Node

let align8 a = (a + 7) / 8 * 8

type env = {
  mem : Mem.t;
  pool : Pool.t;
  palloc : Palloc.t;
  heap_base : int;
  heap_words : int;
  anchor : int;
  map_base : int;
  map_words : int;
  max_threads : int;
}

let make_env ?(persistent = true) ?(max_threads = 4) ?(heap_words = 1 lsl 18)
    ?(map_words = 1024) () =
  let pool_words = Pool.region_words ~max_threads () in
  let heap_base = align8 pool_words in
  let anchor = align8 (heap_base + heap_words) in
  let map_base = align8 (anchor + Tree.anchor_words) in
  let words = map_base + map_words in
  let mem = Mem.create (Nvram.Config.make ~words ()) in
  let palloc =
    Palloc.create ~persistent mem ~base:heap_base ~words:heap_words
      ~max_threads
  in
  let pool = Pool.create ~persistent ~palloc mem ~base:0 ~max_threads in
  {
    mem;
    pool;
    palloc;
    heap_base;
    heap_words;
    anchor;
    map_base;
    map_words;
    max_threads;
  }

let small_config =
  (* Small pages so splits and merges happen quickly in tests. *)
  Tree.{ consolidate_len = 4; split_max = 8; merge_min = 1 }

let make_tree ?persistent ?(config = small_config) ?max_threads ?map_words ()
    =
  let env = make_env ?persistent ?max_threads ?map_words () in
  let t =
    Tree.create ~config ~pool:env.pool ~palloc:env.palloc ~anchor:env.anchor
      ~map_base:env.map_base ~map_words:env.map_words ()
  in
  (env, t)

let recover_env env img =
  let palloc, _ =
    Palloc.recover img ~base:env.heap_base ~words:env.heap_words
      ~max_threads:env.max_threads
  in
  let pool, stats =
    Pmwcas.Recovery.run ~palloc
      ~callbacks:[ Tree.recovery_callback img ]
      img ~base:0
  in
  let t = Tree.attach ~pool ~palloc ~anchor:env.anchor in
  ({ env with mem = img; pool; palloc }, t, stats)

(* Total blocks reachable from the mapping table (pages + deltas). *)
let reachable_blocks env =
  let n = ref 0 in
  for lpid = 1 to env.map_words - 1 do
    let v = Flags.payload (Mem.read env.mem (env.map_base + lpid)) in
    if v <> 0 then n := !n + List.length (Node.chain_blocks env.mem v)
  done;
  !n

let node_tests =
  [
    Alcotest.test_case "base page round trip" `Quick (fun () ->
        let mem = Mem.create (Nvram.Config.make ~words:256 ()) in
        let b =
          Node.
            {
              kind = `Inner;
              count = 3;
              low = 10;
              high = 90;
              link = 77;
              keys = [| 20; 40; 60 |];
              payloads = [| 2; 4; 6 |];
            }
        in
        Node.write_base mem 8 b;
        let b' = Node.read_base mem 8 in
        Alcotest.(check bool) "equal" true (b = b'));
    Alcotest.test_case "base_find binary search" `Quick (fun () ->
        let mem = Mem.create (Nvram.Config.make ~words:256 ()) in
        Node.write_base mem 0
          Node.
            {
              kind = `Leaf;
              count = 4;
              low = 0;
              high = Node.plus_inf;
              link = 0;
              keys = [| 2; 5; 9; 11 |];
              payloads = [| 20; 50; 90; 110 |];
            };
        Alcotest.(check (option int)) "hit" (Some 50) (Node.base_find mem 0 ~key:5);
        Alcotest.(check (option int)) "miss" None (Node.base_find mem 0 ~key:6);
        Alcotest.(check (option int)) "first" (Some 20)
          (Node.base_find mem 0 ~key:2);
        Alcotest.(check (option int)) "last" (Some 110)
          (Node.base_find mem 0 ~key:11);
        Alcotest.(check (option int)) "below" None (Node.base_find mem 0 ~key:1));
    Alcotest.test_case "base_route picks floor entry" `Quick (fun () ->
        let mem = Mem.create (Nvram.Config.make ~words:256 ()) in
        Node.write_base mem 0
          Node.
            {
              kind = `Inner;
              count = 2;
              low = 0;
              high = Node.plus_inf;
              link = 111;
              keys = [| 10; 20 |];
              payloads = [| 210; 220 |];
            };
        Alcotest.(check int) "below first" 111 (Node.base_route mem 0 ~key:5);
        Alcotest.(check int) "exact" 210 (Node.base_route mem 0 ~key:10);
        Alcotest.(check int) "between" 210 (Node.base_route mem 0 ~key:15);
        Alcotest.(check int) "above" 220 (Node.base_route mem 0 ~key:99));
    Alcotest.test_case "chain_blocks follows merges" `Quick (fun () ->
        let mem = Mem.create (Nvram.Config.make ~words:256 ()) in
        (* base at 0, victim base at 32, merge at 64 (-> 0 and 32),
           put at 96 -> 64 *)
        Node.write_base mem 0
          Node.
            {
              kind = `Leaf;
              count = 0;
              low = 0;
              high = 50;
              link = 0;
              keys = [||];
              payloads = [||];
            };
        Node.write_base mem 32
          Node.
            {
              kind = `Leaf;
              count = 0;
              low = 50;
              high = Node.plus_inf;
              link = 0;
              keys = [||];
              payloads = [||];
            };
        Node.write_merge mem 64 ~next:0 ~victim_top:32 ~sep:50
          ~new_high:Node.plus_inf ~new_right:0;
        Node.write_put mem 96 ~next:64 ~key:7 ~value:70;
        let blocks = Node.chain_blocks mem 96 |> List.sort compare in
        Alcotest.(check (list int)) "all four" [ 0; 32; 64; 96 ] blocks);
    Alcotest.test_case "tag round trip" `Quick (fun () ->
        List.iter
          (fun tg ->
            Alcotest.(check bool)
              "round" true
              (Node.tag_of_int (Node.tag_to_int tg) = tg))
          Node.
            [
              Leaf_base;
              Inner_base;
              Put;
              Del;
              Leaf_split;
              Inner_split;
              Index_entry;
              Index_del;
              Merge;
            ]);
  ]

let basic_tests =
  [
    Alcotest.test_case "empty tree" `Quick (fun () ->
        let _env, t = make_tree () in
        let h = Tree.register t in
        Alcotest.(check (option int)) "get" None (Tree.get h ~key:5);
        Alcotest.(check int) "length" 0 (Tree.length h);
        Alcotest.(check bool) "remove" false (Tree.remove h ~key:5);
        Tree.check_invariants h);
    Alcotest.test_case "put/get/remove" `Quick (fun () ->
        let _env, t = make_tree () in
        let h = Tree.register t in
        Alcotest.(check (option int)) "fresh put" None (Tree.put h ~key:7 ~value:70);
        Alcotest.(check (option int)) "get" (Some 70) (Tree.get h ~key:7);
        Alcotest.(check (option int)) "overwrite" (Some 70)
          (Tree.put h ~key:7 ~value:71);
        Alcotest.(check (option int)) "new value" (Some 71) (Tree.get h ~key:7);
        Alcotest.(check bool) "remove" true (Tree.remove h ~key:7);
        Alcotest.(check (option int)) "gone" None (Tree.get h ~key:7);
        Alcotest.(check bool) "re-remove" false (Tree.remove h ~key:7));
    Alcotest.test_case "insert only if absent" `Quick (fun () ->
        let _env, t = make_tree () in
        let h = Tree.register t in
        Alcotest.(check bool) "first" true (Tree.insert h ~key:3 ~value:30);
        Alcotest.(check bool) "dup" false (Tree.insert h ~key:3 ~value:31);
        Alcotest.(check (option int)) "unchanged" (Some 30) (Tree.get h ~key:3));
    Alcotest.test_case "splits build a real tree" `Quick (fun () ->
        let _env, t = make_tree () in
        let h = Tree.register t in
        for k = 1 to 500 do
          ignore (Tree.put h ~key:(k * 3) ~value:k)
        done;
        let s = Tree.stats h in
        Alcotest.(check bool) "grew" true (s.height >= 2);
        Alcotest.(check bool) "root split happened" true (s.root_splits >= 1);
        Alcotest.(check bool) "splits happened" true (s.splits >= 1);
        Alcotest.(check int) "all present" 500 (Tree.length h);
        for k = 1 to 500 do
          Alcotest.(check (option int))
            (Printf.sprintf "key %d" k)
            (Some k)
            (Tree.get h ~key:(k * 3))
        done;
        Tree.check_invariants h);
    Alcotest.test_case "descending inserts" `Quick (fun () ->
        let _env, t = make_tree () in
        let h = Tree.register t in
        for k = 400 downto 1 do
          ignore (Tree.put h ~key:k ~value:(k * 2))
        done;
        Alcotest.(check int) "count" 400 (Tree.length h);
        Tree.check_invariants h);
    Alcotest.test_case "deletes trigger merges" `Quick (fun () ->
        let _env, t = make_tree () in
        let h = Tree.register t in
        for k = 1 to 300 do
          ignore (Tree.put h ~key:k ~value:k)
        done;
        for k = 1 to 280 do
          ignore (Tree.remove h ~key:k)
        done;
        (* Touch the survivors to trigger consolidation/merge passes. *)
        for k = 281 to 300 do
          ignore (Tree.get h ~key:k)
        done;
        let s = Tree.stats h in
        Alcotest.(check bool) "merges happened" true (s.merges >= 1);
        Alcotest.(check int) "survivors" 20 (Tree.length h);
        Tree.check_invariants h);
    Alcotest.test_case "range scan" `Quick (fun () ->
        let _env, t = make_tree () in
        let h = Tree.register t in
        for k = 1 to 200 do
          ignore (Tree.put h ~key:(k * 2) ~value:k)
        done;
        let got =
          Tree.fold_range h ~lo:51 ~hi:99 ~init:[] ~f:(fun acc ~key ~value:_ ->
              key :: acc)
          |> List.rev
        in
        let expected =
          List.init 200 (fun i -> (i + 1) * 2)
          |> List.filter (fun k -> k >= 51 && k <= 99)
        in
        Alcotest.(check (list int)) "window" expected got);
    Alcotest.test_case "consolidate_all compacts chains" `Quick (fun () ->
        let _env, t = make_tree () in
        let h = Tree.register t in
        for k = 1 to 100 do
          ignore (Tree.put h ~key:k ~value:k)
        done;
        Tree.consolidate_all h;
        let s = Tree.stats h in
        Alcotest.(check int) "one record per page" (s.leaf_pages + s.inner_pages)
          s.chain_records;
        Alcotest.(check int) "intact" 100 (Tree.length h);
        Tree.check_invariants h);
    Alcotest.test_case "random ops match a model" `Quick (fun () ->
        let _env, t = make_tree () in
        let h = Tree.register t in
        let model = Hashtbl.create 64 in
        let rng = Random.State.make [| 4242 |] in
        for _ = 1 to 4000 do
          let k = Random.State.int rng 500 in
          match Random.State.int rng 4 with
          | 0 ->
              let prev = Tree.put h ~key:k ~value:k in
              let expect = Hashtbl.find_opt model k in
              if prev <> expect then Alcotest.fail "put disagrees";
              Hashtbl.replace model k k
          | 1 ->
              let r = Tree.remove h ~key:k in
              if r <> Hashtbl.mem model k then Alcotest.fail "remove disagrees";
              Hashtbl.remove model k
          | 2 ->
              let r = Tree.insert h ~key:k ~value:(k + 1) in
              if r = Hashtbl.mem model k then Alcotest.fail "insert disagrees";
              if r then Hashtbl.replace model k (k + 1)
          | _ ->
              if Tree.get h ~key:k <> Hashtbl.find_opt model k then
                Alcotest.fail "get disagrees"
        done;
        Alcotest.(check int) "length" (Hashtbl.length model) (Tree.length h);
        Tree.check_invariants h);
    Alcotest.test_case "volatile mode issues no flushes" `Quick (fun () ->
        let env, t = make_tree ~persistent:false () in
        let h = Tree.register t in
        let f0 = (Nvram.Stats.snapshot (Mem.stats env.mem)).flushes in
        for k = 1 to 200 do
          ignore (Tree.put h ~key:k ~value:k)
        done;
        let f1 = (Nvram.Stats.snapshot (Mem.stats env.mem)).flushes in
        Alcotest.(check int) "no flushes" f0 f1;
        Tree.check_invariants h);
    Alcotest.test_case "no block leaks during SMO storms" `Quick (fun () ->
        let env, t = make_tree () in
        let h = Tree.register t in
        for k = 1 to 400 do
          ignore (Tree.put h ~key:k ~value:k)
        done;
        for k = 100 to 300 do
          ignore (Tree.remove h ~key:k)
        done;
        (* Drain deferred recycling, then compare reachable vs allocated. *)
        Tree.quiesce h;
        Tree.quiesce h;
        Alcotest.(check int) "reachable = allocated" (reachable_blocks env)
          (Palloc.audit env.palloc).allocated_blocks;
        Tree.check_invariants h);
  ]

let concurrency_tests =
  [
    Alcotest.test_case "concurrent mixed workload keeps invariants" `Slow
      (fun () ->
        let _env, t = make_tree ~max_threads:4 () in
        let worker seed () =
          let h = Tree.register t in
          let rng = Random.State.make [| seed * 13 |] in
          for _ = 1 to 1200 do
            let k = Random.State.int rng 400 in
            match Random.State.int rng 4 with
            | 0 -> ignore (Tree.put h ~key:k ~value:k)
            | 1 -> ignore (Tree.remove h ~key:k)
            | 2 -> ignore (Tree.get h ~key:k)
            | _ ->
                ignore
                  (Tree.fold_range h ~lo:k ~hi:(k + 20) ~init:0
                     ~f:(fun acc ~key:_ ~value:_ -> acc + 1))
          done;
          Tree.unregister h
        in
        let ds = List.init 4 (fun i -> Domain.spawn (worker (i + 1))) in
        List.iter Domain.join ds;
        let h = Tree.register t in
        Tree.check_invariants h);
    Alcotest.test_case "same-key contention is linearizable" `Slow (fun () ->
        let _env, t = make_tree ~max_threads:4 () in
        let inserts = Atomic.make 0 and deletes = Atomic.make 0 in
        let worker seed () =
          let h = Tree.register t in
          let rng = Random.State.make [| seed * 31 |] in
          for _ = 1 to 800 do
            let k = Random.State.int rng 8 in
            if Random.State.bool rng then begin
              if Tree.insert h ~key:k ~value:k then
                ignore (Atomic.fetch_and_add inserts 1)
            end
            else if Tree.remove h ~key:k then
              ignore (Atomic.fetch_and_add deletes 1)
          done;
          Tree.unregister h
        in
        let ds = List.init 4 (fun i -> Domain.spawn (worker (i + 1))) in
        List.iter Domain.join ds;
        let h = Tree.register t in
        Tree.check_invariants h;
        Alcotest.(check int) "net count"
          (Atomic.get inserts - Atomic.get deletes)
          (Tree.length h));
  ]

let crash_tests =
  [
    Alcotest.test_case "attach after clean shutdown" `Quick (fun () ->
        let env, t = make_tree () in
        let h = Tree.register t in
        for k = 1 to 300 do
          ignore (Tree.put h ~key:k ~value:(k * 7))
        done;
        let img = Mem.crash_image env.mem in
        let _env', t', _ = recover_env env img in
        let h' = Tree.register t' in
        Tree.check_invariants h';
        Alcotest.(check int) "all keys" 300 (Tree.length h');
        Alcotest.(check (option int)) "value survives" (Some 700)
          (Tree.get h' ~key:100));
    Alcotest.test_case "crash mid-workload: membership off by at most one"
      `Slow (fun () ->
        List.iter
          (fun fuel ->
            let env, t = make_tree () in
            let h = Tree.register t in
            let applied = Hashtbl.create 64 in
            let last = ref (-1) in
            let rng = Random.State.make [| fuel * 3 |] in
            Mem.inject_crash_after env.mem fuel;
            (try
               while true do
                 let k = Random.State.int rng 120 in
                 last := k;
                 if Random.State.int rng 3 > 0 then begin
                   ignore (Tree.put h ~key:k ~value:k);
                   Hashtbl.replace applied k k
                 end
                 else begin
                   ignore (Tree.remove h ~key:k);
                   Hashtbl.remove applied k
                 end
               done
             with Mem.Crash -> ());
            let img =
              Mem.crash_image ~evict_prob:0.4
                ~seed:(fuel + 1)
                env.mem
            in
            let env', t', _ = recover_env env img in
            let h' = Tree.register t' in
            Tree.check_invariants h';
            let recovered =
              Tree.fold_range h' ~lo:0 ~hi:1000 ~init:[]
                ~f:(fun acc ~key ~value:_ -> key :: acc)
            in
            let tracked =
              Hashtbl.fold (fun k _ acc -> k :: acc) applied []
            in
            let diff =
              List.filter (fun k -> not (List.mem k tracked)) recovered
              @ List.filter (fun k -> not (List.mem k recovered)) tracked
            in
            (match diff with
            | [] -> ()
            | [ k ] when k = !last -> ()
            | ks ->
                Alcotest.failf "fuel %d: spurious divergence on keys %s" fuel
                  (String.concat "," (List.map string_of_int ks)));
            (* Leak audit: exactly the reachable blocks are allocated. *)
            Alcotest.(check int)
              (Printf.sprintf "fuel %d: reachable = allocated" fuel)
              (reachable_blocks env')
              (Palloc.audit env'.palloc).allocated_blocks)
          [ 60; 150; 320; 700; 1500; 3200 ]);
    Alcotest.test_case "crash during SMO storm stays consistent" `Slow
      (fun () ->
        List.iter
          (fun fuel ->
            let env, t = make_tree () in
            let h = Tree.register t in
            Mem.inject_crash_after env.mem fuel;
            (try
               for k = 1 to 100_000 do
                 ignore (Tree.put h ~key:(k * 17 mod 1021) ~value:k)
               done
             with Mem.Crash -> ());
            let img =
              Mem.crash_image ~evict_prob:0.3
                ~seed:(fuel)
                env.mem
            in
            let env', t', _ = recover_env env img in
            let h' = Tree.register t' in
            Tree.check_invariants h';
            Alcotest.(check int)
              (Printf.sprintf "fuel %d: no leaks" fuel)
              (reachable_blocks env')
              (Palloc.audit env'.palloc).allocated_blocks)
          [ 500; 2000; 5000; 9000; 14000 ]);
  ]

(* Crash during a delete-heavy storm exercises merges + index-delete
   deltas under fault injection. *)
let delete_storm_crash_tests =
  [
    Alcotest.test_case "crash during merge storm stays consistent" `Slow
      (fun () ->
        List.iter
          (fun fuel ->
            let env, t = make_tree () in
            let h = Tree.register t in
            (* Build first, uninjected. *)
            for k = 1 to 400 do
              ignore (Tree.put h ~key:k ~value:k)
            done;
            Mem.inject_crash_after env.mem fuel;
            (try
               for round = 0 to 100 do
                 for k = 1 to 400 do
                   if (k + round) mod 3 = 0 then ignore (Tree.remove h ~key:k)
                   else if (k + round) mod 7 = 0 then
                     ignore (Tree.put h ~key:k ~value:(k + round))
                 done
               done
             with Mem.Crash -> ());
            let img =
              Mem.crash_image ~evict_prob:0.4
                ~seed:(fuel)
                env.mem
            in
            let env', t', _ = recover_env env img in
            let h' = Tree.register t' in
            Tree.check_invariants h';
            Alcotest.(check int)
              (Printf.sprintf "fuel %d: no leaks" fuel)
              (reachable_blocks env')
              (Palloc.audit env'.palloc).allocated_blocks)
          [ 800; 2500; 7000; 15000 ]);
    Alcotest.test_case "double crash (crash during recovery)" `Quick
      (fun () ->
        let env, t = make_tree () in
        let h = Tree.register t in
        Mem.inject_crash_after env.mem 4000;
        (try
           for k = 1 to 100_000 do
             ignore (Tree.put h ~key:(k mod 333) ~value:k)
           done
         with Mem.Crash -> ());
        let img = Mem.crash_image env.mem in
        (* First recovery dies part-way. *)
        Mem.inject_crash_after img 25;
        (try ignore (recover_env env img) with Mem.Crash -> ());
        Mem.disarm img;
        let img2 = Mem.crash_image img in
        let env2, t2, _ = recover_env env img2 in
        let h2 = Tree.register t2 in
        Tree.check_invariants h2;
        Alcotest.(check int) "no leaks after double crash"
          (reachable_blocks env2)
          (Palloc.audit env2.palloc).allocated_blocks);
  ]

(* Property: fold_range windows agree with a model map. *)
let prop_scan_window =
  QCheck.Test.make ~count:25 ~name:"range scans agree with model"
    QCheck.(pair (int_bound 300) (int_bound 100_000))
    (fun (n_ops, seed) ->
      let _env, t = make_tree () in
      let h = Tree.register t in
      let model = Hashtbl.create 64 in
      let rng = Random.State.make [| seed |] in
      for _ = 1 to n_ops do
        let k = Random.State.int rng 200 in
        if Random.State.int rng 3 > 0 then begin
          ignore (Tree.put h ~key:k ~value:k);
          Hashtbl.replace model k k
        end
        else begin
          ignore (Tree.remove h ~key:k);
          Hashtbl.remove model k
        end
      done;
      let lo = Random.State.int rng 100 in
      let hi = lo + Random.State.int rng 120 in
      let got =
        Tree.fold_range h ~lo ~hi ~init:[] ~f:(fun acc ~key ~value:_ ->
            key :: acc)
        |> List.rev
      in
      let expect =
        Hashtbl.fold (fun k _ acc -> k :: acc) model []
        |> List.filter (fun k -> k >= lo && k <= hi)
        |> List.sort compare
      in
      got = expect)

let prop_model =
  QCheck.Test.make ~count:25 ~name:"bwtree agrees with model map"
    QCheck.(pair (int_bound 400) (int_bound 100_000))
    (fun (n_ops, seed) ->
      let _env, t = make_tree () in
      let h = Tree.register t in
      let model = Hashtbl.create 64 in
      let rng = Random.State.make [| seed |] in
      let ok = ref true in
      for _ = 1 to n_ops do
        let k = Random.State.int rng 80 in
        match Random.State.int rng 3 with
        | 0 ->
            let prev = Tree.put h ~key:k ~value:k in
            if prev <> Hashtbl.find_opt model k then ok := false;
            Hashtbl.replace model k k
        | 1 ->
            let r = Tree.remove h ~key:k in
            if r <> Hashtbl.mem model k then ok := false;
            Hashtbl.remove model k
        | _ -> if Tree.get h ~key:k <> Hashtbl.find_opt model k then ok := false
      done;
      !ok && Tree.length h = Hashtbl.length model)

let () =
  Alcotest.run "bwtree"
    [
      ("node", node_tests);
      ("basic", basic_tests);
      ("concurrency", concurrency_tests);
      ("crash", crash_tests @ delete_storm_crash_tests);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_model; prop_scan_window ]
      );
    ]
