(* Property tests for Workload.Distribution: every sampler stays in
   bounds, is deterministic under a fixed seed, and the Zipfian skew
   knob is monotone — more theta, more mass on the hottest key. *)

module D = Workload.Distribution

let sample spec ~seed ~count =
  let t = D.create spec in
  let rng = Random.State.make [| seed |] in
  Array.init count (fun _ -> D.next t rng)

let freq_of_hottest samples n =
  let counts = Array.make n 0 in
  Array.iter (fun k -> counts.(k) <- counts.(k) + 1) samples;
  Array.fold_left max 0 counts

let spec_gen =
  let open QCheck.Gen in
  (* n = 1 and extreme hot fractions (rounding to zero hot keys, or to
     the whole keyspace) are valid specs; the generator must cover them. *)
  let n = 1 -- 512 in
  oneof
    [
      map (fun n -> D.Uniform n) n;
      map2
        (fun n (theta, scrambled) -> D.Zipfian { n; theta; scrambled })
        n
        (pair (float_bound_inclusive 0.99) bool);
      map2
        (fun n (hot_fraction, hot_probability) ->
          D.Hotspot { n; hot_fraction; hot_probability })
        n
        (pair (float_range 0.001 1.) (float_bound_inclusive 1.));
    ]

let spec_arbitrary = QCheck.make ~print:D.describe spec_gen

let n_of = function
  | D.Uniform n -> n
  | D.Zipfian { n; _ } -> n
  | D.Hotspot { n; _ } -> n

let prop_bounds =
  QCheck.Test.make ~count:100 ~name:"samples stay in [0, n)" spec_arbitrary
    (fun spec ->
      let n = n_of spec in
      Array.for_all
        (fun k -> 0 <= k && k < n)
        (sample spec ~seed:7 ~count:500))

let prop_deterministic =
  QCheck.Test.make ~count:100 ~name:"fixed seed, fixed stream" spec_arbitrary
    (fun spec ->
      sample spec ~seed:11 ~count:200 = sample spec ~seed:11 ~count:200)

let prop_full_support =
  QCheck.Test.make ~count:50 ~name:"uniform hits every key eventually"
    QCheck.(map (fun n -> D.Uniform n) (int_range 2 16))
    (fun spec ->
      let n = n_of spec in
      let seen = Array.make n false in
      Array.iter
        (fun k -> seen.(k) <- true)
        (sample spec ~seed:3 ~count:(n * 200));
      Array.for_all Fun.id seen)

let zipf_skew_monotone () =
  (* Hotter theta concentrates more mass on the most popular key. The
     unscrambled Gray generator makes the comparison direct. *)
  let count = 20_000 in
  let n = 64 in
  let hot theta =
    freq_of_hottest
      (sample (D.Zipfian { n; theta; scrambled = false }) ~seed:5 ~count)
      n
  in
  let h0 = hot 0. and h50 = hot 0.5 and h99 = hot 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "theta 0.5 (%d) above uniform (%d)" h50 h0)
    true (h50 > h0);
  Alcotest.(check bool)
    (Printf.sprintf "theta 0.99 (%d) above 0.5 (%d)" h99 h50)
    true (h99 > h50);
  (* And theta ~ 0 really is near-uniform: the hottest key stays within
     a small factor of the expected count. *)
  Alcotest.(check bool)
    (Printf.sprintf "theta 0 near uniform (%d)" h0)
    true
    (h0 < 3 * count / n)

let hotspot_probability () =
  let n = 100 in
  let samples =
    sample
      (D.Hotspot { n; hot_fraction = 0.1; hot_probability = 0.9 })
      ~seed:13 ~count:20_000
  in
  let hot = Array.fold_left (fun c k -> if k < 10 then c + 1 else c) 0 samples in
  let frac = float_of_int hot /. float_of_int (Array.length samples) in
  Alcotest.(check bool)
    (Printf.sprintf "hot fraction %.3f within [0.85, 0.95]" frac)
    true
    (frac > 0.85 && frac < 0.95)

(* The rounding edges the sampler must survive: a hot fraction small
   enough to round to zero keys still keeps one hot key; a fraction of
   1.0 makes every key hot (the cold branch would otherwise draw from
   an empty range and raise); n = 1 degenerates to the constant key for
   every family. *)
let hotspot_edges () =
  List.iter
    (fun (hot_fraction, hot_probability) ->
      let spec = D.Hotspot { n = 7; hot_fraction; hot_probability } in
      Array.iter
        (fun k ->
          if k < 0 || k >= 7 then
            Alcotest.failf "%s sampled %d" (D.describe spec) k)
        (sample spec ~seed:5 ~count:2_000))
    [ (0.001, 0.9); (1.0, 0.0); (1.0, 1.0); (0.001, 0.0) ];
  (* hot_fraction 1.0 with hot_probability 0: only the all-hot branch
     exists, and it must still cover the whole keyspace. *)
  let all =
    sample
      (D.Hotspot { n = 3; hot_fraction = 1.0; hot_probability = 0.0 })
      ~seed:3 ~count:3_000
  in
  Array.iter
    (fun k ->
      if k < 0 || k >= 3 then Alcotest.failf "all-hot sampled %d" k)
    all;
  let seen = Array.make 3 false in
  Array.iter (fun k -> seen.(k) <- true) all;
  Alcotest.(check bool) "all-hot covers every key" true
    (Array.for_all Fun.id seen)

let singleton_keyspace () =
  List.iter
    (fun spec ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: n=1 is the constant key" (D.describe spec))
        true
        (Array.for_all (fun k -> k = 0) (sample spec ~seed:9 ~count:500)))
    [
      D.Uniform 1;
      D.Zipfian { n = 1; theta = 0.99; scrambled = true };
      D.Zipfian { n = 1; theta = 0.0; scrambled = false };
      D.Hotspot { n = 1; hot_fraction = 0.5; hot_probability = 0.5 };
    ]

let () =
  Alcotest.run "workload"
    [
      ( "distribution",
        List.map QCheck_alcotest.to_alcotest
          [ prop_bounds; prop_deterministic; prop_full_support ]
        @ [
            Alcotest.test_case "zipfian skew is monotone in theta" `Quick
              zipf_skew_monotone;
            Alcotest.test_case "hotspot respects hot_probability" `Quick
              hotspot_probability;
            Alcotest.test_case "hotspot rounding edges stay in range" `Quick
              hotspot_edges;
            Alcotest.test_case "n = 1 degenerates cleanly" `Quick
              singleton_keyspace;
          ] );
    ]
