(* Tests for the epoch-based reclamation manager. *)

let test_register_unregister () =
  let t = Epoch.create ~slots:4 () in
  let g1 = Epoch.register t in
  let g2 = Epoch.register t in
  Alcotest.(check int) "two registered" 2 (Epoch.registered t);
  Epoch.unregister g1;
  Epoch.unregister g2;
  Alcotest.(check int) "none registered" 0 (Epoch.registered t)

let test_slot_exhaustion () =
  let t = Epoch.create ~slots:2 () in
  let g1 = Epoch.register t in
  let g2 = Epoch.register t in
  (try
     ignore (Epoch.register t);
     Alcotest.fail "expected Failure"
   with Failure _ -> ());
  Epoch.unregister g1;
  (* Freed slot becomes claimable again. *)
  let g3 = Epoch.register t in
  Epoch.unregister g2;
  Epoch.unregister g3

let test_pin_blocks_reclaim () =
  let t = Epoch.create () in
  let g = Epoch.register t in
  let reaper = Epoch.register t in
  let freed = ref false in
  Epoch.enter g;
  Epoch.defer g (fun () -> freed := true);
  ignore (Epoch.advance t);
  (* Guard g is still pinned at the retire epoch: nothing may run. *)
  ignore (Epoch.reclaim g);
  Alcotest.(check bool) "still live while pinned" false !freed;
  Epoch.exit g;
  ignore (Epoch.advance t);
  ignore (Epoch.reclaim g);
  Alcotest.(check bool) "freed after exit" true !freed;
  Epoch.unregister g;
  Epoch.unregister reaper

let test_unpinned_defer_reclaims_after_advance () =
  let t = Epoch.create () in
  let g = Epoch.register t in
  let n = ref 0 in
  for _ = 1 to 10 do
    Epoch.defer g (fun () -> incr n)
  done;
  ignore (Epoch.advance t);
  let ran = Epoch.reclaim g in
  Alcotest.(check int) "all ran" 10 ran;
  Alcotest.(check int) "effects" 10 !n;
  Epoch.unregister g

let test_reentrant_pin () =
  let t = Epoch.create () in
  let g = Epoch.register t in
  Epoch.enter g;
  Epoch.enter g;
  Alcotest.(check bool) "pinned" true (Epoch.pinned g);
  Epoch.exit g;
  Alcotest.(check bool) "still pinned after inner exit" true (Epoch.pinned g);
  Epoch.exit g;
  Alcotest.(check bool) "unpinned" false (Epoch.pinned g);
  (try
     Epoch.exit g;
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  Epoch.unregister g

let test_with_guard_exception_safety () =
  let t = Epoch.create () in
  let g = Epoch.register t in
  (try Epoch.with_guard g (fun () -> raise Exit) with Exit -> ());
  Alcotest.(check bool) "unpinned after raise" false (Epoch.pinned g);
  Epoch.unregister g

let test_safe_before () =
  let t = Epoch.create () in
  let g1 = Epoch.register t in
  let g2 = Epoch.register t in
  let e0 = Epoch.current t in
  Alcotest.(check int) "nothing pinned" (e0 + 1) (Epoch.safe_before t);
  Epoch.enter g1;
  ignore (Epoch.advance t);
  ignore (Epoch.advance t);
  Epoch.enter g2;
  Alcotest.(check int) "oldest pin rules" e0 (Epoch.safe_before t);
  Epoch.exit g1;
  Alcotest.(check int) "next pin rules" (e0 + 2) (Epoch.safe_before t);
  Epoch.exit g2;
  Epoch.unregister g1;
  Epoch.unregister g2

let test_unregister_orphans_garbage () =
  let t = Epoch.create () in
  let g = Epoch.register t in
  let g2 = Epoch.register t in
  let n = ref 0 in
  Epoch.defer g (fun () -> incr n);
  Epoch.unregister g;
  ignore (Epoch.advance t);
  ignore (Epoch.reclaim g2);
  Alcotest.(check int) "orphan ran via other guard" 1 !n;
  Epoch.unregister g2

let test_drain_all () =
  let t = Epoch.create () in
  let g = Epoch.register t in
  let n = ref 0 in
  Epoch.defer g (fun () -> incr n);
  Epoch.defer g (fun () -> incr n);
  Epoch.unregister g;
  Alcotest.(check int) "drained" 2 (Epoch.drain_all t);
  Alcotest.(check int) "effects" 2 !n

let test_drain_all_refuses_pinned () =
  let t = Epoch.create () in
  let g = Epoch.register t in
  Epoch.enter g;
  (try
     ignore (Epoch.drain_all t);
     Alcotest.fail "expected Failure"
   with Failure _ -> ());
  Epoch.exit g;
  Epoch.unregister g

let test_guard_unusable_after_unregister () =
  let t = Epoch.create () in
  let g = Epoch.register t in
  Epoch.unregister g;
  try
    Epoch.enter g;
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* Concurrent stress: each worker retires tagged objects and checks, via a
   canary read, that no object it can still reach was reclaimed while it
   was pinned. We model objects as refs set to -1 on "free"; a reader that
   obtained the ref inside an epoch must never observe -1. *)
let test_concurrent_no_premature_free () =
  let t = Epoch.create () in
  let shared = Atomic.make (ref 0) in
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let writer () =
    let g = Epoch.register t in
    let i = ref 0 in
    while not (Atomic.get stop) do
      incr i;
      let fresh = ref !i in
      Epoch.with_guard g (fun () ->
          let old = Atomic.exchange shared fresh in
          Epoch.defer g (fun () -> old := -1));
      ignore (Epoch.reclaim g)
    done;
    Epoch.unregister g
  in
  let reader () =
    let g = Epoch.register t in
    while not (Atomic.get stop) do
      Epoch.with_guard g (fun () ->
          let r = Atomic.get shared in
          (* Spin a little to widen the race window. *)
          for _ = 1 to 50 do
            Domain.cpu_relax ()
          done;
          if !r = -1 then ignore (Atomic.fetch_and_add violations 1))
    done;
    Epoch.unregister g
  in
  let ds =
    [ Domain.spawn writer; Domain.spawn reader; Domain.spawn reader ]
  in
  Unix.sleepf 0.3;
  Atomic.set stop true;
  List.iter Domain.join ds;
  Alcotest.(check int) "no use-after-free" 0 (Atomic.get violations)

let prop_defer_reclaim_conservation =
  QCheck.Test.make ~count:100
    ~name:"every deferred callback runs exactly once across reclaims"
    QCheck.(int_bound 50)
    (fun n ->
      let t = Epoch.create () in
      let g = Epoch.register t in
      let runs = Array.make (max n 1) 0 in
      for i = 0 to n - 1 do
        Epoch.defer g (fun () -> runs.(i) <- runs.(i) + 1);
        if i mod 7 = 0 then begin
          ignore (Epoch.advance t);
          ignore (Epoch.reclaim g)
        end
      done;
      ignore (Epoch.advance t);
      ignore (Epoch.reclaim g);
      Epoch.unregister g;
      ignore (Epoch.drain_all t);
      Array.for_all (fun c -> c = 1) (Array.sub runs 0 n))

let test_limbo_depth_basic () =
  let t = Epoch.create () in
  let g = Epoch.register t in
  Alcotest.(check int) "empty" 0 (Epoch.limbo g);
  for _ = 1 to 4 do
    Epoch.defer g (fun () -> ())
  done;
  Alcotest.(check int) "parked" 4 (Epoch.limbo g);
  ignore (Epoch.advance t);
  ignore (Epoch.reclaim g);
  Alcotest.(check int) "drained" 0 (Epoch.limbo g);
  Epoch.unregister g

let prop_limbo_depth_tracks_backlog =
  QCheck.Test.make ~count:100
    ~name:"limbo depth tracks the unreclaimed backlog exactly"
    QCheck.(pair (int_bound 40) (int_bound 6))
    (fun (n, batch) ->
      let t = Epoch.create () in
      let g = Epoch.register t in
      (* A pinned blocker makes every reclaim attempt a no-op, so the
         limbo depth must climb monotonically with each defer... *)
      let blocker = Epoch.register t in
      Epoch.enter blocker;
      let ok = ref true in
      for i = 1 to n do
        Epoch.defer g (fun () -> ());
        if Epoch.limbo g <> i then ok := false;
        if batch > 0 && i mod (batch + 1) = 0 then begin
          ignore (Epoch.advance t);
          ignore (Epoch.reclaim g);
          if Epoch.limbo g <> i then ok := false
        end
      done;
      (* ...and drain to exactly zero once the pin retires. *)
      Epoch.exit blocker;
      ignore (Epoch.advance t);
      ignore (Epoch.reclaim g);
      let drained = Epoch.limbo g = 0 in
      Epoch.unregister g;
      Epoch.unregister blocker;
      !ok && drained)

let test_counters_track_activity () =
  let before = Epoch.counters () in
  let t = Epoch.create () in
  let g = Epoch.register t in
  Epoch.enter g;
  for _ = 1 to 5 do
    Epoch.defer g (fun () -> ())
  done;
  Epoch.exit g;
  ignore (Epoch.advance t);
  let ran = Epoch.reclaim g in
  Alcotest.(check int) "reclaimed all" 5 ran;
  Epoch.unregister g;
  let after = Epoch.counters () in
  (* Deltas, not absolutes: the counters are process-global and other
     tests in this binary also touch them. *)
  Alcotest.(check int) "enters" 1 (after.Epoch.enters - before.Epoch.enters);
  Alcotest.(check int) "exits" 1 (after.Epoch.exits - before.Epoch.exits);
  Alcotest.(check bool) "advances" true
    (after.Epoch.advances - before.Epoch.advances >= 1);
  Alcotest.(check int) "deferred" 5
    (after.Epoch.deferred - before.Epoch.deferred);
  Alcotest.(check int) "freed" 5 (after.Epoch.freed - before.Epoch.freed);
  Alcotest.(check bool) "max_limbo saw the backlog" true
    (after.Epoch.max_limbo >= 5);
  (* Snapshot serialization carries every field. *)
  let j = Epoch.counters_to_json after in
  List.iter
    (fun k ->
      match Telemetry.Value.member k j with
      | Some (Telemetry.Value.Int _) -> ()
      | _ -> Alcotest.failf "counters_to_json missing int field %s" k)
    [ "enters"; "exits"; "advances"; "deferred"; "freed"; "max_limbo" ]

let () =
  Alcotest.run "epoch"
    [
      ( "basic",
        [
          Alcotest.test_case "register/unregister" `Quick
            test_register_unregister;
          Alcotest.test_case "slot exhaustion and reuse" `Quick
            test_slot_exhaustion;
          Alcotest.test_case "pin blocks reclamation" `Quick
            test_pin_blocks_reclaim;
          Alcotest.test_case "unpinned defer reclaims" `Quick
            test_unpinned_defer_reclaims_after_advance;
          Alcotest.test_case "re-entrant pin" `Quick test_reentrant_pin;
          Alcotest.test_case "with_guard exception safety" `Quick
            test_with_guard_exception_safety;
          Alcotest.test_case "safe_before tracks oldest pin" `Quick
            test_safe_before;
          Alcotest.test_case "unregister orphans garbage" `Quick
            test_unregister_orphans_garbage;
          Alcotest.test_case "drain_all" `Quick test_drain_all;
          Alcotest.test_case "drain_all refuses pinned" `Quick
            test_drain_all_refuses_pinned;
          Alcotest.test_case "guard unusable after unregister" `Quick
            test_guard_unusable_after_unregister;
          Alcotest.test_case "reclamation counters track activity" `Quick
            test_counters_track_activity;
          Alcotest.test_case "limbo depth counts the parked backlog" `Quick
            test_limbo_depth_basic;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "no premature free under load" `Slow
            test_concurrent_no_premature_free;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_defer_reclaim_conservation;
          QCheck_alcotest.to_alcotest prop_limbo_depth_tracks_backlog;
        ] );
    ]
