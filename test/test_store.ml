(* Tests for the sharded group-commit store: basic KV semantics under
   every (index, commit) pairing, batch composition under concurrent
   clients, crash/recover/resume, recovery idempotence, and the
   cross-shard isolation the per-shard region layout promises. *)

module Mem = Nvram.Mem

let small_config ?(shards = 2) ?(index = Store.Skiplist)
    ?(commit = Store.Group) ?(max_clients = 4) () =
  {
    Store.shards;
    index;
    commit;
    max_clients;
    heap_words = 1 lsl 13;
    map_words = 1 lsl 9;
    batch_limit = 8;
  }

let mk config =
  let mem =
    Mem.create (Nvram.Config.make ~words:(Store.words_needed config) ())
  in
  (mem, Store.create ~config mem ~base:0)

let basic index commit () =
  let _, st = mk (small_config ~index ~commit ()) in
  let s = Store.open_session st in
  for k = 0 to 99 do
    Alcotest.(check bool) "insert" true (Store.insert s ~key:k ~value:(k * 3))
  done;
  Alcotest.(check bool) "dup insert" false (Store.insert s ~key:5 ~value:9);
  Alcotest.(check (option int)) "find" (Some 15) (Store.find s ~key:5);
  Alcotest.(check bool) "update" true (Store.update s ~key:5 ~value:77);
  Alcotest.(check (option int)) "updated" (Some 77) (Store.find s ~key:5);
  Alcotest.(check bool) "update missing" false
    (Store.update s ~key:1000 ~value:1);
  Alcotest.(check bool) "delete" true (Store.delete s ~key:7);
  Alcotest.(check (option int)) "deleted" None (Store.find s ~key:7);
  Alcotest.(check bool) "delete missing" false (Store.delete s ~key:7);
  Alcotest.(check int) "length" 99 (Store.length s);
  Store.check_invariants s;
  Store.close_session s

(* Concurrent clients through the combining queue: disjoint key ranges,
   every client re-reads its own writes, and the merged totals line up.
   On a multi-client run the committer applies other clients' requests,
   so this exercises batch application, not just self-service. *)
let concurrent_group () =
  let config = small_config ~shards:4 ~commit:Store.Group () in
  let _, st = mk config in
  let per = 120 in
  let doms =
    List.init 3 (fun t ->
        Domain.spawn (fun () ->
            let s = Store.open_session st in
            for i = 0 to per - 1 do
              let k = (t * per) + i in
              if not (Store.insert s ~key:k ~value:(k + 1)) then
                failwith "concurrent insert failed";
              (match Store.find s ~key:k with
              | Some v when v = k + 1 || v = 2 * k -> ()
              | v ->
                  failwith
                    (Printf.sprintf "key %d read back %s" k
                       (match v with
                       | None -> "nothing"
                       | Some v -> string_of_int v)));
              if i mod 3 = 0 && not (Store.update s ~key:k ~value:(2 * k))
              then failwith "concurrent update failed"
            done;
            Store.close_session s))
  in
  List.iter Domain.join doms;
  let s = Store.open_session st in
  Alcotest.(check int) "total keys" (3 * per) (Store.length s);
  for t = 0 to 2 do
    let k = t * per in
    Alcotest.(check (option int))
      (Printf.sprintf "client %d's update survived" t)
      (Some (2 * k))
      (Store.find s ~key:k)
  done;
  Store.check_invariants s;
  Store.close_session s

let observed st =
  let s = Store.open_session st in
  let keys = ref [] in
  for k = 400 downto 0 do
    match Store.find s ~key:k with
    | Some v -> keys := (k, v) :: !keys
    | None -> ()
  done;
  Store.check_invariants s;
  Store.close_session s;
  !keys

(* Crash mid-traffic under the fuel injector, recover the evicted image
   across 2 domains, resume traffic on the recovered store — and
   recovery must be idempotent: recovering the already-recovered device
   again changes nothing and rolls back nothing. *)
let crash_recover_resume () =
  let config = small_config ~shards:2 ~commit:Store.Group () in
  let mem, st = mk config in
  let s = Store.open_session st in
  for k = 0 to 199 do
    ignore (Store.insert s ~key:k ~value:k)
  done;
  Store.close_session s;
  Mem.persist_all mem;
  Mem.inject_crash_after mem 6_000;
  (try
     let s = Store.open_session st in
     for k = 0 to 399 do
       ignore (Store.update s ~key:(k mod 200) ~value:(1000 + k));
       if k mod 5 = 0 then ignore (Store.insert s ~key:(200 + k) ~value:k)
     done;
     Alcotest.fail "fuel injector never fired"
   with Mem.Crash -> ());
  let img = Mem.crash_image ~evict_prob:0.4 ~seed:11 mem in
  let st1, stats1 = Store.recover ~domains:2 img ~base:0 in
  Alcotest.(check int) "one report per shard" 2 (List.length stats1);
  let keys1 = observed st1 in
  (* Everything persisted before the crash window must have survived. *)
  List.iter
    (fun k ->
      if not (List.mem_assoc k keys1) then
        Alcotest.failf "preloaded key %d lost" k)
    (List.init 200 Fun.id);
  (* Idempotence: a second recovery of the same device finds a clean
     store — same contents, nothing in flight, nothing rolled back. *)
  let st2, stats2 = Store.recover ~domains:1 img ~base:0 in
  Alcotest.(check bool) "same contents after re-recovery" true
    (observed st2 = keys1);
  List.iter
    (fun (r : Store.shard_recovery) ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d: re-recovery rolls back nothing" r.shard)
        0
        (r.alloc_rolled_back + r.pmwcas.in_flight + r.pmwcas.rolled_back))
    stats2;
  (* Resume traffic on the recovered store. *)
  let s = Store.open_session st1 in
  for k = 0 to 99 do
    ignore (Store.update s ~key:k ~value:(5000 + k))
  done;
  Alcotest.(check (option int)) "resumed update" (Some 5000)
    (Store.find s ~key:0);
  Store.check_invariants s;
  Store.close_session s

(* Shards share no persistent state: traffic aimed exclusively at shard
   0 must leave every word of shard 1's region untouched, and shard 1's
   recovery must find nothing to do. *)
let cross_shard_isolation () =
  let config = small_config ~shards:2 ~commit:Store.Group () in
  let mem, st = mk config in
  let s = Store.open_session st in
  let lo, hi = Store.shard_bounds st 1 in
  let baseline = Array.init (hi - lo) (fun i -> Mem.read mem (lo + i)) in
  let hits = ref 0 and k = ref 0 in
  while !hits < 200 do
    if Store.shard_of st !k = 0 then begin
      ignore (Store.insert s ~key:!k ~value:!k);
      if !hits mod 2 = 0 then
        ignore (Store.update s ~key:!k ~value:(!k + 1_000_000));
      incr hits
    end;
    incr k
  done;
  Store.quiesce s;
  for i = 0 to hi - lo - 1 do
    if Mem.read mem (lo + i) <> baseline.(i) then
      Alcotest.failf "shard 1 word %d changed under shard-0 traffic" (lo + i)
  done;
  Store.close_session s;
  Mem.persist_all mem;
  let _, stats = Store.recover (Mem.crash_image mem) ~base:0 in
  let r1 = List.find (fun (r : Store.shard_recovery) -> r.shard = 1) stats in
  Alcotest.(check int) "shard 1 recovery is a no-op" 0
    (r1.alloc_rolled_back + r1.pmwcas.in_flight + r1.pmwcas.rolled_forward
   + r1.pmwcas.rolled_back)

let () =
  Alcotest.run "store"
    [
      ( "basic",
        [
          Alcotest.test_case "skiplist/group" `Quick
            (basic Store.Skiplist Store.Group);
          Alcotest.test_case "skiplist/per-op" `Quick
            (basic Store.Skiplist Store.Per_op);
          Alcotest.test_case "bwtree/group" `Quick
            (basic Store.Bwtree Store.Group);
          Alcotest.test_case "bwtree/per-op" `Quick
            (basic Store.Bwtree Store.Per_op);
        ] );
      ( "group-commit",
        [ Alcotest.test_case "concurrent clients" `Quick concurrent_group ] );
      ( "recovery",
        [
          Alcotest.test_case "crash, recover, resume; idempotent" `Quick
            crash_recover_resume;
          Alcotest.test_case "cross-shard isolation" `Quick
            cross_shard_isolation;
        ] );
    ]
