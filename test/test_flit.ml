(* Unit coverage for destination-only persistence: the FliT-style
   per-granule flush counters ([Mem.flit_write] / [Mem.flit_flush] /
   [Mem.persisted]), the counter-eliding destination passes
   ([Pcas.persist_range] / [Pcas.persist_target]), and the trace
   checker's [flit] mode. *)

module Mem = Nvram.Mem
module Flags = Nvram.Flags
module Flit = Nvram.Flit
module Checker = Nvram.Checker
module Trace = Nvram.Trace
module Pcas = Pmwcas.Pcas

let sim ?(line_words = 8) ?flit_gran words =
  Mem.create (Nvram.Config.make ~line_words ?flit_gran ~words ())

let with_flit on f =
  let saved = Flit.enabled () in
  Flit.set_enabled on;
  Fun.protect ~finally:(fun () -> Flit.set_enabled saved) f

let counter_tests =
  [
    Alcotest.test_case "word granularity isolates neighbours" `Quick
      (fun () ->
        let m = sim 64 in
        (* Default granularity: one counter per word. *)
        Mem.flit_write m 8 42;
        Alcotest.(check bool) "written word unpersisted" false
          (Mem.persisted m 8);
        Alcotest.(check bool) "same-line neighbour untouched" true
          (Mem.persisted m 9);
        Alcotest.(check int) "store landed" 42 (Mem.read m 8);
        Mem.flit_flush m 8;
        Alcotest.(check bool) "flush settles the counter" true
          (Mem.persisted m 8);
        Mem.fence m;
        Alcotest.(check int) "durable after drain" 42
          (Mem.read_persistent m 8));
    Alcotest.test_case "line granularity covers the whole line" `Quick
      (fun () ->
        let m = sim ~flit_gran:Nvram.Config.Line 64 in
        Mem.flit_write m 8 1;
        Alcotest.(check bool) "written word unpersisted" false
          (Mem.persisted m 8);
        Alcotest.(check bool) "same-line word shares the counter" false
          (Mem.persisted m 15);
        Alcotest.(check bool) "next line independent" true
          (Mem.persisted m 16);
        Mem.flit_flush m 12;
        (* Any word of the granule settles it. *)
        Alcotest.(check bool) "line settled" true (Mem.persisted m 8));
    Alcotest.test_case "counter nests and floors at zero" `Quick (fun () ->
        let m = sim 64 in
        Mem.flit_write m 8 1;
        Mem.flit_write m 8 2;
        Mem.flit_flush m 8;
        Alcotest.(check bool) "one of two stores still pending" false
          (Mem.persisted m 8);
        Mem.flit_flush m 8;
        Alcotest.(check bool) "balanced" true (Mem.persisted m 8);
        (* Extra flushes must not drive the counter negative: the next
           tracked store still reports unpersisted. *)
        Mem.flit_flush m 8;
        Mem.flit_flush m 8;
        Mem.flit_write m 8 3;
        Alcotest.(check bool) "floor preserved visibility" false
          (Mem.persisted m 8);
        Mem.flit_flush m 8;
        Alcotest.(check bool) "and it settles again" true
          (Mem.persisted m 8));
    Alcotest.test_case "persisted is monotone between tracked stores" `Quick
      (fun () ->
        let m = sim 64 in
        Mem.flit_write m 8 5;
        Mem.flit_flush m 8;
        Alcotest.(check bool) "settled" true (Mem.persisted m 8);
        (* Untracked traffic never resurrects the obligation. *)
        ignore (Mem.read m 8);
        Mem.clwb m 8;
        Mem.fence m;
        Mem.write m 8 6;
        Alcotest.(check bool) "plain write invisible to counters" true
          (Mem.persisted m 8);
        Mem.flit_write m 8 7;
        Alcotest.(check bool) "only a tracked store flips it" false
          (Mem.persisted m 8));
    Alcotest.test_case "crash image resets the counters" `Quick (fun () ->
        let m = sim 64 in
        Mem.flit_write m 8 9;
        Alcotest.(check bool) "pending before the crash" false
          (Mem.persisted m 8);
        let img = Mem.crash_image m in
        (* Counters are volatile cache metadata: the image's content IS
           the durable state, so everything starts persisted. *)
        Alcotest.(check bool) "image starts quiescent" true
          (Mem.persisted img 8);
        Alcotest.(check int) "unflushed store lost" 0 (Mem.read img 8));
    Alcotest.test_case "persist_all settles every counter" `Quick (fun () ->
        let m = sim 64 in
        Mem.flit_write m 8 1;
        Mem.flit_write m 33 2;
        Mem.persist_all m;
        Alcotest.(check bool) "w8" true (Mem.persisted m 8);
        Alcotest.(check bool) "w33" true (Mem.persisted m 33);
        Alcotest.(check int) "durable" 2 (Mem.read_persistent m 33));
    Alcotest.test_case "dram reports everything persisted" `Quick (fun () ->
        let m = Mem.create_dram (Nvram.Config.make ~words:64 ()) in
        Mem.flit_write m 8 4;
        Alcotest.(check int) "store landed" 4 (Mem.read m 8);
        Alcotest.(check bool) "volatile backend: always persisted" true
          (Mem.persisted m 8);
        Mem.flit_flush m 8;
        Alcotest.(check bool) "flush is a no-op" true (Mem.persisted m 8));
    Alcotest.test_case "racing writer and flusher never lose a store" `Quick
      (fun () ->
        let m = sim 64 in
        let iters = 20_000 in
        let worker () =
          for i = 1 to iters do
            Mem.flit_write m 8 i;
            Mem.flit_flush m 8
          done
        in
        let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
        Domain.join d1;
        Domain.join d2;
        (* Every domain flushes only after its own tracked store, so no
           decrement can observe a zero counter mid-race and the pairs
           balance exactly. *)
        Alcotest.(check bool) "quiescent after join" true
          (Mem.persisted m 8);
        Mem.flit_write m 8 0;
        Alcotest.(check bool) "no negative residue" false
          (Mem.persisted m 8);
        Mem.flit_flush m 8;
        Alcotest.(check bool) "settles" true (Mem.persisted m 8));
  ]

(* --- destination passes ------------------------------------------------ *)

let delta f =
  let c0 = Flit.counters () in
  f ();
  let c1 = Flit.counters () in
  ( c1.Flit.elided - c0.Flit.elided,
    c1.Flit.destination_flushes - c0.Flit.destination_flushes )

let pass_tests =
  [
    Alcotest.test_case "persist_range flushes pending lines once" `Quick
      (fun () ->
        with_flit true (fun () ->
            let m = sim 64 in
            for a = 16 to 20 do
              Mem.flit_write m a (a * 10)
            done;
            let el, fl = delta (fun () -> Pcas.persist_range m ~lo:16 ~hi:20) in
            Alcotest.(check int) "one line flushed" 1 fl;
            Alcotest.(check int) "nothing elided yet" 0 el;
            Mem.fence m;
            Alcotest.(check int) "durable" 180 (Mem.read_persistent m 18);
            (* Second pass over the settled range elides outright. *)
            let el, fl = delta (fun () -> Pcas.persist_range m ~lo:16 ~hi:20) in
            Alcotest.(check int) "elided" 1 el;
            Alcotest.(check int) "no second flush" 0 fl));
    Alcotest.test_case "persist_range spans lines independently" `Quick
      (fun () ->
        with_flit true (fun () ->
            let m = sim 64 in
            (* Dirty one word in the second of three covered lines. *)
            Mem.flit_write m 12 7;
            let el, fl = delta (fun () -> Pcas.persist_range m ~lo:2 ~hi:22) in
            Alcotest.(check int) "only the pending line flushed" 1 fl;
            Alcotest.(check int) "clean lines elided" 2 el));
    Alcotest.test_case "persist_target covers dirty, tracked, and clean"
      `Quick (fun () ->
        with_flit true (fun () ->
            let m = sim 64 in
            (* Clean + quiescent: elision. *)
            let el, fl = delta (fun () -> Pcas.persist_target m 8) in
            Alcotest.(check (pair int int)) "clean word elided" (1, 0)
              (el, fl);
            (* Dirty payload: flushed like flush-on-read. *)
            Mem.write m 8 (Flags.set_dirty 5);
            let el, fl = delta (fun () -> Pcas.persist_target m 8) in
            Alcotest.(check (pair int int)) "dirty word flushed" (0, 1)
              (el, fl);
            Alcotest.(check int) "dirty bit cleared" 5 (Mem.read m 8);
            (* Tracked store still in flight: write-back + drain. *)
            Mem.flit_write m 9 6;
            let el, fl = delta (fun () -> Pcas.persist_target m 9) in
            Alcotest.(check (pair int int)) "tracked store flushed" (0, 1)
              (el, fl);
            Alcotest.(check bool) "counter settled" true (Mem.persisted m 9)));
    Alcotest.test_case "sabotage counts but skips the write-back" `Quick
      (fun () ->
        with_flit true (fun () ->
            let m = sim 64 in
            Mem.flit_write m 8 3;
            Flit.set_sabotage_skip_destination true;
            Fun.protect
              ~finally:(fun () -> Flit.set_sabotage_skip_destination false)
              (fun () ->
                let _, fl =
                  delta (fun () -> Pcas.persist_range m ~lo:8 ~hi:8)
                in
                Alcotest.(check int) "flush counted" 1 fl;
                Mem.fence m;
                Alcotest.(check int) "but nothing persisted" 0
                  (Mem.read_persistent m 8))));
  ]

(* --- checker flit mode ------------------------------------------------- *)

let hand_protocol =
  {
    Checker.words = 64;
    line_words = 8;
    max_words = 4;
    async_flush = false;
    flit = false;
    strategy = `Paper;
    is_status_addr = (fun _ -> false);
    is_desc_addr = (fun a -> a < 8);
    slot_of_status = Fun.id;
    count_addr = (fun s -> s + 1);
    entry_fields = (fun _ _ -> (0, 0, 0));
    desc_ptr = Fun.id;
    status_undecided = 1;
    status_succeeded = 2;
    status_failed = 3;
    status_free = 0;
  }

let checker_tests =
  [
    Alcotest.test_case "flit mode waives the flush-before-use rule" `Quick
      (fun () ->
        let ev seq op = { Trace.seq; domain = 1; op } in
        let dirty = Flags.set_dirty 7 in
        (* A journey read of a dirty word followed by a dependent CAS:
           the classic protocol demands a write-back in between; the
           flit protocol does not (the decide-after-persist rule guards
           the destination words instead). *)
        let events =
          [|
            ev 0 (Trace.Write { addr = 10; value = dirty });
            ev 1 (Trace.Read { addr = 10; value = dirty });
            ev 2
              (Trace.Cas { addr = 12; expected = 0; desired = 5; witnessed = 0 });
          |]
        in
        let strict = Checker.run hand_protocol events in
        Alcotest.(check int) "strict mode flags it" 1
          (List.length strict.Checker.violations);
        let relaxed =
          Checker.run { hand_protocol with Checker.flit = true } events
        in
        Alcotest.(check bool) "flit mode accepts it" true
          (Checker.ok relaxed));
  ]

let () =
  Alcotest.run "flit"
    [
      ("counters", counter_tests); ("passes", pass_tests);
      ("checker", checker_tests);
    ]
