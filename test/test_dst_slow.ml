(* Slow tier (`dune build @slow`): deep DST enumeration and dense crash
   sweeps that would blow the tier-1 budget. Everything here is still
   deterministic — failures print replayable tokens. *)

module Sched = Dst.Sched
module Scenarios = Dst.Scenarios
module Linearize = Dst.Linearize

let check_ok name (v : Linearize.verdict) =
  Alcotest.(check string) name "linearizable"
    (match v with
    | Linearizable -> "linearizable"
    | v -> Format.asprintf "%a" Linearize.pp_verdict v)

let exhaustive_tests =
  [
    Alcotest.test_case "pmwcas exhaustive at 2 preemptions" `Slow (fun () ->
        let scenario = Scenarios.pmwcas ~threads:2 ~ops:1 ~width:2 ~addrs:2 () in
        let e, violations =
          Scenarios.exhaust ~preemptions:2 ~max_schedules:60_000 scenario
        in
        Alcotest.(check (list string))
          "no violating schedule" []
          (List.map fst violations);
        if e.truncated then
          Printf.printf
            "note: enumeration truncated at %d schedules (coverage partial)\n"
            e.schedules_run;
        Alcotest.(check bool) "explored deeply" true (e.schedules_run > 1_000));
    Alcotest.test_case "pmwcas 3 threads exhaustive at 1 preemption" `Slow
      (fun () ->
        let scenario = Scenarios.pmwcas ~threads:3 ~ops:1 ~width:2 ~addrs:2 () in
        let e, violations =
          Scenarios.exhaust ~preemptions:1 ~max_schedules:60_000 scenario
        in
        Alcotest.(check (list string))
          "no violating schedule" []
          (List.map fst violations);
        Alcotest.(check bool) "explored deeply" true (e.schedules_run > 500));
  ]

let random_depth_tests =
  [
    Alcotest.test_case "skiplist: many seeds, random + pct" `Slow (fun () ->
        let scenario = Scenarios.skiplist ~threads:3 ~ops:6 ~keys:6 () in
        for seed = 1 to 25 do
          let r =
            scenario.Scenarios.run
              ~pick:(Sched.pick_of_strategy (Sched.Random seed))
              ~fuel:None ~crash:None
          in
          check_ok (Printf.sprintf "random %d" seed) r.verdict
        done;
        for seed = 1 to 10 do
          let r =
            scenario.Scenarios.run
              ~pick:
                (Sched.pick_of_strategy
                   (Sched.Pct { seed; changes = 4; horizon = 4_000 }))
              ~fuel:None ~crash:None
          in
          check_ok (Printf.sprintf "pct %d" seed) r.verdict
        done);
    Alcotest.test_case "bwtree: many seeds, random + pct" `Slow (fun () ->
        let scenario = Scenarios.bwtree ~threads:3 ~ops:6 ~keys:6 () in
        for seed = 1 to 15 do
          let r =
            scenario.Scenarios.run
              ~pick:(Sched.pick_of_strategy (Sched.Random seed))
              ~fuel:None ~crash:None
          in
          check_ok (Printf.sprintf "random %d" seed) r.verdict
        done;
        for seed = 1 to 8 do
          let r =
            scenario.Scenarios.run
              ~pick:
                (Sched.pick_of_strategy
                   (Sched.Pct { seed; changes = 4; horizon = 8_000 }))
              ~fuel:None ~crash:None
          in
          check_ok (Printf.sprintf "pct %d" seed) r.verdict
        done);
  ]

let crash_density_tests =
  [
    Alcotest.test_case "pmwcas: every crash point, three images" `Slow
      (fun () ->
        let scenario = Scenarios.pmwcas ~threads:2 ~ops:2 ~width:2 ~addrs:3 () in
        match Scenarios.hunt ~seeds:[ 1; 2 ] ~stride:1 scenario with
        | None -> ()
        | Some (token, r) ->
            Alcotest.failf "violation %s: %s" token
              (Format.asprintf "%a" Linearize.pp_verdict r.verdict));
    Alcotest.test_case "skiplist: dense scheduled-crash sweep" `Slow (fun () ->
        let scenario = Scenarios.skiplist ~threads:2 ~ops:4 ~keys:5 () in
        match Scenarios.hunt ~seeds:[ 1 ] ~stride:3 scenario with
        | None -> ()
        | Some (token, r) ->
            Alcotest.failf "violation %s: %s" token
              (Format.asprintf "%a" Linearize.pp_verdict r.verdict));
    Alcotest.test_case "bwtree: scheduled-crash sweep" `Slow (fun () ->
        let scenario = Scenarios.bwtree ~threads:2 ~ops:4 ~keys:5 () in
        match Scenarios.hunt ~seeds:[ 1 ] ~stride:5 scenario with
        | None -> ()
        | Some (token, r) ->
            Alcotest.failf "violation %s: %s" token
              (Format.asprintf "%a" Linearize.pp_verdict r.verdict));
    Alcotest.test_case "dst crash-sweep suites (fuel composition)" `Slow
      (fun () ->
        List.iter
          (fun spec ->
            let s =
              Harness.Crash_sweep.sweep ~budget:160 ~evict_seeds:[ 1 ] spec
            in
            Alcotest.(check (list string))
              (spec.Harness.Crash_sweep.name ^ ": no failures")
              []
              (List.map
                 (Format.asprintf "%a" Harness.Crash_sweep.pp_failure)
                 s.failures))
          (Harness.Dst_suites.all ()));
  ]

let () =
  Alcotest.run "dst-slow"
    [
      ("exhaustive", exhaustive_tests);
      ("random-depth", random_depth_tests);
      ("crash-density", crash_density_tests);
    ]
