(* Tests for the telemetry layer: histogram bucketing and percentiles,
   merge algebra, the registry tree, exporters (JSON round-trip, CSV,
   Prometheus text), the sampler, and the per-phase time accounting in
   Nvram.Stats. *)

module H = Telemetry.Histogram
module V = Telemetry.Value
module R = Telemetry.Registry
module E = Telemetry.Export

(* --- histogram bucketing ---------------------------------------------- *)

let test_bucket_boundaries () =
  (* Every representative value must land in a bucket whose [lo, hi]
     range contains it, and the index must be monotone in the value. *)
  let values =
    [ 0; 1; 2; 7; 8; 9; 15; 16; 17; 100; 1023; 1024; 65537; 1_000_000;
      (1 lsl 40) + 123; max_int ]
  in
  List.iter
    (fun v ->
      let i = H.index v in
      let lo, hi = H.bounds i in
      if not (lo <= v && v <= hi) then
        Alcotest.failf "value %d in bucket %d = [%d, %d]" v i lo hi)
    values;
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        if H.index a > H.index b then
          Alcotest.failf "index not monotone at %d -> %d" a b;
        pairs rest
    | _ -> ()
  in
  pairs values;
  Alcotest.(check bool)
    "indices stay in range" true
    (List.for_all (fun v -> H.index v < H.num_buckets) values)

let test_record_snapshot () =
  let h = H.create () in
  List.iter (fun v -> H.record h v) [ 1; 2; 3; 100; 1000 ];
  let s = H.snapshot h in
  Alcotest.(check int) "count" 5 s.H.count;
  Alcotest.(check int) "sum" 1106 s.H.sum;
  Alcotest.(check int) "max" 1000 s.H.max_value;
  (* Negative samples clamp to zero rather than corrupting a bucket. *)
  H.record h (-5);
  let s = H.snapshot h in
  Alcotest.(check int) "negative clamps" 6 s.H.count

let test_percentiles () =
  let h = H.create () in
  for v = 1 to 1000 do
    H.record h v
  done;
  let s = H.snapshot h in
  let p50 = H.percentile s 0.5
  and p90 = H.percentile s 0.9
  and p99 = H.percentile s 0.99
  and p100 = H.percentile s 1.0 in
  (* Bucketed percentiles overestimate by at most one sub-bucket width
     (1/8 relative). *)
  if not (p50 >= 500 && p50 <= 640) then Alcotest.failf "p50 = %d" p50;
  if not (p90 >= 900 && p90 <= 1024) then Alcotest.failf "p90 = %d" p90;
  (* Monotone, and p100 is exactly the max. *)
  if not (p50 <= p90 && p90 <= p99 && p99 <= p100) then
    Alcotest.failf "percentiles not monotone: %d %d %d %d" p50 p90 p99 p100;
  Alcotest.(check int) "p100 = max" 1000 p100

let test_empty_histogram () =
  let s = H.snapshot (H.create ()) in
  Alcotest.(check int) "count" 0 s.H.count;
  Alcotest.(check int) "p50 of empty" 0 (H.percentile s 0.5);
  Alcotest.(check int) "max" 0 s.H.max_value;
  Alcotest.(check (float 1e-9)) "mean" 0.0 (H.mean s)

(* Pinned boundary semantics of [percentile]: empty -> 0 for every q
   (finite or not); q <= 0 -> smallest recorded bucket's upper bound;
   q >= 1 -> max_value; NaN q -> the conservative tail (q = 1), never
   the silent q = 0 a naive clamp would produce. *)
let test_percentile_boundaries () =
  let e = H.snapshot (H.create ()) in
  List.iter
    (fun q -> Alcotest.(check int) "empty is 0 everywhere" 0 (H.percentile e q))
    [ -1.; 0.; 0.5; 1.; 2.; Float.nan ];
  let h = H.create () in
  H.record h 5;
  let s = H.snapshot h in
  List.iter
    (fun q ->
      Alcotest.(check int) "single sample is every percentile" 5
        (H.percentile s q))
    [ 0.; 0.5; 1. ];
  let h2 = H.create () in
  List.iter (H.record h2) [ 1; 1000 ];
  let s2 = H.snapshot h2 in
  Alcotest.(check int) "q < 0 clamps to smallest bucket" 1
    (H.percentile s2 (-0.5));
  Alcotest.(check int) "q > 1 clamps to max" 1000 (H.percentile s2 7.);
  Alcotest.(check int) "NaN q is the tail, not the floor" 1000
    (H.percentile s2 Float.nan)

let test_merge () =
  let mk vals =
    let h = H.create () in
    List.iter (H.record h) vals;
    H.snapshot h
  in
  let a = mk [ 1; 10; 100 ]
  and b = mk [ 2; 20; 2000 ]
  and c = mk [ 3; 30000 ] in
  let ab_c = H.merge (H.merge a b) c and a_bc = H.merge a (H.merge b c) in
  Alcotest.(check bool) "associative" true (ab_c = a_bc);
  Alcotest.(check bool) "commutative" true (H.merge a b = H.merge b a);
  Alcotest.(check int) "merged count" 8 ab_c.H.count;
  Alcotest.(check int) "merged max" 30000 ab_c.H.max_value;
  Alcotest.(check int) "merged sum" 32136 ab_c.H.sum;
  Alcotest.(check bool) "empty is identity" true (H.merge a H.empty = a)

let test_concurrent_record () =
  let h = H.create () in
  let domains = 4 and per = 10_000 in
  List.init domains (fun _ ->
      Domain.spawn (fun () ->
          for v = 1 to per do
            H.record h v
          done))
  |> List.iter Domain.join;
  let s = H.snapshot h in
  Alcotest.(check int) "count" (domains * per) s.H.count;
  Alcotest.(check int) "sum" (domains * (per * (per + 1) / 2)) s.H.sum;
  Alcotest.(check int) "max" per s.H.max_value

(* --- registry --------------------------------------------------------- *)

let test_registry_tree () =
  let r = R.create () in
  let h = R.histogram r "a.b.lat_ns" in
  H.record h 42;
  R.register_source r "a.counters" (fun () ->
      V.Obj [ ("x", V.Int 7) ]);
  (* get-or-create: same histogram back. *)
  H.record (R.histogram r "a.b.lat_ns") 43;
  let s = R.snapshot r in
  (match V.find_path s [ "a"; "b"; "lat_ns"; "count" ] with
  | Some (V.Int 2) -> ()
  | v ->
      Alcotest.failf "bad count node %s"
        (Option.fold ~none:"missing" ~some:(fun v -> V.to_string v) v));
  (match V.find_path s [ "a"; "counters"; "x" ] with
  | Some (V.Int 7) -> ()
  | _ -> Alcotest.fail "source leaf missing");
  (* asking for a histogram under a source's name is rejected *)
  (try
     ignore (R.histogram r "a.counters");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* [Telemetry.on_demand] exists because [lazy] cells poisoned under
   concurrent first forcing (CamlinternalLazy.Undefined): hammer the
   first use from several domains and check every record landed in one
   shared histogram. *)
let test_on_demand_concurrent () =
  let get = Telemetry.on_demand "test.on_demand_ns" in
  let domains = 4 and per = 1000 in
  List.init domains (fun _ ->
      Domain.spawn (fun () ->
          for v = 1 to per do
            H.record (get ()) v
          done))
  |> List.iter Domain.join;
  let s = H.snapshot (Telemetry.histogram "test.on_demand_ns") in
  Alcotest.(check int) "all records in one histogram" (domains * per)
    s.H.count;
  Telemetry.Registry.remove Telemetry.default "test.on_demand_ns"

(* --- JSON round-trip and exporters ------------------------------------ *)

let test_json_roundtrip () =
  let v =
    V.Obj
      [
        ("s", V.String "with \"quotes\"\nand\tescapes\\");
        ("i", V.Int (-42));
        ("f", V.Float 0.001219);
        ("whole", V.Float 3.0);
        ("b", V.Bool true);
        ("n", V.Null);
        ("l", V.List [ V.Int 1; V.Obj []; V.List [] ]);
      ]
  in
  List.iter
    (fun pretty ->
      match V.of_string (V.to_string ~pretty v) with
      | Ok v' ->
          if v' <> v then
            Alcotest.failf "round-trip mismatch (pretty=%b): %s" pretty
              (V.to_string v')
      | Error e -> Alcotest.failf "parse failed (pretty=%b): %s" pretty e)
    [ false; true ];
  (* Non-finite floats degrade to null, not invalid JSON. *)
  (match V.of_string (V.to_string (V.Float Float.nan)) with
  | Ok V.Null -> ()
  | _ -> Alcotest.fail "nan must serialize as null");
  match V.of_string "{\"a\": 1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated input must not parse"

let test_csv () =
  let v =
    V.Obj
      [
        ("a", V.Obj [ ("b", V.Int 1) ]);
        ("l", V.List [ V.Int 5; V.Int 6 ]);
      ]
  in
  let lines = String.split_on_char '\n' (String.trim (E.to_csv v)) in
  Alcotest.(check (list string))
    "rows"
    [ "path,value"; "a.b,1"; "l.0,5"; "l.1,6" ]
    lines

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_prometheus () =
  let r = R.create () in
  let h = R.histogram r "ns.lat_ns" in
  List.iter (H.record h) [ 1; 5; 9; 100 ];
  R.register_source ~kind:`Counter r "ns.ops" (fun () -> V.Int 4);
  R.register_source ~kind:`Gauge r "ns.depth" (fun () -> V.Int 3);
  let text = E.to_prometheus ~labels:[ ("run", "a\"b\\c\nd") ] r in
  (* histogram typed as such, with cumulative buckets and +Inf = count *)
  Alcotest.(check bool) "histogram TYPE" true
    (contains ~needle:"# TYPE ns_lat_ns histogram" text);
  Alcotest.(check bool) "+Inf bucket" true
    (contains ~needle:"le=\"+Inf\"" text);
  Alcotest.(check bool) "count series" true
    (contains ~needle:"ns_lat_ns_count" text);
  (* counters get _total and the counter type; gauges neither *)
  Alcotest.(check bool) "counter TYPE" true
    (contains ~needle:"# TYPE ns_ops_total counter" text);
  Alcotest.(check bool) "gauge TYPE" true
    (contains ~needle:"# TYPE ns_depth gauge" text);
  (* label escaping: backslash, quote and newline *)
  Alcotest.(check bool) "label escaped" true
    (contains ~needle:"run=\"a\\\"b\\\\c\\nd\"" text);
  (* cumulative bucket counts are nondecreasing and end at count *)
  let buckets =
    String.split_on_char '\n' text
    |> List.filter (fun l -> contains ~needle:"ns_lat_ns_bucket" l)
    |> List.map (fun l ->
           match String.rindex_opt l ' ' with
           | Some i ->
               int_of_string
                 (String.sub l (i + 1) (String.length l - i - 1))
           | None -> Alcotest.failf "bad bucket line %s" l)
  in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "cumulative" true (nondecreasing buckets);
  Alcotest.(check int) "last bucket = count" 4
    (List.nth buckets (List.length buckets - 1))

(* --- sharded counters -------------------------------------------------- *)

let test_sharded () =
  let c = Telemetry.Sharded.create ~fields:3 in
  List.init 4 (fun _ ->
      Domain.spawn (fun () ->
          for i = 1 to 1000 do
            Telemetry.Sharded.incr c 0;
            Telemetry.Sharded.add c 1 2;
            Telemetry.Sharded.record_max c 2 i
          done))
  |> List.iter Domain.join;
  let sum = Telemetry.Sharded.sum c in
  Alcotest.(check int) "incr" 4000 (sum 0);
  Alcotest.(check int) "add" 8000 (sum 1);
  Alcotest.(check int) "max" 1000 (Telemetry.Sharded.max_over c 2);
  Telemetry.Sharded.reset c;
  Alcotest.(check int) "reset" 0 (sum 0)

(* --- sampler ----------------------------------------------------------- *)

let test_sampler () =
  let ticks = Atomic.make 0 in
  let s =
    Telemetry.Sampler.start ~interval_s:0.01
      [
        Telemetry.Sampler.counter "rate" (fun () -> Atomic.get ticks);
        Telemetry.Sampler.gauge "level" (fun () -> 2.5);
      ]
  in
  for _ = 1 to 50 do
    ignore (Atomic.fetch_and_add ticks 10);
    Unix.sleepf 0.002
  done;
  let samples = Telemetry.Sampler.stop s in
  Alcotest.(check bool) "collected samples" true (List.length samples >= 2);
  List.iter
    (fun (smp : Telemetry.Sampler.sample) ->
      match List.assoc_opt "level" smp.values with
      | Some l -> Alcotest.(check (float 1e-9)) "gauge level" 2.5 l
      | None -> Alcotest.fail "missing gauge")
    samples;
  (* times strictly increase *)
  let ts = List.map (fun (s : Telemetry.Sampler.sample) -> s.at_s) samples in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps increase" true (increasing ts);
  match Telemetry.Sampler.to_json samples with
  | V.List (row :: _) ->
      Alcotest.(check bool) "t_s present" true (V.member "t_s" row <> None)
  | _ -> Alcotest.fail "to_json shape"

(* --- phase-time accounting in Nvram.Stats ------------------------------ *)

let test_phase_times () =
  let module S = Nvram.Stats in
  Telemetry.enable ();
  Fun.protect ~finally:Telemetry.disable (fun () ->
      S.reset_phase_times ();
      let st = S.create () in
      S.set_phase st S.Install;
      Unix.sleepf 0.01;
      S.set_phase st S.Apply;
      Unix.sleepf 0.002;
      S.set_phase st S.App;
      let install = S.phase_time S.Install and apply = S.phase_time S.Apply in
      (* Sleeps put loose lower bounds on the charged intervals. *)
      Alcotest.(check bool) "install charged" true (install >= 5_000_000);
      Alcotest.(check bool) "apply charged" true (apply >= 1_000_000);
      Alcotest.(check bool) "install > apply" true (install > apply);
      match V.find_path (S.phase_times_to_json ()) [ "total"; "install" ] with
      | Some (V.Int n) -> Alcotest.(check int) "json total" install n
      | _ -> Alcotest.fail "phase_times_to_json shape")

let test_disabled_costs_nothing () =
  (* With telemetry off, set_phase must not accumulate time. *)
  let module S = Nvram.Stats in
  Telemetry.disable ();
  S.reset_phase_times ();
  let st = S.create () in
  S.set_phase st S.Install;
  Unix.sleepf 0.002;
  S.set_phase st S.App;
  Alcotest.(check int) "nothing charged" 0 (S.phase_time S.Install)

let () =
  Alcotest.run "telemetry"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "record/snapshot" `Quick test_record_snapshot;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "empty" `Quick test_empty_histogram;
          Alcotest.test_case "percentile boundaries" `Quick
            test_percentile_boundaries;
          Alcotest.test_case "merge algebra" `Quick test_merge;
          Alcotest.test_case "concurrent record" `Quick test_concurrent_record;
        ] );
      ( "registry",
        [
          Alcotest.test_case "nested tree" `Quick test_registry_tree;
          Alcotest.test_case "on_demand concurrent first use" `Quick
            test_on_demand_concurrent;
        ] );
      ( "export",
        [
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "csv" `Quick test_csv;
          Alcotest.test_case "prometheus" `Quick test_prometheus;
        ] );
      ( "sharded",
        [ Alcotest.test_case "concurrent counters" `Quick test_sharded ] );
      ("sampler", [ Alcotest.test_case "rates and gauges" `Quick test_sampler ]);
      ( "phases",
        [
          Alcotest.test_case "accumulation" `Quick test_phase_times;
          Alcotest.test_case "disabled is free" `Quick
            test_disabled_costs_nothing;
        ] );
    ]
