(* Unit, crash-recovery and property tests for the persistent allocator. *)

module Mem = Nvram.Mem

let make_env ?(persistent = true) ?(words = 4096) ?(max_threads = 4) () =
  let mem = Mem.create (Nvram.Config.make ~words ()) in
  let t = Palloc.create ~persistent mem ~base:0 ~words ~max_threads in
  (mem, t)

let expect_invalid f =
  try
    ignore (f ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let expect_failure f =
  try
    ignore (f ());
    Alcotest.fail "expected Failure"
  with Failure _ -> ()

(* A scratch delivery word: allocate it inside the device but outside the
   allocator's region by giving the allocator a sub-range. Tests that
   assert exact-block recycling pass [~carve_blocks:1] to disable chunked
   carving (a carve would otherwise stock the handle's cache, and the
   cache — not the free list — serves the next allocation). *)
let make_env_with_scratch ?carve_blocks () =
  let words = 4096 in
  let mem = Mem.create (Nvram.Config.make ~words ()) in
  let scratch = 0 in
  (* words 0..7: scratch line *)
  let t =
    Palloc.create ?carve_blocks mem ~base:8 ~words:(words - 8) ~max_threads:4
  in
  (mem, t, scratch)

let basic_tests =
  [
    Alcotest.test_case "alloc delivers durably into dest" `Quick (fun () ->
        let mem, t, dest = make_env_with_scratch () in
        let h = Palloc.register_thread t in
        let p = Palloc.alloc h ~nwords:4 ~dest in
        Alcotest.(check int) "volatile dest" p (Mem.read mem dest);
        Alcotest.(check int) "durable dest" p (Mem.read_persistent mem dest);
        Alcotest.(check bool) "usable" true (Palloc.usable_size t p >= 4);
        Palloc.release_thread h);
    Alcotest.test_case "size classes round up to powers of two" `Quick
      (fun () ->
        let _mem, t, dest = make_env_with_scratch () in
        let h = Palloc.register_thread t in
        List.iter
          (fun (n, expect) ->
            let p = Palloc.alloc h ~nwords:n ~dest in
            Alcotest.(check int)
              (Printf.sprintf "class for %d" n)
              expect (Palloc.usable_size t p))
          [ (1, 1); (2, 2); (3, 4); (4, 4); (5, 8); (9, 16); (33, 64) ];
        Palloc.release_thread h);
    Alcotest.test_case "free recycles exactly" `Quick (fun () ->
        let _mem, t, dest = make_env_with_scratch ~carve_blocks:1 () in
        let h = Palloc.register_thread t in
        let p1 = Palloc.alloc h ~nwords:6 ~dest in
        Palloc.free t p1;
        let p2 = Palloc.alloc h ~nwords:6 ~dest in
        Alcotest.(check int) "same block reused" p1 p2;
        Palloc.release_thread h);
    Alcotest.test_case "double free rejected" `Quick (fun () ->
        let _mem, t, dest = make_env_with_scratch () in
        let h = Palloc.register_thread t in
        let p = Palloc.alloc h ~nwords:2 ~dest in
        Palloc.free t p;
        expect_invalid (fun () -> Palloc.free t p);
        Palloc.release_thread h);
    Alcotest.test_case "free of a non-block rejected" `Quick (fun () ->
        let _mem, t, _ = make_env_with_scratch () in
        expect_invalid (fun () -> Palloc.free t 1);
        expect_invalid (fun () -> Palloc.free t 1_000_000));
    Alcotest.test_case "bad arguments rejected" `Quick (fun () ->
        let _mem, t, dest = make_env_with_scratch () in
        let h = Palloc.register_thread t in
        expect_invalid (fun () -> Palloc.alloc h ~nwords:0 ~dest);
        expect_invalid (fun () -> Palloc.alloc h ~nwords:(-3) ~dest);
        Palloc.release_thread h;
        expect_invalid (fun () -> Palloc.alloc h ~nwords:1 ~dest);
        expect_invalid (fun () -> Palloc.release_thread h));
    Alcotest.test_case "out of memory raises" `Quick (fun () ->
        let words = 128 in
        let mem = Mem.create (Nvram.Config.make ~words ()) in
        let t = Palloc.create mem ~base:0 ~words ~max_threads:1 in
        let h = Palloc.register_thread t in
        expect_failure (fun () -> Palloc.alloc_unsafe h ~nwords:1024);
        (* Small allocations fit until exhaustion. *)
        let rec burn n =
          match Palloc.alloc_unsafe h ~nwords:8 with
          | _ -> burn (n + 1)
          | exception Failure _ -> n
        in
        Alcotest.(check bool) "some succeeded" true (burn 0 > 0));
    Alcotest.test_case "register_thread exhaustion" `Quick (fun () ->
        let _mem, t = make_env ~max_threads:2 () in
        let h1 = Palloc.register_thread t in
        let h2 = Palloc.register_thread t in
        expect_failure (fun () -> Palloc.register_thread t);
        Palloc.release_thread h1;
        let h3 = Palloc.register_thread t in
        Palloc.release_thread h2;
        Palloc.release_thread h3);
    Alcotest.test_case "audit counts" `Quick (fun () ->
        let _mem, t, dest = make_env_with_scratch ~carve_blocks:1 () in
        let h = Palloc.register_thread t in
        let p1 = Palloc.alloc h ~nwords:4 ~dest in
        let _p2 = Palloc.alloc h ~nwords:8 ~dest in
        Palloc.free t p1;
        let a = Palloc.audit t in
        Alcotest.(check int) "allocated" 1 a.allocated_blocks;
        Alcotest.(check int) "allocated words" 8 a.allocated_words;
        Alcotest.(check int) "free" 1 a.free_blocks;
        Alcotest.(check int) "free words" 4 a.free_words;
        Alcotest.(check int) "in flight" 0 a.in_flight;
        Palloc.release_thread h);
    Alcotest.test_case "misaligned base rejected" `Quick (fun () ->
        let mem = Mem.create (Nvram.Config.make ~words:256 ()) in
        expect_invalid (fun () ->
            Palloc.create mem ~base:3 ~words:200 ~max_threads:1));
  ]

let arena_tests =
  [
    Alcotest.test_case "arenas shard the heap without stealing" `Quick
      (fun () ->
        let mem = Mem.create (Nvram.Config.make ~words:8192 ()) in
        let t =
          Palloc.create ~arenas:2 mem ~base:0 ~words:8192 ~max_threads:4
        in
        Alcotest.(check int) "two arenas" 2 (Palloc.arenas t);
        let h0 = Palloc.register_thread ~arena:0 t in
        let h1 = Palloc.register_thread ~arena:1 t in
        Palloc.reset_counters ();
        let p0 = Palloc.alloc_unsafe h0 ~nwords:4 in
        let p1 = Palloc.alloc_unsafe h1 ~nwords:4 in
        Alcotest.(check bool) "distinct blocks" true (p0 <> p1);
        let c = Palloc.counters () in
        (* Each handle carved from its own arena; neither had to fall
           back to the other's. *)
        Alcotest.(check int) "one carve per arena" 2 c.Palloc.carves;
        Alcotest.(check int) "no steals" 0 c.Palloc.arena_steals;
        ignore (Palloc.audit t);
        Palloc.release_thread h0;
        Palloc.release_thread h1);
    Alcotest.test_case "home arena wraps modulo arena count" `Quick
      (fun () ->
        let mem = Mem.create (Nvram.Config.make ~words:8192 ()) in
        let t =
          Palloc.create ~arenas:2 mem ~base:0 ~words:8192 ~max_threads:4
        in
        let h = Palloc.register_thread ~arena:7 t in
        ignore (Palloc.alloc_unsafe h ~nwords:2);
        ignore (Palloc.audit t);
        Palloc.release_thread h);
    Alcotest.test_case "carve cache serves follow-up allocations" `Quick
      (fun () ->
        let mem = Mem.create (Nvram.Config.make ~words:8192 ()) in
        let t =
          Palloc.create ~arenas:1 ~carve_blocks:8 mem ~base:0 ~words:8192
            ~max_threads:1
        in
        let h = Palloc.register_thread t in
        Palloc.reset_counters ();
        for _ = 1 to 7 do
          ignore (Palloc.alloc_unsafe h ~nwords:1)
        done;
        (* The eighth allocation drains the cache exactly. *)
        let p = Palloc.alloc_unsafe h ~nwords:1 in
        let c = Palloc.counters () in
        Alcotest.(check int) "single carve" 1 c.Palloc.carves;
        Alcotest.(check int) "chunk pre-claimed" 8 c.Palloc.carved_blocks;
        Alcotest.(check int) "cache served the rest" 7 c.Palloc.cache_hits;
        (* With the cache empty, a freed block round-trips through the
           arena free list rather than triggering a fresh carve. *)
        Palloc.free t p;
        ignore (Palloc.alloc_unsafe h ~nwords:1);
        let c' = Palloc.counters () in
        Alcotest.(check int) "free-list hit" 1 c'.Palloc.freelist_hits;
        Alcotest.(check int) "no second carve" 1 c'.Palloc.carves;
        Palloc.release_thread h);
    Alcotest.test_case "exhausted home arena falls back to peers" `Quick
      (fun () ->
        let words = 1024 in
        let mem = Mem.create (Nvram.Config.make ~words ()) in
        let t =
          Palloc.create ~arenas:2 mem ~base:0 ~words ~max_threads:2
        in
        let h = Palloc.register_thread ~arena:0 t in
        Palloc.reset_counters ();
        let rec burn n =
          match Palloc.alloc_unsafe h ~nwords:8 with
          | _ -> burn (n + 1)
          | exception Failure m -> (n, m)
        in
        let n, m = burn 0 in
        Alcotest.(check bool) "filled both arenas" true (n > 0);
        let c = Palloc.counters () in
        Alcotest.(check bool) "stole from the peer arena" true
          (c.Palloc.arena_steals > 0);
        let prefix = "Palloc.alloc: out of memory" in
        Alcotest.(check bool) "oom names the allocator" true
          (String.length m >= String.length prefix
          && String.sub m 0 (String.length prefix) = prefix);
        ignore (Palloc.audit t);
        Palloc.release_thread h);
    Alcotest.test_case "tiny regions collapse to fewer arenas" `Quick
      (fun () ->
        let words = 256 in
        let mem = Mem.create (Nvram.Config.make ~words ()) in
        let t =
          Palloc.create ~arenas:8 mem ~base:0 ~words ~max_threads:1
        in
        Alcotest.(check bool) "clamped" true (Palloc.arenas t < 8);
        let h = Palloc.register_thread t in
        ignore (Palloc.alloc_unsafe h ~nwords:4);
        ignore (Palloc.audit t);
        Palloc.release_thread h);
    Alcotest.test_case "crashed carve caches are re-enlisted by recovery"
      `Quick (fun () ->
        let mem, t, dest = make_env_with_scratch () in
        let h = Palloc.register_thread t in
        (* One allocation pre-claims a chunk into the volatile cache;
           after a crash those blocks must reappear as free heap blocks,
           not leak. *)
        ignore (Palloc.alloc h ~nwords:1 ~dest);
        let img = Mem.crash_image mem in
        let t', rolled =
          Palloc.recover img ~base:8 ~words:4088 ~max_threads:4
        in
        Alcotest.(check int) "nothing in flight" 0 rolled;
        let a = Palloc.audit t' in
        Alcotest.(check int) "application owns one" 1 a.allocated_blocks;
        Alcotest.(check int) "cached blocks recovered as free" 7
          a.free_blocks;
        Palloc.release_thread h);
  ]

let recovery_tests =
  [
    Alcotest.test_case "clean crash: completed allocations survive" `Quick
      (fun () ->
        let mem, t, dest = make_env_with_scratch ~carve_blocks:1 () in
        let h = Palloc.register_thread t in
        let p1 = Palloc.alloc h ~nwords:4 ~dest in
        let p2 = Palloc.alloc h ~nwords:8 ~dest in
        Palloc.free t p1;
        let img = Mem.crash_image mem in
        let t', rolled = Palloc.recover img ~base:8 ~words:4088 ~max_threads:4 in
        Alcotest.(check int) "nothing in flight" 0 rolled;
        let a = Palloc.audit t' in
        Alcotest.(check int) "p2 still allocated" 1 a.allocated_blocks;
        Alcotest.(check int) "p1 free again" 1 a.free_blocks;
        (* The free block is recyclable after recovery. *)
        let h' = Palloc.register_thread t' in
        let p1' = Palloc.alloc h' ~nwords:4 ~dest:0 in
        Alcotest.(check int) "recycled" p1 p1';
        ignore p2;
        Palloc.release_thread h';
        Palloc.release_thread h);
    Alcotest.test_case "unreached recover on unformatted region fails" `Quick
      (fun () ->
        let mem = Mem.create (Nvram.Config.make ~words:256 ()) in
        expect_failure (fun () ->
            Palloc.recover mem ~base:0 ~words:256 ~max_threads:1));
    Alcotest.test_case "in-flight allocation rolls back when undelivered"
      `Quick (fun () ->
        (* Simulate a crash mid-alloc by hand-writing the activation
           record the way alloc does, without completing delivery. *)
        let mem, t, dest = make_env_with_scratch ~carve_blocks:1 () in
        let h = Palloc.register_thread t in
        (* A committed allocation tells us where blocks live. *)
        let p = Palloc.alloc h ~nwords:4 ~dest in
        Palloc.free t p;
        let b = p - 1 in
        (* Forge: record points at the block, delivery word still null. *)
        let slots_base =
          (* base=8, magic/arenas/threads at 8..10, slots line-aligned
             at 16 *)
          16
        in
        Mem.write mem (slots_base + 1) dest;
        Mem.write mem slots_base b;
        Mem.clwb mem slots_base;
        Mem.write mem dest 0;
        Mem.clwb mem dest;
        (* header marked allocated, like alloc does before delivery *)
        Mem.write mem b (Mem.read mem b lor 1);
        Mem.clwb mem b;
        Mem.fence mem;
        let img = Mem.crash_image mem in
        let t', rolled =
          Palloc.recover img ~base:8 ~words:4088 ~max_threads:4
        in
        Alcotest.(check int) "one rolled back" 1 rolled;
        let a = Palloc.audit t' in
        Alcotest.(check int) "block back on free list" 1 a.free_blocks;
        Alcotest.(check int) "no leak" 0 a.allocated_blocks;
        Palloc.release_thread h);
    Alcotest.test_case "in-flight allocation rolls forward when delivered"
      `Quick (fun () ->
        let mem, t, dest = make_env_with_scratch () in
        let h = Palloc.register_thread t in
        let p = Palloc.alloc h ~nwords:4 ~dest in
        Palloc.free t p;
        let b = p - 1 in
        let slots_base = 16 in
        Mem.write mem (slots_base + 1) dest;
        Mem.write mem slots_base b;
        Mem.clwb mem slots_base;
        Mem.write mem b (Mem.read mem b lor 1);
        Mem.clwb mem b;
        Mem.write mem dest p;
        Mem.clwb mem dest;
        Mem.fence mem;
        (* crash before the record was cleared *)
        let img = Mem.crash_image mem in
        let t', rolled =
          Palloc.recover img ~base:8 ~words:4088 ~max_threads:4
        in
        Alcotest.(check int) "nothing rolled back" 0 rolled;
        let a = Palloc.audit t' in
        Alcotest.(check int) "application owns block" 1 a.allocated_blocks;
        Alcotest.(check int) "record cleared" 0 a.in_flight;
        Palloc.release_thread h);
    Alcotest.test_case "alloc_unsafe leaks across crash (documented hazard)"
      `Quick (fun () ->
        let mem, t, _dest = make_env_with_scratch () in
        let h = Palloc.register_thread t in
        let _p = Palloc.alloc_unsafe h ~nwords:4 in
        let img = Mem.crash_image mem in
        let t', _ = Palloc.recover img ~base:8 ~words:4088 ~max_threads:4 in
        let a = Palloc.audit t' in
        (* The block is durably allocated but no delivery word references
           it: recovery cannot reclaim it. That is the leak PMwCAS's
           ReserveEntry protocol exists to prevent. *)
        Alcotest.(check int) "leaked block" 1 a.allocated_blocks;
        Palloc.release_thread h);
  ]

(* Property: after arbitrary alloc/free traffic and a crash with random
   eviction, recovery yields a heap where audit passes and the set of
   application-owned blocks equals the set of completed, unfreed
   allocations. *)
let prop_crash_ownership =
  QCheck.Test.make ~count:100 ~name:"crash preserves exact block ownership"
    QCheck.(pair (int_bound 60) (int_bound 1000))
    (fun (n_ops, seed) ->
      let size_rng = Random.State.make [| seed + 7 |] in
      let sizes =
        List.init n_ops (fun _ -> 1 + Random.State.int size_rng 20)
      in
      let words = 8192 in
      let mem = Mem.create (Nvram.Config.make ~words ()) in
      let t = Palloc.create mem ~base:8 ~words:(words - 8) ~max_threads:2 in
      let h = Palloc.register_thread t in
      let rng = Random.State.make [| seed |] in
      let live = ref [] in
      List.iter
        (fun n ->
          let p = Palloc.alloc h ~nwords:n ~dest:0 in
          live := p :: !live;
          (* Randomly free one of the live blocks. *)
          if Random.State.bool rng then begin
            match !live with
            | p :: rest ->
                Palloc.free t p;
                live := rest
            | [] -> ()
          end)
        sizes;
      let img =
        Mem.crash_image ~evict_prob:0.3 ~seed:(seed + 1)
          mem
      in
      let t', _rolled =
        Palloc.recover img ~base:8 ~words:(words - 8) ~max_threads:2
      in
      let a = Palloc.audit t' in
      a.allocated_blocks = List.length !live && a.in_flight = 0)

let concurrency_tests =
  [
    Alcotest.test_case "parallel alloc/free keeps the heap consistent" `Slow
      (fun () ->
        let words = 1 lsl 16 in
        let mem = Mem.create (Nvram.Config.make ~words ()) in
        let t = Palloc.create mem ~base:0 ~words ~max_threads:8 in
        let worker i () =
          let h = Palloc.register_thread t in
          (* Each worker delivers into its own scratch word inside its own
             first allocation. *)
          let scratch = Palloc.alloc_unsafe h ~nwords:8 in
          let live = ref [] in
          for round = 1 to 500 do
            let n = 1 + ((round * (i + 3)) mod 12) in
            let p = Palloc.alloc h ~nwords:n ~dest:(scratch + (round mod 8)) in
            live := p :: !live;
            if round mod 3 = 0 then begin
              match !live with
              | p :: rest ->
                  Palloc.free t p;
                  live := rest
              | [] -> ()
            end
          done;
          List.iter (Palloc.free t) !live;
          Palloc.release_thread h
        in
        let ds = List.init 4 (fun i -> Domain.spawn (worker i)) in
        List.iter Domain.join ds;
        let a = Palloc.audit t in
        (* Only the four scratch blocks remain allocated. *)
        Alcotest.(check int) "only scratch blocks live" 4 a.allocated_blocks);
  ]

let () =
  Alcotest.run "palloc"
    [
      ("basic", basic_tests);
      ("arenas", arena_tests);
      ("recovery", recovery_tests);
      ("concurrency", concurrency_tests);
      ("properties", [ QCheck_alcotest.to_alcotest prop_crash_ownership ]);
    ]
