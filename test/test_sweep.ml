(* Tier-1 coverage for the crash-point sweep harness itself: clean sweeps
   over every suite at smoke scale, exhaustive-vs-stratified point
   selection, the multi-domain driver, and the sabotage self-test that
   proves the sweeper can actually see a broken persistence protocol. *)

module Cs = Harness.Crash_sweep
module Suites = Harness.Sweep_suites

let check_clean ?(min_phases = 2) name (s : Cs.summary) =
  Alcotest.(check (list string)) (name ^ ": no failures") []
    (List.map (Format.asprintf "%a" Cs.pp_failure) s.failures);
  Alcotest.(check bool) (name ^ ": swept points") true (s.points > 0);
  Alcotest.(check int) (name ^ ": every point crashed") s.points s.crashes;
  Alcotest.(check bool)
    (name ^ ": classified several phases")
    true
    (List.length s.by_phase >= min_phases)

let bank_small ?(ops = 60) () = Suites.bank ~accounts:6 ~ops ()

let sweep_tests =
  [
    Alcotest.test_case "bank sweeps clean" `Quick (fun () ->
        let s = Cs.sweep ~budget:40 ~evict_seeds:[ 1 ] (bank_small ()) in
        check_clean "bank" s;
        Alcotest.(check int) "stratified budget honoured" 40 s.points;
        (* One no-evict image plus one seeded image per point. *)
        Alcotest.(check int) "images per point" (2 * s.points) s.images;
        Alcotest.(check bool) "recovery did work" true
          (s.rolled_forward + s.rolled_back > 0));
    Alcotest.test_case "short workloads sweep exhaustively" `Quick (fun () ->
        let spec = bank_small ~ops:2 () in
        let s = Cs.sweep ~budget:4096 ~evict_seeds:[ 1 ] spec in
        Alcotest.(check (list string)) "no failures" []
          (List.map (Format.asprintf "%a" Cs.pp_failure) s.failures);
        (* Budget exceeds the run length, so every fuel value is visited
           exactly once. *)
        Alcotest.(check int) "one point per step" s.total_steps s.points);
    Alcotest.test_case "multi-domain sweep covers the same points" `Quick
      (fun () ->
        let s = Cs.sweep ~budget:30 ~evict_seeds:[ 1 ] ~domains:3
            (bank_small ()) in
        check_clean "bank x3 domains" s;
        Alcotest.(check int) "all points farmed out" 30 s.points);
    Alcotest.test_case "palloc suite sweeps clean" `Quick (fun () ->
        check_clean "palloc"
          (Cs.sweep ~budget:25 ~evict_seeds:[ 1 ]
             (Suites.palloc_policies ~slots:6 ~ops:50 ())));
    Alcotest.test_case "skiplist suite sweeps clean" `Quick (fun () ->
        check_clean "skiplist"
          (Cs.sweep ~budget:25 ~evict_seeds:[ 1 ]
             (Suites.skiplist ~keys:16 ~ops:50 ())));
    Alcotest.test_case "bwtree suite sweeps clean" `Quick (fun () ->
        check_clean "bwtree"
          (Cs.sweep ~budget:25 ~evict_seeds:[ 1 ]
             (Suites.bwtree ~keys:16 ~ops:50 ())));
    Alcotest.test_case "traced sweep checks persistence order" `Quick
      (fun () ->
        check_clean "bank traced"
          (Cs.sweep ~budget:12 ~evict_seeds:[ 1 ] ~trace:true
             (bank_small ~ops:40 ())));
    Alcotest.test_case "sabotaged precommit flush is detected and shrunk"
      `Quick (fun () ->
        (* Self-test from the issue: dropping the precommit persist must
           surface as a durable-prefix violation, and the shrinker must
           hand back a replayable (fuel, seed) pair. *)
        Cs.with_sabotaged_precommit (fun () ->
            let spec = Suites.bank () in
            let s = Cs.sweep ~budget:200 ~evict_seeds:[ 1 ] spec in
            Alcotest.(check bool) "sweep reports failures" true
              (s.failures <> []);
            let shrunk =
              List.filter_map (fun (f : Cs.failure) -> f.shrunk) s.failures
            in
            match shrunk with
            | [] -> Alcotest.fail "no failure was shrunk"
            | (fuel, seed) :: _ ->
                let errs =
                  Cs.replay spec ~fuel ?evict_seed:seed ()
                in
                Alcotest.(check bool) "shrunk repro still fails" true
                  (errs <> []));
        (* The knob is restored: the same workload sweeps clean again. *)
        check_clean "bank after sabotage"
          (Cs.sweep ~budget:20 ~evict_seeds:[ 1 ] (bank_small ())));
    Alcotest.test_case "calibration parks every registered sabotage knob"
      `Quick (fun () ->
        (* Regression for the knob registry: calibration used to park a
           hand-maintained list of knobs, so a newly added sabotage mode
           silently poisoned the baseline run (and with it every fuel
           value of the sweep). Now any registered knob — including ones
           the harness has never heard of — must be off during the
           calibration run and restored afterwards. *)
        List.iter
          (fun builtin ->
            Alcotest.(check bool)
              (builtin ^ " knob registered")
              true
              (List.mem builtin (Cs.knob_names ())))
          [ "precommit"; "drain"; "flit"; "nodirty"; "fewfence" ];
        let armed = ref false in
        let sets = ref [] in
        (* Uses the test-only knob registered below if a previous run of
           this binary already added it (Alcotest can re-run cases). *)
        if not (List.mem "test-dummy" (Cs.knob_names ())) then
          Cs.register_knob ~name:"test-dummy"
            ~get:(fun () -> !armed)
            ~set:(fun v ->
              sets := v :: !sets;
              armed := v);
        (try
           Cs.register_knob ~name:"test-dummy" ~get:(fun () -> false)
             ~set:ignore;
           Alcotest.fail "duplicate knob registration was accepted"
         with Invalid_argument _ -> ());
        Cs.with_knob "test-dummy" true (fun () ->
            Alcotest.(check bool) "armed inside with_knob" true !armed;
            (* A sweep calibrates first: the dummy knob must be parked
               off for the baseline, then restored for the sweep body —
               since the dummy sabotages nothing, the sweep stays
               clean either way, but the knob state must round-trip. *)
            sets := [];
            let s = Cs.sweep ~budget:6 ~evict_seeds:[ 1 ] (bank_small ()) in
            check_clean "sweep under dummy knob" s;
            Alcotest.(check bool) "knob restored after calibration" true
              !armed;
            (* Oldest-first set history: calibration parked the knob off,
               then put it back. *)
            Alcotest.(check (list bool)) "parked off, then restored"
              [ false; true ] (List.rev !sets));
        Alcotest.(check bool) "knob restored after with_knob" false !armed);
  ]

let () = Alcotest.run "sweep" [ ("sweep", sweep_tests) ]
