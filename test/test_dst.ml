(* Tier-1 coverage for the DST stack: the cooperative deterministic
   scheduler (strategies, tokens, replay, exhaustive enumeration), the
   Wing–Gong (durable) linearizability checker, the three scenarios at
   smoke scale, recovery racing concurrent helpers, and the sabotaged
   broken-helper self-test that proves the whole pipeline can see a
   persistence-ordering bug. Deeper enumerations live in the @slow
   alias (test_dst_slow.ml). *)

module Mem = Nvram.Mem
module Sched = Dst.Sched
module History = Dst.History
module Linearize = Dst.Linearize
module Model = Dst.Model
module Scenarios = Dst.Scenarios
module RegCheck = Linearize.Make (Model.Registers)
module KvCheck = Linearize.Make (Model.Kv)

let check_ok name (v : Linearize.verdict) =
  Alcotest.(check string) name "linearizable"
    (match v with
    | Linearizable -> "linearizable"
    | v -> Format.asprintf "%a" Linearize.pp_verdict v)

let check_violation name (v : Linearize.verdict) =
  Alcotest.(check bool) name true
    (match v with Linearize.Violation _ -> true | _ -> false)

(* {1 Scheduler mechanics on raw fibers} *)

let toy_mem words = Mem.hooked (Mem.create (Nvram.Config.make ~words ()))

let writer mem base n () =
  for i = 0 to n - 1 do
    Mem.write mem (base + i) (base + i)
  done

let sched_tests =
  [
    Alcotest.test_case "round-robin alternates threads" `Quick (fun () ->
        let mem = toy_mem 64 in
        let out =
          Sched.run ~mem
            ~pick:(Sched.pick_of_strategy Sched.Round_robin)
            [| writer mem 0 3; writer mem 8 3 |]
        in
        Alcotest.(check bool) "completed" true out.completed;
        (* n writes cost n+1 picks: the first pick parks before the first
           write, the last resumes past it to completion. *)
        Alcotest.(check (list int))
          "perfect alternation" [ 0; 1; 0; 1; 0; 1; 0; 1 ]
          (Array.to_list out.schedule));
    Alcotest.test_case "stop_at parks fibers at an op boundary" `Quick
      (fun () ->
        let mem = toy_mem 64 in
        let out =
          Sched.run ~mem ~stop_at:3
            ~pick:(Sched.pick_of_strategy Sched.Round_robin)
            [| writer mem 0 4; writer mem 8 4 |]
        in
        Alcotest.(check bool) "stopped" true out.stopped;
        Alcotest.(check bool) "not completed" false out.completed;
        Alcotest.(check int) "exactly 3 steps" 3 (Array.length out.schedule));
    Alcotest.test_case "random strategy is deterministic per seed" `Quick
      (fun () ->
        let go () =
          let mem = toy_mem 64 in
          (Sched.run ~mem
             ~pick:(Sched.pick_of_strategy (Sched.Random 42))
             [| writer mem 0 5; writer mem 8 5; writer mem 16 5 |])
            .schedule
        in
        Alcotest.(check (list int))
          "same seed, same schedule"
          (Array.to_list (go ()))
          (Array.to_list (go ())));
    Alcotest.test_case "prefix replay reproduces a random schedule" `Quick
      (fun () ->
        let run pick =
          let mem = toy_mem 64 in
          Sched.run ~mem ~pick [| writer mem 0 5; writer mem 8 5 |]
        in
        let a = run (Sched.pick_of_strategy (Sched.Random 9)) in
        let b = run (Sched.pick_of_strategy (Sched.Prefix a.schedule)) in
        Alcotest.(check (list int))
          "replayed exactly"
          (Array.to_list a.schedule)
          (Array.to_list b.schedule));
    Alcotest.test_case "pct runs highest priority thread" `Quick (fun () ->
        let mem = toy_mem 64 in
        let out =
          Sched.run ~mem
            ~pick:
              (Sched.pick_of_strategy
                 (Sched.Pct { seed = 3; changes = 2; horizon = 12 }))
            [| writer mem 0 4; writer mem 8 4; writer mem 16 4 |]
        in
        Alcotest.(check bool) "completed" true out.completed;
        (* Priority scheduling yields long runs of one thread: at most
           changes + threads segments. *)
        let switches = ref 0 in
        Array.iteri
          (fun i t -> if i > 0 && out.schedule.(i - 1) <> t then incr switches)
          out.schedule;
        Alcotest.(check bool) "few context switches" true (!switches <= 4));
    Alcotest.test_case "fiber exceptions are reported, not raised" `Quick
      (fun () ->
        let mem = toy_mem 64 in
        let out =
          Sched.run ~mem
            ~pick:(Sched.pick_of_strategy Sched.Round_robin)
            [|
              (fun () ->
                Mem.write mem 0 1;
                failwith "boom");
              writer mem 8 2;
            |]
        in
        Alcotest.(check bool) "completed" true out.completed;
        match out.failures with
        | [ (0, Failure msg) ] when msg = "boom" -> ()
        | _ -> Alcotest.fail "expected exactly fiber 0's Failure");
    Alcotest.test_case "exhaustive exploration covers a toy conflict" `Quick
      (fun () ->
        let run ~pick =
          let mem = toy_mem 64 in
          Sched.run ~mem ~pick [| writer mem 0 2; writer mem 8 2 |]
        in
        let seen = Hashtbl.create 16 in
        let e =
          Sched.explore ~preemptions:2 ~run
            ~on_outcome:(fun o ->
              Alcotest.(check bool) "completed" true o.completed;
              Hashtbl.replace seen (Sched.encode_schedule o.schedule) ())
            ()
        in
        Alcotest.(check bool) "not truncated" false e.truncated;
        Alcotest.(check int)
          "distinct schedules" e.schedules_run (Hashtbl.length seen);
        (* 2 threads x 2 ops with <= 2 preemptions: more than the two
           serial orders, less than all 6 interleavings' worth of
           duplicates. *)
        Alcotest.(check bool) "several schedules" true (e.schedules_run >= 4));
  ]

(* {1 Schedule tokens} *)

let token_tests =
  [
    Alcotest.test_case "schedule round-trip" `Quick (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check (list int))
              "decode (encode s) = s" (Array.to_list s)
              (Array.to_list (Sched.decode_schedule (Sched.encode_schedule s))))
          [
            [||];
            [| 0 |];
            [| 0; 0; 0; 1; 1; 0; 2 |];
            Array.init 100 (fun i -> i mod 3);
          ]);
    Alcotest.test_case "token with crash spec round-trips" `Quick (fun () ->
        let crash =
          Some Scenarios.{ at = 17; evict_prob = 0.3; evict_seed = 2 }
        in
        let schedule = [| 0; 0; 1; 0 |] in
        let tok = Scenarios.encode_token ~schedule ~crash in
        Alcotest.(check string) "format" "a2b1a1/c17e2p30" tok;
        let s', c' = Scenarios.decode_token tok in
        Alcotest.(check (list int)) "schedule" [ 0; 0; 1; 0 ]
          (Array.to_list s');
        match c' with
        | Some { at = 17; evict_seed = 2; evict_prob } ->
            Alcotest.(check (float 1e-9)) "prob" 0.3 evict_prob
        | _ -> Alcotest.fail "crash spec lost");
    Alcotest.test_case "malformed tokens rejected" `Quick (fun () ->
        List.iter
          (fun tok ->
            Alcotest.check_raises ("reject " ^ tok)
              (Invalid_argument "Sched.decode_schedule: expected count")
              (fun () ->
                match Scenarios.decode_token tok with
                | exception Invalid_argument _ ->
                    raise
                      (Invalid_argument
                         "Sched.decode_schedule: expected count")
                | _ -> ()))
          [ "a"; "3a"; "a2b"; "a1/x9"; "a1/c1e2"; "a1/c1e2p999" ]);
  ]

(* {1 The checker on hand-built histories} *)

let reg_init = Model.Registers.init [ (0, 0); (1, 0) ]

let checker_tests =
  [
    Alcotest.test_case "sequential history linearizes" `Quick (fun () ->
        let h = History.create () in
        let c = History.invoke h ~thread:0 (Model.Registers.Mwcas [ (0, 0, 5) ]) in
        History.return h c (Model.Registers.Done true);
        let c = History.invoke h ~thread:0 (Model.Registers.Read 0) in
        History.return h c (Model.Registers.Value 5);
        check_ok "seq" (RegCheck.check ~init:reg_init h));
    Alcotest.test_case "stale read after completed mwcas is flagged" `Quick
      (fun () ->
        let h = History.create () in
        let c = History.invoke h ~thread:0 (Model.Registers.Mwcas [ (0, 0, 5) ]) in
        History.return h c (Model.Registers.Done true);
        let c = History.invoke h ~thread:1 (Model.Registers.Read 0) in
        History.return h c (Model.Registers.Value 0);
        check_violation "stale read" (RegCheck.check ~init:reg_init h));
    Alcotest.test_case "concurrent conflicting mwcas: one winner ok" `Quick
      (fun () ->
        let h = History.create () in
        let a = History.invoke h ~thread:0 (Model.Registers.Mwcas [ (0, 0, 5) ]) in
        let b = History.invoke h ~thread:1 (Model.Registers.Mwcas [ (0, 0, 7) ]) in
        History.return h a (Model.Registers.Done true);
        History.return h b (Model.Registers.Done false);
        check_ok "one winner" (RegCheck.check ~init:reg_init h));
    Alcotest.test_case "concurrent conflicting mwcas: two winners flagged"
      `Quick (fun () ->
        let h = History.create () in
        let a = History.invoke h ~thread:0 (Model.Registers.Mwcas [ (0, 0, 5) ]) in
        let b = History.invoke h ~thread:1 (Model.Registers.Mwcas [ (0, 0, 7) ]) in
        History.return h a (Model.Registers.Done true);
        History.return h b (Model.Registers.Done true);
        check_violation "two winners" (RegCheck.check ~init:reg_init h));
    Alcotest.test_case "pending op may be dropped or included" `Quick
      (fun () ->
        let make () =
          let h = History.create () in
          ignore
            (History.invoke h ~thread:0 (Model.Registers.Mwcas [ (0, 0, 5) ]));
          h
        in
        check_ok "plain check drops it" (RegCheck.check ~init:reg_init (make ()));
        check_ok "durable: effect persisted"
          (RegCheck.check_durable ~init:reg_init
             ~observation:[ (Model.Registers.Read 0, Model.Registers.Value 5) ]
             (make ()));
        check_ok "durable: effect lost"
          (RegCheck.check_durable ~init:reg_init
             ~observation:[ (Model.Registers.Read 0, Model.Registers.Value 0) ]
             (make ()));
        check_violation "durable: effect corrupted"
          (RegCheck.check_durable ~init:reg_init
             ~observation:[ (Model.Registers.Read 0, Model.Registers.Value 9) ]
             (make ())));
    Alcotest.test_case "durable: completed op must persist" `Quick (fun () ->
        let h = History.create () in
        let c = History.invoke h ~thread:0 (Model.Registers.Mwcas [ (0, 0, 5) ]) in
        History.return h c (Model.Registers.Done true);
        check_violation "acked but lost"
          (RegCheck.check_durable ~init:reg_init
             ~observation:[ (Model.Registers.Read 0, Model.Registers.Value 0) ]
             h));
    Alcotest.test_case "kv model semantics" `Quick (fun () ->
        let h = History.create () in
        let step op res =
          let c = History.invoke h ~thread:0 op in
          History.return h c res
        in
        step (Model.Kv.Insert (1, 10)) (Model.Kv.Bool true);
        step (Model.Kv.Insert (1, 11)) (Model.Kv.Bool false);
        step (Model.Kv.Put (1, 12)) (Model.Kv.Opt (Some 10));
        step (Model.Kv.Update (2, 5)) (Model.Kv.Bool false);
        step (Model.Kv.Find 1) (Model.Kv.Opt (Some 12));
        step (Model.Kv.Delete 1) (Model.Kv.Bool true);
        step (Model.Kv.Find 1) (Model.Kv.Opt None);
        check_ok "kv" (KvCheck.check ~init:(Model.Kv.init []) h));
    Alcotest.test_case "real-time order is respected across threads" `Quick
      (fun () ->
        (* t0's insert completes strictly before t1's find is invoked,
           so the find may not miss it. *)
        let h = History.create () in
        let c = History.invoke h ~thread:0 (Model.Kv.Insert (1, 10)) in
        History.return h c (Model.Kv.Bool true);
        let c = History.invoke h ~thread:1 (Model.Kv.Find 1) in
        History.return h c (Model.Kv.Opt None);
        check_violation "find missed acked insert"
          (KvCheck.check ~init:(Model.Kv.init []) h));
  ]

(* {1 Scenarios end to end} *)

let run_random scenario seed =
  scenario.Scenarios.run
    ~pick:(Sched.pick_of_strategy (Sched.Random seed))
    ~fuel:None ~crash:None

let scenario_tests =
  [
    Alcotest.test_case "pmwcas scenario deterministic and linearizable" `Quick
      (fun () ->
        let scenario = Scenarios.pmwcas ~threads:3 ~ops:2 ~width:2 ~addrs:4 () in
        let a = run_random scenario 1 in
        let b = run_random scenario 1 in
        check_ok "verdict" a.verdict;
        Alcotest.(check (list int))
          "deterministic schedule"
          (Array.to_list a.outcome.schedule)
          (Array.to_list b.outcome.schedule);
        Alcotest.(check int) "no pending ops" 0 a.history_pending;
        (* 2 ops x (2 reads + 1 mwcas) x 3 threads *)
        Alcotest.(check int) "history size" 18 a.history_ops);
    Alcotest.test_case "pmwcas exhaustive: 2 overlapping 2-word ops" `Quick
      (fun () ->
        (* The tentpole acceptance shape: two 2-word PMwCAS on the same
           two words, every bounded-preemption interleaving linearizable
           and every descriptor terminal (checked inside the verdict). *)
        let scenario = Scenarios.pmwcas ~threads:2 ~ops:1 ~width:2 ~addrs:2 () in
        let e, violations = Scenarios.exhaust ~preemptions:1 scenario in
        Alcotest.(check (list string))
          "no violating schedule" []
          (List.map fst violations);
        Alcotest.(check bool) "not truncated" false e.truncated;
        Alcotest.(check bool) "explored many schedules" true
          (e.schedules_run > 50));
    Alcotest.test_case "skiplist linearizable under random + pct" `Quick
      (fun () ->
        let scenario = Scenarios.skiplist ~threads:2 ~ops:4 ~keys:4 () in
        List.iter
          (fun seed ->
            let r = run_random scenario seed in
            check_ok (Printf.sprintf "random seed %d" seed) r.verdict)
          [ 1; 2; 3 ];
        let steps =
          Array.length (run_random scenario 1).outcome.schedule
        in
        List.iter
          (fun seed ->
            let r =
              scenario.Scenarios.run
                ~pick:
                  (Sched.pick_of_strategy
                     (Sched.Pct { seed; changes = 3; horizon = steps }))
                ~fuel:None ~crash:None
            in
            check_ok (Printf.sprintf "pct seed %d" seed) r.verdict)
          [ 1; 2 ]);
    Alcotest.test_case "bwtree linearizable under random + pct" `Quick
      (fun () ->
        let scenario = Scenarios.bwtree ~threads:2 ~ops:4 ~keys:4 () in
        List.iter
          (fun seed ->
            let r = run_random scenario seed in
            check_ok (Printf.sprintf "random seed %d" seed) r.verdict)
          [ 1; 2 ];
        let steps =
          Array.length (run_random scenario 1).outcome.schedule
        in
        let r =
          scenario.Scenarios.run
            ~pick:
              (Sched.pick_of_strategy
                 (Sched.Pct { seed = 5; changes = 3; horizon = steps }))
            ~fuel:None ~crash:None
        in
        check_ok "pct" r.verdict);
    Alcotest.test_case "scheduled crashes recover durably (pmwcas)" `Quick
      (fun () ->
        let scenario = Scenarios.pmwcas ~threads:2 ~ops:2 ~width:2 ~addrs:3 () in
        let full = run_random scenario 4 in
        check_ok "full run" full.verdict;
        let s = full.outcome.schedule in
        let steps = Array.length s in
        let at = ref 1 in
        while !at < steps do
          List.iter
            (fun (evict_prob, evict_seed) ->
              let r =
                scenario.Scenarios.run
                  ~pick:(Sched.pick_of_strategy (Sched.Prefix s))
                  ~fuel:None
                  ~crash:(Some Scenarios.{ at = !at; evict_prob; evict_seed })
              in
              check_ok
                (Printf.sprintf "crash at %d (evict %f/%d)" !at evict_prob
                   evict_seed)
                r.verdict)
            [ (0., 0); (0.3, 1) ];
          at := !at + 7
        done);
    Alcotest.test_case "scheduled crashes recover durably (skiplist)" `Quick
      (fun () ->
        let scenario = Scenarios.skiplist ~threads:2 ~ops:3 ~keys:4 () in
        let full = run_random scenario 2 in
        check_ok "full run" full.verdict;
        let s = full.outcome.schedule in
        let steps = Array.length s in
        let at = ref 1 in
        while !at < steps do
          let r =
            scenario.Scenarios.run
              ~pick:(Sched.pick_of_strategy (Sched.Prefix s))
              ~fuel:None
              ~crash:
                (Some Scenarios.{ at = !at; evict_prob = 0.25; evict_seed = 1 })
          in
          check_ok (Printf.sprintf "crash at %d" !at) r.verdict;
          at := !at + 31
        done);
  ]

(* {1 Recovery racing concurrent mutators (under the DST scheduler)} *)

let recovery_tests =
  [
    Alcotest.test_case "recovery is idempotent on a crash image" `Quick
      (fun () ->
        let scenario = Scenarios.pmwcas ~threads:2 ~ops:2 ~width:2 ~addrs:3 () in
        let full = run_random scenario 6 in
        let s = full.outcome.schedule in
        let at = Array.length s / 2 in
        let r =
          scenario.Scenarios.run
            ~pick:(Sched.pick_of_strategy (Sched.Prefix s))
            ~fuel:None
            ~crash:(Some Scenarios.{ at; evict_prob = 0.; evict_seed = 0 })
        in
        check_ok "first recovery" r.verdict;
        (* Recover the same image twice: the second pass must find
           nothing in flight and verify clean again. *)
        let img = Mem.crash_image r.mem in
        let stats1, errs1 = r.verify_image img in
        Alcotest.(check (list string)) "first verify clean" [] errs1;
        let stats2, errs2 = r.verify_image img in
        Alcotest.(check (list string)) "second verify clean" [] errs2;
        Alcotest.(check int) "nothing left in flight" 0
          stats2.Pmwcas.Recovery.in_flight;
        Alcotest.(check bool) "first pass saw the crash state" true
          (stats1.Pmwcas.Recovery.scanned > 0));
    Alcotest.test_case "recovery races a concurrent helper" `Quick (fun () ->
        (* Crash mid-run, then interleave single-threaded recovery with
           a reader that helps in-flight descriptors — every
           interleaving must agree on a durably linearizable state. *)
        let module Pool = Pmwcas.Pool in
        let module Op = Pmwcas.Op in
        let scenario = Scenarios.pmwcas ~threads:2 ~ops:2 ~width:2 ~addrs:3 () in
        let full = run_random scenario 8 in
        let s = full.outcome.schedule in
        let pool_words = Pool.region_words ~max_threads:3 () in
        let data_base = (pool_words + 7) / 8 * 8 in
        List.iter
          (fun at ->
            let r =
              scenario.Scenarios.run
                ~pick:(Sched.pick_of_strategy (Sched.Prefix s))
                ~fuel:None
                ~crash:(Some Scenarios.{ at; evict_prob = 0.; evict_seed = 0 })
            in
            List.iter
              (fun seed ->
                let img = Mem.hooked (Mem.crash_image r.mem) in
                let recovered = ref None in
                let recover () =
                  recovered := Some (Pmwcas.Recovery.run img ~base:0)
                in
                let helper () =
                  let pool = Pool.attach img ~base:0 in
                  let h = Pool.register pool in
                  for a = 0 to 2 do
                    ignore (Op.read_with h (data_base + a))
                  done;
                  Pool.unregister h
                in
                let out =
                  Sched.run ~mem:img
                    ~pick:(Sched.pick_of_strategy (Sched.Random seed))
                    [| recover; helper |]
                in
                Alcotest.(check bool) "completed" true out.completed;
                List.iter
                  (fun (i, e) ->
                    Alcotest.failf "fiber %d raised %s" i
                      (Printexc.to_string e))
                  out.failures;
                (match !recovered with
                | None -> Alcotest.fail "recovery never ran"
                | Some (_pool, _stats) -> ());
                (* The interleaved image must itself verify clean:
                   re-recovering finds nothing in flight and the state
                   is a durable linearization of the original history. *)
                let stats, errs = r.verify_image (Mem.crash_image img) in
                Alcotest.(check (list string))
                  (Printf.sprintf "at=%d seed=%d verifies" at seed)
                  [] errs;
                Alcotest.(check int) "nothing left in flight" 0
                  stats.Pmwcas.Recovery.in_flight)
              [ 1; 2; 3 ])
          [
            Array.length s / 4; Array.length s / 2; 3 * Array.length s / 4;
          ]);
  ]

(* {1 Cross-strategy differential replay} *)

let all_strategies : Nvram.Config.strategy list =
  [ `Paper; `NoDirty; `FewFence ]

let strategy_label s = Nvram.Config.strategy_name s

let differential_tests =
  [
    Alcotest.test_case
      "one schedule token, three strategies, all durably linearizable" `Quick
      (fun () ->
        (* Derive a schedule token from a completed run under the paper
           protocol, then replay the SAME token — full and at crash
           points — under every strategy. Each variant performs a
           different number of device operations, so the prefix maps to
           a different interleaving past its end (Prefix falls back to
           the default pick), but every replay must still be durably
           linearizable against its own history. *)
        let scenario () = Scenarios.skiplist ~threads:2 ~ops:3 ~keys:4 () in
        let token =
          Scenarios.with_strategy `Paper (fun () ->
              let sc = scenario () in
              let full = run_random sc 2 in
              check_ok "paper full run" full.verdict;
              Scenarios.shrink_token sc
                (Scenarios.encode_token ~schedule:full.outcome.schedule
                   ~crash:None))
        in
        List.iter
          (fun strat ->
            Scenarios.with_strategy strat (fun () ->
                let r = Scenarios.replay (scenario ()) token in
                check_ok (strategy_label strat ^ " full replay") r.verdict;
                List.iter
                  (fun at ->
                    let crashing =
                      Printf.sprintf "%s/c%de1p30" token at
                    in
                    let r = Scenarios.replay (scenario ()) crashing in
                    check_ok
                      (Printf.sprintf "%s crash at %d" (strategy_label strat)
                         at)
                      r.verdict)
                  [ 40; 120; 280 ]))
          all_strategies);
    Alcotest.test_case
      "sequential KV history recovers to the identical state everywhere"
      `Quick (fun () ->
        (* One thread, fixed seed: the op sequence and hence the model's
           final KV state are strategy-independent. Run it to completion
           under each strategy, recover the crash image of the finished
           run, and demand the recovered key-value contents agree across
           all three variants bit for bit. *)
        let module Pm = Skiplist.Pm in
        let threads = 1 and ops = 10 and keys = 5 in
        let align8 a = (a + 7) / 8 * 8 in
        (* Mirrors Scenarios.skiplist's region plan. *)
        let max_threads = threads + 1 in
        let heap_base =
          align8 (Pmwcas.Pool.region_words ~max_threads ())
        in
        let heap_words = 1 lsl 13 in
        let anchor = align8 (heap_base + heap_words) in
        let final_state strat =
          Scenarios.with_strategy strat (fun () ->
              let sc = Scenarios.skiplist ~threads ~ops ~keys () in
              let r = run_random sc 5 in
              check_ok (strategy_label strat ^ " sequential run") r.verdict;
              let img = Mem.crash_image r.mem in
              let palloc, _ =
                Palloc.recover img ~base:heap_base ~words:heap_words
                  ~max_threads
              in
              let pool, _ = Pmwcas.Recovery.run ~palloc img ~base:0 in
              let sl = Pm.attach ~pool ~palloc ~anchor in
              let h = Pm.register ~seed:42 sl in
              let state =
                List.init keys (fun k -> (k + 1, Pm.find h ~key:(k + 1)))
              in
              Pm.unregister h;
              state)
        in
        let reference = final_state `Paper in
        Alcotest.(check bool) "paper state is non-trivial" true
          (List.exists (fun (_, v) -> v <> None) reference);
        List.iter
          (fun strat ->
            let state = final_state strat in
            List.iter2
              (fun (k, vp) (k', v) ->
                Alcotest.(check int) "same key" k k';
                Alcotest.(check (option int))
                  (Printf.sprintf "%s key %d matches paper"
                     (strategy_label strat) k)
                  vp v)
              reference state)
          [ `NoDirty; `FewFence ]);
  ]

(* {1 Broken-helper self-test} *)

let selftest_tests =
  [
    Alcotest.test_case "sabotaged helper caught; token replays" `Quick
      (fun () ->
        match
          Scenarios.broken_helper_selftest ~seeds:[ 1; 2; 3; 4 ] ~stride:2 ()
        with
        | Ok token ->
            (* The token must be parseable and name a crash point. *)
            let _, crash = Scenarios.decode_token token in
            Alcotest.(check bool) "token has a crash point" true
              (crash <> None)
        | Error reason -> Alcotest.fail reason);
    Alcotest.test_case "immediate recycle caught; limbo protects helpers"
      `Quick (fun () ->
        (* The dual self-test: with epoch limbo bypassed, some
           interleaving must expose a helper touching a recycled
           descriptor; the same schedule must be clean when retirement
           goes through limbo. *)
        match
          Scenarios.recycle_selftest ~seeds:[ 1; 2; 3; 4; 5; 6; 7; 8 ]
            ~stride:4 ()
        with
        | Ok _token -> ()
        | Error reason -> Alcotest.fail reason);
    Alcotest.test_case "nodirty sabotage caught; flushes load-bearing" `Quick
      (fun () ->
        match
          Scenarios.broken_nodirty_selftest ~seeds:[ 1; 2; 3; 4 ] ~stride:2 ()
        with
        | Ok token ->
            let _, crash = Scenarios.decode_token token in
            Alcotest.(check bool) "token has a crash point" true
              (crash <> None)
        | Error reason -> Alcotest.fail reason);
    Alcotest.test_case "fewfence sabotage caught; commit fence load-bearing"
      `Quick (fun () ->
        match
          Scenarios.broken_fewfence_selftest ~seeds:[ 1; 2; 3; 4 ] ~stride:2
            ()
        with
        | Ok token ->
            let _, crash = Scenarios.decode_token token in
            Alcotest.(check bool) "token has a crash point" true
              (crash <> None)
        | Error reason -> Alcotest.fail reason);
  ]

let () =
  Alcotest.run "dst"
    [
      ("sched", sched_tests);
      ("tokens", token_tests);
      ("checker", checker_tests);
      ("scenarios", scenario_tests);
      ("recovery", recovery_tests);
      ("differential", differential_tests);
      ("selftest", selftest_tests);
    ]
