(* Unit and property tests for the simulated NVRAM device. *)

let mem ?(flush_delay = 0) words =
  Nvram.Mem.create (Nvram.Config.make ~flush_delay ~words ())

let expect_invalid_arg f =
  try
    ignore (f ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let flags_tests =
  let open Nvram.Flags in
  [
    Alcotest.test_case "flag bits are distinct and above payload" `Quick
      (fun () ->
        Alcotest.(check bool) "distinct" true
          (dirty <> mwcas && mwcas <> rdcss && rdcss <> mark);
        List.iter
          (fun f ->
            Alcotest.(check bool) "above payload" true (f > max_payload))
          [ dirty; mwcas; rdcss; mark ]);
    Alcotest.test_case "set/clear dirty round-trips" `Quick (fun () ->
        let v = 123456 in
        Alcotest.(check bool) "set" true (is_dirty (set_dirty v));
        Alcotest.(check int) "clear" v (clear_dirty (set_dirty v));
        Alcotest.(check int) "idempotent clear" v (clear_dirty v));
    Alcotest.test_case "payload strips protocol flags, keeps mark" `Quick
      (fun () ->
        let v = set_mark 99 in
        Alcotest.(check int) "strip" v
          (payload (set_dirty (v lor mwcas lor rdcss)));
        Alcotest.(check bool) "marked survives" true (is_marked (payload v)));
    Alcotest.test_case "is_descriptor" `Quick (fun () ->
        Alcotest.(check bool) "mwcas" true (is_descriptor (7 lor mwcas));
        Alcotest.(check bool) "rdcss" true (is_descriptor (7 lor rdcss));
        Alcotest.(check bool) "plain" false (is_descriptor (set_dirty 7)));
    Alcotest.test_case "flagged words stay non-negative" `Quick (fun () ->
        let v = max_payload lor dirty lor mwcas lor rdcss lor mark in
        Alcotest.(check bool) "non-negative" true (v >= 0));
  ]

let config_tests =
  [
    Alcotest.test_case "rejects bad parameters" `Quick (fun () ->
        expect_invalid_arg (fun () -> Nvram.Config.make ~words:0 ());
        expect_invalid_arg (fun () ->
            Nvram.Config.make ~words:8 ~line_words:3 ());
        expect_invalid_arg (fun () ->
            Nvram.Config.make ~words:8 ~line_words:0 ());
        expect_invalid_arg (fun () ->
            Nvram.Config.make ~words:8 ~flush_delay:(-1) ()));
    Alcotest.test_case "flush mode names round-trip" `Quick (fun () ->
        let open Nvram.Config in
        Alcotest.(check (option string)) "sync" (Some "sync")
          (Option.map flush_mode_name (flush_mode_of_string "sync"));
        Alcotest.(check (option string)) "async" (Some "async")
          (Option.map flush_mode_name (flush_mode_of_string "async"));
        Alcotest.(check bool) "garbage" true
          (flush_mode_of_string "bogus" = None);
        Alcotest.(check string) "default is async" "async"
          (flush_mode_name (Nvram.Config.make ~words:8 ()).flush_mode));
  ]

let mem_tests =
  let open Nvram in
  [
    Alcotest.test_case "read/write volatile only" `Quick (fun () ->
        let m = mem 64 in
        Mem.write m 3 42;
        Alcotest.(check int) "volatile" 42 (Mem.read m 3);
        Alcotest.(check int) "nvm untouched" 0 (Mem.read_persistent m 3));
    Alcotest.test_case "clwb persists the whole line" `Quick (fun () ->
        let m = mem 64 in
        Mem.write m 8 1;
        Mem.write m 9 2;
        Mem.write m 15 3;
        Mem.write m 16 4;
        (* word 16 is on the next line *)
        Mem.clwb m 9;
        Alcotest.(check int) "not durable before fence" 0
          (Mem.read_persistent m 9);
        Mem.fence m;
        Alcotest.(check int) "same line lo" 1 (Mem.read_persistent m 8);
        Alcotest.(check int) "flushed word" 2 (Mem.read_persistent m 9);
        Alcotest.(check int) "same line hi" 3 (Mem.read_persistent m 15);
        Alcotest.(check int) "other line" 0 (Mem.read_persistent m 16));
    Alcotest.test_case "cas returns witnessed value" `Quick (fun () ->
        let m = mem 8 in
        Mem.write m 0 10;
        Alcotest.(check int) "success witnesses expected" 10
          (Mem.cas m 0 ~expected:10 ~desired:11);
        Alcotest.(check int) "value swapped" 11 (Mem.read m 0);
        Alcotest.(check int) "failure witnesses current" 11
          (Mem.cas m 0 ~expected:10 ~desired:12);
        Alcotest.(check int) "value unchanged" 11 (Mem.read m 0));
    Alcotest.test_case "cas_bool" `Quick (fun () ->
        let m = mem 8 in
        Alcotest.(check bool) "ok" true (Mem.cas_bool m 0 ~expected:0 ~desired:5);
        Alcotest.(check bool) "stale" false
          (Mem.cas_bool m 0 ~expected:0 ~desired:6));
    Alcotest.test_case "bounds checking" `Quick (fun () ->
        let m = mem 8 in
        expect_invalid_arg (fun () -> Mem.read m 8);
        expect_invalid_arg (fun () -> Mem.read m (-1));
        expect_invalid_arg (fun () ->
            Mem.write m 9 0;
            0);
        expect_invalid_arg (fun () -> Mem.cas m 100 ~expected:0 ~desired:1));
    Alcotest.test_case "persist_all flushes everything" `Quick (fun () ->
        let m = mem 70 in
        for i = 0 to 69 do
          Mem.write m i (i * 2)
        done;
        Mem.persist_all m;
        for i = 0 to 69 do
          Alcotest.(check int) "word" (i * 2) (Mem.read_persistent m i)
        done);
    Alcotest.test_case "stats count flushes, fences and cas" `Quick (fun () ->
        let m = mem 64 in
        Mem.write m 0 1;
        Mem.clwb m 0;
        (* word 1 shares line 0: the second clwb coalesces into the pending
           flush instead of issuing another. *)
        Mem.clwb m 1;
        Mem.write m 8 2;
        Mem.clwb m 8;
        Mem.fence m;
        ignore (Mem.cas m 0 ~expected:1 ~desired:2);
        let s = Mem.stats m |> Stats.snapshot in
        Alcotest.(check int) "flushes" 2 s.flushes;
        Alcotest.(check int) "elided" 1 s.elided_flushes;
        Alcotest.(check int) "drained" 2 s.drained_lines;
        Alcotest.(check int) "fences" 1 s.fences;
        Alcotest.(check int) "cas" 1 s.cases;
        Stats.reset (Mem.stats m);
        let s = Mem.stats m |> Stats.snapshot in
        Alcotest.(check int) "reset" 0
          (s.flushes + s.fences + s.cases + s.elided_flushes + s.drained_lines));
    Alcotest.test_case "stats diff" `Quick (fun () ->
        let m = mem 64 in
        Mem.write m 0 1;
        Mem.clwb m 0;
        let s0 = Mem.stats m |> Stats.snapshot in
        Mem.write m 8 2;
        Mem.clwb m 8;
        Mem.clwb m 0;
        (* already pending: elided *)
        Mem.fence m;
        let s1 = Mem.stats m |> Stats.snapshot in
        let d = Stats.diff s1 s0 in
        Alcotest.(check int) "flushes" 1 d.flushes;
        Alcotest.(check int) "elided" 1 d.elided_flushes;
        Alcotest.(check int) "fences" 1 d.fences);
    Alcotest.test_case "crash image drops unflushed writes" `Quick (fun () ->
        let m = mem 64 in
        Mem.write m 0 7;
        Mem.clwb m 0;
        Mem.fence m;
        Mem.write m 0 8;
        (* dirty again, not flushed *)
        Mem.write m 32 9;
        (* never flushed *)
        let img = Mem.crash_image m in
        Alcotest.(check int) "flushed survives" 7 (Mem.read img 0);
        Alcotest.(check int) "unflushed lost" 0 (Mem.read img 32);
        Alcotest.(check int) "images agree" (Mem.read img 0)
          (Mem.read_persistent img 0));
    Alcotest.test_case "crash image with eviction keeps line granularity"
      `Quick (fun () ->
        (* With evict_prob = 1.0 every line survives with its volatile
           content, flushed or not. *)
        let m = mem 64 in
        Mem.write m 5 50;
        Mem.write m 40 41;
        let img =
          Mem.crash_image ~evict_prob:1.0 ~seed:(1) m
        in
        Alcotest.(check int) "evicted line a" 50 (Mem.read img 5);
        Alcotest.(check int) "evicted line b" 41 (Mem.read img 40));
    Alcotest.test_case "concurrent cas increments are exact" `Quick (fun () ->
        let m = mem 8 in
        let per = 2000 and workers = 4 in
        let body () =
          for _ = 1 to per do
            let rec retry () =
              let cur = Mem.read m 0 in
              if Mem.cas m 0 ~expected:cur ~desired:(cur + 1) <> cur then
                retry ()
            in
            retry ()
          done
        in
        let ds = List.init workers (fun _ -> Domain.spawn body) in
        List.iter Domain.join ds;
        Alcotest.(check int) "total" (per * workers) (Mem.read m 0));
    Alcotest.test_case "concurrent clwb races persist a current value" `Quick
      (fun () ->
        (* Writers bump word 0 and flush; after joining, a final flush must
           leave the NVM image holding the final coherent value. *)
        let m = mem 8 in
        let per = 1000 and workers = 4 in
        let body () =
          for _ = 1 to per do
            let rec retry () =
              let cur = Mem.read m 0 in
              if Mem.cas m 0 ~expected:cur ~desired:(cur + 1) <> cur then
                retry ()
            in
            retry ();
            Mem.clwb m 0
          done
        in
        let ds = List.init workers (fun _ -> Domain.spawn body) in
        List.iter Domain.join ds;
        Mem.clwb m 0;
        Mem.fence m;
        Alcotest.(check int) "final persisted" (per * workers)
          (Mem.read_persistent m 0));
    Alcotest.test_case "flush_delay does not change semantics" `Quick
      (fun () ->
        let m = mem ~flush_delay:50 16 in
        Mem.write m 2 9;
        Mem.clwb m 2;
        Mem.fence m;
        Alcotest.(check int) "persisted" 9 (Mem.read_persistent m 2));
  ]

(* --- asynchronous write-back pipeline --------------------------------- *)

let sync_mem words =
  Nvram.Mem.create
    (Nvram.Config.make ~flush_mode:Nvram.Config.Sync ~words ())

let async_tests =
  let open Nvram in
  [
    Alcotest.test_case "clwb is asynchronous, fence drains" `Quick (fun () ->
        let m = mem 64 in
        Mem.write m 0 1;
        Mem.write m 8 2;
        Mem.clwb m 0;
        Mem.clwb m 8;
        Alcotest.(check int) "line 0 pending" 0 (Mem.read_persistent m 0);
        Alcotest.(check int) "line 1 pending" 0 (Mem.read_persistent m 8);
        Mem.fence m;
        Alcotest.(check int) "line 0 drained" 1 (Mem.read_persistent m 0);
        Alcotest.(check int) "line 1 drained" 2 (Mem.read_persistent m 8));
    Alcotest.test_case "pending clwbs coalesce per line" `Quick (fun () ->
        let m = mem 64 in
        for i = 0 to 7 do
          Mem.write m i (i + 1)
        done;
        for i = 0 to 7 do
          Mem.clwb m i
        done;
        Mem.fence m;
        let s = Mem.stats m |> Stats.snapshot in
        Alcotest.(check int) "one flush" 1 s.flushes;
        Alcotest.(check int) "seven coalesced" 7 s.elided_flushes;
        Alcotest.(check int) "one drain" 1 s.drained_lines);
    Alcotest.test_case "clean lines elide the flush entirely" `Quick
      (fun () ->
        let m = mem 64 in
        Mem.write m 0 1;
        Mem.clwb m 0;
        Mem.fence m;
        Stats.reset (Mem.stats m);
        (* Nothing changed since the drain: clwb has no work to do. *)
        Mem.clwb m 0;
        Mem.fence m;
        let s = Mem.stats m |> Stats.snapshot in
        Alcotest.(check int) "no flush" 0 s.flushes;
        Alcotest.(check int) "elided" 1 s.elided_flushes;
        Alcotest.(check int) "nothing drained" 0 s.drained_lines);
    Alcotest.test_case "unfenced pending lines are lost in a crash image"
      `Quick (fun () ->
        let m = mem 64 in
        Mem.write m 0 7;
        Mem.clwb m 0;
        let img = Mem.crash_image m in
        Alcotest.(check int) "pending lost" 0 (Mem.read img 0);
        (* ...unless the eviction lottery writes them back anyway. *)
        let img = Mem.crash_image ~evict_prob:1.0 ~seed:1 m in
        Alcotest.(check int) "evicted survives" 7 (Mem.read img 0));
    Alcotest.test_case "persist_all clears the pending set" `Quick (fun () ->
        let m = mem 64 in
        Mem.write m 0 3;
        Mem.clwb m 0;
        Mem.persist_all m;
        Alcotest.(check int) "durable" 3 (Mem.read_persistent m 0);
        Stats.reset (Mem.stats m);
        Mem.fence m;
        let s = Mem.stats m |> Stats.snapshot in
        Alcotest.(check int) "nothing left to drain" 0 s.drained_lines);
    Alcotest.test_case "sync mode persists at the clwb" `Quick (fun () ->
        let m = sync_mem 64 in
        Mem.write m 0 5;
        Mem.write m 1 6;
        Mem.clwb m 0;
        Alcotest.(check int) "durable immediately" 5 (Mem.read_persistent m 0);
        Alcotest.(check int) "whole line" 6 (Mem.read_persistent m 1);
        Mem.clwb m 1;
        Mem.fence m;
        let s = Mem.stats m |> Stats.snapshot in
        Alcotest.(check int) "every clwb flushes" 2 s.flushes;
        Alcotest.(check int) "never elides" 0 s.elided_flushes;
        Alcotest.(check int) "never drains" 0 s.drained_lines);
    Alcotest.test_case "fence burns crash fuel" `Quick (fun () ->
        let m = mem 64 in
        Mem.write m 0 1;
        Mem.clwb m 0;
        Mem.inject_crash_after m 0;
        (try
           Mem.fence m;
           Alcotest.fail "expected Crash"
         with Mem.Crash -> ());
        Mem.disarm m;
        (* The crash landed at the fence boundary: the drain never ran. *)
        Alcotest.(check int) "pending line lost" 0 (Mem.read_persistent m 0);
        Mem.fence m;
        Alcotest.(check int) "drains after disarm" 1 (Mem.read_persistent m 0));
    Alcotest.test_case "concurrent clwb/fence storm stays coherent" `Quick
      (fun () ->
        let m = mem 64 in
        let per = 2000 and workers = 4 in
        let body seed () =
          let rng = Random.State.make [| seed |] in
          for _ = 1 to per do
            let a = Random.State.int rng 64 in
            let rec retry () =
              let cur = Mem.read m a in
              if Mem.cas m a ~expected:cur ~desired:(cur + 1) <> cur then
                retry ()
            in
            retry ();
            Mem.clwb m a;
            if Random.State.int rng 8 = 0 then Mem.fence m
          done
        in
        let ds = List.init workers (fun s -> Domain.spawn (body s)) in
        List.iter Domain.join ds;
        Mem.fence m;
        let total = ref 0 and durable = ref 0 in
        for a = 0 to 63 do
          total := !total + Mem.read m a;
          durable := !durable + Mem.read_persistent m a
        done;
        Alcotest.(check int) "every increment landed" (per * workers) !total;
        Alcotest.(check int) "final fence drained everything" !total !durable);
  ]

let injector_tests =
  let open Nvram in
  [
    Alcotest.test_case "steps count mutating operations only" `Quick
      (fun () ->
        let m = mem 64 in
        Alcotest.(check int) "fresh" 0 (Mem.steps m);
        Mem.write m 0 1;
        ignore (Mem.cas m 1 ~expected:0 ~desired:2);
        Mem.clwb m 0;
        ignore (Mem.read m 0);
        ignore (Mem.read_persistent m 0);
        Alcotest.(check int) "write+cas+clwb" 3 (Mem.steps m);
        (* A fence is a mutating operation too: it drains pending lines, so
           the injector must be able to land a crash on it. *)
        Mem.fence m;
        Alcotest.(check int) "+fence" 4 (Mem.steps m));
    Alcotest.test_case "fuel n allows exactly n operations" `Quick (fun () ->
        let m = mem 64 in
        Mem.inject_crash_after m 3;
        Alcotest.(check (option int)) "armed" (Some 3) (Mem.fuel_remaining m);
        Mem.write m 0 1;
        Mem.write m 1 2;
        Mem.write m 2 3;
        Alcotest.(check (option int)) "spent" (Some 0) (Mem.fuel_remaining m);
        (try
           Mem.write m 3 4;
           Alcotest.fail "expected Crash"
         with Mem.Crash -> ());
        Alcotest.(check int) "word not written" 0 (Mem.read m 3));
    Alcotest.test_case "exhausted fuel stays clamped at zero" `Quick
      (fun () ->
        (* Regression: the old [fetch_and_add (-1)] let exhausted fuel keep
           decrementing, eventually wrapping past min_int. Every op after
           exhaustion must keep crashing and the gauge must stay at 0. *)
        let m = mem 64 in
        Mem.inject_crash_after m 0;
        for _ = 1 to 100 do
          try
            Mem.write m 0 9;
            Alcotest.fail "expected Crash"
          with Mem.Crash -> ()
        done;
        Alcotest.(check (option int)) "still zero" (Some 0)
          (Mem.fuel_remaining m);
        Mem.disarm m;
        Mem.write m 0 9;
        Alcotest.(check int) "writable after disarm" 9 (Mem.read m 0));
    Alcotest.test_case "negative fuel is rejected" `Quick (fun () ->
        let m = mem 64 in
        expect_invalid_arg (fun () ->
            Mem.inject_crash_after m (-1);
            0));
    Alcotest.test_case "disarm wins a race with concurrent spenders" `Quick
      (fun () ->
        (* Regression: a domain that had passed the armed check could
           decrement after [disarm] reset the counter to max_int,
           re-arming the injector at max_int - 1. After disarm + join the
           injector must always read as off. *)
        for round = 1 to 200 do
          let m = mem 64 in
          Mem.inject_crash_after m (round mod 7);
          let writer =
            Domain.spawn (fun () ->
                try
                  for i = 0 to 63 do
                    Mem.write m i i
                  done
                with Mem.Crash -> ())
          in
          Mem.disarm m;
          Domain.join writer;
          Alcotest.(check (option int))
            (Printf.sprintf "round %d disarmed" round)
            None (Mem.fuel_remaining m);
          (* And the device must still be usable. *)
          Mem.write m 0 round
        done);
    Alcotest.test_case "phase register defaults to App and round-trips"
      `Quick (fun () ->
        let m = mem 64 in
        let st = Mem.stats m in
        Alcotest.(check string) "default" "app"
          (Stats.phase_name (Stats.current_phase st));
        List.iter
          (fun p ->
            Stats.set_phase st p;
            Alcotest.(check string) "roundtrip" (Stats.phase_name p)
              (Stats.phase_name (Stats.current_phase st)))
          Stats.all_phases;
        Stats.set_phase st Stats.App);
    Alcotest.test_case "phase register is per-domain" `Quick (fun () ->
        let m = mem 64 in
        let st = Mem.stats m in
        Stats.set_phase st Stats.Decide;
        let other =
          Domain.spawn (fun () -> Stats.phase_name (Stats.current_phase st))
        in
        Alcotest.(check string) "other domain sees its own default" "app"
          (Domain.join other);
        Alcotest.(check string) "ours untouched" "decide"
          (Stats.phase_name (Stats.current_phase st));
        Stats.set_phase st Stats.App);
    Alcotest.test_case "injected crash freezes the phase register" `Quick
      (fun () ->
        let m = mem 64 in
        let st = Mem.stats m in
        Mem.inject_crash_after m 0;
        (try
           Stats.set_phase st Stats.Apply;
           Mem.write m 0 1;
           Alcotest.fail "expected Crash"
         with Mem.Crash -> ());
        Alcotest.(check string) "frozen" "apply"
          (Stats.phase_name (Stats.current_phase st));
        Mem.disarm m;
        Stats.set_phase st Stats.App);
  ]

let region_tests =
  let open Nvram in
  [
    Alcotest.test_case "sequential carving" `Quick (fun () ->
        let m = mem 64 in
        let r = Region.create m in
        let a = Region.alloc r 10 in
        let b = Region.alloc r 5 in
        Alcotest.(check int) "first" 0 a;
        Alcotest.(check int) "second" 10 b;
        Alcotest.(check int) "used" 15 (Region.used r);
        Alcotest.(check int) "remaining" 49 (Region.remaining r));
    Alcotest.test_case "line alignment" `Quick (fun () ->
        let m = mem 64 in
        let r = Region.create m in
        let _ = Region.alloc r 3 in
        let b = Region.alloc_line_aligned r 4 in
        Alcotest.(check int) "aligned" 8 b);
    Alcotest.test_case "base offset respected" `Quick (fun () ->
        let m = mem 64 in
        let r = Region.create ~base:16 m in
        Alcotest.(check int) "first" 16 (Region.alloc r 4));
    Alcotest.test_case "exhaustion raises" `Quick (fun () ->
        let m = mem 16 in
        let r = Region.create m in
        let _ = Region.alloc r 16 in
        expect_invalid_arg (fun () -> Region.alloc r 1);
        expect_invalid_arg (fun () -> Region.alloc r 0));
  ]

(* Property: whatever interleaving of writes and flushes happened, every
   word of a crash image holds a value that was stored to that word at some
   point (no invention, no tearing). *)
let prop_crash_values_were_written =
  QCheck.Test.make ~count:200
    ~name:"crash image only contains previously written values"
    QCheck.(pair (list (pair (int_bound 15) (int_bound 1000))) (int_bound 100))
    (fun (ops, seed) ->
      let m = mem 16 in
      let written = Array.make 16 [ 0 ] in
      List.iteri
        (fun i (a, v) ->
          Nvram.Mem.write m a v;
          written.(a) <- v :: written.(a);
          if i mod 3 = 0 then Nvram.Mem.clwb m a)
        ops;
      let img =
        Nvram.Mem.crash_image ~evict_prob:0.5
          ~seed:(seed)
          m
      in
      let ok = ref true in
      for a = 0 to 15 do
        if not (List.mem (Nvram.Mem.read img a) written.(a)) then ok := false
      done;
      !ok)

let prop_flushed_state_survives =
  QCheck.Test.make ~count:200 ~name:"persist_all implies full survival"
    QCheck.(list (pair (int_bound 15) (int_bound 1000)))
    (fun ops ->
      let m = mem 16 in
      List.iter (fun (a, v) -> Nvram.Mem.write m a v) ops;
      Nvram.Mem.persist_all m;
      let img = Nvram.Mem.crash_image m in
      List.for_all
        (fun (a, _) -> Nvram.Mem.read img a = Nvram.Mem.read m a)
        ops)

let () =
  Alcotest.run "nvram"
    [
      ("flags", flags_tests);
      ("config", config_tests);
      ("mem", mem_tests);
      ("async", async_tests);
      ("injector", injector_tests);
      ("region", region_tests);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_crash_values_were_written; prop_flushed_state_survives ] );
    ]
