(* Tests for the pluggable memory backends (simulated NVRAM / DRAM /
   traced) and the offline persistence-order checker. *)

module Mem = Nvram.Mem
module Trace = Nvram.Trace
module Checker = Nvram.Checker
module Flags = Nvram.Flags
module Pool = Pmwcas.Pool
module Op = Pmwcas.Op

let sim ?(line_words = 8) words =
  Mem.create (Nvram.Config.make ~line_words ~words ())

let dram ?(line_words = 8) words =
  Mem.create_dram (Nvram.Config.make ~line_words ~words ())

let expect_invalid_arg f =
  try
    ignore (f ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* --- DRAM backend semantics ------------------------------------------- *)

let dram_tests =
  [
    Alcotest.test_case "read/write/cas, one coherent array" `Quick (fun () ->
        let m = dram 64 in
        Alcotest.(check bool) "not durable" false (Mem.durable m);
        Alcotest.(check bool) "kind" true (Mem.kind m = `Dram);
        Mem.write m 3 42;
        Alcotest.(check int) "read" 42 (Mem.read m 3);
        Alcotest.(check int) "persistent view = volatile" 42
          (Mem.read_persistent m 3);
        Alcotest.(check int) "cas witnesses" 42
          (Mem.cas m 3 ~expected:42 ~desired:7);
        Alcotest.(check int) "cas applied" 7 (Mem.read m 3);
        Alcotest.(check bool) "cas_bool failure" false
          (Mem.cas_bool m 3 ~expected:42 ~desired:9);
        Alcotest.(check int) "unchanged" 7 (Mem.read m 3));
    Alcotest.test_case "flush machinery is a free no-op" `Quick (fun () ->
        let m = dram 64 in
        Mem.write m 0 1;
        Mem.clwb m 0;
        Mem.clwb_range m ~lo:0 ~hi:63;
        Mem.fence m;
        Mem.persist_all m;
        Mem.disarm m;
        Alcotest.(check int) "value intact" 1 (Mem.read m 0);
        expect_invalid_arg (fun () -> Mem.clwb m 64));
    Alcotest.test_case "no crash injection, zeroed crash image" `Quick
      (fun () ->
        let m = dram 64 in
        Mem.write m 5 99;
        expect_invalid_arg (fun () -> Mem.inject_crash_after m 10);
        let img = Mem.crash_image m in
        Alcotest.(check int) "image is fresh" 0 (Mem.read img 5);
        Alcotest.(check int) "original untouched" 99 (Mem.read m 5));
  ]

(* --- backend equivalence ---------------------------------------------- *)

(* The same deterministic PMwCAS workload must produce the same logical
   values on every backend: persistence is invisible to the volatile
   semantics. *)
let data = 4096
let accounts = 16

let run_workload ?persistent mem =
  let pool = Pool.create ?persistent mem ~base:0 ~max_threads:1 in
  for i = 0 to accounts - 1 do
    Mem.write mem (data + i) 1000
  done;
  Mem.persist_all mem;
  let h = Pool.register pool in
  let rng = Random.State.make [| 1234 |] in
  for _ = 1 to 300 do
    let i = Random.State.int rng accounts in
    let j = (i + 1 + Random.State.int rng (accounts - 1)) mod accounts in
    let vi = Op.read_with h (data + i) and vj = Op.read_with h (data + j) in
    let d = Pool.alloc_desc h in
    Pool.add_word d ~addr:(data + i) ~expected:vi ~desired:(vi - 1);
    Pool.add_word d ~addr:(data + j) ~expected:vj ~desired:(vj + 1);
    ignore (Op.execute d)
  done;
  Array.init accounts (fun i -> Op.read_with h (data + i))

let equivalence_tests =
  [
    Alcotest.test_case "sim-persistent = sim-volatile = dram" `Quick
      (fun () ->
        let words = 8192 in
        let a = run_workload (sim words) in
        let volatile_sim = run_workload ~persistent:false (sim words) in
        let c = run_workload (dram words) in
        Alcotest.(check (array int)) "sim = dram" a c;
        Alcotest.(check (array int)) "sim = volatile sim" a volatile_sim;
        Alcotest.(check int) "conserved" (accounts * 1000)
          (Array.fold_left ( + ) 0 a));
    Alcotest.test_case "persistent pool rejects volatile backend" `Quick
      (fun () ->
        let m = dram 8192 in
        expect_invalid_arg (fun () ->
            Pool.create ~persistent:true m ~base:0 ~max_threads:1);
        expect_invalid_arg (fun () ->
            Palloc.create ~persistent:true m ~base:4096 ~words:2048
              ~max_threads:1));
  ]

(* --- clwb_range boundaries -------------------------------------------- *)

let clwb_range_tests =
  [
    Alcotest.test_case "line coverage at the edges" `Quick (fun () ->
        let check_range ~lo ~hi expect_lines =
          let m = sim 64 in
          for i = 0 to 63 do
            Mem.write m i (i + 1)
          done;
          Mem.clwb_range m ~lo ~hi;
          Mem.fence m;
          for i = 0 to 63 do
            let expected =
              if List.mem (i / 8) expect_lines then i + 1 else 0
            in
            Alcotest.(check int)
              (Printf.sprintf "lo=%d hi=%d word %d" lo hi i)
              expected
              (Mem.read_persistent m i)
          done
        in
        check_range ~lo:10 ~hi:10 [ 1 ];
        (* same line, unaligned ends *)
        check_range ~lo:9 ~hi:14 [ 1 ];
        (* spans three lines *)
        check_range ~lo:7 ~hi:17 [ 0; 1; 2 ];
        (* hi on the last word of the device *)
        check_range ~lo:56 ~hi:63 [ 7 ];
        check_range ~lo:0 ~hi:63 [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
    Alcotest.test_case "rejects out-of-bounds endpoints" `Quick (fun () ->
        let m = sim 64 in
        expect_invalid_arg (fun () -> Mem.clwb_range m ~lo:(-1) ~hi:8);
        expect_invalid_arg (fun () -> Mem.clwb_range m ~lo:0 ~hi:64));
  ]

(* --- tracing backend --------------------------------------------------- *)

let trace_tests =
  [
    Alcotest.test_case "records every op with increasing stamps" `Quick
      (fun () ->
        let m = Mem.traced (sim 64) in
        let tr = Option.get (Mem.trace m) in
        Mem.write m 1 10;
        Alcotest.(check int) "read through" 10 (Mem.read m 1);
        ignore (Mem.cas m 1 ~expected:10 ~desired:11);
        Mem.clwb m 1;
        Mem.fence m;
        let evs = Trace.events tr in
        Alcotest.(check int) "five events" 5 (Array.length evs);
        Array.iteri
          (fun i (e : Trace.event) ->
            Alcotest.(check int) "dense stamps" i e.seq)
          evs;
        (match evs.(2).op with
        | Trace.Cas { addr = 1; expected = 10; desired = 11; witnessed = 10 }
          ->
            ()
        | _ -> Alcotest.fail "third event should be the CAS");
        Alcotest.(check int) "length" 5 (Trace.length tr);
        Trace.clear tr;
        Alcotest.(check int) "cleared" 0 (Trace.length tr));
    Alcotest.test_case "traced image and double-trace" `Quick (fun () ->
        let m = Mem.traced (sim 64) in
        expect_invalid_arg (fun () -> Mem.traced m);
        Mem.write m 1 5;
        Mem.clwb m 1;
        Mem.fence m;
        let img = Mem.crash_image m in
        Alcotest.(check bool) "image untraced" true (Mem.trace img = None);
        Alcotest.(check int) "image holds flushed value" 5 (Mem.read img 1));
    Alcotest.test_case "untraced device has no trace" `Quick (fun () ->
        Alcotest.(check bool) "none" true (Mem.trace (sim 64) = None));
  ]

(* --- crash image determinism ------------------------------------------ *)

let crash_image_tests =
  [
    Alcotest.test_case "same seed, same image" `Quick (fun () ->
        let m = sim 512 in
        for i = 0 to 511 do
          Mem.write m i (i * 3)
        done;
        (* leave everything unflushed so eviction sampling matters *)
        let dump img = Array.init 512 (Mem.read_persistent img) in
        let a = dump (Mem.crash_image ~evict_prob:0.5 ~seed:42 m) in
        let b = dump (Mem.crash_image ~evict_prob:0.5 ~seed:42 m) in
        let c = dump (Mem.crash_image ~evict_prob:0.5 ~seed:43 m) in
        Alcotest.(check (array int)) "deterministic" a b;
        Alcotest.(check bool) "seed matters" true (a <> c);
        Alcotest.(check bool) "some lines evicted" true
          (Array.exists (fun v -> v <> 0) a));
    Alcotest.test_case "eviction without a seed is rejected" `Quick (fun () ->
        let m = sim 64 in
        expect_invalid_arg (fun () ->
            ignore (Mem.crash_image ~evict_prob:0.5 m));
        (* no eviction needs no seed *)
        ignore (Mem.crash_image m);
        ignore (Mem.crash_image ~evict_prob:0. m));
  ]

(* --- checker ----------------------------------------------------------- *)

(* A traced multi-domain transfer workload; returns the pool (for the
   geometry) with its trace attached. *)
let traced_workload ~domains ~ops =
  let mem = Mem.traced (sim 32768) in
  let pool = Pool.create mem ~base:0 ~max_threads:domains in
  let base = 16384 in
  for i = 0 to accounts - 1 do
    Mem.write mem (base + i) 1000
  done;
  Mem.persist_all mem;
  let worker seed () =
    let h = Pool.register pool in
    let rng = Random.State.make [| seed |] in
    for _ = 1 to ops do
      let i = Random.State.int rng accounts in
      let j = (i + 1 + Random.State.int rng (accounts - 1)) mod accounts in
      let vi = Op.read_with h (base + i) and vj = Op.read_with h (base + j) in
      let d = Pool.alloc_desc h in
      Pool.add_word d ~addr:(base + i) ~expected:vi ~desired:(vi - 1);
      Pool.add_word d ~addr:(base + j) ~expected:vj ~desired:(vj + 1);
      ignore (Op.execute d)
    done;
    Pool.unregister h
  in
  List.init domains (fun s -> Domain.spawn (worker (s + 1)))
  |> List.iter Domain.join;
  pool

let hand_protocol =
  {
    Checker.words = 64;
    line_words = 8;
    max_words = 4;
    async_flush = false;
    flit = false;
    strategy = `Paper;
    is_status_addr = (fun _ -> false);
    is_desc_addr = (fun a -> a < 8);
    slot_of_status = Fun.id;
    count_addr = (fun s -> s + 1);
    entry_fields = (fun _ _ -> (0, 0, 0));
    desc_ptr = Fun.id;
    status_undecided = 1;
    status_succeeded = 2;
    status_failed = 3;
    status_free = 0;
  }

let checker_tests =
  [
    Alcotest.test_case "multi-domain PMwCAS run is clean" `Quick (fun () ->
        let pool = traced_workload ~domains:3 ~ops:150 in
        let r = Harness.Trace_check.check pool in
        Alcotest.(check bool) "ok" true (Checker.ok r);
        Alcotest.(check bool) "saw decisions" true (r.decided > 0);
        Alcotest.(check bool) "saw recycling" true (r.recycled > 0);
        Alcotest.(check bool) "events flowed" true (r.events > 1000));
    Alcotest.test_case "a skipped data flush is detected" `Quick (fun () ->
        let pool = traced_workload ~domains:2 ~ops:100 in
        let tr = Option.get (Mem.trace (Pool.mem pool)) in
        let evs = Trace.events tr in
        (* Drop every write-back of the data region: phase-1 descriptor
           pointers are then never durable when the status is decided. *)
        let sabotaged =
          Array.of_seq
            (Seq.filter
               (fun (e : Trace.event) ->
                 match e.op with
                 | Trace.Clwb { addr } -> addr < 16384
                 | _ -> true)
               (Array.to_seq evs))
        in
        let p = Harness.Trace_check.protocol pool in
        let r = Checker.run p sabotaged in
        Alcotest.(check bool) "violations found" false (Checker.ok r);
        let mentions_phase1 =
          List.exists
            (fun (v : Checker.violation) ->
              let re = Str.regexp_string "before the phase-1" in
              try
                ignore (Str.search_forward re v.message 0);
                true
              with Not_found -> false)
            r.violations
        in
        Alcotest.(check bool) "decide-after-persist fired" true
          mentions_phase1);
    Alcotest.test_case "deleting the drain fences is detected" `Quick
      (fun () ->
        let pool = traced_workload ~domains:2 ~ops:100 in
        let tr = Option.get (Mem.trace (Pool.mem pool)) in
        let evs = Trace.events tr in
        let p = Harness.Trace_check.protocol pool in
        (* The device defaults to the async write-back model, where a
           clwb only marks its line pending and the fence is what makes
           it durable. *)
        Alcotest.(check bool) "async protocol" true p.Checker.async_flush;
        Alcotest.(check bool) "untouched trace is clean" true
          (Checker.ok (Checker.run p evs));
        (* Drop every fence: no clwb ever drains, so nothing the
           protocol ordered ever becomes durable and the persistence
           rules must fire. *)
        let sabotaged =
          Array.of_seq
            (Seq.filter
               (fun (e : Trace.event) ->
                 match e.op with Trace.Fence -> false | _ -> true)
               (Array.to_seq evs))
        in
        let r = Checker.run p sabotaged in
        Alcotest.(check bool) "violations found" false (Checker.ok r));
    Alcotest.test_case "dirty read obliges a flush before CAS" `Quick
      (fun () ->
        let ev seq op = { Trace.seq; domain = 1; op } in
        let dirty = Flags.set_dirty 7 in
        let bad =
          [|
            ev 0 (Trace.Write { addr = 10; value = dirty });
            ev 1 (Trace.Read { addr = 10; value = dirty });
            ev 2 (Trace.Cas { addr = 12; expected = 0; desired = 5; witnessed = 0 });
          |]
        in
        let r = Checker.run hand_protocol bad in
        Alcotest.(check int) "one violation" 1 (List.length r.violations);
        let good =
          [|
            ev 0 (Trace.Write { addr = 10; value = dirty });
            ev 1 (Trace.Read { addr = 10; value = dirty });
            ev 2 (Trace.Clwb { addr = 10 });
            ev 3 (Trace.Cas { addr = 12; expected = 0; desired = 5; witnessed = 0 });
          |]
        in
        Alcotest.(check bool) "flush discharges" true
          (Checker.ok (Checker.run hand_protocol good));
        (* descriptor-area reads are exempt (helping reads the pool) *)
        let desc =
          [|
            ev 0 (Trace.Write { addr = 3; value = dirty });
            ev 1 (Trace.Read { addr = 3; value = dirty });
            ev 2 (Trace.Cas { addr = 12; expected = 0; desired = 5; witnessed = 0 });
          |]
        in
        Alcotest.(check bool) "desc read exempt" true
          (Checker.ok (Checker.run hand_protocol desc)));
    Alcotest.test_case "replay divergence is reported" `Quick (fun () ->
        let ev seq op = { Trace.seq; domain = 1; op } in
        let r =
          Checker.run hand_protocol
            [| ev 0 (Trace.Read { addr = 10; value = 99 }) |]
        in
        Alcotest.(check bool) "not ok" false (Checker.ok r));
  ]

(* --- sharded stats ----------------------------------------------------- *)

let stats_tests =
  [
    Alcotest.test_case "per-domain shards merge on read" `Quick (fun () ->
        let m = sim 64 in
        let per_domain = 500 in
        List.init 4 (fun _ ->
            Domain.spawn (fun () ->
                for i = 0 to per_domain - 1 do
                  ignore (Mem.cas m (i mod 64) ~expected:0 ~desired:0);
                  Mem.clwb m (i mod 64);
                  Mem.fence m
                done))
        |> List.iter Domain.join;
        let s = Nvram.Stats.snapshot (Mem.stats m) in
        Alcotest.(check int) "cases" (4 * per_domain) s.cases;
        (* Under async flushing a clwb either issues (flush) or coalesces /
           elides on a clean line; the attempts are conserved. *)
        Alcotest.(check int) "clwb attempts" (4 * per_domain)
          (s.flushes + s.elided_flushes);
        Alcotest.(check int) "fences" (4 * per_domain) s.fences);
  ]

let () =
  Alcotest.run "backend"
    [
      ("dram", dram_tests);
      ("equivalence", equivalence_tests);
      ("clwb_range", clwb_range_tests);
      ("trace", trace_tests);
      ("crash_image", crash_image_tests);
      ("checker", checker_tests);
      ("stats", stats_tests);
    ]
