.PHONY: all check test slow bench sweep dst clean

all:
	dune build

check:
	sh scripts/check.sh

test:
	dune runtest

# Slow tier: deep DST enumerations and dense scheduled-crash sweeps.
slow:
	dune build @slow

# Writes the registry snapshot + per-experiment rows alongside the
# human-readable tables.
bench:
	dune exec bench/main.exe -- all --metrics BENCH_$$(date +%F).json

# Full crash-point sweep across every suite (~1200 points), plus the
# sabotage self-test that proves the sweeper can see a broken protocol.
sweep:
	dune exec bin/pmwcas_cli.exe -- crash-sweep --budget 300 --seeds 2
	dune exec bin/pmwcas_cli.exe -- crash-sweep --suite bank --budget 200 \
	  --seeds 1 --sabotage

# Deterministic-scheduling smoke: random + PCT + a tiny exhaustive
# enumeration, then the broken-helper self-test (the DST stack must
# catch a sabotaged persist-before-decide flush and print a replayable
# token).
dst:
	dune exec bin/pmwcas_cli.exe -- dst --strategy random --seeds 5
	dune exec bin/pmwcas_cli.exe -- dst --strategy pct --seeds 3
	dune exec bin/pmwcas_cli.exe -- dst --strategy exhaustive --threads 2 \
	  --ops 1 --addrs 2 --preemptions 1
	dune exec bin/pmwcas_cli.exe -- dst --broken-helper

clean:
	dune clean
