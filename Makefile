.PHONY: all check test bench clean

all:
	dune build

check:
	sh scripts/check.sh

test:
	dune runtest

bench:
	dune exec bench/main.exe -- all

clean:
	dune clean
