.PHONY: all check test bench sweep clean

all:
	dune build

check:
	sh scripts/check.sh

test:
	dune runtest

# Writes the registry snapshot + per-experiment rows alongside the
# human-readable tables.
bench:
	dune exec bench/main.exe -- all --metrics BENCH_$$(date +%F).json

# Full crash-point sweep across every suite (~1200 points), plus the
# sabotage self-test that proves the sweeper can see a broken protocol.
sweep:
	dune exec bin/pmwcas_cli.exe -- crash-sweep --budget 300 --seeds 2
	dune exec bin/pmwcas_cli.exe -- crash-sweep --suite bank --budget 200 \
	  --seeds 1 --sabotage

clean:
	dune clean
