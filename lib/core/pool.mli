(** Descriptor pool and descriptor lifecycle (Sections 2.2, 5.1, 5.2).

    The pool lives in a dedicated NVRAM region at an application-defined
    base so recovery can find every in-flight PMwCAS after a crash. Slots
    cycle through

    {v Free -> Undecided -> (Succeeded | Failed) -> Free v}

    with the durability order that makes recovery sound:

    - [alloc_desc] durably moves the slot to [Undecided] {e before} any
      word is added, so memory reserved into the descriptor is always
      reachable from a descriptor that recovery will process (and roll
      back, freeing the reservation);
    - [reserve_entry] durably persists the entry and count {e before}
      returning the delivery address, closing the leak window of
      Section 5.2;
    - plain [add_word] entries are persisted in bulk when [Op.execute]
      seals the descriptor — one flush for the common case;
    - recycling defers through the epoch manager and durably returns the
      slot to [Free] before it can be reused, so recovery never
      misinterprets a stale descriptor.

    A pool created with [persistent:false] runs the identical code with
    every flush and dirty bit elided — the volatile MwCAS of Harris et
    al., used by the paper (and our benchmarks) as the baseline. *)

type t
type handle
type descriptor

type sharing = [ `Per_domain | `Shared ]
(** Volatile free-slot organization (the durable format is identical):

    - [`Per_domain] (default): each partition keeps an owner-local free
      list (plain loads/stores — the contention-free common case) plus an
      atomic inbox that receives remote recycles and overflow and that
      other domains steal from.
    - [`Shared]: the pre-refactor shared-pool organization, kept as a
      measurable baseline (bench [b3]): allocation scans the descriptor
      array for a durably Free slot (BzTree's [pmwcas_alloc] shape) and
      claims it through one shared per-slot bitmap, so every domain
      contends on the same structure and walks past limbo-parked slots. *)

type entry = {
  addr : int;
  old_value : int;
  new_value : int;
  policy : Layout.policy;
}

type callback = succeeded:bool -> entry array -> int list
(** Finalize callback: replaces the default per-word policy handling when
    attached to a descriptor (Section 5.2) and returns the block addresses
    to release — the pool frees them with the same crash-safe ordering as
    the built-in policies (durably freed before the slot is, recyclable
    only after; replay-tolerant during recovery). Multi-block structures
    (e.g. whole Bw-tree delta chains) release their memory this way.
    Any other side effect of the callback must be idempotent: a crash
    during recycling replays it on recovery. Identified by registration
    index, not address, so it survives restarts — register callbacks in
    the same order on every start. *)

(** {1 Construction} *)

val magic : int
(** First header word of every formatted pool — what forensic scanners
    look for when walking a crash image for descriptor pools. *)

val region_words :
  ?line_words:int ->
  ?max_words:int ->
  ?descs_per_thread:int ->
  max_threads:int ->
  unit ->
  int
(** NVRAM words needed for a pool with these parameters. [line_words]
    (default 8) must match the device the pool will live on — slot
    strides are line-aligned, so sizing against the wrong line width
    under-reserves on devices with longer lines. *)

val create :
  ?persistent:bool ->
  ?sharing:sharing ->
  ?max_words:int ->
  ?descs_per_thread:int ->
  ?palloc:Palloc.t ->
  Nvram.Mem.t ->
  base:int ->
  max_threads:int ->
  t
(** Format a fresh pool at [base] (line-aligned). [max_words] (default 8)
    bounds words per PMwCAS; [descs_per_thread] (default 32) sizes each
    thread's partition; [palloc] enables the recycle policies that free
    memory. [persistent] defaults to [Mem.durable mem]: flushes are
    elided automatically on a volatile (DRAM) backend, and requesting
    [persistent:true] on one raises [Invalid_argument]. *)

val attach : ?palloc:Palloc.t -> ?sharing:sharing
  -> ?callbacks:callback list -> Nvram.Mem.t -> base:int -> t
(** Re-open an already formatted pool (typically inside a crash image,
    before running [Recovery.run]). Callbacks are re-registered in order.
    Every header field is validated — a corrupt [nslots], [max_words] or
    [max_threads], or a pool that would overrun the device, fails with a
    ["Pool.attach: corrupt header (...)"] message naming the field.
    @raise Failure on bad magic or a corrupt header.
    @raise Invalid_argument on a non-durable backend. *)

(** {1 Threads} *)

val register : t -> handle
(** Claim a partition + epoch slot for the calling domain. One handle per
    domain; handles are not thread-safe. *)

val unregister : handle -> unit
(** Release the partition. Any slots still in the owner's local list are
    handed back to the partition's stealable inbox first. *)

val with_epoch : handle -> (unit -> 'a) -> 'a
val guard : handle -> Epoch.guard
val pool_of_handle : handle -> t

val handle_part : handle -> int
(** Partition index this handle owns — callers that shard a companion
    structure (e.g. {!Palloc} arenas) use it as the affinity key. *)

(** {1 Descriptor lifecycle (the paper's API, Section 2.2)} *)

val alloc_desc : ?callback:int -> handle -> descriptor
(** [AllocateDescriptor]: take a slot from this domain's pool — local
    list, then inbox, then stealing a peer inbox, then forcing epoch
    reclamation — and durably mark it [Undecided]. @raise Failure when
    the pool is truly exhausted, with a diagnostic reporting per-domain
    occupancy and limbo depth. *)

val add_word :
  ?policy:Layout.policy -> descriptor -> addr:int -> expected:int
  -> desired:int -> unit
(** [AddWord]. Values must be clean payloads (no flag bits).
    @raise Invalid_argument on duplicate address, full descriptor, flagged
    values, or a descriptor already executed/discarded. *)

val reserve_entry :
  ?policy:Layout.policy -> descriptor -> addr:int -> expected:int
  -> Nvram.Mem.addr
(** [ReserveEntry]: like [add_word] with the new value left open; returns
    the NVRAM address of the entry's [new_value] field, to be passed as
    [dest] to {!Palloc.alloc}. The entry and count are durable on return. *)

val remove_word : descriptor -> addr:int -> unit
(** [RemoveWord]. @raise Invalid_argument if the address was never added
    or the descriptor contains reserved entries (removing around an
    in-flight reservation cannot be made crash-atomic). *)

val discard : descriptor -> unit
(** [Discard]: cancel before execution. Reserved memory is released
    according to the failure side of each entry's policy. The slot is
    durably freed and immediately reusable (it was never visible). *)

val word_count : descriptor -> int

(** {1 Introspection} *)

val mem : t -> Nvram.Mem.t
val layout : t -> Layout.t
val persistent : t -> bool
val palloc : t -> Palloc.t option
val epoch : t -> Epoch.t
val metrics : t -> Metrics.t
val max_threads : t -> int
val sharing : t -> sharing

val free_slots : t -> int
(** Currently recycled-and-available slots across all partitions (racy
    snapshot; exact when quiescent). O(1) under [`Per_domain] — each
    partition maintains length counters on push/pop; the [`Shared]
    baseline keeps the O(nslots) walk it exists to measure. *)

val limbo_depth : t -> int
(** Descriptors retired by [finish] whose epoch-deferred recycle has not
    run yet (racy snapshot; exact when quiescent). *)

val register_callback : t -> callback -> int
(** Returns the index to pass as [alloc_desc ?callback]. Call during
    single-threaded startup. *)

val desc_status : t -> slot:int -> int
(** Clean status value of the slot at address [slot] (tests, recovery). *)

val slot_owner_domain : t -> slot:int -> int
(** Domain id of the registered owner of the slot's home partition, or
    -1 when unregistered or under the [`Shared] baseline. Racy snapshot;
    the flight recorder labels help-chain edges with it. *)

(**/**)

(** Internal interface for [Op] and [Recovery]. *)

val set_sabotage_immediate_recycle : bool -> unit
(** DST self-test knob: make [finish] recycle the slot immediately
    instead of parking it in epoch limbo, re-creating the
    use-after-reuse race the limbo protocol prevents. Never set outside
    tests and the CLI. *)

val desc_slot : descriptor -> int
val desc_handle : descriptor -> handle
val desc_pool : descriptor -> t
val desc_live : descriptor -> bool
val seal : descriptor -> unit
val finish : descriptor -> succeeded:bool -> unit
val free_value : t -> int -> unit
val callback_fn : t -> int -> callback option
val read_entry : t -> slot:int -> k:int -> entry

val finalize_slot :
  ?during_recovery:bool -> t -> slot:int -> succeeded:bool -> unit
(** Apply the slot's callback or recycle policies and durably return it to
    [Free]. Crash-safe ordering: frees become durable before the slot
    does, and blocks only become reusable afterwards. With
    [during_recovery:true], frees that already happened before the crash
    are tolerated (replay). Used by the owner's deferred recycle and by
    [Recovery]. *)
