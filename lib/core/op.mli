(** The PMwCAS operation itself (Algorithms 2 and 3 of the paper).

    Two-phase, cooperative and lock-free:

    - {b Phase 1} installs a pointer to the descriptor in every target
      word in address order, each through an RDCSS (install a
      word-descriptor pointer, then promote it to a full-descriptor
      pointer only while the status is still [Undecided]);
    - {b precommit} persists every installed target word, then durably
      flips the status to [Succeeded] or [Failed] — the commit point that
      recovery rolls forward or back from;
    - {b Phase 2} replaces descriptor pointers with the new values
      (success) or the old values (failure), persisting each.

    Any thread that bumps into a descriptor pointer — through [read] or
    its own Phase 1 — helps the owning operation to completion first, so
    no thread ever blocks on another. *)

val execute : Pool.descriptor -> bool
(** Run the PMwCAS described by the descriptor. Returns [true] iff all
    target words were atomically updated (durably so, for a persistent
    pool). The descriptor is consumed either way: its memory policies are
    applied and its slot is recycled through the epoch manager.
    Executes inside the owner's epoch; callers need no bracketing. *)

val read : Pool.t -> Nvram.Mem.addr -> int
(** [pmwcas_read]: read a word that may be a PMwCAS target. Helps any
    in-progress operation it encounters, persists dirty values, and
    returns a clean value (the [mark] bit, if any, is preserved).
    Must be called inside an epoch ({!Pool.with_epoch}) — the help path
    dereferences descriptors. *)

val read_with : Pool.handle -> Nvram.Mem.addr -> int
(** [read] wrapped in the handle's epoch — convenient, slightly slower
    than batching several reads under one {!Pool.with_epoch}. *)

val read_weak : Pool.t -> Nvram.Mem.addr -> int
(** Journey read for the traversal phase of destination-only
    persistence ([Nvram.Flit]): resolves descriptor pointers exactly
    like {!read}, but returns a dirty plain value with the bit stripped
    {e without} flushing it — no clwb, no fence. The caller must treat
    the result as volatile guidance only: before the critical phase
    depends on any word, pass it through [Pcas.persist_target] (or cover
    the node with [Pcas.persist_range]). Must be called inside an
    epoch. *)

val help : Pool.t -> slot:int -> bool
(** Drive the PMwCAS whose descriptor sits at [slot] to completion
    (exposed for tests; [read] and [execute] call it internally).
    Must be called inside an epoch. *)

(**/**)

val sabotaging_skip_precommit_flush : unit -> bool
(** Current state of the knob (for save/restore around calibration). *)

val set_sabotage_skip_precommit_flush : bool -> unit
(** Debug knob for the crash-sweep self-test: when set, [help] skips the
    precommit flushes, breaking the durability ordering the protocol
    relies on. {!Harness.Crash_sweep} must detect the resulting
    durable-prefix violations — if it does not, the sweeper is broken.
    Global and racy by design; never set outside tests and the CLI. *)
