(** Persistent single-word CAS (Algorithm 1 of the paper).

    The flush-on-read principle made cheap: every store sets the dirty
    bit; any reader that sees a dirty word writes the line back and clears
    the bit before using the value, so a value can never be depended upon
    before it is durable, and a durable value is never flushed twice.

    Under the [`NoDirty] strategy ([Nvram.Config.strategy] of the
    device) the dirty bit is never set: every store is installed clean
    and written back unconditionally by its writer, so readers pay no
    dirty-clear CAS and [persist] degenerates to clwb + fence.

    Words managed by this protocol must never hold descriptor pointers —
    that is [Op]'s territory. Payloads are limited to
    [Nvram.Flags.address_mask]. *)

val strategy : Nvram.Mem.t -> Nvram.Config.strategy
(** The device's commit-protocol strategy ([Mem.config]). *)

val read : Nvram.Mem.t -> Nvram.Mem.addr -> int
(** [pcas_read]: load; if dirty, persist the line and clear the bit.
    Returns the clean value. *)

val persist : Nvram.Mem.t -> Nvram.Mem.addr -> int -> unit
(** [persist mem a v]: write the line back (clwb + fence, so it is
    durable even under the async flush model), then clear [v]'s dirty bit
    with a CAS (a no-op if the word moved on — the new writer's own
    protocol covers it). Safe to call with a clean [v]. *)

val persist_batch :
  ?fence:bool -> Nvram.Mem.t -> (Nvram.Mem.addr * int) list -> unit
(** Persist several words with a single drain: clwb each word (the device
    coalesces words sharing a cache line), issue {e one} fence, then
    clear each dirty bit. Equivalent to [persist] on every pair but pays
    one stall per distinct line instead of one per word. No-op on [].
    [~fence:false] enqueues the write-backs and clears the dirty bits
    without draining anything — the [--broken-fewfence] sabotage shape,
    never to be used outside the self-tests. *)

val persist_range : Nvram.Mem.t -> lo:Nvram.Mem.addr -> hi:Nvram.Mem.addr -> unit
(** Destination pass over a node body: write back every cache line
    intersecting [\[lo, hi\]] (inclusive), eliding — with
    [Nvram.Flit.enabled] — lines whose words are all [Mem.persisted]
    (their tracked stores already issued write-backs). Counts each line
    as a [Flit] elision or destination flush. Falls back to
    [Mem.clwb_range] with the mode off. No fence: like the plain range
    flush, durability comes from the caller's next fence (for index
    nodes, the PMwCAS precommit fence before the decide point). *)

val persist_target : Nvram.Mem.t -> Nvram.Mem.addr -> unit
(** Destination pass over one PMwCAS target word: persist its current
    value (dirty payloads via {!persist}, in-flight tracked stores via
    [flit_flush] + fence) or count an elision when it is already
    durable. Call before the critical phase with the flit mode on. *)

val cas : Nvram.Mem.t -> Nvram.Mem.addr -> expected:int -> desired:int -> bool
(** Persistent CAS: ensures the current value is durable (flush-on-read),
    then attempts to install [desired] with the dirty bit set. [expected]
    and [desired] are clean values. The new value becomes durable when
    next read through [read] (or via [flush]). *)

val cas_durable :
  Nvram.Mem.t -> Nvram.Mem.addr -> expected:int -> desired:int -> bool
(** [cas] followed by an immediate flush of the installed value — for
    callers that need durability before returning (e.g. commit points). *)

val write : Nvram.Mem.t -> Nvram.Mem.addr -> int -> unit
(** Store [v] with the dirty bit set (for single-owner initialization
    paths that still want crash-correct reads through [read]). *)

val flush : Nvram.Mem.t -> Nvram.Mem.addr -> unit
(** Make the word's current value durable if it is dirty. *)
