(** Descriptor geometry and status encoding (Figure 2 of the paper).

    A descriptor pool is a contiguous NVRAM region: one header line
    followed by fixed-size, cache-line-aligned descriptor slots. Each slot
    holds a status word, the entry count, a finalize-callback index and up
    to [max_words] word descriptors of four words each
    ([address; old_value; new_value; policy]).

    The paper's word descriptors carry a back-pointer to their containing
    descriptor; with fixed slot geometry the back-pointer is implicit —
    [desc_of_wd] recovers it arithmetically. *)

type t = private {
  pool_base : int;  (** Header line address. *)
  slots_base : int;  (** First slot address. *)
  nslots : int;
  max_words : int;  (** Word-descriptor capacity per slot. *)
  slot_words : int;  (** Slot stride, line-aligned. *)
}

val make :
  line_words:int -> pool_base:int -> nslots:int -> max_words:int -> t

val header_words : int
(** Words in the pool header (magic, nslots, max_words, max_threads). *)

val max_words_limit : int
(** Upper bound [make] accepts for [max_words]; attach-time header
    validation checks against the same constant. *)

val region_words : t -> int
(** Total NVRAM words the pool occupies (header + slots). *)

(** {1 Status values} (stored in the slot's first word; the dirty bit may
    additionally be set while the status update is unflushed) *)

val status_free : int
val status_undecided : int
val status_succeeded : int
val status_failed : int

(** {1 Per-slot addresses} *)

val slot_off : t -> int -> int
(** Address of slot [i]'s status word. *)

val status_addr : int -> int
val count_addr : int -> int
val callback_addr : int -> int

val entry_addr : t -> int -> int -> int
(** [entry_addr t slot k] — address of word descriptor [k] of the slot at
    [slot] (its [address] field; [old]/[new]/[policy] follow). *)

val addr_field : int -> int
val old_field : int -> int
val new_field : int -> int
val policy_field : int -> int
(** Field addresses within a word descriptor given its base address. *)

(** {1 Pointer encoding in target words} *)

val desc_ptr : int -> int
(** Full-descriptor pointer with [mwcas] and [dirty] flags set — the value
    installed in target words during Phase 1. *)

val desc_of_ptr : int -> int
(** Slot address from a target-word value with the [mwcas] flag. *)

val wd_ptr : t -> slot:int -> k:int -> int
(** RDCSS word-descriptor pointer (with the [rdcss] flag). *)

val wd_of_ptr : t -> int -> int * int
(** [(slot, k)] from a target-word value with the [rdcss] flag.
    @raise Invalid_argument if the payload is not a word-descriptor
    address of this pool. *)

val slot_index : t -> int -> int
(** Index of the slot at a given slot address. *)

(** {1 Recycle policies} (Table 1) *)

type policy = None_ | Free_one | Free_new_on_failure | Free_old_on_success

val policy_to_int : policy -> int
val policy_of_int : int -> policy
val pp_policy : Format.formatter -> policy -> unit
