type t = {
  pool_base : int;
  slots_base : int;
  nslots : int;
  max_words : int;
  slot_words : int;
}

let header_words = 4 (* magic, nslots, max_words, max_threads *)
let max_words_limit = 32

let make ~line_words ~pool_base ~nslots ~max_words =
  if nslots <= 0 then invalid_arg "Layout.make: nslots <= 0";
  if max_words <= 0 || max_words > max_words_limit then
    invalid_arg "Layout.make: max_words out of range";
  let align a = (a + line_words - 1) / line_words * line_words in
  if pool_base <> align pool_base then
    invalid_arg "Layout.make: pool_base must be line-aligned";
  let slots_base = align (pool_base + header_words) in
  let slot_words = align (3 + (4 * max_words)) in
  { pool_base; slots_base; nslots; max_words; slot_words }

let region_words t = t.slots_base - t.pool_base + (t.nslots * t.slot_words)
let status_free = 0
let status_undecided = 1
let status_succeeded = 2
let status_failed = 3

let slot_off t i =
  if i < 0 || i >= t.nslots then invalid_arg "Layout.slot_off: bad index";
  t.slots_base + (i * t.slot_words)

let status_addr slot = slot
let count_addr slot = slot + 1
let callback_addr slot = slot + 2

let entry_addr t slot k =
  if k < 0 || k >= t.max_words then invalid_arg "Layout.entry_addr: bad k";
  slot + 3 + (4 * k)

let addr_field e = e
let old_field e = e + 1
let new_field e = e + 2
let policy_field e = e + 3
let desc_ptr slot = slot lor Nvram.Flags.mwcas lor Nvram.Flags.dirty
let desc_of_ptr v = Nvram.Flags.payload v land lnot Nvram.Flags.mark

let wd_ptr t ~slot ~k = entry_addr t slot k lor Nvram.Flags.rdcss

let wd_of_ptr t v =
  let a = Nvram.Flags.payload v in
  let rel = a - t.slots_base in
  if rel < 0 then invalid_arg "Layout.wd_of_ptr: below pool";
  let i = rel / t.slot_words and off = rel mod t.slot_words in
  if i >= t.nslots || off < 3 || (off - 3) mod 4 <> 0 then
    invalid_arg "Layout.wd_of_ptr: not a word-descriptor address";
  let k = (off - 3) / 4 in
  if k >= t.max_words then invalid_arg "Layout.wd_of_ptr: entry out of range";
  (t.slots_base + (i * t.slot_words), k)

let slot_index t slot =
  let rel = slot - t.slots_base in
  if rel < 0 || rel mod t.slot_words <> 0 || rel / t.slot_words >= t.nslots
  then invalid_arg "Layout.slot_index: not a slot address";
  rel / t.slot_words

type policy = None_ | Free_one | Free_new_on_failure | Free_old_on_success

let policy_to_int = function
  | None_ -> 0
  | Free_one -> 1
  | Free_new_on_failure -> 2
  | Free_old_on_success -> 3

let policy_of_int = function
  | 0 -> None_
  | 1 -> Free_one
  | 2 -> Free_new_on_failure
  | 3 -> Free_old_on_success
  | n -> invalid_arg (Printf.sprintf "Layout.policy_of_int: %d" n)

let pp_policy ppf p =
  Format.pp_print_string ppf
    (match p with
    | None_ -> "None"
    | Free_one -> "FreeOne"
    | Free_new_on_failure -> "FreeNewOnFailure"
    | Free_old_on_success -> "FreeOldOnSuccess")
