module Mem = Nvram.Mem
module Flags = Nvram.Flags
module Stats = Nvram.Stats

let magic = 0x93_19_ca_50

type entry = {
  addr : int;
  old_value : int;
  new_value : int;
  policy : Layout.policy;
}

type callback = succeeded:bool -> entry array -> int list

(* Volatile free-slot bookkeeping for one partition (one domain). The
   [local] list is touched only by the owning domain — plain mutable
   fields, no atomics, so the common recycle/alloc cycle is
   contention-free. Remote frees (orphaned epoch garbage draining on a
   different domain) and overflow past [local_cap] land in the atomic
   [inbox], which is also what other domains steal from. *)
type dpool = {
  mutable local : int list;
  mutable local_len : int;
  inbox : int list Atomic.t;
  inbox_len : int Atomic.t;
  limbo : int Atomic.t; (* retired via the epoch, not yet recycled *)
  owner : int Atomic.t; (* Domain id of the registered owner; -1 *)
}

(* Pre-refactor organization, kept as a measurable baseline (bench `b3`):
   one shared pool where allocation scans the descriptor array for a
   durably Free slot (the BzTree [pmwcas_alloc] shape) and claims it via
   a per-slot volatile bit. Every domain contends on the same bitmap and
   walks past every limbo-parked slot. *)
type shared = {
  claim : bool Atomic.t array; (* per slot *)
  s_limbo : int Atomic.t;
  mutable cursors : int array; (* per partition scan start *)
}

type org = Per_domain of dpool array | Shared of shared
type sharing = [ `Per_domain | `Shared ]

type t = {
  mem : Mem.t;
  lay : Layout.t;
  persistent : bool;
  palloc : Palloc.t option;
  epoch : Epoch.t;
  metrics : Metrics.t;
  org : org;
  claimed : bool Atomic.t array; (* handle registration, per partition *)
  mutable callbacks : callback array;
  descs_per_thread : int;
  max_threads : int;
  local_cap : int;
}

type handle = {
  pool : t;
  hguard : Epoch.guard;
  part : int;
  mutable hlive : bool;
}

type descriptor = {
  dpool : t;
  hdl : handle;
  slot : int;
  mutable dlive : bool;
  mutable nentries : int;
  mutable has_reserved : bool;
}

let default_max_words = 8
let default_descs_per_thread = 32

(* Bound on slots a domain keeps in its private list; recycles beyond it
   overflow to the stealable inbox, so an idle domain can strand at most
   this many slots from its peers. *)
let default_local_cap = 8

let region_words ?(line_words = 8) ?(max_words = default_max_words)
    ?(descs_per_thread = default_descs_per_thread) ~max_threads () =
  let lay =
    Layout.make ~line_words ~pool_base:0
      ~nslots:(max_threads * descs_per_thread)
      ~max_words
  in
  Layout.region_words lay

let clwb_if t a = if t.persistent then Mem.clwb t.mem a
let clwb_range_if t ~lo ~hi = if t.persistent then Mem.clwb_range t.mem ~lo ~hi
let fence_if t = if t.persistent then Mem.fence t.mem

(* Flush every line of the slot that holds live content — the header
   fields plus entries 0..count-1 — and drain them with one fence, so
   the whole descriptor costs a single stall per distinct line. *)
let persist_desc t ~slot ~count =
  if t.persistent then begin
    Mem.clwb_range t.mem ~lo:slot ~hi:(slot + 2 + (4 * count));
    Mem.fence t.mem
  end

(* --- free-slot bookkeeping ------------------------------------------ *)

let self_id () = (Domain.self () :> int)

let inbox_push d slot =
  let rec go () =
    let cur = Atomic.get d.inbox in
    if not (Atomic.compare_and_set d.inbox cur (slot :: cur)) then go ()
  in
  go ();
  ignore (Atomic.fetch_and_add d.inbox_len 1)

let inbox_pop d =
  let rec go () =
    match Atomic.get d.inbox with
    | [] -> None
    | s :: rest as cur ->
        if Atomic.compare_and_set d.inbox cur rest then begin
          ignore (Atomic.fetch_and_add d.inbox_len (-1));
          Some s
        end
        else go ()
  in
  go ()

(* Owner-only: take the whole inbox in one exchange. *)
let inbox_drain d =
  match Atomic.exchange d.inbox [] with
  | [] -> []
  | l ->
      ignore (Atomic.fetch_and_add d.inbox_len (-List.length l));
      l

(* The partition a slot address belongs to — slots are carved per
   partition in contiguous runs of [descs_per_thread]. Recycles always
   route here (not to the finishing handle's partition): a stolen slot
   finished by another domain must flow back to its home inbox, where the
   home owner (or a future stealer) can reach it — otherwise slots would
   migrate into the stealer's private local list and strand there when
   that domain goes idle. *)
let home_part t slot = Layout.slot_index t.lay slot / t.descs_per_thread

(* Return [slot] to partition [part]. Runs on the owner's domain in the
   common case (the owner's own reclaim executes its deferred recycles),
   where it is two plain stores; recycles of stolen slots, orphaned
   recycles running elsewhere, and overflow past [local_cap], publish
   through the inbox. *)
let push_slot t part slot =
  match t.org with
  | Shared sh -> Atomic.set sh.claim.(Layout.slot_index t.lay slot) false
  | Per_domain parts ->
      let d = parts.(part) in
      if Atomic.get d.owner = self_id () && d.local_len < t.local_cap then begin
        d.local <- slot :: d.local;
        d.local_len <- d.local_len + 1
      end
      else inbox_push d slot

(* Owner-only fast path: private list first, then drain the inbox. *)
let pop_own t part =
  match t.org with
  | Shared _ -> None
  | Per_domain parts -> (
      let d = parts.(part) in
      match d.local with
      | s :: rest ->
          d.local <- rest;
          d.local_len <- d.local_len - 1;
          Metrics.record_desc_local t.metrics;
          Some s
      | [] -> (
          match inbox_drain d with
          | [] -> None
          | s :: rest ->
              d.local <- rest;
              d.local_len <- List.length rest;
              Metrics.record_desc_remote t.metrics;
              Some s))

let steal t ~not_from =
  match t.org with
  | Shared _ -> None
  | Per_domain parts ->
      let rec go i =
        if i >= t.max_threads then None
        else if i <> not_from then
          match inbox_pop parts.(i) with
          | Some s ->
              Metrics.record_desc_remote t.metrics;
              Some s
          | None -> go (i + 1)
        else go (i + 1)
      in
      go 0

let distribute_slots t =
  match t.org with
  | Shared sh ->
      Array.iter (fun c -> Atomic.set c false) sh.claim;
      sh.cursors <- Array.init t.max_threads (fun p -> p * t.descs_per_thread)
  | Per_domain parts ->
      for part = 0 to t.max_threads - 1 do
        let slots =
          List.init t.descs_per_thread (fun j ->
              Layout.slot_off t.lay ((part * t.descs_per_thread) + j))
        in
        let d = parts.(part) in
        d.local <- [];
        d.local_len <- 0;
        Atomic.set d.inbox slots;
        Atomic.set d.inbox_len (List.length slots)
      done

let build ?palloc ~persistent ~sharing mem lay ~descs_per_thread ~max_threads =
  let org =
    match sharing with
    | `Per_domain ->
        Per_domain
          (Array.init max_threads (fun _ ->
               {
                 local = [];
                 local_len = 0;
                 inbox = Atomic.make [];
                 inbox_len = Atomic.make 0;
                 limbo = Atomic.make 0;
                 owner = Atomic.make (-1);
               }))
    | `Shared ->
        Shared
          {
            claim = Array.init lay.Layout.nslots (fun _ -> Atomic.make false);
            s_limbo = Atomic.make 0;
            cursors = Array.make max_threads 0;
          }
  in
  {
    mem;
    lay;
    persistent;
    palloc;
    epoch = Epoch.create ~slots:(max 128 (2 * max_threads)) ();
    metrics = Metrics.create ();
    org;
    claimed = Array.init max_threads (fun _ -> Atomic.make false);
    callbacks = [||];
    descs_per_thread;
    max_threads;
    local_cap = min default_local_cap descs_per_thread;
  }

let create ?persistent ?(sharing = `Per_domain) ?(max_words = default_max_words)
    ?(descs_per_thread = default_descs_per_thread) ?palloc mem ~base
    ~max_threads =
  let persistent = Option.value persistent ~default:(Mem.durable mem) in
  if persistent && not (Mem.durable mem) then
    invalid_arg "Pool.create: persistent pool requires a durable backend";
  if max_threads <= 0 then invalid_arg "Pool.create: max_threads <= 0";
  if descs_per_thread <= 0 then invalid_arg "Pool.create: descs_per_thread";
  let nslots = max_threads * descs_per_thread in
  let lay =
    Layout.make
      ~line_words:(Mem.config mem).line_words
      ~pool_base:base ~nslots ~max_words
  in
  if base + Layout.region_words lay > Mem.size mem then
    invalid_arg "Pool.create: pool does not fit in the device";
  let t =
    build ?palloc ~persistent ~sharing mem lay ~descs_per_thread ~max_threads
  in
  Mem.write mem base magic;
  Mem.write mem (base + 1) nslots;
  Mem.write mem (base + 2) max_words;
  Mem.write mem (base + 3) max_threads;
  (* Four header words: on devices with lines shorter than the header a
     single clwb of [base] would leave the tail words volatile-only. *)
  clwb_range_if t ~lo:base ~hi:(base + Layout.header_words - 1);
  for i = 0 to nslots - 1 do
    let slot = Layout.slot_off lay i in
    Mem.write mem (Layout.status_addr slot) Layout.status_free;
    Mem.write mem (Layout.count_addr slot) 0;
    clwb_range_if t ~lo:slot ~hi:(Layout.count_addr slot)
  done;
  (* One drain for the header and every slot line enqueued above. *)
  fence_if t;
  distribute_slots t;
  t

let attach ?palloc ?(sharing = `Per_domain) ?(callbacks = []) mem ~base =
  if not (Mem.durable mem) then
    invalid_arg "Pool.attach: requires a durable backend";
  if Mem.read mem base <> magic then failwith "Pool.attach: bad magic";
  let nslots = Mem.read mem (base + 1) in
  let max_words = Mem.read mem (base + 2) in
  let max_threads = Mem.read mem (base + 3) in
  (* Validate every header field here, before geometry construction: a
     corrupt word must surface as a recognizable attach failure, not as
     [Layout.make]'s generic [Invalid_argument] (or worse, as a plausible
     layout scanning the wrong addresses). *)
  let corrupt what =
    failwith (Printf.sprintf "Pool.attach: corrupt header (%s)" what)
  in
  if nslots <= 0 then corrupt (Printf.sprintf "nslots %d" nslots);
  if max_threads <= 0 then corrupt (Printf.sprintf "max_threads %d" max_threads);
  if nslots mod max_threads <> 0 then
    corrupt
      (Printf.sprintf "nslots %d not divisible by max_threads %d" nslots
         max_threads);
  if max_words <= 0 || max_words > Layout.max_words_limit then
    corrupt (Printf.sprintf "max_words %d out of range" max_words);
  let lay =
    Layout.make
      ~line_words:(Mem.config mem).line_words
      ~pool_base:base ~nslots ~max_words
  in
  if base + Layout.region_words lay > Mem.size mem then
    corrupt
      (Printf.sprintf "pool of %d words exceeds the device"
         (Layout.region_words lay));
  let t =
    build ?palloc ~persistent:true ~sharing mem lay
      ~descs_per_thread:(nslots / max_threads) ~max_threads
  in
  t.callbacks <- Array.of_list callbacks;
  (* Ownership transfer: every slot — free or still in flight — is
     re-owned by its home partition's volatile pool. [Recovery.run]
     finalizes the in-flight ones; until it does, allocation cannot hand
     them out because [alloc_desc] only pops what recycling pushed (and,
     in shared mode, the status scan skips non-Free slots). *)
  distribute_slots t;
  t

let mem t = t.mem
let layout t = t.lay
let persistent t = t.persistent
let palloc t = t.palloc
let epoch t = t.epoch
let metrics t = t.metrics
let max_threads t = t.max_threads
let sharing t : sharing = match t.org with Per_domain _ -> `Per_domain | Shared _ -> `Shared

(* O(1) under per-domain pools: each partition maintains its own length
   counters on push/pop. The shared baseline keeps the pre-refactor O(n)
   behaviour it exists to measure. *)
let free_slots t =
  match t.org with
  | Per_domain parts ->
      Array.fold_left
        (fun acc d -> acc + d.local_len + Atomic.get d.inbox_len)
        0 parts
  | Shared sh ->
      let n = ref 0 in
      for i = 0 to t.lay.nslots - 1 do
        if not (Atomic.get sh.claim.(i)) then incr n
      done;
      !n

let limbo_depth t =
  match t.org with
  | Per_domain parts ->
      Array.fold_left (fun acc d -> acc + Atomic.get d.limbo) 0 parts
  | Shared sh -> Atomic.get sh.s_limbo

let register_callback t fn =
  t.callbacks <- Array.append t.callbacks [| fn |];
  Array.length t.callbacks

let callback_fn t id =
  if id = 0 then None
  else if id <= Array.length t.callbacks then Some t.callbacks.(id - 1)
  else invalid_arg "Pool: unregistered callback id"

let register t =
  let rec claim i =
    if i >= t.max_threads then failwith "Pool.register: no free partitions"
    else if Atomic.compare_and_set t.claimed.(i) false true then i
    else claim (i + 1)
  in
  let part = claim 0 in
  (match t.org with
  | Per_domain parts -> Atomic.set parts.(part).owner (self_id ())
  | Shared _ -> ());
  { pool = t; hguard = Epoch.register t.epoch; part; hlive = true }

let check_handle h = if not h.hlive then invalid_arg "Pool: handle unregistered"

let unregister h =
  check_handle h;
  h.hlive <- false;
  Epoch.unregister h.hguard;
  (match h.pool.org with
  | Per_domain parts ->
      (* Hand the private list back to the stealable inbox before giving
         the partition up, so no slot is stranded behind a dead owner. *)
      let d = parts.(h.part) in
      Atomic.set d.owner (-1);
      let l = d.local in
      d.local <- [];
      d.local_len <- 0;
      List.iter (inbox_push d) l
  | Shared _ -> ());
  Atomic.set h.pool.claimed.(h.part) false

let guard h = h.hguard
let pool_of_handle h = h.pool
let handle_part h = h.part

let with_epoch h fn =
  check_handle h;
  Epoch.with_guard h.hguard fn

let status_census t =
  let free = ref 0 and undec = ref 0 and succ = ref 0 and fail = ref 0 in
  for i = 0 to t.lay.nslots - 1 do
    let s =
      Flags.clear_dirty
        (Mem.read t.mem (Layout.status_addr (Layout.slot_off t.lay i)))
    in
    if s = Layout.status_free then incr free
    else if s = Layout.status_undecided then incr undec
    else if s = Layout.status_succeeded then incr succ
    else incr fail
  done;
  (!free, !undec, !succ, !fail)

(* Satellite of the per-domain refactor: exhaustion used to be a bare
   [failwith]; under partitioned pools "no slot" has several distinct
   causes (limbo backlog, a peer hoarding, true undersizing) that the
   message must distinguish. *)
let exhausted t =
  let sfree, sundec, ssucc, sfail = status_census t in
  let parts_s =
    match t.org with
    | Shared sh ->
        Printf.sprintf "shared: claimed=%d limbo=%d"
          (Array.fold_left
             (fun acc c -> if Atomic.get c then acc + 1 else acc)
             0 sh.claim)
          (Atomic.get sh.s_limbo)
    | Per_domain parts ->
        String.concat " "
          (List.init t.max_threads (fun i ->
               let d = parts.(i) in
               Printf.sprintf "p%d%s:free=%d+%d,limbo=%d" i
                 (if Atomic.get t.claimed.(i) then "*" else "")
                 d.local_len (Atomic.get d.inbox_len) (Atomic.get d.limbo)))
  in
  failwith
    (Printf.sprintf
       "Pool.alloc_desc: descriptor pool exhausted: nslots=%d free=%d \
        limbo=%d statuses[free=%d undecided=%d succeeded=%d failed=%d] [%s]"
       t.lay.nslots (free_slots t) (limbo_depth t) sfree sundec ssucc sfail
       parts_s)

(* Shared-baseline allocation: walk the descriptor array from this
   partition's cursor looking for a durably Free slot, claiming via the
   volatile per-slot bit (cleared only after the durable Free, so a won
   claim implies a Free slot). Cost scales with claimed + limbo-parked
   slots — the behaviour the per-domain pools remove. *)
let scan_claim t sh part =
  let n = t.lay.nslots in
  let start = sh.cursors.(part) in
  let rec go k =
    if k >= n then None
    else begin
      let i = (start + k) mod n in
      Metrics.record_desc_scan t.metrics;
      let slot = Layout.slot_off t.lay i in
      if
        Flags.clear_dirty (Mem.read t.mem (Layout.status_addr slot))
        = Layout.status_free
        && Atomic.compare_and_set sh.claim.(i) false true
      then begin
        sh.cursors.(part) <- (i + 1) mod n;
        Some slot
      end
      else go (k + 1)
    end
  in
  go 0

let take_slot h =
  let t = h.pool in
  let pop () =
    match t.org with
    | Shared sh -> scan_claim t sh h.part
    | Per_domain _ -> (
        match pop_own t h.part with
        | Some s -> Some s
        | None -> steal t ~not_from:h.part)
  in
  let rec attempt tries =
    match pop () with
    | Some s -> s
    | None ->
        if tries = 0 then exhausted t
        else begin
          (* Recycling is epoch-deferred: advance, drain, and give a
             pinned (possibly preempted) peer a chance to move on. *)
          Metrics.record_alloc_retry t.metrics;
          ignore (Epoch.advance t.epoch);
          ignore (Epoch.reclaim h.hguard);
          Domain.cpu_relax ();
          attempt (tries - 1)
        end
  in
  attempt 262144

let alloc_desc ?(callback = 0) h =
  check_handle h;
  let t = h.pool in
  if callback < 0 || callback > Array.length t.callbacks then
    invalid_arg "Pool.alloc_desc: unregistered callback";
  let slot = take_slot h in
  (* Durably enter Undecided with a zero count before any entry exists:
     recovery will then always process memory reserved into this slot.
     Order matters even though one flush covers the whole header line --
     a cache eviction can persist the line between any two stores, and a
     snapshot showing Undecided next to the previous incarnation's count
     and entries would make recovery roll back stale entries (and free
     live memory). Writing the count first keeps every intermediate
     snapshot either Free (skipped) or Undecided-with-zero-entries
     (harmless). *)
  Mem.write t.mem (Layout.count_addr slot) 0;
  Mem.write t.mem (Layout.callback_addr slot) callback;
  (* On devices whose lines are shorter than the three header words the
     count/callback tail must be durable before the status line: were the
     status flushed first, a crash in between would persist Undecided next
     to the previous incarnation's callback id. With the common >= 4-word
     line this branch vanishes and the whole header costs one flush. *)
  let lw = (Mem.config t.mem).line_words in
  if t.persistent && Layout.callback_addr slot / lw <> slot / lw then begin
    Mem.clwb_range t.mem ~lo:(Layout.count_addr slot)
      ~hi:(Layout.callback_addr slot);
    (* Drain before the status store executes: an async clwb alone does
       not order the tail ahead of a later eviction of the status line. *)
    Mem.fence t.mem
  end;
  Mem.write t.mem (Layout.status_addr slot) Layout.status_undecided;
  (* With destination-only persistence the header flush rides [seal]'s
     [persist_desc]: nothing durable references the slot before the seal
     fence (installs only start after [execute] seals), and the
     store-order above keeps every eviction snapshot either Free or
     Undecided-with-zero-count. Reservations still need a durably
     Undecided slot earlier — [reserve_entry] persists the whole
     descriptor itself in this mode. *)
  if t.persistent && Nvram.Flit.enabled () then
    Nvram.Flit.record_elided ~addr:(Layout.status_addr slot)
      ~line:(Layout.status_addr slot / (Mem.config t.mem).line_words)
  else begin
    clwb_if t slot;
    (* One drain for the whole header: the slot is durably Undecided (with
       a zero count) before the caller can reserve memory into it. *)
    fence_if t
  end;
  if Flight.tracing () then Flight.emit Flight.Desc_alloc slot 0 0;
  { dpool = t; hdl = h; slot; dlive = true; nentries = 0; has_reserved = false }

let check_desc d = if not d.dlive then invalid_arg "Pool: descriptor not live"

let check_value ~what v =
  if v land Flags.address_mask <> v then
    invalid_arg (Printf.sprintf "Pool: %s carries flag bits" what)

let entry_base d k = Layout.entry_addr d.dpool.lay d.slot k

let find_entry d a =
  let t = d.dpool in
  let rec go k =
    if k >= d.nentries then None
    else if Mem.read t.mem (Layout.addr_field (entry_base d k)) = a then Some k
    else go (k + 1)
  in
  go 0

let write_entry d k ~addr ~expected ~desired ~policy =
  let t = d.dpool in
  let e = entry_base d k in
  Mem.write t.mem (Layout.addr_field e) addr;
  Mem.write t.mem (Layout.old_field e) expected;
  Mem.write t.mem (Layout.new_field e) desired;
  Mem.write t.mem (Layout.policy_field e) (Layout.policy_to_int policy)

let append_entry ?(policy = Layout.None_) d ~addr ~expected ~desired =
  check_desc d;
  let t = d.dpool in
  if addr < 0 || addr >= Mem.size t.mem then
    invalid_arg "Pool.add_word: address out of bounds";
  check_value ~what:"expected value" expected;
  check_value ~what:"desired value" desired;
  if d.nentries >= t.lay.max_words then
    invalid_arg "Pool.add_word: descriptor full";
  (match find_entry d addr with
  | Some _ -> invalid_arg "Pool.add_word: duplicate target address"
  | None -> ());
  let k = d.nentries in
  write_entry d k ~addr ~expected ~desired ~policy;
  (* The entry's words must be durable before any durable count covers
     them. A descriptor spans several cache lines, and once the count is
     written the count line can reach the persistent image at any moment
     (eviction, or a later flush ordered ahead of this entry's tail
     line); a crash image pairing the new count with this entry's
     PREVIOUS-incarnation words would make recovery roll back a stale
     entry — and free a live block under a Free_* policy. *)
  if t.persistent then begin
    let e = entry_base d k in
    let lw = (Mem.config t.mem).line_words in
    if
      Nvram.Flit.enabled ()
      && e / lw = Layout.policy_field e / lw
      && e / lw = Layout.count_addr d.slot / lw
    then
      (* Entry and count share one cache line, so the eviction hazard
         below cannot arise — a line persists atomically, and by store
         order any snapshot holding the new count holds the new entry
         words too. Durability itself comes from [seal]. *)
      Nvram.Flit.record_elided ~addr:e ~line:(e / lw)
    else begin
      Mem.clwb_range t.mem ~lo:e ~hi:(Layout.policy_field e);
      (* Drain before the count store executes: the async pipeline would
         otherwise leave the entry lines pending while an eviction could
         persist the new count next to the previous incarnation's words. *)
      Mem.fence t.mem
    end
  end;
  d.nentries <- k + 1;
  Mem.write t.mem (Layout.count_addr d.slot) d.nentries;
  k

let add_word ?policy d ~addr ~expected ~desired =
  ignore (append_entry ?policy d ~addr ~expected ~desired)

let reserve_entry ?(policy = Layout.Free_new_on_failure) d ~addr ~expected =
  let k = append_entry ~policy d ~addr ~expected ~desired:0 in
  d.has_reserved <- true;
  (* The reservation must be durable before the allocator can deliver into
     it, so that recovery frees the delivered block when rolling back.
     [append_entry] already persisted the entry words; only the count line
     is still volatile. Under destination-only persistence the header and
     entry flushes were deferred to [seal], so persist the whole
     descriptor here instead. *)
  if d.dpool.persistent && Nvram.Flit.enabled () then
    persist_desc d.dpool ~slot:d.slot ~count:d.nentries
  else begin
    clwb_if d.dpool (Layout.count_addr d.slot);
    fence_if d.dpool
  end;
  Layout.new_field (entry_base d k)

let remove_word d ~addr =
  check_desc d;
  if d.has_reserved then
    invalid_arg "Pool.remove_word: descriptor has reserved entries";
  match find_entry d addr with
  | None -> invalid_arg "Pool.remove_word: address not present"
  | Some k ->
      let t = d.dpool in
      let last = d.nentries - 1 in
      if k <> last then begin
        let e = entry_base d last in
        write_entry d k
          ~addr:(Mem.read t.mem (Layout.addr_field e))
          ~expected:(Mem.read t.mem (Layout.old_field e))
          ~desired:(Mem.read t.mem (Layout.new_field e))
          ~policy:
            (Layout.policy_of_int (Mem.read t.mem (Layout.policy_field e)))
      end;
      d.nentries <- last;
      Mem.write t.mem (Layout.count_addr d.slot) last

let word_count d = d.nentries

let read_entry t ~slot ~k =
  let e = Layout.entry_addr t.lay slot k in
  {
    addr = Mem.read t.mem (Layout.addr_field e);
    old_value = Mem.read t.mem (Layout.old_field e);
    new_value = Mem.read t.mem (Layout.new_field e);
    policy = Layout.policy_of_int (Mem.read t.mem (Layout.policy_field e));
  }

let clean_ptr v = Flags.clear_mark (Flags.payload v)

let get_palloc t =
  match t.palloc with
  | Some p -> p
  | None -> invalid_arg "Pool: recycle policy requires an allocator"

let free_value t v =
  let clean = clean_ptr v in
  if clean <> 0 then Palloc.free (get_palloc t) clean

(* Blocks a finished descriptor must release, per Table 1. *)
let values_to_free ~succeeded entries =
  Array.to_list entries
  |> List.filter_map (fun e ->
         let v =
           match (e.policy, succeeded) with
           | Layout.None_, _ -> 0
           | Layout.Free_one, true -> e.old_value
           | Layout.Free_one, false -> e.new_value
           | Layout.Free_new_on_failure, false -> e.new_value
           | Layout.Free_new_on_failure, true -> 0
           | Layout.Free_old_on_success, true -> e.old_value
           | Layout.Free_old_on_success, false -> 0
         in
         let v = clean_ptr v in
         if v = 0 then None else Some v)

(* Recycle a decided slot. Durability order matters:
   1. mark every policy-freed block durably free (but not yet reusable);
   2. durably return the slot to Free;
   3. enlist the blocks for reuse.
   A crash before (2) replays the frees on recovery ([during_recovery]
   tolerates already-free headers; the heap scan has already re-enlisted
   them). A crash after (2) skips the slot, and the scan re-enlists.
   Either way no block is leaked, double-freed, or handed out while a
   replay could still free it. *)
let finalize_slot ?(during_recovery = false) t ~slot ~succeeded =
  (* Phase label for crash classification; deliberately not restored on
     exception so an injected crash freezes it (see Nvram.Stats). *)
  let stats = Mem.stats t.mem in
  let prev_phase = Stats.current_phase stats in
  Stats.set_phase stats Stats.Finalize;
  let count = Mem.read t.mem (Layout.count_addr slot) in
  let entries = Array.init count (fun k -> read_entry t ~slot ~k) in
  let cb = callback_fn t (Mem.read t.mem (Layout.callback_addr slot)) in
  let to_free =
    match cb with
    | Some fn -> List.filter (fun v -> v <> 0) (fn ~succeeded entries)
    | None -> values_to_free ~succeeded entries
  in
  let to_enlist =
    match to_free with
    | [] -> []
    | vs ->
        let p = get_palloc t in
        if during_recovery then
          List.filter (fun v -> Palloc.mark_free_if_allocated p v) vs
        else begin
          List.iter (Palloc.mark_free p) vs;
          vs
        end
  in
  (* Deferred apply-phase write-backs (destination-only persistence
     under [`Paper], always under [`NoDirty]) and a failed op's status
     persist: settle those debts now, ahead of the drain below, so the
     durable Free can never precede them. A target that no longer holds
     this op's final value owes nothing — whoever claimed it durably
     sealed that value as its expected, so recovery reaches it through
     the successor's descriptor instead. [`Paper] detects an owed final
     by its dirty bit; [`NoDirty] installs finals clean, so the owed
     test is plain value equality (flushing an equal-valued successor by
     accident is harmless — it writes back the word's current coherent
     content). [`FewFence] owes nothing here: its commit batch already
     drained status and finals. *)
  (let strat = (Mem.config t.mem).strategy in
   if
     t.persistent
     && (strat = `NoDirty || (strat = `Paper && Nvram.Flit.enabled ()))
   then begin
     let sabotaged = Nvram.Flit.sabotage_skip_destination () in
     let lw = (Mem.config t.mem).line_words in
     Array.iter
       (fun e ->
         let final = if succeeded then e.new_value else e.old_value in
         let w = Mem.read t.mem e.addr in
         let owed =
           match strat with
           | `NoDirty -> w = final
           | _ -> Flags.is_dirty w && Flags.clear_dirty w = final
         in
         if owed then begin
           Nvram.Flit.record_destination_flush ~addr:e.addr
             ~line:(e.addr / lw);
           if not sabotaged then Mem.clwb t.mem e.addr
         end
         else Nvram.Flit.record_elided ~addr:e.addr ~line:(e.addr / lw))
       entries;
     let s = Mem.read t.mem (Layout.status_addr slot) in
     if Flags.is_dirty s then Mem.clwb t.mem (Layout.status_addr slot)
   end);
  (* Drain everything still pending before the slot can return to Free:
     the policy frees marked above, and — during recovery — the rollback
     write-backs the caller enqueued. Always fenced, so the status store
     below can never be (durably) observed ahead of them. *)
  fence_if t;
  Mem.write t.mem (Layout.status_addr slot) Layout.status_free;
  clwb_if t slot;
  (* The durable Free must land before the freed blocks (and, via
     [make_free], the slot itself) become reusable. *)
  fence_if t;
  (match to_enlist with
  | [] -> ()
  | vs ->
      let p = get_palloc t in
      List.iter (Palloc.enlist p) vs);
  Stats.set_phase stats prev_phase

let make_free t ~slot ~part ~succeeded =
  finalize_slot t ~slot ~succeeded;
  push_slot t part slot

let discard d =
  check_desc d;
  d.dlive <- false;
  (* Never exposed: recycle immediately, as a failure. *)
  make_free d.dpool ~slot:d.slot ~part:(home_part d.dpool d.slot)
    ~succeeded:false

let seal d =
  check_desc d;
  d.dlive <- false;
  persist_desc d.dpool ~slot:d.slot ~count:d.nentries

(* DST self-test knob: recycle at [finish] time instead of parking the
   slot in epoch limbo. A helper that still holds the descriptor pointer
   then races slot reuse — the exact use-after-free the limbo protocol
   exists to prevent, which the scheduled scenarios must be able to
   flag. Never set outside tests and the CLI. *)
let sabotage_recycle = Atomic.make false
let set_sabotage_immediate_recycle b = Atomic.set sabotage_recycle b

let limbo_cell t part =
  match t.org with
  | Per_domain parts -> parts.(part).limbo
  | Shared sh -> sh.s_limbo

let finish d ~succeeded =
  let t = d.dpool and slot = d.slot in
  let part = home_part t slot in
  if Flight.tracing () then Flight.emit Flight.Desc_retire slot 0 0;
  if Atomic.get sabotage_recycle then make_free t ~slot ~part ~succeeded
  else begin
    (* Park the slot in this guard's limbo list: it is durably decided
       but must not be reused while any reader pinned before now may
       still dereference it (BzTree's gc_limbo / pmwcas_reclaim shape).
       The deferred recycle usually runs on this same domain's next
       reclaim, landing the slot back in the owner's local list. *)
    let limbo = limbo_cell t part in
    ignore (Atomic.fetch_and_add limbo 1);
    Epoch.defer d.hdl.hguard (fun () ->
        make_free t ~slot ~part ~succeeded;
        ignore (Atomic.fetch_and_add limbo (-1)))
  end

let desc_slot d = d.slot
let desc_handle d = d.hdl
let desc_pool d = d.dpool
let desc_live d = d.dlive

let desc_status t ~slot =
  Flags.clear_dirty (Mem.read t.mem (Layout.status_addr slot))

let slot_owner_domain t ~slot =
  match t.org with
  | Shared _ -> -1
  | Per_domain parts -> Atomic.get parts.(home_part t slot).owner
