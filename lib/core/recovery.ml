module Mem = Nvram.Mem
module Flags = Nvram.Flags

type stats = {
  scanned : int;
  in_flight : int;
  rolled_forward : int;
  rolled_back : int;
  words_restored : int;
}

let refers_to_slot lay ~slot ~k w =
  (Flags.is_mwcas w && Layout.desc_of_ptr w = slot)
  || Flags.is_rdcss w
     &&
     match Layout.wd_of_ptr lay w with
     | s, k' -> s = slot && k' = k
     | exception Invalid_argument _ -> false

(* [`FewFence] promote rule. An Undecided status can coexist with
   durable phase-2 finals under the reduced-fence ordering: the decide
   status was only clwb'd when the finals were installed, and the
   eviction lottery can persist a dirty final while dropping the status
   line. Plain rollback would restore only the pointer-matched words,
   leaving such a final as a durable wrong value. When every entry word
   is either a pointer into this slot or a dirty copy of the entry's new
   value — the only states a crashed phase 2 can leave, given the
   precommit fence — and at least one final actually landed, promote the
   slot to roll-forward. Forward writes are idempotent on a
   coincidentally equal alien value (the payload written is the payload
   present), which is why the match is on the new value and never used
   to write {e old} values back. Any other word means the crash predates
   phase 2 (or an alien overwrote the target): fall back to rollback. *)
let promote_to_forward pool mem ~lay ~slot ~count =
  let evidence = ref false and consistent = ref true in
  for k = 0 to count - 1 do
    let e = Pool.read_entry pool ~slot ~k in
    let w = Mem.read mem e.addr in
    if refers_to_slot lay ~slot ~k w then ()
    else if Flags.is_dirty w && Flags.clear_dirty w = Flags.clear_dirty e.new_value
    then evidence := true
    else consistent := false
  done;
  !evidence && !consistent

let run ?palloc ?sharing ?(callbacks = []) mem ~base =
  let stats_sh = Mem.stats mem in
  let prev_phase = Nvram.Stats.current_phase stats_sh in
  Nvram.Stats.set_phase stats_sh Nvram.Stats.Recovery;
  if Flight.tracing () then Flight.emit Flight.Recovery_phase 0 base 0;
  let pool = Pool.attach ?palloc ?sharing ~callbacks mem ~base in
  let lay = Pool.layout pool in
  let in_flight = ref 0
  and forward = ref 0
  and backward = ref 0
  and restored = ref 0 in
  for i = 0 to lay.nslots - 1 do
    let slot = Layout.slot_off lay i in
    let status = Pool.desc_status pool ~slot in
    if status <> Layout.status_free then begin
      incr in_flight;
      let count = Mem.read mem (Layout.count_addr slot) in
      if count < 0 || count > lay.max_words then
        failwith
          (Printf.sprintf "Recovery: corrupt count %d in slot %d" count i);
      let strat = (Mem.config mem).strategy in
      let roll_forward =
        status = Layout.status_succeeded
        || strat = `FewFence
           && status = Layout.status_undecided
           && promote_to_forward pool mem ~lay ~slot ~count
      in
      if roll_forward then incr forward else incr backward;
      if Flight.tracing () then
        Flight.emit Flight.Recovery_phase (if roll_forward then 1 else 2) slot 0;
      for k = 0 to count - 1 do
        let e = Pool.read_entry pool ~slot ~k in
        let w = Mem.read mem e.addr in
        let final_residue =
          (* A promoted (or plain-forward) [`FewFence] slot may hold
             dirty finals: rewrite them clean so no dirty residue of a
             dead descriptor survives recovery. *)
          strat = `FewFence && roll_forward && Flags.is_dirty w
          && Flags.clear_dirty w = Flags.clear_dirty e.new_value
        in
        if refers_to_slot lay ~slot ~k w || final_residue then begin
          let v = if roll_forward then e.new_value else e.old_value in
          Mem.write mem e.addr v;
          Mem.clwb mem e.addr;
          incr restored
        end
      done;
      Pool.finalize_slot ~during_recovery:true pool ~slot ~succeeded:roll_forward
    end
  done;
  Nvram.Stats.set_phase stats_sh prev_phase;
  if Flight.tracing () then Flight.emit Flight.Recovery_phase 3 !in_flight 0;
  ( pool,
    {
      scanned = lay.nslots;
      in_flight = !in_flight;
      rolled_forward = !forward;
      rolled_back = !backward;
      words_restored = !restored;
    } )

let pp_stats ppf s =
  Format.fprintf ppf
    "scanned=%d in_flight=%d rolled_forward=%d rolled_back=%d \
     words_restored=%d"
    s.scanned s.in_flight s.rolled_forward s.rolled_back s.words_restored
