module Mem = Nvram.Mem
module Flags = Nvram.Flags

type stats = {
  scanned : int;
  in_flight : int;
  rolled_forward : int;
  rolled_back : int;
  words_restored : int;
}

let refers_to_slot lay ~slot ~k w =
  (Flags.is_mwcas w && Layout.desc_of_ptr w = slot)
  || Flags.is_rdcss w
     &&
     match Layout.wd_of_ptr lay w with
     | s, k' -> s = slot && k' = k
     | exception Invalid_argument _ -> false

let run ?palloc ?sharing ?(callbacks = []) mem ~base =
  let stats_sh = Mem.stats mem in
  let prev_phase = Nvram.Stats.current_phase stats_sh in
  Nvram.Stats.set_phase stats_sh Nvram.Stats.Recovery;
  if Flight.tracing () then Flight.emit Flight.Recovery_phase 0 base 0;
  let pool = Pool.attach ?palloc ?sharing ~callbacks mem ~base in
  let lay = Pool.layout pool in
  let in_flight = ref 0
  and forward = ref 0
  and backward = ref 0
  and restored = ref 0 in
  for i = 0 to lay.nslots - 1 do
    let slot = Layout.slot_off lay i in
    let status = Pool.desc_status pool ~slot in
    if status <> Layout.status_free then begin
      incr in_flight;
      let roll_forward = status = Layout.status_succeeded in
      if roll_forward then incr forward else incr backward;
      if Flight.tracing () then
        Flight.emit Flight.Recovery_phase (if roll_forward then 1 else 2) slot 0;
      let count = Mem.read mem (Layout.count_addr slot) in
      if count < 0 || count > lay.max_words then
        failwith
          (Printf.sprintf "Recovery: corrupt count %d in slot %d" count i);
      for k = 0 to count - 1 do
        let e = Pool.read_entry pool ~slot ~k in
        let w = Mem.read mem e.addr in
        if refers_to_slot lay ~slot ~k w then begin
          let v = if roll_forward then e.new_value else e.old_value in
          Mem.write mem e.addr v;
          Mem.clwb mem e.addr;
          incr restored
        end
      done;
      Pool.finalize_slot ~during_recovery:true pool ~slot ~succeeded:roll_forward
    end
  done;
  Nvram.Stats.set_phase stats_sh prev_phase;
  if Flight.tracing () then Flight.emit Flight.Recovery_phase 3 !in_flight 0;
  ( pool,
    {
      scanned = lay.nslots;
      in_flight = !in_flight;
      rolled_forward = !forward;
      rolled_back = !backward;
      words_restored = !restored;
    } )

let pp_stats ppf s =
  Format.fprintf ppf
    "scanned=%d in_flight=%d rolled_forward=%d rolled_back=%d \
     words_restored=%d"
    s.scanned s.in_flight s.rolled_forward s.rolled_back s.words_restored
