let shards = 64
let fields = 10

(* Pad each domain's field group to [stride] boxed atomics (256 bytes) so
   neighbouring domains never false-share a cache line; see Nvram.Stats. *)
let stride = 16

type t = int Atomic.t array

type snapshot = {
  attempts : int;
  succeeded : int;
  failed : int;
  desc_helps : int;
  rdcss_helps : int;
  backoffs : int;
  desc_local : int;
  desc_remote : int;
  desc_scans : int;
  alloc_retries : int;
}

let create () = Array.init (shards * stride) (fun _ -> Atomic.make 0)

let slot field =
  let d = (Domain.self () :> int) in
  ((d land (shards - 1)) * stride) + field

let record t field = ignore (Atomic.fetch_and_add t.(slot field) 1)
let record_attempt t = record t 0
let record_succeeded t = record t 1
let record_failed t = record t 2
let record_desc_help t = record t 3
let record_rdcss_help t = record t 4
let record_backoff t = record t 5
let record_desc_local t = record t 6
let record_desc_remote t = record t 7
let record_desc_scan t = record t 8
let record_alloc_retry t = record t 9

let sum t field =
  let acc = ref 0 in
  for s = 0 to shards - 1 do
    acc := !acc + Atomic.get t.((s * stride) + field)
  done;
  !acc

let _ = assert (fields <= stride)

let snapshot t =
  {
    attempts = sum t 0;
    succeeded = sum t 1;
    failed = sum t 2;
    desc_helps = sum t 3;
    rdcss_helps = sum t 4;
    backoffs = sum t 5;
    desc_local = sum t 6;
    desc_remote = sum t 7;
    desc_scans = sum t 8;
    alloc_retries = sum t 9;
  }

let reset t = Array.iter (fun c -> Atomic.set c 0) t

let diff a b =
  {
    attempts = a.attempts - b.attempts;
    succeeded = a.succeeded - b.succeeded;
    failed = a.failed - b.failed;
    desc_helps = a.desc_helps - b.desc_helps;
    rdcss_helps = a.rdcss_helps - b.rdcss_helps;
    backoffs = a.backoffs - b.backoffs;
    desc_local = a.desc_local - b.desc_local;
    desc_remote = a.desc_remote - b.desc_remote;
    desc_scans = a.desc_scans - b.desc_scans;
    alloc_retries = a.alloc_retries - b.alloc_retries;
  }

let to_json s =
  Telemetry.Value.Obj
    [
      ("attempts", Telemetry.Value.Int s.attempts);
      ("succeeded", Telemetry.Value.Int s.succeeded);
      ("failed", Telemetry.Value.Int s.failed);
      ("desc_helps", Telemetry.Value.Int s.desc_helps);
      ("rdcss_helps", Telemetry.Value.Int s.rdcss_helps);
      ("backoffs", Telemetry.Value.Int s.backoffs);
      ("desc_local", Telemetry.Value.Int s.desc_local);
      ("desc_remote", Telemetry.Value.Int s.desc_remote);
      ("desc_scans", Telemetry.Value.Int s.desc_scans);
      ("alloc_retries", Telemetry.Value.Int s.alloc_retries);
    ]

(* Derived from [to_json]; the printed fields cannot drift from the
   exported ones. *)
let pp ppf s = Telemetry.Value.pp_flat ppf (to_json s)
