module Mem = Nvram.Mem
module Flags = Nvram.Flags

(* clwb + fence: under the async write-back model the line is only
   durable once the fence drains it, and the dirty bit must not be
   cleared before that — a reader of the cleared value would skip its
   own flush of a line that never reached the NVM image. *)
let persist mem a v =
  Mem.clwb mem a;
  Mem.fence mem;
  if Flags.is_dirty v then
    ignore (Mem.cas mem a ~expected:v ~desired:(Flags.clear_dirty v))

(* Phase-batched variant: clwb every distinct cache line once, one
   fence drains all of them, then the dirty bits fall. Group commit
   feeds this overlapping word lists from many ops, so a duplicated
   line must only be flushed (and charged) once, and a duplicated
   address gets one dirty-clear CAS against its last-listed value —
   earlier stale expectations would just burn CAS fuel. An empty batch
   emits nothing, in particular no fence. *)
let persist_batch mem words =
  match words with
  | [] -> ()
  | [ (a, v) ] -> persist mem a v
  | _ ->
      let line_words = (Mem.config mem).line_words in
      let lines = Hashtbl.create 8 in
      List.iter
        (fun (a, _) ->
          let line = a / line_words in
          if not (Hashtbl.mem lines line) then begin
            Hashtbl.add lines line ();
            Mem.clwb mem a
          end)
        words;
      Mem.fence mem;
      (* First-occurrence order, last-listed value: keeps the device-op
         sequence deterministic (DST replays depend on it). *)
      let last = Hashtbl.create 8 in
      List.iter (fun (a, v) -> Hashtbl.replace last a v) words;
      List.iter
        (fun (a, _) ->
          match Hashtbl.find_opt last a with
          | None -> ()
          | Some v ->
              Hashtbl.remove last a;
              if Flags.is_dirty v then
                ignore
                  (Mem.cas mem a ~expected:v ~desired:(Flags.clear_dirty v)))
        words

let read mem a =
  let v = Mem.read mem a in
  if Flags.is_dirty v then begin
    persist mem a v;
    Flags.clear_dirty v
  end
  else v

let flush mem a =
  let v = Mem.read mem a in
  if Flags.is_dirty v then persist mem a v

let cas mem a ~expected ~desired =
  ignore (read mem a);
  Mem.cas_bool mem a ~expected ~desired:(Flags.set_dirty desired)

let cas_durable mem a ~expected ~desired =
  let ok = cas mem a ~expected ~desired in
  if ok then persist mem a (Flags.set_dirty desired);
  ok

let write mem a v = Mem.write mem a (Flags.set_dirty v)
