module Mem = Nvram.Mem
module Flags = Nvram.Flags

(* clwb + fence: under the async write-back model the line is only
   durable once the fence drains it, and the dirty bit must not be
   cleared before that — a reader of the cleared value would skip its
   own flush of a line that never reached the NVM image. *)
let persist mem a v =
  Mem.clwb mem a;
  Mem.fence mem;
  if Flags.is_dirty v then
    ignore (Mem.cas mem a ~expected:v ~desired:(Flags.clear_dirty v))

(* Phase-batched variant: clwb every word (the device coalesces words
   sharing a line), then one fence drains all of them, then the dirty
   bits fall. One drain per distinct line instead of one per word. *)
let persist_batch mem words =
  match words with
  | [] -> ()
  | _ ->
      List.iter (fun (a, _) -> Mem.clwb mem a) words;
      Mem.fence mem;
      List.iter
        (fun (a, v) ->
          if Flags.is_dirty v then
            ignore (Mem.cas mem a ~expected:v ~desired:(Flags.clear_dirty v)))
        words

let read mem a =
  let v = Mem.read mem a in
  if Flags.is_dirty v then begin
    persist mem a v;
    Flags.clear_dirty v
  end
  else v

let flush mem a =
  let v = Mem.read mem a in
  if Flags.is_dirty v then persist mem a v

let cas mem a ~expected ~desired =
  ignore (read mem a);
  Mem.cas_bool mem a ~expected ~desired:(Flags.set_dirty desired)

let cas_durable mem a ~expected ~desired =
  let ok = cas mem a ~expected ~desired in
  if ok then persist mem a (Flags.set_dirty desired);
  ok

let write mem a v = Mem.write mem a (Flags.set_dirty v)
