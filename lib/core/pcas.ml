module Mem = Nvram.Mem
module Flags = Nvram.Flags

(* The commit-protocol strategy is a property of the device: every pool,
   helper and recovery pass attached to the same memory must agree on
   it, so it rides [Mem.config] rather than a process global. *)
let strategy mem : Nvram.Config.strategy = (Mem.config mem).strategy

(* Dirty-clear CAS after a drain — the per-word protocol cost the
   [`NoDirty] strategy eliminates. Counted so the b6 bench and the
   [strategy.counters] metrics gate can show the reduction. *)
let clear_dirty_cas mem a v =
  ignore (Mem.cas mem a ~expected:v ~desired:(Flags.clear_dirty v));
  Nvram.Strategy.record_dirty_cas ~addr:a
    ~line:(a / (Mem.config mem).line_words)

(* clwb + fence: under the async write-back model the line is only
   durable once the fence drains it, and the dirty bit must not be
   cleared before that — a reader of the cleared value would skip its
   own flush of a line that never reached the NVM image. Under
   [`NoDirty] values are installed clean, so the CAS never fires and
   this degenerates to the unconditional clwb + fence. *)
let persist mem a v =
  Mem.clwb mem a;
  Mem.fence mem;
  if Flags.is_dirty v then clear_dirty_cas mem a v

(* Phase-batched variant: clwb every distinct cache line once, one
   fence drains all of them, then the dirty bits fall. Group commit
   feeds this overlapping word lists from many ops, so a duplicated
   line must only be flushed (and charged) once, and a duplicated
   address gets one dirty-clear CAS against its last-listed value —
   earlier stale expectations would just burn CAS fuel. An empty batch
   emits nothing, in particular no fence. [fence:false] is the
   [--broken-fewfence] sabotage shape: write-backs enqueued and dirty
   bits cleared with nothing draining the lines — never pass it outside
   the self-tests. *)
let persist_batch ?(fence = true) mem words =
  match words with
  | [] -> ()
  | [ (a, v) ] ->
      Mem.clwb mem a;
      if fence then Mem.fence mem;
      if Flags.is_dirty v then clear_dirty_cas mem a v
  | _ ->
      let line_words = (Mem.config mem).line_words in
      let lines = Hashtbl.create 8 in
      List.iter
        (fun (a, _) ->
          let line = a / line_words in
          if not (Hashtbl.mem lines line) then begin
            Hashtbl.add lines line ();
            Mem.clwb mem a
          end)
        words;
      if fence then Mem.fence mem;
      (* First-occurrence order, last-listed value: keeps the device-op
         sequence deterministic (DST replays depend on it). *)
      let last = Hashtbl.create 8 in
      List.iter (fun (a, v) -> Hashtbl.replace last a v) words;
      List.iter
        (fun (a, _) ->
          match Hashtbl.find_opt last a with
          | None -> ()
          | Some v ->
              Hashtbl.remove last a;
              if Flags.is_dirty v then clear_dirty_cas mem a v)
        words

let read mem a =
  let v = Mem.read mem a in
  if Flags.is_dirty v then begin
    persist mem a v;
    Flags.clear_dirty v
  end
  else v

(* Destination pass over a contiguous window (a node body): write back
   every line intersecting [lo, hi], except that with the flit mode on a
   line whose tracked stores have all issued their write-backs already
   ([Mem.persisted] on every word) is elided outright. Like
   [Mem.clwb_range] this issues no fence of its own — durability before
   the decide point comes from the precommit fence every persistent
   PMwCAS executes, which drains all pending lines including the ones
   enqueued (or elided as already-enqueued) here. *)
let persist_range mem ~lo ~hi =
  if not (Nvram.Flit.enabled ()) then Mem.clwb_range mem ~lo ~hi
  else begin
    let lw = (Mem.config mem).line_words in
    let sabotaged = Nvram.Flit.sabotage_skip_destination () in
    let line_lo = ref (lo / lw * lw) in
    while !line_lo <= hi do
      let wlo = max lo !line_lo and whi = min hi (!line_lo + lw - 1) in
      let unflushed = ref false in
      for w = wlo to whi do
        if not (Mem.persisted mem w) then unflushed := true
      done;
      let line = !line_lo / lw in
      if !unflushed then begin
        Nvram.Flit.record_destination_flush ~addr:wlo ~line;
        if not sabotaged then
          for w = wlo to whi do
            if not (Mem.persisted mem w) then Mem.flit_flush mem w
          done
      end
      else Nvram.Flit.record_elided ~addr:wlo ~line;
      line_lo := !line_lo + lw
    done
  end

(* Destination pass over a single PMwCAS target word: make its current
   value durable before the critical phase. Usually the word is clean
   and its counter quiescent (the previous op's apply persisted it), so
   this is one load + one counter check, counted as an elision; a dirty
   value is persisted exactly as flush-on-read would, and a tracked
   store still in flight gets its write-back. Under [`NoDirty] a
   deferred final is clean but possibly unflushed — the counter check
   catches the tracked-store case, and the clwb+fence path covers it. *)
let persist_target mem a =
  let v = Mem.read mem a in
  let line = a / (Mem.config mem).line_words in
  if Flags.is_dirty v then begin
    Nvram.Flit.record_destination_flush ~addr:a ~line;
    if not (Nvram.Flit.sabotage_skip_destination ()) then persist mem a v
  end
  else if Mem.persisted mem a then Nvram.Flit.record_elided ~addr:a ~line
  else begin
    Nvram.Flit.record_destination_flush ~addr:a ~line;
    if not (Nvram.Flit.sabotage_skip_destination ()) then begin
      Mem.flit_flush mem a;
      Mem.fence mem
    end
  end

let flush mem a =
  let v = Mem.read mem a in
  if Flags.is_dirty v then persist mem a v

let cas mem a ~expected ~desired =
  ignore (read mem a);
  match strategy mem with
  | `NoDirty ->
      (* Dirty-bit-free: install clean and write back unconditionally;
         the next fence (the caller's commit point) makes it durable. *)
      let ok = Mem.cas_bool mem a ~expected ~desired in
      if ok then Mem.clwb mem a;
      ok
  | `Paper | `FewFence ->
      Mem.cas_bool mem a ~expected ~desired:(Flags.set_dirty desired)

let cas_durable mem a ~expected ~desired =
  let ok = cas mem a ~expected ~desired in
  if ok then begin
    match strategy mem with
    | `NoDirty -> persist mem a desired
    | `Paper | `FewFence -> persist mem a (Flags.set_dirty desired)
  end;
  ok

let write mem a v =
  match strategy mem with
  | `NoDirty ->
      Mem.write mem a v;
      Mem.clwb mem a
  | `Paper | `FewFence -> Mem.write mem a (Flags.set_dirty v)
