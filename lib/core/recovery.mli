(** Post-failure recovery of a descriptor pool (Section 4.4).

    Single-threaded; run {e after} {!Palloc.recover} (the allocator must
    have resolved pending activations first) and {e before} any worker
    thread touches the data structures.

    For every non-[Free] slot: an operation that durably reached
    [Succeeded] is rolled forward (new values written to every target word
    still referencing the descriptor, directly or through a word
    descriptor); an [Undecided] or [Failed] one is rolled back. Memory
    held by old/new values is then released per the recycle policies (or
    the finalize callback), and the slot durably returns to [Free].

    No index-specific recovery code is required — this routine plus the
    application's discipline of moving the structure between consistent
    states with single PMwCASes is the paper's whole recovery story. *)

type stats = {
  scanned : int;  (** Slots examined. *)
  in_flight : int;  (** Slots found mid-operation. *)
  rolled_forward : int;
  rolled_back : int;
  words_restored : int;  (** Target words rewritten. *)
}

val run :
  ?palloc:Palloc.t -> ?sharing:Pool.sharing
  -> ?callbacks:Pool.callback list -> Nvram.Mem.t
  -> base:int -> Pool.t * stats
(** Attach to the pool at [base] inside a crash image, recover every
    in-flight PMwCAS, and return a ready-to-use pool. [callbacks] must be
    re-registered in the same order as before the crash; [sharing] picks
    the volatile free-slot organization of the recovered pool (recovery
    re-owns every slot and redistributes it regardless — the durable
    format does not record the organization).
    @raise Failure on bad magic or a corrupt descriptor. *)

val pp_stats : Format.formatter -> stats -> unit
