module Mem = Nvram.Mem
module Flags = Nvram.Flags
module Stats = Nvram.Stats

exception Phase1_failed

(* Latency and help-chain telemetry (recorded only while
   [Telemetry.enabled]). [attempt_ns] covers every top-level [execute];
   [success_ns] just the committed ones, so the gap between the two
   curves is the retry/contention tax. [help_depth] records how deep a
   nested help chain ran each time a thread helped a foreign PMwCAS. *)
let attempt_hist = Telemetry.on_demand "pmwcas.attempt_ns"
let success_hist = Telemetry.on_demand "pmwcas.success_ns"
let help_depth_hist = Telemetry.on_demand "pmwcas.help_depth"

(* Crash-sweep self-test knob: drop the precommit flushes so the decision
   can become durable before the phase-1 pointers are. A sweeping harness
   that cannot flag this is not testing anything (see
   Harness.Crash_sweep). Never set outside tests and the CLI. *)
let sabotage_precommit = Atomic.make false
let set_sabotage_skip_precommit_flush b = Atomic.set sabotage_precommit b
let sabotaging_skip_precommit_flush () = Atomic.get sabotage_precommit

(* Descriptor-pointer words, with the dirty bit elided in volatile mode
   — and under [`NoDirty], where every protocol store is installed
   clean and flushed unconditionally instead of carrying the bit. *)
let desc_clean slot = slot lor Flags.mwcas

let desc_word t slot =
  if not (Pool.persistent t) then desc_clean slot
  else
    match Pcas.strategy (Pool.mem t) with
    | `NoDirty -> desc_clean slot
    | `Paper | `FewFence -> Layout.desc_ptr slot

let entry_fields t ~slot ~k =
  let mem = Pool.mem t in
  let e = Layout.entry_addr (Pool.layout t) slot k in
  ( Mem.read mem (Layout.addr_field e),
    Mem.read mem (Layout.old_field e),
    Mem.read mem (Layout.new_field e) )

(* Entry indices in target-address order: Phase 1 "locks" words in a global
   order, which rules out deadlock between concurrent PMwCASes (Section
   2.2). Insertion sort — descriptors hold at most a handful of words.
   Each entry's target address is read from the descriptor once up front;
   sorting compares the local array, not the device. *)
let sorted_order t ~slot ~count =
  let mem = Pool.mem t and lay = Pool.layout t in
  let addrs =
    Array.init count (fun k ->
        Mem.read mem (Layout.addr_field (Layout.entry_addr lay slot k)))
  in
  let order = Array.init count (fun k -> k) in
  for i = 1 to count - 1 do
    let k = order.(i) in
    let ak = addrs.(k) in
    let j = ref (i - 1) in
    while !j >= 0 && addrs.(order.(!j)) > ak do
      order.(!j + 1) <- order.(!j);
      decr j
    done;
    order.(!j + 1) <- k
  done;
  order

(* Bounded exponential backoff under contention: a failed attempt or a
   lost RDCSS race spins [2^attempt] capped pauses off the line before
   retrying, so pile-ups drain instead of re-colliding at full speed. *)
let max_backoff_shift = 10

let backoff t attempt =
  Metrics.record_backoff (Pool.metrics t);
  let spins = 1 lsl min attempt max_backoff_shift in
  if Flight.tracing () then Flight.emit Flight.Mwcas_backoff attempt spins 0;
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

(* Second half of the RDCSS: promote the word-descriptor pointer to a
   full-descriptor pointer — but only while the operation is still
   Undecided; otherwise restore the old value. The status check is the
   "second compare" that stops a sleeping thread from re-installing a
   descriptor for an operation that already finished (Section 4.2). *)
let complete_install t wdp =
  let mem = Pool.mem t and lay = Pool.layout t in
  let slot, k = Layout.wd_of_ptr lay wdp in
  let addr, old_v, _ = entry_fields t ~slot ~k in
  let undecided =
    Mem.read mem (Layout.status_addr slot) = Layout.status_undecided
  in
  let desired = if undecided then desc_word t slot else old_v in
  ignore (Mem.cas mem addr ~expected:wdp ~desired)

(* First half of the RDCSS: claim the target word with a word-descriptor
   pointer, helping any other RDCSS we collide with (and backing off
   before re-contending the line). Returns the witnessed value ([old_v]
   on success). *)
let install_rdcss t ~slot ~k ~addr ~old_v =
  let mem = Pool.mem t in
  let ptr = Layout.wd_ptr (Pool.layout t) ~slot ~k in
  let rec go attempt =
    let witnessed = Mem.cas mem addr ~expected:old_v ~desired:ptr in
    if witnessed = old_v then begin
      if Flight.tracing () then Flight.emit Flight.Rdcss_install addr slot 0;
      complete_install t ptr;
      old_v
    end
    else if Flags.is_rdcss witnessed then begin
      Metrics.record_rdcss_help (Pool.metrics t);
      if Flight.tracing () then Flight.emit Flight.Rdcss_install addr slot 1;
      complete_install t witnessed;
      if attempt > 0 then backoff t attempt;
      go (attempt + 1)
    end
    else if
      Pool.persistent t
      && (not (Flags.is_mwcas witnessed))
      && Flags.is_dirty witnessed
      && Flags.clear_dirty witnessed = old_v
    then
      if Nvram.Flit.enabled () && Pcas.strategy mem = `Paper then begin
        (* The word holds the expected value, merely unflushed — a
           deferred final of a durably-decided op. Claim it in place:
           this descriptor was sealed with [old_v] as the expected
           value, so recovery can restore it from our rollback record
           without it ever reaching NVM on its own. *)
        if Mem.cas mem addr ~expected:witnessed ~desired:ptr = witnessed
        then begin
          if Flight.tracing () then
            Flight.emit Flight.Rdcss_install addr slot 0;
          complete_install t ptr;
          old_v
        end
        else go (attempt + 1)
      end
      else begin
        (* The word holds the expected value, merely unflushed: persist
           it and claim it, rather than failing spuriously. Under
           [`FewFence] this is also why claim-in-place is off: the dirty
           final may belong to an op whose decision is only clwb'd, and
           this persist's fence drains that status line with it. *)
        Pcas.persist mem addr witnessed;
        go (attempt + 1)
      end
    else witnessed
  in
  go 0

(* Drive the PMwCAS at [slot] to completion. Cooperative: may be entered
   by the owner and by any number of helpers at any point of the
   operation's life; every step is a CAS conditioned on the step not yet
   having been taken. [depth] is the help-chain depth: 0 for the owner,
   [n + 1] when entered while helping at depth [n]. *)
let rec help_at t ~depth ~slot =
  if depth > 0 then begin
    if Telemetry.enabled () && Telemetry.sample () then
      Telemetry.Histogram.record (help_depth_hist ()) depth;
    (* The causal help edge: this domain is finishing a PMwCAS whose
       descriptor lives in the owner domain's partition. *)
    if Flight.tracing () then
      Flight.emit Flight.Help_edge (Pool.slot_owner_domain t ~slot) slot depth
  end;
  let mem = Pool.mem t in
  let persistent = Pool.persistent t in
  (* A helper arrives here holding a reference obtained while pinned, and
     [Pool.finish] parks decided slots in epoch limbo until every such
     pin retires — so a [Free] status is impossible unless the limbo
     protocol was violated and the slot recycled under us (it may already
     carry an unrelated operation). Fail loudly instead of corrupting it;
     the DST recycle scenario relies on this detector. *)
  if
    depth > 0
    && Flags.clear_dirty (Mem.read mem (Layout.status_addr slot))
       = Layout.status_free
  then failwith "Op.help: descriptor recycled while referenced";
  (* Phase labels for crash classification. Saved and restored so nested
     helping keeps the outer label on return; an injected crash skips the
     restore and freezes the label (see Nvram.Stats). *)
  let stats = Mem.stats mem in
  let prev_phase = Stats.current_phase stats in
  Stats.set_phase stats Stats.Install;
  let count = Mem.read mem (Layout.count_addr slot) in
  if Flight.tracing () then Flight.emit Flight.Mwcas_attempt slot count depth;
  let order = sorted_order t ~slot ~count in
  (* Phase 1: install descriptor pointers in address order. *)
  let st = ref Layout.status_succeeded in
  (try
     Array.iter
       (fun k ->
         let addr, old_v, _ = entry_fields t ~slot ~k in
         let rec install attempt =
           let witnessed = install_rdcss t ~slot ~k ~addr ~old_v in
           if witnessed = old_v then ()
           else if Flags.is_mwcas witnessed then
             if Layout.desc_of_ptr witnessed = slot then
               (* A helper beat us to this word. *)
               ()
             else begin
               (* Clashed with another in-progress PMwCAS: make sure its
                  pointer is durable, help it finish, then retry ours
                  (after a pause — the loser of this clash tends to lose
                  the immediate rematch too). *)
               if persistent && Flags.is_dirty witnessed then
                 Pcas.persist mem addr witnessed;
               Metrics.record_desc_help (Pool.metrics t);
               ignore
                 (help_at t ~depth:(depth + 1)
                    ~slot:(Layout.desc_of_ptr witnessed));
               if attempt > 0 then backoff t attempt;
               install (attempt + 1)
             end
           else begin
             st := Layout.status_failed;
             raise Phase1_failed
           end
         in
         install 0)
       order
   with Phase1_failed -> ());
  (* Precommit: persist the installed pointers, then durably decide. The
     decision must not become visible before every Phase 1 write is
     durable, or recovery could roll forward over unpersisted state.
     Every strategy keeps this fence — a single fence covering pointers
     and status together would let the eviction lottery persist a
     Succeeded status whose pointers never reached NVM. *)
  let strat = if persistent then Pcas.strategy mem else `Paper in
  Stats.set_phase stats Stats.Precommit;
  if
    persistent
    && !st = Layout.status_succeeded
    && (not (Atomic.get sabotage_precommit))
    && not
         (strat = `NoDirty && Nvram.Strategy.sabotage_skip_nodirty_flush ())
  then
    (* Batched: clwb every installed pointer (entries sharing a line
       coalesce in the device), then one drain-fence for the whole
       phase. Under [`NoDirty] the pointers are clean, so the batch is
       exactly the unconditional flush: clwbs + fence, no dirty-clear
       CAS traffic. *)
    Pcas.persist_batch mem
      (Array.fold_right
         (fun k acc ->
           let addr, _, _ = entry_fields t ~slot ~k in
           (addr, desc_word t slot) :: acc)
         order []);
  Stats.set_phase stats Stats.Decide;
  let status_a = Layout.status_addr slot in
  let decided =
    if persistent && strat <> `NoDirty then Flags.set_dirty !st else !st
  in
  ignore (Mem.cas mem status_a ~expected:Layout.status_undecided ~desired:decided);
  if persistent then begin
    match strat with
    | `Paper ->
        let s = Mem.read mem status_a in
        (* A succeeding decision must be durable before Phase 2 installs
           any final value — that is what lets journey reads return
           dirty finals unflushed. A failed decision orders nothing: its
           rollback values are recoverable from the sealed descriptor
           whether the status reads Undecided or Failed, so
           destination-only persistence defers that flush to
           [Pool.finalize_slot]'s recycle drain. *)
        if
          Flags.is_dirty s
          && ((not (Nvram.Flit.enabled ()))
             || Flags.clear_dirty s = Layout.status_succeeded)
        then Pcas.persist mem status_a s
    | `NoDirty ->
        (* The clean decision must still be durable before Phase 2: a
           clean final is indistinguishable from a durable one, so a
           reader could otherwise build on a value that recovery rolls
           back. Both outcomes persist — with no dirty bit,
           [finalize_slot] could not tell a deferred Failed status from
           a settled one. *)
        if not (Nvram.Strategy.sabotage_skip_nodirty_flush ()) then begin
          Mem.clwb mem status_a;
          Mem.fence mem
        end
    | `FewFence ->
        (* Reduced-fence commit: only enqueue the status write-back
           here. The single fence of the phase-2 commit batch below
           drains it together with the finals — and because the clwb
           precedes every phase-2 install, any fence another thread
           issues after observing a dirty final (flush-on-read,
           [read_weak]'s persist) drains this status with it. *)
        let s = Mem.read mem status_a in
        if Flags.is_dirty s then Mem.clwb mem status_a
  end;
  let final = Flags.clear_dirty (Mem.read mem status_a) in
  let succeeded = final = Layout.status_succeeded in
  (* Phase 2: swap in the final values (or roll back to the old ones). *)
  Stats.set_phase stats Stats.Apply;
  let expected_dirty = desc_word t slot and expected_clean = desc_clean slot in
  (* Swap every word first, collecting the ones this thread won, then
     persist them as one batch (single drain-fence) — the phase-batching
     the sync model could not express. *)
  let won = ref [] in
  Array.iter
    (fun k ->
      let addr, old_v, new_v = entry_fields t ~slot ~k in
      let v = if succeeded then new_v else old_v in
      let v_inst =
        if persistent && strat <> `NoDirty then Flags.set_dirty v else v
      in
      let witnessed = Mem.cas mem addr ~expected:expected_dirty ~desired:v_inst in
      let witnessed =
        if persistent && witnessed = expected_clean then
          (* Someone flushed the pointer and cleared its dirty bit. *)
          Mem.cas mem addr ~expected:expected_clean ~desired:v_inst
        else witnessed
      in
      if
        persistent
        && (witnessed = expected_dirty || witnessed = expected_clean)
      then won := (addr, v_inst) :: !won)
    order;
  (if persistent then
     match strat with
     | `Paper ->
         if Nvram.Flit.enabled () then
           (* Destination-only persistence: leave the finals dirty. The
              decision is already durable, so recovery rolls them
              forward; readers strip the bit ([read_weak]) or flush on
              demand ([read]); the next op to claim such a word seals it
              as its expected value; and [Pool.finalize_slot] settles
              whatever is still owed before the slot recycles. *)
           let lw = (Mem.config mem).line_words in
           List.iter
             (fun (addr, _) -> Nvram.Flit.record_elided ~addr ~line:(addr / lw))
             !won
         else Pcas.persist_batch mem !won
     | `NoDirty ->
         (* Finals are clean but deliberately unflushed: the decision is
            already durable, so recovery rolls them forward, and
            [Pool.finalize_slot] settles by value match (current word
            still equals the final) before the slot recycles. *)
         if Nvram.Flit.enabled () then
           let lw = (Mem.config mem).line_words in
           List.iter
             (fun (addr, _) -> Nvram.Flit.record_elided ~addr ~line:(addr / lw))
             !won
     | `FewFence ->
         (* The relocated commit point: one batch — status plus the
            finals this thread won — one fence, then the dirty bits
            fall. If the status was already cleared, whoever cleared it
            fenced first, so its durability is covered. *)
         let s = Mem.read mem status_a in
         let batch =
           if Flags.is_dirty s then (status_a, s) :: !won else !won
         in
         if batch <> [] then begin
           Nvram.Strategy.record_commit_batch ~slot
             ~words:(List.length batch);
           Pcas.persist_batch
             ~fence:(not (Nvram.Strategy.sabotage_skip_commit_fence ()))
             mem batch
         end);
  Stats.set_phase stats prev_phase;
  if Flight.tracing () then
    Flight.emit
      (if succeeded then Flight.Mwcas_succeed else Flight.Mwcas_fail)
      slot 0 depth;
  succeeded

let help t ~slot = help_at t ~depth:1 ~slot

(* pmwcas_read (Algorithm 3): never expose descriptor pointers or
   unpersisted values to the caller. *)
let rec read t a =
  let mem = Pool.mem t in
  let v = Mem.read mem a in
  if Flags.is_rdcss v then begin
    Metrics.record_rdcss_help (Pool.metrics t);
    complete_install t v;
    read t a
  end
  else begin
    let v =
      if Flags.is_dirty v then begin
        if Pool.persistent t then Pcas.persist mem a v;
        Flags.clear_dirty v
      end
      else v
    in
    if Flags.is_mwcas v then begin
      Metrics.record_desc_help (Pool.metrics t);
      ignore (help t ~slot:(Layout.desc_of_ptr v));
      read t a
    end
    else v
  end

let read_with h a =
  Pool.with_epoch h (fun () -> read (Pool.pool_of_handle h) a)

(* Journey read (NVTraverse traversal phase): like [read] it never
   exposes a descriptor pointer — it still resolves RDCSS claims and
   helps foreign PMwCASes — but a dirty plain value is returned with the
   bit stripped and {e without} being persisted. Sound for traversals
   because every dirty value a journey can observe was installed by an
   operation that either re-persists it before depending on it
   ([install_rdcss]'s dirty-expected branch), or has already decided —
   and recovery rolls decided operations forward, re-applying their
   final values regardless of which applied words reached NVM. Only the
   destination pass ([Pcas.persist_target] / [Pcas.persist_range]) may
   rely on durability; anything the critical phase reads or writes must
   go through it. *)
let rec read_weak t a =
  let mem = Pool.mem t in
  let v = Mem.read mem a in
  if Flags.is_rdcss v then begin
    Metrics.record_rdcss_help (Pool.metrics t);
    complete_install t v;
    read_weak t a
  end
  else begin
    (* Under [`FewFence] a dirty value may be a phase-2 final of an op
       whose decision is only clwb'd, not yet drained — stripping it
       unflushed would let this traversal build on a value recovery can
       still roll back. Persist instead: the fence drains the pending
       status clwb along with the value. *)
    if
      Flags.is_dirty v && Pool.persistent t
      && Pcas.strategy mem = `FewFence
    then Pcas.persist mem a v;
    let v = Flags.clear_dirty v in
    if Flags.is_mwcas v then begin
      Metrics.record_desc_help (Pool.metrics t);
      ignore (help t ~slot:(Layout.desc_of_ptr v));
      read_weak t a
    end
    else v
  end

(* Consecutive failed [execute]s on this domain: seeds the backoff taken
   before handing a failure back to the (immediately retrying) caller.
   Reset on success, so uncontended misses stay near-free. *)
let failure_streak = Domain.DLS.new_key (fun () -> ref 0)

let execute d =
  if not (Pool.desc_live d) then
    invalid_arg "Op.execute: descriptor already executed or discarded";
  let t = Pool.desc_pool d in
  let h = Pool.desc_handle d in
  Pool.seal d;
  Metrics.record_attempt (Pool.metrics t);
  let slot = Pool.desc_slot d in
  let t0 =
    if Telemetry.enabled () && Telemetry.sample () then Telemetry.now_ns ()
    else 0
  in
  let sp = Flight.op_begin ~op:Flight.op_mwcas ~key:slot in
  let ok =
    match Pool.with_epoch h (fun () -> help_at t ~depth:0 ~slot) with
    | ok -> ok
    | exception e ->
        (* Unwound mid-op (an injected crash): close the span so the
           forensics timeline shows the abort. *)
        Flight.op_cancel sp ~op:Flight.op_mwcas ~key:slot;
        raise e
  in
  Flight.op_end sp ~op:Flight.op_mwcas ~key:slot ~ok;
  if t0 <> 0 then begin
    let dt = Telemetry.now_ns () - t0 in
    Telemetry.Histogram.record (attempt_hist ()) dt;
    if ok then Telemetry.Histogram.record (success_hist ()) dt
  end;
  let streak = Domain.DLS.get failure_streak in
  if ok then begin
    Metrics.record_succeeded (Pool.metrics t);
    streak := 0
  end
  else begin
    Metrics.record_failed (Pool.metrics t);
    incr streak;
    backoff t !streak
  end;
  Pool.finish d ~succeeded:ok;
  ok
