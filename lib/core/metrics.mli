(** PMwCAS operation counters (sharded per thread, like [Nvram.Stats]). *)

type t

type snapshot = {
  attempts : int;  (** Top-level [Op.execute] calls. *)
  succeeded : int;
  failed : int;
  desc_helps : int;  (** Times a thread helped complete another PMwCAS. *)
  rdcss_helps : int;  (** Times a thread helped complete an RDCSS install. *)
  backoffs : int;
      (** Bounded exponential-backoff waits taken after contended
          failures (failed [Op.execute] attempts, RDCSS collisions). *)
}

val create : unit -> t
val record_attempt : t -> unit
val record_succeeded : t -> unit
val record_failed : t -> unit
val record_desc_help : t -> unit
val record_rdcss_help : t -> unit
val record_backoff : t -> unit
val snapshot : t -> snapshot
val reset : t -> unit
val diff : snapshot -> snapshot -> snapshot

val to_json : snapshot -> Telemetry.Value.t
(** Stable export shape:
    [{attempts; succeeded; failed; desc_helps; rdcss_helps; backoffs}].
    Exporters use this; [pp] derives from it. *)

val pp : Format.formatter -> snapshot -> unit
