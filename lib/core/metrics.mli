(** PMwCAS operation counters (sharded per thread, like [Nvram.Stats]). *)

type t

type snapshot = {
  attempts : int;  (** Top-level [Op.execute] calls. *)
  succeeded : int;
  failed : int;
  desc_helps : int;  (** Times a thread helped complete another PMwCAS. *)
  rdcss_helps : int;  (** Times a thread helped complete an RDCSS install. *)
  backoffs : int;
      (** Bounded exponential-backoff waits taken after contended
          failures (failed [Op.execute] attempts, RDCSS collisions). *)
  desc_local : int;
      (** Descriptor allocations served from the owning domain's local
          free list — the contention-free fast path. *)
  desc_remote : int;
      (** Descriptor allocations that had to drain the partition inbox or
          steal from another domain's inbox. *)
  desc_scans : int;
      (** Slots examined by the shared-pool baseline's free-slot scan
          (zero under per-domain pools). *)
  alloc_retries : int;
      (** Empty-pool retry rounds in [Pool.alloc_desc] (each forces an
          epoch advance + reclaim before re-trying). *)
}

val create : unit -> t
val record_attempt : t -> unit
val record_succeeded : t -> unit
val record_failed : t -> unit
val record_desc_help : t -> unit
val record_rdcss_help : t -> unit
val record_backoff : t -> unit
val record_desc_local : t -> unit
val record_desc_remote : t -> unit
val record_desc_scan : t -> unit
val record_alloc_retry : t -> unit
val snapshot : t -> snapshot
val reset : t -> unit
val diff : snapshot -> snapshot -> snapshot

val to_json : snapshot -> Telemetry.Value.t
(** Stable export shape:
    [{attempts; succeeded; failed; desc_helps; rdcss_helps; backoffs;
      desc_local; desc_remote; desc_scans; alloc_retries}].
    Exporters use this; [pp] derives from it. *)

val pp : Format.formatter -> snapshot -> unit
