(** Persistent memory allocator with safe ownership transfer
    (Section 5.2 of the paper).

    The allocator owns a contiguous word range of a simulated NVRAM device
    and hands out blocks through a [posix_memalign]-style {e activation}
    interface: the caller passes the NVRAM address of a {e delivery word}
    ([dest]) and the allocator durably stores the block's address there
    before the allocation is considered complete. After a crash, recovery
    guarantees every block is owned by exactly one party:

    - if the delivery word durably holds the block address, the
      application owns it (allocation rolled forward);
    - otherwise the allocator owns it again (allocation rolled back).

    In-flight allocations are tracked in per-thread {e activation records}
    inside the allocator's metadata region, mirroring the reserve/activate
    split of persistent allocators the paper builds on.

    Internally: segregated power-of-two size classes over a persistent
    bump region. Block headers (1 word: size class + allocated bit) are
    durable; free lists are volatile and rebuilt by [recover]'s heap scan.
    Freed blocks are recycled exactly, never split or coalesced, bounding
    internal fragmentation at 2x — adequate for index nodes, and it keeps
    the recovery scan trivially linear.

    A [persistent:false] allocator skips every flush (for volatile-mode
    indexes); such a heap cannot be recovered but behaves identically
    otherwise. *)

type t

type handle
(** Per-thread handle owning one activation record. Not thread-safe:
    one handle per domain. *)

val metadata_words : max_threads:int -> int
(** Words of the region consumed by allocator metadata for sizing. *)

val create :
  ?persistent:bool -> Nvram.Mem.t -> base:int -> words:int -> max_threads:int
  -> t
(** Format a fresh allocator over [\[base, base+words)]. [max_threads]
    bounds concurrently registered handles. [persistent] defaults to
    [Mem.durable mem]: flushes are elided automatically on a volatile
    (DRAM) backend, and requesting [persistent:true] on one is an error.
    @raise Invalid_argument if the region is too small or out of bounds,
    or if [persistent:true] is requested on a non-durable backend. *)

val recover :
  Nvram.Mem.t -> base:int -> words:int -> max_threads:int -> t * int
(** Attach to a previously formatted region inside a crash image and run
    allocator recovery: resolve every in-flight activation record (roll
    forward or back) and rebuild the volatile free lists by scanning block
    headers. Returns the allocator and the number of in-flight allocations
    that were rolled {e back}. Single-threaded, run before any worker
    starts (and before PMwCAS recovery, which may call [free]). *)

val register_thread : t -> handle
(** Claim an activation record. @raise Failure if [max_threads] handles
    are live. *)

val release_thread : handle -> unit

val alloc : handle -> nwords:int -> dest:Nvram.Mem.addr -> Nvram.Mem.addr
(** Allocate at least [nwords] words; durably deliver the block address
    into [dest] (which is first durably nulled) and return it. The block's
    content is NOT zeroed — callers initialize and persist it themselves
    (freshly carved space is zero; recycled blocks carry old data, as in C).
    @raise Failure ([Out of memory]) when the heap is exhausted
    @raise Invalid_argument if [nwords <= 0]. *)

val alloc_unsafe : handle -> nwords:int -> Nvram.Mem.addr
(** Allocation without a delivery word: no activation record is taken, so
    a crash between this call and the block becoming reachable leaks the
    block — exactly the hazard Section 5.2 describes. Provided for
    volatile-mode data structures and for tests that demonstrate the
    hazard. *)

val free : t -> Nvram.Mem.addr -> unit
(** Return a block (by the address [alloc] returned) to its size class.
    Thread-safe; durable before the block is recyclable.
    Equivalent to [mark_free] followed by [enlist].
    @raise Invalid_argument on a non-block address or double free. *)

val mark_free : t -> Nvram.Mem.addr -> unit
(** Durably flip the block's header to free {e without} making it
    recyclable. Used by callers that must order "free is durable" before
    some other durable step, after which they [enlist]. A crash in between
    is safe: recovery's heap scan re-enlists every durably free block.
    @raise Invalid_argument on a non-block address or double free. *)

val mark_free_if_allocated : t -> Nvram.Mem.addr -> bool
(** Crash-replay-tolerant [mark_free]: returns [false] (and does nothing)
    when the header is already free — the free being replayed happened
    before the crash. Only meaningful during single-threaded recovery.
    @raise Invalid_argument on a non-block address. *)

val enlist : t -> Nvram.Mem.addr -> unit
(** Make a block previously [mark_free]d recyclable. The caller owns the
    ordering; enlisting a block twice corrupts the free lists. *)

val usable_size : t -> Nvram.Mem.addr -> int
(** Actual capacity of the block (>= requested [nwords]). *)

val base : t -> int
val mem : t -> Nvram.Mem.t

(** {1 Introspection (tests, space accounting)} *)

type audit = {
  allocated_blocks : int;
  allocated_words : int;  (** Payload words currently owned by clients. *)
  free_blocks : int;
  free_words : int;
  carved_words : int;  (** Total heap words ever carved, incl. headers. *)
  in_flight : int;  (** Non-empty activation records. *)
}

val audit : t -> audit
(** Walk the heap headers and cross-check against the free lists.
    @raise Failure on any inconsistency (corrupt header, free-list entry
    whose header is not free, overlapping blocks). *)

val pp_audit : Format.formatter -> audit -> unit
