(** Persistent memory allocator with safe ownership transfer
    (Section 5.2 of the paper).

    The allocator owns a contiguous word range of a simulated NVRAM device
    and hands out blocks through a [posix_memalign]-style {e activation}
    interface: the caller passes the NVRAM address of a {e delivery word}
    ([dest]) and the allocator durably stores the block's address there
    before the allocation is considered complete. After a crash, recovery
    guarantees every block is owned by exactly one party:

    - if the delivery word durably holds the block address, the
      application owns it (allocation rolled forward);
    - otherwise the allocator owns it again (allocation rolled back).

    In-flight allocations are tracked in per-thread {e activation records}
    inside the allocator's metadata region, mirroring the reserve/activate
    split of persistent allocators the paper builds on.

    Internally the heap is split into {e arenas} — independent shards,
    each with its own durable bump pointer, carve lock and volatile free
    lists — and every handle has a {e home} arena plus a per-size-class
    {e carve cache}: taking the home arena's lock carves a chunk of
    several blocks at once (all headers made durable before the single
    durable bump-pointer update), the first block satisfies the
    allocation and the rest are served later with no locks or atomics at
    all. Handles mapped to different arenas therefore never contend.
    Caches are volatile: a crash leaves cached blocks as durably-free
    headers that [recover]'s per-arena heap scan re-enlists.

    Segregated power-of-two size classes; block headers (1 word: size
    class + allocated bit) are durable; free lists are volatile and
    rebuilt by [recover]. Freed blocks are recycled exactly, never split
    or coalesced, bounding internal fragmentation at 2x — adequate for
    index nodes, and it keeps the recovery scan trivially linear.

    A [persistent:false] allocator skips every flush (for volatile-mode
    indexes); such a heap cannot be recovered but behaves identically
    otherwise. *)

type t

type handle
(** Per-thread handle owning one activation record, a home arena and the
    carve caches. Not thread-safe: one handle per domain. *)

val metadata_words : ?arenas:int -> max_threads:int -> unit -> int
(** Words of the region consumed by allocator metadata for sizing
    ([arenas] defaults to the [create] default's upper bound, 8). *)

val create :
  ?persistent:bool ->
  ?arenas:int ->
  ?carve_blocks:int ->
  Nvram.Mem.t ->
  base:int ->
  words:int ->
  max_threads:int ->
  t
(** Format a fresh allocator over [\[base, base+words)]. [max_threads]
    bounds concurrently registered handles. [arenas] (default
    [min max_threads 8]) requests the shard count; it is durably recorded
    in the header and automatically reduced when the region is too small
    to give every shard a useful slice. [carve_blocks] (default 8) caps
    the blocks a single carve pre-claims into the caller's cache (small
    classes carve up to this many; large classes carve fewer so no class
    hoards space). [persistent] defaults to [Mem.durable mem]: flushes
    are elided automatically on a volatile (DRAM) backend, and requesting
    [persistent:true] on one is an error.
    @raise Invalid_argument if the region is too small or out of bounds,
    or if [persistent:true] is requested on a non-durable backend. *)

val recover :
  ?carve_blocks:int ->
  Nvram.Mem.t ->
  base:int ->
  words:int ->
  max_threads:int ->
  t * int
(** Attach to a previously formatted region inside a crash image and run
    allocator recovery: resolve every in-flight activation record (roll
    forward or back) and rebuild the volatile free lists by scanning each
    arena's block headers up to its durable bump pointer. The arena count
    is read back from the durable header, so the geometry always matches
    the [create] that formatted the region. Returns the allocator and the
    number of in-flight allocations that were rolled {e back}.
    Single-threaded, run before any worker starts (and before PMwCAS
    recovery, which may call [free]). *)

val register_thread : ?arena:int -> t -> handle
(** Claim an activation record. [arena] pins the handle's home arena
    (reduced mod the arena count — callers pass a partition index, e.g.
    {!Pool.handle_part}, to co-shard allocator and descriptor pool);
    default is the record slot mod the arena count, spreading handles
    round-robin. @raise Failure if [max_threads] handles are live. *)

val release_thread : handle -> unit
(** Release the record. Cached blocks are handed back to their arena's
    free lists first, so nothing is stranded behind a dead handle. *)

val alloc :
  ?reserved:bool -> handle -> nwords:int -> dest:Nvram.Mem.addr
  -> Nvram.Mem.addr
(** Allocate at least [nwords] words; durably deliver the block address
    into [dest] (which is first durably nulled) and return it. The block's
    content is NOT zeroed — callers initialize and persist it themselves
    (freshly carved space is zero; recycled blocks carry old data, as in C).
    Served from the handle's cache, then the home arena's free list, then
    a fresh carve, then the other arenas.

    [~reserved:true] promises that [dest] is a descriptor entry obtained
    from [Pool.reserve_entry] — durably holding 0, with a rollback policy
    that frees the delivered block. Under destination-only persistence
    ({!Nvram.Flit.enabled}) the activation record is then skipped: the
    delivery word is drained before the header flips to allocated, so the
    descriptor's rollback is the sole (and sufficient) durable reference.
    With FliT disabled the flag is ignored and the classic record is
    taken.
    @raise Failure ([Out of memory]) when every arena is exhausted, with
    a per-arena occupancy diagnostic
    @raise Invalid_argument if [nwords <= 0]. *)

val alloc_unsafe : handle -> nwords:int -> Nvram.Mem.addr
(** Allocation without a delivery word: no activation record is taken, so
    a crash between this call and the block becoming reachable leaks the
    block — exactly the hazard Section 5.2 describes. Provided for
    volatile-mode data structures and for tests that demonstrate the
    hazard. *)

val free : t -> Nvram.Mem.addr -> unit
(** Return a block (by the address [alloc] returned) to its size class in
    the arena it was carved from. Thread-safe; durable before the block
    is recyclable. Equivalent to [mark_free] followed by [enlist].
    @raise Invalid_argument on a non-block address or double free. *)

val mark_free : t -> Nvram.Mem.addr -> unit
(** Durably flip the block's header to free {e without} making it
    recyclable. Used by callers that must order "free is durable" before
    some other durable step, after which they [enlist]. A crash in between
    is safe: recovery's heap scan re-enlists every durably free block.
    @raise Invalid_argument on a non-block address or double free. *)

val mark_free_if_allocated : t -> Nvram.Mem.addr -> bool
(** Crash-replay-tolerant [mark_free]: returns [false] (and does nothing)
    when the header is already free — the free being replayed happened
    before the crash. Only meaningful during single-threaded recovery.
    @raise Invalid_argument on a non-block address. *)

val enlist : t -> Nvram.Mem.addr -> unit
(** Make a block previously [mark_free]d recyclable (in its own arena).
    The caller owns the ordering; enlisting a block twice corrupts the
    free lists. *)

val usable_size : t -> Nvram.Mem.addr -> int
(** Actual capacity of the block (>= requested [nwords]). *)

val base : t -> int
val mem : t -> Nvram.Mem.t

val arenas : t -> int
(** Number of arenas the heap was formatted with. *)

(** {1 Introspection (tests, space accounting)} *)

type audit = {
  allocated_blocks : int;
  allocated_words : int;  (** Payload words currently owned by clients. *)
  free_blocks : int;
  free_words : int;
  carved_words : int;  (** Total heap words ever carved, incl. headers. *)
  in_flight : int;  (** Non-empty activation records. *)
}

val audit : t -> audit
(** Walk every arena's headers and cross-check against the free lists.
    @raise Failure on any inconsistency (corrupt header, free-list entry
    whose header is not free, overlapping blocks). *)

val pp_audit : Format.formatter -> audit -> unit

(** {1 Allocation counters}

    Process-global (across every allocator), sharded per domain: where
    allocations were served from. [cache_hits] is the contention-free
    fast path; [arena_steals] counts fall-backs to a non-home arena
    (a sign the home arena is exhausted). *)

type counters = {
  cache_hits : int;
  freelist_hits : int;
  carves : int;
  carved_blocks : int;
  arena_steals : int;
}

val counters : unit -> counters

val reset_counters : unit -> unit
(** Zero the process-global counters (tests and fresh benchmark runs). *)

val counters_to_json : counters -> Telemetry.Value.t
val pp_counters : Format.formatter -> counters -> unit
