module Mem = Nvram.Mem

let magic = 0x9a110c (* "palloc" *)
let num_classes = 32
let max_arenas = 64

(* Soft cap on the words a single carve may pre-claim: chunked carving
   amortizes the arena lock and the bump-pointer flush over several
   blocks for small classes without letting large classes hoard space. *)
let carve_words_target = 64

(* --- allocation telemetry ------------------------------------------- *)

(* Process-global sharded counters (see Telemetry.Sharded): where did
   allocations come from (domain cache / arena free list / fresh carve /
   another domain's arena), and how much did carving pre-claim. *)
let f_cache = 0 (* allocations served by the handle's carve cache *)
let f_list = 1 (* allocations served by an arena free list *)
let f_carve = 2 (* carve calls (lock acquisitions) *)
let f_carved_blocks = 3 (* blocks pre-claimed by carves *)
let f_steal = 4 (* allocations that fell back to a non-home arena *)
let counters_cells = Telemetry.Sharded.create ~fields:5

type counters = {
  cache_hits : int;
  freelist_hits : int;
  carves : int;
  carved_blocks : int;
  arena_steals : int;
}

let counters () =
  let sum = Telemetry.Sharded.sum counters_cells in
  {
    cache_hits = sum f_cache;
    freelist_hits = sum f_list;
    carves = sum f_carve;
    carved_blocks = sum f_carved_blocks;
    arena_steals = sum f_steal;
  }

let reset_counters () = Telemetry.Sharded.reset counters_cells

let counters_to_json c =
  Telemetry.Value.Obj
    [
      ("cache_hits", Telemetry.Value.Int c.cache_hits);
      ("freelist_hits", Telemetry.Value.Int c.freelist_hits);
      ("carves", Telemetry.Value.Int c.carves);
      ("carved_blocks", Telemetry.Value.Int c.carved_blocks);
      ("arena_steals", Telemetry.Value.Int c.arena_steals);
    ]

let pp_counters ppf c = Telemetry.Value.pp_flat ppf (counters_to_json c)

(* One shard of the heap: its own durable bump pointer, carve lock and
   volatile free lists, so domains mapped to different arenas never
   contend on either the lock or the free-list CAS. *)
type arena = {
  a_base : int;
  a_limit : int; (* first word past this arena *)
  next_addr : int; (* durable bump pointer *)
  free_lists : int list Atomic.t array; (* header offsets, per class *)
  lock : Mutex.t;
}

type t = {
  mem : Mem.t;
  persistent : bool;
  base : int;
  limit : int; (* first word past the heap *)
  magic_addr : int;
  arenas_addr : int;
  threads_addr : int;
  slots_base : int;
  max_threads : int;
  arenas : arena array;
  claimed : bool Atomic.t array;
  carve_blocks : int;
}

type handle = {
  t : t;
  slot : int;
  home : int; (* arena index this handle carves from *)
  cache : int list array; (* per class, durably-free header offsets *)
  mutable live : bool;
}

(* Header encoding: [size_class * 2 + allocated_bit]; 0 = never carved. *)
let hdr ~cls ~allocated = (((cls + 1) * 2) + if allocated then 1 else 0)
let hdr_class h = (h / 2) - 1
let hdr_allocated h = h land 1 = 1
let class_size cls = 1 lsl cls

let class_of nwords =
  let rec go c = if class_size c >= nwords then c else go (c + 1) in
  go 0

let metadata_words ?(arenas = 8) ~max_threads () =
  8 + (2 * max_threads) + 8 + arenas + 8

let line_align mem a =
  let lw = (Mem.config mem).line_words in
  (a + lw - 1) / lw * lw

let clwb t a = if t.persistent then Mem.clwb t.mem a
let fence t = if t.persistent then Mem.fence t.mem

let default_arenas ~max_threads = min max_threads 8

(* Geometry is a pure function of (base, words, max_threads, narenas):
   [create] persists [narenas] in the header and [recover] reads it back,
   so both sides always carve the identical arena boundaries. *)
let layout mem ~persistent ~base ~words ~max_threads ~narenas ~carve_blocks =
  if max_threads <= 0 then invalid_arg "Palloc: max_threads <= 0";
  if narenas <= 0 || narenas > max_arenas then
    invalid_arg "Palloc: arena count out of range";
  if carve_blocks <= 0 then invalid_arg "Palloc: carve_blocks <= 0";
  if base < 0 || words <= 0 || base + words > Mem.size mem then
    invalid_arg "Palloc: region out of device bounds";
  if base <> line_align mem base then
    invalid_arg "Palloc: base must be cache-line aligned";
  let magic_addr = base in
  let arenas_addr = base + 1 in
  let threads_addr = base + 2 in
  let slots_base = line_align mem (base + 3) in
  let nexts_base = line_align mem (slots_base + (2 * max_threads)) in
  let heap0 = line_align mem (nexts_base + narenas) in
  let limit = base + words in
  if heap0 + 2 > limit then invalid_arg "Palloc: region too small";
  let span = limit - heap0 in
  let bound i =
    if i = 0 then heap0
    else if i = narenas then limit
    else line_align mem (heap0 + (i * span / narenas))
  in
  let arenas =
    Array.init narenas (fun i ->
        {
          a_base = bound i;
          a_limit = bound (i + 1);
          next_addr = nexts_base + i;
          free_lists = Array.init num_classes (fun _ -> Atomic.make []);
          lock = Mutex.create ();
        })
  in
  Array.iter
    (fun a ->
      if a.a_limit - a.a_base < 2 then
        invalid_arg "Palloc: region too small for this many arenas")
    arenas;
  {
    mem;
    persistent;
    base;
    limit;
    magic_addr;
    arenas_addr;
    threads_addr;
    slots_base;
    max_threads;
    arenas;
    claimed = Array.init max_threads (fun _ -> Atomic.make false);
    carve_blocks;
  }

(* Shrink the requested arena count until every shard gets a useful
   slice; tiny test heaps collapse to one arena rather than failing. *)
let fit_arenas mem ~base ~words ~max_threads ~narenas =
  let lw = (Mem.config mem).line_words in
  let rec go n =
    if n <= 1 then 1
    else
      let slots_base = line_align mem (base + 3) in
      let nexts_base = line_align mem (slots_base + (2 * max_threads)) in
      let heap0 = line_align mem (nexts_base + n) in
      let span = base + words - heap0 in
      if span >= n * 4 * lw then n else go (n / 2)
  in
  go narenas

let create ?persistent ?arenas:requested ?(carve_blocks = 8) mem ~base ~words
    ~max_threads =
  let persistent = Option.value persistent ~default:(Mem.durable mem) in
  if persistent && not (Mem.durable mem) then
    invalid_arg "Palloc.create: persistent allocator requires a durable backend";
  let requested =
    Option.value requested ~default:(default_arenas ~max_threads)
  in
  if requested <= 0 || requested > max_arenas then
    invalid_arg "Palloc.create: arena count out of range";
  let narenas = fit_arenas mem ~base ~words ~max_threads ~narenas:requested in
  let t =
    layout mem ~persistent ~base ~words ~max_threads ~narenas ~carve_blocks
  in
  Mem.write mem t.magic_addr magic;
  Mem.write mem t.arenas_addr narenas;
  Mem.write mem t.threads_addr max_threads;
  for i = 0 to max_threads - 1 do
    Mem.write mem (t.slots_base + (2 * i)) 0;
    Mem.write mem (t.slots_base + (2 * i) + 1) 0
  done;
  Array.iter (fun a -> Mem.write mem a.next_addr a.a_base) t.arenas;
  if persistent then begin
    Mem.clwb_range mem ~lo:t.magic_addr ~hi:t.threads_addr;
    let lw = (Mem.config mem).line_words in
    let a = ref t.slots_base in
    while !a < t.slots_base + (2 * max_threads) do
      Mem.clwb mem !a;
      a := !a + lw
    done;
    Array.iter (fun a -> Mem.clwb mem a.next_addr) t.arenas;
    Mem.fence mem
  end;
  t

let base t = t.base
let mem t = t.mem
let arenas t = Array.length t.arenas

let register_thread ?arena t =
  let rec claim i =
    if i >= t.max_threads then failwith "Palloc.register_thread: no slots"
    else if Atomic.compare_and_set t.claimed.(i) false true then i
    else claim (i + 1)
  in
  let slot = claim 0 in
  let narenas = Array.length t.arenas in
  let home =
    match arena with Some a -> a mod narenas | None -> slot mod narenas
  in
  { t; slot; home; cache = Array.make num_classes []; live = true }

let arena_of_addr t b =
  let rec go i =
    if i >= Array.length t.arenas then
      invalid_arg "Palloc: address outside heap"
    else
      let a = t.arenas.(i) in
      if b >= a.a_base && b < a.a_limit then a else go (i + 1)
  in
  go 0

let pop_free a cls =
  let l = a.free_lists.(cls) in
  let rec loop () =
    match Atomic.get l with
    | [] -> None
    | b :: rest as cur ->
        if Atomic.compare_and_set l cur rest then Some b else loop ()
  in
  loop ()

let push_free a cls b =
  let l = a.free_lists.(cls) in
  let rec loop () =
    let cur = Atomic.get l in
    if not (Atomic.compare_and_set l cur (b :: cur)) then loop ()
  in
  loop ()

let release_thread h =
  if not h.live then invalid_arg "Palloc: handle already released";
  h.live <- false;
  (* Cached blocks are durably free headers — hand them back to their
     arena's free lists so nothing is stranded behind a dead handle. *)
  Array.iteri
    (fun cls blocks ->
      List.iter (fun b -> push_free (arena_of_addr h.t b) cls b) blocks;
      h.cache.(cls) <- [])
    h.cache;
  Atomic.set h.t.claimed.(h.slot) false

exception Arena_full

(* Extend [a]'s heap by up to [want] blocks of class [cls]; returns the
   header offsets (at least one, or raises [Arena_full]). Ordering for
   recovery, per arena: every pre-claimed free header is durable before
   the one durable bump-pointer update makes the chunk part of the
   scannable heap — the same free-header-before-bump order as a
   single-block carve, paid once per chunk instead of once per block. *)
let carve_chunk t a cls ~want =
  Mutex.lock a.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock a.lock)
    (fun () ->
      (* Hook-masked: a scheduler yield taken while holding the arena
         lock would deadlock other carvers on a single-domain cooperative
         run (see [Mem.mask_hook]). *)
      Mem.mask_hook t.mem @@ fun () ->
      let next = Mem.read t.mem a.next_addr in
      let total = 1 + class_size cls in
      let fit = min want ((a.a_limit - next) / total) in
      if fit <= 0 then raise Arena_full;
      for k = 0 to fit - 1 do
        Mem.write t.mem (next + (k * total)) (hdr ~cls ~allocated:false)
      done;
      if t.persistent then begin
        let lw = (Mem.config t.mem).line_words in
        if total < lw then
          Mem.clwb_range t.mem ~lo:next ~hi:(next + (fit * total) - 1)
        else
          for k = 0 to fit - 1 do
            Mem.clwb t.mem (next + (k * total))
          done
      end;
      (* Drain before the bump-pointer store executes: the headers must be
         durable before any durable [next] covers them, or recovery's
         heap walk reads an uncarved word. *)
      fence t;
      Mem.write t.mem a.next_addr (next + (fit * total));
      clwb t a.next_addr;
      (* And the new bump pointer must be durable before any block is
         delivered: a crash image whose walk stops short of a block the
         application durably references would let a later carve hand the
         same words out twice. *)
      fence t;
      List.init fit (fun k -> next + (k * total)))

let chunk_blocks t cls =
  max 1 (min t.carve_blocks (carve_words_target / (1 + class_size cls)))

(* Carve a chunk from [a]; first block satisfies the caller, the rest
   stock the handle's cache for lock-free follow-up allocations. *)
let carve_into_cache h ~arena a cls =
  match carve_chunk h.t a cls ~want:(chunk_blocks h.t cls) with
  | [] -> None
  | b :: rest ->
      Telemetry.Sharded.incr counters_cells f_carve;
      Telemetry.Sharded.add counters_cells f_carved_blocks (1 + List.length rest);
      if Flight.tracing () then
        Flight.emit Flight.Palloc_carve cls (1 + List.length rest) arena;
      h.cache.(cls) <- rest @ h.cache.(cls);
      Some b
  | exception Arena_full -> None

let oom t cls =
  let per_arena =
    String.concat " "
      (Array.to_list
         (Array.mapi
            (fun i a ->
              Printf.sprintf "a%d:carved=%d/%d" i
                (Mem.read t.mem a.next_addr - a.a_base)
                (a.a_limit - a.a_base))
            t.arenas))
  in
  failwith
    (Printf.sprintf "Palloc.alloc: out of memory (class %d, %d+1 words; %s)"
       cls (class_size cls) per_arena)

let obtain h ~nwords =
  let t = h.t in
  let cls = class_of nwords in
  match h.cache.(cls) with
  | b :: rest ->
      (* Common case: a block this domain already pre-claimed under the
         arena lock — no atomics at all. *)
      h.cache.(cls) <- rest;
      Telemetry.Sharded.incr counters_cells f_cache;
      (cls, b)
  | [] -> (
      let home = t.arenas.(h.home) in
      match pop_free home cls with
      | Some b ->
          Telemetry.Sharded.incr counters_cells f_list;
          (cls, b)
      | None -> (
          match carve_into_cache h ~arena:h.home home cls with
          | Some b -> (cls, b)
          | None ->
              (* Home arena exhausted for this class: fall back over the
                 other shards before giving up. *)
              let n = Array.length t.arenas in
              let rec fallback i =
                if i >= n then oom t cls
                else
                  let j = (h.home + i) mod n in
                  let a = t.arenas.(j) in
                  match pop_free a cls with
                  | Some b -> (j, b)
                  | None -> (
                      match carve_into_cache h ~arena:j a cls with
                      | Some b -> (j, b)
                      | None -> fallback (i + 1))
              in
              let victim, b = fallback 1 in
              Telemetry.Sharded.incr counters_cells f_steal;
              if Flight.tracing () then
                Flight.emit Flight.Palloc_steal cls victim 0;
              (cls, b)))

let slot_block h = h.t.slots_base + (2 * h.slot)
let slot_dest h = h.t.slots_base + (2 * h.slot) + 1

(* End-to-end allocation latency: covers cache / free-list pop / carve,
   the activation record and its flushes. On-demand so the registry entry
   only appears once an allocator runs. *)
let alloc_hist = Telemetry.on_demand "palloc.alloc_ns"

let alloc ?(reserved = false) h ~nwords ~dest =
  if not h.live then invalid_arg "Palloc: handle already released";
  if nwords <= 0 then invalid_arg "Palloc.alloc: nwords <= 0";
  let t0 =
    if Telemetry.enabled () && Telemetry.sample () then Telemetry.now_ns ()
    else 0
  in
  let t = h.t in
  (* Phase label for crash classification; restored on normal return only
     so an injected crash freezes it (see Nvram.Stats). *)
  let stats_sh = Mem.stats t.mem in
  let prev_phase = Nvram.Stats.current_phase stats_sh in
  Nvram.Stats.set_phase stats_sh Nvram.Stats.Alloc;
  let cls, b = obtain h ~nwords in
  let payload = b + 1 in
  if t.persistent && reserved && Nvram.Flit.enabled () then begin
    (* Reserved delivery under destination-only persistence: [dest] is a
       descriptor entry the caller durably reserved ([ReserveEntry]
       persisted it holding 0 before this call), so the descriptor's
       rollback policy is already the durable reference to the block and
       the activation record buys nothing. Deliver first and drain, so a
       durably allocated header can only coexist with a durable pointer
       to the block: recovery either rolls the reservation back (freeing
       the block) or finds the header still durably free with nothing
       durable pointing at it. *)
    Mem.write t.mem dest payload;
    Mem.clwb t.mem dest;
    Mem.fence t.mem;
    Mem.write t.mem b (hdr ~cls ~allocated:true);
    clwb t b
    (* No trailing drain: the header write-back need only land before the
       block becomes durably reachable, and every route there (the seal's
       [persist_desc], precommit) fences first. *)
  end
  else begin
    if t.persistent then begin
      (* Activation record. Dest word is written before the block word so
         a torn volatile snapshot can never show a record pointing at a
         stale delivery address. Both words share a cache line (2-word
         aligned slot), so the crash image sees them together. *)
      Mem.write t.mem (slot_dest h) dest;
      Mem.write t.mem (slot_block h) b;
      Mem.clwb t.mem (slot_block h);
      (* Null the delivery word so recovery's "did it complete?" test is
         unambiguous. *)
      Mem.write t.mem dest 0;
      Mem.clwb t.mem dest;
      (* The record and the nulled delivery word must be durable before
         the header flips to allocated — recovery's "did it complete?"
         test reads them. *)
      Mem.fence t.mem
    end;
    Mem.write t.mem b (hdr ~cls ~allocated:true);
    clwb t b;
    Mem.write t.mem dest payload;
    clwb t dest;
    (* One drain covers the header and the delivery word; both must be
       durable before the record is retired, or a crash image could pair
       a cleared record with a free header the application durably points
       into. *)
    fence t;
    if t.persistent then begin
      Mem.write t.mem (slot_block h) 0;
      Mem.clwb t.mem (slot_block h)
    end
  end;
  Nvram.Stats.set_phase stats_sh prev_phase;
  if t0 <> 0 then
    Telemetry.Histogram.record (alloc_hist ())
      (Telemetry.now_ns () - t0);
  payload

let alloc_unsafe h ~nwords =
  if not h.live then invalid_arg "Palloc: handle already released";
  if nwords <= 0 then invalid_arg "Palloc.alloc: nwords <= 0";
  let t = h.t in
  let cls, b = obtain h ~nwords in
  Mem.write t.mem b (hdr ~cls ~allocated:true);
  clwb t b;
  fence t;
  b + 1

let heap_lo t = t.arenas.(0).a_base

let header_of t payload =
  let b = payload - 1 in
  if b < heap_lo t || b >= t.limit then
    invalid_arg "Palloc: address outside heap";
  b

let block_class t payload ~who =
  let b = header_of t payload in
  let h = Mem.read t.mem b in
  let cls = hdr_class h in
  if h = 0 || cls < 0 || cls >= num_classes then
    invalid_arg (who ^ ": not a block");
  (b, h, cls)

let mark_free t payload =
  let b, h, cls = block_class t payload ~who:"Palloc.mark_free" in
  if not (hdr_allocated h) then invalid_arg "Palloc.mark_free: double free";
  if Mem.cas t.mem b ~expected:h ~desired:(hdr ~cls ~allocated:false) <> h
  then invalid_arg "Palloc.mark_free: concurrent double free";
  clwb t b

let mark_free_if_allocated t payload =
  let b, h, cls = block_class t payload ~who:"Palloc.mark_free_if_allocated" in
  if not (hdr_allocated h) then false
  else begin
    Mem.write t.mem b (hdr ~cls ~allocated:false);
    clwb t b;
    true
  end

let enlist t payload =
  let b, _, cls = block_class t payload ~who:"Palloc.enlist" in
  push_free (arena_of_addr t b) cls b

let free t payload =
  mark_free t payload;
  (* Durably free before reusable ([mark_free] itself leaves the write-back
     pending so slot-finalization paths can batch several frees under the
     pool's one fence). *)
  fence t;
  enlist t payload

let usable_size t payload =
  let b = header_of t payload in
  let h = Mem.read t.mem b in
  if h = 0 then invalid_arg "Palloc.usable_size: not a block";
  class_size (hdr_class h)

let recover ?(carve_blocks = 8) mem ~base ~words ~max_threads =
  if not (Mem.durable mem) then
    invalid_arg "Palloc.recover: requires a durable backend";
  if Mem.read mem base <> magic then
    failwith "Palloc.recover: bad magic (region was never formatted)";
  let corrupt what =
    failwith (Printf.sprintf "Palloc.recover: corrupt header (%s)" what)
  in
  let narenas = Mem.read mem (base + 1) in
  if narenas <= 0 || narenas > max_arenas then
    corrupt (Printf.sprintf "arena count %d" narenas);
  let stored_threads = Mem.read mem (base + 2) in
  if stored_threads <> max_threads then
    corrupt
      (Printf.sprintf "max_threads %d, expected %d" stored_threads max_threads);
  let t =
    match
      layout mem ~persistent:true ~base ~words ~max_threads ~narenas
        ~carve_blocks
    with
    | t -> t
    | exception Invalid_argument m -> corrupt m
  in
  (* Phase 1: resolve in-flight activation records. *)
  let rolled_back = ref 0 in
  for i = 0 to max_threads - 1 do
    let sb = t.slots_base + (2 * i) in
    let b = Mem.read mem sb in
    if b <> 0 then begin
      let dest = Mem.read mem (sb + 1) in
      let payload = b + 1 in
      let h = Mem.read mem b in
      let cls = hdr_class h in
      if dest >= 0 && dest < Mem.size mem && Mem.read mem dest = payload
      then begin
        (* Delivery completed: the application owns the block. *)
        Mem.write mem b (hdr ~cls ~allocated:true);
        Mem.clwb mem b
      end
      else begin
        Mem.write mem b (hdr ~cls ~allocated:false);
        Mem.clwb mem b;
        incr rolled_back
      end;
      Mem.write mem sb 0;
      Mem.clwb mem sb
    end
  done;
  (* Drain the record resolutions before the allocator goes back into
     service. *)
  Mem.fence mem;
  (* Phase 2: rebuild volatile free lists by walking every arena's
     durable headers up to its durable bump pointer. Blocks that sat in
     a handle's carve cache at the crash are durably free and re-enlist
     here — caches are volatile, nothing leaks. *)
  Array.iter
    (fun a ->
      let heap_next = Mem.read mem a.next_addr in
      if heap_next < a.a_base || heap_next > a.a_limit then
        corrupt (Printf.sprintf "bump pointer %d outside arena" heap_next);
      let p = ref a.a_base in
      while !p < heap_next do
        let h = Mem.read mem !p in
        let cls = hdr_class h in
        if h = 0 || cls < 0 || cls >= num_classes then
          failwith
            (Printf.sprintf "Palloc.recover: corrupt header %d at %d" h !p);
        if not (hdr_allocated h) then push_free a cls !p;
        p := !p + 1 + class_size cls
      done;
      if !p <> heap_next then failwith "Palloc.recover: heap walk overran")
    t.arenas;
  (t, !rolled_back)

type audit = {
  allocated_blocks : int;
  allocated_words : int;
  free_blocks : int;
  free_words : int;
  carved_words : int;
  in_flight : int;
}

let audit t =
  let free_set = Hashtbl.create 64 in
  Array.iter
    (fun a ->
      Array.iter
        (fun l ->
          List.iter
            (fun b ->
              if Hashtbl.mem free_set b then
                failwith "Palloc.audit: block on a free list twice";
              Hashtbl.add free_set b ())
            (Atomic.get l))
        a.free_lists)
    t.arenas;
  let ab = ref 0
  and aw = ref 0
  and fb = ref 0
  and fw = ref 0
  and cw = ref 0 in
  Array.iter
    (fun a ->
      let heap_next = Mem.read t.mem a.next_addr in
      cw := !cw + (heap_next - a.a_base);
      let p = ref a.a_base in
      while !p < heap_next do
        let h = Mem.read t.mem !p in
        let cls = hdr_class h in
        if h = 0 || cls < 0 || cls >= num_classes then
          failwith (Printf.sprintf "Palloc.audit: corrupt header %d at %d" h !p);
        let sz = class_size cls in
        if hdr_allocated h then begin
          if Hashtbl.mem free_set !p then
            failwith "Palloc.audit: allocated block on a free list";
          incr ab;
          aw := !aw + sz
        end
        else begin
          incr fb;
          fw := !fw + sz
        end;
        p := !p + 1 + sz
      done;
      if !p <> heap_next then failwith "Palloc.audit: heap walk overran")
    t.arenas;
  Hashtbl.iter
    (fun b () ->
      let h = Mem.read t.mem b in
      if hdr_allocated h then failwith "Palloc.audit: free-list header allocated")
    free_set;
  let in_flight = ref 0 in
  for i = 0 to t.max_threads - 1 do
    if Mem.read t.mem (t.slots_base + (2 * i)) <> 0 then incr in_flight
  done;
  {
    allocated_blocks = !ab;
    allocated_words = !aw;
    free_blocks = !fb;
    free_words = !fw;
    carved_words = !cw;
    in_flight = !in_flight;
  }

let pp_audit ppf a =
  Format.fprintf ppf
    "alloc=%d blocks/%d words free=%d blocks/%d words carved=%d in_flight=%d"
    a.allocated_blocks a.allocated_words a.free_blocks a.free_words
    a.carved_words a.in_flight
