module Mem = Nvram.Mem

let magic = 0x9a110c (* "palloc" *)
let num_classes = 32

type t = {
  mem : Mem.t;
  persistent : bool;
  base : int;
  limit : int; (* first word past the heap *)
  heap_next_addr : int;
  magic_addr : int;
  slots_base : int;
  max_threads : int;
  heap_base : int;
  free_lists : int list Atomic.t array; (* header offsets, per size class *)
  claimed : bool Atomic.t array;
  carve_lock : Mutex.t;
}

type handle = { t : t; slot : int; mutable live : bool }

(* Header encoding: [size_class * 2 + allocated_bit]; 0 = never carved. *)
let hdr ~cls ~allocated = (((cls + 1) * 2) + if allocated then 1 else 0)
let hdr_class h = (h / 2) - 1
let hdr_allocated h = h land 1 = 1
let class_size cls = 1 lsl cls

let class_of nwords =
  let rec go c = if class_size c >= nwords then c else go (c + 1) in
  go 0

let metadata_words ~max_threads = 8 + (2 * max_threads) + 8

let line_align mem a =
  let lw = (Mem.config mem).line_words in
  (a + lw - 1) / lw * lw

let clwb t a = if t.persistent then Mem.clwb t.mem a
let fence t = if t.persistent then Mem.fence t.mem

let layout mem ~persistent ~base ~words ~max_threads =
  if max_threads <= 0 then invalid_arg "Palloc: max_threads <= 0";
  if base < 0 || words <= 0 || base + words > Mem.size mem then
    invalid_arg "Palloc: region out of device bounds";
  if base <> line_align mem base then
    invalid_arg "Palloc: base must be cache-line aligned";
  let heap_next_addr = base in
  let magic_addr = base + 1 in
  let slots_base = line_align mem (base + 2) in
  let heap_base = line_align mem (slots_base + (2 * max_threads)) in
  let limit = base + words in
  if heap_base + 2 > limit then invalid_arg "Palloc: region too small";
  {
    mem;
    persistent;
    base;
    limit;
    heap_next_addr;
    magic_addr;
    slots_base;
    max_threads;
    heap_base;
    free_lists = Array.init num_classes (fun _ -> Atomic.make []);
    claimed = Array.init max_threads (fun _ -> Atomic.make false);
    carve_lock = Mutex.create ();
  }

let create ?persistent mem ~base ~words ~max_threads =
  let persistent = Option.value persistent ~default:(Mem.durable mem) in
  if persistent && not (Mem.durable mem) then
    invalid_arg "Palloc.create: persistent allocator requires a durable backend";
  let t = layout mem ~persistent ~base ~words ~max_threads in
  Mem.write mem t.heap_next_addr t.heap_base;
  Mem.write mem t.magic_addr magic;
  for i = 0 to max_threads - 1 do
    Mem.write mem (t.slots_base + (2 * i)) 0;
    Mem.write mem (t.slots_base + (2 * i) + 1) 0
  done;
  if persistent then begin
    Mem.clwb mem t.heap_next_addr;
    let lw = (Mem.config mem).line_words in
    let a = ref t.slots_base in
    while !a < t.slots_base + (2 * max_threads) do
      Mem.clwb mem !a;
      a := !a + lw
    done;
    Mem.fence mem
  end;
  t

let base t = t.base
let mem t = t.mem

let register_thread t =
  let rec claim i =
    if i >= t.max_threads then failwith "Palloc.register_thread: no slots"
    else if Atomic.compare_and_set t.claimed.(i) false true then i
    else claim (i + 1)
  in
  { t; slot = claim 0; live = true }

let release_thread h =
  if not h.live then invalid_arg "Palloc: handle already released";
  h.live <- false;
  Atomic.set h.t.claimed.(h.slot) false

let pop_free t cls =
  let l = t.free_lists.(cls) in
  let rec loop () =
    match Atomic.get l with
    | [] -> None
    | b :: rest as cur ->
        if Atomic.compare_and_set l cur rest then Some b else loop ()
  in
  loop ()

let push_free t cls b =
  let l = t.free_lists.(cls) in
  let rec loop () =
    let cur = Atomic.get l in
    if not (Atomic.compare_and_set l cur (b :: cur)) then loop ()
  in
  loop ()

(* Extend the heap by one block of class [cls]; returns the header offset.
   Ordering for recovery: the free header is durable before the durable
   bump-pointer update makes the block part of the scannable heap. *)
let carve t cls =
  Mutex.lock t.carve_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.carve_lock)
    (fun () ->
      (* Hook-masked: a scheduler yield taken while holding [carve_lock]
         would deadlock other carvers on a single-domain cooperative
         run (see [Mem.mask_hook]). *)
      Mem.mask_hook t.mem @@ fun () ->
      let next = Mem.read t.mem t.heap_next_addr in
      let total = 1 + class_size cls in
      if next + total > t.limit then failwith "Palloc.alloc: out of memory";
      Mem.write t.mem next (hdr ~cls ~allocated:false);
      clwb t next;
      (* Drain before the bump-pointer store executes: the header must be
         durable before any durable [heap_next] covers it, or recovery's
         heap walk reads an uncarved word. *)
      fence t;
      Mem.write t.mem t.heap_next_addr (next + total);
      clwb t t.heap_next_addr;
      (* And the new bump pointer must be durable before the block is
         delivered: a crash image whose walk stops short of a block the
         application durably references would let a later carve hand the
         same words out twice. *)
      fence t;
      next)

let obtain t ~nwords =
  let cls = class_of nwords in
  let b = match pop_free t cls with Some b -> b | None -> carve t cls in
  (cls, b)

let slot_block h = h.t.slots_base + (2 * h.slot)
let slot_dest h = h.t.slots_base + (2 * h.slot) + 1

(* End-to-end allocation latency: covers free-list pop / carve, the
   activation record and its flushes. On-demand so the registry entry
   only appears once an allocator runs. *)
let alloc_hist = Telemetry.on_demand "palloc.alloc_ns"

let alloc h ~nwords ~dest =
  if not h.live then invalid_arg "Palloc: handle already released";
  if nwords <= 0 then invalid_arg "Palloc.alloc: nwords <= 0";
  let t0 = if Telemetry.enabled () then Telemetry.now_ns () else 0 in
  let t = h.t in
  (* Phase label for crash classification; restored on normal return only
     so an injected crash freezes it (see Nvram.Stats). *)
  let stats_sh = Mem.stats t.mem in
  let prev_phase = Nvram.Stats.current_phase stats_sh in
  Nvram.Stats.set_phase stats_sh Nvram.Stats.Alloc;
  let cls, b = obtain t ~nwords in
  let payload = b + 1 in
  if t.persistent then begin
    (* Activation record. Dest word is written before the block word so a
       torn volatile snapshot can never show a record pointing at a stale
       delivery address. Both words share a cache line (2-word aligned
       slot), so the crash image sees them together. *)
    Mem.write t.mem (slot_dest h) dest;
    Mem.write t.mem (slot_block h) b;
    Mem.clwb t.mem (slot_block h);
    (* Null the delivery word so recovery's "did it complete?" test is
       unambiguous. *)
    Mem.write t.mem dest 0;
    Mem.clwb t.mem dest;
    (* The record and the nulled delivery word must be durable before the
       header flips to allocated — recovery's "did it complete?" test
       reads them. *)
    Mem.fence t.mem
  end;
  Mem.write t.mem b (hdr ~cls ~allocated:true);
  clwb t b;
  Mem.write t.mem dest payload;
  clwb t dest;
  (* One drain covers the header and the delivery word; both must be
     durable before the record is retired, or a crash image could pair a
     cleared record with a free header the application durably points
     into. *)
  fence t;
  if t.persistent then begin
    Mem.write t.mem (slot_block h) 0;
    Mem.clwb t.mem (slot_block h)
  end;
  Nvram.Stats.set_phase stats_sh prev_phase;
  if t0 <> 0 then
    Telemetry.Histogram.record (alloc_hist ())
      (Telemetry.now_ns () - t0);
  payload

let alloc_unsafe h ~nwords =
  if not h.live then invalid_arg "Palloc: handle already released";
  if nwords <= 0 then invalid_arg "Palloc.alloc: nwords <= 0";
  let t = h.t in
  let cls, b = obtain t ~nwords in
  Mem.write t.mem b (hdr ~cls ~allocated:true);
  clwb t b;
  fence t;
  b + 1

let header_of t payload =
  let b = payload - 1 in
  if b < t.heap_base || b >= t.limit then
    invalid_arg "Palloc: address outside heap";
  b

let block_class t payload ~who =
  let b = header_of t payload in
  let h = Mem.read t.mem b in
  let cls = hdr_class h in
  if h = 0 || cls < 0 || cls >= num_classes then
    invalid_arg (who ^ ": not a block");
  (b, h, cls)

let mark_free t payload =
  let b, h, cls = block_class t payload ~who:"Palloc.mark_free" in
  if not (hdr_allocated h) then invalid_arg "Palloc.mark_free: double free";
  if Mem.cas t.mem b ~expected:h ~desired:(hdr ~cls ~allocated:false) <> h
  then invalid_arg "Palloc.mark_free: concurrent double free";
  clwb t b

let mark_free_if_allocated t payload =
  let b, h, cls = block_class t payload ~who:"Palloc.mark_free_if_allocated" in
  if not (hdr_allocated h) then false
  else begin
    Mem.write t.mem b (hdr ~cls ~allocated:false);
    clwb t b;
    true
  end

let enlist t payload =
  let b, _, cls = block_class t payload ~who:"Palloc.enlist" in
  push_free t cls b

let free t payload =
  mark_free t payload;
  (* Durably free before reusable ([mark_free] itself leaves the write-back
     pending so slot-finalization paths can batch several frees under the
     pool's one fence). *)
  fence t;
  enlist t payload

let usable_size t payload =
  let b = header_of t payload in
  let h = Mem.read t.mem b in
  if h = 0 then invalid_arg "Palloc.usable_size: not a block";
  class_size (hdr_class h)

let recover mem ~base ~words ~max_threads =
  if not (Mem.durable mem) then
    invalid_arg "Palloc.recover: requires a durable backend";
  let t = layout mem ~persistent:true ~base ~words ~max_threads in
  if Mem.read mem t.magic_addr <> magic then
    failwith "Palloc.recover: bad magic (region was never formatted)";
  (* Phase 1: resolve in-flight activation records. *)
  let rolled_back = ref 0 in
  for i = 0 to max_threads - 1 do
    let sb = t.slots_base + (2 * i) in
    let b = Mem.read mem sb in
    if b <> 0 then begin
      let dest = Mem.read mem (sb + 1) in
      let payload = b + 1 in
      let h = Mem.read mem b in
      let cls = hdr_class h in
      if dest >= 0 && dest < Mem.size mem && Mem.read mem dest = payload
      then begin
        (* Delivery completed: the application owns the block. *)
        Mem.write mem b (hdr ~cls ~allocated:true);
        Mem.clwb mem b
      end
      else begin
        Mem.write mem b (hdr ~cls ~allocated:false);
        Mem.clwb mem b;
        incr rolled_back
      end;
      Mem.write mem sb 0;
      Mem.clwb mem sb
    end
  done;
  (* Drain the record resolutions before the allocator goes back into
     service. *)
  Mem.fence mem;
  (* Phase 2: rebuild volatile free lists from the durable headers. *)
  let heap_next = Mem.read mem t.heap_next_addr in
  let p = ref t.heap_base in
  while !p < heap_next do
    let h = Mem.read mem !p in
    let cls = hdr_class h in
    if h = 0 || cls < 0 || cls >= num_classes then
      failwith
        (Printf.sprintf "Palloc.recover: corrupt header %d at %d" h !p);
    if not (hdr_allocated h) then push_free t cls !p;
    p := !p + 1 + class_size cls
  done;
  if !p <> heap_next then failwith "Palloc.recover: heap walk overran";
  (t, !rolled_back)

type audit = {
  allocated_blocks : int;
  allocated_words : int;
  free_blocks : int;
  free_words : int;
  carved_words : int;
  in_flight : int;
}

let audit t =
  let heap_next = Mem.read t.mem t.heap_next_addr in
  let free_set = Hashtbl.create 64 in
  Array.iter
    (fun l ->
      List.iter
        (fun b ->
          if Hashtbl.mem free_set b then
            failwith "Palloc.audit: block on a free list twice";
          Hashtbl.add free_set b ())
        (Atomic.get l))
    t.free_lists;
  let ab = ref 0
  and aw = ref 0
  and fb = ref 0
  and fw = ref 0 in
  let p = ref t.heap_base in
  while !p < heap_next do
    let h = Mem.read t.mem !p in
    let cls = hdr_class h in
    if h = 0 || cls < 0 || cls >= num_classes then
      failwith (Printf.sprintf "Palloc.audit: corrupt header %d at %d" h !p);
    let sz = class_size cls in
    if hdr_allocated h then begin
      if Hashtbl.mem free_set !p then
        failwith "Palloc.audit: allocated block on a free list";
      incr ab;
      aw := !aw + sz
    end
    else begin
      incr fb;
      fw := !fw + sz
    end;
    p := !p + 1 + sz
  done;
  if !p <> heap_next then failwith "Palloc.audit: heap walk overran";
  Hashtbl.iter
    (fun b () ->
      let h = Mem.read t.mem b in
      if hdr_allocated h then failwith "Palloc.audit: free-list header allocated")
    free_set;
  let in_flight = ref 0 in
  for i = 0 to t.max_threads - 1 do
    if Mem.read t.mem (t.slots_base + (2 * i)) <> 0 then incr in_flight
  done;
  {
    allocated_blocks = !ab;
    allocated_words = !aw;
    free_blocks = !fb;
    free_words = !fw;
    carved_words = heap_next - t.heap_base;
    in_flight = !in_flight;
  }

let pp_audit ppf a =
  Format.fprintf ppf
    "alloc=%d blocks/%d words free=%d blocks/%d words carved=%d in_flight=%d"
    a.allocated_blocks a.allocated_words a.free_blocks a.free_words
    a.carved_words a.in_flight
