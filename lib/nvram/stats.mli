(** Operation counters for a memory backend.

    Counters are sharded per domain — each domain increments its own
    cache-line-padded group of atomics, so the instrumented fast paths
    never contend — and [snapshot] merges the shards on read. Only
    protocol-relevant events are counted (flushes, fences, CASes) — plain
    loads/stores are free.

    Each shard additionally carries a {e phase register}: the layer above
    ([Pmwcas.Op], [Pmwcas.Pool], [Palloc], [Pmwcas.Recovery]) labels the
    protocol phase the domain is currently in, and nothing restores the
    register while a {!Mem.Crash} unwinds — so a crash-sweep harness can
    read back {e which phase the injected power failure landed in} and
    build a per-phase coverage histogram. *)

type t

type snapshot = {
  flushes : int;
      (** [clwb] invocations that reached the device (enqueued a line for
          write-back, or copied it immediately in the [Sync] model). *)
  fences : int;  (** [fence] invocations. *)
  cases : int;  (** compare-and-swap attempts. *)
  elided_flushes : int;
      (** [clwb] invocations skipped because the line was already pending
          drain (coalesced) or already clean in the persistent image. *)
  drained_lines : int;
      (** Distinct lines actually written back by [fence]/[persist_all]
          drains in the [Async] model. *)
}

(** Protocol phase labels, coarsest first. [App] is everything outside
    the instrumented protocol sections. *)
type phase =
  | App  (** Application code / descriptor construction. *)
  | Install  (** PMwCAS phase 1: RDCSS descriptor installation. *)
  | Precommit  (** Persisting installed pointers before the decision. *)
  | Decide  (** Status CAS and its flush — the commit point. *)
  | Apply  (** PMwCAS phase 2: final values swapped in and persisted. *)
  | Finalize  (** Slot recycling: policy frees and status-free. *)
  | Alloc  (** Inside [Palloc.alloc]'s activation-record protocol. *)
  | Recovery  (** Inside [Pmwcas.Recovery.run]. *)

val all_phases : phase list
val phase_name : phase -> string

val phase_to_int : phase -> int
(** Stable dense index in [0, List.length all_phases) for histograms. *)

val pp_phase : Format.formatter -> phase -> unit
val create : unit -> t
val record_flush : t -> unit
val record_fence : t -> unit
val record_cas : t -> unit
val record_elided : t -> unit
val record_drain : t -> unit

val set_phase : t -> phase -> unit
(** Label the calling domain's current phase. When telemetry is enabled
    ({!Telemetry.enabled}), each transition also charges the wall time
    since the shard's previous transition to the phase being left — the
    per-phase timing the telemetry registry reports. *)

val current_phase : t -> phase
(** The calling domain's phase register ([App] if never set). *)

val snapshot : t -> snapshot
val reset : t -> unit

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] — per-field subtraction. *)

val to_json : snapshot -> Telemetry.Value.t
(** Stable export shape:
    [{flushes; fences; cas; elided_flushes; drained_lines}]. Exporters
    use this; [pp] derives from it. *)

val pp : Format.formatter -> snapshot -> unit

(** {1 Per-phase wall time}

    Process-global accumulation (across every device), per domain shard,
    fed by {!set_phase} transitions while telemetry is enabled. Time in
    a phase that has not transitioned out yet is not counted. *)

val phase_time : phase -> int
(** Total nanoseconds charged to a phase, summed over domains. *)

val phase_times : unit -> (phase * int) list
val phase_times_by_domain : unit -> (int * (phase * int) list) list
(** Non-empty rows only, keyed by domain shard index. *)

val phase_times_to_json : unit -> Telemetry.Value.t
val reset_phase_times : unit -> unit
