(** Operation counters for a memory backend.

    Counters are sharded per domain — each domain increments its own
    cache-line-padded group of atomics, so the instrumented fast paths
    never contend — and [snapshot] merges the shards on read. Only
    protocol-relevant events are counted (flushes, fences, CASes) — plain
    loads/stores are free. *)

type t

type snapshot = {
  flushes : int;  (** [clwb] invocations. *)
  fences : int;  (** [fence] invocations. *)
  cases : int;  (** compare-and-swap attempts. *)
}

val create : unit -> t
val record_flush : t -> unit
val record_fence : t -> unit
val record_cas : t -> unit
val snapshot : t -> snapshot
val reset : t -> unit

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] — per-field subtraction. *)

val pp : Format.formatter -> snapshot -> unit
