(** Simulated byte-addressable NVRAM behind a volatile CPU cache — the
    durable backend ({!Backend.S} plus fault injection).

    The device keeps two images of every word: the {e volatile} image
    (what the coherent cache hierarchy holds and every load, store and CAS
    observes) and the {e persistent} image (what has reached the NVDIMM
    and survives a power failure). A store only updates the volatile
    image; [clwb] asks for the whole containing cache line to be written
    back, like the CLWB instruction (Section 2.1 of the paper). Under the
    default {!Config.Async} flush mode [clwb] only enqueues the line —
    [fence] is the drain point that copies (and charges the modelled
    stall for) each {e distinct} pending line, matching CLWB+SFENCE
    ordering; clwb'd-but-unfenced lines are durable only if the eviction
    lottery of [crash_image] saves them. {!Config.Sync} restores the
    legacy copy-on-clwb model. [crash_image] models the per-line eviction
    nondeterminism the dirty-bit protocol of Section 3 must tolerate.

    Callers address backends through {!Mem}; this module is exposed for
    white-box tests. *)

type t

type addr = int

exception Crash
(** Raised by mutating operations once injected fuel runs out. *)

val create : Config.t -> t
val size : t -> int
val config : t -> Config.t
val stats : t -> Stats.t
val durable : t -> bool
val read : t -> addr -> int
val write : t -> addr -> int -> unit
val cas : t -> addr -> expected:int -> desired:int -> int
val clwb : t -> addr -> unit

val flit_write : t -> addr -> int -> unit
(** Tracked store: increments the flush counter of the containing granule
    ([Config.flit_gran]) before the store, so [persisted] reports the
    granule unpersisted until a matching [flit_flush]. *)

val flit_flush : t -> addr -> unit
(** [clwb] plus a floor-at-zero decrement of the granule's counter. *)

val persisted : t -> addr -> bool
(** [true] iff the granule's flush counter is zero — no tracked store is
    awaiting its flush. Conservative across interleavings: the counter is
    bumped before the store lands and dropped only after its clwb. *)

val fence : t -> unit
val persist_all : t -> unit
val read_persistent : t -> addr -> int

val crash_image : ?evict_prob:float -> ?seed:int -> t -> t
(** Power-failure snapshot; lines are sampled under their line locks so an
    image never contains a torn line. [seed] is required whenever
    [evict_prob > 0], making eviction-based crash tests deterministic. *)

val inject_crash_after : t -> int -> unit
val disarm : t -> unit

val steps : t -> int
(** Completed mutating operations (write/CAS/clwb/fence) since creation —
    the crash-sweep harness measures a workload once and sweeps every
    fuel value below the total. *)

val set_sabotage_skip_drain : bool -> unit
(** Self-test hook (process-global): when armed, [fence] spends fuel and
    is counted but skips its drain, so nothing enqueued by [clwb] ever
    persists except through eviction. The crash-sweep calibration must
    detect this as a correctness failure. *)

val sabotaging_skip_drain : unit -> bool
(** Current state of the knob (for save/restore around calibration). *)

val pending_lines : t -> int list
(** Lines clwb'd but not yet drained (at-risk under a power failure).
    Call on a quiesced device — the forensics path reads it after the
    workers unwound from a crash. *)

val fuel_remaining : t -> int option
(** Remaining injector fuel; [None] when disarmed. Once armed fuel
    reaches zero it stays there (no wrap-around), and a concurrent
    [disarm] can never be undone by an in-flight [spend]. *)
