(** The memory-backend seam.

    Every layer above [Nvram] addresses memory through {!Mem}, which
    dispatches to a concrete backend implementing this signature. Keeping
    the signature small — word reads/writes/CAS plus the persistence
    primitives the paper's protocol needs (CLWB, SFENCE, crash imaging) —
    is what makes flush behaviour cheap to vary: a simulated NVDIMM
    ({!Sim}), a plain DRAM array with no persistence bookkeeping
    ({!Dram}), or any of those wrapped in an event recorder
    ({!Trace}-backed dispatch in {!Mem}). *)

module type S = sig
  type t

  val create : Config.t -> t
  (** Fresh device, all words zero. *)

  val size : t -> int
  val config : t -> Config.t
  val stats : t -> Stats.t

  val steps : t -> int
  (** Completed mutating operations (write/CAS/clwb) since creation.
      Backends that do not meter their hot path may return 0. *)

  val durable : t -> bool
  (** Whether [clwb]/[crash_image] model real persistence. [false] means
      the backend is volatile: flushes are free no-ops and nothing
      survives a crash. *)

  val read : t -> int -> int
  val write : t -> int -> int -> unit

  val cas : t -> int -> expected:int -> desired:int -> int
  (** x86 [cmpxchg] semantics: returns the witnessed value; the swap
      happened iff the result equals [expected]. *)

  val clwb : t -> int -> unit
  (** Initiate write-back of the containing cache line (no-op on volatile
      backends). Whether the copy happens here or at the next [fence] is
      the backend's [Config.flush_mode]. *)

  val flit_write : t -> int -> int -> unit
  (** FliT-style tracked store: bump the flush counter of the containing
      granule ([Config.flit_gran]), then store. The counter stays above
      zero until a matching [flit_flush], so [persisted] never reports a
      granule with an unflushed tracked store as durable. *)

  val flit_flush : t -> int -> unit
  (** [clwb] plus a floor-at-zero decrement of the granule's flush
      counter — the write-back half of the flit_write/flit_flush pair. *)

  val persisted : t -> int -> bool
  (** FliT invariant query: [true] iff the granule's flush counter is
      zero, i.e. no tracked store is still awaiting its [flit_flush]. A
      destination pass may skip flushing such a granule. Volatile
      backends always return [true] (there is nothing to flush). *)

  val fence : t -> unit
  (** Store fence / drain point: orders (and, under an asynchronous flush
      model, performs) the write-backs initiated by earlier [clwb]s. A
      counted no-op where [clwb] is synchronous. *)

  val persist_all : t -> unit
  val read_persistent : t -> int -> int

  val crash_image : ?evict_prob:float -> ?seed:int -> t -> t
  (** Power-failure snapshot. [seed] drives the per-line eviction lottery
      and is required whenever [evict_prob > 0] so crash tests are
      reproducible. *)

  val pending_lines : t -> int list
  (** Cache lines clwb'd but not yet drained by a fence — at-risk state
      the crash forensics report alongside event timelines. Always empty
      on volatile or synchronous-flush backends. *)
end
