(** Per-domain event logs for the tracing backend.

    A traced {!Mem} appends every read/write/CAS/clwb/fence to the log of
    the executing domain, stamped with a globally unique, monotonically
    increasing sequence number. The stamp is taken {e atomically with the
    operation} (both run under the trace lock), so sorting the merged log
    by [seq] reproduces the exact linearization order — which is what lets
    {!Checker} replay a multi-domain run deterministically. Tracing
    therefore serializes memory operations; it is a checking tool, not a
    benchmarking mode.

    The event type is public so tests can also synthesize or edit traces
    (e.g. delete a [Clwb] to emulate a protocol that skipped a flush). *)

type op =
  | Read of { addr : int; value : int }  (** [value] = witnessed content. *)
  | Write of { addr : int; value : int }
  | Cas of { addr : int; expected : int; desired : int; witnessed : int }
      (** The swap happened iff [witnessed = expected]. *)
  | Clwb of { addr : int }  (** Persists the whole containing line. *)
  | Fence
  | Persist_all  (** Whole-device flush (initialization helper). *)

type event = { seq : int; domain : int; op : op }

type t

val create : unit -> t

val locked : t -> (unit -> 'a) -> 'a
(** Run [f] under the trace lock (used by {!Mem} to make operation and
    stamp atomic). Not reentrant. *)

val record : t -> op -> unit
(** Append an event to the calling domain's log. Must be called while
    {!locked}. *)

val events : t -> event array
(** Merge all per-domain logs, sorted by sequence number. *)

val length : t -> int
val clear : t -> unit
val pp_event : Format.formatter -> event -> unit
