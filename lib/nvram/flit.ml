(* Process-global policy and accounting for destination-only
   persistence (the NVTraverse traverse/critical split backed by FliT
   flush counters). The device-level counters live in the backends
   ({!Sim.flit_write} et al.); this module owns what is policy rather
   than mechanism: the mode switch the benches toggle, the sabotage
   hook the crash-sweep self-test arms, and the elided-vs-real
   destination flush counters the metrics gate requires. *)

let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag

(* Toggle only while the indexes are quiesced (between bench points, or
   at CLI startup): writers pick flit_write vs write by this flag, and a
   destination pass that runs in a different mode than the stores it
   covers would consult counters those stores never touched. *)
let set_enabled b = Atomic.set enabled_flag b

(* Self-test hook: when armed, destination passes skip the write-backs
   they decided were needed (while still counting them), so freshly
   written node bodies never reach NVM except through the eviction
   lottery. The crash-sweep must flag the resulting garbage. *)
let sabotage_flag = Atomic.make false
let set_sabotage_skip_destination b = Atomic.set sabotage_flag b
let sabotage_skip_destination () = Atomic.get sabotage_flag

type counters = { elided : int; destination_flushes : int }

(* Field 0 = flushes a destination pass skipped because the granule was
   already durable, 1 = real write-backs it issued. *)
let counter_cells = Telemetry.Sharded.create ~fields:2

let record_elided ~addr ~line =
  Telemetry.Sharded.incr counter_cells 0;
  if Flight.tracing () then Flight.emit Flight.Flit_elide addr line 0

let record_destination_flush ~addr ~line =
  Telemetry.Sharded.incr counter_cells 1;
  if Flight.tracing () then Flight.emit Flight.Flit_dest_flush addr line 0

let counters () =
  let s = Telemetry.Sharded.sum counter_cells in
  { elided = s 0; destination_flushes = s 1 }

let reset_counters () = Telemetry.Sharded.reset counter_cells

let counters_to_json () =
  let c = counters () in
  Telemetry.Value.Obj
    [
      ("elided", Telemetry.Value.Int c.elided);
      ("destination_flushes", Telemetry.Value.Int c.destination_flushes);
    ]
