type protocol = {
  words : int;
  line_words : int;
  max_words : int;
  async_flush : bool;
  flit : bool;
  strategy : Config.strategy;
  is_status_addr : int -> bool;
  is_desc_addr : int -> bool;
  slot_of_status : int -> int;
  count_addr : int -> int;
  entry_fields : int -> int -> int * int * int;
  desc_ptr : int -> int;
  status_undecided : int;
  status_succeeded : int;
  status_failed : int;
  status_free : int;
}

type violation = { seq : int; message : string }

type report = {
  events : int;
  decided : int;
  recycled : int;
  still_in_flight : int;
  violations : violation list;
}

(* A decided-but-not-yet-recycled PMwCAS: the final value owed to each
   target word, and whether a write-back has persisted it since the
   decision. *)
type inflight = {
  status : int;
  succeeded : bool;
  decided_seq : int;
  targets : int array;
  finals : int array;
  flushed : bool array;
}

type state = {
  p : protocol;
  vol : int array;
  per : int array;
  (* Dirty values observed by a read and not yet written back: addr ->
     (domain, seq of the observation). *)
  obligations : (int, (int * int) list) Hashtbl.t;
  obliged : (int, int) Hashtbl.t; (* domain -> open observations *)
  inflight : (int, inflight) Hashtbl.t; (* slot -> record *)
  (* Async flush model: lines clwb'd but not yet drained by a fence.
     Nothing in here is durable — a Clwb only persists at the next
     Fence/Persist_all, mirroring [Sim]'s pending table. *)
  pending_lines : (int, unit) Hashtbl.t;
  mutable decided : int;
  mutable recycled : int;
  mutable violations : violation list;
}

let flag st seq fmt =
  Format.kasprintf
    (fun message -> st.violations <- { seq; message } :: st.violations)
    fmt

let bump st d n =
  let c = Option.value (Hashtbl.find_opt st.obliged d) ~default:0 in
  Hashtbl.replace st.obliged d (c + n)

let observe_dirty st ~domain ~seq addr =
  let l = Option.value (Hashtbl.find_opt st.obligations addr) ~default:[] in
  Hashtbl.replace st.obligations addr ((domain, seq) :: l);
  bump st domain 1

let discharge st addr =
  match Hashtbl.find_opt st.obligations addr with
  | None -> ()
  | Some l ->
      List.iter (fun (d, _) -> bump st d (-1)) l;
      Hashtbl.remove st.obligations addr

let first_obligation st domain =
  Hashtbl.fold
    (fun addr l acc ->
      List.fold_left
        (fun acc (d, seq) ->
          if d <> domain then acc
          else
            match acc with
            | Some (_, s) when s <= seq -> acc
            | _ -> Some (addr, seq))
        acc l)
    st.obligations None

let domain_obliged st domain =
  Option.value (Hashtbl.find_opt st.obliged domain) ~default:0 > 0

(* Persist one word: update the NVM image, retire read obligations, and
   credit any in-flight operation owed a durable final value here. *)
let persist_word st a =
  st.per.(a) <- st.vol.(a);
  discharge st a;
  Hashtbl.iter
    (fun _ (fl : inflight) ->
      Array.iteri
        (fun k target ->
          if
            target = a
            && (not fl.flushed.(k))
            && Flags.clear_dirty st.vol.(a) = fl.finals.(k)
          then fl.flushed.(k) <- true)
        fl.targets)
    st.inflight

(* Flit mode — and the dirty-bit-free strategy, whose clean finals are
   deferred the same way: a deferred final is superseded the moment a
   later op overwrites the word with a different value — an installer
   seals the value it claims as its own old-field before the CAS, so
   recovery restores the word from the successor's entry and the
   original flush is no longer owed. *)
let supersede st addr value =
  if st.p.flit || st.p.strategy = `NoDirty then
    Hashtbl.iter
      (fun _ (fl : inflight) ->
        Array.iteri
          (fun k target ->
            if
              target = addr
              && (not fl.flushed.(k))
              && Flags.clear_dirty value <> fl.finals.(k)
            then fl.flushed.(k) <- true)
          fl.targets)
      st.inflight

let persist_line st addr =
  let lw = st.p.line_words in
  let lo = addr / lw * lw in
  let hi = min (lo + lw) st.p.words in
  for a = lo to hi - 1 do
    persist_word st a
  done

let check_divergence st ~seq ~what addr observed =
  if observed <> st.vol.(addr) then
    flag st seq
      "replay divergence: %s at %d observed %a but replay holds %a (was the \
       device traced from creation?)"
      what addr Flags.pp observed Flags.pp st.vol.(addr)

(* The decision point: a successful CAS taking a status word from
   Undecided to Succeeded/Failed. Section 4.2 requires every Phase 1
   descriptor pointer of a succeeding op to be durable first. *)
let on_decide st ~seq status desired =
  let p = st.p in
  let succeeded = Flags.clear_dirty desired = p.status_succeeded in
  let slot = p.slot_of_status status in
  let count = st.vol.(p.count_addr slot) in
  if count < 0 || count > p.max_words then
    flag st seq "corrupt entry count %d in decided slot %d" count slot
  else begin
    st.decided <- st.decided + 1;
    let targets = Array.make count 0
    and finals = Array.make count 0
    and flushed = Array.make count false in
    for k = 0 to count - 1 do
      let af, of_, nf = p.entry_fields slot k in
      let target = st.vol.(af) in
      targets.(k) <- target;
      finals.(k) <-
        Flags.clear_dirty (if succeeded then st.vol.(nf) else st.vol.(of_));
      if target < 0 || target >= p.words then
        flag st seq "decided slot %d entry %d targets bad address %d" slot k
          target
      else begin
        let claimed =
          Flags.clear_dirty st.vol.(target)
          = Flags.clear_dirty (p.desc_ptr slot)
        in
        (* A failed op rolls back only the words it actually claimed in
           phase 1; an unclaimed entry owes no flush. Neither does a
           final value that is already durable (a rollback to a value
           that never left the NVM image). *)
        flushed.(k) <-
          ((not succeeded) && not claimed)
          || Flags.clear_dirty st.per.(target) = finals.(k);
        if
          succeeded
          && Flags.clear_dirty st.per.(target)
             <> Flags.clear_dirty (p.desc_ptr slot)
        then
          flag st seq
            "status of slot %d CAS'd to Succeeded before the phase-1 \
             descriptor pointer at %d was persisted (NVM holds %a)"
            slot target Flags.pp st.per.(target)
      end
    done;
    Hashtbl.replace st.inflight slot
      { status; succeeded; decided_seq = seq; targets; finals; flushed }
  end

(* Recycling: the status word returns to Free. Section 4.4 requires the
   decided status and every phase-2 final value to be durable first, or a
   crash could resurrect the operation against reused memory. *)
let on_recycle st ~seq status =
  let p = st.p in
  let slot = p.slot_of_status status in
  match Hashtbl.find_opt st.inflight slot with
  | None -> () (* never decided (e.g. discarded): nothing was promised *)
  | Some fl ->
      st.recycled <- st.recycled + 1;
      let expect =
        if fl.succeeded then p.status_succeeded else p.status_failed
      in
      if Flags.clear_dirty st.per.(fl.status) <> expect then
        flag st seq
          "slot %d recycled before its decided status was persisted (NVM \
           holds %a)"
          slot Flags.pp st.per.(fl.status);
      Array.iteri
        (fun k ok ->
          if not ok then
            flag st seq
              "slot %d (decided at seq %d) recycled before the phase-2 \
               final value %a at %d was persisted"
              slot fl.decided_seq Flags.pp fl.finals.(k) fl.targets.(k))
        fl.flushed;
      Hashtbl.remove st.inflight slot

let step st (e : Trace.event) =
  let p = st.p in
  let seq = e.seq in
  match e.op with
  | Fence ->
      if p.async_flush then begin
        Hashtbl.iter (fun line () -> persist_line st (line * p.line_words))
          st.pending_lines;
        Hashtbl.reset st.pending_lines
      end
  | Persist_all ->
      Hashtbl.reset st.pending_lines;
      for a = 0 to p.words - 1 do
        persist_word st a
      done
  | Clwb { addr } ->
      if p.async_flush then
        Hashtbl.replace st.pending_lines (addr / p.line_words) ()
      else persist_line st addr
  | Read { addr; value } ->
      check_divergence st ~seq ~what:"read" addr value;
      (* The dirty-bit-free strategy's strengthened invariant: no store
         ever sets the bit, so a dirty value anywhere — protocol word or
         descriptor — is a protocol breach, not an obligation. *)
      if Flags.is_dirty value && p.strategy = `NoDirty then
        flag st seq
          "dirty value %a observed at %d under the dirty-bit-free strategy"
          Flags.pp value addr
        (* Flit mode permits unflushed journey reads: no flush-before-use
           obligation accrues; decide-after-persist still guards the
           destination words. *)
      else if Flags.is_dirty value && (not (p.is_desc_addr addr)) && not p.flit
      then observe_dirty st ~domain:e.domain ~seq addr
  | Write { addr; value } ->
      if Flags.is_dirty value && p.strategy = `NoDirty then
        flag st seq
          "dirty value %a written to %d under the dirty-bit-free strategy"
          Flags.pp value addr;
      if st.vol.(addr) <> value then discharge st addr;
      st.vol.(addr) <- value;
      supersede st addr value;
      if p.is_status_addr addr && value = p.status_free then
        on_recycle st ~seq addr
  | Cas { addr; expected; desired; witnessed } ->
      check_divergence st ~seq ~what:"cas" addr witnessed;
      if Flags.is_dirty desired && p.strategy = `NoDirty then
        flag st seq
          "dirty value %a CAS-installed at %d under the dirty-bit-free \
           strategy"
          Flags.pp desired addr;
      if domain_obliged st e.domain then begin
        match first_obligation st e.domain with
        | Some (a, obs_seq) ->
            flag st seq
              "domain %d CAS at %d while the dirty value it observed at %d \
               (seq %d) is still unflushed"
              e.domain addr a obs_seq;
            (* Report each misuse once. *)
            discharge st a
        | None -> ()
      end;
      if witnessed = expected then begin
        (* Decide-persist anchor on phase-2 installs: replacing a
           descriptor pointer of a {e succeeded} op with its final value
           requires the decided status to be durable first ([`Paper] and
           [`NoDirty] fence it at the decide point) — except that
           [`FewFence] relocates the anchor: the status need only be
           clwb'd (pending) before the install, since every later fence,
           including the op's own commit batch, drains it with the
           finals. A failed op's rollback installs anchor nothing. *)
        Hashtbl.iter
          (fun slot (fl : inflight) ->
            if
              fl.succeeded
              && Flags.clear_dirty expected
                 = Flags.clear_dirty (p.desc_ptr slot)
              (* A pointer-to-pointer CAS is the precommit dirty-clear,
                 not a phase-2 install. *)
              && Flags.clear_dirty desired
                 <> Flags.clear_dirty (p.desc_ptr slot)
            then begin
              let durable =
                Flags.clear_dirty st.per.(fl.status) = p.status_succeeded
              in
              let anchored =
                durable
                || p.strategy = `FewFence
                   && Hashtbl.mem st.pending_lines (fl.status / p.line_words)
              in
              if not anchored then
                flag st seq
                  "phase-2 final %a installed at %d before the decision of \
                   slot %d was %s (NVM status %a)"
                  Flags.pp desired addr slot
                  (if p.strategy = `FewFence then "written back"
                   else "persisted")
                  Flags.pp st.per.(fl.status)
            end)
          st.inflight;
        if st.vol.(addr) <> desired then discharge st addr;
        st.vol.(addr) <- desired;
        supersede st addr desired;
        if
          p.is_status_addr addr
          && expected = p.status_undecided
          &&
          let d = Flags.clear_dirty desired in
          d = p.status_succeeded || d = p.status_failed
        then on_decide st ~seq addr desired
      end

let run p events =
  if p.words <= 0 then invalid_arg "Nvram.Checker.run: words <= 0";
  let st =
    {
      p;
      vol = Array.make p.words 0;
      per = Array.make p.words 0;
      obligations = Hashtbl.create 16;
      obliged = Hashtbl.create 16;
      inflight = Hashtbl.create 64;
      pending_lines = Hashtbl.create 16;
      decided = 0;
      recycled = 0;
      violations = [];
    }
  in
  Array.iter (fun e -> step st e) events;
  {
    events = Array.length events;
    decided = st.decided;
    recycled = st.recycled;
    still_in_flight = Hashtbl.length st.inflight;
    violations = List.rev st.violations;
  }

let ok (r : report) = r.violations = []

let pp_violation ppf v = Format.fprintf ppf "seq %d: %s" v.seq v.message

let pp_report ppf r =
  Format.fprintf ppf
    "events=%d decided=%d recycled=%d in_flight=%d violations=%d" r.events
    r.decided r.recycled r.still_in_flight
    (List.length r.violations);
  List.iter (fun v -> Format.fprintf ppf "@.  %a" pp_violation v) r.violations
