(* Backends must implement the full interface. *)
module _ : Backend.S = Sim
module _ : Backend.S = Dram

type addr = int

exception Crash = Sim.Crash

type t =
  | Simulated of Sim.t
  | Dram of Dram.t
  | Traced of { inner : t; tr : Trace.t }

type backend = [ `Sim | `Dram ]

let create cfg = Simulated (Sim.create cfg)
let create_dram cfg = Dram (Dram.create cfg)

let create_backend kind cfg =
  match kind with `Sim -> create cfg | `Dram -> create_dram cfg

let backend_of_string = function
  | "sim" -> Some `Sim
  | "dram" -> Some `Dram
  | _ -> None

let backend_name = function `Sim -> "sim" | `Dram -> "dram"

let rec kind = function
  | Simulated _ -> `Sim
  | Dram _ -> `Dram
  | Traced { inner; _ } -> kind inner

let traced t =
  match t with
  | Traced _ -> invalid_arg "Nvram.Mem.traced: already traced"
  | _ -> Traced { inner = t; tr = Trace.create () }

let trace = function Traced { tr; _ } -> Some tr | _ -> None

let rec size = function
  | Simulated s -> Sim.size s
  | Dram d -> Dram.size d
  | Traced { inner; _ } -> size inner

let rec config = function
  | Simulated s -> Sim.config s
  | Dram d -> Dram.config d
  | Traced { inner; _ } -> config inner

let rec stats = function
  | Simulated s -> Sim.stats s
  | Dram d -> Dram.stats d
  | Traced { inner; _ } -> stats inner

let rec steps = function
  | Simulated s -> Sim.steps s
  | Dram d -> Dram.steps d
  | Traced { inner; _ } -> steps inner

let rec fuel_remaining = function
  | Simulated s -> Sim.fuel_remaining s
  | Dram _ -> None
  | Traced { inner; _ } -> fuel_remaining inner

let rec durable = function
  | Simulated s -> Sim.durable s
  | Dram d -> Dram.durable d
  | Traced { inner; _ } -> durable inner

(* The traced paths live out of line so the exported dispatchers below
   stay small enough for the Closure backend to inline at call sites —
   the hot loops in [Pcas]/[Op] hit the Simulated arm with one match and
   one direct call. [traced] guarantees [inner] is never itself traced,
   so these don't recurse. *)

let untraced_read t a =
  match t with
  | Simulated s -> Sim.read s a
  | Dram d -> Dram.read d a
  | Traced _ -> assert false

let untraced_write t a v =
  match t with
  | Simulated s -> Sim.write s a v
  | Dram d -> Dram.write d a v
  | Traced _ -> assert false

let untraced_cas t a ~expected ~desired =
  match t with
  | Simulated s -> Sim.cas s a ~expected ~desired
  | Dram d -> Dram.cas d a ~expected ~desired
  | Traced _ -> assert false

let untraced_clwb t a =
  match t with
  | Simulated s -> Sim.clwb s a
  | Dram d -> Dram.clwb d a
  | Traced _ -> assert false

let traced_read inner tr a =
  Trace.locked tr (fun () ->
      let v = untraced_read inner a in
      Trace.record tr (Trace.Read { addr = a; value = v });
      v)

let traced_write inner tr a v =
  Trace.locked tr (fun () ->
      untraced_write inner a v;
      Trace.record tr (Trace.Write { addr = a; value = v }))

let traced_cas inner tr a ~expected ~desired =
  Trace.locked tr (fun () ->
      let witnessed = untraced_cas inner a ~expected ~desired in
      Trace.record tr (Trace.Cas { addr = a; expected; desired; witnessed });
      witnessed)

let traced_clwb inner tr a =
  Trace.locked tr (fun () ->
      untraced_clwb inner a;
      Trace.record tr (Trace.Clwb { addr = a }))

let[@inline] read t a =
  match t with
  | Simulated s -> Sim.read s a
  | Dram d -> Dram.read d a
  | Traced { inner; tr } -> traced_read inner tr a

let[@inline] write t a v =
  match t with
  | Simulated s -> Sim.write s a v
  | Dram d -> Dram.write d a v
  | Traced { inner; tr } -> traced_write inner tr a v

let[@inline] cas t a ~expected ~desired =
  match t with
  | Simulated s -> Sim.cas s a ~expected ~desired
  | Dram d -> Dram.cas d a ~expected ~desired
  | Traced { inner; tr } -> traced_cas inner tr a ~expected ~desired

let[@inline] cas_bool t a ~expected ~desired =
  cas t a ~expected ~desired = expected

let[@inline] clwb t a =
  match t with
  | Simulated s -> Sim.clwb s a
  | Dram d -> Dram.clwb d a
  | Traced { inner; tr } -> traced_clwb inner tr a

let clwb_range t ~lo ~hi =
  let words = size t in
  if lo < 0 || lo >= words then
    invalid_arg (Printf.sprintf "Nvram.Mem: address %d out of bounds" lo);
  if hi < 0 || hi >= words then
    invalid_arg (Printf.sprintf "Nvram.Mem: address %d out of bounds" hi);
  let lw = (config t).line_words in
  let a = ref (lo / lw * lw) in
  while !a <= hi do
    clwb t !a;
    a := !a + lw
  done

let rec fence t =
  match t with
  | Simulated s -> Sim.fence s
  | Dram d -> Dram.fence d
  | Traced { inner; tr } ->
      Trace.locked tr (fun () ->
          fence inner;
          Trace.record tr Trace.Fence)

let rec persist_all t =
  match t with
  | Simulated s -> Sim.persist_all s
  | Dram d -> Dram.persist_all d
  | Traced { inner; tr } ->
      Trace.locked tr (fun () ->
          persist_all inner;
          Trace.record tr Trace.Persist_all)

let rec read_persistent t a =
  match t with
  | Simulated s -> Sim.read_persistent s a
  | Dram d -> Dram.read_persistent d a
  | Traced { inner; _ } -> read_persistent inner a

let rec crash_image ?evict_prob ?seed t =
  match t with
  | Simulated s -> Simulated (Sim.crash_image ?evict_prob ?seed s)
  | Dram d -> Dram (Dram.crash_image ?evict_prob ?seed d)
  | Traced { inner; _ } -> crash_image ?evict_prob ?seed inner

let rec inject_crash_after t n =
  match t with
  | Simulated s -> Sim.inject_crash_after s n
  | Dram _ -> invalid_arg "Nvram.Mem.inject_crash_after: volatile backend"
  | Traced { inner; _ } -> inject_crash_after inner n

let rec disarm = function
  | Simulated s -> Sim.disarm s
  | Dram _ -> ()
  | Traced { inner; _ } -> disarm inner

let set_sabotage_skip_drain = Sim.set_sabotage_skip_drain

let dump t ~lo ~hi ppf =
  for a = lo to hi - 1 do
    Format.fprintf ppf "%6d: %a@." a Flags.pp (read t a)
  done
