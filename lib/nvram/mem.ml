(* Backends must implement the full interface. *)
module _ : Backend.S = Sim
module _ : Backend.S = Dram

type addr = int

exception Crash = Sim.Crash

type t =
  | Simulated of Sim.t
  | Dram of Dram.t
  | Traced of { inner : t; tr : Trace.t }
  | Hooked of { inner : t; hook : (unit -> unit) ref }

type backend = [ `Sim | `Dram ]

let create cfg = Simulated (Sim.create cfg)
let create_dram cfg = Dram (Dram.create cfg)

let create_backend kind cfg =
  match kind with `Sim -> create cfg | `Dram -> create_dram cfg

let backend_of_string = function
  | "sim" -> Some `Sim
  | "dram" -> Some `Dram
  | _ -> None

let backend_name = function `Sim -> "sim" | `Dram -> "dram"

let rec kind = function
  | Simulated _ -> `Sim
  | Dram _ -> `Dram
  | Traced { inner; _ } -> kind inner
  | Hooked { inner; _ } -> kind inner

let traced t =
  match t with
  | Traced _ -> invalid_arg "Nvram.Mem.traced: already traced"
  | Hooked _ -> invalid_arg "Nvram.Mem.traced: trace the base device, not a hooked one"
  | _ -> Traced { inner = t; tr = Trace.create () }

let trace = function Traced { tr; _ } -> Some tr | _ -> None

let hooked t =
  match t with
  | Traced _ | Hooked _ ->
      invalid_arg "Nvram.Mem.hooked: hook the base device"
  | _ -> Hooked { inner = t; hook = ref ignore }

let set_hook t fn =
  match t with
  | Hooked { hook; _ } -> hook := fn
  | _ -> invalid_arg "Nvram.Mem.set_hook: not a hooked device"

let clear_hook t = set_hook t ignore

let mask_hook t f =
  match t with
  | Hooked { hook; _ } ->
      let saved = !hook in
      hook := ignore;
      Fun.protect ~finally:(fun () -> hook := saved) f
  | _ -> f ()

let rec size = function
  | Simulated s -> Sim.size s
  | Dram d -> Dram.size d
  | Traced { inner; _ } -> size inner
  | Hooked { inner; _ } -> size inner

let rec config = function
  | Simulated s -> Sim.config s
  | Dram d -> Dram.config d
  | Traced { inner; _ } -> config inner
  | Hooked { inner; _ } -> config inner

let rec stats = function
  | Simulated s -> Sim.stats s
  | Dram d -> Dram.stats d
  | Traced { inner; _ } -> stats inner
  | Hooked { inner; _ } -> stats inner

let rec steps = function
  | Simulated s -> Sim.steps s
  | Dram d -> Dram.steps d
  | Traced { inner; _ } -> steps inner
  | Hooked { inner; _ } -> steps inner

let rec fuel_remaining = function
  | Simulated s -> Sim.fuel_remaining s
  | Dram _ -> None
  | Traced { inner; _ } -> fuel_remaining inner
  | Hooked { inner; _ } -> fuel_remaining inner

let rec durable = function
  | Simulated s -> Sim.durable s
  | Dram d -> Dram.durable d
  | Traced { inner; _ } -> durable inner
  | Hooked { inner; _ } -> durable inner

(* The traced paths live out of line so the exported dispatchers below
   stay small enough for the Closure backend to inline at call sites —
   the hot loops in [Pcas]/[Op] hit the Simulated arm with one match and
   one direct call. [traced] and [hooked] both guarantee [inner] is a
   base (Sim/Dram) device, so these don't recurse. *)

let untraced_read t a =
  match t with
  | Simulated s -> Sim.read s a
  | Dram d -> Dram.read d a
  | Traced _ | Hooked _ -> assert false

let untraced_write t a v =
  match t with
  | Simulated s -> Sim.write s a v
  | Dram d -> Dram.write d a v
  | Traced _ | Hooked _ -> assert false

let untraced_cas t a ~expected ~desired =
  match t with
  | Simulated s -> Sim.cas s a ~expected ~desired
  | Dram d -> Dram.cas d a ~expected ~desired
  | Traced _ | Hooked _ -> assert false

let untraced_clwb t a =
  match t with
  | Simulated s -> Sim.clwb s a
  | Dram d -> Dram.clwb d a
  | Traced _ | Hooked _ -> assert false

let untraced_flit_write t a v =
  match t with
  | Simulated s -> Sim.flit_write s a v
  | Dram d -> Dram.flit_write d a v
  | Traced _ | Hooked _ -> assert false

let untraced_flit_flush t a =
  match t with
  | Simulated s -> Sim.flit_flush s a
  | Dram d -> Dram.flit_flush d a
  | Traced _ | Hooked _ -> assert false

let traced_read inner tr a =
  Trace.locked tr (fun () ->
      let v = untraced_read inner a in
      Trace.record tr (Trace.Read { addr = a; value = v });
      v)

let traced_write inner tr a v =
  Trace.locked tr (fun () ->
      untraced_write inner a v;
      Trace.record tr (Trace.Write { addr = a; value = v }))

let traced_cas inner tr a ~expected ~desired =
  Trace.locked tr (fun () ->
      let witnessed = untraced_cas inner a ~expected ~desired in
      Trace.record tr (Trace.Cas { addr = a; expected; desired; witnessed });
      witnessed)

let traced_clwb inner tr a =
  Trace.locked tr (fun () ->
      untraced_clwb inner a;
      Trace.record tr (Trace.Clwb { addr = a }))

(* Flit counters are volatile cache metadata the offline checker does not
   model; the traced arms record the underlying store / write-back so the
   replay stays faithful to what reached the device. *)

let traced_flit_write inner tr a v =
  Trace.locked tr (fun () ->
      untraced_flit_write inner a v;
      Trace.record tr (Trace.Write { addr = a; value = v }))

let traced_flit_flush inner tr a =
  Trace.locked tr (fun () ->
      untraced_flit_flush inner a;
      Trace.record tr (Trace.Clwb { addr = a }))

(* The hooked (DST) paths: run the installed hook — a scheduler yield
   point — before the operation reaches the device, so a deterministic
   scheduler can interleave logical threads at exactly the word-operation
   granularity the hardware interleaves real threads at. *)

let hooked_read inner hook a =
  !hook ();
  untraced_read inner a

let hooked_write inner hook a v =
  !hook ();
  untraced_write inner a v

let hooked_cas inner hook a ~expected ~desired =
  !hook ();
  untraced_cas inner a ~expected ~desired

let hooked_clwb inner hook a =
  !hook ();
  untraced_clwb inner a

let hooked_flit_write inner hook a v =
  !hook ();
  untraced_flit_write inner a v

let hooked_flit_flush inner hook a =
  !hook ();
  untraced_flit_flush inner a

let[@inline] read t a =
  match t with
  | Simulated s -> Sim.read s a
  | Dram d -> Dram.read d a
  | Traced { inner; tr } -> traced_read inner tr a
  | Hooked { inner; hook } -> hooked_read inner hook a

let[@inline] write t a v =
  match t with
  | Simulated s -> Sim.write s a v
  | Dram d -> Dram.write d a v
  | Traced { inner; tr } -> traced_write inner tr a v
  | Hooked { inner; hook } -> hooked_write inner hook a v

let[@inline] cas t a ~expected ~desired =
  match t with
  | Simulated s -> Sim.cas s a ~expected ~desired
  | Dram d -> Dram.cas d a ~expected ~desired
  | Traced { inner; tr } -> traced_cas inner tr a ~expected ~desired
  | Hooked { inner; hook } -> hooked_cas inner hook a ~expected ~desired

let[@inline] cas_bool t a ~expected ~desired =
  cas t a ~expected ~desired = expected

let[@inline] clwb t a =
  match t with
  | Simulated s -> Sim.clwb s a
  | Dram d -> Dram.clwb d a
  | Traced { inner; tr } -> traced_clwb inner tr a
  | Hooked { inner; hook } -> hooked_clwb inner hook a

let[@inline] flit_write t a v =
  match t with
  | Simulated s -> Sim.flit_write s a v
  | Dram d -> Dram.flit_write d a v
  | Traced { inner; tr } -> traced_flit_write inner tr a v
  | Hooked { inner; hook } -> hooked_flit_write inner hook a v

let[@inline] flit_flush t a =
  match t with
  | Simulated s -> Sim.flit_flush s a
  | Dram d -> Dram.flit_flush d a
  | Traced { inner; tr } -> traced_flit_flush inner tr a
  | Hooked { inner; hook } -> hooked_flit_flush inner hook a

(* A pure metadata load (like [read], it mutates nothing and spends no
   fuel), but routed through the DST hook so schedules can preempt a
   destination pass between the counter check and the elided flush. *)
let rec persisted t a =
  match t with
  | Simulated s -> Sim.persisted s a
  | Dram d -> Dram.persisted d a
  | Traced { inner; _ } -> persisted inner a
  | Hooked { inner; hook } ->
      !hook ();
      persisted inner a

let clwb_range t ~lo ~hi =
  let words = size t in
  if lo < 0 || lo >= words then
    invalid_arg (Printf.sprintf "Nvram.Mem: address %d out of bounds" lo);
  if hi < 0 || hi >= words then
    invalid_arg (Printf.sprintf "Nvram.Mem: address %d out of bounds" hi);
  let lw = (config t).line_words in
  let a = ref (lo / lw * lw) in
  while !a <= hi do
    clwb t !a;
    a := !a + lw
  done

let rec fence t =
  match t with
  | Simulated s -> Sim.fence s
  | Dram d -> Dram.fence d
  | Traced { inner; tr } ->
      Trace.locked tr (fun () ->
          fence inner;
          Trace.record tr Trace.Fence)
  | Hooked { inner; hook } ->
      !hook ();
      fence inner

let rec persist_all t =
  match t with
  | Simulated s -> Sim.persist_all s
  | Dram d -> Dram.persist_all d
  | Traced { inner; tr } ->
      Trace.locked tr (fun () ->
          persist_all inner;
          Trace.record tr Trace.Persist_all)
  | Hooked { inner; hook } ->
      !hook ();
      persist_all inner

let rec pending_lines = function
  | Simulated s -> Sim.pending_lines s
  | Dram d -> Dram.pending_lines d
  | Traced { inner; _ } -> pending_lines inner
  | Hooked { inner; _ } -> pending_lines inner

let rec read_persistent t a =
  match t with
  | Simulated s -> Sim.read_persistent s a
  | Dram d -> Dram.read_persistent d a
  | Traced { inner; _ } -> read_persistent inner a
  | Hooked { inner; _ } -> read_persistent inner a

let rec crash_image ?evict_prob ?seed t =
  match t with
  | Simulated s -> Simulated (Sim.crash_image ?evict_prob ?seed s)
  | Dram d -> Dram (Dram.crash_image ?evict_prob ?seed d)
  | Traced { inner; _ } -> crash_image ?evict_prob ?seed inner
  | Hooked { inner; _ } -> crash_image ?evict_prob ?seed inner

let rec inject_crash_after t n =
  match t with
  | Simulated s -> Sim.inject_crash_after s n
  | Dram _ -> invalid_arg "Nvram.Mem.inject_crash_after: volatile backend"
  | Traced { inner; _ } -> inject_crash_after inner n
  | Hooked { inner; _ } -> inject_crash_after inner n

let rec disarm = function
  | Simulated s -> Sim.disarm s
  | Dram _ -> ()
  | Traced { inner; _ } -> disarm inner
  | Hooked { inner; _ } -> disarm inner

let set_sabotage_skip_drain = Sim.set_sabotage_skip_drain
let sabotaging_skip_drain = Sim.sabotaging_skip_drain

let dump t ~lo ~hi ppf =
  for a = lo to hi - 1 do
    Format.fprintf ppf "%6d: %a@." a Flags.pp (read t a)
  done
