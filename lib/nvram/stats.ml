let shards = 64
let fields = 3 (* flush, fence, cas *)

(* Each domain's field group is padded out to [stride] cells. The atomics
   are boxed two-word blocks allocated back to back by [Array.init], so
   without padding four of them share a 64-byte line and neighbouring
   domains false-share; a stride of 8 boxes (128 bytes) keeps every
   domain's counters on their own lines under 8+ domain bench runs. *)
let stride = 8

(* Field [phase_field] of each shard holds the protocol phase the domain
   is currently executing, so a crash point can be classified after the
   fact (the fault injector freezes it: nothing restores the register
   once [Crash] starts unwinding). *)
let phase_field = 3

type t = int Atomic.t array

type snapshot = { flushes : int; fences : int; cases : int }

type phase =
  | App
  | Install
  | Precommit
  | Decide
  | Apply
  | Finalize
  | Alloc
  | Recovery

let all_phases =
  [ App; Install; Precommit; Decide; Apply; Finalize; Alloc; Recovery ]

let phase_to_int = function
  | App -> 0
  | Install -> 1
  | Precommit -> 2
  | Decide -> 3
  | Apply -> 4
  | Finalize -> 5
  | Alloc -> 6
  | Recovery -> 7

let phase_of_int = function
  | 1 -> Install
  | 2 -> Precommit
  | 3 -> Decide
  | 4 -> Apply
  | 5 -> Finalize
  | 6 -> Alloc
  | 7 -> Recovery
  | _ -> App

let phase_name = function
  | App -> "app"
  | Install -> "install"
  | Precommit -> "precommit"
  | Decide -> "decide"
  | Apply -> "apply"
  | Finalize -> "finalize"
  | Alloc -> "alloc"
  | Recovery -> "recovery"

let pp_phase ppf p = Format.pp_print_string ppf (phase_name p)
let create () = Array.init (shards * stride) (fun _ -> Atomic.make 0)

let slot field =
  let d = (Domain.self () :> int) in
  ((d land (shards - 1)) * stride) + field

let record_flush t = ignore (Atomic.fetch_and_add t.(slot 0) 1)
let record_fence t = ignore (Atomic.fetch_and_add t.(slot 1) 1)
let record_cas t = ignore (Atomic.fetch_and_add t.(slot 2) 1)
let set_phase t p = Atomic.set t.(slot phase_field) (phase_to_int p)
let current_phase t = phase_of_int (Atomic.get t.(slot phase_field))

let sum t field =
  let acc = ref 0 in
  for s = 0 to shards - 1 do
    acc := !acc + Atomic.get t.((s * stride) + field)
  done;
  !acc

let snapshot t = { flushes = sum t 0; fences = sum t 1; cases = sum t 2 }
let reset t = Array.iter (fun c -> Atomic.set c 0) t

let diff a b =
  {
    flushes = a.flushes - b.flushes;
    fences = a.fences - b.fences;
    cases = a.cases - b.cases;
  }

let pp ppf s =
  Format.fprintf ppf "flushes=%d fences=%d cas=%d" s.flushes s.fences s.cases

(* The phase register must sit past the counter fields and inside the
   shard's padding. *)
let _ = assert (fields <= phase_field && phase_field < stride)
