let shards = 64
let fields = 5 (* flush, fence, cas, elided, drained *)

(* Each domain's field group is padded out to [stride] cells. The atomics
   are boxed two-word blocks allocated back to back by [Array.init], so
   without padding four of them share a 64-byte line and neighbouring
   domains false-share; a stride of 8 boxes (128 bytes) keeps every
   domain's counters on their own lines under 8+ domain bench runs. *)
let stride = 8

(* Field [phase_field] of each shard holds the protocol phase the domain
   is currently executing, so a crash point can be classified after the
   fact (the fault injector freezes it: nothing restores the register
   once [Crash] starts unwinding). *)
let phase_field = 5

type t = int Atomic.t array

type snapshot = {
  flushes : int;
  fences : int;
  cases : int;
  elided_flushes : int;
  drained_lines : int;
}

type phase =
  | App
  | Install
  | Precommit
  | Decide
  | Apply
  | Finalize
  | Alloc
  | Recovery

let all_phases =
  [ App; Install; Precommit; Decide; Apply; Finalize; Alloc; Recovery ]

let phase_to_int = function
  | App -> 0
  | Install -> 1
  | Precommit -> 2
  | Decide -> 3
  | Apply -> 4
  | Finalize -> 5
  | Alloc -> 6
  | Recovery -> 7

let phase_of_int = function
  | 1 -> Install
  | 2 -> Precommit
  | 3 -> Decide
  | 4 -> Apply
  | 5 -> Finalize
  | 6 -> Alloc
  | 7 -> Recovery
  | _ -> App

let phase_name = function
  | App -> "app"
  | Install -> "install"
  | Precommit -> "precommit"
  | Decide -> "decide"
  | Apply -> "apply"
  | Finalize -> "finalize"
  | Alloc -> "alloc"
  | Recovery -> "recovery"

let pp_phase ppf p = Format.pp_print_string ppf (phase_name p)
let create () = Array.init (shards * stride) (fun _ -> Atomic.make 0)

let slot field =
  let d = (Domain.self () :> int) in
  ((d land (shards - 1)) * stride) + field

let record_flush t = ignore (Atomic.fetch_and_add t.(slot 0) 1)
let record_fence t = ignore (Atomic.fetch_and_add t.(slot 1) 1)
let record_cas t = ignore (Atomic.fetch_and_add t.(slot 2) 1)
let record_elided t = ignore (Atomic.fetch_and_add t.(slot 3) 1)
let record_drain t = ignore (Atomic.fetch_and_add t.(slot 4) 1)

(* --- per-phase wall time ------------------------------------------- *)

(* Accumulated nanoseconds per (domain shard, phase), fed by the phase
   register transitions below. Process-global rather than per-device:
   the phase register itself stays per-device (crash classification
   needs the frozen instance value), but telemetry wants "time this
   process spent in Decide" across every device a bench run creates.
   One group of [stride] = 8 boxed atomics per shard — exactly one cell
   per phase — so neighbouring domains never share a line. *)
let phase_ns = Array.init (shards * stride) (fun _ -> Atomic.make 0)

(* Per-shard timestamp of the last phase switch (slot 0 of each padded
   group). 0 means "no switch seen since telemetry was enabled": the
   first switch only stamps, so enabling mid-run never credits the
   entire process uptime to a phase. *)
let last_switch = Array.init (shards * stride) (fun _ -> Atomic.make 0)

let set_phase t p =
  let s = (Domain.self () :> int) land (shards - 1) in
  let reg = t.((s * stride) + phase_field) in
  if Telemetry.enabled () then begin
    let now = Telemetry.now_ns () in
    let last_cell = last_switch.(s * stride) in
    let last = Atomic.get last_cell in
    (if last <> 0 then
       let prev = Atomic.get reg in
       ignore (Atomic.fetch_and_add phase_ns.((s * stride) + prev) (now - last)));
    Atomic.set last_cell now
  end;
  Atomic.set reg (phase_to_int p)

let current_phase t = phase_of_int (Atomic.get t.(slot phase_field))

let phase_time p =
  let f = phase_to_int p in
  let acc = ref 0 in
  for s = 0 to shards - 1 do
    acc := !acc + Atomic.get phase_ns.((s * stride) + f)
  done;
  !acc

let phase_times () = List.map (fun p -> (p, phase_time p)) all_phases

let phase_times_by_domain () =
  List.filter_map
    (fun s ->
      let row =
        List.filter_map
          (fun p ->
            let v = Atomic.get phase_ns.((s * stride) + phase_to_int p) in
            if v = 0 then None else Some (p, v))
          all_phases
      in
      if row = [] then None else Some (s, row))
    (List.init shards (fun s -> s))

let reset_phase_times () =
  Array.iter (fun c -> Atomic.set c 0) phase_ns;
  Array.iter (fun c -> Atomic.set c 0) last_switch

let phase_times_to_json () =
  let module V = Telemetry.Value in
  let row ps = V.Obj (List.map (fun (p, ns) -> (phase_name p, V.Int ns)) ps) in
  V.Obj
    [
      ("total", row (phase_times ()));
      ( "by_domain",
        V.Obj
          (List.map
             (fun (s, ps) -> (string_of_int s, row ps))
             (phase_times_by_domain ())) );
    ]

let sum t field =
  let acc = ref 0 in
  for s = 0 to shards - 1 do
    acc := !acc + Atomic.get t.((s * stride) + field)
  done;
  !acc

let snapshot t =
  {
    flushes = sum t 0;
    fences = sum t 1;
    cases = sum t 2;
    elided_flushes = sum t 3;
    drained_lines = sum t 4;
  }
let reset t = Array.iter (fun c -> Atomic.set c 0) t

let diff a b =
  {
    flushes = a.flushes - b.flushes;
    fences = a.fences - b.fences;
    cases = a.cases - b.cases;
    elided_flushes = a.elided_flushes - b.elided_flushes;
    drained_lines = a.drained_lines - b.drained_lines;
  }

let to_json s =
  Telemetry.Value.Obj
    [
      ("flushes", Telemetry.Value.Int s.flushes);
      ("fences", Telemetry.Value.Int s.fences);
      ("cas", Telemetry.Value.Int s.cases);
      ("elided_flushes", Telemetry.Value.Int s.elided_flushes);
      ("drained_lines", Telemetry.Value.Int s.drained_lines);
    ]

(* Derived from [to_json], so the printed fields can never drift from
   the exported ones. *)
let pp ppf s = Telemetry.Value.pp_flat ppf (to_json s)

(* The phase register must sit past the counter fields and inside the
   shard's padding. *)
let _ = assert (fields <= phase_field && phase_field < stride)
