(** Plain volatile DRAM backend ({!Backend.S}).

    One coherent array of words, no persistent image, no line locks, no
    fault-injection fuel: loads, stores and CAS are bare [Atomic]
    operations, and the persistence primitives are free no-ops (only CAS
    is counted in {!Stats}). This is the baseline volatile-mode benchmarks
    run on, so they stop paying the simulator's bookkeeping tax.

    [crash_image] returns a fresh zeroed device — a power failure wipes
    DRAM. [read_persistent] reads the one coherent array. Callers address
    backends through {!Mem}; this module is exposed for white-box tests. *)

type t

val create : Config.t -> t
val size : t -> int
val config : t -> Config.t
val stats : t -> Stats.t

val steps : t -> int
(** Always 0 — this backend does not meter its hot path. *)

val durable : t -> bool
val read : t -> int -> int
val write : t -> int -> int -> unit
val cas : t -> int -> expected:int -> desired:int -> int
val clwb : t -> int -> unit

val flit_write : t -> int -> int -> unit
(** A plain [write] — no flush counters on a volatile backend. *)

val flit_flush : t -> int -> unit
(** Same free no-op as [clwb]. *)

val persisted : t -> int -> bool
(** Always [true]: there is never anything to flush. *)

val fence : t -> unit
val persist_all : t -> unit
val read_persistent : t -> int -> int
val crash_image : ?evict_prob:float -> ?seed:int -> t -> t

val pending_lines : t -> int list
(** Always empty — there is no write-back pipeline. *)
