type flush_mode = Sync | Async
type flit_gran = Word | Line

type t = {
  words : int;
  line_words : int;
  flush_delay : int;
  flush_mode : flush_mode;
  flit_gran : flit_gran;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let make ?(line_words = 8) ?(flush_delay = 0) ?(flush_mode = Async)
    ?(flit_gran = Word) ~words () =
  if words <= 0 then invalid_arg "Nvram.Config.make: words <= 0";
  if not (is_pow2 line_words) then
    invalid_arg "Nvram.Config.make: line_words must be a positive power of two";
  if flush_delay < 0 then invalid_arg "Nvram.Config.make: flush_delay < 0";
  { words; line_words; flush_delay; flush_mode; flit_gran }

let flush_mode_name = function Sync -> "sync" | Async -> "async"

let flush_mode_of_string = function
  | "sync" -> Some Sync
  | "async" -> Some Async
  | _ -> None

let flit_gran_name = function Word -> "word" | Line -> "line"

let flit_gran_of_string = function
  | "word" -> Some Word
  | "line" -> Some Line
  | _ -> None
