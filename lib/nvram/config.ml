type flush_mode = Sync | Async
type flit_gran = Word | Line
type strategy = [ `Paper | `NoDirty | `FewFence ]

type t = {
  words : int;
  line_words : int;
  flush_delay : int;
  flush_mode : flush_mode;
  flit_gran : flit_gran;
  strategy : strategy;
}

(* Process-global default so the many call sites that build a device
   with [Config.make ~words ()] (scenario constructors, sweep suites,
   tests) pick up the strategy selected at the CLI without each being
   re-plumbed. Set only while quiesced, like [Flit.set_enabled]. *)
let default_strategy_cell : strategy Atomic.t = Atomic.make `Paper
let set_default_strategy s = Atomic.set default_strategy_cell s
let default_strategy () = Atomic.get default_strategy_cell
let is_pow2 n = n > 0 && n land (n - 1) = 0

let make ?(line_words = 8) ?(flush_delay = 0) ?(flush_mode = Async)
    ?(flit_gran = Word) ?strategy ~words () =
  if words <= 0 then invalid_arg "Nvram.Config.make: words <= 0";
  if not (is_pow2 line_words) then
    invalid_arg "Nvram.Config.make: line_words must be a positive power of two";
  if flush_delay < 0 then invalid_arg "Nvram.Config.make: flush_delay < 0";
  let strategy =
    match strategy with Some s -> s | None -> default_strategy ()
  in
  { words; line_words; flush_delay; flush_mode; flit_gran; strategy }

let flush_mode_name = function Sync -> "sync" | Async -> "async"

let flush_mode_of_string = function
  | "sync" -> Some Sync
  | "async" -> Some Async
  | _ -> None

let flit_gran_name = function Word -> "word" | Line -> "line"

let flit_gran_of_string = function
  | "word" -> Some Word
  | "line" -> Some Line
  | _ -> None

let strategy_name = function
  | `Paper -> "paper"
  | `NoDirty -> "nodirty"
  | `FewFence -> "fewfence"

let strategy_of_string = function
  | "paper" -> Some `Paper
  | "nodirty" -> Some `NoDirty
  | "fewfence" -> Some `FewFence
  | _ -> None
