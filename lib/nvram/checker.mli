(** Offline durable-ordering checker for PMwCAS traces.

    [run] replays a merged {!Trace} (one produced by a traced {!Mem},
    sorted by sequence stamp) against a model of the device — a volatile
    and a persistent image, both starting from zero, with [Clwb] events
    copying whole lines across — and asserts the protocol's durability
    invariants from Sections 4.2–4.4 of the paper:

    - {b decide-after-persist} — a status word is never CAS'd from
      Undecided to Succeeded before the phase-1 descriptor pointer of
      every entry of that operation is in the persistent image;
    - {b persist-before-recycle} — when a status word returns to Free,
      the decided status and every phase-2 final value (rolled forward or
      back) have been persisted since the decision, so a crash cannot
      resurrect the operation against reused memory;
    - {b flush-before-use} — a domain that observes a dirty value with a
      read outside the descriptor area never issues another CAS until the
      observed word has been written back (the obligation [Op.read] and
      [Pcas] discharge with clwb-then-clear).

    The checker also cross-checks every read/CAS against its replayed
    volatile image and reports divergence, which catches traces that did
    not start at device creation.

    The [protocol] record describes descriptor geometry abstractly so
    this module stays independent of [Pmwcas.Layout];
    [Harness.Trace_check] builds one from a live pool. *)

type protocol = {
  words : int;  (** Device size; replay images start all-zero. *)
  line_words : int;
  max_words : int;  (** Per-descriptor entry capacity (sanity bound). *)
  async_flush : bool;
      (** Replay under {!Config.Async} semantics: a [Clwb] only marks its
          line pending; the next [Fence] (or [Persist_all]) persists all
          pending lines. With [false], [Clwb] persists immediately — the
          legacy synchronous model. Must match the
          [Config.flush_mode] the traced device ran with, or the checker
          proves the wrong ordering. *)
  flit : bool;
      (** Destination-only persistence mode ([Nvram.Flit]): journey
          reads legitimately observe dirty values without writing them
          back, so the flush-before-use rule is waived. The structural
          rules — decide-after-persist for every destination word and
          persist-before-recycle — still hold and are still checked;
          they are what [--broken-flit] trips. Must match
          [Flit.enabled] during the traced run. *)
  strategy : Config.strategy;
      (** Commit-protocol strategy of the traced device. Adjusts the
          rule set per variant:
          - [`Paper]: the three invariants above, plus the decide-persist
            anchor — a succeeded op's phase-2 final is never installed
            over its descriptor pointer before the decided status is in
            the persistent image.
          - [`NoDirty] strengthens: any dirty value read, written or
            CAS-installed anywhere is a violation (so flush-before-use
            is vacuous), and clean deferred finals supersede like flit
            finals do.
          - [`FewFence] relocates the decide-persist anchor: at a
            phase-2 install the status need only be {e pending}
            (clwb'd), because the op's commit batch — and any
            intervening fence by a reader that persisted a dirty final —
            drains it before anything acks. Persist-before-recycle is
            unchanged and is what [--broken-fewfence] trips. *)
  is_status_addr : int -> bool;
  is_desc_addr : int -> bool;  (** Inside the descriptor-pool region. *)
  slot_of_status : int -> int;
  count_addr : int -> int;
  entry_fields : int -> int -> int * int * int;
      (** [entry_fields slot k] — addresses of the [address], [old] and
          [new] fields of word descriptor [k]. *)
  desc_ptr : int -> int;  (** Phase-1 pointer value for a slot. *)
  status_undecided : int;
  status_succeeded : int;
  status_failed : int;
  status_free : int;
}

type violation = { seq : int; message : string }

type report = {
  events : int;
  decided : int;  (** Successful Undecided → decided transitions seen. *)
  recycled : int;  (** Decided operations whose slot returned to Free. *)
  still_in_flight : int;  (** Decided but not yet recycled at trace end. *)
  violations : violation list;
}

val run : protocol -> Trace.event array -> report

val ok : report -> bool
(** No violations. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
