type addr = int

exception Crash

type t = {
  cfg : Config.t;
  volatile : int Atomic.t array;
  persistent : int array;
  line_locks : int Atomic.t array;
  stats : Stats.t;
  fuel : int Atomic.t; (* fault injector; max_int = disarmed *)
  steps : int Atomic.t; (* completed mutating ops since creation *)
}

let create (cfg : Config.t) =
  let lines = (cfg.words + cfg.line_words - 1) / cfg.line_words in
  {
    cfg;
    volatile = Array.init cfg.words (fun _ -> Atomic.make 0);
    persistent = Array.make cfg.words 0;
    line_locks = Array.init lines (fun _ -> Atomic.make 0);
    stats = Stats.create ();
    fuel = Atomic.make max_int;
    steps = Atomic.make 0;
  }

let inject_crash_after t n =
  if n < 0 then invalid_arg "Nvram.Mem.inject_crash_after: negative fuel";
  Atomic.set t.fuel n

let disarm t = Atomic.set t.fuel max_int

(* CAS loop rather than fetch_and_add: a blind decrement could interleave
   with [disarm] (pass the armed check, then subtract from max_int,
   silently re-arming the injector), and after a crash it would keep
   driving exhausted fuel toward wrap-around. Here a concurrent [disarm]
   fails the CAS and the retry observes max_int; exhausted fuel is left
   at 0 forever, so every later op keeps raising. *)
let spend t =
  let rec burn () =
    let f = Atomic.get t.fuel in
    if f = max_int then ()
    else if f <= 0 then raise Crash
    else if not (Atomic.compare_and_set t.fuel f (f - 1)) then burn ()
  in
  burn ();
  Atomic.incr t.steps

let steps t = Atomic.get t.steps

let fuel_remaining t =
  match Atomic.get t.fuel with
  | f when f = max_int -> None
  | f -> Some (max f 0)

let size t = t.cfg.words
let config t = t.cfg
let stats t = t.stats
let durable _ = true

let check t a =
  if a < 0 || a >= t.cfg.words then
    invalid_arg (Printf.sprintf "Nvram.Mem: address %d out of bounds" a)

let read t a =
  check t a;
  Atomic.get t.volatile.(a)

let write t a v =
  check t a;
  spend t;
  Atomic.set t.volatile.(a) v

let cas t a ~expected ~desired =
  check t a;
  spend t;
  Stats.record_cas t.stats;
  let cell = t.volatile.(a) in
  let rec loop () =
    let cur = Atomic.get cell in
    if cur <> expected then cur
    else if Atomic.compare_and_set cell expected desired then expected
    else loop ()
  in
  loop ()

let lock_line t line =
  let l = t.line_locks.(line) in
  while not (Atomic.compare_and_set l 0 1) do
    Domain.cpu_relax ()
  done

let unlock_line t line = Atomic.set t.line_locks.(line) 0

(* Copy the coherent content of a whole line into the NVM image, under the
   line lock so that the persistent image always equals "the volatile value
   at the time of the last write-back" — the guarantee cache coherence
   gives a real CLWB. *)
let write_back_line t line =
  lock_line t line;
  let lo = line * t.cfg.line_words in
  let hi = min (lo + t.cfg.line_words) t.cfg.words in
  for a = lo to hi - 1 do
    t.persistent.(a) <- Atomic.get t.volatile.(a)
  done;
  unlock_line t line

let charge_flush_delay t =
  for _ = 1 to t.cfg.flush_delay do
    Domain.cpu_relax ()
  done

(* Stall-time histograms: how long the caller was stuck in the
   write-back (line lock + copy + modelled device latency). On-demand so
   the registry entry only appears once a simulated device runs. *)
let clwb_hist = Telemetry.on_demand "nvram.clwb_stall_ns"
let fence_hist = Telemetry.on_demand "nvram.fence_ns"

let clwb t a =
  check t a;
  spend t;
  Stats.record_flush t.stats;
  if Telemetry.enabled () then begin
    let t0 = Telemetry.now_ns () in
    write_back_line t (a / t.cfg.line_words);
    charge_flush_delay t;
    Telemetry.Histogram.record (clwb_hist ())
      (Telemetry.now_ns () - t0)
  end
  else begin
    write_back_line t (a / t.cfg.line_words);
    charge_flush_delay t
  end

let fence t =
  Stats.record_fence t.stats;
  (* [clwb] is synchronous in this model, so a fence never stalls: it
     records a zero-duration sample purely so fence frequency shows up
     alongside the clwb stall histogram. *)
  if Telemetry.enabled () then
    Telemetry.Histogram.record (fence_hist ()) 0

let persist_all t =
  for line = 0 to Array.length t.line_locks - 1 do
    write_back_line t line
  done

let read_persistent t a =
  check t a;
  (* Take the line lock so tests never observe a half-written line. *)
  let line = a / t.cfg.line_words in
  lock_line t line;
  let v = t.persistent.(a) in
  unlock_line t line;
  v

let crash_image ?(evict_prob = 0.) ?seed t =
  let rng =
    if evict_prob <= 0. then None
    else
      match seed with
      | Some s -> Some (Random.State.make [| s |])
      | None ->
          invalid_arg
            "Nvram.Mem.crash_image: evict_prob > 0 requires an explicit seed"
  in
  let img = create t.cfg in
  let lw = t.cfg.line_words in
  for line = 0 to Array.length t.line_locks - 1 do
    let evicted =
      match rng with
      | Some rng -> Random.State.float rng 1.0 < evict_prob
      | None -> false
    in
    let lo = line * lw in
    let hi = min (lo + lw) t.cfg.words in
    (* Sample the whole line under its lock so a concurrent write-back can
       never tear it: an evicted line is exactly the coherent volatile
       content, a surviving line exactly the last completed write-back. *)
    lock_line t line;
    for a = lo to hi - 1 do
      let v =
        if evicted then Atomic.get t.volatile.(a) else t.persistent.(a)
      in
      Atomic.set img.volatile.(a) v;
      img.persistent.(a) <- v
    done;
    unlock_line t line
  done;
  img
