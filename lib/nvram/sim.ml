type addr = int

exception Crash

type t = {
  cfg : Config.t;
  volatile : int Atomic.t array;
  persistent : int array;
  line_locks : int Atomic.t array;
  pending : bool Atomic.t array; (* line enqueued for write-back *)
  pending_stack : int list Atomic.t; (* lines awaiting the next fence *)
  flit : int Atomic.t array; (* FliT flush counters, one per granule *)
  stats : Stats.t;
  fuel : int Atomic.t; (* fault injector; max_int = disarmed *)
  steps : int Atomic.t; (* completed mutating ops since creation *)
}

(* Device-level sabotage for checker/harness self-tests: when armed,
   [fence] spends fuel and counts as usual but skips the drain, i.e. the
   program "executes" a fence that persists nothing. Process-global so
   the CLI can arm it without threading a handle through the suites. *)
let sabotage_skip_drain = Atomic.make false
let set_sabotage_skip_drain b = Atomic.set sabotage_skip_drain b
let sabotaging_skip_drain () = Atomic.get sabotage_skip_drain

let create (cfg : Config.t) =
  let lines = (cfg.words + cfg.line_words - 1) / cfg.line_words in
  let granules =
    match cfg.flit_gran with Config.Word -> cfg.words | Config.Line -> lines
  in
  {
    cfg;
    volatile = Array.init cfg.words (fun _ -> Atomic.make 0);
    persistent = Array.make cfg.words 0;
    line_locks = Array.init lines (fun _ -> Atomic.make 0);
    pending = Array.init lines (fun _ -> Atomic.make false);
    pending_stack = Atomic.make [];
    flit = Array.init granules (fun _ -> Atomic.make 0);
    stats = Stats.create ();
    fuel = Atomic.make max_int;
    steps = Atomic.make 0;
  }

let inject_crash_after t n =
  if n < 0 then invalid_arg "Nvram.Mem.inject_crash_after: negative fuel";
  Atomic.set t.fuel n

let disarm t = Atomic.set t.fuel max_int

(* CAS loop rather than fetch_and_add: a blind decrement could interleave
   with [disarm] (pass the armed check, then subtract from max_int,
   silently re-arming the injector), and after a crash it would keep
   driving exhausted fuel toward wrap-around. Here a concurrent [disarm]
   fails the CAS and the retry observes max_int; exhausted fuel is left
   at 0 forever, so every later op keeps raising. *)
let spend t =
  let rec burn () =
    let f = Atomic.get t.fuel in
    if f = max_int then ()
    else if f <= 0 then raise Crash
    else if not (Atomic.compare_and_set t.fuel f (f - 1)) then burn ()
  in
  burn ();
  Atomic.incr t.steps

let steps t = Atomic.get t.steps

let fuel_remaining t =
  match Atomic.get t.fuel with
  | f when f = max_int -> None
  | f -> Some (max f 0)

let size t = t.cfg.words
let config t = t.cfg
let stats t = t.stats
let durable _ = true

let check t a =
  if a < 0 || a >= t.cfg.words then
    invalid_arg (Printf.sprintf "Nvram.Mem: address %d out of bounds" a)

let read t a =
  check t a;
  Atomic.get t.volatile.(a)

let write t a v =
  check t a;
  spend t;
  Atomic.set t.volatile.(a) v

let cas t a ~expected ~desired =
  check t a;
  spend t;
  Stats.record_cas t.stats;
  let cell = t.volatile.(a) in
  let rec loop () =
    let cur = Atomic.get cell in
    if cur <> expected then cur
    else if Atomic.compare_and_set cell expected desired then expected
    else loop ()
  in
  loop ()

let lock_line t line =
  let l = t.line_locks.(line) in
  while not (Atomic.compare_and_set l 0 1) do
    Domain.cpu_relax ()
  done

let unlock_line t line = Atomic.set t.line_locks.(line) 0

(* Copy the coherent content of a whole line into the NVM image, under the
   line lock so that the persistent image always equals "the volatile value
   at the time of the last write-back" — the guarantee cache coherence
   gives a real CLWB. *)
let write_back_line t line =
  lock_line t line;
  let lo = line * t.cfg.line_words in
  let hi = min (lo + t.cfg.line_words) t.cfg.words in
  for a = lo to hi - 1 do
    t.persistent.(a) <- Atomic.get t.volatile.(a)
  done;
  unlock_line t line

let charge_flush_delay t =
  for _ = 1 to t.cfg.flush_delay do
    Domain.cpu_relax ()
  done

(* A line whose persistent image already equals its coherent volatile
   content needs no write-back at all (FliT-style elision). Sound for
   every caller in this codebase: single-writer words (descriptor slots,
   allocator records) can only observe equality when their own last store
   is durable, and shared data words are persisted via [Pcas.persist],
   whose CAS-clear of the dirty bit fails if the word moved on — a
   superseding writer re-flushes. *)
let line_clean t line =
  lock_line t line;
  let lo = line * t.cfg.line_words in
  let hi = min (lo + t.cfg.line_words) t.cfg.words in
  let clean = ref true in
  (try
     for a = lo to hi - 1 do
       if t.persistent.(a) <> Atomic.get t.volatile.(a) then begin
         clean := false;
         raise Exit
       end
     done
   with Exit -> ());
  unlock_line t line;
  !clean

let rec push_pending t line =
  let cur = Atomic.get t.pending_stack in
  if not (Atomic.compare_and_set t.pending_stack cur (line :: cur)) then
    push_pending t line

(* Drain one line: clear the pending flag *before* copying, so any clwb
   that elided after observing the flag set is guaranteed its value is
   covered — the copy starts after the clear, hence reads volatile
   content at least as new as that clwb's preceding store (all cells are
   seq-cst atomics). Copy-then-clear would let such a clwb's store slip
   between the copy and the clear and never persist. *)
let drain_line t line =
  Atomic.set t.pending.(line) false;
  write_back_line t line;
  charge_flush_delay t;
  Stats.record_drain t.stats;
  if Flight.tracing () then Flight.emit Flight.Drain line 0 0

(* Stall-time histograms: how long the caller was stuck in the device.
   Under [Async], clwb stalls only for the elision bookkeeping (the
   clean-line scan takes the line lock) and the fence pays the drain;
   under [Sync], clwb pays the whole write-back and fences are free.
   On-demand so the registry entry only appears once a device runs. *)
let clwb_hist = Telemetry.on_demand "nvram.clwb_stall_ns"
let fence_hist = Telemetry.on_demand "nvram.fence_ns"

let clwb_sync t a =
  Stats.record_flush t.stats;
  let line = a / t.cfg.line_words in
  if Flight.tracing () then Flight.emit Flight.Clwb a line 0;
  write_back_line t line;
  charge_flush_delay t

(* Async CLWB: mark the line pending and return — the copy and the
   modelled stall are deferred to the draining fence, charged once per
   distinct line however many clwbs hit it. Elided entirely when the
   line is already pending (coalesced into the in-flight batch: the
   draining fence clears the flag before it copies, so observing the
   flag set guarantees the coming copy covers this clwb's values) or
   already clean in the persistent image. *)
let record_elided t a line =
  Stats.record_elided t.stats;
  if Flight.tracing () then Flight.emit Flight.Flush_elided a line 0

let clwb_async t a =
  let line = a / t.cfg.line_words in
  if Atomic.get t.pending.(line) then record_elided t a line
  else if line_clean t line then record_elided t a line
  else if Atomic.compare_and_set t.pending.(line) false true then begin
    Stats.record_flush t.stats;
    if Flight.tracing () then Flight.emit Flight.Clwb a line 0;
    push_pending t line
  end
  else (* lost the race: someone else just marked it pending *)
    record_elided t a line

let clwb t a =
  check t a;
  spend t;
  let body =
    match t.cfg.flush_mode with
    | Config.Sync -> clwb_sync
    | Config.Async -> clwb_async
  in
  if Telemetry.enabled () && Telemetry.sample () then begin
    let t0 = Telemetry.now_ns () in
    body t a;
    Telemetry.Histogram.record (clwb_hist ()) (Telemetry.now_ns () - t0)
  end
  else body t a

(* FliT-style flush counters (Wei et al., SPAA 2021). A tracked store
   bumps its granule's counter *before* the store lands, and the paired
   [flit_flush] decrements it after the clwb — so a nonzero counter means
   "a tracked store may still be unflushed" at every interleaving, and
   [persisted] can only under-report durability, never over-report it.
   The counters are volatile cache metadata: a crash image starts from
   [create] and therefore resets them all to zero, which is the correct
   conservative state (everything in the image IS the durable content). *)

let granule t a =
  match t.cfg.flit_gran with
  | Config.Word -> a
  | Config.Line -> a / t.cfg.line_words

let flit_write t a v =
  check t a;
  spend t;
  Atomic.incr t.flit.(granule t a);
  Atomic.set t.volatile.(a) v

(* Floor-at-zero decrement: two racing flushers of the same granule must
   not drive the counter negative (a negative counter would make a later
   tracked store invisible to [persisted]). *)
let flit_flush t a =
  clwb t a;
  let c = t.flit.(granule t a) in
  let rec dec () =
    let n = Atomic.get c in
    if n > 0 && not (Atomic.compare_and_set c n (n - 1)) then dec ()
  in
  dec ()

let persisted t a =
  check t a;
  Atomic.get t.flit.(granule t a) = 0

(* Drain every line enqueued so far. Runs to completion once entered:
   [fence] spends its fuel *before* the drain, so an injected crash lands
   on the fence boundary (pending lines lost) — never inside a torn
   drain. *)
let drain_all t =
  let drained = ref 0 in
  let rec loop () =
    match Atomic.exchange t.pending_stack [] with
    | [] -> ()
    | lines ->
        List.iter
          (fun line ->
            drain_line t line;
            incr drained)
          lines;
        loop ()
  in
  loop ();
  !drained

let fence t =
  spend t;
  Stats.record_fence t.stats;
  let drain () =
    match t.cfg.flush_mode with
    | Config.Sync -> 0
    | Config.Async ->
        if not (Atomic.get sabotage_skip_drain) then drain_all t else 0
  in
  let drained =
    if Telemetry.enabled () && Telemetry.sample () then begin
      let t0 = Telemetry.now_ns () in
      let n = drain () in
      Telemetry.Histogram.record (fence_hist ()) (Telemetry.now_ns () - t0);
      n
    end
    else drain ()
  in
  if Flight.tracing () then Flight.emit Flight.Fence drained 0 0

let persist_all t =
  (* Full-device write-back: also retires the pending pipeline so a
     subsequent crash image reflects a quiescent device, and settles the
     flit counters — every tracked store is now durable. Init-time only;
     concurrent tracked stores would race the counter reset. *)
  ignore (Atomic.exchange t.pending_stack []);
  for line = 0 to Array.length t.line_locks - 1 do
    if Atomic.exchange t.pending.(line) false then Stats.record_drain t.stats;
    write_back_line t line
  done;
  Array.iter (fun c -> Atomic.set c 0) t.flit

(* At-risk lines for crash forensics: enqueued for write-back but not
   yet drained. Sampled without locks — callers run it on a quiesced
   (crashed) device. *)
let pending_lines t =
  let out = ref [] in
  for line = Array.length t.pending - 1 downto 0 do
    if Atomic.get t.pending.(line) then out := line :: !out
  done;
  !out

let read_persistent t a =
  check t a;
  (* Take the line lock so tests never observe a half-written line. *)
  let line = a / t.cfg.line_words in
  lock_line t line;
  let v = t.persistent.(a) in
  unlock_line t line;
  v

let crash_image ?(evict_prob = 0.) ?seed t =
  let rng =
    if evict_prob <= 0. then None
    else
      match seed with
      | Some s -> Some (Random.State.make [| s |])
      | None ->
          invalid_arg
            "Nvram.Mem.crash_image: evict_prob > 0 requires an explicit seed"
  in
  let img = create t.cfg in
  let lw = t.cfg.line_words in
  for line = 0 to Array.length t.line_locks - 1 do
    let evicted =
      match rng with
      | Some rng -> Random.State.float rng 1.0 < evict_prob
      | None -> false
    in
    let lo = line * lw in
    let hi = min (lo + lw) t.cfg.words in
    (* Sample the whole line under its lock so a concurrent write-back can
       never tear it: an evicted line is exactly the coherent volatile
       content, a surviving line exactly the last completed write-back.
       A line that is clwb'd but not yet fenced is *not* sampled from the
       volatile image — it survives only via this eviction lottery, which
       is exactly the asynchronous-CLWB durability contract. *)
    lock_line t line;
    for a = lo to hi - 1 do
      let v =
        if evicted then Atomic.get t.volatile.(a) else t.persistent.(a)
      in
      Atomic.set img.volatile.(a) v;
      img.persistent.(a) <- v
    done;
    unlock_line t line
  done;
  img
