(** Destination-only persistence: process-global policy switch and
    accounting.

    With the mode on (the default), index operations split NVTraverse
    style: the {e journey} — the traversal to the operation's window —
    does plain volatile reads (no clwb, no fence, dirty payloads are
    returned unflushed), and only the {e destination} — the nodes
    written in the critical phase plus the PMwCAS target words — is
    made persistent before the decide point. The per-granule FliT
    counters ({!Mem.flit_write} / {!Mem.flit_flush} / {!Mem.persisted})
    let that destination pass elide write-backs of already-durable
    granules; this module counts both outcomes and exposes the switch. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Toggle the mode. Only flip it while the indexes on the device are
    quiesced: tracked writers and destination passes must agree on the
    mode, or the pass will consult counters the stores never bumped. *)

val set_sabotage_skip_destination : bool -> unit
(** Self-test hook ([--broken-flit]): armed, destination passes count
    but skip the write-backs they decided were needed, so fresh node
    bodies only persist via the eviction lottery. The crash-sweep must
    detect the resulting corruption. *)

val sabotage_skip_destination : unit -> bool

(** {1 Counters}

    Process-global (like [Store.counters]), summed over all domains.
    [elided] counts flushes a destination pass skipped because every
    granule in the line was already durable; [destination_flushes]
    counts the real write-backs it issued. Exported to the metrics
    registry as the [flit.counters] source and gated by
    [check-metrics --require-flit-counters]. *)

type counters = { elided : int; destination_flushes : int }

val counters : unit -> counters
val reset_counters : unit -> unit
val counters_to_json : unit -> Telemetry.Value.t

val record_elided : addr:int -> line:int -> unit
(** Count (and, when the flight recorder is on, emit a [Flit_elide]
    instant for) one skipped destination flush. *)

val record_destination_flush : addr:int -> line:int -> unit
(** Count one real destination write-back ([Flit_dest_flush] instant). *)
