type t = { cfg : Config.t; cells : int Atomic.t array; stats : Stats.t }

let create (cfg : Config.t) =
  {
    cfg;
    cells = Array.init cfg.words (fun _ -> Atomic.make 0);
    stats = Stats.create ();
  }

let size t = t.cfg.words
let config t = t.cfg

(* The lean backend does not meter the hot path; its stats stay zero. *)
let stats t = t.stats
let steps _ = 0
let durable _ = false

let check t a =
  if a < 0 || a >= t.cfg.words then
    invalid_arg (Printf.sprintf "Nvram.Mem: address %d out of bounds" a)

(* Hot ops lean on OCaml's built-in array bounds check (also
   [Invalid_argument]) instead of an explicit range test: one branch per
   access, no fuel counter, no stats — that is the point of this
   backend. *)

let read t a = Atomic.get t.cells.(a)
let write t a v = Atomic.set t.cells.(a) v

let cas t a ~expected ~desired =
  let cell = t.cells.(a) in
  let rec loop () =
    let cur = Atomic.get cell in
    if cur <> expected then cur
    else if Atomic.compare_and_set cell expected desired then expected
    else loop ()
  in
  loop ()

let clwb t a = check t a

(* Nothing to flush on DRAM: tracked stores are plain stores, flushes are
   bounds checks, and every word is trivially "persisted" — a destination
   pass elides all of its (free) flushes. *)
let flit_write = write
let flit_flush = clwb

let persisted t a =
  check t a;
  true

let fence _ = ()
let persist_all _ = ()

(* There is no separate NVM image: "persistent" reads observe the one
   coherent array, which is what volatile-mode protocol tests expect. *)
let read_persistent = read

(* A power failure wipes DRAM: the image is a fresh zeroed device. *)
let crash_image ?evict_prob:_ ?seed:_ t = create t.cfg

(* No write-back pipeline, nothing ever at risk. *)
let pending_lines _ = []
