(** The memory device every layer above [Nvram] addresses.

    [Mem.t] dispatches each word operation to a concrete backend
    implementing {!Backend.S}:

    - {!Sim} — simulated cache-lined NVRAM with separate volatile and
      persistent images, flush-delay modelling and fault injection (the
      default, and the only durable backend);
    - {!Dram} — a bare coherent array with no persistence bookkeeping,
      for volatile-mode baselines;
    - a {e traced} wrapper around either, which appends every operation
      to per-domain {!Trace} logs for offline checking with {!Checker}.

    Dispatch is a single variant match per operation; the simulated hot
    path is unchanged from the pre-backend design (verified against the
    E1 microbenchmark). All word operations are linearizable across
    domains; on the simulated backend, [clwb] persists the volatile
    content current at its linearization point, like the hardware CLWB
    under cache coherence. *)

type t

type addr = int
(** A word offset in [0, size). Word addresses play the role of the
    paper's 8-byte-aligned pointers. *)

type backend = [ `Sim | `Dram ]

(** {1 Construction} *)

val create : Config.t -> t
(** Fresh simulated-NVRAM device, all words zero in both images. *)

val create_dram : Config.t -> t
(** Fresh volatile DRAM device. *)

val create_backend : backend -> Config.t -> t
val backend_of_string : string -> backend option
val backend_name : backend -> string

val traced : t -> t
(** Wrap a device so every subsequent operation is appended to a
    {!Trace}. Tracing serializes operations (stamp and operation are
    atomic) — use for checking, not benchmarking. Raises
    [Invalid_argument] if [t] is already traced. *)

val trace : t -> Trace.t option
(** The event log of a traced device. *)

val hooked : t -> t
(** Wrap a base device so every word operation (read/write/CAS/clwb/
    fence/persist_all) first runs an installable hook — the per-operation
    seam the deterministic-interleaving scheduler ([Dst.Sched]) uses as
    its yield points, exactly where {!traced} records its events. The
    hook starts as [ignore]; install one with {!set_hook}. Raises
    [Invalid_argument] on an already-wrapped (traced or hooked) device. *)

val set_hook : t -> (unit -> unit) -> unit
(** Install the per-operation hook of a {!hooked} device. The hook runs
    {e before} the operation reaches the device, on the calling domain.
    Raises [Invalid_argument] if [t] is not hooked. *)

val clear_hook : t -> unit
(** Reset the hook to [ignore]. *)

val mask_hook : t -> (unit -> 'a) -> 'a
(** [mask_hook t f] runs [f] with the hook suppressed; identity on
    non-hooked devices. For mutex-protected critical sections that
    perform word operations: under the cooperative scheduler a yield
    taken while holding a lock would park the fiber mid-section and
    deadlock any other fiber contending the same lock on the one
    underlying domain, so such sections run atomically with respect to
    scheduling instead. Fuel-based crash injection still applies inside
    the masked section — only scheduling points are suppressed. *)

(** {1 Introspection} *)

val size : t -> int
val config : t -> Config.t
val stats : t -> Stats.t

val steps : t -> int
(** Completed mutating operations (write/CAS/clwb/fence) since creation
    across all domains. The crash-sweep harness runs a workload once,
    reads the total, and sweeps every fuel value below it — no fuel
    guessing. Always 0 on the DRAM backend. *)

val kind : t -> backend

val durable : t -> bool
(** Whether [clwb]/[crash_image] model real persistence. [Pool] and
    [Palloc] default their [persistent] flag to this. *)

(** {1 Volatile (cached) accesses} *)

val read : t -> addr -> int
(** Plain load from the coherent view. Callers inside the PMwCAS protocol
    must use [Pmwcas.Op.read] instead; this is the raw instruction. *)

val write : t -> addr -> int -> unit
(** Plain store to the coherent view. Does not persist. *)

val cas : t -> addr -> expected:int -> desired:int -> int
(** Atomic compare-and-swap with x86 [cmpxchg] semantics: returns the
    value witnessed in the word. The swap happened iff the result equals
    [expected]. *)

val cas_bool : t -> addr -> expected:int -> desired:int -> bool
(** Convenience wrapper over [cas]. *)

(** {1 Persistence primitives} *)

val clwb : t -> addr -> unit
(** Ask for the cache line containing [addr] to be written back to the
    persistent image. Under the default {!Config.Async} flush mode this
    only enqueues the line (redundant clwbs of a pending or already-clean
    line are elided and counted in [Stats.elided_flushes]); durability
    comes from the next [fence]. Under {!Config.Sync} the copy and the
    [Config.flush_delay] busy-work happen here. A free no-op on volatile
    backends. *)

val fence : t -> unit
(** Store fence / SFENCE: the drain point of the asynchronous write-back
    pipeline. Copies every pending line to the persistent image, charging
    the modelled stall once per distinct line. Burns injector fuel, so
    the crash sweep can land a power failure exactly on a fence — losing
    whatever was clwb'd but not yet drained. Under {!Config.Sync} it
    orders nothing (clwb already copied) but still counts and spends. *)

val flit_write : t -> addr -> int -> unit
(** FliT-style tracked store (Wei et al., SPAA 2021): bump the flush
    counter of the containing granule ([Config.flit_gran], default one
    counter per word), then store. Pair every tracked store with a later
    {!flit_flush}; until then {!persisted} reports the granule
    unpersisted. Use for destination words that a later counter-eliding
    persist pass (e.g. [Pcas.persist_range]) will make durable — plain
    [write]s are invisible to the counters and must keep using
    [clwb]-based persistence. *)

val flit_flush : t -> addr -> unit
(** [clwb] plus a floor-at-zero decrement of the granule's flush
    counter: the write-back half of the flit_write/flit_flush pair.
    Durability under the async pipeline still comes from the next
    [fence], exactly as for [clwb]. *)

val persisted : t -> addr -> bool
(** [true] iff the granule's flush counter is zero, i.e. every tracked
    store to it has issued its write-back. Conservative by construction
    (the counter rises before the store lands, falls only after its
    clwb), so a destination pass may safely elide flushing a persisted
    granule — any still-pending line is drained by the fence the PMwCAS
    precommit always executes before its decide point. Always [true] on
    volatile backends; spends no injector fuel. *)

val clwb_range : t -> lo:addr -> hi:addr -> unit
(** Write back every cache line intersecting [\[lo, hi\]] (inclusive).
    Handles unaligned ranges — the footgun of stepping by the line size
    from an unaligned start is exactly what this helper exists to avoid. *)

val persist_all : t -> unit
(** Flush every line. Intended for initialization code, not hot paths. *)

(** {1 Failure simulation} *)

exception Crash
(** Raised by mutating operations once injected fuel runs out. *)

val inject_crash_after : t -> int -> unit
(** Arm the fault injector: after [n] further mutating operations
    ([write]/[cas]/[clwb]/[fence]) across all domains, every subsequent mutating
    operation raises {!Crash}. Workers unwind, the test joins them and
    calls [crash_image] — emulating a power failure at an arbitrary store
    boundary. [disarm] (or a fresh [crash_image]) turns it off. Only the
    simulated backend supports injection; raises [Invalid_argument] on a
    volatile device. *)

val disarm : t -> unit

val set_sabotage_skip_drain : bool -> unit
(** Process-global self-test hook (see {!Sim.set_sabotage_skip_drain}):
    armed, every simulated [fence] skips its drain while still counting
    and spending fuel. The crash-sweep must flag the resulting silent
    durability loss. *)

val sabotaging_skip_drain : unit -> bool
(** Current state of the knob (for save/restore around calibration). *)

val fuel_remaining : t -> int option
(** Remaining injector fuel; [None] when disarmed (or on a volatile
    backend). Exhausted fuel stays at zero — it cannot wrap — and a
    [disarm] that raced a concurrent mutating operation still wins. *)

val read_persistent : t -> addr -> int
(** Read the NVM image directly (white-box accessor for tests). On a
    volatile backend this reads the one coherent array. *)

val pending_lines : t -> int list
(** Cache lines clwb'd but not yet drained by a fence — exactly the
    state a power failure would lose (modulo the eviction lottery).
    Crash forensics snapshot this next to the event rings. Always empty
    on volatile backends and under {!Config.Sync}. *)

val crash_image : ?evict_prob:float -> ?seed:int -> t -> t
(** Power-failure snapshot: a fresh device whose content is the
    persistent image, except that each cache line, independently with
    probability [evict_prob] (default [0.]), instead carries its volatile
    content — modelling lines that the cache happened to evict before the
    failure. [seed] drives the eviction lottery and is required whenever
    [evict_prob > 0], so eviction-based crash tests are deterministic.
    Lines are sampled under their line locks, so an image never contains
    a torn line. Both images of the result are equal (a rebooted machine
    has cold caches); statistics are reset. A volatile device comes back
    zeroed; a traced device's image is untraced.

    Must be called while no other domain is mutating [t] (a real power
    failure stops all CPUs at once). *)

(** {1 Debug} *)

val dump : t -> lo:addr -> hi:addr -> Format.formatter -> unit
(** Hex-ish dump of the volatile image of words [lo, hi). *)
