(** Configuration of the simulated NVRAM device. *)

(** Write-back model of [Mem.clwb]/[Mem.fence].

    [Async] is the realistic CLWB+SFENCE pipeline: [clwb] marks the line
    pending and returns, [fence] drains every pending line (one copy and
    one modelled stall per {e distinct} line). A line clwb'd but not yet
    fenced is not guaranteed durable in [crash_image].

    [Sync] is the legacy model: every [clwb] copies its line and pays the
    stall immediately; [fence] orders nothing because there is nothing in
    flight. Kept as the baseline the flush experiments compare against. *)
type flush_mode = Sync | Async

type t = private {
  words : int;  (** Total capacity in 8-byte words. *)
  line_words : int;
      (** Words per cache line (power of two). Write-back granularity of
          [Mem.clwb] — flushing one word persists its whole line, exactly
          as CLWB does for 64-byte lines (8 words). *)
  flush_delay : int;
      (** Busy-work iterations charged per line write-back, modelling the
          extra latency of an NVDIMM relative to a cached store. [0]
          disables the cost model (pure functional simulation). *)
  flush_mode : flush_mode;  (** Write-back pipeline model; default [Async]. *)
}

val make :
  ?line_words:int ->
  ?flush_delay:int ->
  ?flush_mode:flush_mode ->
  words:int ->
  unit ->
  t
(** @raise Invalid_argument if [words <= 0], [line_words] is not a positive
    power of two, or [flush_delay < 0]. *)

val flush_mode_name : flush_mode -> string
val flush_mode_of_string : string -> flush_mode option
