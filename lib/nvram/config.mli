(** Configuration of the simulated NVRAM device. *)

(** Write-back model of [Mem.clwb]/[Mem.fence].

    [Async] is the realistic CLWB+SFENCE pipeline: [clwb] marks the line
    pending and returns, [fence] drains every pending line (one copy and
    one modelled stall per {e distinct} line). A line clwb'd but not yet
    fenced is not guaranteed durable in [crash_image].

    [Sync] is the legacy model: every [clwb] copies its line and pays the
    stall immediately; [fence] orders nothing because there is nothing in
    flight. Kept as the baseline the flush experiments compare against. *)
type flush_mode = Sync | Async

(** Granularity of the FliT-style flush counters ({!Mem.flit_write} /
    {!Mem.flit_flush} / {!Mem.persisted}).

    [Word] keeps one counter per word — precise, so a destination pass
    can elide a line as soon as every word it covers has been flushed.
    [Line] keeps one counter per cache line — 8x fewer counters, but a
    pending write anywhere in the line keeps the whole line
    "unpersisted". *)
type flit_gran = Word | Line

(** Commit-protocol strategy of the PMwCAS running on this device.

    [`Paper] is the ICDE'18 protocol exactly as reproduced so far: every
    protocol store carries a dirty bit, readers flush-on-read and clear
    it with a CAS, and the commit ordering fences at precommit, at the
    decide persist, and per phase-2 batch.

    [`NoDirty] is the dirty-bit-free variant (Sugiura et al.,
    arXiv:2404.01710): every protocol store is installed {e clean} and
    flushed unconditionally by its writer, so no reader ever pays a
    dirty-clear CAS and no dirty value is ever observable. The decide
    status must still be durable before phase 2 applies finals.

    [`FewFence] keeps the dirty bits but relocates the decide-persist
    fence: after the decide CAS the status line is only [clwb]'d, and
    the single fence of the phase-2 batch drains status and finals
    together (the decide-after-persist anchor moves from the status CAS
    to that batch fence). Journey reads must persist dirty values under
    this strategy — a stripped dirty final could otherwise be observed
    before the decision is durable.

    The strategy is a property of the device so every pool, checker and
    recovery pass attached to the same memory agrees on the protocol. *)
type strategy = [ `Paper | `NoDirty | `FewFence ]

type t = private {
  words : int;  (** Total capacity in 8-byte words. *)
  line_words : int;
      (** Words per cache line (power of two). Write-back granularity of
          [Mem.clwb] — flushing one word persists its whole line, exactly
          as CLWB does for 64-byte lines (8 words). *)
  flush_delay : int;
      (** Busy-work iterations charged per line write-back, modelling the
          extra latency of an NVDIMM relative to a cached store. [0]
          disables the cost model (pure functional simulation). *)
  flush_mode : flush_mode;  (** Write-back pipeline model; default [Async]. *)
  flit_gran : flit_gran;
      (** Flush-counter granularity for the destination-only persistence
          API; default [Word]. *)
  strategy : strategy;
      (** Commit-protocol strategy; defaults to {!default_strategy}. *)
}

val make :
  ?line_words:int ->
  ?flush_delay:int ->
  ?flush_mode:flush_mode ->
  ?flit_gran:flit_gran ->
  ?strategy:strategy ->
  words:int ->
  unit ->
  t
(** @raise Invalid_argument if [words <= 0], [line_words] is not a positive
    power of two, or [flush_delay < 0]. *)

val set_default_strategy : strategy -> unit
(** Process-global default picked up by [make] when [?strategy] is
    omitted. Flip only while every device built from it is quiesced
    (CLI startup, between bench points): pools dispatch on their
    device's strategy at every protocol step, and mixing strategies on
    one device is unsound. *)

val default_strategy : unit -> strategy

val flush_mode_name : flush_mode -> string
val flush_mode_of_string : string -> flush_mode option
val flit_gran_name : flit_gran -> string
val flit_gran_of_string : string -> flit_gran option
val strategy_name : strategy -> string
val strategy_of_string : string -> strategy option
