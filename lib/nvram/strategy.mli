(** Commit-protocol strategy seam: process-global accounting and
    self-test hooks.

    The strategy itself is selected per device ({!Config.strategy},
    usually via {!Config.set_default_strategy}); [Pmwcas.Pcas] and
    [Pmwcas.Op] dispatch on it at every protocol step. This module
    carries the cross-cutting pieces: the sabotage knobs the
    [--broken-nodirty] / [--broken-fewfence] self-tests arm, and the
    process-global counters exported to the metrics registry as the
    [strategy.counters] source (gated by
    [check-metrics --require-strategy-counters]). *)

val set_sabotage_skip_nodirty_flush : bool -> unit
(** Self-test hook ([--broken-nodirty]): armed, a [`NoDirty] commit
    skips its unconditional pointer and status write-backs while still
    skipping the dirty bits, so the decision only persists through the
    eviction lottery. Crash-sweep and DST must detect the resulting
    torn or lost commits. *)

val sabotage_skip_nodirty_flush : unit -> bool

val set_sabotage_skip_commit_fence : bool -> unit
(** Self-test hook ([--broken-fewfence]): armed, a [`FewFence] commit
    issues its clwbs and dirty-clear CASes but drops the relocated
    batch fence, claiming durability for lines that were never
    drained. *)

val sabotage_skip_commit_fence : unit -> bool

(** {1 Counters}

    Process-global (like [Flit.counters]), summed over all domains.
    [dirty_cas] counts dirty-clear CASes issued after persists — the
    per-word protocol cost [`NoDirty] eliminates; [commit_batches]
    counts [`FewFence] combined status+finals batches (one fence
    each). *)

type counters = { dirty_cas : int; commit_batches : int }

val counters : unit -> counters
val reset_counters : unit -> unit

val counters_to_json : unit -> Telemetry.Value.t
(** [{strategy; dirty_cas; commit_batches}] where [strategy] is the
    process-default strategy name. *)

val record_dirty_cas : addr:int -> line:int -> unit
(** Count (and, when the flight recorder is on, emit a [Dirty_cas]
    instant for) one dirty-clear CAS. *)

val record_commit_batch : slot:int -> words:int -> unit
(** Count one [`FewFence] commit batch ([Commit_batch] instant). *)
