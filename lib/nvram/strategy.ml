(* Process-global accounting and self-test hooks for the commit-protocol
   strategy seam. Which strategy runs is a per-device property
   ([Config.strategy], defaulted from [Config.set_default_strategy]);
   this module owns what is policy around it: the sabotage knobs the
   crash-sweep self-tests arm, and the counters the metrics gate
   requires ([strategy.counters], gated by
   [check-metrics --require-strategy-counters]). *)

(* Self-test hook ([--broken-nodirty]): armed, a [`NoDirty] commit skips
   the unconditional pointer and status write-backs (while still
   installing everything clean, i.e. still skipping the dirty bits), so
   the decision and the phase-1 pointers only reach NVM through the
   eviction lottery. Crash-sweep and DST must flag the resulting torn
   or lost commits. *)
let sabotage_nodirty = Atomic.make false
let set_sabotage_skip_nodirty_flush b = Atomic.set sabotage_nodirty b
let sabotage_skip_nodirty_flush () = Atomic.get sabotage_nodirty

(* Self-test hook ([--broken-fewfence]): armed, a [`FewFence] commit
   drops the relocated batch fence — the clwbs and the dirty-clear
   CASes still run, so readers are told the words are durable while the
   lines were never drained. *)
let sabotage_fewfence = Atomic.make false
let set_sabotage_skip_commit_fence b = Atomic.set sabotage_fewfence b
let sabotage_skip_commit_fence () = Atomic.get sabotage_fewfence

type counters = { dirty_cas : int; commit_batches : int }

(* Field 0 = dirty-clear CASes issued after a persist (the per-word
   cost [`NoDirty] eliminates), 1 = [`FewFence] combined status+finals
   commit batches (one fence each). *)
let counter_cells = Telemetry.Sharded.create ~fields:2

let record_dirty_cas ~addr ~line =
  Telemetry.Sharded.incr counter_cells 0;
  if Flight.tracing () then Flight.emit Flight.Dirty_cas addr line 0

let record_commit_batch ~slot ~words =
  Telemetry.Sharded.incr counter_cells 1;
  if Flight.tracing () then Flight.emit Flight.Commit_batch slot words 0

let counters () =
  let s = Telemetry.Sharded.sum counter_cells in
  { dirty_cas = s 0; commit_batches = s 1 }

let reset_counters () = Telemetry.Sharded.reset counter_cells

let counters_to_json () =
  let c = counters () in
  Telemetry.Value.Obj
    [
      ( "strategy",
        Telemetry.Value.String
          (Config.strategy_name (Config.default_strategy ())) );
      ("dirty_cas", Telemetry.Value.Int c.dirty_cas);
      ("commit_batches", Telemetry.Value.Int c.commit_batches);
    ]
