(* The backend signature is the whole module: see backend.mli. *)

module type S = sig
  type t

  val create : Config.t -> t
  val size : t -> int
  val config : t -> Config.t
  val stats : t -> Stats.t
  val steps : t -> int
  val durable : t -> bool
  val read : t -> int -> int
  val write : t -> int -> int -> unit
  val cas : t -> int -> expected:int -> desired:int -> int
  val clwb : t -> int -> unit
  val flit_write : t -> int -> int -> unit
  val flit_flush : t -> int -> unit
  val persisted : t -> int -> bool
  val fence : t -> unit
  val persist_all : t -> unit
  val read_persistent : t -> int -> int
  val crash_image : ?evict_prob:float -> ?seed:int -> t -> t
  val pending_lines : t -> int list
end
