type op =
  | Read of { addr : int; value : int }
  | Write of { addr : int; value : int }
  | Cas of { addr : int; expected : int; desired : int; witnessed : int }
  | Clwb of { addr : int }
  | Fence
  | Persist_all

type event = { seq : int; domain : int; op : op }

let shards = 64

type t = {
  lock : Mutex.t;
  mutable seq : int;
  logs : event list ref array; (* per-domain, newest first *)
}

let create () =
  {
    lock = Mutex.create ();
    seq = 0;
    logs = Array.init shards (fun _ -> ref []);
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Only call while [locked]: the global stamp and the shard list are both
   guarded by the trace lock. *)
let record t op =
  let domain = (Domain.self () :> int) in
  let seq = t.seq in
  t.seq <- seq + 1;
  let log = t.logs.(domain land (shards - 1)) in
  log := { seq; domain; op } :: !log

let length t = locked t (fun () -> t.seq)

let clear t =
  locked t (fun () ->
      t.seq <- 0;
      Array.iter (fun l -> l := []) t.logs)

let events t =
  locked t (fun () ->
      let all =
        Array.fold_left (fun acc l -> List.rev_append !l acc) [] t.logs
      in
      let a = Array.of_list all in
      Array.sort (fun e1 e2 -> compare e1.seq e2.seq : event -> event -> int) a;
      a)

let pp_op ppf = function
  | Read { addr; value } -> Format.fprintf ppf "read  %d -> %a" addr Flags.pp value
  | Write { addr; value } -> Format.fprintf ppf "write %d <- %a" addr Flags.pp value
  | Cas { addr; expected; desired; witnessed } ->
      Format.fprintf ppf "cas   %d %a -> %a (saw %a)" addr Flags.pp expected
        Flags.pp desired Flags.pp witnessed
  | Clwb { addr } -> Format.fprintf ppf "clwb  %d" addr
  | Fence -> Format.fprintf ppf "fence"
  | Persist_all -> Format.fprintf ppf "persist_all"

let pp_event ppf (e : event) =
  Format.fprintf ppf "%8d d%-3d %a" e.seq e.domain pp_op e.op
