(* Per-domain single-writer event rings. Each record is [stride] ints:
   [kind; t_ns; a; b; c]. The owning domain writes the fields with
   plain stores and then publishes by bumping [seq] (an Atomic.set is a
   release on OCaml 5), so a snapshotting domain that reads [seq],
   copies the buffer, and re-reads [seq] can tell exactly which records
   survived the copy untorn: index [i] is safe iff
   [i < seq_before && i >= seq_after + 1 - capacity] — anything later
   was (possibly) being overwritten while we copied. *)

type kind =
  | Op_begin
  | Op_end
  | Mwcas_attempt
  | Mwcas_succeed
  | Mwcas_fail
  | Mwcas_backoff
  | Rdcss_install
  | Help_edge
  | Clwb
  | Flush_elided
  | Fence
  | Drain
  | Epoch_enter
  | Epoch_advance
  | Epoch_defer
  | Epoch_free
  | Palloc_carve
  | Palloc_steal
  | Desc_alloc
  | Desc_retire
  | Batch_open
  | Batch_commit
  | Recovery_phase
  | Flit_elide
  | Flit_dest_flush
  | Dirty_cas
  | Commit_batch

let all_kinds =
  [|
    Op_begin; Op_end; Mwcas_attempt; Mwcas_succeed; Mwcas_fail; Mwcas_backoff;
    Rdcss_install; Help_edge; Clwb; Flush_elided; Fence; Drain; Epoch_enter;
    Epoch_advance; Epoch_defer; Epoch_free; Palloc_carve; Palloc_steal;
    Desc_alloc; Desc_retire; Batch_open; Batch_commit; Recovery_phase;
    Flit_elide; Flit_dest_flush; Dirty_cas; Commit_batch;
  |]

let kind_to_int = function
  | Op_begin -> 0
  | Op_end -> 1
  | Mwcas_attempt -> 2
  | Mwcas_succeed -> 3
  | Mwcas_fail -> 4
  | Mwcas_backoff -> 5
  | Rdcss_install -> 6
  | Help_edge -> 7
  | Clwb -> 8
  | Flush_elided -> 9
  | Fence -> 10
  | Drain -> 11
  | Epoch_enter -> 12
  | Epoch_advance -> 13
  | Epoch_defer -> 14
  | Epoch_free -> 15
  | Palloc_carve -> 16
  | Palloc_steal -> 17
  | Desc_alloc -> 18
  | Desc_retire -> 19
  | Batch_open -> 20
  | Batch_commit -> 21
  | Recovery_phase -> 22
  | Flit_elide -> 23
  | Flit_dest_flush -> 24
  | Dirty_cas -> 25
  | Commit_batch -> 26

let kind_of_int i =
  if i >= 0 && i < Array.length all_kinds then Some all_kinds.(i) else None

let kind_name = function
  | Op_begin -> "op_begin"
  | Op_end -> "op_end"
  | Mwcas_attempt -> "mwcas_attempt"
  | Mwcas_succeed -> "mwcas_succeed"
  | Mwcas_fail -> "mwcas_fail"
  | Mwcas_backoff -> "mwcas_backoff"
  | Rdcss_install -> "rdcss_install"
  | Help_edge -> "help_edge"
  | Clwb -> "clwb"
  | Flush_elided -> "flush_elided"
  | Fence -> "fence"
  | Drain -> "drain"
  | Epoch_enter -> "epoch_enter"
  | Epoch_advance -> "epoch_advance"
  | Epoch_defer -> "epoch_defer"
  | Epoch_free -> "epoch_free"
  | Palloc_carve -> "palloc_carve"
  | Palloc_steal -> "palloc_steal"
  | Desc_alloc -> "desc_alloc"
  | Desc_retire -> "desc_retire"
  | Batch_open -> "batch_open"
  | Batch_commit -> "batch_commit"
  | Recovery_phase -> "recovery_phase"
  | Flit_elide -> "flit_elide"
  | Flit_dest_flush -> "flit_dest_flush"
  | Dirty_cas -> "dirty_cas"
  | Commit_batch -> "commit_batch"

let op_mwcas = 0
let op_sl_insert = 1
let op_sl_delete = 2
let op_sl_update = 3
let op_sl_find = 4
let op_bt_put = 5
let op_bt_insert = 6
let op_bt_remove = 7
let op_bt_get = 8
let op_recovery = 9

let op_name = function
  | 0 -> "mwcas"
  | 1 -> "skiplist.insert"
  | 2 -> "skiplist.delete"
  | 3 -> "skiplist.update"
  | 4 -> "skiplist.find"
  | 5 -> "bwtree.put"
  | 6 -> "bwtree.insert"
  | 7 -> "bwtree.remove"
  | 8 -> "bwtree.get"
  | 9 -> "recovery"
  | n -> "op" ^ string_of_int n

let stride = 5
let default_capacity = 4096

(* Global switch + configuration. [generation] retires every existing
   ring (reset, capacity change): a cached ring whose [gen] is stale is
   simply replaced on the owner's next write. *)
let enabled_flag = Atomic.make false
let capacity_cell = Atomic.make default_capacity
let shift_cell = Atomic.make 0
let generation = Atomic.make 0

let[@inline] tracing () = Atomic.get enabled_flag
let sample_shift () = Atomic.get shift_cell
let set_sample_shift n = Atomic.set shift_cell (max 0 (min 30 n))

type ring = {
  dom : int;
  gen : int;
  cap : int;  (* records *)
  buf : int array;  (* cap * stride *)
  seq : int Atomic.t;  (* published record count; single writer *)
  mutable depth : int;  (* open op spans on this domain *)
  mutable ops : int;  (* outermost spans seen, for sampling *)
  mutable sampled : bool;  (* current outermost span kept? *)
}

let registry_mutex = Mutex.create ()
let registry : (int, ring) Hashtbl.t = Hashtbl.create 16

let key : ring option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let make_ring dom gen =
  let cap = max 1 (Atomic.get capacity_cell) in
  {
    dom;
    gen;
    cap;
    buf = Array.make (cap * stride) 0;
    seq = Atomic.make 0;
    depth = 0;
    ops = 0;
    sampled = true;
  }

let ring () =
  let g = Atomic.get generation in
  match Domain.DLS.get key with
  | Some r when r.gen = g -> r
  | _ ->
      let dom = (Domain.self () :> int) in
      let r = make_ring dom g in
      Mutex.lock registry_mutex;
      Hashtbl.replace registry dom r;
      Mutex.unlock registry_mutex;
      Domain.DLS.set key (Some r);
      r

let enable ?capacity ?sample_shift () =
  (match capacity with
  | Some c when c <> Atomic.get capacity_cell ->
      Atomic.set capacity_cell (max 1 c);
      Atomic.incr generation
  | _ -> ());
  (match sample_shift with Some s -> set_sample_shift s | None -> ());
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.reset registry;
  Atomic.incr generation;
  Mutex.unlock registry_mutex

(* Run identifier: joinable tag for metrics files and forensics
   artifacts produced by one invocation. *)
let run_id_cell = Atomic.make None
let set_run_id s = Atomic.set run_id_cell (Some s)

let run_id () =
  match Atomic.get run_id_cell with
  | Some s -> s
  | None ->
      let t = Unix.gettimeofday () in
      let tm = Unix.localtime t in
      let fresh =
        Printf.sprintf "%04d%02d%02d-%02d%02d%02d-p%d" (tm.Unix.tm_year + 1900)
          (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
          tm.Unix.tm_sec (Unix.getpid ())
      in
      if Atomic.compare_and_set run_id_cell None (Some fresh) then fresh
      else Option.get (Atomic.get run_id_cell)

(* Single-writer append. Plain stores into [buf], then a release
   publish of [seq]. *)
let record r k a b c =
  let s = Atomic.get r.seq in
  let off = s mod r.cap * stride in
  let buf = r.buf in
  buf.(off) <- kind_to_int k;
  buf.(off + 1) <- Telemetry.Clock.now_ns ();
  buf.(off + 2) <- a;
  buf.(off + 3) <- b;
  buf.(off + 4) <- c;
  Atomic.set r.seq (s + 1)

let[@inline] keeping r = r.depth = 0 || r.sampled

let emit k a b c =
  if tracing () then begin
    let r = ring () in
    if keeping r then record r k a b c
  end

(* Op spans. The token encodes what [op_end] must undo: 0 = recorder
   was off (nothing opened), 1 = span opened but sampled out, 2 = span
   opened and recorded. The sampling decision is made only at depth 0
   and inherited by nested spans, so a skiplist op and the MwCAS
   attempts under it keep or drop their events together. *)
let op_begin ~op ~key:k =
  if not (tracing ()) then 0
  else begin
    let r = ring () in
    if r.depth = 0 then begin
      let sh = Atomic.get shift_cell in
      r.ops <- r.ops + 1;
      r.sampled <- sh = 0 || r.ops land ((1 lsl sh) - 1) = 0
    end;
    r.depth <- r.depth + 1;
    if r.sampled then record r Op_begin op k 0;
    if r.sampled then 2 else 1
  end

let close_span token ~op ~key:k ~code =
  if token <> 0 then begin
    let r = ring () in
    if token = 2 then record r Op_end op k code;
    if r.depth > 0 then r.depth <- r.depth - 1
  end

let op_end token ~op ~key ~ok =
  close_span token ~op ~key ~code:(if ok then 1 else 0)

let op_cancel token ~op ~key = close_span token ~op ~key ~code:2

type event = {
  dom : int;
  seq : int;
  t_ns : int;
  kind : kind;
  a : int;
  b : int;
  c : int;
}

type snapshot = { taken_ns : int; rings : (int * int * event array) list }

let snapshot_ring (r : ring) =
  let seq_before = Atomic.get r.seq in
  let copy = Array.copy r.buf in
  let seq_after = Atomic.get r.seq in
  (* Record [i] lives in slot [i mod cap]; it is torn if some record
     [j >= seq_before] with [j mod cap = i mod cap] was being written
     during the copy. The writer may already be filling record
     [seq_after] (unpublished), so the oldest trustworthy index is
     [seq_after + 1 - cap]. *)
  let lo = max 0 (seq_after + 1 - r.cap) in
  let hi = seq_before in
  let out = ref [] in
  for i = hi - 1 downto lo do
    let off = i mod r.cap * stride in
    match kind_of_int copy.(off) with
    | Some kind ->
        out :=
          {
            dom = r.dom;
            seq = i;
            t_ns = copy.(off + 1);
            kind;
            a = copy.(off + 2);
            b = copy.(off + 3);
            c = copy.(off + 4);
          }
          :: !out
    | None -> ()
  done;
  (r.dom, seq_before, Array.of_list !out)

let snapshot () =
  Mutex.lock registry_mutex;
  let rings = Hashtbl.fold (fun _ r acc -> r :: acc) registry [] in
  Mutex.unlock registry_mutex;
  let rings =
    List.sort (fun (a : ring) (b : ring) -> compare a.dom b.dom) rings
    |> List.map snapshot_ring
  in
  { taken_ns = Telemetry.Clock.now_ns (); rings }

let event_count s =
  List.fold_left (fun n (_, _, evs) -> n + Array.length evs) 0 s.rings

let merged s =
  List.concat_map (fun (_, _, evs) -> Array.to_list evs) s.rings
  |> List.sort (fun a b -> compare (a.t_ns, a.dom, a.seq) (b.t_ns, b.dom, b.seq))

(* Per-kind payload field names, shared by the pretty-printer and the
   Chrome exporter. *)
let arg_names = function
  | Op_begin -> ("op", "key", "")
  | Op_end -> ("op", "key", "ok")
  | Mwcas_attempt -> ("slot", "words", "depth")
  | Mwcas_succeed | Mwcas_fail -> ("slot", "", "depth")
  | Mwcas_backoff -> ("streak", "spins", "")
  | Rdcss_install -> ("addr", "slot", "helped")
  | Help_edge -> ("owner", "slot", "depth")
  | Clwb | Flush_elided -> ("addr", "line", "")
  | Flit_elide | Flit_dest_flush -> ("addr", "line", "")
  | Dirty_cas -> ("addr", "line", "")
  | Commit_batch -> ("slot", "words", "")
  | Fence -> ("drained", "", "")
  | Drain -> ("line", "", "")
  | Epoch_enter | Epoch_defer -> ("epoch", "", "")
  | Epoch_advance -> ("epoch", "", "")
  | Epoch_free -> ("freed", "upto", "")
  | Palloc_carve -> ("cls", "blocks", "arena")
  | Palloc_steal -> ("cls", "victim", "")
  | Desc_alloc | Desc_retire -> ("slot", "", "")
  | Batch_open -> ("shard", "queued", "")
  | Batch_commit -> ("shard", "size", "")
  | Recovery_phase -> ("phase", "arg", "")

let pp_event ppf e =
  let an, bn, cn = arg_names e.kind in
  let field n v =
    if n <> "" then
      if e.kind = Op_begin && n = "op" then
        Format.fprintf ppf " %s=%s" n (op_name v)
      else if e.kind = Op_end && n = "op" then
        Format.fprintf ppf " %s=%s" n (op_name v)
      else Format.fprintf ppf " %s=%d" n v
  in
  Format.fprintf ppf "[%d.%d] t=%dns %s" e.dom e.seq e.t_ns
    (kind_name e.kind);
  field an e.a;
  field bn e.b;
  field cn e.c

let postmortem ?(tail = 50) s =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let base =
    List.fold_left
      (fun acc (_, _, evs) ->
        Array.fold_left (fun acc e -> min acc e.t_ns) acc evs)
      max_int s.rings
  in
  List.iter
    (fun (dom, total, evs) ->
      let n = Array.length evs in
      let k = min tail n in
      Format.fprintf ppf "domain %d: %d events recorded, showing last %d@." dom
        total k;
      for i = n - k to n - 1 do
        let e = evs.(i) in
        let an, bn, cn = arg_names e.kind in
        let field n v =
          if n <> "" then
            if (e.kind = Op_begin || e.kind = Op_end) && n = "op" then
              Format.fprintf ppf " %s=%s" n (op_name v)
            else Format.fprintf ppf " %s=%d" n v
        in
        Format.fprintf ppf "  [%4d] +%-9d %s" e.seq
          (if base = max_int then e.t_ns else e.t_ns - base)
          (kind_name e.kind);
        field an e.a;
        field bn e.b;
        field cn e.c;
        Format.pp_print_newline ppf ()
      done)
    s.rings;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
