(** Flight recorder: per-domain event rings ({!Recorder}) plus the
    Chrome trace-event / Perfetto exporter ({!Perfetto}). *)

include module type of Recorder
module Perfetto = Perfetto
