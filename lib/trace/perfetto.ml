module V = Telemetry.Value

(* Chrome trace-event JSON (the "JSON Array Format" wrapped in an
   object, which Perfetto also ingests). One process (pid 1), one
   thread per recording domain. Timestamps are microseconds as floats;
   rebasing to the earliest event keeps them well inside double
   precision. *)

let pid = 1

let base_ns snap =
  List.fold_left
    (fun acc (_, _, evs) ->
      Array.fold_left (fun acc e -> min acc e.Recorder.t_ns) acc evs)
    max_int snap.Recorder.rings

let ts ~base t_ns = V.Float (float_of_int (t_ns - base) /. 1000.)

let meta_events snap =
  V.Obj
    [
      ("name", V.String "process_name");
      ("ph", V.String "M");
      ("pid", V.Int pid);
      ("args", V.Obj [ ("name", V.String "pmwcas") ]);
    ]
  :: List.map
       (fun (dom, _, _) ->
         V.Obj
           [
             ("name", V.String "thread_name");
             ("ph", V.String "M");
             ("pid", V.Int pid);
             ("tid", V.Int dom);
             ("args", V.Obj [ ("name", V.String ("domain " ^ string_of_int dom)) ]);
           ])
       snap.Recorder.rings

let cat_of = function
  | Recorder.Op_begin | Op_end -> "op"
  | Mwcas_attempt | Mwcas_succeed | Mwcas_fail | Mwcas_backoff | Rdcss_install
    ->
      "mwcas"
  | Help_edge -> "help"
  | Clwb | Flush_elided | Fence | Drain -> "nvram"
  | Flit_elide | Flit_dest_flush -> "nvram"
  | Dirty_cas | Commit_batch -> "strategy"
  | Epoch_enter | Epoch_advance | Epoch_defer | Epoch_free -> "epoch"
  | Palloc_carve | Palloc_steal -> "palloc"
  | Desc_alloc | Desc_retire -> "desc"
  | Batch_open | Batch_commit -> "store"
  | Recovery_phase -> "recovery"

let args_of (e : Recorder.event) =
  let an, bn, cn = Recorder.arg_names e.kind in
  let field n v acc = if n = "" then acc else (n, V.Int v) :: acc in
  V.Obj (("seq", V.Int e.seq) :: field an e.a (field bn e.b (field cn e.c [])))

let instant ~base (e : Recorder.event) =
  V.Obj
    [
      ("name", V.String (Recorder.kind_name e.kind));
      ("cat", V.String (cat_of e.kind));
      ("ph", V.String "i");
      ("s", V.String "t");
      ("ts", ts ~base e.t_ns);
      ("pid", V.Int pid);
      ("tid", V.Int e.dom);
      ("args", args_of e);
    ]

(* Op spans: match Op_begin/Op_end per domain with a stack (spans nest:
   an index op contains the MwCAS ops it issues). A begin left open by
   a crash exports as a "B" without an "E" — viewers clamp it to the
   end of the trace, which is exactly right for a crashed op. *)
let span_events ~base evs =
  let out = ref [] in
  let stack = ref [] in
  Array.iter
    (fun (e : Recorder.event) ->
      match e.kind with
      | Op_begin -> stack := e :: !stack
      | Op_end -> (
          match !stack with
          | b :: rest when b.a = e.a ->
              stack := rest;
              out :=
                V.Obj
                  [
                    ("name", V.String (Recorder.op_name b.a));
                    ("cat", V.String "op");
                    ("ph", V.String "X");
                    ("ts", ts ~base b.t_ns);
                    ( "dur",
                      V.Float (float_of_int (e.t_ns - b.t_ns) /. 1000.) );
                    ("pid", V.Int pid);
                    ("tid", V.Int e.dom);
                    ( "args",
                      V.Obj
                        [
                          ("key", V.Int b.b);
                          ( "ok",
                            V.String
                              (match e.c with
                              | 1 -> "true"
                              | 2 -> "aborted"
                              | _ -> "false") );
                          ("seq", V.Int b.seq);
                        ] );
                  ]
                :: !out
          | _ ->
              (* Begin fell off the ring (or was sampled away by a
                 mid-span enable): keep the end as an instant. *)
              out := instant ~base e :: !out)
      | _ -> ())
    evs;
  List.iter
    (fun (b : Recorder.event) ->
      out :=
        V.Obj
          [
            ("name", V.String (Recorder.op_name b.a));
            ("cat", V.String "op");
            ("ph", V.String "B");
            ("ts", ts ~base b.t_ns);
            ("pid", V.Int pid);
            ("tid", V.Int b.dom);
            ("args", V.Obj [ ("key", V.Int b.b); ("seq", V.Int b.seq) ]);
          ]
        :: !out)
    !stack;
  List.rev !out

(* Help edges as flow pairs. The "s" end sits on the owner's track at
   the owner's most recent attempt on that descriptor slot before the
   help (its install is what the helper is finishing); if the ring no
   longer holds one, it degrades to the helper's own stamp. *)
let flow_events ~base snap =
  let attempts =
    (* (dom, slot) -> ascending attempt stamps *)
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (dom, _, evs) ->
        Array.iter
          (fun (e : Recorder.event) ->
            if e.kind = Recorder.Mwcas_attempt then
              Hashtbl.replace tbl (dom, e.a)
                (e.t_ns
                 :: (try Hashtbl.find tbl (dom, e.a) with Not_found -> [])))
          evs)
      snap.Recorder.rings;
    tbl
  in
  let owner_stamp ~owner ~slot ~before =
    match Hashtbl.find_opt attempts (owner, slot) with
    | None -> None
    | Some stamps ->
        (* Stored newest-first. *)
        List.find_opt (fun t -> t <= before) stamps
  in
  let next_id = ref 0 in
  let out = ref [] in
  List.iter
    (fun (dom, _, evs) ->
      Array.iter
        (fun (e : Recorder.event) ->
          if e.kind = Recorder.Help_edge && e.a >= 0 then begin
            incr next_id;
            let id = !next_id in
            let s_ts =
              match owner_stamp ~owner:e.a ~slot:e.b ~before:e.t_ns with
              | Some t -> t
              | None -> e.t_ns
            in
            let common =
              [
                ("name", V.String "help");
                ("cat", V.String "help");
                ("id", V.Int id);
                ("pid", V.Int pid);
              ]
            in
            out :=
              V.Obj
                (common
                @ [
                    ("ph", V.String "s");
                    ("ts", ts ~base s_ts);
                    ("tid", V.Int e.a);
                    ("args", V.Obj [ ("slot", V.Int e.b) ]);
                  ])
              :: V.Obj
                   (common
                   @ [
                       ("ph", V.String "f");
                       ("bp", V.String "e");
                       ("ts", ts ~base e.t_ns);
                       ("tid", V.Int dom);
                       ( "args",
                         V.Obj [ ("slot", V.Int e.b); ("depth", V.Int e.c) ] );
                     ])
              :: !out
          end)
        evs)
    snap.Recorder.rings;
  List.rev !out

let help_edge_count snap =
  List.fold_left
    (fun n (_, _, evs) ->
      Array.fold_left
        (fun n (e : Recorder.event) ->
          if e.kind = Recorder.Help_edge && e.a >= 0 then n + 1 else n)
        n evs)
    0 snap.Recorder.rings

let to_chrome ?run_id snap =
  let base = base_ns snap in
  let base = if base = max_int then 0 else base in
  let instants =
    List.concat_map
      (fun (_, _, evs) ->
        Array.to_list evs
        |> List.filter_map (fun (e : Recorder.event) ->
               match e.kind with
               | Recorder.Op_begin | Op_end -> None
               | _ -> Some (instant ~base e)))
      snap.Recorder.rings
  in
  let spans =
    List.concat_map (fun (_, _, evs) -> span_events ~base evs) snap.Recorder.rings
  in
  let events =
    meta_events snap @ spans @ instants @ flow_events ~base snap
  in
  V.Obj
    [
      ("traceEvents", V.List events);
      ("displayTimeUnit", V.String "ns");
      ( "otherData",
        V.Obj
          [
            ( "run_id",
              V.String
                (match run_id with Some r -> r | None -> Recorder.run_id ()) );
            ("events", V.Int (Recorder.event_count snap));
          ] );
    ]

let write_file ?run_id path snap =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (V.to_string (to_chrome ?run_id snap)))
