include Recorder
module Perfetto = Perfetto
