(** Flight recorder: per-domain ring buffers of compact binary events.

    Always-on-capable causal tracing for the PMwCAS stack: each domain
    owns a fixed-capacity ring of [kind; t_ns; a; b; c] integer records
    written lock-free by that domain only, published through a
    per-domain sequence counter and merged post-hoc on the monotonic
    clock stamps. Disabled ([tracing () = false], the default) every
    instrumentation site costs one atomic load and a branch; enabled,
    1-in-2^[sample_shift] operation sampling decides per outermost op
    span whether the op and the low-level events nested under it
    (flushes, fences, help edges, epoch traffic) are recorded, so the
    recorder can stay on in benches.

    The library is named [flight] rather than [trace] because the
    [nvram] library already carries an internal [Trace] module (word-op
    persistence traces); this recorder is the event-timeline layer on
    top. *)

(** Event kinds. Payload word meaning per kind (a, b, c):
    - [Op_begin]/[Op_end]: opcode (see [op_name]), key, ok-code
      (end only: 0 = false, 1 = true, 2 = aborted by exception)
    - [Mwcas_attempt]: descriptor slot, word count, help depth
    - [Mwcas_succeed]/[Mwcas_fail]: descriptor slot, 0, help depth
    - [Mwcas_backoff]: failure streak, spin count, 0
    - [Rdcss_install]: target address, descriptor slot,
      0 = own install / 1 = helped a foreign RDCSS
    - [Help_edge]: owner domain (-1 unknown), descriptor slot, depth
    - [Clwb]/[Flush_elided]: address, cache line, 0
    - [Fence]: drained line count, 0, 0
    - [Drain]: cache line, 0, 0
    - [Epoch_enter]/[Epoch_defer]: global epoch, 0, 0
    - [Epoch_advance]: new epoch, 0, 0
    - [Epoch_free]: freed node count, up-to epoch, 0
    - [Palloc_carve]: size class, blocks carved, arena
    - [Palloc_steal]: size class, victim arena, 0
    - [Desc_alloc]/[Desc_retire]: descriptor slot, 0, 0
    - [Batch_open]: store shard, queued ops, 0
    - [Batch_commit]: store shard, batch size, 0
    - [Recovery_phase]: phase code (0 = begin, 1 = rolled forward,
      2 = rolled back, 3 = end), argument (base / slot / in-flight), 0
    - [Flit_elide]/[Flit_dest_flush]: address, cache line, 0 — a
      destination-persist pass that skipped an already-durable granule
      vs one that issued a real write-back, so Perfetto shows the
      journey/destination split of the FliT mode
    - [Dirty_cas]: address, cache line, 0 — a dirty-clear CAS issued
      after a persist (the per-word cost the [`NoDirty] strategy
      eliminates)
    - [Commit_batch]: descriptor slot, word count, 0 — the [`FewFence]
      combined status+finals persist batch (one fence for both) *)
type kind =
  | Op_begin
  | Op_end
  | Mwcas_attempt
  | Mwcas_succeed
  | Mwcas_fail
  | Mwcas_backoff
  | Rdcss_install
  | Help_edge
  | Clwb
  | Flush_elided
  | Fence
  | Drain
  | Epoch_enter
  | Epoch_advance
  | Epoch_defer
  | Epoch_free
  | Palloc_carve
  | Palloc_steal
  | Desc_alloc
  | Desc_retire
  | Batch_open
  | Batch_commit
  | Recovery_phase
  | Flit_elide
  | Flit_dest_flush
  | Dirty_cas
  | Commit_batch

val kind_name : kind -> string
val kind_to_int : kind -> int
val kind_of_int : int -> kind option

(** Opcodes carried by [Op_begin]/[Op_end]. *)

val op_mwcas : int
val op_sl_insert : int
val op_sl_delete : int
val op_sl_update : int
val op_sl_find : int
val op_bt_put : int
val op_bt_insert : int
val op_bt_remove : int
val op_bt_get : int
val op_recovery : int
val op_name : int -> string

(** {1 Switch, sampling, identity} *)

val enable : ?capacity:int -> ?sample_shift:int -> unit -> unit
(** Turn the recorder on. [capacity] is records per domain ring
    (default 4096; changing it retires existing rings). [sample_shift]
    records 1 in 2^shift outermost op spans (default 0 = every op). *)

val disable : unit -> unit

val tracing : unit -> bool
(** One atomic load; the guard every instrumentation site uses. *)

val reset : unit -> unit
(** Drop all recorded events (rings are recreated lazily). *)

val set_sample_shift : int -> unit
val sample_shift : unit -> int

val run_id : unit -> string
(** Process-wide run identifier (time + pid derived unless set),
    stamped into metrics files and forensics artifacts so outputs of
    one invocation are joinable. *)

val set_run_id : string -> unit

(** {1 Recording} *)

val emit : kind -> int -> int -> int -> unit
(** [emit k a b c] appends a record to the calling domain's ring. No-op
    when disabled; inside an unsampled op span the record is dropped;
    outside any span (rare structural events) it is always kept. *)

val op_begin : op:int -> key:int -> int
(** Open an op span; returns a token to pass to [op_end]/[op_cancel].
    The outermost span makes the sampling decision for everything
    nested under it. Token 0 means the recorder was off. *)

val op_end : int -> op:int -> key:int -> ok:bool -> unit
val op_cancel : int -> op:int -> key:int -> unit
(** [op_cancel] closes a span unwound by an exception (e.g. an injected
    crash); the [Op_end] record carries ok-code 2. *)

(** {1 Snapshots} *)

type event = {
  dom : int;  (** recording domain *)
  seq : int;  (** per-domain sequence, monotonic *)
  t_ns : int;  (** monotonic clock stamp *)
  kind : kind;
  a : int;
  b : int;
  c : int;
}

type snapshot = {
  taken_ns : int;
  rings : (int * int * event array) list;
      (** (domain, total records ever written, surviving events
          oldest-first) sorted by domain. *)
}

val snapshot : unit -> snapshot
(** Safe against concurrent writers: records that may have been
    overwritten or in flight during the copy are dropped, never torn. *)

val merged : snapshot -> event list
(** All surviving events, sorted by clock stamp (ties by domain then
    sequence). *)

val arg_names : kind -> string * string * string
(** Payload field names (empty string = unused word); shared by the
    pretty-printer and the exporters. *)

val pp_event : Format.formatter -> event -> unit

val postmortem : ?tail:int -> snapshot -> string
(** Human-readable per-domain "last [tail] events" report
    (default 50). *)

val event_count : snapshot -> int
