(** Chrome trace-event / Perfetto JSON export of flight-recorder
    snapshots: domains as tracks, op spans as complete ("X") slices,
    low-level events as thread-scoped instants, and help-chain edges as
    flow event pairs ("s" on the owner's track at its matching MwCAS
    attempt, "f" on the helper's track) so a contended run shows who
    helped whose descriptor. Load the output at https://ui.perfetto.dev
    or chrome://tracing. *)

val to_chrome : ?run_id:string -> Recorder.snapshot -> Telemetry.Value.t
(** Timestamps are rebased to the earliest event and expressed in
    microseconds, as the trace-event format requires. *)

val write_file : ?run_id:string -> string -> Recorder.snapshot -> unit

val help_edge_count : Recorder.snapshot -> int
(** Help edges that will export as flow-event pairs (owner domain
    known). *)
