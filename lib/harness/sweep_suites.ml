module Mem = Nvram.Mem
module Flags = Nvram.Flags
module Pool = Pmwcas.Pool
module Op = Pmwcas.Op
module Recovery = Pmwcas.Recovery

let align8 a = (a + 7) / 8 * 8

(* A word that recovery has finished with must hold a plain payload:
   descriptor pointers surviving recovery are themselves violations. *)
let clean_word img a errs =
  let v = Mem.read img a in
  if Flags.is_rdcss v || Flags.is_mwcas v then begin
    errs :=
      Printf.sprintf "word %d still holds a descriptor pointer (%#x)" a v
      :: !errs;
    0
  end
  else Flags.clear_dirty v

let violations_of_report report =
  if Nvram.Checker.ok report then []
  else
    List.map
      (fun v -> Format.asprintf "%a" Nvram.Checker.pp_violation v)
      report.Nvram.Checker.violations

(* Build the traced/untraced device, hand it to [f] for setup, then arm
   the injector and run [work] absorbing the injected crash. *)
let run_workload ~traced ~fuel ~words ~setup ~work ~finish =
  let mem = Mem.create (Nvram.Config.make ~words ()) in
  let mem = if traced then Mem.traced mem else mem in
  let state = setup mem in
  let steps0 = Mem.steps mem in
  let crashed =
    try
      (match fuel with Some f -> Mem.inject_crash_after mem f | None -> ());
      work mem state;
      Mem.disarm mem;
      false
    with Mem.Crash -> true
  in
  finish mem state ~crashed ~sweep_steps:(Mem.steps mem - steps0)

(* {1 bank} — raw multi-word PMwCAS transfers between account words. *)

let bank ?(accounts = 12) ?(ops = 150) ?(seed = 42) () =
  let max_threads = 2 in
  let pool_words = Pool.region_words ~max_threads () in
  let acc_base = align8 pool_words in
  let words = align8 (acc_base + accounts) in
  let initial = 100 in
  let execute ~traced ~fuel =
    let model = Array.make accounts initial in
    let pending = ref None in
    let pool_ref = ref None in
    let setup mem =
      let pool = Pool.create mem ~base:0 ~max_threads in
      pool_ref := Some pool;
      let h = Pool.register pool in
      for i = 0 to accounts - 1 do
        Mem.write mem (acc_base + i) initial
      done;
      Mem.persist_all mem;
      h
    in
    let work _mem h =
      let rng = Random.State.make [| seed |] in
      for _ = 1 to ops do
        let i = Random.State.int rng accounts in
        let j = (i + 1 + Random.State.int rng (accounts - 1)) mod accounts in
        let vi = Op.read_with h (acc_base + i) in
        let vj = Op.read_with h (acc_base + j) in
        let amt = min (1 + Random.State.int rng 10) vi in
        if amt > 0 then begin
          pending := Some (i, j, amt);
          let d = Pool.alloc_desc h in
          Pool.add_word d ~addr:(acc_base + i) ~expected:vi
            ~desired:(vi - amt);
          Pool.add_word d ~addr:(acc_base + j) ~expected:vj
            ~desired:(vj + amt);
          if not (Op.execute d) then
            failwith "bank: single-domain PMwCAS failed";
          model.(i) <- model.(i) - amt;
          model.(j) <- model.(j) + amt;
          pending := None
        end
      done
    in
    let finish mem _h ~crashed ~sweep_steps =
      let candidates =
        let base = Array.copy model in
        match !pending with
        | None -> [ base ]
        | Some (i, j, amt) ->
            let applied = Array.copy base in
            applied.(i) <- applied.(i) - amt;
            applied.(j) <- applied.(j) + amt;
            [ base; applied ]
      in
      let verify img =
        let _pool, stats = Recovery.run img ~base:0 in
        let errs = ref [] in
        let got =
          Array.init accounts (fun k -> clean_word img (acc_base + k) errs)
        in
        if not (List.exists (fun c -> c = got) candidates) then
          errs :=
            Printf.sprintf
              "balances [%s] match neither the acked model nor acked+pending"
              (String.concat ";"
                 (Array.to_list (Array.map string_of_int got)))
            :: !errs;
        let sum = Array.fold_left ( + ) 0 got in
        if sum <> accounts * initial then
          errs :=
            Printf.sprintf "sum %d <> %d: money created or destroyed" sum
              (accounts * initial)
            :: !errs;
        (stats, List.rev !errs)
      in
      let check_trace =
        match !pool_ref with
        | Some pool when Mem.trace (Pool.mem pool) <> None ->
            Some (fun () -> violations_of_report (Trace_check.check pool))
        | _ -> None
      in
      Crash_sweep.{ mem; crashed; sweep_steps; verify; check_trace }
    in
    run_workload ~traced ~fuel ~words ~setup ~work ~finish
  in
  Crash_sweep.{ name = "bank"; execute }

(* {1 palloc_policies} — ReserveEntry ownership transfer in and out of
   pointer slots, exercising FreeNewOnFailure and FreeOldOnSuccess. *)

let palloc_policies ?(slots = 8) ?(ops = 120) ?(seed = 7) () =
  let max_threads = 2 in
  let pool_words = Pool.region_words ~max_threads () in
  let heap_base = align8 pool_words in
  let heap_words = 1 lsl 12 in
  let slots_base = align8 (heap_base + heap_words) in
  let words = align8 (slots_base + slots) in
  let execute ~traced ~fuel =
    let model = Array.make slots None in
    let pending = ref None in
    let pool_ref = ref None in
    let setup mem =
      let palloc =
        Palloc.create mem ~base:heap_base ~words:heap_words ~max_threads
      in
      let pool = Pool.create ~palloc mem ~base:0 ~max_threads in
      pool_ref := Some pool;
      let h = Pool.register pool in
      let ph = Palloc.register_thread palloc in
      Mem.persist_all mem;
      (h, ph)
    in
    let work mem (h, ph) =
      let rng = Random.State.make [| seed |] in
      for i = 1 to ops do
        let s = Random.State.int rng slots in
        let a = slots_base + s in
        let cur = Op.read_with h a in
        if cur = 0 then begin
          let stamp = 0x1000 + i in
          pending := Some (s, `Put stamp);
          let d = Pool.alloc_desc h in
          let dest =
            Pool.reserve_entry ~policy:Pmwcas.Layout.Free_new_on_failure d
              ~addr:a ~expected:0
          in
          let blk = Palloc.alloc ph ~nwords:4 ~dest in
          Mem.write mem blk stamp;
          Mem.clwb mem blk;
          if not (Op.execute d) then
            failwith "palloc_policies: single-domain put failed";
          model.(s) <- Some stamp
        end
        else begin
          pending := Some (s, `Clear);
          let d = Pool.alloc_desc h in
          Pool.add_word ~policy:Pmwcas.Layout.Free_old_on_success d ~addr:a
            ~expected:cur ~desired:0;
          if not (Op.execute d) then
            failwith "palloc_policies: single-domain clear failed";
          model.(s) <- None
        end;
        pending := None
      done
    in
    let finish mem _state ~crashed ~sweep_steps =
      let candidates =
        let base = Array.copy model in
        match !pending with
        | None -> [ base ]
        | Some (s, op) ->
            let applied = Array.copy base in
            (applied.(s) <-
               (match op with `Put stamp -> Some stamp | `Clear -> None));
            [ base; applied ]
      in
      let verify img =
        let palloc, _rolled_back =
          Palloc.recover img ~base:heap_base ~words:heap_words ~max_threads
        in
        let _pool, stats = Recovery.run ~palloc img ~base:0 in
        let errs = ref [] in
        let got =
          Array.init slots (fun s -> clean_word img (slots_base + s) errs)
        in
        let matches cand =
          let ok = ref true in
          Array.iteri
            (fun s expect ->
              match (expect, got.(s)) with
              | None, 0 -> ()
              | Some stamp, p when p <> 0 ->
                  if Mem.read img p <> stamp then ok := false
              | _ -> ok := false)
            cand;
          !ok
        in
        (match List.find_opt matches candidates with
        | None ->
            errs :=
              "slot contents match neither the acked model nor acked+pending"
              :: !errs
        | Some cand ->
            let occupied =
              Array.fold_left
                (fun n -> function Some _ -> n + 1 | None -> n)
                0 cand
            in
            let audit = Palloc.audit palloc in
            if audit.Palloc.allocated_blocks <> occupied then
              errs :=
                Printf.sprintf "heap leak: %d blocks allocated, %d slots \
                                occupied"
                  audit.Palloc.allocated_blocks occupied
                :: !errs;
            if audit.Palloc.in_flight <> 0 then
              errs :=
                Printf.sprintf "%d activation records still in flight"
                  audit.Palloc.in_flight
                :: !errs);
        (stats, List.rev !errs)
      in
      let check_trace =
        match !pool_ref with
        | Some pool when Mem.trace (Pool.mem pool) <> None ->
            Some (fun () -> violations_of_report (Trace_check.check pool))
        | _ -> None
      in
      Crash_sweep.{ mem; crashed; sweep_steps; verify; check_trace }
    in
    run_workload ~traced ~fuel ~words ~setup ~work ~finish
  in
  Crash_sweep.{ name = "palloc"; execute }

(* {1 skiplist} — the doubly-linked PMwCAS skip list under a mixed
   insert/delete/update workload. *)

let skiplist ?(keys = 48) ?(ops = 140) ?(seed = 3) () =
  let module Pm = Skiplist.Pm in
  let max_threads = 2 in
  let pool_words = Pool.region_words ~max_threads () in
  let heap_base = align8 pool_words in
  let heap_words = 1 lsl 14 in
  let anchor = align8 (heap_base + heap_words) in
  let words = align8 (anchor + Pm.anchor_words) in
  let execute ~traced ~fuel =
    let model = Hashtbl.create 64 in
    let pending = ref None in
    let pool_ref = ref None in
    let setup mem =
      let palloc =
        Palloc.create mem ~base:heap_base ~words:heap_words ~max_threads
      in
      let pool = Pool.create ~palloc mem ~base:0 ~max_threads in
      pool_ref := Some pool;
      let t = Pm.create ~pool ~palloc ~anchor () in
      Pm.register ~seed:(seed + 1) t
    in
    let work _mem h =
      let rng = Random.State.make [| seed |] in
      for i = 1 to ops do
        let k = 1 + Random.State.int rng keys in
        match Random.State.int rng 3 with
        | 0 ->
            let v = (k * 100) + i in
            pending := Some (`Insert (k, v));
            if Pm.insert h ~key:k ~value:v then Hashtbl.replace model k v;
            pending := None
        | 1 ->
            pending := Some (`Delete k);
            if Pm.delete h ~key:k then Hashtbl.remove model k;
            pending := None
        | _ ->
            let v = (k * 100) + i in
            pending := Some (`Update (k, v));
            if Pm.update h ~key:k ~value:v then Hashtbl.replace model k v;
            pending := None
      done
    in
    let finish mem _h ~crashed ~sweep_steps =
      let bindings tbl =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
        |> List.sort compare
      in
      let candidates =
        let base = Hashtbl.copy model in
        match !pending with
        | None -> [ bindings base ]
        | Some op ->
            let applied = Hashtbl.copy base in
            (match op with
            | `Insert (k, v) ->
                if not (Hashtbl.mem applied k) then Hashtbl.replace applied k v
            | `Delete k -> Hashtbl.remove applied k
            | `Update (k, v) ->
                if Hashtbl.mem applied k then Hashtbl.replace applied k v);
            [ bindings base; bindings applied ]
      in
      let verify img =
        let palloc, _ =
          Palloc.recover img ~base:heap_base ~words:heap_words ~max_threads
        in
        let pool, stats = Recovery.run ~palloc img ~base:0 in
        let t = Pm.attach ~pool ~palloc ~anchor in
        let h = Pm.register ~seed:99 t in
        let errs = ref [] in
        (try Pm.check_invariants h
         with Failure m -> errs := ("invariants: " ^ m) :: !errs);
        let recovered =
          Pm.fold_range h ~lo:0 ~hi:(keys * 200) ~init:[]
            ~f:(fun acc ~key ~value -> (key, value) :: acc)
          |> List.rev
        in
        if not (List.exists (fun c -> c = recovered) candidates) then
          errs :=
            Printf.sprintf
              "recovered contents (%d keys) match neither the acked model \
               nor acked+pending"
              (List.length recovered)
            :: !errs;
        let audit = Palloc.audit palloc in
        (* Every allocated block is a reachable node or one of the two
           sentinels — nothing leaked, nothing freed twice. *)
        if audit.Palloc.allocated_blocks <> List.length recovered + 2 then
          errs :=
            Printf.sprintf "heap leak: %d blocks for %d nodes + 2 sentinels"
              audit.Palloc.allocated_blocks (List.length recovered)
            :: !errs;
        (stats, List.rev !errs)
      in
      let check_trace =
        match !pool_ref with
        | Some pool when Mem.trace (Pool.mem pool) <> None ->
            Some (fun () -> violations_of_report (Trace_check.check pool))
        | _ -> None
      in
      Crash_sweep.{ mem; crashed; sweep_steps; verify; check_trace }
    in
    run_workload ~traced ~fuel ~words ~setup ~work ~finish
  in
  Crash_sweep.{ name = "skiplist"; execute }

(* {1 bwtree} — put/remove with thresholds low enough that
   consolidation, splits and merges all fire inside a small run. *)

let bwtree ?(keys = 40) ?(ops = 120) ?(seed = 5) () =
  let module Tree = Bwtree.Tree in
  let module Node = Bwtree.Node in
  let max_threads = 2 in
  let pool_words = Pool.region_words ~max_threads () in
  let heap_base = align8 pool_words in
  let heap_words = 1 lsl 15 in
  let anchor = align8 (heap_base + heap_words) in
  let map_base = align8 (anchor + Tree.anchor_words) in
  let map_words = 128 in
  let words = align8 (map_base + map_words) in
  let config = Tree.{ consolidate_len = 4; split_max = 8; merge_min = 1 } in
  let execute ~traced ~fuel =
    let model = Hashtbl.create 64 in
    let pending = ref None in
    let pool_ref = ref None in
    let setup mem =
      let palloc =
        Palloc.create mem ~base:heap_base ~words:heap_words ~max_threads
      in
      let pool = Pool.create ~palloc mem ~base:0 ~max_threads in
      pool_ref := Some pool;
      let t =
        Tree.create ~config ~pool ~palloc ~anchor ~map_base ~map_words ()
      in
      Tree.register t
    in
    let work _mem h =
      let rng = Random.State.make [| seed |] in
      for i = 1 to ops do
        let k = 1 + Random.State.int rng keys in
        if Random.State.int rng 3 = 0 then begin
          pending := Some (`Remove k);
          if Tree.remove h ~key:k then Hashtbl.remove model k;
          pending := None
        end
        else begin
          let v = (k * 100) + i in
          pending := Some (`Put (k, v));
          ignore (Tree.put h ~key:k ~value:v);
          Hashtbl.replace model k v;
          pending := None
        end
      done
    in
    let finish mem _h ~crashed ~sweep_steps =
      let bindings tbl =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
        |> List.sort compare
      in
      let candidates =
        let base = Hashtbl.copy model in
        match !pending with
        | None -> [ bindings base ]
        | Some op ->
            let applied = Hashtbl.copy base in
            (match op with
            | `Put (k, v) -> Hashtbl.replace applied k v
            | `Remove k -> Hashtbl.remove applied k);
            [ bindings base; bindings applied ]
      in
      let verify img =
        let palloc, _ =
          Palloc.recover img ~base:heap_base ~words:heap_words ~max_threads
        in
        let pool, stats =
          Recovery.run ~palloc
            ~callbacks:[ Tree.recovery_callback img ]
            img ~base:0
        in
        let t = Tree.attach ~pool ~palloc ~anchor in
        let h = Tree.register t in
        let errs = ref [] in
        (try Tree.check_invariants h
         with Failure m -> errs := ("invariants: " ^ m) :: !errs);
        let recovered =
          Tree.fold_range h ~lo:0 ~hi:(keys * 200) ~init:[]
            ~f:(fun acc ~key ~value -> (key, value) :: acc)
          |> List.rev
        in
        if not (List.exists (fun c -> c = recovered) candidates) then
          errs :=
            Printf.sprintf
              "recovered contents (%d keys) match neither the acked model \
               nor acked+pending"
              (List.length recovered)
            :: !errs;
        (* Every heap block is reachable from the mapping table. *)
        let reachable = ref 0 in
        for lpid = 1 to map_words - 1 do
          let v = Flags.payload (Mem.read img (map_base + lpid)) in
          if v <> 0 then
            reachable := !reachable + List.length (Node.chain_blocks img v)
        done;
        let audit = Palloc.audit palloc in
        if audit.Palloc.allocated_blocks <> !reachable then
          errs :=
            Printf.sprintf "heap leak: %d blocks allocated, %d reachable"
              audit.Palloc.allocated_blocks !reachable
            :: !errs;
        (stats, List.rev !errs)
      in
      let check_trace =
        match !pool_ref with
        | Some pool when Mem.trace (Pool.mem pool) <> None ->
            Some (fun () -> violations_of_report (Trace_check.check pool))
        | _ -> None
      in
      Crash_sweep.{ mem; crashed; sweep_steps; verify; check_trace }
    in
    run_workload ~traced ~fuel ~words ~setup ~work ~finish
  in
  Crash_sweep.{ name = "bwtree"; execute }

let all () =
  [ bank (); palloc_policies (); skiplist (); bwtree () ]

let find name =
  List.find_opt (fun s -> s.Crash_sweep.name = name) (all ())
