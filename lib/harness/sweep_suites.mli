(** Canonical workload suites for {!Crash_sweep}.

    Each suite is a seeded, single-domain workload with a shadow model:
    it tracks every acknowledged operation plus the single operation in
    flight, so the sweep can check the {e durable prefix} — the
    recovered structure must equal the model of the acknowledged
    operations, or that model with the in-flight operation also applied,
    and nothing else.

    - [bank] — raw 2-word PMwCAS transfers between account words; the
      recovered balances must match a prefix and conserve their sum.
    - [palloc_policies] — reservation-based allocation into pointer
      slots ([FreeNewOnFailure]) and clears ([FreeOldOnSuccess]); the
      recovered heap must have exactly one block per occupied slot and
      no in-flight activations.
    - [skiplist] — insert/delete/update on the doubly-linked PMwCAS
      skip list, with [check_invariants] and an exact leak check.
    - [bwtree] — put/remove on the Bw-tree with aggressive
      consolidation/split/merge thresholds, with [check_invariants] and
      a reachable-blocks-vs-heap audit. *)

val bank : ?accounts:int -> ?ops:int -> ?seed:int -> unit -> Crash_sweep.spec
val palloc_policies : ?slots:int -> ?ops:int -> ?seed:int -> unit -> Crash_sweep.spec
val skiplist : ?keys:int -> ?ops:int -> ?seed:int -> unit -> Crash_sweep.spec
val bwtree : ?keys:int -> ?ops:int -> ?seed:int -> unit -> Crash_sweep.spec

val all : unit -> Crash_sweep.spec list
(** The four suites at their default sizes. *)

val find : string -> Crash_sweep.spec option
(** Look up a default-sized suite by name. *)
