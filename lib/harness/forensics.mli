(** Crash forensics: descriptor-pool scanning and failure artifacts.

    When a crash-sweep point or a DST seed fails, a summary line alone
    ("books do not balance at fuel 1742") leaves the interesting state —
    which descriptors were mid-flight, which cache lines were pending,
    what the domains were doing — to be re-derived by hand. This module
    packages all of it into one JSON artifact per failure:

    - the flight-recorder snapshot (merged event timeline plus the
      per-domain "last N events" postmortem text),
    - the device's pending-line set ({!Nvram.Mem.pending_lines} — lines
      clwb'd but not yet drained, i.e. at risk at the crash),
    - every descriptor pool found on the device with its in-flight
      (non-[Free]) slots and their word descriptors.

    Artifacts land in [_artifacts/] (gitignored) named
    [<run-id>-<suite>-<label>.json] so outputs of one invocation are
    joinable with its metrics files. *)

type desc_state = {
  index : int;  (** Slot index within its pool. *)
  slot : int;  (** Status-word address. *)
  status : int;  (** Raw status word (dirty bit preserved). *)
  count : int;  (** Word-descriptor count as stored. *)
  words : (int * int * int * int) list;
      (** [(addr, old, new, policy)] per word descriptor, clamped to the
          pool's [max_words]. *)
}

type pool_report = {
  base : int;
  nslots : int;
  max_words : int;
  max_threads : int;
  in_flight : desc_state list;  (** Slots whose status is not [Free]. *)
}

val status_name : int -> string
(** Decode a raw status word; a trailing [*] marks the dirty bit
    (status update not yet durable). *)

val scan_pools : Nvram.Mem.t -> pool_report list
(** Walk the device for {!Pmwcas.Pool.magic} at line-aligned addresses,
    validate each candidate header with the same checks
    [Pool.attach] applies, and report every pool's in-flight slots.
    Safe on a quiesced (crashed) device or image. *)

val default_dir : string
(** ["_artifacts"]. *)

val write_artifact :
  ?dir:string ->
  ?mem:Nvram.Mem.t ->
  ?tail:int ->
  suite:string ->
  label:string ->
  extra:(string * Telemetry.Value.t) list ->
  Flight.snapshot ->
  string
(** Write one failure artifact and return its path. [extra] fields are
    spliced into the document (repro coordinates, failure reason,
    schedule tokens...). [mem], when given, contributes the
    pending-line set and the pool scan. [tail] (default 50) bounds the
    embedded postmortem. Creates [dir] (default {!default_dir}) as
    needed. *)
