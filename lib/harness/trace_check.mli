(** Bridge from a live descriptor pool to the offline persistence-order
    checker: derives the [Nvram.Checker.protocol] geometry (status-word
    addresses, entry field layout, descriptor-pointer encoding) from the
    pool's [Layout], so tests and the CLI can replay a traced run without
    duplicating slot arithmetic. *)

val protocol : Pmwcas.Pool.t -> Nvram.Checker.protocol
(** Checker geometry for [pool]'s memory device and descriptor layout. *)

val check : Pmwcas.Pool.t -> Nvram.Checker.report
(** Drain the trace from the pool's memory device and replay it through
    [Nvram.Checker.run].
    @raise Invalid_argument if the device is not traced. *)
