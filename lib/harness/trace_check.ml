module Mem = Nvram.Mem
module Checker = Nvram.Checker
module Layout = Pmwcas.Layout
module Pool = Pmwcas.Pool

let protocol pool =
  let mem = Pool.mem pool in
  let l = Pool.layout pool in
  let slots_end = l.slots_base + (l.nslots * l.slot_words) in
  {
    Checker.words = Mem.size mem;
    line_words = (Mem.config mem).line_words;
    max_words = l.max_words;
    async_flush = (Mem.config mem).flush_mode = Nvram.Config.Async;
    flit = Nvram.Flit.enabled ();
    strategy = (Mem.config mem).strategy;
    is_status_addr =
      (fun a ->
        a >= l.slots_base && a < slots_end
        && (a - l.slots_base) mod l.slot_words = 0);
    is_desc_addr = (fun a -> a >= l.pool_base && a < slots_end);
    slot_of_status = Fun.id;
    count_addr = Layout.count_addr;
    entry_fields =
      (fun slot k ->
        let e = Layout.entry_addr l slot k in
        (Layout.addr_field e, Layout.old_field e, Layout.new_field e));
    desc_ptr = Layout.desc_ptr;
    status_undecided = Layout.status_undecided;
    status_succeeded = Layout.status_succeeded;
    status_failed = Layout.status_failed;
    status_free = Layout.status_free;
  }

let check pool =
  match Mem.trace (Pool.mem pool) with
  | None ->
      invalid_arg
        "Harness.Trace_check.check: pool's memory is not a traced device \
         (build it over [Mem.traced])"
  | Some tr -> Checker.run (protocol pool) (Nvram.Trace.events tr)
