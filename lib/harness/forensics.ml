module Mem = Nvram.Mem
module Layout = Pmwcas.Layout
module V = Telemetry.Value

type desc_state = {
  index : int;
  slot : int;
  status : int;
  count : int;
  words : (int * int * int * int) list;
}

type pool_report = {
  base : int;
  nslots : int;
  max_words : int;
  max_threads : int;
  in_flight : desc_state list;
}

let status_name s =
  let dirty = s land Nvram.Flags.dirty <> 0 in
  let base = s land lnot Nvram.Flags.dirty in
  let n =
    if base = Layout.status_free then "Free"
    else if base = Layout.status_undecided then "Undecided"
    else if base = Layout.status_succeeded then "Succeeded"
    else if base = Layout.status_failed then "Failed"
    else Printf.sprintf "Invalid(%d)" base
  in
  if dirty then n ^ "*" else n

(* Header sanity mirrors [Pool.attach]'s checks: a magic word whose
   neighbours fail them is a coincidental bit pattern, not a pool. *)
let header_ok mem ~base ~nslots ~max_words ~max_threads =
  nslots > 0 && max_threads > 0
  && nslots mod max_threads = 0
  && max_words > 0
  && max_words <= Layout.max_words_limit
  &&
  match
    Layout.make ~line_words:(Mem.config mem).line_words ~pool_base:base
      ~nslots ~max_words
  with
  | lay -> base + Layout.region_words lay <= Mem.size mem
  | exception Invalid_argument _ -> false

let scan_slot mem lay i =
  let slot = Layout.slot_off lay i in
  let status = Mem.read mem (Layout.status_addr slot) in
  if status land lnot Nvram.Flags.dirty = Layout.status_free then None
  else
    let count = Mem.read mem (Layout.count_addr slot) in
    let n = max 0 (min count lay.Layout.max_words) in
    let words =
      List.init n (fun k ->
          let e = Layout.entry_addr lay slot k in
          ( Mem.read mem (Layout.addr_field e),
            Mem.read mem (Layout.old_field e),
            Mem.read mem (Layout.new_field e),
            Mem.read mem (Layout.policy_field e) ))
    in
    Some { index = i; slot; status; count; words }

let scan_pools mem =
  let line_words = (Mem.config mem).line_words in
  let size = Mem.size mem in
  let out = ref [] in
  let a = ref 0 in
  while !a + Layout.header_words <= size do
    if
      !a mod line_words = 0
      && Mem.read mem !a = Pmwcas.Pool.magic
      &&
      let nslots = Mem.read mem (!a + 1)
      and max_words = Mem.read mem (!a + 2)
      and max_threads = Mem.read mem (!a + 3) in
      header_ok mem ~base:!a ~nslots ~max_words ~max_threads
    then begin
      let nslots = Mem.read mem (!a + 1)
      and max_words = Mem.read mem (!a + 2)
      and max_threads = Mem.read mem (!a + 3) in
      let lay =
        Layout.make ~line_words ~pool_base:!a ~nslots ~max_words
      in
      let in_flight =
        List.filter_map (scan_slot mem lay) (List.init nslots Fun.id)
      in
      out := { base = !a; nslots; max_words; max_threads; in_flight } :: !out;
      a := !a + Layout.region_words lay
    end
    else incr a
  done;
  List.rev !out

let desc_to_json (d : desc_state) =
  V.Obj
    [
      ("index", V.Int d.index);
      ("slot", V.Int d.slot);
      ("status", V.String (status_name d.status));
      ("status_raw", V.Int d.status);
      ("count", V.Int d.count);
      ( "words",
        V.List
          (List.map
             (fun (a, o, n, p) ->
               V.Obj
                 [
                   ("addr", V.Int a); ("old", V.Int o); ("new", V.Int n);
                   ("policy", V.Int p);
                 ])
             d.words) );
    ]

let pool_to_json (p : pool_report) =
  V.Obj
    [
      ("base", V.Int p.base);
      ("nslots", V.Int p.nslots);
      ("max_words", V.Int p.max_words);
      ("max_threads", V.Int p.max_threads);
      ("in_flight", V.List (List.map desc_to_json p.in_flight));
    ]

let event_to_json (e : Flight.event) =
  V.List
    [
      V.Int e.dom; V.Int e.seq; V.Int e.t_ns;
      V.String (Flight.kind_name e.kind); V.Int e.a; V.Int e.b; V.Int e.c;
    ]

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    s

let default_dir = "_artifacts"

let write_artifact ?(dir = default_dir) ?mem ?(tail = 50) ~suite ~label
    ~extra snapshot =
  mkdir_p dir;
  let path =
    Filename.concat dir
      (Printf.sprintf "%s-%s-%s.json"
         (sanitize (Flight.run_id ()))
         (sanitize suite) (sanitize label))
  in
  let device_fields =
    match mem with
    | None -> []
    | Some mem ->
        [
          ( "pending_lines",
            V.List (List.map (fun l -> V.Int l) (Mem.pending_lines mem)) );
          ("pools", V.List (List.map pool_to_json (scan_pools mem)));
        ]
  in
  let doc =
    V.Obj
      ([
         ("run_id", V.String (Flight.run_id ()));
         ("suite", V.String suite);
         ("label", V.String label);
         ("taken_ns", V.Int snapshot.Flight.taken_ns);
       ]
      @ extra @ device_fields
      @ [
          ("postmortem", V.String (Flight.postmortem ~tail snapshot));
          ( "events",
            V.List (List.map event_to_json (Flight.merged snapshot)) );
        ])
  in
  let oc = open_out path in
  output_string oc (V.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  path
