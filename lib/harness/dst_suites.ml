module Scenarios = Dst.Scenarios
module Sched = Dst.Sched

(* A DST scenario run under a fixed seeded schedule is exactly the
   deterministic single-run shape Crash_sweep.spec wants; the
   scenario's verify_image closure carries the recorded history, so
   every crash image is judged by durable linearizability instead of a
   hand-maintained shadow model. *)
let spec_of_scenario ~name ~seed (scenario : Scenarios.t) =
  let execute ~traced:_ ~fuel =
    let r =
      scenario.Scenarios.run
        ~pick:(Sched.pick_of_strategy (Sched.Random seed))
        ~fuel ~crash:None
    in
    (match r.Scenarios.verdict with
    | Dst.Linearize.Linearizable -> ()
    | v ->
        (* A verdict failure on the live run (completed mode) is a
           finding regardless of crash images. *)
        failwith (Format.asprintf "live run: %a" Dst.Linearize.pp_verdict v));
    Crash_sweep.
      {
        mem = r.Scenarios.mem;
        crashed = r.Scenarios.crashed;
        sweep_steps = r.Scenarios.sweep_steps;
        verify = r.Scenarios.verify_image;
        check_trace = None;
      }
  in
  Crash_sweep.{ name; execute }

let dst_pmwcas ?(seed = 11) () =
  spec_of_scenario ~name:"dst-pmwcas" ~seed
    (Scenarios.pmwcas ~threads:2 ~ops:3 ~width:2 ~addrs:5 ())

let dst_skiplist ?(seed = 12) () =
  spec_of_scenario ~name:"dst-skiplist" ~seed
    (Scenarios.skiplist ~threads:2 ~ops:5 ~keys:5 ())

let dst_store ?(seed = 13) () =
  spec_of_scenario ~name:"dst-store" ~seed
    (Scenarios.store ~threads:2 ~ops:4 ~keys:5 ~shards:2 ())

let all () = [ dst_pmwcas (); dst_skiplist (); dst_store () ]

let find name =
  List.find_opt (fun s -> s.Crash_sweep.name = name) (all ())
