(** Exhaustive crash-point sweep harness.

    The fault injector ({!Nvram.Mem.inject_crash_after}) crashes a
    workload after an exact number of mutating memory operations, and the
    step counter ({!Nvram.Mem.steps}) reports how many such operations a
    workload performs — so instead of probing a handful of hand-picked
    fuel values, a suite can be swept {e self-calibratingly} across every
    store boundary it ever crosses:

    + run the workload once, uninjected, and read the step total;
    + for every fuel value below the total (or a stratified sample when
      the total exceeds the budget), run the workload to [Mem.Crash];
    + classify the crash point by protocol phase (the per-domain phase
      register in {!Nvram.Stats} is frozen by the injected exception);
    + extract deterministic crash images — one with no eviction, one per
      eviction seed — and push each through allocator recovery,
      [Recovery.run] and re-attach;
    + check that (a) the recovery stats are sane, (b) the structure's own
      invariants hold, and (c) the {e durable prefix} is exact: every
      acknowledged operation is present and nothing else is, except
      possibly the single operation in flight at the crash.

    A failing point is shrunk to a minimal [(fuel, evict seed)] pair so
    the repro can be pasted into a unit test. Suites live in
    {!Sweep_suites}; the [crash-sweep] CLI subcommand drives them. *)

type run = {
  mem : Nvram.Mem.t;
      (** The device the workload ran on (still armed if it crashed). *)
  crashed : bool;  (** Whether [Mem.Crash] was raised. *)
  sweep_steps : int;
      (** Mutating operations performed after the injector's arm point —
          the sweepable range. Meaningful only for uncrashed runs. *)
  verify : Nvram.Mem.t -> Pmwcas.Recovery.stats * string list;
      (** Recover the given crash image and check it; returns the
          recovery stats plus a list of violations (empty = clean).
          Exceptions are treated as violations by the driver. *)
  check_trace : (unit -> string list) option;
      (** When the run was traced: drain the event log through
          {!Nvram.Checker} and report violations. *)
}

type spec = {
  name : string;
  execute : traced:bool -> fuel:int option -> run;
      (** Build a fresh device, arm the injector with [fuel] {e after}
          setup, run the seeded single-domain workload (absorbing
          [Mem.Crash]), and return the run. Must be deterministic: equal
          [fuel] must crash at the identical point. *)
}

type failure = {
  fuel : int;
  evict_seed : int option;  (** [None] — the no-eviction image. *)
  phase : Nvram.Stats.phase;  (** Protocol phase at the crash point. *)
  reason : string;
  shrunk : (int * int option) option;
      (** Minimal [(fuel, evict_seed)] still reproducing the failure. *)
  mutable artifact : string option;
      (** Forensic artifact path, once {!capture_forensics} ran. *)
}

type summary = {
  suite : string;
  total_steps : int;  (** Calibrated sweepable step count. *)
  points : int;  (** Distinct fuel values swept. *)
  crashes : int;  (** Points at which the injector actually fired. *)
  images : int;  (** Crash images recovered and checked. *)
  rolled_forward : int;  (** Summed over all recoveries. *)
  rolled_back : int;
  by_phase : (Nvram.Stats.phase * int) list;
      (** Crash points per protocol phase (phases with zero hits
          omitted). *)
  failures : failure list;
  seconds : float;
}

val sweep :
  ?budget:int ->
  ?evict_prob:float ->
  ?evict_seeds:int list ->
  ?trace:bool ->
  ?sample_seed:int ->
  ?domains:int ->
  ?max_shrunk:int ->
  ?progress:(done_:int -> total:int -> unit) ->
  spec ->
  summary
(** Calibrate, then sweep. [budget] (default 512) caps the number of
    distinct fuel points; totals beyond it are sampled one point per
    equal-width stratum, seeded by [sample_seed]. Each point is checked
    on a no-eviction image plus one image per seed in [evict_seeds]
    (default [[1; 2]]) at [evict_prob] (default [0.25]). [trace] wraps
    every run in {!Nvram.Mem.traced} and replays the log through the
    ordering checker (slow; off by default). [domains] (default 1) farms
    points across that many worker domains — each worker executes its
    points end to end, so the per-domain phase register stays coherent.
    The first [max_shrunk] (default 3) failures are shrunk to minimal
    repros. [progress] is called from the coordinating domain.

    @raise Failure if the uninjected calibration run crashes or its
    no-eviction image fails verification. *)

val replay : spec -> fuel:int -> ?evict_prob:float -> ?evict_seed:int
  -> unit -> string list
(** Re-run a single [(fuel, evict_seed)] point — the repro a shrunken
    failure names — and return its violations. *)

val register_knob :
  name:string -> get:(unit -> bool) -> set:(bool -> unit) -> unit
(** Register a sabotage knob under [name]. Registered knobs are parked
    off for every calibration run (and restored afterwards), so a
    self-test wrapper armed around {!sweep} never poisons the baseline.
    The builtins are ["precommit"], ["drain"], ["flit"], ["nodirty"]
    and ["fewfence"].
    @raise Invalid_argument on a duplicate name. *)

val knob_names : unit -> string list
(** Names of every registered knob, in registration order. *)

val with_knob : string -> bool -> (unit -> 'a) -> 'a
(** [with_knob name on f] runs [f] with knob [name] set to [on],
    restoring its previous value afterwards.
    @raise Invalid_argument on an unknown name. *)

val with_sabotaged_precommit : (unit -> 'a) -> 'a
(** Run [f] with {!Pmwcas.Op.set_sabotage_skip_precommit_flush} enabled,
    restoring it afterwards — the sweeper self-test: a sweep under this
    wrapper must report failures, or the harness is vacuous. *)

val with_sabotaged_drain : (unit -> 'a) -> 'a
(** Run [f] with {!Nvram.Mem.set_sabotage_skip_drain} enabled, restoring
    it afterwards — the async-pipeline self-test: fences stop draining
    pending lines, so nothing clwb'd ever becomes durable and even the
    uncrashed calibration image must fail verification. A sweep under
    this wrapper must fail, or the fences are not load-bearing. *)

val with_sabotaged_flit : (unit -> 'a) -> 'a
(** Run [f] with {!Nvram.Flit.set_sabotage_skip_destination} enabled,
    restoring it afterwards — the destination-only-persistence
    self-test ([--broken-flit]): destination passes skip the
    write-backs they decided were needed, so fresh node bodies only
    reach NVM through the eviction lottery and a sweep (often the
    calibration itself) must fail. If it does not, the destination
    passes are not load-bearing. *)

val with_sabotaged_nodirty : (unit -> 'a) -> 'a
(** Run [f] with {!Nvram.Strategy.set_sabotage_skip_nodirty_flush}
    enabled, restoring it afterwards — the [`NoDirty]-strategy
    self-test ([--broken-nodirty]): writers skip the unconditional
    flushes that replace the dirty-bit machinery, so neither phase-1
    pointers nor decided statuses ever durably reach NVM and every
    persistent suite (run under [`NoDirty]) must fail. *)

val with_sabotaged_fewfence : (unit -> 'a) -> 'a
(** Run [f] with {!Nvram.Strategy.set_sabotage_skip_commit_fence}
    enabled, restoring it afterwards — the [`FewFence]-strategy
    self-test ([--broken-fewfence]): the relocated commit fence is
    dropped, so an acknowledged operation's status and finals stay
    pending until some unrelated fence drains them, and a sweep under
    [`FewFence] must catch the window. *)

val capture_forensics :
  ?dir:string -> ?tail:int -> spec -> failure -> string * string
(** Re-execute a failure at its shrunk (or original) repro point with
    the flight recorder fully open, write a {!Forensics} artifact —
    event timeline, postmortem, pending-line set, in-flight descriptor
    states — into [dir] (default [_artifacts]), stamp the failure's
    [artifact] field, and return [(path, postmortem)]. The recorder's
    previous enable/sampling state is restored. *)

val ok : summary -> bool
val pp_failure : Format.formatter -> failure -> unit
val pp_summary : Format.formatter -> summary -> unit

val summary_to_json : summary -> Telemetry.Value.t
(** Stable export shape: every [pp_summary] field plus the full failure
    list, for [--metrics] output of the sweep CLI. *)
