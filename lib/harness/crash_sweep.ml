module Mem = Nvram.Mem
module Stats = Nvram.Stats

type run = {
  mem : Mem.t;
  crashed : bool;
  sweep_steps : int;
  verify : Mem.t -> Pmwcas.Recovery.stats * string list;
  check_trace : (unit -> string list) option;
}

type spec = {
  name : string;
  execute : traced:bool -> fuel:int option -> run;
}

type failure = {
  fuel : int;
  evict_seed : int option;
  phase : Stats.phase;
  reason : string;
  shrunk : (int * int option) option;
  mutable artifact : string option;
}

type summary = {
  suite : string;
  total_steps : int;
  points : int;
  crashes : int;
  images : int;
  rolled_forward : int;
  rolled_back : int;
  by_phase : (Stats.phase * int) list;
  failures : failure list;
  seconds : float;
}

(* Per-worker accumulator; merged after the domains join. *)
type acc = {
  mutable a_points : int;
  mutable a_crashes : int;
  mutable a_images : int;
  mutable a_fwd : int;
  mutable a_back : int;
  a_phases : int array;
  mutable a_failures : failure list;
}

let new_acc () =
  {
    a_points = 0;
    a_crashes = 0;
    a_images = 0;
    a_fwd = 0;
    a_back = 0;
    a_phases = Array.make (List.length Stats.all_phases) 0;
    a_failures = [];
  }

let merge_acc a b =
  a.a_points <- a.a_points + b.a_points;
  a.a_crashes <- a.a_crashes + b.a_crashes;
  a.a_images <- a.a_images + b.a_images;
  a.a_fwd <- a.a_fwd + b.a_fwd;
  a.a_back <- a.a_back + b.a_back;
  Array.iteri (fun i n -> a.a_phases.(i) <- a.a_phases.(i) + n) b.a_phases;
  a.a_failures <- a.a_failures @ b.a_failures

(* Sabotage-knob registry. Every protocol sabotage switch the sweep
   self-tests can arm is registered here by name, so [calibrate] can
   park them all off for the baseline run (and restore them afterwards)
   without enumerating each one — a knob added for a new protocol
   variant is parked automatically. *)
type knob = { knob_name : string; get : unit -> bool; set : bool -> unit }

let knobs : knob list ref = ref []

let register_knob ~name ~get ~set =
  if List.exists (fun k -> k.knob_name = name) !knobs then
    invalid_arg ("Crash_sweep.register_knob: duplicate knob " ^ name);
  knobs := !knobs @ [ { knob_name = name; get; set } ]

let knob_names () = List.map (fun k -> k.knob_name) !knobs

let with_knob name on f =
  match List.find_opt (fun k -> k.knob_name = name) !knobs with
  | None -> invalid_arg ("Crash_sweep.with_knob: unknown knob " ^ name)
  | Some k ->
      let saved = k.get () in
      k.set on;
      Fun.protect ~finally:(fun () -> k.set saved) f

let () =
  register_knob ~name:"precommit"
    ~get:Pmwcas.Op.sabotaging_skip_precommit_flush
    ~set:Pmwcas.Op.set_sabotage_skip_precommit_flush;
  register_knob ~name:"drain" ~get:Mem.sabotaging_skip_drain
    ~set:Mem.set_sabotage_skip_drain;
  register_knob ~name:"flit" ~get:Nvram.Flit.sabotage_skip_destination
    ~set:Nvram.Flit.set_sabotage_skip_destination;
  register_knob ~name:"nodirty"
    ~get:Nvram.Strategy.sabotage_skip_nodirty_flush
    ~set:Nvram.Strategy.set_sabotage_skip_nodirty_flush;
  register_knob ~name:"fewfence"
    ~get:Nvram.Strategy.sabotage_skip_commit_fence
    ~set:Nvram.Strategy.set_sabotage_skip_commit_fence

let with_sabotaged_precommit f = with_knob "precommit" true f
let with_sabotaged_drain f = with_knob "drain" true f
let with_sabotaged_flit f = with_knob "flit" true f
let with_sabotaged_nodirty f = with_knob "nodirty" true f
let with_sabotaged_fewfence f = with_knob "fewfence" true f

(* Run once with no injection to learn the sweepable step count, and
   insist the baseline image recovers clean — a suite whose own verify
   rejects an uncrashed run would report nonsense failures. Every
   registered sabotage knob is parked off for this run: calibration
   validates the SUITE, and with destination-only persistence a
   sabotaged protocol can leave even a completed workload non-durable —
   flagging that is the crash points' job, not the baseline's. *)
let calibrate spec =
  let saved = List.map (fun k -> (k, k.get ())) !knobs in
  List.iter (fun k -> k.set false) !knobs;
  Fun.protect
    ~finally:(fun () -> List.iter (fun (k, v) -> k.set v) saved)
    (fun () ->
      let r = spec.execute ~traced:false ~fuel:None in
      if r.crashed then
        failwith (spec.name ^ ": calibration run crashed without injection");
      (match r.verify (Mem.crash_image r.mem) with
      | _, [] -> ()
      | _, e :: _ ->
          failwith (spec.name ^ ": baseline image failed verify: " ^ e)
      | exception e ->
          failwith
            (spec.name ^ ": baseline verify raised: " ^ Printexc.to_string e));
      r.sweep_steps)

(* Fuel points: exhaustive below the budget, else one deterministic
   sample per equal-width stratum so every region of the run stays
   covered. *)
let fuel_points ~total ~budget ~sample_seed =
  if total <= budget then List.init total Fun.id
  else begin
    let rng = Random.State.make [| sample_seed; total; budget |] in
    List.init budget (fun i ->
        let lo = i * total / budget and hi = (i + 1) * total / budget in
        lo + Random.State.int rng (max 1 (hi - lo)))
  end

let image ~evict_prob run = function
  | None -> Mem.crash_image run.mem
  | Some s -> Mem.crash_image ~evict_prob ~seed:s run.mem

(* Violations of one crash image: the suite's own checks plus recovery
   bookkeeping sanity. Any exception out of verify is itself a finding —
   recovery must never die on a crash image. *)
let check_image ~evict_prob run acc seed =
  acc.a_images <- acc.a_images + 1;
  match run.verify (image ~evict_prob run seed) with
  | stats, errs ->
      acc.a_fwd <- acc.a_fwd + stats.Pmwcas.Recovery.rolled_forward;
      acc.a_back <- acc.a_back + stats.rolled_back;
      let errs =
        if stats.rolled_forward + stats.rolled_back <> stats.in_flight then
          Printf.sprintf
            "recovery stats inconsistent: %d forward + %d back <> %d \
             in-flight"
            stats.rolled_forward stats.rolled_back stats.in_flight
          :: errs
        else errs
      in
      if stats.in_flight > stats.scanned then
        Printf.sprintf "recovery stats inconsistent: in_flight %d > scanned %d"
          stats.in_flight stats.scanned
        :: errs
      else errs
  | exception e -> [ "verify raised: " ^ Printexc.to_string e ]

let eval_point ~trace ~evict_prob ~evict_seeds spec acc fuel =
  acc.a_points <- acc.a_points + 1;
  match spec.execute ~traced:trace ~fuel:(Some fuel) with
  | exception e ->
      (* The workload must absorb [Mem.Crash]; anything escaping is a
         finding in its own right. *)
      acc.a_failures <-
        {
          fuel;
          evict_seed = None;
          phase = Stats.App;
          reason = "workload raised: " ^ Printexc.to_string e;
          shrunk = None;
          artifact = None;
        }
        :: acc.a_failures
  | run -> (
      (* Same domain as the workload, so the sharded register is ours. *)
      let phase = Stats.current_phase (Mem.stats run.mem) in
      if run.crashed then begin
        acc.a_crashes <- acc.a_crashes + 1;
        let pi = Stats.phase_to_int phase in
        acc.a_phases.(pi) <- acc.a_phases.(pi) + 1
      end;
      let fail seed reason =
        acc.a_failures <-
          { fuel; evict_seed = seed; phase; reason; shrunk = None;
            artifact = None }
          :: acc.a_failures
      in
      List.iter
        (fun seed ->
          match check_image ~evict_prob run acc seed with
          | [] -> ()
          | errs -> fail seed (String.concat "; " errs))
        (None :: List.map Option.some evict_seeds);
      match run.check_trace with
      | Some check when trace -> (
          match check () with
          | [] -> ()
          | errs -> fail None ("trace: " ^ String.concat "; " errs)
          | exception e ->
              fail None ("trace check raised: " ^ Printexc.to_string e))
      | _ -> ())

(* Does [(fuel, seed)] still exhibit any violation? Used by the
   shrinker, which cares only about fail/pass. *)
let reproduces ~evict_prob spec ~fuel ~seed =
  match spec.execute ~traced:false ~fuel:(Some fuel) with
  | run when not run.crashed -> false
  | run -> (
      let acc = new_acc () in
      match check_image ~evict_prob run acc seed with
      | [] -> false
      | _ -> true)
  | exception _ -> true

let replay spec ~fuel ?(evict_prob = 0.25) ?evict_seed () =
  let run = spec.execute ~traced:false ~fuel:(Some fuel) in
  if not run.crashed then [ "injector never fired at this fuel" ]
  else check_image ~evict_prob run (new_acc ()) evict_seed

(* Greedy shrink to a minimal (fuel, seed): drop the eviction seed if
   the plain image already fails, then halve the fuel while the failure
   persists, then walk down linearly. Bounded re-executions. *)
let shrink ~evict_prob ?(budget = 48) spec (f : failure) =
  let left = ref budget in
  let try_point ~fuel ~seed =
    !left > 0
    &&
    (decr left;
     reproduces ~evict_prob spec ~fuel ~seed)
  in
  let seed =
    if f.evict_seed <> None && try_point ~fuel:f.fuel ~seed:None then None
    else f.evict_seed
  in
  let fuel = ref f.fuel in
  let halving = ref true in
  while !halving && !fuel > 0 do
    let cand = !fuel / 2 in
    if try_point ~fuel:cand ~seed then fuel := cand else halving := false
  done;
  let stepping = ref true in
  while !stepping && !fuel > 0 && !left > 0 do
    if try_point ~fuel:(!fuel - 1) ~seed then decr fuel else stepping := false
  done;
  { f with shrunk = Some (!fuel, seed) }

let sweep ?(budget = 512) ?(evict_prob = 0.25) ?(evict_seeds = [ 1; 2 ])
    ?(trace = false) ?(sample_seed = 0xC0FFEE) ?(domains = 1)
    ?(max_shrunk = 3) ?progress spec =
  let t0 = Unix.gettimeofday () in
  let total = calibrate spec in
  let points =
    Array.of_list (fuel_points ~total ~budget:(max 1 budget) ~sample_seed)
  in
  let n = Array.length points in
  let domains = max 1 (min domains (max 1 n)) in
  let done_count = Atomic.make 0 in
  (* Round-robin chunks; each worker owns its points end to end so the
     phase register it reads is the one its own workload wrote. *)
  let eval_chunk first =
    let acc = new_acc () in
    let i = ref first in
    while !i < n do
      eval_point ~trace ~evict_prob ~evict_seeds spec acc points.(!i);
      Atomic.incr done_count;
      (match progress with
      | Some p when first = 0 -> p ~done_:(Atomic.get done_count) ~total:n
      | _ -> ());
      i := !i + domains
    done;
    acc
  in
  let acc =
    if domains = 1 then eval_chunk 0
    else begin
      let workers =
        List.init (domains - 1) (fun k ->
            Domain.spawn (fun () -> eval_chunk (k + 1)))
      in
      let acc = eval_chunk 0 in
      List.iter (fun d -> merge_acc acc (Domain.join d)) workers;
      acc
    end
  in
  let failures =
    List.sort (fun a b -> compare (a.fuel, a.evict_seed) (b.fuel, b.evict_seed))
      acc.a_failures
    |> List.mapi (fun i f ->
           if i < max_shrunk then shrink ~evict_prob spec f else f)
  in
  let by_phase =
    List.filter_map
      (fun p ->
        let n = acc.a_phases.(Stats.phase_to_int p) in
        if n = 0 then None else Some (p, n))
      Stats.all_phases
  in
  {
    suite = spec.name;
    total_steps = total;
    points = acc.a_points;
    crashes = acc.a_crashes;
    images = acc.a_images;
    rolled_forward = acc.a_fwd;
    rolled_back = acc.a_back;
    by_phase;
    failures;
    seconds = Unix.gettimeofday () -. t0;
  }

let ok s = s.failures = []

(* Re-execute a failure at its minimal repro point with the flight
   recorder wide open (no sampling), then package the timeline, the
   device's pending lines and the in-flight descriptor states into one
   artifact. Restores the recorder to whatever state the caller had. *)
let capture_forensics ?dir ?(tail = 50) spec (f : failure) =
  let fuel, seed =
    match f.shrunk with Some p -> p | None -> (f.fuel, f.evict_seed)
  in
  let was_on = Flight.tracing () in
  let old_shift = Flight.sample_shift () in
  Flight.enable ~sample_shift:0 ();
  Flight.reset ();
  Fun.protect ~finally:(fun () ->
      if was_on then Flight.set_sample_shift old_shift else Flight.disable ())
  @@ fun () ->
  let mem, note =
    match spec.execute ~traced:false ~fuel:(Some fuel) with
    | run -> (Some run.mem, "re-executed at the repro point")
    | exception e -> (None, "re-execution raised: " ^ Printexc.to_string e)
  in
  let snap = Flight.snapshot () in
  let module V = Telemetry.Value in
  let extra =
    [
      ("fuel", V.Int fuel);
      ("evict_seed", match seed with None -> V.Null | Some s -> V.Int s);
      ("phase", V.String (Stats.phase_name f.phase));
      ("reason", V.String f.reason);
      ("note", V.String note);
    ]
  in
  let path =
    Forensics.write_artifact ?dir ?mem ~tail ~suite:spec.name
      ~label:
        (Printf.sprintf "fuel%d%s" fuel
           (match seed with None -> "" | Some s -> Printf.sprintf "-seed%d" s))
      ~extra snap
  in
  f.artifact <- Some path;
  (path, Flight.postmortem ~tail snap)

let pp_seed ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some s -> Format.pp_print_int ppf s

let pp_failure ppf f =
  Format.fprintf ppf "fuel=%d seed=%a phase=%s: %s" f.fuel pp_seed
    f.evict_seed (Stats.phase_name f.phase) f.reason;
  (match f.shrunk with
  | None -> ()
  | Some (fuel, seed) ->
      Format.fprintf ppf " [shrunk to fuel=%d seed=%a]" fuel pp_seed seed);
  match f.artifact with
  | None -> ()
  | Some path -> Format.fprintf ppf " [artifact %s]" path

let summary_to_json s =
  let module V = Telemetry.Value in
  let failure_to_json f =
    V.Obj
      [
        ("fuel", V.Int f.fuel);
        ( "evict_seed",
          match f.evict_seed with None -> V.Null | Some x -> V.Int x );
        ("phase", V.String (Stats.phase_name f.phase));
        ("reason", V.String f.reason);
        ( "shrunk",
          match f.shrunk with
          | None -> V.Null
          | Some (fuel, seed) ->
              V.Obj
                [
                  ("fuel", V.Int fuel);
                  ( "evict_seed",
                    match seed with None -> V.Null | Some x -> V.Int x );
                ] );
        ( "artifact",
          match f.artifact with None -> V.Null | Some p -> V.String p );
      ]
  in
  V.Obj
    [
      ("suite", V.String s.suite);
      ("total_steps", V.Int s.total_steps);
      ("points", V.Int s.points);
      ("crashes", V.Int s.crashes);
      ("images", V.Int s.images);
      ("rolled_forward", V.Int s.rolled_forward);
      ("rolled_back", V.Int s.rolled_back);
      ( "by_phase",
        V.Obj
          (List.map
             (fun (p, n) -> (Stats.phase_name p, V.Int n))
             s.by_phase) );
      ("failures", V.List (List.map failure_to_json s.failures));
      ("seconds", V.Float s.seconds);
    ]

let pp_summary ppf s =
  Format.fprintf ppf
    "%s: %d steps, %d points (%d crashed), %d images, rolled forward %d / \
     back %d, %.2fs"
    s.suite s.total_steps s.points s.crashes s.images s.rolled_forward
    s.rolled_back s.seconds;
  List.iter
    (fun (p, n) -> Format.fprintf ppf "@.  phase %-10s %d" (Stats.phase_name p) n)
    s.by_phase;
  match s.failures with
  | [] -> Format.fprintf ppf "@.  no failures"
  | fs ->
      Format.fprintf ppf "@.  %d FAILURES" (List.length fs);
      List.iter (fun f -> Format.fprintf ppf "@.  %a" pp_failure f) fs
