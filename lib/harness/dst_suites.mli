(** DST scenarios packaged as {!Crash_sweep} suites.

    Each suite runs a {!Dst.Scenarios} workload under a fixed
    [Random]-seeded deterministic schedule with the classic fuel
    injector armed, and verifies every crash image with the scenario's
    durable-linearizability checker — the checker {e replaces} the
    hand-written shadow-model prefix audits of {!Sweep_suites} for
    these suites. Deterministic per fuel value, as [Crash_sweep.spec]
    requires (the cooperative scheduler never diverges under equal
    fuel). Tracing is not supported (a device cannot be both hooked and
    traced), so [check_trace] is always [None]. *)

val dst_pmwcas : ?seed:int -> unit -> Crash_sweep.spec
(** Overlapping multi-word CASes ({!Dst.Scenarios.pmwcas}), suite name
    ["dst-pmwcas"]. *)

val dst_skiplist : ?seed:int -> unit -> Crash_sweep.spec
(** Concurrent skip-list workload ({!Dst.Scenarios.skiplist}), suite
    name ["dst-skiplist"]. *)

val dst_store : ?seed:int -> unit -> Crash_sweep.spec
(** Sharded group-commit store workload ({!Dst.Scenarios.store}), suite
    name ["dst-store"]: crashes land mid-batch (committer holding the
    combiner flag, waiters parked) and recovery goes through
    [Store.recover]'s superblock + parallel per-shard stack. *)

val all : unit -> Crash_sweep.spec list
val find : string -> Crash_sweep.spec option
