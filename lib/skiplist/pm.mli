(** Lock-free doubly-linked skip list built on PMwCAS (Section 6.1).

    Every structural change is one PMwCAS that moves the list between
    consistent states, so the index needs {e no recovery code of its own}:
    after a crash, run {!Palloc.recover} and {!Pmwcas.Recovery.run}, then
    {!attach} — the paper's headline programming model.

    - {b insert} at the base level is a 2-word PMwCAS ([pred.next],
      [succ.prev]); the new node is allocated through [ReserveEntry] with
      [FreeNewOnFailure], so a crashed or failed insert can never leak it.
    - {b tower promotion} to level [i] is a 5-word PMwCAS that also
      publishes the node's own [next]/[prev] at that level and asserts the
      node is still alive.
    - {b delete} unlinks top-down; the base-level PMwCAS marks the node,
      clears its alive bit and carries [FreeOldOnSuccess], so the node's
      memory is reclaimed (epoch-safely) exactly once.

    Because [next] and [prev] move in the same atomic step, backward
    pointers are always exact — reverse range scans need none of the
    fix-up machinery a CAS-based doubly-linked list requires.

    Keys and values are non-negative integers below
    [Nvram.Flags.max_payload]; keys are unique (a set-style map). Created
    with a [persistent:false] pool this is the volatile MwCAS skip list —
    identical code, no flushes. *)

type t

val anchor_words : int
(** Words to carve (line-aligned) for the index anchor. *)

val max_level_default : int

val create :
  ?max_level:int -> pool:Pmwcas.Pool.t -> palloc:Palloc.t -> anchor:int
  -> unit -> t
(** Format a new index whose anchor lives at [anchor]. Idempotent across
    creation crashes: a half-initialized anchor is completed, a finished
    one is attached. *)

val attach : pool:Pmwcas.Pool.t -> palloc:Palloc.t -> anchor:int -> t
(** Re-open after recovery. @raise Failure if the anchor is not
    formatted. *)

type handle
(** Per-domain handle (wraps pool, allocator and epoch registration). *)

val register : ?seed:int -> t -> handle
val unregister : handle -> unit

val insert : handle -> key:int -> value:int -> bool
(** [false] if the key is already present. *)

val delete : handle -> key:int -> bool
val find : handle -> key:int -> int option

val update : handle -> key:int -> value:int -> bool
(** Replace the value of an existing key; [false] if absent. *)

val locate : handle -> key:int -> (int * int) option
(** [(value_word_address, current_value)] of a present key, read through
    the PMwCAS read protocol. For single-writer batch merging (a group
    commit folds many updates into one PMwCAS over the value words):
    the expected value is only stable if the caller serializes all
    mutations on this index. *)

val pool_handle : handle -> Pmwcas.Pool.handle
(** The underlying pool registration, for callers that combine [locate]
    results into their own multi-word PMwCAS (group commit). *)

val fold_range :
  handle -> lo:int -> hi:int -> init:'a -> f:('a -> key:int -> value:int -> 'a)
  -> 'a
(** Forward scan over keys in [\[lo, hi\]]. *)

val fold_range_rev :
  handle -> lo:int -> hi:int -> init:'a -> f:('a -> key:int -> value:int -> 'a)
  -> 'a
(** Reverse scan over keys in [\[lo, hi\]], following the backward links —
    the capability the doubly-linked design exists for. *)

val length : handle -> int
(** O(n) base-level walk. *)

val quiesce : handle -> unit
(** Advance the epoch and drain this handle's deferred reclamation —
    useful in tests and before taking crash images or space measurements. *)

val check_invariants : handle -> unit
(** Structural audit for tests (call when quiescent): strict key order,
    [prev]/[next] symmetry forward and backward, tower containment, no
    reachable marks, alive bits set. @raise Failure on violation. *)

val node_count_words : t -> int
(** Words a node of each currently linked tower occupies, summed — used by
    space accounting in benchmarks. *)
