module Mem = Nvram.Mem
module Flags = Nvram.Flags
module Pool = Pmwcas.Pool
module Op = Pmwcas.Op
module Pcas = Pmwcas.Pcas
module Layout = Pmwcas.Layout

let magic = 0x5_c1_b1_15
let anchor_words = 8
let max_level_default = 12

type t = {
  pool : Pool.t;
  palloc : Palloc.t;
  mem : Mem.t;
  head : int;
  tail : int;
  max_level : int;
}

type handle = {
  sl : t;
  ph : Pool.handle;
  pa : Palloc.handle;
  rng : Random.State.t;
}

(* Node layout: +0 key, +1 value, +2 level, +3 alive,
   +4..+4+level-1 next, +4+level..+4+2*level-1 prev. *)
let key_addr n = n
let value_addr n = n + 1
let level_addr n = n + 2
let alive_addr n = n + 3
let next_addr n lvl = n + 4 + lvl
let prev_addr t n lvl = n + 4 + Mem.read t.mem (level_addr n) + lvl
let node_words level = 4 + (2 * level)

(* Sentinels sort below/above every key. *)
let key_of t n =
  if n = t.head then min_int
  else if n = t.tail then max_int
  else Mem.read t.mem (key_addr n)

(* Destination pass over a node body: with the flit mode on,
   [Pcas.persist_range] elides lines whose tracked stores already issued
   their write-backs; off, it degrades to the plain range flush. *)
let persist_node t n =
  if Pool.persistent t.pool then
    let last = n + node_words (Mem.read t.mem (level_addr n)) - 1 in
    Pcas.persist_range t.mem ~lo:n ~hi:last

(* Node-body stores: tracked (counter-bumping) when destination-only
   persistence is on, so the [persist_node] pass knows which words still
   owe a write-back. The two must agree per node — an untracked store
   under a flit-mode [persist_node] reads as already durable and gets
   wrongly elided. *)
let node_write t a v =
  if Pool.persistent t.pool && Nvram.Flit.enabled () then
    Mem.flit_write t.mem a v
  else Mem.write t.mem a v

let init_sentinel t n ~max_level =
  node_write t (key_addr n) 0;
  node_write t (value_addr n) 0;
  node_write t (level_addr n) max_level;
  node_write t (alive_addr n) 1

let clwb_if t a = if Pool.persistent t.pool then Mem.clwb t.mem a
let fence_if t = if Pool.persistent t.pool then Mem.fence t.mem

let create ?(max_level = max_level_default) ~pool ~palloc ~anchor () =
  if max_level < 1 || max_level > 30 then invalid_arg "Pm.create: max_level";
  let mem = Pool.mem pool in
  let t = { pool; palloc; mem; head = 0; tail = 0; max_level } in
  if Mem.read mem anchor = magic then begin
    (* Already formatted: attach semantics. *)
    let head = Mem.read mem (anchor + 1) and tail = Mem.read mem (anchor + 2) in
    { t with head; tail; max_level = Mem.read mem (anchor + 3) }
  end
  else begin
    (* Idempotent initialization: sentinel allocations deliver into the
       anchor, so a creation crash either rolls them back (allocator
       recovery) or leaves them reusable here; magic is written last. *)
    let pa = Palloc.register_thread palloc in
    let get_sentinel slot_addr =
      let existing = Mem.read mem slot_addr in
      if existing <> 0 then existing
      else Palloc.alloc pa ~nwords:(node_words max_level) ~dest:slot_addr
    in
    let head = get_sentinel (anchor + 1) in
    let tail = get_sentinel (anchor + 2) in
    Palloc.release_thread pa;
    let t = { t with head; tail } in
    init_sentinel t head ~max_level;
    init_sentinel t tail ~max_level;
    (* head.next = tail, head.prev = head (never followed);
       tail.next = tail (end marker), tail.prev = head. *)
    for i = 0 to max_level - 1 do
      node_write t (next_addr head i) tail;
      node_write t (head + 4 + max_level + i) head;
      node_write t (next_addr tail i) tail;
      node_write t (tail + 4 + max_level + i) head
    done;
    persist_node t head;
    persist_node t tail;
    (* Sentinels durable before any durable magic can point at them. *)
    fence_if t;
    Mem.write mem (anchor + 3) max_level;
    Mem.write mem anchor magic;
    clwb_if t anchor;
    fence_if t;
    t
  end

let attach ~pool ~palloc ~anchor =
  let mem = Pool.mem pool in
  if Mem.read mem anchor <> magic then failwith "Pm.attach: not formatted";
  {
    pool;
    palloc;
    mem;
    head = Mem.read mem (anchor + 1);
    tail = Mem.read mem (anchor + 2);
    max_level = Mem.read mem (anchor + 3);
  }

let register ?seed t =
  let seed =
    match seed with Some s -> s | None -> (Domain.self () :> int) + 7919
  in
  let ph = Pool.register t.pool in
  {
    sl = t;
    ph;
    (* Co-shard allocator and descriptor pool: this domain carves from
       the arena matching its pool partition, so index allocations never
       contend with other domains' in the common case. *)
    pa = Palloc.register_thread ~arena:(Pool.handle_part ph) t.palloc;
    rng = Random.State.make [| seed |];
  }

let unregister h =
  Pool.unregister h.ph;
  Palloc.release_thread h.pa

let random_level h =
  let rec go lvl =
    if lvl < h.sl.max_level && Random.State.int h.rng 4 = 0 then go (lvl + 1)
    else lvl
  in
  go 1

(* Journey read: with destination-only persistence on, traversal loads
   skip the flush-on-read write-back and fence (dirty values navigate
   unflushed). Sound because a plain dirty value was installed by a
   durably-decided op — recovery rolls it forward — and an op that
   claims such a word does so in place ([Op.install_rdcss]). *)
let jread t a =
  if Nvram.Flit.enabled () then Op.read_weak t.pool a else Op.read t.pool a

(* Read a link through the PMwCAS read protocol and split mark/target. *)
let read_link t a =
  let v = jread t a in
  (Flags.clear_mark v, Flags.is_marked v)

(* Corrupt crash images can link nodes into cycles; every unbounded walk
   carries a step budget far above any legal node count so verification
   on a broken image fails loudly instead of looping. *)
let walk_guard t =
  let budget = ref ((2 * Mem.size t.mem) + 64) in
  fun () ->
    decr budget;
    if !budget < 0 then
      failwith "Pm: walk exceeded the node budget (corrupt structure?)"

(* Collect predecessor/successor nodes per level. Marked links still
   navigate (the node is already unlinked; its forward pointer remains a
   correct snapshot). *)
let search t key =
  let tick = walk_guard t in
  let preds = Array.make t.max_level t.head in
  let succs = Array.make t.max_level t.tail in
  let cur = ref t.head in
  for lvl = t.max_level - 1 downto 0 do
    let rec walk () =
      tick ();
      let nxt, _marked = read_link t (next_addr !cur lvl) in
      if nxt <> t.tail && key_of t nxt < key then begin
        cur := nxt;
        walk ()
      end
      else begin
        preds.(lvl) <- !cur;
        succs.(lvl) <- nxt
      end
    in
    walk ()
  done;
  (preds, succs)

let alive t n = jread t (alive_addr n) = 1

(* Descriptor-allocation discipline: a starved pool waits for epochs to
   pass, so a thread must never wait while pinned. Every attempt therefore
   allocates its (single) descriptor BEFORE entering the epoch, and the
   epoch spans exactly one search + one PMwCAS. *)

let promote h n ~key ~level =
  let t = h.sl in
  let rec level_loop i =
    if i >= level then ()
    else
      let rec attempt () =
        let d = Pool.alloc_desc h.ph in
        let outcome =
          Pool.with_epoch h.ph (fun () ->
              if not (alive t n) then begin
                Pool.discard d;
                `Stop
              end
              else begin
                let preds, succs = search t key in
                let pred = preds.(i) and succ = succs.(i) in
                if succ = n || fst (read_link t (next_addr n i)) <> 0 then begin
                  Pool.discard d;
                  `Next
                end
                else begin
                  Pool.add_word d ~addr:(next_addr pred i) ~expected:succ
                    ~desired:n;
                  Pool.add_word d ~addr:(prev_addr t succ i) ~expected:pred
                    ~desired:n;
                  Pool.add_word d ~addr:(next_addr n i) ~expected:0
                    ~desired:succ;
                  Pool.add_word d ~addr:(prev_addr t n i) ~expected:0
                    ~desired:pred;
                  Pool.add_word d ~addr:(alive_addr n) ~expected:1 ~desired:1;
                  if Op.execute d then `Next else `Retry
                end
              end)
        in
        match outcome with
        | `Stop -> ()
        | `Next -> level_loop (i + 1)
        | `Retry -> attempt ()
      in
      attempt ()
  in
  level_loop 1

(* Whole-operation latency (search + PMwCAS + retries), shared across
   insert/delete/update/find: the per-attempt cost already has its own
   histogram in [Pmwcas.Op], so one combined curve per structure is the
   right granularity for comparing index designs. *)
let op_hist = Telemetry.on_demand "skiplist.op_ns"

let record_op t0 =
  if t0 <> 0 then
    Telemetry.Histogram.record (op_hist ()) (Telemetry.now_ns () - t0)

let insert_impl h ~key ~value =
  if key < 0 || key > Flags.max_payload then invalid_arg "Pm.insert: key";
  if value < 0 || value > Flags.max_payload then invalid_arg "Pm.insert: value";
  let t = h.sl in
  let rec attempt () =
    let d = Pool.alloc_desc h.ph in
    let outcome =
      Pool.with_epoch h.ph (fun () ->
          let preds, succs = search t key in
          if succs.(0) <> t.tail && key_of t succs.(0) = key then begin
            Pool.discard d;
            `Exists
          end
          else begin
            let pred = preds.(0) and succ = succs.(0) in
            let level = random_level h in
            let dest =
              Pool.reserve_entry ~policy:Layout.Free_new_on_failure d
                ~addr:(next_addr pred 0) ~expected:succ
            in
            let n = Palloc.alloc ~reserved:true h.pa ~nwords:(node_words level) ~dest in
            node_write t (key_addr n) key;
            node_write t (value_addr n) value;
            node_write t (level_addr n) level;
            node_write t (alive_addr n) 1;
            node_write t (next_addr n 0) succ;
            node_write t (n + 4 + level) pred;
            (* prev[0] *)
            for i = 1 to level - 1 do
              node_write t (next_addr n i) 0;
              node_write t (n + 4 + level + i) 0
            done;
            (* The node body must be durable before it can become
               reachable. *)
            persist_node t n;
            Pool.add_word d ~addr:(prev_addr t succ 0) ~expected:pred
              ~desired:n;
            if Op.execute d then `Inserted (n, level) else `Retry
          end)
    in
    match outcome with
    | `Exists -> false
    | `Retry -> attempt ()
    | `Inserted (n, level) ->
        promote h n ~key ~level;
        true
  in
  attempt ()

let delete_impl h ~key =
  let t = h.sl in
  (* One level unlinked per epoch-scoped attempt, top-down; the base-level
     PMwCAS decides the delete and reclaims the node. *)
  let rec attempt () =
    let d = Pool.alloc_desc h.ph in
    let outcome =
      Pool.with_epoch h.ph (fun () ->
          let preds, succs = search t key in
          let n = succs.(0) in
          if n = t.tail || key_of t n <> key then begin
            Pool.discard d;
            `Absent
          end
          else begin
            let top =
              let rec highest i =
                if i = 0 then 0 else if succs.(i) = n then i else highest (i - 1)
              in
              highest (t.max_level - 1)
            in
            if top > 0 then begin
              let i = top in
              let nxt, marked = read_link t (next_addr n i) in
              if marked then begin
                (* Level already marked but still linked: physically fix it
                   by retrying; search will route around it. *)
                Pool.discard d;
                `Retry
              end
              else begin
                Pool.add_word d ~addr:(next_addr preds.(i) i) ~expected:n
                  ~desired:nxt;
                Pool.add_word d ~addr:(prev_addr t nxt i) ~expected:n
                  ~desired:preds.(i);
                Pool.add_word d ~addr:(next_addr n i) ~expected:nxt
                  ~desired:(Flags.set_mark nxt);
                ignore (Op.execute d);
                `Retry
              end
            end
            else begin
              let nxt, marked = read_link t (next_addr n 0) in
              if marked then begin
                (* Another deleter already won the base level. *)
                Pool.discard d;
                `Absent
              end
              else begin
                (* FreeOldOnSuccess on the pred link reclaims the node. *)
                Pool.add_word ~policy:Layout.Free_old_on_success d
                  ~addr:(next_addr preds.(0) 0) ~expected:n ~desired:nxt;
                Pool.add_word d ~addr:(prev_addr t nxt 0) ~expected:n
                  ~desired:preds.(0);
                Pool.add_word d ~addr:(next_addr n 0) ~expected:nxt
                  ~desired:(Flags.set_mark nxt);
                Pool.add_word d ~addr:(alive_addr n) ~expected:1 ~desired:0;
                if Op.execute d then `Deleted
                else if not (alive t n) then `Absent
                else `Retry
              end
            end
          end)
    in
    match outcome with
    | `Absent -> false
    | `Deleted -> true
    | `Retry -> attempt ()
  in
  attempt ()

let update_impl h ~key ~value =
  if value < 0 || value > Flags.max_payload then invalid_arg "Pm.update: value";
  let t = h.sl in
  let rec attempt () =
    let d = Pool.alloc_desc h.ph in
    let outcome =
      Pool.with_epoch h.ph (fun () ->
          let _, succs = search t key in
          let n = succs.(0) in
          if n = t.tail || key_of t n <> key then begin
            Pool.discard d;
            `Absent
          end
          else begin
            let old_v = jread t (value_addr n) in
            (* No destination flush of the expected value: if the word
               is still dirty, [Op.install_rdcss] claims it in place and
               this descriptor's sealed old-field is the rollback
               record. *)
            Pool.add_word d ~addr:(value_addr n) ~expected:old_v
              ~desired:value;
            Pool.add_word d ~addr:(alive_addr n) ~expected:1 ~desired:1;
            if Op.execute d then `Updated
            else if not (alive t n) then `Absent
            else `Retry
          end)
    in
    match outcome with
    | `Absent -> false
    | `Updated -> true
    | `Retry -> attempt ()
  in
  attempt ()

(* Expose an existing key's value word so a group-commit leader can fold
   many single-key updates into one multi-word PMwCAS over the value
   words. Only sound when the caller serializes every mutation on this
   structure (the store's committer is the sole writer per shard);
   under concurrent mutators the returned expected value can go stale
   the moment the epoch closes. *)
let locate_impl h ~key =
  let t = h.sl in
  Pool.with_epoch h.ph (fun () ->
      let _, succs = search t key in
      let n = succs.(0) in
      if n <> t.tail && key_of t n = key && alive t n then
        Some (value_addr n, jread t (value_addr n))
      else None)

let find_impl h ~key =
  let t = h.sl in
  Pool.with_epoch h.ph (fun () ->
      let _, succs = search t key in
      let n = succs.(0) in
      if n <> t.tail && key_of t n = key then
        (* Weak value read: a plain dirty value was installed by a
           durably-decided op (recovery rolls it forward), so the lookup
           result is sound without a flush. *)
        Some (jread t (value_addr n))
      else None)

(* Latency sampling + flight-recorder op span around each public op.
   The span is closed on the exception path too, so a crash-unwound op
   shows up as aborted in the forensics timeline. *)
let with_span op ~key ~ok f =
  let t0 =
    if Telemetry.enabled () && Telemetry.sample () then Telemetry.now_ns ()
    else 0
  in
  let sp = Flight.op_begin ~op ~key in
  match f () with
  | r ->
      Flight.op_end sp ~op ~key ~ok:(ok r);
      record_op t0;
      r
  | exception e ->
      Flight.op_cancel sp ~op ~key;
      raise e

let insert h ~key ~value =
  with_span Flight.op_sl_insert ~key ~ok:Fun.id (fun () ->
      insert_impl h ~key ~value)

let delete h ~key =
  with_span Flight.op_sl_delete ~key ~ok:Fun.id (fun () -> delete_impl h ~key)

let update h ~key ~value =
  with_span Flight.op_sl_update ~key ~ok:Fun.id (fun () ->
      update_impl h ~key ~value)

let find h ~key =
  with_span Flight.op_sl_find ~key ~ok:Option.is_some (fun () ->
      find_impl h ~key)

let locate h ~key = locate_impl h ~key
let pool_handle h = h.ph

let fold_range h ~lo ~hi ~init ~f =
  let t = h.sl in
  Pool.with_epoch h.ph (fun () ->
      let tick = walk_guard t in
      let _, succs = search t lo in
      let rec walk acc n =
        tick ();
        if n = t.tail then acc
        else
          let k = key_of t n in
          if k > hi then acc
          else begin
            let v = jread t (value_addr n) in
            let nxt, _ = read_link t (next_addr n 0) in
            walk (f acc ~key:k ~value:v) nxt
          end
      in
      walk init succs.(0))

let fold_range_rev h ~lo ~hi ~init ~f =
  let t = h.sl in
  Pool.with_epoch h.ph (fun () ->
      (* Position after hi, then follow the backward links. *)
      let tick = walk_guard t in
      let _, succs = search t (hi + 1) in
      let start, _ = read_link t (prev_addr t succs.(0) 0) in
      let rec walk acc n =
        tick ();
        if n = t.head then acc
        else
          let k = key_of t n in
          if k < lo then acc
          else if k > hi then
            (* Racing insert shifted us; step back further. *)
            let p, _ = read_link t (prev_addr t n 0) in
            walk acc p
          else begin
            let v = jread t (value_addr n) in
            let p, _ = read_link t (prev_addr t n 0) in
            walk (f acc ~key:k ~value:v) p
          end
      in
      walk init start)

let length h =
  fold_range h ~lo:0 ~hi:Flags.max_payload ~init:0 ~f:(fun acc ~key:_ ~value:_ ->
      acc + 1)

let quiesce h =
  ignore (Epoch.advance (Pool.epoch h.sl.pool));
  ignore (Epoch.reclaim (Pool.guard h.ph))

let node_count_words t =
  (* Quiescent base-level walk summing per-node footprints. *)
  let tick = walk_guard t in
  let rec walk acc n =
    tick ();
    if n = t.tail then acc
    else
      let level = Mem.read t.mem (level_addr n) in
      let nxt = Flags.clear_mark (Mem.read t.mem (next_addr n 0)) in
      walk (acc + node_words level) (Flags.payload nxt)
  in
  walk (2 * node_words t.max_level) (Flags.payload (Mem.read t.mem (next_addr t.head 0)))

let check_invariants h =
  let t = h.sl in
  Pool.with_epoch h.ph (fun () ->
      let fail fmt = Printf.ksprintf failwith fmt in
      let tick = walk_guard t in
      (* Forward walk at every level: strict order, prev symmetry, marks,
         alive bits, tower containment. *)
      let level_nodes = Array.make t.max_level [] in
      for lvl = t.max_level - 1 downto 0 do
        let rec walk cur =
          tick ();
          let nxt_raw = Op.read t.pool (next_addr cur lvl) in
          if Flags.is_marked nxt_raw then
            fail "level %d: reachable marked link at node %d" lvl cur;
          let nxt = Flags.clear_mark nxt_raw in
          if nxt <> t.tail then begin
            if key_of t cur >= key_of t nxt then
              fail "level %d: keys not increasing at %d" lvl nxt;
            if Op.read t.pool (alive_addr nxt) <> 1 then
              fail "level %d: dead node %d still linked" lvl nxt;
            let back = Flags.clear_mark (Op.read t.pool (prev_addr t nxt lvl)) in
            if back <> cur then
              fail "level %d: prev(%d) = %d, expected %d" lvl nxt back cur;
            level_nodes.(lvl) <- nxt :: level_nodes.(lvl);
            walk nxt
          end
          else begin
            let back = Flags.clear_mark (Op.read t.pool (prev_addr t nxt lvl)) in
            if back <> cur then
              fail "level %d: tail.prev = %d, expected %d" lvl back cur
          end
        in
        walk t.head
      done;
      (* Tower containment: nodes at level i must appear at level i-1. *)
      for lvl = 1 to t.max_level - 1 do
        let lower = level_nodes.(lvl - 1) in
        List.iter
          (fun n ->
            if not (List.mem n lower) then
              fail "node %d at level %d missing from level %d" n lvl (lvl - 1))
          level_nodes.(lvl)
      done)
