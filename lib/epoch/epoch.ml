let free_tag = -2
let idle_tag = -1

(* --- reclamation telemetry ----------------------------------------- *)

(* Process-global sharded counters (one padded group per domain, see
   Telemetry.Sharded): the reclamation layer had zero instrumentation,
   and per-manager attribution matters less than "how much is this
   process deferring/freeing and how deep do limbo lists get". Counted
   unconditionally — each is one uncontended fetch-and-add on a path
   that already takes a CAS or list append. *)
let f_enter = 0 (* outermost pins *)
let f_exit = 1 (* outermost unpins *)
let f_advance = 2 (* global epoch bumps *)
let f_defer = 3 (* callbacks deferred *)
let f_free = 4 (* callbacks run (reclaimed) *)
let f_limbo = 5 (* max limbo-list depth seen (a max, not a counter) *)
let counters_cells = Telemetry.Sharded.create ~fields:6

type counters = {
  enters : int;
  exits : int;
  advances : int;
  deferred : int;
  freed : int;
  max_limbo : int;
}

let counters () =
  let sum = Telemetry.Sharded.sum counters_cells in
  {
    enters = sum f_enter;
    exits = sum f_exit;
    advances = sum f_advance;
    deferred = sum f_defer;
    freed = sum f_free;
    max_limbo = Telemetry.Sharded.max_over counters_cells f_limbo;
  }

let reset_counters () = Telemetry.Sharded.reset counters_cells

let counters_to_json c =
  Telemetry.Value.Obj
    [
      ("enters", Telemetry.Value.Int c.enters);
      ("exits", Telemetry.Value.Int c.exits);
      ("advances", Telemetry.Value.Int c.advances);
      ("deferred", Telemetry.Value.Int c.deferred);
      ("freed", Telemetry.Value.Int c.freed);
      ("max_limbo", Telemetry.Value.Int c.max_limbo);
    ]

let pp_counters ppf c = Telemetry.Value.pp_flat ppf (counters_to_json c)

type t = {
  slots : int Atomic.t array;
  epoch : int Atomic.t;
  orphans : (int * (unit -> unit)) list Atomic.t;
  registered : int Atomic.t;
}

type guard = {
  mgr : t;
  cell : int Atomic.t;
  mutable depth : int;
  mutable garbage : (int * (unit -> unit)) list;
  mutable garbage_len : int;
  mutable exits : int;
  mutable live : bool;
}

(* Advance and attempt reclamation every this many outermost exits, or as
   soon as this much garbage accumulates (keeps bounded pools such as the
   PMwCAS descriptor pool from starving). *)
let reclaim_period = 32
let garbage_high_water = 16

let create ?(slots = 128) () =
  if slots <= 0 then invalid_arg "Epoch.create: slots <= 0";
  {
    slots = Array.init slots (fun _ -> Atomic.make free_tag);
    epoch = Atomic.make 0;
    orphans = Atomic.make [];
    registered = Atomic.make 0;
  }

let register t =
  let n = Array.length t.slots in
  let rec claim i =
    if i >= n then failwith "Epoch.register: all slots taken"
    else if Atomic.compare_and_set t.slots.(i) free_tag idle_tag then i
    else claim (i + 1)
  in
  let i = claim 0 in
  ignore (Atomic.fetch_and_add t.registered 1);
  {
    mgr = t;
    cell = t.slots.(i);
    depth = 0;
    garbage = [];
    garbage_len = 0;
    exits = 0;
    live = true;
  }

let check_live g = if not g.live then invalid_arg "Epoch: guard unregistered"
let current t = Atomic.get t.epoch

let advance t =
  Telemetry.Sharded.incr counters_cells f_advance;
  let e = 1 + Atomic.fetch_and_add t.epoch 1 in
  if Flight.tracing () then Flight.emit Flight.Epoch_advance e 0 0;
  e
let registered t = Atomic.get t.registered

let safe_before t =
  let m = ref max_int in
  Array.iter
    (fun s ->
      let v = Atomic.get s in
      if v >= 0 && v < !m then m := v)
    t.slots;
  if !m = max_int then current t + 1 else !m

let pinned g = g.depth > 0
let limbo g = g.garbage_len

let enter g =
  check_live g;
  if g.depth = 0 then begin
    (* Publish the pin, then re-check the epoch: guarantees that any
       retirement happening after our pin is visible as >= our pinned
       epoch (standard epoch-publication handshake). *)
    let rec pin () =
      let e = Atomic.get g.mgr.epoch in
      Atomic.set g.cell e;
      if Atomic.get g.mgr.epoch <> e then pin ()
    in
    pin ();
    Telemetry.Sharded.incr counters_cells f_enter;
    if Flight.tracing () then
      Flight.emit Flight.Epoch_enter (Atomic.get g.cell) 0 0
  end;
  g.depth <- g.depth + 1

let defer g fn =
  check_live g;
  let e = Atomic.get g.mgr.epoch in
  g.garbage <- (e, fn) :: g.garbage;
  g.garbage_len <- g.garbage_len + 1;
  Telemetry.Sharded.incr counters_cells f_defer;
  Telemetry.Sharded.record_max counters_cells f_limbo g.garbage_len;
  if Flight.tracing () then Flight.emit Flight.Epoch_defer e 0 0

let run_eligible ~bound items =
  let run, keep = List.partition (fun (e, _) -> e < bound) items in
  List.iter (fun (_, fn) -> fn ()) run;
  (List.length run, keep)

let take_orphans t =
  let rec loop () =
    let cur = Atomic.get t.orphans in
    if cur = [] then []
    else if Atomic.compare_and_set t.orphans cur [] then cur
    else loop ()
  in
  loop ()

let give_orphans t items =
  if items <> [] then begin
    let rec loop () =
      let cur = Atomic.get t.orphans in
      if not (Atomic.compare_and_set t.orphans cur (items @ cur)) then loop ()
    in
    loop ()
  end

let reclaim g =
  check_live g;
  let bound = safe_before g.mgr in
  let n1, keep = run_eligible ~bound g.garbage in
  g.garbage <- keep;
  g.garbage_len <- g.garbage_len - n1;
  let orphans = take_orphans g.mgr in
  let n2, keep_orphans = run_eligible ~bound orphans in
  give_orphans g.mgr keep_orphans;
  if n1 + n2 > 0 then begin
    Telemetry.Sharded.add counters_cells f_free (n1 + n2);
    if Flight.tracing () then Flight.emit Flight.Epoch_free (n1 + n2) bound 0
  end;
  n1 + n2

let exit g =
  check_live g;
  if g.depth <= 0 then invalid_arg "Epoch.exit: not pinned";
  g.depth <- g.depth - 1;
  if g.depth = 0 then begin
    Atomic.set g.cell idle_tag;
    Telemetry.Sharded.incr counters_cells f_exit;
    g.exits <- g.exits + 1;
    if g.exits mod reclaim_period = 0 || g.garbage_len >= garbage_high_water
    then begin
      ignore (advance g.mgr);
      ignore (reclaim g)
    end
  end

let with_guard g fn =
  enter g;
  match fn () with
  | v ->
      exit g;
      v
  | exception e ->
      exit g;
      raise e

let unregister g =
  check_live g;
  if g.depth > 0 then invalid_arg "Epoch.unregister: guard still pinned";
  give_orphans g.mgr g.garbage;
  g.garbage <- [];
  g.garbage_len <- 0;
  g.live <- false;
  Atomic.set g.cell free_tag;
  ignore (Atomic.fetch_and_add g.mgr.registered (-1))

let drain_all t =
  Array.iter
    (fun s ->
      if Atomic.get s >= 0 then failwith "Epoch.drain_all: a guard is pinned")
    t.slots;
  let orphans = take_orphans t in
  let n, _ = run_eligible ~bound:max_int orphans in
  if n > 0 then Telemetry.Sharded.add counters_cells f_free n;
  n
