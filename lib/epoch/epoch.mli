(** Epoch-based resource reclamation (Section 5.1 of the paper).

    Threads register for a slot, then bracket every sequence of operations
    that may dereference reclaimable objects between [enter] and [exit].
    An object retired with [defer] while the global epoch was [e] is only
    reclaimed once no thread is still pinned at an epoch [<= e], which
    guarantees no thread can hold a reference obtained before retirement.

    Deferred callbacks are kept in per-guard limbo lists (no cross-thread
    contention); a guard that unregisters hands its leftovers to a shared
    orphan list drained by other guards. The paper notes garbage lists
    need not be persistent — recovery is single-threaded and simply reuses
    every descriptor — so this manager is entirely volatile. *)

type t

type guard
(** A registered thread's handle. Guards are not thread-safe: use one
    guard per domain. *)

val create : ?slots:int -> unit -> t
(** [slots] bounds the number of simultaneously registered guards
    (default 128). *)

val register : t -> guard
(** Claim a slot. @raise Failure when all slots are taken. *)

val unregister : guard -> unit
(** Release the slot. Remaining deferred callbacks are moved to the orphan
    list. The guard must not be pinned and must not be used afterwards. *)

val enter : guard -> unit
(** Pin the guard at the current global epoch. Re-entrant calls are
    counted and only the outermost [exit] unpins. *)

val exit : guard -> unit
(** Unpin (outermost call). Periodically advances the global epoch and
    drains eligible garbage. *)

val pinned : guard -> bool

val with_guard : guard -> (unit -> 'a) -> 'a
(** [enter]/[exit] bracket, exception-safe. *)

val defer : guard -> (unit -> unit) -> unit
(** Schedule a callback to run once every epoch pinned now is gone. *)

val limbo : guard -> int
(** Depth of this guard's limbo list: callbacks deferred but not yet
    reclaimed (excludes orphans handed to the manager by [unregister]). *)

val current : t -> int
(** Current global epoch. *)

val advance : t -> int
(** Force a global epoch bump; returns the new epoch. *)

val safe_before : t -> int
(** Epochs strictly below this value are reclaimable: the minimum epoch
    any registered guard is pinned at (or the current epoch + 1 when
    nothing is pinned). *)

val reclaim : guard -> int
(** Drain this guard's eligible garbage plus a share of the orphan list;
    returns the number of callbacks run. Called implicitly by [exit], so
    explicit use is only needed for tests or quiescent cleanup. *)

val drain_all : t -> int
(** Run every outstanding callback regardless of epochs. Only legal when
    no guard is pinned (e.g. shutdown); raises [Failure] otherwise. *)

val registered : t -> int
(** Number of live guards (for tests and space accounting). *)

(** {2 Reclamation counters}

    Process-global (across every manager): cumulative reclamation
    activity, counted unconditionally on paths that already pay a CAS or
    a list append. *)

type counters = {
  enters : int;  (** Outermost [enter] calls (pins). *)
  exits : int;  (** Outermost [exit] calls (unpins). *)
  advances : int;  (** Global epoch bumps. *)
  deferred : int;  (** Callbacks scheduled with [defer]. *)
  freed : int;  (** Callbacks actually run. *)
  max_limbo : int;  (** Deepest per-guard limbo list ever observed. *)
}

val counters : unit -> counters

val reset_counters : unit -> unit
(** Zero the process-global counters (tests and fresh benchmark runs). *)

val counters_to_json : counters -> Telemetry.Value.t
val pp_counters : Format.formatter -> counters -> unit
