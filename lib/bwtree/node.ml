module Mem = Nvram.Mem

type tag =
  | Leaf_base
  | Inner_base
  | Put
  | Del
  | Leaf_split
  | Inner_split
  | Index_entry
  | Index_del
  | Merge

let tag_to_int = function
  | Leaf_base -> 1
  | Inner_base -> 2
  | Put -> 3
  | Del -> 4
  | Leaf_split -> 5
  | Inner_split -> 6
  | Index_entry -> 7
  | Index_del -> 8
  | Merge -> 9

let tag_of_int = function
  | 1 -> Leaf_base
  | 2 -> Inner_base
  | 3 -> Put
  | 4 -> Del
  | 5 -> Leaf_split
  | 6 -> Inner_split
  | 7 -> Index_entry
  | 8 -> Index_del
  | 9 -> Merge
  | n -> invalid_arg (Printf.sprintf "Bwtree.Node.tag_of_int: %d" n)

let pp_tag ppf t =
  Format.pp_print_string ppf
    (match t with
    | Leaf_base -> "leaf"
    | Inner_base -> "inner"
    | Put -> "put"
    | Del -> "del"
    | Leaf_split -> "leaf-split"
    | Inner_split -> "inner-split"
    | Index_entry -> "index-entry"
    | Index_del -> "index-del"
    | Merge -> "merge")

let plus_inf = Nvram.Flags.max_payload
let read_tag mem p = tag_of_int (Mem.read mem p)
let next mem p = Mem.read mem (p + 1)
let field mem p i = Mem.read mem (p + i)

type base = {
  kind : [ `Leaf | `Inner ];
  count : int;
  low : int;
  high : int;
  link : int;
  keys : int array;
  payloads : int array;
}

let base_words ~count = 5 + (2 * count)

let read_base mem p =
  let kind =
    match read_tag mem p with
    | Leaf_base -> `Leaf
    | Inner_base -> `Inner
    | t ->
        invalid_arg
          (Format.asprintf "Bwtree.Node.read_base: %a is not a base" pp_tag t)
  in
  let count = Mem.read mem (p + 1) in
  {
    kind;
    count;
    low = Mem.read mem (p + 2);
    high = Mem.read mem (p + 3);
    link = Mem.read mem (p + 4);
    keys = Array.init count (fun i -> Mem.read mem (p + 5 + i));
    payloads = Array.init count (fun i -> Mem.read mem (p + 5 + count + i));
  }

(* Record-body stores: tracked (flit counter) with destination-only
   persistence on, so the destination pass over the record
   ([Tree.persist_record] via [Pcas.persist_range]) knows which words
   still owe a write-back. Must stay in lockstep with that pass: an
   untracked store under a flit-mode range pass reads as already durable
   and gets wrongly elided. *)
let store mem a v =
  if Nvram.Flit.enabled () && Mem.durable mem then Mem.flit_write mem a v
  else Mem.write mem a v

let write_base mem p b =
  if Array.length b.keys <> b.count || Array.length b.payloads <> b.count then
    invalid_arg "Bwtree.Node.write_base: array sizes";
  store mem p
    (tag_to_int (match b.kind with `Leaf -> Leaf_base | `Inner -> Inner_base));
  store mem (p + 1) b.count;
  store mem (p + 2) b.low;
  store mem (p + 3) b.high;
  store mem (p + 4) b.link;
  for i = 0 to b.count - 1 do
    store mem (p + 5 + i) b.keys.(i);
    store mem (p + 5 + b.count + i) b.payloads.(i)
  done

(* Binary search over the in-place key array [p+5 .. p+5+count).
   Returns the largest index whose key is <= key, or -1. *)
let floor_index mem p ~count ~key =
  let lo = ref 0 and hi = ref (count - 1) and res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if Mem.read mem (p + 5 + mid) <= key then begin
      res := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !res

let base_find mem p ~key =
  let count = Mem.read mem (p + 1) in
  let i = floor_index mem p ~count ~key in
  if i >= 0 && Mem.read mem (p + 5 + i) = key then
    Some (Mem.read mem (p + 5 + count + i))
  else None

let base_route mem p ~key =
  let count = Mem.read mem (p + 1) in
  let i = floor_index mem p ~count ~key in
  if i < 0 then Mem.read mem (p + 4) (* leftmost *)
  else Mem.read mem (p + 5 + count + i)

let delta_words = function
  | Put -> 4
  | Del -> 3
  | Leaf_split | Inner_split -> 4
  | Index_entry | Index_del -> 4
  | Merge -> 6
  | Leaf_base | Inner_base -> invalid_arg "Bwtree.Node.delta_words: base"

let write_put mem p ~next ~key ~value =
  store mem p (tag_to_int Put);
  store mem (p + 1) next;
  store mem (p + 2) key;
  store mem (p + 3) value

let write_del mem p ~next ~key =
  store mem p (tag_to_int Del);
  store mem (p + 1) next;
  store mem (p + 2) key

let write_split mem p ~kind ~next ~sep ~right =
  store mem p
    (tag_to_int (match kind with `Leaf -> Leaf_split | `Inner -> Inner_split));
  store mem (p + 1) next;
  store mem (p + 2) sep;
  store mem (p + 3) right

let write_index_entry mem p ~next ~sep ~child =
  store mem p (tag_to_int Index_entry);
  store mem (p + 1) next;
  store mem (p + 2) sep;
  store mem (p + 3) child

let write_index_del mem p ~next ~sep ~victim =
  store mem p (tag_to_int Index_del);
  store mem (p + 1) next;
  store mem (p + 2) sep;
  store mem (p + 3) victim

let write_merge mem p ~next ~victim_top ~sep ~new_high ~new_right =
  store mem p (tag_to_int Merge);
  store mem (p + 1) next;
  store mem (p + 2) victim_top;
  store mem (p + 3) sep;
  store mem (p + 4) new_high;
  store mem (p + 5) new_right

let chain_blocks mem top =
  let rec walk p acc =
    let acc = p :: acc in
    match read_tag mem p with
    | Leaf_base | Inner_base -> acc
    | Merge -> walk (next mem p) (walk (Mem.read mem (p + 2)) acc)
    | Put | Del | Leaf_split | Inner_split | Index_entry | Index_del ->
        walk (next mem p) acc
  in
  if top = 0 then [] else walk top []
