module Mem = Nvram.Mem
module Flags = Nvram.Flags
module Pool = Pmwcas.Pool
module Op = Pmwcas.Op
module Layout = Pmwcas.Layout

let magic = 0xb371_2ee
let anchor_words = 8

type config = { consolidate_len : int; split_max : int; merge_min : int }

let default_config = { consolidate_len = 8; split_max = 48; merge_min = 4 }

type t = {
  pool : Pool.t;
  palloc : Palloc.t;
  mem : Mem.t;
  root : int;
  map_base : int;
  map_words : int;
  next_lpid_addr : int;
  free_lpids : int list Atomic.t;
  cb : int; (* consolidation finalize callback id *)
  cfg : config;
  n_consolidations : int Atomic.t;
  n_splits : int Atomic.t;
  n_root_splits : int Atomic.t;
  n_merges : int Atomic.t;
}

type handle = { t : t; ph : Pool.handle; pa : Palloc.handle }

let map_addr t lpid = t.map_base + lpid

(* On success: the new base page replaced the whole chain — release every
   block of it. On failure: release the reserved page instead. *)
let free_chain_callback mem ~succeeded (entries : Pool.entry array) =
  if succeeded then
    if Array.length entries > 0 then Node.chain_blocks mem entries.(0).old_value
    else []
  else
    Array.to_list entries
    |> List.filter_map (fun (e : Pool.entry) ->
           if e.new_value <> 0 then Some e.new_value else None)

let recovery_callback mem ~succeeded entries =
  free_chain_callback mem ~succeeded entries

(* Destination pass over a record body: with the flit mode on,
   [Pcas.persist_range] elides lines whose tracked stores (Node.store)
   already issued their write-backs; off, the plain range flush. *)
let persist_record t p nwords =
  if Pool.persistent t.pool then
    Pmwcas.Pcas.persist_range t.mem ~lo:p ~hi:(p + nwords - 1)

(* Journey read of a mapping word: with destination-only persistence on,
   traversal skips the flush-on-read write-back and fence. A plain dirty
   value was installed by a durably-decided op (recovery rolls it
   forward), and an install that targets it claims it in place via
   [Op.install_rdcss]'s dirty-expected branch. *)
let jread t a =
  if Nvram.Flit.enabled () then Op.read_weak t.pool a else Op.read t.pool a

let clwb_if t a = if Pool.persistent t.pool then Mem.clwb t.mem a
let fence_if t = if Pool.persistent t.pool then Mem.fence t.mem

let rebuild_free_lpids t =
  let next = Pmwcas.Pcas.read t.mem t.next_lpid_addr in
  let free = ref [] in
  for lpid = 2 to next - 1 do
    if Flags.payload (Mem.read t.mem (map_addr t lpid)) = 0 then
      free := lpid :: !free
  done;
  Atomic.set t.free_lpids !free

let create ?(config = default_config) ~pool ~palloc ~anchor ~map_base
    ~map_words () =
  let mem = Pool.mem pool in
  if map_words < 8 then invalid_arg "Bwtree: mapping table too small";
  let cb = Pool.register_callback pool (free_chain_callback mem) in
  let t =
    {
      pool;
      palloc;
      mem;
      root = 1;
      map_base;
      map_words;
      next_lpid_addr = anchor + 2;
      free_lpids = Atomic.make [];
      cb;
      cfg = config;
      n_consolidations = Atomic.make 0;
      n_splits = Atomic.make 0;
      n_root_splits = Atomic.make 0;
      n_merges = Atomic.make 0;
    }
  in
  if Mem.read mem anchor = magic then begin
    let t =
      {
        t with
        map_base = Mem.read mem (anchor + 3);
        map_words = Mem.read mem (anchor + 4);
        cfg =
          {
            consolidate_len = Mem.read mem (anchor + 5);
            split_max = Mem.read mem (anchor + 6);
            merge_min = Mem.read mem (anchor + 7);
          };
      }
    in
    rebuild_free_lpids t;
    t
  end
  else begin
    (* Idempotent format: the root page delivers into its mapping slot;
       magic is written last. *)
    if Mem.read mem (map_addr t t.root) = 0 then begin
      let pa = Palloc.register_thread palloc in
      let p =
        Palloc.alloc pa ~nwords:(Node.base_words ~count:0)
          ~dest:(map_addr t t.root)
      in
      Node.write_base mem p
        {
          kind = `Leaf;
          count = 0;
          low = 0;
          high = Node.plus_inf;
          link = 0;
          keys = [||];
          payloads = [||];
        };
      persist_record t p (Node.base_words ~count:0);
      (* Delivery in Palloc.alloc already persisted the mapping slot. *)
      Palloc.release_thread pa
    end;
    Mem.write mem (anchor + 1) t.root;
    Mem.write mem t.next_lpid_addr 2;
    Mem.write mem (anchor + 3) map_base;
    Mem.write mem (anchor + 4) map_words;
    Mem.write mem (anchor + 5) config.consolidate_len;
    Mem.write mem (anchor + 6) config.split_max;
    Mem.write mem (anchor + 7) config.merge_min;
    (* Root record durable before any durable magic can reference it. *)
    fence_if t;
    Mem.write mem anchor magic;
    clwb_if t anchor;
    fence_if t;
    t
  end

let attach ~pool ~palloc ~anchor =
  let mem = Pool.mem pool in
  if Mem.read mem anchor <> magic then failwith "Bwtree.attach: not formatted";
  let cb = Pool.register_callback pool (free_chain_callback mem) in
  let t =
    {
      pool;
      palloc;
      mem;
      root = Mem.read mem (anchor + 1);
      map_base = Mem.read mem (anchor + 3);
      map_words = Mem.read mem (anchor + 4);
      next_lpid_addr = anchor + 2;
      free_lpids = Atomic.make [];
      cb;
      cfg =
        {
          consolidate_len = Mem.read mem (anchor + 5);
          split_max = Mem.read mem (anchor + 6);
          merge_min = Mem.read mem (anchor + 7);
        };
      n_consolidations = Atomic.make 0;
      n_splits = Atomic.make 0;
      n_root_splits = Atomic.make 0;
      n_merges = Atomic.make 0;
    }
  in
  rebuild_free_lpids t;
  t

let register t =
  let ph = Pool.register t.pool in
  (* Arena affinity keyed by the pool partition (see Palloc): keeps each
     domain's page allocations on its own heap shard. *)
  { t; ph; pa = Palloc.register_thread ~arena:(Pool.handle_part ph) t.palloc }

let unregister h =
  Pool.unregister h.ph;
  Palloc.release_thread h.pa

let alloc_lpid h =
  let t = h.t in
  let rec pop () =
    match Atomic.get t.free_lpids with
    | [] ->
        let rec bump () =
          let cur = Pmwcas.Pcas.read t.mem t.next_lpid_addr in
          if cur >= t.map_words then failwith "Bwtree: mapping table full";
          let ok =
            if Pool.persistent t.pool then
              Pmwcas.Pcas.cas_durable t.mem t.next_lpid_addr ~expected:cur
                ~desired:(cur + 1)
            else
              Mem.cas_bool t.mem t.next_lpid_addr ~expected:cur
                ~desired:(cur + 1)
          in
          if ok then cur else bump ()
        in
        bump ()
    | lpid :: rest as old ->
        if Atomic.compare_and_set t.free_lpids old rest then lpid else pop ()
  in
  pop ()

let release_lpid t lpid =
  let rec push () =
    let old = Atomic.get t.free_lpids in
    if not (Atomic.compare_and_set t.free_lpids old (lpid :: old)) then push ()
  in
  push ()

(* ------------------------------------------------------------------ *)
(* Chain evaluation: fold a delta chain into a logical page image.     *)

type image = {
  kind : [ `Leaf | `Inner ];
  low : int;
  high : int;
  link : int; (* right-sibling lpid (leaf) / leftmost child (inner) *)
  pairs : (int * int) list; (* ascending keys *)
}

let rec upsert pairs k v =
  match pairs with
  | [] -> [ (k, v) ]
  | (k', _) :: rest when k' = k -> (k, v) :: rest
  | ((k', _) as hd) :: rest when k' < k -> hd :: upsert rest k v
  | _ -> (k, v) :: pairs

let remove_key pairs k = List.filter (fun (k', _) -> k' <> k) pairs

(* Corrupt crash images can link delta records into cycles; every chain
   walk carries a step budget far above any legal chain length so
   verification on a broken image fails loudly instead of looping (or
   accumulating an unbounded image). *)
let chain_budget t = (2 * Mem.size t.mem) + 64

let chain_guard t =
  let budget = ref (chain_budget t) in
  fun () ->
    decr budget;
    if !budget < 0 then failwith "Bwtree: delta chain exceeded walk budget"

let eval t ptr =
  let mem = t.mem in
  let tick = chain_guard t in
  let rec go ptr =
    tick ();
    let f i = Node.field mem ptr i in
    match Node.read_tag mem ptr with
    | Node.Put ->
        let img = go (f 1) in
        { img with pairs = upsert img.pairs (f 2) (f 3) }
    | Node.Del ->
        let img = go (f 1) in
        { img with pairs = remove_key img.pairs (f 2) }
    | Node.Index_entry ->
        let img = go (f 1) in
        { img with pairs = upsert img.pairs (f 2) (f 3) }
    | Node.Index_del ->
        let img = go (f 1) in
        { img with pairs = remove_key img.pairs (f 2) }
    | Node.Leaf_split ->
        let img = go (f 1) in
        let sep = f 2 in
        {
          img with
          pairs = List.filter (fun (k, _) -> k < sep) img.pairs;
          high = sep;
          link = f 3;
        }
    | Node.Inner_split ->
        let img = go (f 1) in
        let sep = f 2 in
        {
          img with
          pairs = List.filter (fun (k, _) -> k < sep) img.pairs;
          high = sep;
        }
    | Node.Merge ->
        let left = go (f 1) in
        let victim = go (f 2) in
        {
          left with
          pairs = left.pairs @ victim.pairs;
          high = f 4;
          link = f 5;
        }
    | Node.Leaf_base | Node.Inner_base ->
        let b = Node.read_base mem ptr in
        {
          kind = b.kind;
          low = b.low;
          high = b.high;
          link = b.link;
          pairs =
            List.init b.count (fun i -> (b.keys.(i), b.payloads.(i)));
        }
  in
  go ptr

let write_image t p img =
  let pairs = Array.of_list img.pairs in
  Node.write_base t.mem p
    {
      kind = img.kind;
      count = Array.length pairs;
      low = img.low;
      high = img.high;
      link = img.link;
      keys = Array.map fst pairs;
      payloads = Array.map snd pairs;
    };
  persist_record t p (Node.base_words ~count:(Array.length pairs))

(* ------------------------------------------------------------------ *)
(* Traversal.                                                           *)

(* Walk a leaf chain resolving [key]. Returns the value decision and the
   number of delta records, or jumps to a sibling after a split. *)
let route_leaf t ~key top =
  let mem = t.mem in
  let tick = chain_guard t in
  let rec walk ptr len found =
    tick ();
    let f i = Node.field mem ptr i in
    match Node.read_tag mem ptr with
    | Node.Put ->
        let found =
          if found = None && f 2 = key then Some (Some (f 3)) else found
        in
        walk (f 1) (len + 1) found
    | Node.Del ->
        let found = if found = None && f 2 = key then Some None else found in
        walk (f 1) (len + 1) found
    | Node.Leaf_split ->
        if key >= f 2 then `Jump (f 3) else walk (f 1) (len + 1) found
    | Node.Merge ->
        let branch = if key >= f 3 then f 2 else f 1 in
        walk branch (len + 1) found
    | Node.Leaf_base ->
        if key < f 2 || key >= f 3 then `Restart
        else
          let value =
            match found with
            | Some v -> v
            | None -> Node.base_find mem ptr ~key
          in
          `Value (value, len)
    | Node.Inner_base | Node.Index_entry | Node.Index_del | Node.Inner_split
      ->
        failwith "Bwtree: inner record in a leaf chain"
  in
  walk top 0 None

(* Walk an inner chain routing [key]. *)
let route_inner t ~key top =
  let mem = t.mem in
  let decided : (int, int option) Hashtbl.t = Hashtbl.create 8 in
  let best = ref None in
  let consider sep child =
    match !best with
    | Some (s, _) when s >= sep -> ()
    | _ -> best := Some (sep, child)
  in
  let tick = chain_guard t in
  let rec walk ptr len =
    tick ();
    let f i = Node.field mem ptr i in
    match Node.read_tag mem ptr with
    | Node.Index_entry ->
        let sep = f 2 in
        if not (Hashtbl.mem decided sep) then begin
          Hashtbl.add decided sep (Some (f 3));
          if sep <= key then consider sep (f 3)
        end;
        walk (f 1) (len + 1)
    | Node.Index_del ->
        let sep = f 2 in
        if not (Hashtbl.mem decided sep) then Hashtbl.add decided sep None;
        walk (f 1) (len + 1)
    | Node.Inner_split ->
        if key >= f 2 then `Jump (f 3) else walk (f 1) (len + 1)
    | Node.Inner_base ->
        if key < f 2 || key >= f 3 then `Restart
        else begin
          (* Largest base separator <= key not overridden by a delta. *)
          let count = f 1 in
          let rec base_candidate i =
            if i < 0 then None
            else
              let k = Mem.read mem (ptr + 5 + i) in
              if Hashtbl.mem decided k then base_candidate (i - 1)
              else Some (k, Mem.read mem (ptr + 5 + count + i))
          in
          let floor =
            (* index of largest key <= key *)
            let lo = ref 0 and hi = ref (count - 1) and res = ref (-1) in
            while !lo <= !hi do
              let mid = (!lo + !hi) / 2 in
              if Mem.read mem (ptr + 5 + mid) <= key then begin
                res := mid;
                lo := mid + 1
              end
              else hi := mid - 1
            done;
            !res
          in
          (match base_candidate floor with
          | Some (sep, child) -> consider sep child
          | None -> ());
          let child =
            match !best with Some (_, c) -> c | None -> f 4 (* leftmost *)
          in
          `Child (child, len)
        end
    | Node.Leaf_base | Node.Put | Node.Del | Node.Leaf_split | Node.Merge ->
        failwith "Bwtree: leaf record in an inner chain"
  in
  walk top 0

let chain_kind t top =
  match Node.read_tag t.mem top with
  | Node.Leaf_base | Node.Put | Node.Del | Node.Leaf_split | Node.Merge ->
      `Leaf
  | Node.Inner_base | Node.Index_entry | Node.Index_del | Node.Inner_split ->
      `Inner

(* Find the leaf for [key]. Returns
   ((lpid, mapping value, value decision, delta count, ancestor path),
    consolidation hints). Must run inside an epoch. *)
let traverse t ~key =
  let hints = ref [] in
  let hint lpid path len =
    if len >= t.cfg.consolidate_len then hints := (lpid, path) :: !hints
  in
  let restarts = ref 0 in
  let rec from_root () =
    incr restarts;
    if !restarts > 10_000 then failwith "Bwtree: traversal livelock";
    go t.root []
  and go lpid path =
    let top = jread t (map_addr t lpid) in
    if top = 0 then from_root ()
    else
      match chain_kind t top with
      | `Leaf -> (
          match route_leaf t ~key top with
          | `Value (v, len) ->
              hint lpid path len;
              ((lpid, top, v, len, path), !hints)
          | `Jump lpid' -> go lpid' path
          | `Restart -> from_root ())
      | `Inner -> (
          match route_inner t ~key top with
          | `Child (child, len) ->
              hint lpid path len;
              go child (path @ [ lpid ])
          | `Jump lpid' -> go lpid' path
          | `Restart -> from_root ())
  in
  from_root ()

(* ------------------------------------------------------------------ *)
(* Structure maintenance (opportunistic, one PMwCAS each).              *)

(* Install a freshly allocated record via ReserveEntry + the persistent
   allocator, returning its address. *)
let reserve_record h d ~addr ~expected ~nwords writer =
  let dest =
    Pool.reserve_entry ~policy:Layout.Free_new_on_failure d ~addr ~expected
  in
  let p = Palloc.alloc ~reserved:true h.pa ~nwords ~dest in
  writer p;
  persist_record h.t p nwords;
  p

let split_images img ~sep_index =
  let pairs = Array.of_list img.pairs in
  let m = sep_index in
  let sep = fst pairs.(m) in
  match img.kind with
  | `Leaf ->
      let left_pairs = Array.to_list (Array.sub pairs 0 m) in
      let right_pairs =
        Array.to_list (Array.sub pairs m (Array.length pairs - m))
      in
      ( sep,
        { img with pairs = left_pairs; high = sep },
        { img with pairs = right_pairs; low = sep } )
  | `Inner ->
      let left_pairs = Array.to_list (Array.sub pairs 0 m) in
      let right_pairs =
        Array.to_list (Array.sub pairs (m + 1) (Array.length pairs - m - 1))
      in
      ( sep,
        { img with pairs = left_pairs; high = sep },
        { img with pairs = right_pairs; low = sep; link = snd pairs.(m) } )

let try_split h lpid path =
  let t = h.t in
  let d = Pool.alloc_desc h.ph in
  let outcome =
    Pool.with_epoch h.ph (fun () ->
        let top = jread t (map_addr t lpid) in
        if top = 0 then begin
          Pool.discard d;
          `Done
        end
        else begin
          let img = eval t top in
          let n = List.length img.pairs in
          if n < 4 then begin
            Pool.discard d;
            `Done
          end
          else begin
            let sep, left, right = split_images img ~sep_index:(n / 2) in
            match path with
            | [] ->
                (* Root split: re-home the old chain under a fresh LPID and
                   swing the fixed root to a new inner page — one PMwCAS. *)
                let l_lpid = alloc_lpid h and r_lpid = alloc_lpid h in
                ignore
                  (reserve_record h d ~addr:(map_addr t t.root) ~expected:top
                     ~nwords:(Node.base_words ~count:1) (fun p ->
                       Node.write_base t.mem p
                         {
                           kind = `Inner;
                           count = 1;
                           low = img.low;
                           high = img.high;
                           link = l_lpid;
                           keys = [| sep |];
                           payloads = [| r_lpid |];
                         }));
                ignore
                  (reserve_record h d ~addr:(map_addr t l_lpid) ~expected:0
                     ~nwords:(Node.delta_words Node.Leaf_split) (fun p ->
                       Node.write_split t.mem p ~kind:img.kind ~next:top ~sep
                         ~right:r_lpid));
                ignore
                  (reserve_record h d ~addr:(map_addr t r_lpid) ~expected:0
                     ~nwords:
                       (Node.base_words ~count:(List.length right.pairs))
                     (fun p -> write_image t p right));
                ignore left;
                if Op.execute d then begin
                  ignore (Atomic.fetch_and_add t.n_root_splits 1);
                  `Done
                end
                else begin
                  release_lpid t l_lpid;
                  release_lpid t r_lpid;
                  `Done
                end
            | _ ->
                let parent = List.nth path (List.length path - 1) in
                let ptop = jread t (map_addr t parent) in
                if ptop = 0 then begin
                  Pool.discard d;
                  `Done
                end
                else begin
                  let r_lpid = alloc_lpid h in
                  ignore
                    (reserve_record h d ~addr:(map_addr t lpid) ~expected:top
                       ~nwords:(Node.delta_words Node.Leaf_split) (fun p ->
                         Node.write_split t.mem p ~kind:img.kind ~next:top
                           ~sep ~right:r_lpid));
                  ignore
                    (reserve_record h d ~addr:(map_addr t r_lpid) ~expected:0
                       ~nwords:
                         (Node.base_words ~count:(List.length right.pairs))
                       (fun p -> write_image t p right));
                  ignore
                    (reserve_record h d ~addr:(map_addr t parent)
                       ~expected:ptop
                       ~nwords:(Node.delta_words Node.Index_entry) (fun p ->
                         Node.write_index_entry t.mem p ~next:ptop ~sep
                           ~child:r_lpid));
                  if Op.execute d then begin
                    ignore (Atomic.fetch_and_add t.n_splits 1);
                    `Done
                  end
                  else begin
                    release_lpid t r_lpid;
                    `Done
                  end
                end
          end
        end)
  in
  match outcome with `Done -> ()

let try_merge h lpid path =
  let t = h.t in
  let d = Pool.alloc_desc h.ph in
  Pool.with_epoch h.ph (fun () ->
      let give_up () = Pool.discard d in
      match path with
      | [] -> give_up ()
      | _ -> (
          let parent = List.nth path (List.length path - 1) in
          let ptop = jread t (map_addr t parent) in
          let rtop = jread t (map_addr t lpid) in
          if ptop = 0 || rtop = 0 then give_up ()
          else
            let pimg = eval t ptop in
            if pimg.kind <> `Inner then give_up ()
            else
              (* Locate our entry in the parent; the previous entry (or the
                 leftmost child) is our left sibling. *)
              let rec locate prev = function
                | [] -> None
                | (sep, child) :: rest ->
                    if child = lpid then Some (sep, prev)
                    else locate child rest
              in
              match locate pimg.link pimg.pairs with
              | None -> give_up () (* leftmost child or stale path *)
              | Some (sep, left_lpid) -> (
                  let ltop = jread t (map_addr t left_lpid) in
                  if ltop = 0 then give_up ()
                  else
                    let rimg = eval t rtop in
                    if rimg.kind <> `Leaf || chain_kind t ltop <> `Leaf then
                      give_up ()
                    else begin
                      ignore
                        (reserve_record h d ~addr:(map_addr t left_lpid)
                           ~expected:ltop
                           ~nwords:(Node.delta_words Node.Merge) (fun p ->
                             Node.write_merge t.mem p ~next:ltop
                               ~victim_top:rtop ~sep ~new_high:rimg.high
                               ~new_right:rimg.link));
                      ignore
                        (reserve_record h d ~addr:(map_addr t parent)
                           ~expected:ptop
                           ~nwords:(Node.delta_words Node.Index_del)
                           (fun p ->
                             Node.write_index_del t.mem p ~next:ptop ~sep
                               ~victim:lpid));
                      Pool.add_word d ~addr:(map_addr t lpid) ~expected:rtop
                        ~desired:0;
                      if Op.execute d then begin
                        ignore (Atomic.fetch_and_add t.n_merges 1);
                        (* Recycle the LPID once no reader can still be
                           routing through it. *)
                        Epoch.defer (Pool.guard h.ph) (fun () ->
                            release_lpid t lpid)
                      end
                    end)))

let try_consolidate h lpid path =
  let t = h.t in
  let d = Pool.alloc_desc ~callback:t.cb h.ph in
  let action =
    Pool.with_epoch h.ph (fun () ->
        let top = jread t (map_addr t lpid) in
        if top = 0 then begin
          Pool.discard d;
          `None
        end
        else
          match Node.read_tag t.mem top with
          | Node.Leaf_base | Node.Inner_base ->
              (* Already consolidated. *)
              Pool.discard d;
              `None
          | _ ->
              let img = eval t top in
              let n = List.length img.pairs in
              if n >= t.cfg.split_max then begin
                Pool.discard d;
                `Split
              end
              else if
                img.kind = `Leaf && n <= t.cfg.merge_min && lpid <> t.root
                && path <> []
              then begin
                Pool.discard d;
                `Merge
              end
              else begin
                ignore
                  (reserve_record h d ~addr:(map_addr t lpid) ~expected:top
                     ~nwords:(Node.base_words ~count:n) (fun p ->
                       write_image t p img));
                if Op.execute d then
                  ignore (Atomic.fetch_and_add t.n_consolidations 1);
                `None
              end)
  in
  match action with
  | `None -> ()
  | `Split -> try_split h lpid path
  | `Merge -> try_merge h lpid path

let run_hints h hints =
  let seen = Hashtbl.create 4 in
  List.iter
    (fun (lpid, path) ->
      if not (Hashtbl.mem seen lpid) then begin
        Hashtbl.add seen lpid ();
        try_consolidate h lpid path
      end)
    hints

(* ------------------------------------------------------------------ *)
(* Record operations.                                                   *)

let check_kv ~key ~value =
  if key < 0 || key > Flags.max_payload then invalid_arg "Bwtree: key";
  if value < 0 || value > Flags.max_payload then invalid_arg "Bwtree: value"

(* Install one leaf delta, provided the chain did not move since we
   resolved [key] against it — which makes the lookup + install pair
   linearizable at the mapping-entry CAS. [eager_hint] forces a
   maintenance pass on the target leaf at half the usual chain length —
   deletes use it so that a page emptied by the last deletes reaching it
   still gets considered for a merge. *)
let leaf_delta_op ?(eager_hint = false) h ~key decide =
  let t = h.t in
  let rec attempt () =
    let d = Pool.alloc_desc h.ph in
    let res =
      Pool.with_epoch h.ph (fun () ->
          let (lpid, top, value, len, path), hints = traverse t ~key in
          match decide value with
          | `Skip result ->
              Pool.discard d;
              `Done (result, hints)
          | `Install (write, result) ->
              let nwords, writer = write in
              (* No destination flush of the expected mapping word: a
                 still-dirty value is claimed in place by
                 [Op.install_rdcss]; this descriptor's sealed old-field
                 is the rollback record. *)
              ignore
                (reserve_record h d ~addr:(map_addr t lpid) ~expected:top
                   ~nwords (fun p -> writer p top));
              if Op.execute d then begin
                let hints =
                  if
                    eager_hint
                    && len + 1 >= max 2 (t.cfg.consolidate_len / 2)
                  then (lpid, path) :: hints
                  else hints
                in
                `Done (result, hints)
              end
              else `Retry)
    in
    match res with
    | `Retry -> attempt ()
    | `Done (result, hints) ->
        run_hints h hints;
        result
  in
  attempt ()

(* Whole-operation latency (traverse + delta install + retries +
   triggered maintenance), shared across put/insert/remove/get: one
   combined curve per structure, matching [Skiplist.Pm]. *)
let op_hist = Telemetry.on_demand "bwtree.op_ns"

let record_op t0 =
  if t0 <> 0 then
    Telemetry.Histogram.record (op_hist ()) (Telemetry.now_ns () - t0)

let put_impl h ~key ~value =
  check_kv ~key ~value;
  leaf_delta_op h ~key (fun old ->
      `Install
        ( ( Node.delta_words Node.Put,
            fun p top -> Node.write_put h.t.mem p ~next:top ~key ~value ),
          old ))

let insert_impl h ~key ~value =
  check_kv ~key ~value;
  leaf_delta_op h ~key (fun old ->
      match old with
      | Some _ -> `Skip false
      | None ->
          `Install
            ( ( Node.delta_words Node.Put,
                fun p top -> Node.write_put h.t.mem p ~next:top ~key ~value ),
              true ))

let remove_impl h ~key =
  if key < 0 || key > Flags.max_payload then invalid_arg "Bwtree: key";
  leaf_delta_op ~eager_hint:true h ~key (fun old ->
      match old with
      | None -> `Skip false
      | Some _ ->
          `Install
            ( ( Node.delta_words Node.Del,
                fun p top -> Node.write_del h.t.mem p ~next:top ~key ),
              true ))

let get_impl h ~key =
  if key < 0 || key > Flags.max_payload then invalid_arg "Bwtree: key";
  let t = h.t in
  let (_, _, value, _, _), hints =
    Pool.with_epoch h.ph (fun () -> traverse t ~key)
  in
  run_hints h hints;
  value

(* Latency sampling + flight-recorder op span around each public op;
   closed on the exception path too so crash-unwound ops are visible in
   forensics timelines. *)
let with_span op ~key ~ok f =
  let t0 =
    if Telemetry.enabled () && Telemetry.sample () then Telemetry.now_ns ()
    else 0
  in
  let sp = Flight.op_begin ~op ~key in
  match f () with
  | r ->
      Flight.op_end sp ~op ~key ~ok:(ok r);
      record_op t0;
      r
  | exception e ->
      Flight.op_cancel sp ~op ~key;
      raise e

let put h ~key ~value =
  with_span Flight.op_bt_put ~key
    ~ok:(fun _ -> true)
    (fun () -> put_impl h ~key ~value)

let insert h ~key ~value =
  with_span Flight.op_bt_insert ~key ~ok:Fun.id (fun () ->
      insert_impl h ~key ~value)

let remove h ~key =
  with_span Flight.op_bt_remove ~key ~ok:Fun.id (fun () -> remove_impl h ~key)

let get h ~key =
  with_span Flight.op_bt_get ~key ~ok:Option.is_some (fun () ->
      get_impl h ~key)

let fold_range h ~lo ~hi ~init ~f =
  let t = h.t in
  let rec scan acc lo =
    if lo > hi then acc
    else
      let step =
        Pool.with_epoch h.ph (fun () ->
            let (lpid, _, _, _, _), _ = traverse t ~key:lo in
            let top = jread t (map_addr t lpid) in
            if top = 0 then `Again lo
            else
              let img = eval t top in
              let acc =
                List.fold_left
                  (fun acc (k, v) ->
                    if k >= lo && k <= hi then f acc ~key:k ~value:v else acc)
                  acc img.pairs
              in
              if img.high > hi || img.high >= Node.plus_inf then `Stop acc
              else `More (acc, img.high))
      in
      match step with
      | `Stop acc -> acc
      | `More (acc, next_lo) -> scan acc next_lo
      | `Again lo -> scan acc lo
  in
  scan init lo

let length h =
  fold_range h ~lo:0 ~hi:Node.plus_inf ~init:0 ~f:(fun acc ~key:_ ~value:_ ->
      acc + 1)

(* ------------------------------------------------------------------ *)
(* Introspection.                                                       *)

type stats = {
  height : int;
  leaf_pages : int;
  inner_pages : int;
  chain_records : int;
  consolidations : int;
  splits : int;
  root_splits : int;
  merges : int;
}

let chain_length t ptr =
  let tick = chain_guard t in
  let rec go ptr =
    tick ();
    match Node.read_tag t.mem ptr with
    | Node.Leaf_base | Node.Inner_base -> 1
    | Node.Merge -> 1 + go (Node.next t.mem ptr) + go (Node.field t.mem ptr 2)
    | _ -> 1 + go (Node.next t.mem ptr)
  in
  go ptr

let stats h =
  let t = h.t in
  Pool.with_epoch h.ph (fun () ->
      let leaves = ref 0
      and inners = ref 0
      and records = ref 0
      and height = ref 0 in
      let rec walk lpid depth =
        let top = Op.read t.pool (map_addr t lpid) in
        if top <> 0 then begin
          records := !records + chain_length t top;
          let img = eval t top in
          match img.kind with
          | `Leaf ->
              incr leaves;
              if depth + 1 > !height then height := depth + 1
          | `Inner ->
              incr inners;
              walk img.link (depth + 1);
              List.iter (fun (_, child) -> walk child (depth + 1)) img.pairs
        end
      in
      walk t.root 0;
      {
        height = !height;
        leaf_pages = !leaves;
        inner_pages = !inners;
        chain_records = !records;
        consolidations = Atomic.get t.n_consolidations;
        splits = Atomic.get t.n_splits;
        root_splits = Atomic.get t.n_root_splits;
        merges = Atomic.get t.n_merges;
      })

let pp_stats ppf s =
  Format.fprintf ppf
    "height=%d leaves=%d inners=%d records=%d consolidations=%d splits=%d \
     root_splits=%d merges=%d"
    s.height s.leaf_pages s.inner_pages s.chain_records s.consolidations
    s.splits s.root_splits s.merges

let check_invariants h =
  let t = h.t in
  let fail fmt = Printf.ksprintf failwith fmt in
  Pool.with_epoch h.ph (fun () ->
      let leaves = ref [] in
      let leaf_depth = ref (-1) in
      let reachable = Hashtbl.create 64 in
      let rec check lpid ~low ~high ~depth =
        if Hashtbl.mem reachable lpid then fail "lpid %d reachable twice" lpid;
        Hashtbl.add reachable lpid ();
        let top = Op.read t.pool (map_addr t lpid) in
        if top = 0 then fail "reachable lpid %d is unmapped" lpid;
        let img = eval t top in
        if img.low <> low then
          fail "lpid %d: low %d, expected %d" lpid img.low low;
        if img.high <> high then
          fail "lpid %d: high %d, expected %d" lpid img.high high;
        let rec sorted = function
          | (a, _) :: ((b, _) :: _ as rest) ->
              if a >= b then fail "lpid %d: keys out of order" lpid;
              sorted rest
          | _ -> ()
        in
        sorted img.pairs;
        List.iter
          (fun (k, _) ->
            if k < low || k >= high then
              fail "lpid %d: key %d outside [%d,%d)" lpid k low high)
          img.pairs;
        match img.kind with
        | `Leaf ->
            if !leaf_depth = -1 then leaf_depth := depth
            else if !leaf_depth <> depth then
              fail "lpid %d: leaf depth %d, expected %d" lpid depth !leaf_depth;
            leaves := (lpid, img) :: !leaves
        | `Inner ->
            let rec children lo link = function
              | [] -> check link ~low:lo ~high ~depth:(depth + 1)
              | (sep, child) :: rest ->
                  check link ~low:lo ~high:sep ~depth:(depth + 1);
                  children sep child rest
            in
            children low img.link img.pairs
      in
      check t.root ~low:0 ~high:Node.plus_inf ~depth:0;
      (* Side links must thread the in-order leaf sequence. *)
      let leaves = List.rev !leaves in
      let rec thread = function
        | (l1, i1) :: (((l2, _) :: _) as rest) ->
            if i1.link <> l2 then
              fail "leaf %d: side link %d, expected %d" l1 i1.link l2;
            thread rest
        | [ (l, i) ] -> if i.link <> 0 then fail "last leaf %d links to %d" l i.link
        | [] -> ()
      in
      thread leaves;
      (* No unreachable mapped LPIDs. *)
      let next = Pmwcas.Pcas.read t.mem t.next_lpid_addr in
      for lpid = 1 to next - 1 do
        let v = Flags.payload (Op.read t.pool (map_addr t lpid)) in
        if v <> 0 && not (Hashtbl.mem reachable lpid) then
          fail "mapped lpid %d unreachable" lpid
      done)

let quiesce h =
  ignore (Epoch.advance (Pool.epoch h.t.pool));
  ignore (Epoch.reclaim (Pool.guard h.ph))

let consolidate_all h =
  let t = h.t in
  let targets =
    Pool.with_epoch h.ph (fun () ->
        let acc = ref [] in
        let rec walk lpid path =
          let top = Op.read t.pool (map_addr t lpid) in
          if top <> 0 then begin
            acc := (lpid, path) :: !acc;
            let img = eval t top in
            match img.kind with
            | `Leaf -> ()
            | `Inner ->
                walk img.link (path @ [ lpid ]);
                List.iter
                  (fun (_, child) -> walk child (path @ [ lpid ]))
                  img.pairs
          end
        in
        walk t.root [];
        !acc)
  in
  List.iter
    (fun (lpid, path) ->
      let d = Pool.alloc_desc ~callback:t.cb h.ph in
      Pool.with_epoch h.ph (fun () ->
          let top = Op.read t.pool (map_addr t lpid) in
          match
            if top = 0 then None
            else
              match Node.read_tag t.mem top with
              | Node.Leaf_base | Node.Inner_base -> None
              | _ -> Some (eval t top)
          with
          | None -> Pool.discard d
          | Some img ->
              ignore
                (reserve_record h d ~addr:(map_addr t lpid) ~expected:top
                   ~nwords:(Node.base_words ~count:(List.length img.pairs))
                   (fun p -> write_image t p img));
              if Op.execute d then
                ignore (Atomic.fetch_and_add t.n_consolidations 1));
      ignore path)
    targets
