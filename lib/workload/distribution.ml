type spec =
  | Uniform of int
  | Zipfian of { n : int; theta : float; scrambled : bool }
  | Hotspot of { n : int; hot_fraction : float; hot_probability : float }

type t =
  | U of int
  | Z of {
      n : int;
      theta : float;
      alpha : float;
      zetan : float;
      eta : float;
      scrambled : bool;
    }
  | H of { n : int; hot_n : int; hot_probability : float }

let zeta n theta =
  let s = ref 0. in
  for i = 1 to n do
    s := !s +. (1. /. Float.pow (float_of_int i) theta)
  done;
  !s

let create = function
  | Uniform n ->
      if n <= 0 then invalid_arg "Distribution: n <= 0";
      U n
  | Zipfian { n; theta; scrambled } ->
      if n <= 0 then invalid_arg "Distribution: n <= 0";
      if theta < 0. || theta >= 1. then invalid_arg "Distribution: theta";
      if n = 1 then (* eta's (2/n)^(1-theta) term is meaningless at n=1;
                       a one-key Zipfian is just the constant 0 *)
        U 1
      else
      let zetan = zeta n theta in
      let zeta2 = zeta 2 theta in
      let alpha = 1. /. (1. -. theta) in
      let eta =
        (1. -. Float.pow (2. /. float_of_int n) (1. -. theta))
        /. (1. -. (zeta2 /. zetan))
      in
      Z { n; theta; alpha; zetan; eta; scrambled }
  | Hotspot { n; hot_fraction; hot_probability } ->
      if n <= 0 then invalid_arg "Distribution: n <= 0";
      if hot_fraction <= 0. || hot_fraction > 1. then
        invalid_arg "Distribution: hot_fraction";
      if hot_probability < 0. || hot_probability > 1. then
        invalid_arg "Distribution: hot_probability";
      (* hot_fraction * n can round to 0 (tiny fraction) or reach n
         (fraction ~1, or n = 1): clamp into [1, n] so both the hot and
         the cold draw below stay well-defined. *)
      H
        {
          n;
          hot_n = min n (max 1 (int_of_float (hot_fraction *. float_of_int n)));
          hot_probability;
        }

(* Fibonacci-hash scramble, bijective over 61-bit ints modulo masking. *)
let scramble n rank = rank * 0x2545F4914F6CDD1D land max_int mod n

let next t rng =
  match t with
  | U n -> Random.State.int rng n
  | Z { n; theta; alpha; zetan; eta; scrambled } ->
      let u = Random.State.float rng 1.0 in
      let uz = u *. zetan in
      let rank =
        if uz < 1.0 then 0
        else if uz < 1.0 +. Float.pow 0.5 theta then 1
        else
          int_of_float
            (float_of_int n *. Float.pow ((eta *. u) -. eta +. 1.) alpha)
      in
      let rank = if rank >= n then n - 1 else rank in
      if scrambled then scramble n rank else rank
  | H { n; hot_n; hot_probability } ->
      (* When every key is hot there is no cold region to fall back to —
         the old [hot_n + int (max 1 (n - hot_n))] drew the out-of-range
         index [n] in that case. *)
      if hot_n >= n || Random.State.float rng 1.0 < hot_probability then
        Random.State.int rng hot_n
      else hot_n + Random.State.int rng (n - hot_n)

let n = function U n -> n | Z { n; _ } -> n | H { n; _ } -> n

let describe = function
  | Uniform n -> Printf.sprintf "uniform(%d)" n
  | Zipfian { n; theta; scrambled } ->
      Printf.sprintf "zipf(%d,%.2f%s)" n theta (if scrambled then ",scr" else "")
  | Hotspot { n; hot_fraction; hot_probability } ->
      Printf.sprintf "hotspot(%d,%.0f%%->%.0f%%)" n (hot_fraction *. 100.)
        (hot_probability *. 100.)
