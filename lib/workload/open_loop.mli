(** Open-loop (arrival-rate driven) load generation.

    Requests are scheduled by an interarrival process at a fixed offered
    rate, independent of service speed, and each recorded latency is
    [completion - scheduled_arrival] — so queueing delay behind a slow
    service inflates the tail instead of silently throttling the load
    (no coordinated omission). *)

type arrival =
  | Uniform  (** One request every [1/rate] seconds. *)
  | Poisson  (** Exponential interarrival with mean [1/rate]. *)

type result = {
  issued : int;
  completed : int;
  elapsed_ns : int;  (** First scheduled arrival to last completion. *)
  achieved_rate : float;  (** Completions per second of elapsed time. *)
}

val run :
  ?arrival:arrival ->
  ?seed:int ->
  rate:float ->
  ops:int ->
  latencies:Telemetry.Histogram.t ->
  (int -> unit) ->
  result
(** [run ~rate ~ops ~latencies exec] issues [ops] calls of [exec i] on
    the calling domain, each due at its scheduled arrival (busy-waiting
    when early), recording [completion - due] into [latencies]
    unconditionally. One driver per domain; give each a distinct [seed]. *)
