(* Open-loop (arrival-rate driven) load generation.

   A closed loop issues the next request only after the previous one
   completes, so a slow service quietly throttles its own offered load
   and the measured latencies hide queueing delay — the classic
   coordinated-omission trap. This driver instead fixes the arrival
   schedule up front: request [i] is {e due} at a timestamp drawn from
   the interarrival process regardless of how the service is doing, and
   its recorded latency is [completion - scheduled_arrival]. A stalled
   service therefore shows up as growing tail latency (requests complete
   long after they were due), exactly as a queueing client would see. *)

type arrival =
  | Uniform  (** Deterministic interarrival: one request every [1/rate]. *)
  | Poisson  (** Exponential interarrival with mean [1/rate]. *)

type result = {
  issued : int;
  completed : int;
  elapsed_ns : int;  (** First scheduled arrival to last completion. *)
  achieved_rate : float;  (** Completions per second of elapsed time. *)
}

let interarrival_ns arrival rng rate =
  let mean = 1e9 /. rate in
  match arrival with
  | Uniform -> int_of_float mean
  | Poisson ->
      (* Inverse-CDF draw; bound u away from 0 so log stays finite. *)
      let u = Float.max 1e-12 (Random.State.float rng 1.0) in
      int_of_float (-.mean *. log u)

(* Run [ops] requests against [exec] at [rate] per second, recording
   [completion - scheduled_arrival] for each into [latencies]
   (unconditionally: the caller owns the histogram and may sample it with
   telemetry globally off). [exec i] receives the request index. The
   driver busy-waits until each request is due — cooperative enough for
   bench domains, and it never sleeps past a due request. *)
let run ?(arrival = Poisson) ?(seed = 42) ~rate ~ops ~latencies exec =
  if rate <= 0. then invalid_arg "Open_loop.run: rate <= 0";
  if ops < 0 then invalid_arg "Open_loop.run: ops < 0";
  let rng = Random.State.make [| seed; 0x10ad |] in
  let start = Telemetry.Clock.now_ns () in
  let due = ref start in
  let completed = ref 0 in
  for i = 0 to ops - 1 do
    while Telemetry.Clock.now_ns () < !due do
      Domain.cpu_relax ()
    done;
    exec i;
    let now = Telemetry.Clock.now_ns () in
    Telemetry.Histogram.record latencies (now - !due);
    incr completed;
    due := !due + interarrival_ns arrival rng rate
  done;
  let elapsed_ns = max 1 (Telemetry.Clock.now_ns () - start) in
  {
    issued = ops;
    completed = !completed;
    elapsed_ns;
    achieved_rate = float_of_int !completed *. 1e9 /. float_of_int elapsed_ns;
  }
