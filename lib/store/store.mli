(** Sharded persistent KV service with per-shard group commit.

    The keyspace is Fibonacci-hashed across [shards] independent shards
    on one NVRAM device; each shard owns a private region holding its
    descriptor pool, palloc heap and index (skip list or Bw-tree), so
    shards share no persistent state and recover independently — in
    parallel, via {!recover} [~domains].

    With [commit = Group], mutations flow through a per-shard
    flat-combining queue: the first waiter becomes the shard's committer
    and applies whole batches, folding the batch's skip-list updates into
    one multi-word PMwCAS so the batch persists with one flush round +
    fence per phase instead of a fence trio per op. [Per_op] is the
    uncombined baseline (every client drives its own lock-free index op).
    Reads always bypass the queue; the PMwCAS read protocol persists
    dirty words, keeping direct reads durably linearizable. *)

type index_kind = Skiplist | Bwtree
type commit = Group | Per_op

type config = {
  shards : int;
  index : index_kind;
  commit : commit;
  max_clients : int;  (** Concurrently open sessions. *)
  heap_words : int;  (** Palloc heap words per shard. *)
  map_words : int;  (** Bw-tree mapping-table words per shard. *)
  batch_limit : int;  (** Max updates folded into one merged PMwCAS. *)
}

val default_config : config

val words_needed : config -> int
(** Device words to carve for a store with this geometry. *)

type t

val create : ?config:config -> Nvram.Mem.t -> base:int -> t
(** Format a fresh store at [base] ([words_needed config] words). The
    durable superblock (geometry) is written last, so a creation crash
    leaves an unformatted region rather than a half-built store. *)

type shard_recovery = {
  shard : int;
  alloc_rolled_back : int;  (** In-flight allocations rolled back. *)
  pmwcas : Pmwcas.Recovery.stats;
}

val recover : ?domains:int -> Nvram.Mem.t -> base:int -> t * shard_recovery list
(** Re-open after a crash (or clean shutdown): reads the geometry back
    from the superblock, then runs the standard recovery stack
    ([Palloc.recover], [Recovery.run], index attach) on every shard.
    With [domains > 1] the shards are recovered in parallel across that
    many worker domains — their regions are disjoint, so no coordination
    is needed and restart latency stays flat as the shard count grows.
    @raise Failure on bad magic or a corrupt superblock. *)

(** {1 Sessions} *)

type session
(** Per-domain client state: one index handle per shard. At most
    [max_clients] sessions may be open at once; a session is not
    thread-safe. *)

val open_session : t -> session
val close_session : session -> unit

(** {1 Operations}

    Results follow the index semantics: [insert] is [false] if present,
    [update]/[delete] are [false] if absent. *)

val insert : session -> key:int -> value:int -> bool
val update : session -> key:int -> value:int -> bool
val delete : session -> key:int -> bool
val find : session -> key:int -> int option

(** {1 Introspection} *)

val mem : t -> Nvram.Mem.t
val config : t -> config
val nshards : t -> int

val shard_of : t -> int -> int
(** Shard index a key routes to. *)

val shard_bounds : t -> int -> int * int
(** [(lo, hi)] device-word bounds of shard [i]'s region — for isolation
    tests that assert traffic to one shard never touches another. *)

val shard_palloc : t -> int -> Palloc.t
val shard_pool : t -> int -> Pmwcas.Pool.t

val length : session -> int
(** Total keys across all shards (O(n)). *)

val quiesce : session -> unit
(** Advance epochs and drain deferred reclamation on every shard. *)

val check_invariants : session -> unit
(** Structural audit of every shard's index (call when quiescent).
    @raise Failure on violation. *)

(** {1 Telemetry}

    Process-global counters (all stores in the process), in the style of
    [Palloc.counters]; histograms ["store.batch_size"] and
    ["store.queue_wait_ns"] record per-batch size and enqueue-to-drain
    wait when telemetry is enabled. *)

type counters = {
  commits : int;  (** Batches drained by a committer. *)
  batched_ops : int;  (** Requests that went through a queue. *)
  merged_updates : int;  (** Updates folded into merged PMwCASes. *)
  solo_applies : int;  (** Batch requests applied one at a time. *)
  direct_applies : int;  (** [Per_op]-mode direct applies. *)
}

val counters : unit -> counters
val reset_counters : unit -> unit
val counters_to_json : unit -> Telemetry.Value.t
