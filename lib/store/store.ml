(* Sharded persistent KV service with per-shard group commit.

   A [Store.t] hash-shards the keyspace across N independent shards on
   one simulated NVRAM device: each shard owns its own descriptor pool,
   palloc heap and index (skip list or Bw-tree) in a private region, so
   shards never share persistent state and can be recovered
   independently — and in parallel.

   Mutations are fronted by a per-shard flat-combining group-commit
   pipeline: clients push requests onto the shard's (volatile) queue,
   and the first client to take the shard's combiner flag becomes the
   committer, draining the queue and applying whole batches with its own
   handles. On a skip-list shard the committer folds every Update in the
   batch into ONE multi-word PMwCAS over the located value words (sound
   because the committer is the sole mutator of its shard: between
   [Pm.locate] and [Op.execute] nothing else can move or delete the
   node), so a batch of updates persists with one precommit
   [Pcas.persist_batch] + fence and one apply batch + fence instead of a
   fence trio per operation. Structural operations (insert/delete, and
   everything on a Bw-tree shard) are applied by the committer one at a
   time — serialized, not fence-amortized.

   Reordering inside a batch is linearizable: every enqueuer blocks
   until its request completes, so all requests in a batch are mutually
   concurrent and any application order is a valid linearization; a
   client never has two ops in one batch, so program order is preserved.

   Reads bypass the queue entirely — [Op.read] persists dirty words
   before returning, so direct reads are durably linearizable.

   [Per_op] commit mode is the baseline for the B4 bench: no queue, no
   combining — each client drives its own lock-free index operation and
   pays the full per-op fence cost. *)

module Mem = Nvram.Mem
module Pool = Pmwcas.Pool
module Op = Pmwcas.Op
module Recovery = Pmwcas.Recovery
module Pm = Skiplist.Pm
module Tree = Bwtree.Tree

let align8 a = (a + 7) / 8 * 8
let magic = 0x570_4e5e_ed

type index_kind = Skiplist | Bwtree
type commit = Group | Per_op

type config = {
  shards : int;
  index : index_kind;
  commit : commit;
  max_clients : int;
  heap_words : int;
  map_words : int;
  batch_limit : int;
}

let default_config =
  {
    shards = 4;
    index = Skiplist;
    commit = Group;
    max_clients = 4;
    heap_words = 1 lsl 16;
    map_words = 1 lsl 10;
    batch_limit = 16;
  }

(* --- telemetry -------------------------------------------------------- *)

type counters = {
  commits : int;
  batched_ops : int;
  merged_updates : int;
  solo_applies : int;
  direct_applies : int;
}

(* Process-global, like [Palloc.counters]: where mutations were applied.
   Field 0 drained batches, 1 ops that went through a batch, 2 updates
   folded into a merged PMwCAS, 3 per-op applies by a committer, 4
   [Per_op]-mode direct applies. *)
let counter_cells = Telemetry.Sharded.create ~fields:5

let counters () =
  let s = Telemetry.Sharded.sum counter_cells in
  {
    commits = s 0;
    batched_ops = s 1;
    merged_updates = s 2;
    solo_applies = s 3;
    direct_applies = s 4;
  }

let reset_counters () = Telemetry.Sharded.reset counter_cells

let counters_to_json () =
  let c = counters () in
  Telemetry.Value.Obj
    [
      ("commits", Telemetry.Value.Int c.commits);
      ("batched_ops", Telemetry.Value.Int c.batched_ops);
      ("merged_updates", Telemetry.Value.Int c.merged_updates);
      ("solo_applies", Telemetry.Value.Int c.solo_applies);
      ("direct_applies", Telemetry.Value.Int c.direct_applies);
    ]

let batch_hist = Telemetry.on_demand "store.batch_size"
let wait_hist = Telemetry.on_demand "store.queue_wait_ns"

(* --- geometry --------------------------------------------------------- *)

(* Durable superblock, written on create and read back by [recover]:
   word 0 magic (written last), 1 shards, 2 index kind, 3 commit mode,
   4 max_clients, 5 heap_words, 6 map_words, 7 shard stride, 8 first
   shard base, 9 batch_limit. *)
let header_words = 16

let max_threads_of cfg = cfg.max_clients + 2
let pool_max_words cfg = max 8 cfg.batch_limit

type layout = { heap_base : int; anchor : int; map_base : int }

let shard_layout cfg sbase =
  let pool_words =
    Pool.region_words ~max_words:(pool_max_words cfg)
      ~max_threads:(max_threads_of cfg) ()
  in
  let heap_base = sbase + align8 pool_words in
  let anchor = align8 (heap_base + cfg.heap_words) in
  let map_base =
    match cfg.index with
    | Skiplist -> 0
    | Bwtree -> align8 (anchor + Tree.anchor_words)
  in
  { heap_base; anchor; map_base }

let shard_stride cfg =
  let l = shard_layout cfg 0 in
  let last =
    match cfg.index with
    | Skiplist -> l.anchor + Pm.anchor_words
    | Bwtree -> l.map_base + cfg.map_words
  in
  align8 (last + 8)

let words_needed cfg =
  if cfg.shards < 1 then invalid_arg "Store: shards < 1";
  align8 header_words + (cfg.shards * shard_stride cfg)

(* --- runtime structure ------------------------------------------------ *)

type kv_op = Insert of int * int | Update of int * int | Delete of int

type request = {
  op : kv_op;
  mutable result : bool;
  done_ : bool Atomic.t;
  enq_ns : int;  (* 0 when telemetry is off *)
}

type index = Sl of Pm.t | Bt of Tree.t

type shard = {
  sbase : int;
  index : index;
  pool : Pool.t;
  palloc : Palloc.t;
  queue : request list Atomic.t;  (* Treiber stack, newest first *)
  combiner : bool Atomic.t;
}

type t = { mem : Mem.t; base : int; cfg : config; shards : shard array }

type shard_handle = Slh of Pm.handle | Bth of Tree.handle
type session = { store : t; handles : shard_handle array }

let mem t = t.mem
let config t = t.cfg
let nshards t = t.cfg.shards

(* Fibonacci-hash the key so dense keyspaces spread across shards
   instead of landing contiguously (same scramble the workload
   distributions use). *)
let shard_of t key =
  if t.cfg.shards = 1 then 0
  else key * 0x2545F4914F6CDD1D land max_int mod t.cfg.shards

let shard_bounds t i =
  let b = t.shards.(i).sbase in
  (b, b + shard_stride t.cfg)

let shard_palloc t i = t.shards.(i).palloc
let shard_pool t i = t.shards.(i).pool

(* --- construction ----------------------------------------------------- *)

let kind_code = function Skiplist -> 0 | Bwtree -> 1

let kind_of_code = function
  | 0 -> Skiplist
  | 1 -> Bwtree
  | _ -> failwith "Store.recover: corrupt header (kind)"

let commit_code = function Group -> 0 | Per_op -> 1

let commit_of_code = function
  | 0 -> Group
  | 1 -> Per_op
  | _ -> failwith "Store.recover: corrupt header (commit)"

let fresh_shard cfg mem sbase =
  let l = shard_layout cfg sbase in
  let max_threads = max_threads_of cfg in
  let palloc =
    Palloc.create mem ~base:l.heap_base ~words:cfg.heap_words ~max_threads
  in
  let pool =
    Pool.create ~max_words:(pool_max_words cfg) ~palloc mem ~base:sbase
      ~max_threads
  in
  let index =
    match cfg.index with
    | Skiplist -> Sl (Pm.create ~pool ~palloc ~anchor:l.anchor ())
    | Bwtree ->
        Bt
          (Tree.create ~pool ~palloc ~anchor:l.anchor ~map_base:l.map_base
             ~map_words:cfg.map_words ())
  in
  {
    sbase;
    index;
    pool;
    palloc;
    queue = Atomic.make [];
    combiner = Atomic.make false;
  }

let write_header t =
  let m = t.mem and b = t.base in
  Mem.write m (b + 1) t.cfg.shards;
  Mem.write m (b + 2) (kind_code t.cfg.index);
  Mem.write m (b + 3) (commit_code t.cfg.commit);
  Mem.write m (b + 4) t.cfg.max_clients;
  Mem.write m (b + 5) t.cfg.heap_words;
  Mem.write m (b + 6) t.cfg.map_words;
  Mem.write m (b + 7) (shard_stride t.cfg);
  Mem.write m (b + 8) (t.base + align8 header_words);
  Mem.write m (b + 9) t.cfg.batch_limit;
  Mem.clwb_range m ~lo:(b + 1) ~hi:(b + 9);
  Mem.fence m;
  (* Magic last, separately fenced: a creation crash leaves an
     unformatted region, never a half-described one. *)
  Mem.write m b magic;
  Mem.clwb m b;
  Mem.fence m

let create ?(config = default_config) mem ~base =
  let cfg = config in
  if cfg.shards < 1 then invalid_arg "Store.create: shards < 1";
  if cfg.max_clients < 1 then invalid_arg "Store.create: max_clients < 1";
  if cfg.batch_limit < 1 then invalid_arg "Store.create: batch_limit < 1";
  let stride = shard_stride cfg in
  let shard0 = base + align8 header_words in
  let shards =
    Array.init cfg.shards (fun i -> fresh_shard cfg mem (shard0 + (i * stride)))
  in
  let t = { mem; base; cfg; shards } in
  write_header t;
  t

(* --- recovery --------------------------------------------------------- *)

type shard_recovery = {
  shard : int;
  alloc_rolled_back : int;
  pmwcas : Recovery.stats;
}

let read_config mem ~base =
  if Mem.read mem base <> magic then failwith "Store.recover: bad magic";
  {
    shards = Mem.read mem (base + 1);
    index = kind_of_code (Mem.read mem (base + 2));
    commit = commit_of_code (Mem.read mem (base + 3));
    max_clients = Mem.read mem (base + 4);
    heap_words = Mem.read mem (base + 5);
    map_words = Mem.read mem (base + 6);
    batch_limit = Mem.read mem (base + 9);
  }

let recover_shard cfg mem i sbase =
  let l = shard_layout cfg sbase in
  let max_threads = max_threads_of cfg in
  let palloc, alloc_rolled_back =
    Palloc.recover mem ~base:l.heap_base ~words:cfg.heap_words ~max_threads
  in
  (* The Bw-tree's consolidation callback must be re-registered before
     recovery finalizes any descriptor that carries it. *)
  let callbacks =
    match cfg.index with
    | Skiplist -> []
    | Bwtree -> [ Tree.recovery_callback mem ]
  in
  let pool, stats = Recovery.run ~palloc ~callbacks mem ~base:sbase in
  let index =
    match cfg.index with
    | Skiplist -> Sl (Pm.attach ~pool ~palloc ~anchor:l.anchor)
    | Bwtree -> Bt (Tree.attach ~pool ~palloc ~anchor:l.anchor)
  in
  ( {
      sbase;
      index;
      pool;
      palloc;
      queue = Atomic.make [];
      combiner = Atomic.make false;
    },
    { shard = i; alloc_rolled_back; pmwcas = stats } )

(* Re-open a crashed (or cleanly closed) store: read the geometry back
   from the superblock and run the standard per-shard recovery stack
   (Palloc.recover, Recovery.run, attach), optionally farmed across
   [domains] worker domains. Shard regions are disjoint and each shard's
   recovery is single-threaded within its region, so parallel recovery
   needs no coordination and restart time stays flat as shards grow. *)
let recover ?(domains = 1) mem ~base =
  let cfg = read_config mem ~base in
  let n = cfg.shards in
  if n < 1 || n > 65536 then failwith "Store.recover: corrupt header (shards)";
  let stride = Mem.read mem (base + 7) in
  if stride <> shard_stride cfg then
    failwith "Store.recover: corrupt header (stride)";
  let shard0 = Mem.read mem (base + 8) in
  if shard0 <> base + align8 header_words then
    failwith "Store.recover: corrupt header (shard base)";
  let results = Array.make n None in
  let recover_range lo hi =
    for i = lo to hi - 1 do
      results.(i) <- Some (recover_shard cfg mem i (shard0 + (i * stride)))
    done
  in
  let domains = max 1 (min domains n) in
  if domains = 1 then recover_range 0 n
  else begin
    let per = (n + domains - 1) / domains in
    List.init domains (fun d ->
        Domain.spawn (fun () -> recover_range (d * per) (min n ((d + 1) * per))))
    |> List.iter Domain.join
  end;
  let pairs = Array.map Option.get results in
  ( { mem; base; cfg; shards = Array.map fst pairs },
    Array.to_list (Array.map snd pairs) )

(* --- sessions --------------------------------------------------------- *)

let open_session t =
  {
    store = t;
    handles =
      Array.map
        (fun sh ->
          match sh.index with
          | Sl sl -> Slh (Pm.register sl)
          | Bt tr -> Bth (Tree.register tr))
        t.shards;
  }

let close_session sess =
  Array.iter
    (function Slh h -> Pm.unregister h | Bth h -> Tree.unregister h)
    sess.handles

let quiesce sess =
  Array.iter
    (function Slh h -> Pm.quiesce h | Bth h -> Tree.quiesce h)
    sess.handles

let check_invariants sess =
  Array.iter
    (function
      | Slh h -> Pm.check_invariants h | Bth h -> Tree.check_invariants h)
    sess.handles

let length sess =
  Array.fold_left
    (fun acc -> function
      | Slh h -> acc + Pm.length h | Bth h -> acc + Tree.length h)
    0 sess.handles

(* --- operation application ------------------------------------------- *)

let apply_one handle op =
  match (handle, op) with
  | Slh h, Insert (key, value) -> Pm.insert h ~key ~value
  | Slh h, Update (key, value) -> Pm.update h ~key ~value
  | Slh h, Delete key -> Pm.delete h ~key
  | Bth h, Insert (key, value) -> Tree.insert h ~key ~value
  | Bth h, Update (key, value) -> (
      (* Check-then-put: atomic here only because mutations on a Group
         shard are committer-serialized; Per_op Bw-tree shards get upsert
         semantics under a concurrent delete of the same key. *)
      match Tree.get h ~key with
      | None -> false
      | Some _ ->
          ignore (Tree.put h ~key ~value);
          true)
  | Bth h, Delete key -> Tree.remove h ~key

(* Fold a batch's updates into merged PMwCASes over the located value
   words, [batch_limit] keys at a time. Duplicate keys keep the
   last-listed value; the overwritten requests linearize just before the
   surviving one, so they report the same present/absent outcome.
   Requests on absent keys fail without joining a descriptor. *)
let apply_merged_updates cfg (h : Pm.handle) updates =
  let value_of r = match r.op with Update (_, v) -> v | _ -> assert false in
  let last = Hashtbl.create 16 and order = ref [] in
  List.iter
    (fun r ->
      match r.op with
      | Update (k, _) ->
          if not (Hashtbl.mem last k) then order := k :: !order;
          Hashtbl.replace last k r
      | _ -> assert false)
    updates;
  let merged = ref 0 in
  let finish_key k ok = (Hashtbl.find last k).result <- ok in
  let commit_chunk chunk =
    match chunk with
    | [] -> ()
    | [ (k, _, _) ] ->
        (* A lone survivor gains nothing from a descriptor. *)
        let v = value_of (Hashtbl.find last k) in
        finish_key k (Pm.update h ~key:k ~value:v)
    | _ ->
        (* No destination pass over the chunk's located value words: a
           still-dirty expected value is claimed in place by
           [Op.install_rdcss]; the merged descriptor's sealed old-fields
           are the rollback records. *)
        let d = Pool.alloc_desc (Pm.pool_handle h) in
        List.iter
          (fun (k, addr, cur) ->
            Pool.add_word d ~addr ~expected:cur
              ~desired:(value_of (Hashtbl.find last k)))
          chunk;
        if Op.execute d then begin
          merged := !merged + List.length chunk;
          List.iter (fun (k, _, _) -> finish_key k true) chunk
        end
        else
          (* Cannot happen while the committer is the sole mutator, but
             stay safe if that invariant is ever broken: re-apply each
             update through the normal lock-free path. *)
          List.iter
            (fun (k, _, _) ->
              finish_key k
                (Pm.update h ~key:k ~value:(value_of (Hashtbl.find last k))))
            chunk
  in
  let rec walk acc n = function
    | [] -> commit_chunk (List.rev acc)
    | k :: tl when n = cfg.batch_limit ->
        commit_chunk (List.rev acc);
        walk [] 0 (k :: tl)
    | k :: tl -> (
        match Pm.locate h ~key:k with
        | None ->
            finish_key k false;
            walk acc n tl
        | Some (addr, cur) -> walk ((k, addr, cur) :: acc) (n + 1) tl)
  in
  walk [] 0 (List.rev !order);
  (* Every duplicate inherits its survivor's outcome. *)
  List.iter
    (fun r ->
      match r.op with
      | Update (k, _) ->
          let surv = Hashtbl.find last k in
          if r != surv then r.result <- surv.result
      | _ -> assert false)
    updates;
  !merged

let apply_batch cfg ~shard handle batch =
  let n = List.length batch in
  if Flight.tracing () then Flight.emit Flight.Batch_open shard n 0;
  if Telemetry.enabled () then begin
    Telemetry.Histogram.record (batch_hist ()) n;
    let now = Telemetry.now_ns () in
    List.iter
      (fun r ->
        if r.enq_ns > 0 then
          Telemetry.Histogram.record (wait_hist ()) (now - r.enq_ns))
      batch
  end;
  Telemetry.Sharded.incr counter_cells 0;
  Telemetry.Sharded.add counter_cells 1 n;
  let mergeable r =
    match (handle, r.op) with Slh _, Update _ -> true | _ -> false
  in
  let updates, solo = List.partition mergeable batch in
  (* Solos first: an insert and an update of the same key in one batch
     are concurrent requests, and insert-before-update is the friendlier
     of the two valid linearizations. *)
  List.iter (fun r -> r.result <- apply_one handle r.op) solo;
  Telemetry.Sharded.add counter_cells 3 (List.length solo);
  (match (handle, updates) with
  | _, [] -> ()
  | Slh h, _ ->
      let merged = apply_merged_updates cfg h updates in
      Telemetry.Sharded.add counter_cells 2 merged;
      Telemetry.Sharded.add counter_cells 3 (List.length updates - merged)
  | Bth _, _ -> assert false);
  (* Publish results only after every effect of the batch: a waiter that
     sees [done_] must be past the batch's commit point. *)
  List.iter (fun r -> Atomic.set r.done_ true) batch;
  if Flight.tracing () then Flight.emit Flight.Batch_commit shard n 0

(* --- the client-facing operation path --------------------------------- *)

(* Spin seam: route the wait through a hooked device read so DST fibers
   yield here, and surface an exhausted crash budget so a waiter whose
   committer died mid-batch unwinds instead of spinning forever. *)
let yield_point t =
  ignore (Mem.read t.mem t.base);
  (match Mem.fuel_remaining t.mem with
  | Some 0 -> raise Mem.Crash
  | _ -> ());
  Domain.cpu_relax ()

let rec push_request q r =
  let cur = Atomic.get q in
  if not (Atomic.compare_and_set q cur (r :: cur)) then push_request q r

let enqueue_and_wait t si handle op =
  let sh = t.shards.(si) in
  let enq_ns =
    if Telemetry.enabled () && Telemetry.sample () then Telemetry.now_ns ()
    else 0
  in
  let r = { op; result = false; done_ = Atomic.make false; enq_ns } in
  push_request sh.queue r;
  let spins = ref 0 in
  let rec wait () =
    if Atomic.get r.done_ then r.result
    else if Atomic.compare_and_set sh.combiner false true then begin
      (* Committer: drain until our own request has been applied AND
         the queue is empty. The request was enqueued before the flag
         was taken, so it is in this committer's first exchange unless
         a previous committer already completed it. Staying past our
         own completion is what makes batches compose: requests pushed
         while a batch is being applied are picked up by the next
         exchange instead of each waiter self-electing and draining a
         batch of one (flat combining). *)
      let rec lead () =
        let batch = Atomic.exchange sh.queue [] in
        if batch <> [] then
          apply_batch t.cfg ~shard:si handle (List.rev batch);
        if not (Atomic.get r.done_) then begin
          yield_point t;
          lead ()
        end
        else if Atomic.get sh.queue <> [] then lead ()
      in
      (match lead () with
      | () -> Atomic.set sh.combiner false
      | exception e ->
          Atomic.set sh.combiner false;
          raise e);
      r.result
    end
    else begin
      yield_point t;
      (* On hosts with fewer cores than clients a pure spin is
         pathological: the waiter burns its whole timeslice while the
         descheduled committer holds the flag. After a short spin,
         deschedule — the committer gets the CPU, and the requests that
         pile up while it applies are what group commit batches. *)
      incr spins;
      if !spins > 64 then Unix.sleepf 2e-6;
      wait ()
    end
  in
  wait ()

let mutate sess op key =
  let t = sess.store in
  let si = shard_of t key in
  let handle = sess.handles.(si) in
  match t.cfg.commit with
  | Per_op ->
      Telemetry.Sharded.incr counter_cells 4;
      apply_one handle op
  | Group -> enqueue_and_wait t si handle op

let insert sess ~key ~value = mutate sess (Insert (key, value)) key
let update sess ~key ~value = mutate sess (Update (key, value)) key
let delete sess ~key = mutate sess (Delete key) key

let find sess ~key =
  let t = sess.store in
  match sess.handles.(shard_of t key) with
  | Slh h -> Pm.find h ~key
  | Bth h -> Tree.get h ~key
