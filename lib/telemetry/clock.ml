(* Monotonic nanosecond clock (CLOCK_MONOTONIC via bechamel's noalloc C
   stub). All latency instrumentation records through this. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())
