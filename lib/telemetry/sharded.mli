(** Per-domain sharded counter groups.

    The counter pattern of [Nvram.Stats]/[Pmwcas.Metrics] factored out:
    each domain owns a cache-line-padded group of atomics (no contention
    on the increment path), [sum] merges shards on read. Up to 8 fields
    per group. *)

type t

val create : fields:int -> t
(** @raise Invalid_argument unless [0 < fields <= 8]. *)

val incr : t -> int -> unit
(** [incr t field] — bump the calling domain's counter for [field]. *)

val add : t -> int -> int -> unit

val record_max : t -> int -> int -> unit
(** Treat [field] as a running maximum instead of a counter: lock-free
    max into the calling domain's shard. Read back with {!max_over} (not
    {!sum}). *)

val sum : t -> int -> int
val max_over : t -> int -> int
val reset : t -> unit
