(** A JSON-shaped value tree: the lingua franca of the telemetry layer.

    Every snapshot source ([Nvram.Stats.to_json], [Pmwcas.Metrics.to_json],
    epoch counters, histogram snapshots) produces one of these; every
    exporter (JSON, CSV, Prometheus) consumes them. Keeping one tree type
    means no layer ever hand-formats its metrics. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize as JSON. [pretty] indents with two spaces. Non-finite
    floats serialize as [null]. *)

val pp : Format.formatter -> t -> unit
(** Pretty JSON on a formatter. *)

val pp_flat : Format.formatter -> t -> unit
(** Render an object's top-level fields as ["k=v k=v ..."] — the derived
    human-readable form used by [Stats.pp] and [Metrics.pp]. *)

val of_string : string -> (t, string) result
(** Parse JSON text (objects, arrays, strings with escapes, ints, floats,
    booleans, null). Integers without a fractional part parse as [Int].
    Used by the metrics-schema checker and the round-trip tests. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] elsewhere. *)

val find_path : t -> string list -> t option
(** Nested field lookup, e.g. [find_path v ["registry"; "pmwcas"]]. *)

val to_int : t -> int option
val to_float : t -> float option
