(* Per-domain sharded counter groups — the pattern [Nvram.Stats] and
   [Pmwcas.Metrics] established, factored out for new instrumentation
   (epoch reclamation counters). Each domain increments its own
   cache-line-padded group of boxed atomics, so instrumented fast paths
   never contend; [sum] merges the shards on read. *)

let shards = 64

(* 8 boxed atomics = 128 bytes: two cache lines per domain group, enough
   that neighbouring domains never false-share. *)
let stride = 8

type t = int Atomic.t array

let create ~fields =
  if fields <= 0 || fields > stride then invalid_arg "Sharded.create: fields";
  Array.init (shards * stride) (fun _ -> Atomic.make 0)

let slot field =
  let d = (Domain.self () :> int) in
  ((d land (shards - 1)) * stride) + field

let incr t field = ignore (Atomic.fetch_and_add t.(slot field) 1)
let add t field n = ignore (Atomic.fetch_and_add t.(slot field) n)

(* Monotone max cell: each domain maxes into its own shard, [max_over]
   takes the max across shards — a lock-free global running maximum. *)
let record_max t field v =
  let cell = t.(slot field) in
  let rec loop () =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then loop ()
  in
  loop ()

let sum t field =
  let acc = ref 0 in
  for s = 0 to shards - 1 do
    acc := !acc + Atomic.get t.((s * stride) + field)
  done;
  !acc

let max_over t field =
  let acc = ref 0 in
  for s = 0 to shards - 1 do
    acc := max !acc (Atomic.get t.((s * stride) + field))
  done;
  !acc

let reset t = Array.iter (fun c -> Atomic.set c 0) t
