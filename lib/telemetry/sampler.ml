(* Periodic time-series sampler: a background domain wakes every
   [interval_s], reads each source, and appends a sample row. Counter
   sources report rates (delta / interval); gauge sources report levels.
   The sampled counters are the sharded ones ([Nvram.Stats],
   [Pmwcas.Metrics]) that worker domains already maintain, so sampling
   adds nothing to the hot loops — benches get throughput-over-time
   curves for free. *)

type source = { name : string; read : unit -> float; kind : [ `Rate | `Level ] }

let counter name read =
  { name; read = (fun () -> float_of_int (read ())); kind = `Rate }

let gauge name read = { name; read; kind = `Level }

type sample = { at_s : float; values : (string * float) list }

type t = {
  stop : bool Atomic.t;
  domain : sample list Domain.t;
}

let start ?(interval_s = 0.05) sources =
  if interval_s <= 0. then invalid_arg "Sampler.start: interval_s <= 0";
  let stop = Atomic.make false in
  let domain =
    Domain.spawn (fun () ->
        let t0 = Clock.now_ns () in
        let prev = Array.of_list (List.map (fun s -> s.read ()) sources) in
        let prev_t = ref t0 in
        let out = ref [] in
        while not (Atomic.get stop) do
          Unix.sleepf interval_s;
          let now = Clock.now_ns () in
          let dt = float_of_int (now - !prev_t) /. 1e9 in
          if dt > 0. then begin
            let values =
              List.mapi
                (fun i s ->
                  let v = s.read () in
                  let out =
                    match s.kind with
                    | `Rate ->
                        let d = v -. prev.(i) in
                        prev.(i) <- v;
                        d /. dt
                    | `Level -> v
                  in
                  (s.name, out))
                sources
            in
            prev_t := now;
            out :=
              { at_s = float_of_int (now - t0) /. 1e9; values } :: !out
          end
        done;
        List.rev !out)
  in
  { stop; domain }

let stop t =
  Atomic.set t.stop true;
  Domain.join t.domain

let to_json samples =
  Value.List
    (List.map
       (fun s ->
         Value.Obj
           (("t_s", Value.Float s.at_s)
           :: List.map (fun (k, v) -> (k, Value.Float v)) s.values))
       samples)
