(** Periodic time-series sampler.

    A background domain polls the given sources at a fixed interval while
    worker domains run, turning the system's sharded counters into
    throughput/retry-rate/flush-rate curves over time — without touching
    the hot loops (workers already maintain those counters). *)

type source

val counter : string -> (unit -> int) -> source
(** A monotone counter; samples report its rate (delta per second over
    the last interval). *)

val gauge : string -> (unit -> float) -> source
(** An instantaneous level; samples report it as read. *)

type sample = { at_s : float;  (** seconds since [start] *)
                values : (string * float) list }

type t

val start : ?interval_s:float -> source list -> t
(** Spawn the sampling domain (default interval 50 ms). *)

val stop : t -> sample list
(** Stop and join the sampler; returns the samples in time order. *)

val to_json : sample list -> Value.t
(** A JSON list of [{t_s; <name>: rate-or-level; ...}] rows. *)
