(* Central metric registry: a flat name -> entry table whose [snapshot]
   assembles one nested tree from the dotted names. Histograms live in
   the registry itself; counter groups owned by other layers
   (Nvram.Stats, Pmwcas.Metrics, epoch counters) plug in as snapshot
   thunks. Registration is rare (startup / per-bench-environment), so a
   mutex is fine; reading a histogram someone else is recording into is
   lock-free as always. *)

type kind = [ `Counter | `Gauge ]

type entry =
  | Hist of Histogram.t
  | Source of kind * (unit -> Value.t)

type t = { mutable entries : (string * entry) list; lock : Mutex.t }

let create () = { entries = []; lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let histogram t name =
  with_lock t (fun () ->
      match List.assoc_opt name t.entries with
      | Some (Hist h) -> h
      | Some (Source _) ->
          invalid_arg
            (Printf.sprintf "Registry.histogram: %S is a source" name)
      | None ->
          let h = Histogram.create () in
          t.entries <- t.entries @ [ (name, Hist h) ];
          h)

(* Re-registering a name replaces it: benches create a fresh environment
   (device, pool, epoch manager) per data point, and the registry should
   describe the live one. *)
let register_source ?(kind = `Counter) t name fn =
  with_lock t (fun () ->
      let entry = Source (kind, fn) in
      if List.mem_assoc name t.entries then
        t.entries <-
          List.map
            (fun (n, e) -> if n = name then (n, entry) else (n, e))
            t.entries
      else t.entries <- t.entries @ [ (name, entry) ])

let remove t name =
  with_lock t (fun () ->
      t.entries <- List.filter (fun (n, _) -> n <> name) t.entries)

let entries t = with_lock t (fun () -> t.entries)

let reset_histograms t =
  List.iter
    (function _, Hist h -> Histogram.reset h | _, Source _ -> ())
    (entries t)

(* Insert [value] at dotted [path] inside a nested Obj tree, preserving
   first-registration order of siblings. *)
let rec insert_path tree path value =
  match path with
  | [] -> value
  | seg :: rest ->
      let fields = match tree with Value.Obj f -> f | _ -> [] in
      if List.mem_assoc seg fields then
        Value.Obj
          (List.map
             (fun (k, v) ->
               if k = seg then (k, insert_path v rest value) else (k, v))
             fields)
      else Value.Obj (fields @ [ (seg, insert_path (Value.Obj []) rest value) ])

let split_name name = String.split_on_char '.' name

let snapshot t =
  List.fold_left
    (fun tree (name, entry) ->
      let v =
        match entry with
        | Hist h -> Histogram.to_json (Histogram.snapshot h)
        | Source (_, fn) -> fn ()
      in
      insert_path tree (split_name name) v)
    (Value.Obj []) (entries t)
