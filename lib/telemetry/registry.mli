(** Central metric registry.

    Metrics register under dotted names ("pmwcas.attempt_ns"); [snapshot]
    assembles every entry into one nested {!Value.t} tree. Histograms are
    owned by the registry; counter groups owned by other layers plug in
    as snapshot thunks via [register_source]. Registration is
    mutex-guarded (it is rare); recording into a registered histogram is
    lock-free. *)

type t

type kind = [ `Counter | `Gauge ]
(** How the Prometheus exporter types a source's numeric leaves:
    [`Counter] leaves export as monotonically increasing [_total] series,
    [`Gauge] leaves as gauges. *)

type entry =
  | Hist of Histogram.t
  | Source of kind * (unit -> Value.t)

val create : unit -> t

val histogram : t -> string -> Histogram.t
(** Get-or-create the histogram registered under this name.
    @raise Invalid_argument if the name is taken by a source. *)

val register_source : ?kind:kind -> t -> string -> (unit -> Value.t) -> unit
(** Register (or replace — benches re-register per environment) a
    snapshot thunk under a dotted name. [kind] defaults to [`Counter]. *)

val remove : t -> string -> unit
val entries : t -> (string * entry) list

val snapshot : t -> Value.t
(** One nested object tree over all entries, splitting names on ['.']. *)

val reset_histograms : t -> unit
