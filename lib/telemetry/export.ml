(* Exporters over the registry / value tree: JSON (BENCH_*.json and
   --metrics files), CSV (flat path,value rows for spreadsheets), and the
   Prometheus text exposition format. *)

let to_json ?pretty v = Value.to_string ?pretty v

(* ------------------------------------------------------------------ *)
(* CSV: flatten the tree to [path,value] rows; lists index as [i].     *)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv v =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "path,value\n";
  let emit path s =
    Buffer.add_string buf (csv_escape path);
    Buffer.add_char buf ',';
    Buffer.add_string buf (csv_escape s);
    Buffer.add_char buf '\n'
  in
  let join path k = if path = "" then k else path ^ "." ^ k in
  let rec walk path = function
    | Value.Null -> emit path "null"
    | Value.Bool b -> emit path (string_of_bool b)
    | Value.Int i -> emit path (string_of_int i)
    | Value.Float f -> emit path (Printf.sprintf "%.12g" f)
    | Value.String s -> emit path s
    | Value.List items ->
        List.iteri (fun i v -> walk (join path (string_of_int i)) v) items
    | Value.Obj fields -> List.iter (fun (k, v) -> walk (join path k) v) fields
  in
  walk "" v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Prometheus text format.                                             *)

let sanitize_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

(* Label values escape backslash, double-quote and newline per the
   exposition-format spec. *)
let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels labels =
  match labels with
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize_name k)
                 (escape_label_value v))
             labels)
      ^ "}"

let hist_to_prometheus buf ~name ~labels snap =
  let base = sanitize_name name in
  Printf.bprintf buf "# TYPE %s histogram\n" base;
  let cumulative = ref 0 in
  List.iter
    (fun (_, hi, n) ->
      cumulative := !cumulative + n;
      Printf.bprintf buf "%s_bucket%s %d\n" base
        (render_labels (labels @ [ ("le", string_of_int hi) ]))
        !cumulative)
    (Histogram.nonzero_buckets snap);
  Printf.bprintf buf "%s_bucket%s %d\n" base
    (render_labels (labels @ [ ("le", "+Inf") ]))
    snap.Histogram.count;
  Printf.bprintf buf "%s_sum%s %d\n" base (render_labels labels)
    snap.Histogram.sum;
  Printf.bprintf buf "%s_count%s %d\n" base (render_labels labels)
    snap.Histogram.count

(* A source's numeric leaves flatten to one series per path. Counter
   sources get the conventional [_total] suffix. *)
let source_to_prometheus buf ~name ~labels ~kind v =
  let join path k =
    if k = "" then path else if path = "" then k else path ^ "_" ^ k
  in
  let type_str, suffix =
    match kind with `Counter -> ("counter", "_total") | `Gauge -> ("gauge", "")
  in
  let emit path value =
    let series = sanitize_name (join name path) ^ suffix in
    Printf.bprintf buf "# TYPE %s %s\n" series type_str;
    Printf.bprintf buf "%s%s %s\n" series (render_labels labels) value
  in
  let rec walk path = function
    | Value.Int i -> emit path (string_of_int i)
    | Value.Float f -> emit path (Printf.sprintf "%.12g" f)
    | Value.Bool b -> emit path (if b then "1" else "0")
    | Value.Obj fields -> List.iter (fun (k, v) -> walk (join path k) v) fields
    | Value.List _ | Value.String _ | Value.Null -> ()
  in
  walk "" v

let to_prometheus ?(labels = []) reg =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, entry) ->
      match entry with
      | Registry.Hist h ->
          hist_to_prometheus buf ~name ~labels (Histogram.snapshot h)
      | Registry.Source (kind, fn) ->
          source_to_prometheus buf ~name ~labels ~kind (fn ()))
    (Registry.entries reg);
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
