type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_json f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_json f)
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let rec write_indented buf ~indent ~level = function
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List items ->
      let pad n = String.make (indent * n) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (level + 1));
          write_indented buf ~indent ~level:(level + 1) v)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad level);
      Buffer.add_char buf ']'
  | Obj fields ->
      let pad n = String.make (indent * n) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (level + 1));
          escape_string buf k;
          Buffer.add_string buf ": ";
          write_indented buf ~indent ~level:(level + 1) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad level);
      Buffer.add_char buf '}'
  | v -> write buf v

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  if pretty then write_indented buf ~indent:2 ~level:0 v else write buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string ~pretty:true v)

(* [pp_flat] renders the top-level fields of an object as "k=v k=v ..." —
   the one place the human-readable counter lines are formatted, so [pp]
   in Stats/Metrics derives from [to_json] instead of hand-formatting. *)
let pp_flat ppf v =
  let leaf = function
    | Null -> "null"
    | Bool b -> string_of_bool b
    | Int i -> string_of_int i
    | Float f -> Printf.sprintf "%g" f
    | String s -> s
    | (List _ | Obj _) as v -> to_string v
  in
  match v with
  | Obj fields ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
        (fun ppf (k, v) -> Format.fprintf ppf "%s=%s" k (leaf v))
        ppf fields
  | v -> Format.pp_print_string ppf (leaf v)

(* ------------------------------------------------------------------ *)
(* Parsing (minimal recursive descent, enough for our own exports).    *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %c" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
        advance c;
        (match peek c with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
            if c.pos + 4 >= String.length c.src then fail c "bad \\u escape";
            let hex = String.sub c.src (c.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail c "bad \\u escape"
            in
            (* Only BMP code points below 0x80 round-trip exactly; encode
               the rest as UTF-8. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf
                (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            c.pos <- c.pos + 4
        | _ -> fail c "bad escape");
        advance c;
        loop ()
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec run () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        run ()
    | _ -> ()
  in
  run ();
  let s = String.sub c.src start (c.pos - start) in
  if s = "" then fail c "expected number";
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' ->
      advance c;
      String (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail c "expected , or ]"
        in
        List (items [])
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields (kv :: acc)
          | Some '}' ->
              advance c;
              List.rev (kv :: acc)
          | _ -> fail c "expected , or }"
        in
        Obj (fields [])
      end
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error "trailing garbage"
      else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Access helpers (schema checks, tests).                              *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let rec find_path v = function
  | [] -> Some v
  | name :: rest -> (
      match member name v with
      | Some v' -> find_path v' rest
      | None -> None)

let to_int = function Int i -> Some i | Float f -> Some (int_of_float f) | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
