(** Lock-free log-bucketed latency histogram (HdrHistogram-style).

    Values below 8 get exact unit buckets; each power-of-two range above
    is split into 8 sub-buckets, bounding relative error to 12.5% at
    every scale up to [2^62]. [record] performs a few fetch-and-adds on
    the calling domain's shard — no locks, no allocation — so it is safe
    on the hottest paths when telemetry is enabled. Snapshots merge the
    shards and are themselves mergeable (associatively and commutatively),
    so multi-process or per-phase snapshots compose. *)

type t

val create : unit -> t
val record : t -> int -> unit
(** Record a non-negative sample (negative values clamp to 0). Typically
    a latency in nanoseconds. *)

val reset : t -> unit

(** {1 Snapshots} *)

type snapshot = {
  counts : int array;
  count : int;
  sum : int;
  max_value : int;
}

val empty : snapshot
val snapshot : t -> snapshot
val merge : snapshot -> snapshot -> snapshot

val percentile : snapshot -> float -> int
(** [percentile s q] for [q] in [0, 1]: upper bound of the bucket where
    the cumulative count reaches [q * count], clamped to [max_value];
    0 on an empty snapshot. Monotone in [q]. *)

val mean : snapshot -> float

val nonzero_buckets : snapshot -> (int * int * int) list
(** [(lo, hi, count)] per occupied bucket, ascending; bounds inclusive. *)

val to_json : snapshot -> Value.t
(** Tree with [type=histogram], count/sum/mean/max, p50/p90/p99/p999 and
    the occupied buckets. *)

val pp : Format.formatter -> snapshot -> unit

(** {1 Bucket geometry (exposed for tests)} *)

val num_buckets : int
val index : int -> int
(** Bucket index a value lands in; monotone non-decreasing. *)

val bounds : int -> int * int
(** Inclusive [lo, hi] of a bucket index. *)
