(** Unified telemetry layer.

    One process-wide switch ({!enable}/{!enabled}), a monotonic
    nanosecond clock, lock-free histograms and sharded counters, a
    central registry that snapshots everything into one {!Value.t} tree,
    and JSON/CSV/Prometheus exporters plus a periodic time-series
    sampler.

    Instrumented fast paths throughout the stack ([Op.execute],
    [Sim.clwb], [Palloc.alloc], index operations) guard their recording
    with [if Telemetry.enabled () then ...]: disabled, the cost is one
    atomic load and a branch; enabled, a clock read and a few
    fetch-and-adds on the calling domain's histogram shard. *)

module Value = Value
module Histogram = Histogram
module Sharded = Sharded
module Registry = Registry
module Export = Export
module Sampler = Sampler
module Clock = Clock

(* The global switch. A plain atomic read on every instrumented path;
   false by default so the seed benchmarks are unaffected. *)
let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let[@inline] enabled () = Atomic.get enabled_flag

let now_ns = Clock.now_ns

(* Sampled histogram recording. The documented ~2x enabled-mode
   microbench overhead is two clock reads per sub-microsecond attempt;
   [sample_shift > 0] makes each latency site record only 1 in 2^shift
   of its calls (per-domain counter, no synchronization), trading
   histogram population for near-disabled overhead. 0 — the default —
   keeps the record-everything behavior. Sites guard with
   [if enabled () && sample () then ...]: the shift check short-circuits
   before the DLS lookup, so the default path costs one extra atomic
   load. *)
let shift_cell = Atomic.make 0
let set_sample_shift n = Atomic.set shift_cell (max 0 (min 30 n))
let sample_shift () = Atomic.get shift_cell
let sample_counter = Domain.DLS.new_key (fun () -> ref 0)

let[@inline] sample () =
  let sh = Atomic.get shift_cell in
  sh = 0
  ||
  let c = Domain.DLS.get sample_counter in
  incr c;
  !c land ((1 lsl sh) - 1) = 0

(* The default registry every layer's module-level histograms register
   into; [pmwcas_cli stats] and [bench --metrics] snapshot it. *)
let default : Registry.t = Registry.create ()
let histogram name = Registry.histogram default name

(* Domain-safe on-first-use histogram handle for module-level
   instrumentation sites. OCaml's [lazy] must not be forced from two
   domains at once (CamlinternalLazy.Undefined), so hot modules use this
   instead of [lazy (histogram name)]. [histogram] is get-or-create
   under the registry lock, so a racing first call is idempotent and the
   losing writer caches the same handle. *)
let on_demand name =
  let cell = Atomic.make None in
  fun () ->
    match Atomic.get cell with
    | Some h -> h
    | None ->
        let h = histogram name in
        Atomic.set cell (Some h);
        h

let register_source ?kind name fn =
  Registry.register_source ?kind default name fn

let snapshot () = Registry.snapshot default
