(* Log-bucketed latency histogram, HdrHistogram-style: values below
   [sub_buckets] get exact unit-width buckets; each further power-of-two
   range [2^e, 2^(e+1)) is split into [sub_buckets] equal sub-buckets, so
   relative error is bounded by 1/sub_buckets at every scale. Recording
   is a handful of lock-free fetch-and-adds on the calling domain's
   shard; snapshots merge the shards. *)

let sub_bits = 3
let sub_buckets = 1 lsl sub_bits (* 8: <= 12.5% relative bucket width *)
let max_exponent = 62
let groups = max_exponent - sub_bits + 1
let num_buckets = (groups + 1) * sub_buckets

(* Domains hash onto [shards] independent bucket arrays purely to cut
   contention; correctness never depends on the mapping. *)
let shards = 8

let msb v =
  (* Index of the highest set bit; [v > 0]. *)
  let r = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then begin
    r := !r + 32;
    v := !v lsr 32
  end;
  if !v lsr 16 <> 0 then begin
    r := !r + 16;
    v := !v lsr 16
  end;
  if !v lsr 8 <> 0 then begin
    r := !r + 8;
    v := !v lsr 8
  end;
  if !v lsr 4 <> 0 then begin
    r := !r + 4;
    v := !v lsr 4
  end;
  if !v lsr 2 <> 0 then begin
    r := !r + 2;
    v := !v lsr 2
  end;
  if !v lsr 1 <> 0 then incr r;
  !r

let index v =
  let v = if v < 0 then 0 else v in
  if v < sub_buckets then v
  else begin
    let e = msb v in
    let shift = e - sub_bits in
    let i = ((shift + 1) lsl sub_bits) lor ((v lsr shift) land (sub_buckets - 1)) in
    if i >= num_buckets then num_buckets - 1 else i
  end

let bounds i =
  if i < 0 || i >= num_buckets then invalid_arg "Histogram.bounds";
  let g = i lsr sub_bits and sub = i land (sub_buckets - 1) in
  if g = 0 then (sub, sub)
  else begin
    let e = g + sub_bits - 1 in
    let width = 1 lsl (e - sub_bits) in
    let lo = (1 lsl e) lor (sub * width) in
    (lo, lo + width - 1)
  end

type shard = {
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum : int Atomic.t;
  max_v : int Atomic.t;
}

type t = shard array

let make_shard () =
  {
    buckets = Array.init num_buckets (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    sum = Atomic.make 0;
    max_v = Atomic.make 0;
  }

let create () = Array.init shards (fun _ -> make_shard ())

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

let record t v =
  let v = if v < 0 then 0 else v in
  let s = t.((Domain.self () :> int) land (shards - 1)) in
  ignore (Atomic.fetch_and_add s.buckets.(index v) 1);
  ignore (Atomic.fetch_and_add s.count 1);
  ignore (Atomic.fetch_and_add s.sum v);
  atomic_max s.max_v v

type snapshot = {
  counts : int array;  (** one cell per bucket, dense *)
  count : int;
  sum : int;
  max_value : int;
}

let empty =
  { counts = Array.make num_buckets 0; count = 0; sum = 0; max_value = 0 }

let snapshot t =
  let counts = Array.make num_buckets 0 in
  let count = ref 0 and sum = ref 0 and max_v = ref 0 in
  Array.iter
    (fun s ->
      for i = 0 to num_buckets - 1 do
        counts.(i) <- counts.(i) + Atomic.get s.buckets.(i)
      done;
      count := !count + Atomic.get s.count;
      sum := !sum + Atomic.get s.sum;
      max_v := max !max_v (Atomic.get s.max_v))
    t;
  { counts; count = !count; sum = !sum; max_value = !max_v }

let reset t =
  Array.iter
    (fun s ->
      Array.iter (fun c -> Atomic.set c 0) s.buckets;
      Atomic.set s.count 0;
      Atomic.set s.sum 0;
      Atomic.set s.max_v 0)
    t

let merge a b =
  {
    counts = Array.init num_buckets (fun i -> a.counts.(i) + b.counts.(i));
    count = a.count + b.count;
    sum = a.sum + b.sum;
    max_value = max a.max_value b.max_value;
  }

let mean s = if s.count = 0 then 0. else float_of_int s.sum /. float_of_int s.count

(* Value at quantile [q]: the upper bound of the first bucket whose
   cumulative count reaches [q * count], clamped to the recorded maximum
   (so [percentile s 1. = s.max_value]). Pinned boundary semantics: an
   empty snapshot yields 0 for every q; q <= 0 yields the smallest
   recorded bucket's upper bound; q >= 1 yields [max_value]; a NaN q
   (e.g. a ratio computed off an empty counter upstream) is treated as
   the conservative tail, q = 1 — the naive clamp would let it slip
   through (every NaN comparison is false) and silently act like q = 0. *)
let percentile s q =
  if s.count = 0 then 0
  else begin
    let q =
      if Float.is_nan q then 1.0 else Float.max 0. (Float.min 1. q)
    in
    let target =
      let t = int_of_float (ceil (q *. float_of_int s.count)) in
      if t < 1 then 1 else t
    in
    let rec scan i acc =
      if i >= num_buckets then s.max_value
      else begin
        let acc = acc + s.counts.(i) in
        if acc >= target then min (snd (bounds i)) s.max_value
        else scan (i + 1) acc
      end
    in
    scan 0 0
  end

let nonzero_buckets s =
  let out = ref [] in
  for i = num_buckets - 1 downto 0 do
    if s.counts.(i) > 0 then begin
      let lo, hi = bounds i in
      out := (lo, hi, s.counts.(i)) :: !out
    end
  done;
  !out

let to_json s =
  Value.Obj
    [
      ("type", Value.String "histogram");
      ("count", Value.Int s.count);
      ("sum", Value.Int s.sum);
      ("mean", Value.Float (mean s));
      ("max", Value.Int s.max_value);
      ("p50", Value.Int (percentile s 0.50));
      ("p90", Value.Int (percentile s 0.90));
      ("p99", Value.Int (percentile s 0.99));
      ("p999", Value.Int (percentile s 0.999));
      ( "buckets",
        Value.List
          (List.map
             (fun (lo, hi, n) ->
               Value.Obj
                 [
                   ("lo", Value.Int lo);
                   ("hi", Value.Int hi);
                   ("count", Value.Int n);
                 ])
             (nonzero_buckets s)) );
    ]

let pp ppf s =
  Format.fprintf ppf "count=%d mean=%.0f p50=%d p99=%d max=%d" s.count
    (mean s) (percentile s 0.5) (percentile s 0.99) s.max_value
