(** Exporters: JSON, CSV and Prometheus text format.

    JSON and CSV consume any {!Value.t} tree (typically
    [Registry.snapshot] plus bench rows); the Prometheus exporter works
    off the registry directly, because it needs to know which entries are
    histograms (cumulative [_bucket{le=...}] series) versus counter or
    gauge sources. *)

val to_json : ?pretty:bool -> Value.t -> string

val to_csv : Value.t -> string
(** Flatten to [path,value] rows (header included); list elements index
    as path segments. *)

val to_prometheus : ?labels:(string * string) list -> Registry.t -> string
(** Prometheus text exposition: each histogram entry becomes
    [_bucket]/[_sum]/[_count] series with [le] labels, each counter
    source's numeric leaves become [_total] counters, gauge sources
    become gauges. [labels] are attached to every series; label values
    are escaped per the format spec. *)

val write_file : string -> string -> unit

(**/**)

val sanitize_name : string -> string
val escape_label_value : string -> string
