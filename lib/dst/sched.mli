(** Deterministic interleaving scheduler.

    Runs N logical threads as cooperative fibers (OCaml effects) on one
    domain, context-switching only at {!Nvram.Mem} word-operation
    boundaries: the fibers share a {!Nvram.Mem.hooked} device whose
    per-operation hook performs a [Yield] effect, so every shared-memory
    step is a scheduling point and a run is fully determined by the
    sequence of thread choices. That sequence — the {e schedule} — is
    recorded, printable as a compact token, and replayable.

    One scheduling step = resume one fiber until it is about to issue
    its next word operation (or finishes). Stopping the scheduler at
    step [k] therefore parks every fiber at an operation boundary —
    never inside a torn word — which is how DST models a power failure
    at an arbitrary store boundary ([stop_at] + [Mem.crash_image]). *)

type pick_fn = step:int -> current:int option -> runnable:int array -> int
(** A strategy: given the step index, the previously scheduled thread
    (if any) and the runnable set (non-empty, ascending), choose the
    thread to run. Must return a member of [runnable]. *)

type outcome = {
  schedule : int array;  (** Thread chosen at each step. *)
  runnable_log : int array array;
      (** Runnable set observed at each step (same length), consumed by
          the exhaustive explorer to find branch points. *)
  completed : bool;  (** Every fiber ran to completion (or died). *)
  stopped : bool;  (** The [stop_at] bound was hit (crash point). *)
  stalled : bool;  (** [max_steps] exceeded — treat as livelock. *)
  failures : (int * exn) list;
      (** Exceptions that escaped fiber bodies, with the fiber index.
          [Nvram.Mem.Crash] lands here too when fuel runs out. *)
}

val run :
  ?max_steps:int ->
  ?stop_at:int ->
  mem:Nvram.Mem.t ->
  pick:pick_fn ->
  (unit -> unit) array ->
  outcome
(** Run the fiber bodies to completion under [pick]. [mem] must be a
    {!Nvram.Mem.hooked} device; its hook is installed for the duration
    and reset afterwards. [stop_at k] abandons the run after [k] steps
    with every fiber parked at an operation boundary (their
    continuations are dropped — safe, the run is over). [max_steps]
    (default [200_000]) bounds runaway schedules. *)

(** {1 Strategies} *)

type strategy =
  | Random of int  (** Seeded uniform choice among runnable threads. *)
  | Pct of { seed : int; changes : int; horizon : int }
      (** PCT (probabilistic concurrency testing): random thread
          priorities, [changes] priority-change points sampled in
          [\[0, horizon)]; each step runs the highest-priority runnable
          thread. Finds bugs of preemption depth ≤ [changes]+1 with
          provable probability. *)
  | Round_robin  (** Rotate through the runnable set. *)
  | Prefix of int array
      (** Follow the given choices verbatim, then stay with the current
          thread while it remains runnable (switching — lowest runnable —
          only when forced). With a full recorded schedule this is exact
          replay; with a shorter prefix it is the explorer's default
          continuation. A prefix entry that is not runnable falls back
          to the default rule (the caller can detect the divergence by
          comparing [outcome.schedule] against the prefix). *)

val pick_of_strategy : strategy -> pick_fn
(** Fresh mutable strategy state on each call — a returned [pick_fn] is
    single-run. *)

(** {1 Schedule tokens} *)

val encode_schedule : int array -> string
(** Run-length token, e.g. [\[|0;0;0;1;0|\]] -> ["a3b1a1"]. Threads are
    letters (max 26). Empty schedule -> ["-"]. *)

val decode_schedule : string -> int array
(** Inverse of {!encode_schedule}.
    @raise Invalid_argument on malformed input. *)

(** {1 Exhaustive exploration} *)

type exploration = {
  schedules_run : int;
  truncated : bool;
      (** [max_schedules] was hit; coverage is incomplete and any
          "all outcomes OK" claim must say so. *)
}

val explore :
  ?max_schedules:int ->
  preemptions:int ->
  run:(pick:pick_fn -> outcome) ->
  on_outcome:(outcome -> unit) ->
  unit ->
  exploration
(** Chess-style iterative bounded-preemption enumeration. Systematically
    runs every schedule reachable with at most [preemptions] preemptive
    context switches (a switch away from a still-runnable thread;
    forced switches are free), using [Prefix] continuations: each run's
    branch points spawn new prefixes. [run] must create a {e fresh}
    system instance per call — determinism of the system under a fixed
    schedule is what makes the enumeration meaningful. [on_outcome]
    sees every completed run. [max_schedules] (default [100_000]) caps
    the enumeration; the result says whether it was hit. *)

(** {1 Shrinking} *)

val shrink_schedule :
  ?max_attempts:int -> fails:(int array -> bool) -> int array -> int array
(** Greedily simplify a failing schedule: repeatedly try deleting a
    run-length segment or relabelling it to its predecessor's thread
    (removing one context switch), keeping any candidate for which
    [fails] still holds. [fails] must re-run the system under the
    candidate schedule (replay semantics: [Prefix] + default
    continuation). At most [max_attempts] (default 500) candidate
    evaluations. *)
