module Mem = Nvram.Mem
module Flags = Nvram.Flags
module Config = Nvram.Config
module Pool = Pmwcas.Pool
module Op = Pmwcas.Op
module Layout = Pmwcas.Layout
module Recovery = Pmwcas.Recovery
module RegCheck = Linearize.Make (Model.Registers)
module KvCheck = Linearize.Make (Model.Kv)

let align8 a = (a + 7) / 8 * 8

type crash_point = { at : int; evict_prob : float; evict_seed : int }

type run_result = {
  outcome : Sched.outcome;
  verdict : Linearize.verdict;
  mem : Mem.t;
  crashed : bool;
  sweep_steps : int;
  history_ops : int;
  history_pending : int;
  verify_image : Mem.t -> Recovery.stats * string list;
}

type t = {
  name : string;
  nthreads : int;
  run :
    pick:Sched.pick_fn -> fuel:int option -> crash:crash_point option ->
    run_result;
}

(* A word recovery is done with must hold a plain payload. *)
let clean_word img a errs =
  let v = Mem.read img a in
  if Flags.is_rdcss v || Flags.is_mwcas v then begin
    errs :=
      Printf.sprintf "word %d still holds a descriptor pointer (%#x)" a v
      :: !errs;
    0
  end
  else Flags.clear_dirty v

let verdict_of_errs = function
  | [] -> Linearize.Linearizable
  | errs -> Linearize.Violation (String.concat "; " errs)

let push_verdict errs = function
  | Linearize.Linearizable -> ()
  | Linearize.Violation m -> errs := m :: !errs
  | v -> errs := Format.asprintf "%a" Linearize.pp_verdict v :: !errs

(* Shared driver: arm fuel, schedule the fibers, disarm, classify. *)
let scheduled_run ~base ~mem ~pick ~fuel ~crash bodies =
  let steps0 = Mem.steps base in
  (match fuel with Some f -> Mem.inject_crash_after base f | None -> ());
  let stop_at = Option.map (fun c -> c.at) crash in
  let outcome = Sched.run ?stop_at ~mem ~pick bodies in
  (match fuel with Some _ -> Mem.disarm base | None -> ());
  let sweep_steps = Mem.steps base - steps0 in
  let crashed =
    List.exists (fun (_, e) -> e = Mem.Crash) outcome.Sched.failures
  in
  let hard =
    List.filter_map
      (fun (i, e) ->
        match e with
        | Mem.Crash -> None
        | e -> Some (Printf.sprintf "fiber %d raised %s" i (Printexc.to_string e)))
      outcome.Sched.failures
  in
  (outcome, sweep_steps, crashed, hard)

let base_errs ~crash ~crashed outcome hard =
  let errs = ref (List.rev hard) in
  if outcome.Sched.stalled then
    errs := "scheduler stalled: max_steps exceeded (livelock?)" :: !errs;
  if crash = None && not crashed && not outcome.Sched.completed then
    errs := "fibers did not run to completion" :: !errs;
  errs

(* Resolve the verdict for the three run modes. [live_check] runs the
   completed-run checks (final state + invariants); [verify_image]
   checks a crash image. *)
let finish ~base ~crash ~crashed ~errs ~live_check ~verify_image =
  if !errs <> [] then verdict_of_errs (List.rev !errs)
  else
    match crash with
    | Some c -> (
        let img =
          Mem.crash_image ~evict_prob:c.evict_prob ~seed:c.evict_seed base
        in
        match verify_image img with
        | _, [] -> Linearize.Linearizable
        | _, verrs -> verdict_of_errs verrs
        | exception e ->
            Linearize.Violation
              ("verify_image raised: " ^ Printexc.to_string e))
    | None ->
        if crashed then
          (* Fueled run: Crash_sweep drives verify_image itself. *)
          Linearize.Linearizable
        else live_check ()

(* ------------------------------------------------------------------ *)
(* pmwcas: overlapping multi-word CASes on shared words.               *)

let pmwcas ?(threads = 2) ?(ops = 1) ?(width = 2) ?(addrs = 4) ?(seed = 0) () =
  if threads < 1 || threads > 26 then
    invalid_arg "Scenarios.pmwcas: threads must be in [1,26]";
  if width < 1 || width > addrs then
    invalid_arg "Scenarios.pmwcas: need 1 <= width <= addrs";
  let max_threads = threads + 1 in
  let pool_words = Pool.region_words ~max_threads () in
  let data_base = align8 pool_words in
  (* One register per cache line. Eviction in [Mem.crash_image] is
     per-line, so co-located registers would always persist together —
     hiding exactly the mixed (some-words-new, some-words-old) images a
     skipped precommit flush produces. *)
  let line_pitch = 8 in
  let addr_of a = data_base + (a * line_pitch) in
  let words = align8 (data_base + (addrs * line_pitch)) in
  let initial a = 1000 + a in
  let init_state =
    Model.Registers.init (List.init addrs (fun a -> (addr_of a, initial a)))
  in
  let run ~pick ~fuel ~crash =
    let base = Mem.create (Config.make ~words ()) in
    let mem = Mem.hooked base in
    let pool = Pool.create mem ~base:0 ~max_threads in
    for a = 0 to addrs - 1 do
      Mem.write mem (addr_of a) (initial a)
    done;
    Mem.persist_all mem;
    let hist : (Model.Registers.op, Model.Registers.res) History.t =
      History.create ()
    in
    let work t =
      let h = Pool.register pool in
      let rng = Random.State.make [| seed; t; 0xd57 |] in
      for j = 1 to ops do
        (* [width] distinct addresses, ascending (install order). *)
        let chosen =
          let all = Array.init addrs Fun.id in
          for i = 0 to width - 1 do
            let r = i + Random.State.int rng (addrs - i) in
            let tmp = all.(i) in
            all.(i) <- all.(r);
            all.(r) <- tmp
          done;
          List.sort compare (Array.to_list (Array.sub all 0 width))
        in
        let reads =
          List.map
            (fun a ->
              let c =
                History.invoke hist ~thread:t
                  (Model.Registers.Read (addr_of a))
              in
              let v = Op.read_with h (addr_of a) in
              History.return hist c (Model.Registers.Value v);
              (a, v))
            chosen
        in
        let triples =
          List.mapi
            (fun i (a, v) ->
              (addr_of a, v, 2000 + ((((t * ops) + j) * 16) + i)))
            reads
        in
        let c =
          History.invoke hist ~thread:t (Model.Registers.Mwcas triples)
        in
        let d = Pool.alloc_desc h in
        List.iter
          (fun (a, e, dv) -> Pool.add_word d ~addr:a ~expected:e ~desired:dv)
          triples;
        let ok = Op.execute d in
        History.return hist c (Model.Registers.Done ok)
      done;
      Pool.unregister h
    in
    let bodies = Array.init threads (fun t () -> work t) in
    let outcome, sweep_steps, crashed, hard =
      scheduled_run ~base ~mem ~pick ~fuel ~crash bodies
    in
    let errs = base_errs ~crash ~crashed outcome hard in
    let verify_image img =
      let _pool, stats = Recovery.run img ~base:0 in
      let verrs = ref [] in
      let observation =
        List.init addrs (fun a ->
            ( Model.Registers.Read (addr_of a),
              Model.Registers.Value (clean_word img (addr_of a) verrs) ))
      in
      push_verdict verrs
        (RegCheck.check_durable ~init:init_state ~observation hist);
      (stats, List.rev !verrs)
    in
    let live_check () =
      let lerrs = ref [] in
      (* Drain deferred recycling, then every slot must be terminal. *)
      (try ignore (Epoch.drain_all (Pool.epoch pool))
       with Failure m -> lerrs := ("drain_all: " ^ m) :: !lerrs);
      let l = Pool.layout pool in
      for i = 0 to l.Layout.nslots - 1 do
        let s = Pool.desc_status pool ~slot:(Layout.slot_off l i) in
        if s <> Layout.status_free then
          lerrs :=
            Printf.sprintf "slot %d not terminal: status %d" i s :: !lerrs
      done;
      if Pool.free_slots pool <> l.Layout.nslots then
        lerrs :=
          Printf.sprintf "%d of %d slots recycled" (Pool.free_slots pool)
            l.Layout.nslots
          :: !lerrs;
      let observation =
        List.init addrs (fun a ->
            ( Model.Registers.Read (addr_of a),
              Model.Registers.Value (clean_word base (addr_of a) lerrs) ))
      in
      push_verdict lerrs
        (RegCheck.check_durable ~init:init_state ~observation hist);
      verdict_of_errs (List.rev !lerrs)
    in
    let verdict = finish ~base ~crash ~crashed ~errs ~live_check ~verify_image in
    {
      outcome;
      verdict;
      mem = base;
      crashed;
      sweep_steps;
      history_ops = History.length hist;
      history_pending = History.pending hist;
      verify_image;
    }
  in
  { name = "pmwcas"; nthreads = threads; run }

(* ------------------------------------------------------------------ *)
(* Index scenarios share everything but construction and the op mix.   *)

let kv_observation ~keys ~find =
  List.init keys (fun i ->
      let k = i + 1 in
      (Model.Kv.Find k, Model.Kv.Opt (find ~key:k)))

let skiplist ?(threads = 2) ?(ops = 4) ?(keys = 5) ?(seed = 0) () =
  let module Pm = Skiplist.Pm in
  if threads < 1 || threads > 26 then
    invalid_arg "Scenarios.skiplist: threads must be in [1,26]";
  let max_threads = threads + 1 in
  let pool_words = Pool.region_words ~max_threads () in
  let heap_base = align8 pool_words in
  let heap_words = 1 lsl 13 in
  let anchor = align8 (heap_base + heap_words) in
  let words = align8 (anchor + Pm.anchor_words) in
  let run ~pick ~fuel ~crash =
    let base = Mem.create (Config.make ~words ()) in
    let mem = Mem.hooked base in
    let palloc =
      Palloc.create mem ~base:heap_base ~words:heap_words ~max_threads
    in
    let pool = Pool.create ~palloc mem ~base:0 ~max_threads in
    let sl = Pm.create ~pool ~palloc ~anchor () in
    Mem.persist_all mem;
    let hist : (Model.Kv.op, Model.Kv.res) History.t = History.create () in
    let work t =
      let h = Pm.register ~seed:((seed * 31) + t + 1) sl in
      let rng = Random.State.make [| seed; t; 0x5317 |] in
      for j = 1 to ops do
        let k = 1 + Random.State.int rng keys in
        let v = ((t + 1) * 1000) + j in
        (match Random.State.int rng 4 with
        | 0 ->
            let c = History.invoke hist ~thread:t (Model.Kv.Insert (k, v)) in
            let r = Pm.insert h ~key:k ~value:v in
            History.return hist c (Model.Kv.Bool r)
        | 1 ->
            let c = History.invoke hist ~thread:t (Model.Kv.Delete k) in
            let r = Pm.delete h ~key:k in
            History.return hist c (Model.Kv.Bool r)
        | 2 ->
            let c = History.invoke hist ~thread:t (Model.Kv.Update (k, v)) in
            let r = Pm.update h ~key:k ~value:v in
            History.return hist c (Model.Kv.Bool r)
        | _ ->
            let c = History.invoke hist ~thread:t (Model.Kv.Find k) in
            let r = Pm.find h ~key:k in
            History.return hist c (Model.Kv.Opt r));
        ()
      done;
      Pm.unregister h
    in
    let bodies = Array.init threads (fun t () -> work t) in
    let outcome, sweep_steps, crashed, hard =
      scheduled_run ~base ~mem ~pick ~fuel ~crash bodies
    in
    let errs = base_errs ~crash ~crashed outcome hard in
    let verify_image img =
      let palloc', _ =
        Palloc.recover img ~base:heap_base ~words:heap_words ~max_threads
      in
      let pool', stats = Recovery.run ~palloc:palloc' img ~base:0 in
      let sl' = Pm.attach ~pool:pool' ~palloc:palloc' ~anchor in
      let h' = Pm.register ~seed:97 sl' in
      let verrs = ref [] in
      (try Pm.check_invariants h'
       with Failure m -> verrs := ("invariants: " ^ m) :: !verrs);
      let observation =
        kv_observation ~keys ~find:(fun ~key -> Pm.find h' ~key)
      in
      push_verdict verrs
        (KvCheck.check_durable ~init:(Model.Kv.init []) ~observation hist);
      Pm.unregister h';
      (stats, List.rev !verrs)
    in
    let live_check () =
      let h' = Pm.register ~seed:98 sl in
      let lerrs = ref [] in
      Pm.quiesce h';
      (try Pm.check_invariants h'
       with Failure m -> lerrs := ("invariants: " ^ m) :: !lerrs);
      let observation =
        kv_observation ~keys ~find:(fun ~key -> Pm.find h' ~key)
      in
      push_verdict lerrs
        (KvCheck.check_durable ~init:(Model.Kv.init []) ~observation hist);
      Pm.unregister h';
      verdict_of_errs (List.rev !lerrs)
    in
    let verdict = finish ~base ~crash ~crashed ~errs ~live_check ~verify_image in
    {
      outcome;
      verdict;
      mem = base;
      crashed;
      sweep_steps;
      history_ops = History.length hist;
      history_pending = History.pending hist;
      verify_image;
    }
  in
  { name = "skiplist"; nthreads = threads; run }

let bwtree ?(threads = 2) ?(ops = 4) ?(keys = 5) ?(seed = 0) () =
  let module Tree = Bwtree.Tree in
  if threads < 1 || threads > 26 then
    invalid_arg "Scenarios.bwtree: threads must be in [1,26]";
  let max_threads = threads + 1 in
  let pool_words = Pool.region_words ~max_threads () in
  let heap_base = align8 pool_words in
  let heap_words = 1 lsl 13 in
  let anchor = align8 (heap_base + heap_words) in
  let map_base = align8 (anchor + Tree.anchor_words) in
  let map_words = 64 in
  let words = align8 (map_base + map_words) in
  let config = Tree.{ consolidate_len = 3; split_max = 4; merge_min = 1 } in
  let run ~pick ~fuel ~crash =
    let base = Mem.create (Config.make ~words ()) in
    let mem = Mem.hooked base in
    let palloc =
      Palloc.create mem ~base:heap_base ~words:heap_words ~max_threads
    in
    let pool = Pool.create ~palloc mem ~base:0 ~max_threads in
    let tree =
      Tree.create ~config ~pool ~palloc ~anchor ~map_base ~map_words ()
    in
    Mem.persist_all mem;
    let hist : (Model.Kv.op, Model.Kv.res) History.t = History.create () in
    let work t =
      let h = Tree.register tree in
      let rng = Random.State.make [| seed; t; 0xb37 |] in
      for j = 1 to ops do
        let k = 1 + Random.State.int rng keys in
        let v = ((t + 1) * 1000) + j in
        (match Random.State.int rng 4 with
        | 0 ->
            let c = History.invoke hist ~thread:t (Model.Kv.Insert (k, v)) in
            let r = Tree.insert h ~key:k ~value:v in
            History.return hist c (Model.Kv.Bool r)
        | 1 ->
            let c = History.invoke hist ~thread:t (Model.Kv.Delete k) in
            let r = Tree.remove h ~key:k in
            History.return hist c (Model.Kv.Bool r)
        | 2 ->
            let c = History.invoke hist ~thread:t (Model.Kv.Put (k, v)) in
            let r = Tree.put h ~key:k ~value:v in
            History.return hist c (Model.Kv.Opt r)
        | _ ->
            let c = History.invoke hist ~thread:t (Model.Kv.Find k) in
            let r = Tree.get h ~key:k in
            History.return hist c (Model.Kv.Opt r));
        ()
      done;
      Tree.unregister h
    in
    let bodies = Array.init threads (fun t () -> work t) in
    let outcome, sweep_steps, crashed, hard =
      scheduled_run ~base ~mem ~pick ~fuel ~crash bodies
    in
    let errs = base_errs ~crash ~crashed outcome hard in
    let verify_image img =
      let palloc', _ =
        Palloc.recover img ~base:heap_base ~words:heap_words ~max_threads
      in
      let pool', stats =
        Recovery.run ~palloc:palloc'
          ~callbacks:[ Tree.recovery_callback img ]
          img ~base:0
      in
      let tree' = Tree.attach ~pool:pool' ~palloc:palloc' ~anchor in
      let h' = Tree.register tree' in
      let verrs = ref [] in
      (try Tree.check_invariants h'
       with Failure m -> verrs := ("invariants: " ^ m) :: !verrs);
      let observation =
        kv_observation ~keys ~find:(fun ~key -> Tree.get h' ~key)
      in
      push_verdict verrs
        (KvCheck.check_durable ~init:(Model.Kv.init []) ~observation hist);
      Tree.unregister h';
      (stats, List.rev !verrs)
    in
    let live_check () =
      let h' = Tree.register tree in
      let lerrs = ref [] in
      Tree.quiesce h';
      (try Tree.check_invariants h'
       with Failure m -> lerrs := ("invariants: " ^ m) :: !lerrs);
      let observation =
        kv_observation ~keys ~find:(fun ~key -> Tree.get h' ~key)
      in
      push_verdict lerrs
        (KvCheck.check_durable ~init:(Model.Kv.init []) ~observation hist);
      Tree.unregister h';
      verdict_of_errs (List.rev !lerrs)
    in
    let verdict = finish ~base ~crash ~crashed ~errs ~live_check ~verify_image in
    {
      outcome;
      verdict;
      mem = base;
      crashed;
      sweep_steps;
      history_ops = History.length hist;
      history_pending = History.pending hist;
      verify_image;
    }
  in
  { name = "bwtree"; nthreads = threads; run }

(* The sharded store under group commit: fibers are clients of the
   flat-combining pipeline, so the schedule interleaves enqueue, combiner
   election, batch application (including merged multi-key PMwCASes) and
   the spin-wait seam — and a crash can land a committer mid-batch with
   waiters parked on the queue. Recovery is the store's own
   superblock-driven [Store.recover]. *)
let store ?(threads = 2) ?(ops = 4) ?(keys = 5) ?(shards = 2) ?(seed = 0) () =
  let module Store = Store in
  if threads < 1 || threads > 26 then
    invalid_arg "Scenarios.store: threads must be in [1,26]";
  let config =
    {
      Store.default_config with
      shards;
      max_clients = threads + 1;
      heap_words = 1 lsl 12;
      batch_limit = 4;
    }
  in
  let words = align8 (Store.words_needed config) in
  let sum_stats stats =
    List.fold_left
      (fun (acc : Recovery.stats) (r : Store.shard_recovery) ->
        {
          Recovery.scanned = acc.scanned + r.pmwcas.scanned;
          in_flight = acc.in_flight + r.pmwcas.in_flight;
          rolled_forward = acc.rolled_forward + r.pmwcas.rolled_forward;
          rolled_back = acc.rolled_back + r.pmwcas.rolled_back;
          words_restored = acc.words_restored + r.pmwcas.words_restored;
        })
      {
        Recovery.scanned = 0;
        in_flight = 0;
        rolled_forward = 0;
        rolled_back = 0;
        words_restored = 0;
      }
      stats
  in
  let run ~pick ~fuel ~crash =
    let base = Mem.create (Config.make ~words ()) in
    let mem = Mem.hooked base in
    let st = Store.create ~config mem ~base:0 in
    Mem.persist_all mem;
    let hist : (Model.Kv.op, Model.Kv.res) History.t = History.create () in
    let work t =
      let sess = Store.open_session st in
      let rng = Random.State.make [| seed; t; 0x570e |] in
      for j = 1 to ops do
        let k = 1 + Random.State.int rng keys in
        let v = ((t + 1) * 1000) + j in
        (match Random.State.int rng 4 with
        | 0 ->
            let c = History.invoke hist ~thread:t (Model.Kv.Insert (k, v)) in
            let r = Store.insert sess ~key:k ~value:v in
            History.return hist c (Model.Kv.Bool r)
        | 1 ->
            let c = History.invoke hist ~thread:t (Model.Kv.Delete k) in
            let r = Store.delete sess ~key:k in
            History.return hist c (Model.Kv.Bool r)
        | 2 ->
            let c = History.invoke hist ~thread:t (Model.Kv.Update (k, v)) in
            let r = Store.update sess ~key:k ~value:v in
            History.return hist c (Model.Kv.Bool r)
        | _ ->
            let c = History.invoke hist ~thread:t (Model.Kv.Find k) in
            let r = Store.find sess ~key:k in
            History.return hist c (Model.Kv.Opt r));
        ()
      done;
      Store.close_session sess
    in
    let bodies = Array.init threads (fun t () -> work t) in
    let outcome, sweep_steps, crashed, hard =
      scheduled_run ~base ~mem ~pick ~fuel ~crash bodies
    in
    let errs = base_errs ~crash ~crashed outcome hard in
    let verify_image img =
      let st', stats = Store.recover img ~base:0 in
      let sess' = Store.open_session st' in
      let verrs = ref [] in
      (try Store.check_invariants sess'
       with Failure m -> verrs := ("invariants: " ^ m) :: !verrs);
      let observation =
        kv_observation ~keys ~find:(fun ~key -> Store.find sess' ~key)
      in
      push_verdict verrs
        (KvCheck.check_durable ~init:(Model.Kv.init []) ~observation hist);
      Store.close_session sess';
      (sum_stats stats, List.rev !verrs)
    in
    let live_check () =
      let sess' = Store.open_session st in
      let lerrs = ref [] in
      Store.quiesce sess';
      (try Store.check_invariants sess'
       with Failure m -> lerrs := ("invariants: " ^ m) :: !lerrs);
      let observation =
        kv_observation ~keys ~find:(fun ~key -> Store.find sess' ~key)
      in
      push_verdict lerrs
        (KvCheck.check_durable ~init:(Model.Kv.init []) ~observation hist);
      Store.close_session sess';
      verdict_of_errs (List.rev !lerrs)
    in
    let verdict = finish ~base ~crash ~crashed ~errs ~live_check ~verify_image in
    {
      outcome;
      verdict;
      mem = base;
      crashed;
      sweep_steps;
      history_ops = History.length hist;
      history_pending = History.pending hist;
      verify_image;
    }
  in
  { name = "store"; nthreads = threads; run }

let names = [ "pmwcas"; "skiplist"; "bwtree"; "store" ]

let find = function
  | "pmwcas" -> Some (pmwcas ())
  | "skiplist" -> Some (skiplist ())
  | "bwtree" -> Some (bwtree ())
  | "store" -> Some (store ())
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Tokens: "<rle>" or "<rle>/c<at>e<seed>p<evict percent>".            *)

let encode_token ~schedule ~crash =
  let s = Sched.encode_schedule schedule in
  match crash with
  | None -> s
  | Some c ->
      Printf.sprintf "%s/c%de%dp%d" s c.at c.evict_seed
        (int_of_float ((c.evict_prob *. 100.) +. 0.5))

let decode_token token =
  match String.index_opt token '/' with
  | None -> (Sched.decode_schedule token, None)
  | Some i ->
      let sched = Sched.decode_schedule (String.sub token 0 i) in
      let rest = String.sub token (i + 1) (String.length token - i - 1) in
      let fail () = invalid_arg "Scenarios.decode_token: malformed crash spec" in
      (try Scanf.sscanf rest "c%de%dp%d%!" (fun at seed pct ->
           if at < 0 || pct < 0 || pct > 100 then fail ();
           ( sched,
             Some
               {
                 at;
                 evict_seed = seed;
                 evict_prob = float_of_int pct /. 100.;
               } ))
       with Scanf.Scan_failure _ | Failure _ | End_of_file -> fail ())

let replay scenario token =
  let schedule, crash = decode_token token in
  scenario.run
    ~pick:(Sched.pick_of_strategy (Sched.Prefix schedule))
    ~fuel:None ~crash

let verdict_fails r = not (Linearize.verdict_ok r.verdict)

let hunt ?(seeds = [ 1; 2; 3; 4; 5 ]) ?(evicts = [ (0., 0); (0.3, 1); (0.3, 2) ])
    ?(stride = 1) scenario =
  let stride = max 1 stride in
  let result = ref None in
  let try_seed seed =
    if !result = None then begin
      let full =
        scenario.run
          ~pick:(Sched.pick_of_strategy (Sched.Random seed))
          ~fuel:None ~crash:None
      in
      if verdict_fails full then
        result :=
          Some
            ( encode_token ~schedule:full.outcome.Sched.schedule ~crash:None,
              full )
      else begin
        let s = full.outcome.Sched.schedule in
        let steps = Array.length s in
        let at = ref 1 in
        while !result = None && !at < steps do
          List.iter
            (fun (evict_prob, evict_seed) ->
              if !result = None then begin
                let crash = { at = !at; evict_prob; evict_seed } in
                let r =
                  scenario.run
                    ~pick:(Sched.pick_of_strategy (Sched.Prefix s))
                    ~fuel:None ~crash:(Some crash)
                in
                if verdict_fails r then
                  result :=
                    Some
                      ( encode_token
                          ~schedule:(Array.sub s 0 (min !at steps))
                          ~crash:(Some crash),
                        r )
              end)
            evicts;
          at := !at + stride
        done
      end
    end
  in
  List.iter try_seed seeds;
  !result

let shrink_token scenario token =
  let schedule, crash = decode_token token in
  match crash with
  | None ->
      let fails sched =
        verdict_fails
          (scenario.run
             ~pick:(Sched.pick_of_strategy (Sched.Prefix sched))
             ~fuel:None ~crash:None)
      in
      if not (fails schedule) then token
      else
        encode_token
          ~schedule:(Sched.shrink_schedule ~fails schedule)
          ~crash:None
  | Some c ->
      let run_at sched =
        scenario.run
          ~pick:(Sched.pick_of_strategy (Sched.Prefix sched))
          ~fuel:None
          ~crash:(Some { c with at = Array.length sched })
      in
      let fails sched = verdict_fails (run_at sched) in
      let sched0 =
        if Array.length schedule = c.at then schedule
        else if c.at < Array.length schedule then Array.sub schedule 0 c.at
        else schedule
      in
      if not (fails sched0) then token
      else begin
        let s' = Sched.shrink_schedule ~fails sched0 in
        encode_token ~schedule:s'
          ~crash:(Some { c with at = Array.length s' })
      end

let exhaust ?max_schedules ?(preemptions = 1) scenario =
  let violations = ref [] in
  let run ~pick =
    let r = scenario.run ~pick ~fuel:None ~crash:None in
    if verdict_fails r then
      violations :=
        (Sched.encode_schedule r.outcome.Sched.schedule, r.verdict)
        :: !violations;
    r.outcome
  in
  let e =
    Sched.explore ?max_schedules ~preemptions ~run ~on_outcome:ignore ()
  in
  (e, List.rev !violations)

(* Shared shape of the sabotage self-tests: flip a knob that breaks one
   protocol obligation, hunt for the violation, shrink, and require the
   token to fail under sabotage and pass clean. *)
let sabotage_selftest ~set ~missing ~seeds ~stride ~log scenario =
  set true;
  Fun.protect
    ~finally:(fun () -> set false)
    (fun () ->
      match hunt ~seeds ~stride scenario with
      | None -> Error missing
      | Some (token, _) ->
          log (Printf.sprintf "violation found: %s" token);
          let token = shrink_token scenario token in
          log (Printf.sprintf "shrunk to: %s" token);
          let sabotaged = replay scenario token in
          if not (verdict_fails sabotaged) then
            Error
              (Printf.sprintf "token %s did not replay the violation" token)
          else begin
            set false;
            let clean = replay scenario token in
            set true;
            if verdict_fails clean then
              Error
                (Printf.sprintf "token %s fails even without sabotage: %s"
                   token
                   (Format.asprintf "%a" Linearize.pp_verdict clean.verdict))
            else Ok token
          end)

let recycle_selftest ?(seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ])
    ?(stride = 4) ?(log = ignore) () =
  (* Two threads, overlapping 2-word CASes over 3 words: operations
     conflict constantly, so helpers hold references into peers'
     descriptors across many yield points. With immediate recycle (no
     epoch limbo) an owner can retire and reuse a slot a helper still
     points at — caught by [Op.help]'s recycled-while-referenced
     detector, or by the durable-linearizability checker when the stale
     reference corrupts a crash image. *)
  let scenario = pmwcas ~threads:2 ~ops:4 ~width:2 ~addrs:3 () in
  sabotage_selftest ~set:Pool.set_sabotage_immediate_recycle
    ~missing:"immediate recycle (epoch limbo bypassed) was NOT detected"
    ~seeds ~stride ~log scenario

let broken_helper_selftest ?(seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ]) ?(stride = 1)
    ?(log = ignore) () =
  let scenario = pmwcas ~threads:2 ~ops:2 ~width:2 ~addrs:4 () in
  sabotage_selftest ~set:Op.set_sabotage_skip_precommit_flush
    ~missing:"sabotaged precommit flush was NOT detected" ~seeds ~stride ~log
    scenario

let with_strategy strat f =
  let saved = Config.default_strategy () in
  Config.set_default_strategy strat;
  Fun.protect ~finally:(fun () -> Config.set_default_strategy saved) f

(* The strategy self-tests force the process-global default strategy
   for the whole hunt/shrink/replay cycle: scenario devices are created
   inside [run], so every (re-)execution — including the clean control
   replay with the knob parked — runs under the variant whose
   obligation the knob breaks. *)
let broken_nodirty_selftest ?(seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ])
    ?(stride = 1) ?(log = ignore) () =
  let scenario = pmwcas ~threads:2 ~ops:2 ~width:2 ~addrs:4 () in
  with_strategy `NoDirty (fun () ->
      sabotage_selftest
        ~set:Nvram.Strategy.set_sabotage_skip_nodirty_flush
        ~missing:
          "skipped unconditional flushes (nodirty sabotage) were NOT detected"
        ~seeds ~stride ~log scenario)

let broken_fewfence_selftest ?(seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ])
    ?(stride = 1) ?(log = ignore) () =
  let scenario = pmwcas ~threads:2 ~ops:2 ~width:2 ~addrs:4 () in
  with_strategy `FewFence (fun () ->
      sabotage_selftest
        ~set:Nvram.Strategy.set_sabotage_skip_commit_fence
        ~missing:"dropped commit fence (fewfence sabotage) was NOT detected"
        ~seeds ~stride ~log scenario)
