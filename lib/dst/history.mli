(** Concurrent-operation history recorder.

    A history is the sequence of operation {e invocations} and
    {e responses} a concurrent run produced, in real-time order — the
    input to the linearizability checker ({!Linearize}). Each logical
    thread records [invoke] when it starts an operation and [return]
    when the operation's response becomes visible to it; an operation
    whose return never happened (the run crashed, or the scheduler was
    stopped mid-flight) stays {e pending}, and the checker is free to
    include or exclude it.

    The recorder is {e not} thread-safe: it is designed for the
    cooperative DST scheduler, where all logical threads share one
    domain and record strictly between yield points. *)

type ('op, 'res) call
(** Token for one in-flight operation, handed back to [return]. *)

type ('op, 'res) t

val create : unit -> ('op, 'res) t

val invoke : ('op, 'res) t -> thread:int -> 'op -> ('op, 'res) call
(** Record the invocation of [op] by logical thread [thread]. *)

val return : ('op, 'res) t -> ('op, 'res) call -> 'res -> unit
(** Record the response of a previously invoked operation.
    @raise Invalid_argument if the call already returned. *)

type ('op, 'res) entry = {
  thread : int;
  op : 'op;
  res : 'res option;  (** [None] — pending (no response recorded). *)
  inv : int;  (** Invocation stamp (global, monotonic). *)
  ret : int;  (** Response stamp; [max_int] when pending. *)
}

val entries : ('op, 'res) t -> ('op, 'res) entry array
(** All recorded operations, sorted by invocation stamp. *)

val length : ('op, 'res) t -> int
val pending : ('op, 'res) t -> int

val pp :
  pp_op:(Format.formatter -> 'op -> unit) ->
  pp_res:(Format.formatter -> 'res -> unit) ->
  Format.formatter ->
  ('op, 'res) t ->
  unit
(** One line per operation: [t<thread> inv..ret op -> res]. *)
