(** Executable DST scenarios: concurrent workloads over the real PMwCAS
    stack, run under the deterministic scheduler with every operation
    recorded and checked for (durable) linearizability.

    Each scenario builds a fresh simulated-NVRAM device wrapped with
    {!Nvram.Mem.hooked}, runs N logical threads as fibers under a
    {!Sched} strategy, and produces a {!run_result} carrying the
    scheduler outcome, a linearizability verdict, and a [verify_image]
    closure that re-checks any crash image of the run's device against
    the recorded history (durable linearizability) — the piece
    {!Harness.Crash_sweep} composes with.

    Three modes per run:
    - {b completed} ([fuel = None], [crash = None]): all fibers run to
      completion; the verdict covers plain linearizability, the final
      observed state, structure invariants (indexes) and — for the
      PMwCAS scenario — every descriptor slot back at terminal [Free];
    - {b scheduled crash} ([crash = Some _]): the scheduler stops at an
      exact step with every fiber parked at a word-operation boundary,
      takes a (possibly evicting) crash image, recovers it and requires
      the post-crash state to match a prefix-consistent linearization;
    - {b fuel crash} ([fuel = Some _]): the classic injector model, for
      {!Harness.Crash_sweep} composition ([run_result.crashed],
      [sweep_steps] and [verify_image] line up with [Crash_sweep.run]). *)

type crash_point = {
  at : int;  (** Scheduler step to stop at. *)
  evict_prob : float;  (** Cache-line eviction probability for the image. *)
  evict_seed : int;
}

type run_result = {
  outcome : Sched.outcome;
  verdict : Linearize.verdict;
  mem : Nvram.Mem.t;  (** The base (unhooked, unwrapped) device. *)
  crashed : bool;  (** An injected [Mem.Crash] fired during the run. *)
  sweep_steps : int;
      (** Mutating device operations during the scheduled phase. *)
  history_ops : int;
  history_pending : int;
  verify_image : Nvram.Mem.t -> Pmwcas.Recovery.stats * string list;
      (** Recover a crash image of [mem] and check durable
          linearizability of the recorded history against it. *)
}

type t = {
  name : string;
  nthreads : int;
  run :
    pick:Sched.pick_fn -> fuel:int option -> crash:crash_point option ->
    run_result;
}

(** {1 Scenarios} *)

val pmwcas :
  ?threads:int -> ?ops:int -> ?width:int -> ?addrs:int -> ?seed:int -> unit -> t
(** Raw overlapping PMwCAS operations: each thread performs [ops]
    multi-word CASes of [width] (default 2) words drawn from [addrs]
    (default 4) shared words, reading its expected values through
    [Op.read_with] first (reads are recorded operations too). With
    [addrs = width] every operation targets the same words — forced
    RDCSS install collisions and helping. Checked against
    {!Model.Registers}; completed runs additionally require every
    descriptor slot durably back at [Free]. *)

val skiplist :
  ?threads:int -> ?ops:int -> ?keys:int -> ?seed:int -> unit -> t
(** Mixed insert/delete/update/find over the doubly-linked PMwCAS skip
    list, checked against {!Model.Kv} (plus [check_invariants]). *)

val bwtree : ?threads:int -> ?ops:int -> ?keys:int -> ?seed:int -> unit -> t
(** Mixed insert/remove/put/get over the Bw-tree with aggressive
    consolidation/split thresholds, checked against {!Model.Kv}. *)

val store :
  ?threads:int -> ?ops:int -> ?keys:int -> ?shards:int -> ?seed:int -> unit
  -> t
(** Mixed insert/delete/update/find against the sharded group-commit
    store (skip-list shards, small batch limit): the schedule interleaves
    queue pushes, combiner election, merged-batch application and the
    spin-wait seam, and crash images exercise [Store.recover]'s
    superblock-driven multi-shard recovery. Checked against
    {!Model.Kv}. *)

val names : string list
val find : string -> t option
(** Scenario with default parameters, by name. *)

(** {1 Schedule tokens (replayable failure repros)} *)

val encode_token : schedule:int array -> crash:crash_point option -> string
(** ["a12b3"] for a completed-run schedule, ["a12b3/c15e2p30"] for a
    crash at step 15 with eviction seed 2 at probability 0.30. *)

val decode_token : string -> int array * crash_point option
(** @raise Invalid_argument on malformed input. *)

val replay : t -> string -> run_result
(** Re-run a token: [Prefix] replay of the schedule (+ the recorded
    crash point, if any). Deterministic — equal tokens, equal verdicts. *)

(** {1 Drivers} *)

val hunt :
  ?seeds:int list ->
  ?evicts:(float * int) list ->
  ?stride:int ->
  t ->
  (string * run_result) option
(** Search for a violation: for each seed, run a [Random]-schedule
    execution to completion (checking it), then re-run its recorded
    schedule stopping at every [stride]-th step (default 1), taking a
    no-eviction image plus one per [evicts] entry, recovering and
    checking each. Returns the first failing token. *)

val shrink_token : t -> string -> string
(** Greedy shrink of a failing token ({!Sched.shrink_schedule}); returns
    a (weakly) simpler token that still fails, or the input unchanged. *)

val exhaust :
  ?max_schedules:int ->
  ?preemptions:int ->
  t ->
  Sched.exploration * (string * Linearize.verdict) list
(** Exhaustive bounded-preemption enumeration (default 1 preemption) of
    completed runs; returns the exploration stats and every violating
    (token, verdict). *)

val broken_helper_selftest :
  ?seeds:int list -> ?stride:int -> ?log:(string -> unit) -> unit ->
  (string, string) result
(** Seeded end-to-end self-test of the whole DST stack: enable
    {!Pmwcas.Op.set_sabotage_skip_precommit_flush}, hunt the PMwCAS
    scenario for a durable-linearizability violation, shrink it, and
    require that (a) the shrunk token still reproduces the violation
    under sabotage and (b) the same token is clean without sabotage.
    [Ok token] when all three hold; [Error reason] otherwise — a
    passing DST harness must return [Ok]. *)

val recycle_selftest :
  ?seeds:int list -> ?stride:int -> ?log:(string -> unit) -> unit ->
  (string, string) result
(** Same shape for the descriptor-recycling protocol: enable
    {!Pmwcas.Pool.set_sabotage_immediate_recycle} (retired slots skip the
    epoch limbo list and are reused at once) and hunt a high-conflict
    PMwCAS scenario for the resulting use-after-recycle — a helper
    entering a descriptor after its slot was retired, flagged by
    [Op.help]'s recycled-while-referenced check or by the
    linearizability checker. The found token must fail under sabotage
    and pass clean, demonstrating that epoch limbo is what prevents
    reuse-under-readers. *)

val with_strategy : Nvram.Config.strategy -> (unit -> 'a) -> 'a
(** [with_strategy s f] runs [f] with the process-global default
    commit-protocol strategy ({!Nvram.Config.set_default_strategy})
    forced to [s], restoring the previous default afterwards. Scenario
    devices are created inside [run], so every run/replay under the
    wrapper executes the protocol variant [s]. *)

val broken_nodirty_selftest :
  ?seeds:int list -> ?stride:int -> ?log:(string -> unit) -> unit ->
  (string, string) result
(** Same shape for the [`NoDirty] strategy: under a forced [`NoDirty]
    default, enable
    {!Nvram.Strategy.set_sabotage_skip_nodirty_flush} — writers skip
    the unconditional flushes that replace the dirty-bit machinery, so
    neither phase-1 pointers nor decided statuses durably reach NVM —
    and hunt the PMwCAS scenario for the resulting durable
    linearizability violation. The shrunk token must fail under
    sabotage and pass clean (still under [`NoDirty]). *)

val broken_fewfence_selftest :
  ?seeds:int list -> ?stride:int -> ?log:(string -> unit) -> unit ->
  (string, string) result
(** Same shape for the [`FewFence] strategy: under a forced [`FewFence]
    default, enable {!Nvram.Strategy.set_sabotage_skip_commit_fence} —
    the relocated commit fence is dropped, leaving an acknowledged
    operation's status and finals pending until some unrelated fence
    happens to drain them — and hunt for the crash window where the
    acknowledged operation rolls back. The shrunk token must fail under
    sabotage and pass clean (still under [`FewFence]). *)
