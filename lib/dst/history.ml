type ('op, 'res) call = {
  c_thread : int;
  c_op : 'op;
  mutable c_res : 'res option;
  c_inv : int;
  mutable c_ret : int;
}

type ('op, 'res) t = {
  mutable calls : ('op, 'res) call list; (* reverse invocation order *)
  mutable stamp : int;
  mutable n : int;
}

type ('op, 'res) entry = {
  thread : int;
  op : 'op;
  res : 'res option;
  inv : int;
  ret : int;
}

let create () = { calls = []; stamp = 0; n = 0 }

let invoke t ~thread op =
  let c =
    { c_thread = thread; c_op = op; c_res = None; c_inv = t.stamp; c_ret = max_int }
  in
  t.stamp <- t.stamp + 1;
  t.n <- t.n + 1;
  t.calls <- c :: t.calls;
  c

let return t c res =
  if c.c_res <> None then invalid_arg "History.return: call already returned";
  c.c_res <- Some res;
  c.c_ret <- t.stamp;
  t.stamp <- t.stamp + 1

let entries t =
  let a =
    Array.of_list
      (List.rev_map
         (fun c ->
           {
             thread = c.c_thread;
             op = c.c_op;
             res = c.c_res;
             inv = c.c_inv;
             ret = c.c_ret;
           })
         t.calls)
  in
  a

let length t = t.n

let pending t =
  List.fold_left (fun n c -> if c.c_res = None then n + 1 else n) 0 t.calls

let pp ~pp_op ~pp_res ppf t =
  Array.iter
    (fun e ->
      Format.fprintf ppf "t%d %6d..%-6s %a -> %a@." e.thread e.inv
        (if e.ret = max_int then "?" else string_of_int e.ret)
        pp_op e.op
        (fun ppf -> function
          | None -> Format.pp_print_string ppf "pending"
          | Some r -> pp_res ppf r)
        e.res)
    (entries t)
