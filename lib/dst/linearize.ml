module type MODEL = sig
  type state
  type op
  type res

  val apply : state -> op -> state * res
  val state_key : state -> string
  val equal_res : res -> res -> bool
  val pp_op : Format.formatter -> op -> unit
  val pp_res : Format.formatter -> res -> unit
end

type verdict = Linearizable | Violation of string | Out_of_budget

let verdict_ok = function Linearizable -> true | _ -> false

let pp_verdict ppf = function
  | Linearizable -> Format.pp_print_string ppf "linearizable"
  | Violation msg -> Format.fprintf ppf "VIOLATION: %s" msg
  | Out_of_budget -> Format.pp_print_string ppf "out of checker budget"

module Make (M : MODEL) = struct
  exception Found
  exception Budget

  (* Wing–Gong search. State: per-thread cursor into that thread's
     (real-time ordered) operation list, plus the model state reached by
     the linearization prefix chosen so far. A thread head [e] may
     linearize next iff no other un-linearized operation returned before
     [e] was invoked — since per-thread stamps are monotone, it suffices
     to compare against the minimum return stamp over the other thread
     heads. A pending head (no response) may also be dropped outright:
     its effects never have to appear. Visited (cursors, state) pairs
     are memoized (Lowe's optimization), which turns the factorial
     search into something tractable for the history sizes DST runs
     produce. *)

  let search ?(budget = 2_000_000) ~init ~(obs_ok : M.state -> bool) h =
    let es = History.entries h in
    let nthreads =
      Array.fold_left (fun m (e : _ History.entry) -> max m (e.thread + 1)) 0 es
    in
    let per_thread =
      Array.init nthreads (fun t ->
          Array.of_list
            (List.filter
               (fun (e : _ History.entry) -> e.thread = t)
               (Array.to_list es)))
    in
    (* Well-formedness: within a thread, a pending op must be the last
       one — a logical thread cannot invoke past an unanswered call. *)
    Array.iter
      (fun ops ->
        Array.iteri
          (fun i (e : _ History.entry) ->
            if e.res = None && i < Array.length ops - 1 then
              invalid_arg "Linearize: pending op is not last in its thread")
          ops)
      per_thread;
    let progress = Array.make (max nthreads 1) 0 in
    let visited = Hashtbl.create 4096 in
    let nodes = ref 0 in
    let buf = Buffer.create 64 in
    let progress_key state_k =
      Buffer.clear buf;
      Array.iter
        (fun p ->
          Buffer.add_string buf (string_of_int p);
          Buffer.add_char buf ',')
        progress;
      Buffer.add_char buf '#';
      Buffer.add_string buf state_k;
      Buffer.contents buf
    in
    let rec dfs state state_k =
      let all_done = ref true in
      for t = 0 to nthreads - 1 do
        if progress.(t) < Array.length per_thread.(t) then all_done := false
      done;
      if !all_done then (if obs_ok state then raise Found)
      else
        let key = progress_key state_k in
        if not (Hashtbl.mem visited key) then begin
          Hashtbl.add visited key ();
          incr nodes;
          if !nodes > budget then raise Budget;
          (* Minimum return stamp over current heads: an op invoked
             after that point cannot linearize before the op that
             produced it. *)
          let min_ret = ref max_int in
          for t = 0 to nthreads - 1 do
            if progress.(t) < Array.length per_thread.(t) then begin
              let e = per_thread.(t).(progress.(t)) in
              if e.ret < !min_ret then min_ret := e.ret
            end
          done;
          for t = 0 to nthreads - 1 do
            if progress.(t) < Array.length per_thread.(t) then begin
              let e = per_thread.(t).(progress.(t)) in
              (if e.inv <= !min_ret then
                 let state', r = M.apply state e.op in
                 let matches =
                   match e.res with
                   | None -> true (* pending: any response is acceptable *)
                   | Some r0 -> M.equal_res r r0
                 in
                 if matches then begin
                   progress.(t) <- progress.(t) + 1;
                   dfs state' (M.state_key state');
                   progress.(t) <- progress.(t) - 1
                 end);
              if e.res = None then begin
                (* Drop the pending op entirely. *)
                progress.(t) <- progress.(t) + 1;
                dfs state state_k;
                progress.(t) <- progress.(t) - 1
              end
            end
          done
        end
    in
    match dfs init (M.state_key init) with
    | () ->
        let dump =
          Format.asprintf "%a"
            (History.pp ~pp_op:M.pp_op ~pp_res:M.pp_res)
            h
        in
        Violation
          (Printf.sprintf
             "no linearization of %d ops (%d pending, %d states explored)\n%s"
             (History.length h) (History.pending h) !nodes dump)
    | exception Found -> Linearizable
    | exception Budget -> Out_of_budget

  let check ?budget ~init h = search ?budget ~init ~obs_ok:(fun _ -> true) h

  let check_durable ?budget ~init ~observation h =
    let obs_ok state =
      let rec go state = function
        | [] -> true
        | (op, expect) :: rest ->
            let state', r = M.apply state op in
            M.equal_res r expect && go state' rest
      in
      go state observation
    in
    match search ?budget ~init ~obs_ok h with
    | Violation msg ->
        let obs_dump =
          String.concat "; "
            (List.map
               (fun (op, r) ->
                 Format.asprintf "%a -> %a" M.pp_op op M.pp_res r)
               observation)
        in
        Violation
          (Printf.sprintf "durable check: %s\nobservation: %s" msg obs_dump)
    | v -> v
end
