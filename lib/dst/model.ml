(* States are sorted association lists: cheap, canonical (so state_key
   is just a fold), and persistent — the checker's DFS backtracks, so
   states must be immutable. Histories DST produces touch a handful of
   addresses/keys; no balanced tree needed. *)

let rec assoc_upsert k v = function
  | [] -> [ (k, v) ]
  | (k', _) as hd :: tl ->
      if k < k' then (k, v) :: hd :: tl
      else if k = k' then (k, v) :: tl
      else hd :: assoc_upsert k v tl

let rec assoc_remove k = function
  | [] -> []
  | ((k', _) as hd) :: tl ->
      if k = k' then tl else if k < k' then hd :: tl else hd :: assoc_remove k tl

let key_of_bindings bindings =
  let buf = Buffer.create 32 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (string_of_int k);
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf ';')
    bindings;
  Buffer.contents buf

module Registers = struct
  type state = (int * int) list (* sorted by address *)
  type op = Read of int | Mwcas of (int * int * int) list
  type res = Value of int | Done of bool

  let init bindings =
    List.sort_uniq (fun (a, _) (b, _) -> compare a b) bindings

  let get state a = match List.assoc_opt a state with Some v -> v | None -> 0

  let apply state = function
    | Read a -> (state, Value (get state a))
    | Mwcas words ->
        if List.for_all (fun (a, exp, _) -> get state a = exp) words then
          ( List.fold_left (fun s (a, _, des) -> assoc_upsert a des s) state words,
            Done true )
        else (state, Done false)

  let state_key = key_of_bindings
  let equal_res (a : res) b = a = b

  let pp_op ppf = function
    | Read a -> Format.fprintf ppf "read[%d]" a
    | Mwcas words ->
        Format.fprintf ppf "mwcas{%s}"
          (String.concat ","
             (List.map
                (fun (a, exp, des) -> Printf.sprintf "[%d]:%d->%d" a exp des)
                words))

  let pp_res ppf = function
    | Value v -> Format.fprintf ppf "%d" v
    | Done b -> Format.fprintf ppf "%B" b
end

module Kv = struct
  type state = (int * int) list (* sorted by key *)

  type op =
    | Insert of int * int
    | Delete of int
    | Update of int * int
    | Put of int * int
    | Find of int

  type res = Bool of bool | Opt of int option

  let init bindings =
    List.sort_uniq (fun (a, _) (b, _) -> compare a b) bindings

  let apply state = function
    | Insert (k, v) ->
        if List.mem_assoc k state then (state, Bool false)
        else (assoc_upsert k v state, Bool true)
    | Delete k ->
        if List.mem_assoc k state then (assoc_remove k state, Bool true)
        else (state, Bool false)
    | Update (k, v) ->
        if List.mem_assoc k state then (assoc_upsert k v state, Bool true)
        else (state, Bool false)
    | Put (k, v) -> (assoc_upsert k v state, Opt (List.assoc_opt k state))
    | Find k -> (state, Opt (List.assoc_opt k state))

  let state_key = key_of_bindings
  let equal_res (a : res) b = a = b

  let pp_op ppf = function
    | Insert (k, v) -> Format.fprintf ppf "insert(%d,%d)" k v
    | Delete k -> Format.fprintf ppf "delete(%d)" k
    | Update (k, v) -> Format.fprintf ppf "update(%d,%d)" k v
    | Put (k, v) -> Format.fprintf ppf "put(%d,%d)" k v
    | Find k -> Format.fprintf ppf "find(%d)" k

  let pp_res ppf = function
    | Bool b -> Format.fprintf ppf "%B" b
    | Opt None -> Format.pp_print_string ppf "none"
    | Opt (Some v) -> Format.fprintf ppf "some %d" v
end
