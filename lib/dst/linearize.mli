(** Linearizability checking (Wing–Gong search with Lowe-style
    memoization) over recorded {!History} values.

    A history is linearizable w.r.t. a sequential model when there is a
    total order of its operations that (a) respects real time — if op
    [a] returned before op [b] was invoked, [a] precedes [b]; (b) agrees
    with the model: replaying the order from the initial state yields
    exactly the recorded responses. Operations that never returned
    ({e pending} — the run crashed or was stopped) may be included at
    any legal point or dropped entirely, per the standard definition.

    [check_durable] adds the durable-linearizability acceptance bar of
    Zuriel et al.: the state {e observed after crash + recovery} must be
    the final state of some such linearization — every acknowledged
    operation persisted, pending ones atomically or not at all. The
    observation is a sequence of (operation, expected response) pairs
    replayed against each candidate final state. *)

module type MODEL = sig
  type state
  type op
  type res

  val apply : state -> op -> state * res
  (** Purely functional sequential semantics. *)

  val state_key : state -> string
  (** Canonical encoding, used to memoize visited search states. Equal
      states must map to equal keys. *)

  val equal_res : res -> res -> bool
  val pp_op : Format.formatter -> op -> unit
  val pp_res : Format.formatter -> res -> unit
end

type verdict =
  | Linearizable
  | Violation of string  (** Human-readable explanation + history dump. *)
  | Out_of_budget
      (** The search exceeded its node budget — no verdict. Treat as a
          failure in tests; raise the budget to resolve. *)

val verdict_ok : verdict -> bool
(** [true] only for [Linearizable]. *)

val pp_verdict : Format.formatter -> verdict -> unit

module Make (M : MODEL) : sig
  val check :
    ?budget:int -> init:M.state -> (M.op, M.res) History.t -> verdict
  (** Plain linearizability of a (possibly crashed) history. [budget]
      (default 2,000,000) caps visited search nodes. *)

  val check_durable :
    ?budget:int ->
    init:M.state ->
    observation:(M.op * M.res) list ->
    (M.op, M.res) History.t ->
    verdict
  (** Durable linearizability: some linearization of the history (all
      completed ops, any subset of pending ones) must produce a final
      state on which replaying [observation] yields exactly the given
      responses. *)
end
