(** Sequential specification models for the linearizability checker.

    Two models cover the repo's concurrent objects: {!Registers} — an
    array of integer words mutated by multi-word CAS, the specification
    of [Pmwcas.Op] — and {!Kv} — a finite int→int map, the shared
    specification of the persistent skiplist and the Bw-tree. *)

(** Shared registers with atomic multi-word CAS. State maps addresses
    to values; unmentioned addresses read as 0. *)
module Registers : sig
  type state

  type op =
    | Read of int  (** Read one address. *)
    | Mwcas of (int * int * int) list
        (** [(addr, expected, desired)] triples; atomically installs all
            desireds iff every address holds its expected value. *)

  type res = Value of int | Done of bool

  include
    Linearize.MODEL with type state := state and type op := op and type res := res

  val init : (int * int) list -> state
  (** Initial state from [(addr, value)] bindings. *)
end

(** A finite map with the combined skiplist/Bw-tree API surface. *)
module Kv : sig
  type state

  type op =
    | Insert of int * int  (** Fails (false) if the key exists. *)
    | Delete of int  (** Fails (false) if the key is absent. *)
    | Update of int * int  (** Fails (false) if the key is absent. *)
    | Put of int * int  (** Upsert; returns the previous binding. *)
    | Find of int

  type res = Bool of bool | Opt of int option

  include
    Linearize.MODEL with type state := state and type op := op and type res := res

  val init : (int * int) list -> state
end
