type _ Effect.t += Yield : unit Effect.t

type pick_fn = step:int -> current:int option -> runnable:int array -> int

type outcome = {
  schedule : int array;
  runnable_log : int array array;
  completed : bool;
  stopped : bool;
  stalled : bool;
  failures : (int * exn) list;
}

type fiber =
  | Ready of (unit -> unit)
  | Paused of (unit, unit) Effect.Deep.continuation
  | Finished

let run ?(max_steps = 200_000) ?stop_at ~mem ~pick bodies =
  let n = Array.length bodies in
  let fibers = Array.map (fun f -> Ready f) bodies in
  let failures = ref [] in
  let schedule = ref [] in
  let rlog = ref [] in
  let steps = ref 0 in
  let current = ref None in
  let stopped = ref false in
  let stalled = ref false in
  let handler i =
    {
      Effect.Deep.retc = (fun () -> fibers.(i) <- Finished);
      exnc =
        (fun e ->
          fibers.(i) <- Finished;
          failures := (i, e) :: !failures);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  fibers.(i) <- Paused k)
          | _ -> None);
    }
  in
  let resume i =
    match fibers.(i) with
    | Ready f -> Effect.Deep.match_with f () (handler i)
    | Paused k -> Effect.Deep.continue k ()
    | Finished -> assert false
  in
  let runnable () =
    let count = ref 0 in
    Array.iter (function Finished -> () | _ -> incr count) fibers;
    let out = Array.make !count 0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      match fibers.(i) with
      | Finished -> ()
      | _ ->
          out.(!j) <- i;
          incr j
    done;
    out
  in
  Nvram.Mem.set_hook mem (fun () -> Effect.perform Yield);
  Fun.protect
    ~finally:(fun () -> Nvram.Mem.clear_hook mem)
    (fun () ->
      let rec loop () =
        let r = runnable () in
        if Array.length r = 0 then ()
        else if match stop_at with Some s -> !steps >= s | None -> false then
          stopped := true
        else if !steps >= max_steps then stalled := true
        else begin
          let i = pick ~step:!steps ~current:!current ~runnable:r in
          if not (Array.exists (Int.equal i) r) then
            invalid_arg "Sched.run: pick chose a non-runnable thread";
          schedule := i :: !schedule;
          rlog := r :: !rlog;
          incr steps;
          current := Some i;
          resume i;
          loop ()
        end
      in
      loop ());
  let completed = Array.for_all (function Finished -> true | _ -> false) fibers in
  {
    schedule = Array.of_list (List.rev !schedule);
    runnable_log = Array.of_list (List.rev !rlog);
    completed;
    stopped = !stopped;
    stalled = !stalled;
    failures = List.rev !failures;
  }

(* ------------------------------------------------------------------ *)
(* Strategies                                                          *)

type strategy =
  | Random of int
  | Pct of { seed : int; changes : int; horizon : int }
  | Round_robin
  | Prefix of int array

let mem_arr x a = Array.exists (Int.equal x) a

let default_pick ~current ~runnable =
  match current with
  | Some c when mem_arr c runnable -> c
  | _ -> runnable.(0)

let pick_of_strategy = function
  | Random seed ->
      let rng = Random.State.make [| seed; 0x5eed |] in
      fun ~step:_ ~current:_ ~runnable ->
        runnable.(Random.State.int rng (Array.length runnable))
  | Round_robin ->
      fun ~step ~current:_ ~runnable ->
        runnable.(step mod Array.length runnable)
  | Prefix prefix ->
      fun ~step ~current ~runnable ->
        if step < Array.length prefix && mem_arr prefix.(step) runnable then
          prefix.(step)
        else default_pick ~current ~runnable
  | Pct { seed; changes; horizon } ->
      let rng = Random.State.make [| seed; 0x9c7 |] in
      (* Priorities are assigned lazily as threads first appear; change
         points are [changes] distinct steps in [0, horizon). *)
      let prio = Hashtbl.create 8 in
      let min_prio = ref 0 in
      let change_steps = Hashtbl.create 8 in
      let horizon = max horizon 1 in
      let target = min changes horizon in
      while Hashtbl.length change_steps < target do
        Hashtbl.replace change_steps (Random.State.int rng horizon) ()
      done;
      let priority t =
        match Hashtbl.find_opt prio t with
        | Some p -> p
        | None ->
            (* Random initial rank: draw a fresh random priority above
               any change-point demotions. *)
            let p = Random.State.int rng 1_000_000 + 1 in
            Hashtbl.replace prio t p;
            p
      in
      let top runnable =
        let best = ref runnable.(0) in
        let bestp = ref (priority runnable.(0)) in
        Array.iter
          (fun t ->
            let p = priority t in
            if p > !bestp then begin
              best := t;
              bestp := p
            end)
          runnable;
        !best
      in
      fun ~step ~current:_ ~runnable ->
        if Hashtbl.mem change_steps step then begin
          let t = top runnable in
          decr min_prio;
          Hashtbl.replace prio t !min_prio
        end;
        top runnable

(* ------------------------------------------------------------------ *)
(* Schedule tokens: run-length encoding with letter thread ids.        *)

let segments schedule =
  let segs = ref [] in
  Array.iter
    (fun t ->
      match !segs with
      | (t', n) :: rest when t' = t -> segs := (t', n + 1) :: rest
      | rest -> segs := (t, 1) :: rest)
    schedule;
  List.rev !segs

let of_segments segs =
  Array.concat (List.map (fun (t, n) -> Array.make n t) segs)

let encode_schedule schedule =
  if Array.length schedule = 0 then "-"
  else begin
    let buf = Buffer.create 32 in
    List.iter
      (fun (t, n) ->
        if t < 0 || t > 25 then
          invalid_arg "Sched.encode_schedule: thread id out of [0,25]";
        Buffer.add_char buf (Char.chr (Char.code 'a' + t));
        Buffer.add_string buf (string_of_int n))
      (segments schedule);
    Buffer.contents buf
  end

let decode_schedule s =
  if s = "-" then [||]
  else begin
    let segs = ref [] in
    let i = ref 0 in
    let len = String.length s in
    while !i < len do
      let c = s.[!i] in
      if c < 'a' || c > 'z' then
        invalid_arg "Sched.decode_schedule: expected thread letter";
      let t = Char.code c - Char.code 'a' in
      incr i;
      let start = !i in
      while !i < len && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done;
      if !i = start then invalid_arg "Sched.decode_schedule: expected count";
      let n = int_of_string (String.sub s start (!i - start)) in
      if n <= 0 then invalid_arg "Sched.decode_schedule: count must be > 0";
      segs := (t, n) :: !segs
    done;
    of_segments (List.rev !segs)
  end

(* ------------------------------------------------------------------ *)
(* Exhaustive bounded-preemption enumeration (iterative, Chess-style). *)

type exploration = { schedules_run : int; truncated : bool }

let explore ?(max_schedules = 100_000) ~preemptions ~run ~on_outcome () =
  let queue = Queue.create () in
  Queue.add ([||], preemptions) queue;
  let count = ref 0 in
  let truncated = ref false in
  while not (Queue.is_empty queue) do
    let prefix, budget = Queue.pop queue in
    if !count >= max_schedules then begin
      truncated := true;
      Queue.clear queue
    end
    else begin
      incr count;
      let out = run ~pick:(pick_of_strategy (Prefix prefix)) in
      on_outcome out;
      (* Branch at every step past the prefix: each runnable thread not
         chosen there starts a new prefix. Deviating from a still-
         runnable previous thread costs one preemption; a forced switch
         is free. Steps inside the prefix were branched by ancestors. *)
      let sched = out.schedule in
      let rlog = out.runnable_log in
      for s = Array.length prefix to Array.length sched - 1 do
        let chosen = sched.(s) in
        let prev_runnable =
          s > 0 && mem_arr sched.(s - 1) rlog.(s)
        in
        Array.iter
          (fun alt ->
            if alt <> chosen then begin
              let cost = if prev_runnable then 1 else 0 in
              if cost <= budget then
                Queue.add
                  (Array.append (Array.sub sched 0 s) [| alt |], budget - cost)
                  queue
            end)
          rlog.(s)
      done
    end
  done;
  { schedules_run = !count; truncated = !truncated }

(* ------------------------------------------------------------------ *)
(* Greedy schedule shrinking.                                          *)

let shrink_schedule ?(max_attempts = 500) ~fails schedule =
  let attempts = ref 0 in
  let try_candidate segs =
    if !attempts >= max_attempts then None
    else begin
      incr attempts;
      let cand = of_segments segs in
      if fails cand then Some cand else None
    end
  in
  let rec splice_out i = function
    | [] -> []
    | _ :: tl when i = 0 -> tl
    | hd :: tl -> hd :: splice_out (i - 1) tl
  in
  let relabel i segs =
    (* Merge segment i into the thread of segment i-1 (drop a switch). *)
    List.mapi (fun j (t, n) -> if j = i then (fst (List.nth segs (i - 1)), n) else (t, n)) segs
  in
  let rec pass schedule =
    let segs = segments schedule in
    let nsegs = List.length segs in
    let rec try_at i =
      if i >= nsegs || !attempts >= max_attempts then None
      else
        match try_candidate (splice_out i segs) with
        | Some c -> Some c
        | None ->
            if i > 0 then
              match try_candidate (relabel i segs) with
              | Some c -> Some c
              | None -> try_at (i + 1)
            else try_at (i + 1)
    in
    match try_at 0 with
    | Some better -> pass better
    | None -> schedule
  in
  if Array.length schedule = 0 then schedule else pass schedule
